//===--- interp_test.cpp - Operator semantics & differential execution ----===//
///
/// The first group reproduces the timing diagrams of the paper's
/// Figures 1–4 as scripted traces; the second group runs differential
/// tests: flat step execution == nested step execution == reference
/// fixpoint interpretation, on scripted and random programs.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "interp/KernelInterp.h"
#include "interp/StepExecutor.h"
#include "interp/VmExecutor.h"

#include <gtest/gtest.h>

#include <random>

using namespace sigc;
using namespace sigc::test;

namespace {

/// Runs the step executor over a scripted environment and returns the
/// formatted outputs.
std::string runSteps(Compilation &C, ScriptedEnvironment &Env,
                     unsigned Instants, ExecMode Mode = ExecMode::Nested) {
  StepExecutor Exec(*C.Kernel, C.Step);
  Exec.run(Env, Instants, Mode);
  return formatEvents(Env.outputs());
}

} // namespace

//===----------------------------------------------------------------------===//
// Figure 1: X := X1 + X2 — pointwise sum on a common clock.
//===----------------------------------------------------------------------===//

TEST(InterpFigures, Figure1PointwiseSum) {
  auto C = compileOk(proc("? integer X1, X2; ! integer X;",
                          "   X := X1 + X2"));
  ScriptedEnvironment Env;
  Env.tickAlways();
  // Paper values: X1 = 1,5,2,7,8,...; X2 = 6,7,11,10,...
  int X1[] = {1, 5, 2, 7};
  int X2[] = {6, 7, 11, 10};
  for (unsigned I = 0; I < 4; ++I) {
    Env.set("X1", I, Value::makeInt(X1[I]));
    Env.set("X2", I, Value::makeInt(X2[I]));
  }
  EXPECT_EQ(runSteps(*C, Env, 4), "0 X=7\n1 X=12\n2 X=13\n3 X=17\n");
}

//===----------------------------------------------------------------------===//
// Figure 2: ZX := X $ 1 init v0 — reference to past values.
//===----------------------------------------------------------------------===//

TEST(InterpFigures, Figure2Delay) {
  auto C = compileOk(proc("? integer X; ! integer ZX;",
                          "   ZX := X $ 1 init -1"));
  ScriptedEnvironment Env;
  Env.tickAlways();
  int X[] = {1, 5, 2, 7, 8};
  for (unsigned I = 0; I < 5; ++I)
    Env.set("X", I, Value::makeInt(X[I]));
  EXPECT_EQ(runSteps(*C, Env, 5),
            "0 ZX=-1\n1 ZX=1\n2 ZX=5\n3 ZX=2\n4 ZX=7\n");
}

TEST(InterpFigures, DelayOnlyAdvancesWhenPresent) {
  auto C = compileOk(proc("? integer X; ! integer ZX;",
                          "   ZX := X $ 1 init 0"));
  ScriptedEnvironment Env;
  // The shared clock ticks at instants 0, 2, 5 only.
  std::string Root;
  for (const auto &CI : C->Step.ClockInputs)
    Root = CI.Name;
  Env.tick(Root, 0);
  Env.tick(Root, 2);
  Env.tick(Root, 5);
  Env.set("X", 0, Value::makeInt(10));
  Env.set("X", 2, Value::makeInt(20));
  Env.set("X", 5, Value::makeInt(30));
  EXPECT_EQ(runSteps(*C, Env, 6), "0 ZX=0\n2 ZX=10\n5 ZX=20\n");
}

//===----------------------------------------------------------------------===//
// Figure 3: X := U when C — downsampling.
//===----------------------------------------------------------------------===//

TEST(InterpFigures, Figure3When) {
  auto C = compileOk(proc("? integer U; boolean CC; ! integer X;",
                          "   X := U when CC\n   | synchro {U, CC}"));
  ScriptedEnvironment Env;
  Env.tickAlways();
  // U:      1, 7, 2, 1, 3
  // C:      f, t, t, f, t
  int U[] = {1, 7, 2, 1, 3};
  bool Cv[] = {false, true, true, false, true};
  for (unsigned I = 0; I < 5; ++I) {
    Env.set("U", I, Value::makeInt(U[I]));
    Env.set("CC", I, Value::makeBool(Cv[I]));
  }
  EXPECT_EQ(runSteps(*C, Env, 5), "1 X=7\n2 X=2\n4 X=3\n");
}

//===----------------------------------------------------------------------===//
// Figure 4: X := U default V — deterministic merge with priority.
//===----------------------------------------------------------------------===//

TEST(InterpFigures, Figure4Default) {
  // U present when PU, V present when PV (both sampled from a base).
  auto C = compileOk(proc("? integer B; boolean PU, PV; ! integer X;",
                          "   U := B when PU\n   | V := (B * 10) when PV\n"
                          "   | X := U default V",
                          "integer U, V;"));
  ScriptedEnvironment Env;
  Env.tickAlways();
  // instants:   0     1     2     3
  // U present:  yes   no    yes   no
  // V present:  yes   yes   no    no
  bool PU[] = {true, false, true, false};
  bool PV[] = {true, true, false, false};
  for (unsigned I = 0; I < 4; ++I) {
    Env.set("B", I, Value::makeInt(static_cast<int>(I) + 1));
    Env.set("PU", I, Value::makeBool(PU[I]));
    Env.set("PV", I, Value::makeBool(PV[I]));
  }
  // X = U at 0 and 2 (priority), V at 1, absent at 3.
  EXPECT_EQ(runSteps(*C, Env, 4), "0 X=1\n1 X=20\n2 X=3\n");
}

//===----------------------------------------------------------------------===//
// ALARM behaviour end to end (the paper's Section 3.3 scenario).
//===----------------------------------------------------------------------===//

TEST(InterpScenario, AlarmRaisesOnlyPastLimit) {
  auto C = compileOk(R"(
process ALARM =
  ( ? boolean BRAKE, STOP_OK, LIMIT_REACHED;
    ! boolean ALARM; )
  (| BRAKING_STATE := BRAKING_NEXT_STATE $ 1 init false
   | BRAKING_NEXT_STATE :=
       (true when BRAKE) default (false when STOP_OK) default BRAKING_STATE
   | synchro {when BRAKING_STATE, STOP_OK, LIMIT_REACHED}
   | synchro {when (not BRAKING_STATE), BRAKE}
   | ALARM := LIMIT_REACHED and (not STOP_OK)
  |)
  where boolean BRAKING_STATE, BRAKING_NEXT_STATE; end;
)");
  ScriptedEnvironment Env;
  Env.tickAlways();
  // Instant 0: idle, BRAKE=false             -> stay idle, no alarm.
  // Instant 1: idle, BRAKE=true              -> start braking.
  // Instant 2: braking, not stopped, limit   -> ALARM=true.
  // Instant 3: braking, stopped              -> ALARM=false, leave braking.
  // Instant 4: idle again, BRAKE=false       -> no alarm.
  Env.set("BRAKE", 0, Value::makeBool(false));
  Env.set("BRAKE", 1, Value::makeBool(true));
  Env.set("STOP_OK", 2, Value::makeBool(false));
  Env.set("LIMIT_REACHED", 2, Value::makeBool(true));
  Env.set("STOP_OK", 3, Value::makeBool(true));
  Env.set("LIMIT_REACHED", 3, Value::makeBool(false));
  Env.set("BRAKE", 4, Value::makeBool(false));
  EXPECT_EQ(runSteps(*C, Env, 5),
            "2 ALARM=true\n3 ALARM=false\n");
}

//===----------------------------------------------------------------------===//
// Differential tests: flat == nested == reference fixpoint.
//===----------------------------------------------------------------------===//

namespace {

void expectAllModesAgree(const std::string &Source, uint64_t Seed,
                         unsigned Instants = 64) {
  auto C = compileOk(Source);
  if (!C->Ok)
    return;

  RandomEnvironment EnvFlat(Seed);
  StepExecutor ExecFlat(*C->Kernel, C->Step);
  ExecFlat.run(EnvFlat, Instants, ExecMode::Flat);

  RandomEnvironment EnvNested(Seed);
  StepExecutor ExecNested(*C->Kernel, C->Step);
  ExecNested.run(EnvNested, Instants, ExecMode::Nested);

  RandomEnvironment EnvVm(Seed);
  CompiledStep CS = CompiledStep::build(*C->Kernel, C->Step);
  VmExecutor ExecVm(CS);
  ExecVm.run(EnvVm, Instants);

  RandomEnvironment EnvRef(Seed);
  KernelInterp Ref(*C->Kernel, C->Clocks, *C->Forest, C->names());
  EXPECT_TRUE(Ref.run(EnvRef, Instants)) << "fixpoint got stuck";

  EXPECT_EQ(formatEvents(EnvFlat.outputs()),
            formatEvents(EnvNested.outputs()))
      << "flat vs nested divergence\n"
      << Source;
  EXPECT_EQ(formatEvents(EnvNested.outputs()), formatEvents(EnvVm.outputs()))
      << "nested vs slot-VM divergence\n"
      << Source;
  EXPECT_EQ(ExecVm.guardTests(), ExecNested.guardTests())
      << "slot-VM guard economics diverged from nested\n"
      << Source;
  EXPECT_EQ(ExecVm.executed(), ExecNested.executed())
      << "slot-VM Executed counter diverged from nested\n"
      << Source;
  EXPECT_EQ(formatEvents(EnvFlat.outputs()), formatEvents(EnvRef.outputs()))
      << "step vs reference divergence\n"
      << Source;
}

class DifferentialTest : public ::testing::TestWithParam<unsigned> {};

} // namespace

TEST(Differential, SumProgram) {
  expectAllModesAgree(proc("? integer A, B; ! integer Y;", "   Y := A + B"),
                      1);
}

TEST(Differential, CounterProgram) {
  expectAllModesAgree(proc("? integer A; ! integer Y;",
                           "   Y := A + (Y $ 1 init 0)"),
                      2);
}

TEST(Differential, DownsampleProgram) {
  expectAllModesAgree(proc("? integer A; boolean C1; ! integer Y;",
                           "   Y := A when C1"),
                      3);
}

TEST(Differential, MergeProgram) {
  expectAllModesAgree(proc("? integer A, B; ! integer Y;",
                           "   Y := A default B"),
                      4);
}

TEST(Differential, CellProgram) {
  expectAllModesAgree(proc("? integer X; boolean B; ! integer Y;",
                           "   Y := X cell B init -5\n   | synchro {X, B}"),
                      5);
}

TEST(Differential, AlarmProgram) {
  expectAllModesAgree(
      R"(process A =
  ( ? boolean BRAKE, STOP_OK, LIMIT_REACHED; ! boolean ALARM; )
  (| BRAKING_STATE := BRAKING_NEXT_STATE $ 1 init false
   | BRAKING_NEXT_STATE :=
       (true when BRAKE) default (false when STOP_OK) default BRAKING_STATE
   | synchro {when BRAKING_STATE, STOP_OK, LIMIT_REACHED}
   | synchro {when (not BRAKING_STATE), BRAKE}
   | ALARM := LIMIT_REACHED and (not STOP_OK)
  |) where boolean BRAKING_STATE, BRAKING_NEXT_STATE; end;
)",
      6);
}

TEST(Differential, GridProgram) {
  expectAllModesAgree(proc("? integer IN; ! integer OUT;",
                           "   P1 := (IN mod 2) = 0\n"
                           "   | A1 := IN when P1\n"
                           "   | Q1 := (IN mod 3) = 1\n"
                           "   | M11 := A1 when Q1\n"
                           "   | OUT := IN default M11",
                           "boolean P1, Q1; integer A1, M11;"),
                      7);
}

TEST_P(DifferentialTest, RandomChainMergePrograms) {
  unsigned Seed = GetParam();
  std::mt19937 Rng(Seed ^ 0xABCDEF);
  std::string Body = "   B0 := (IN mod 2) = 0\n";
  std::string Locals = "boolean B0; ";
  std::vector<std::string> Pool{"IN"};
  std::vector<std::string> Conds{"B0"};
  unsigned NextId = 1;
  for (unsigned I = 0; I < 6; ++I) {
    unsigned Kind = Rng() % 4;
    std::string New = "S" + std::to_string(NextId);
    if (Kind == 0) {
      std::string Src = Pool[Rng() % Pool.size()];
      std::string Cond = Conds[Rng() % Conds.size()];
      Locals += "integer " + New + "; ";
      Body += "   | " + New + " := " + Src + " when " + Cond + "\n";
      Pool.push_back(New);
    } else if (Kind == 1) {
      std::string A = Pool[Rng() % Pool.size()];
      std::string B = Pool[Rng() % Pool.size()];
      Locals += "integer " + New + "; ";
      Body += "   | " + New + " := " + A + " default " + B + "\n";
      Pool.push_back(New);
    } else if (Kind == 2) {
      std::string Src = Pool[Rng() % Pool.size()];
      Locals += "integer " + New + "; ";
      Body += "   | " + New + " := " + Src + " + (" + New +
              " $ 1 init 0)\n";
      Pool.push_back(New);
    } else {
      std::string Src = Pool[Rng() % Pool.size()];
      std::string CN = "B" + std::to_string(NextId);
      Locals += "boolean " + CN + "; ";
      Body += "   | " + CN + " := (" + Src + " mod 3) = 0\n";
      Conds.push_back(CN);
    }
    ++NextId;
  }
  Body += "   | OUT := " + Pool.back();
  expectAllModesAgree(proc("? integer IN; ! integer OUT;", Body, Locals),
                      Seed * 31 + 7, 48);
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, DifferentialTest,
                         ::testing::Range(0u, 25u));

//===----------------------------------------------------------------------===//
// Executor details
//===----------------------------------------------------------------------===//

TEST(StepExecutor, NestedDoesFewerGuardTests) {
  auto C = compileOk(proc("? integer A; boolean C1, C2; ! integer Y;",
                          "   T1 := A when C1\n"
                          "   | T2 := T1 when C2\n"
                          "   | Y := T2 + 1",
                          "integer T1, T2;"));
  // Environment where the root rarely ticks: nesting skips whole subtrees.
  RandomEnvironment Env(1, /*TickPermille=*/100);
  StepExecutor Flat(*C->Kernel, C->Step);
  Flat.run(Env, 256, ExecMode::Flat);
  RandomEnvironment Env2(1, 100);
  StepExecutor Nested(*C->Kernel, C->Step);
  Nested.run(Env2, 256, ExecMode::Nested);
  EXPECT_LT(Nested.guardTests(), Flat.guardTests());
  EXPECT_LE(Nested.executed(), Flat.executed());
}

TEST(StepExecutor, ResetRestoresInitialState) {
  auto C = compileOk(proc("? integer A; ! integer Y;",
                          "   Y := A + (Y $ 1 init 100)"));
  ScriptedEnvironment Env;
  Env.tickAlways();
  for (unsigned I = 0; I < 3; ++I)
    Env.set("A", I, Value::makeInt(1));
  StepExecutor Exec(*C->Kernel, C->Step);
  Exec.run(Env, 3, ExecMode::Nested);
  std::string First = formatEvents(Env.outputs());
  Env.clearOutputs();
  Exec.reset();
  Exec.run(Env, 3, ExecMode::Nested);
  EXPECT_EQ(formatEvents(Env.outputs()), First);
}

TEST(Environment, RandomIsQueryOrderIndependent) {
  RandomEnvironment E1(9), E2(9);
  Value A1 = E1.inputValue("X", TypeKind::Integer, 3);
  Value B1 = E1.inputValue("Y", TypeKind::Integer, 3);
  Value B2 = E2.inputValue("Y", TypeKind::Integer, 3);
  Value A2 = E2.inputValue("X", TypeKind::Integer, 3);
  EXPECT_EQ(A1, A2);
  EXPECT_EQ(B1, B2);
}

TEST(Environment, ScriptedDefaults) {
  ScriptedEnvironment E;
  EXPECT_FALSE(E.clockTick("^X", 0));
  E.tickAlways();
  EXPECT_TRUE(E.clockTick("^X", 0));
  EXPECT_EQ(E.inputValue("A", TypeKind::Integer, 0), Value::makeInt(0));
}
