//===--- TestUtil.h - Shared test helpers -----------------------*- C++-*-===//

#ifndef SIGNALC_TESTS_TESTUTIL_H
#define SIGNALC_TESTS_TESTUTIL_H

#include "driver/Driver.h"

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>

namespace sigc::test {

/// Compiles \p Source and expects success; failures print diagnostics.
inline std::unique_ptr<Compilation> compileOk(const std::string &Source) {
  auto C = compileSource("<test>", Source);
  EXPECT_TRUE(C->Ok) << "stage: " << C->failedStageName() << "\n"
                     << C->Diags.render();
  return C;
}

/// Compiles \p Source and expects failure in \p Stage.
inline std::unique_ptr<Compilation> compileErr(const std::string &Source,
                                               CompileStage Stage) {
  auto C = compileSource("<test>", Source);
  EXPECT_FALSE(C->Ok);
  EXPECT_EQ(C->failedStageName(), std::string(to_string(Stage)))
      << C->Diags.render();
  return C;
}

/// Wraps a body and locals into a one-process source with the given
/// interface lines, for compact test programs.
inline std::string proc(const std::string &Interface, const std::string &Body,
                        const std::string &Locals = "") {
  std::string Out = "process P =\n  ( " + Interface + " )\n  (|\n" + Body +
                    "\n  |)\n";
  if (!Locals.empty())
    Out += "  where " + Locals + " end";
  Out += ";\n";
  return Out;
}

/// Normalizes dump/emission output for golden-file comparison: CRLF to
/// LF, trailing whitespace stripped per line, exactly one trailing
/// newline. Content differences still fail; whitespace drift does not.
inline std::string normalizeDump(const std::string &Text) {
  std::string Out;
  std::string Line;
  std::istringstream In(Text);
  while (std::getline(In, Line)) {
    while (!Line.empty() && (Line.back() == ' ' || Line.back() == '\t' ||
                             Line.back() == '\r'))
      Line.pop_back();
    Out += Line;
    Out += '\n';
  }
  while (Out.size() >= 2 && Out[Out.size() - 1] == '\n' &&
         Out[Out.size() - 2] == '\n')
    Out.pop_back();
  return Out;
}

/// Reads a file under tests/ (e.g. "golden/FIG5_ALARM.tree.txt").
/// The directory comes from the SIGNALC_TEST_DIR compile definition the
/// build sets on every test target.
inline std::string readTestFile(const std::string &RelPath) {
  std::string Path = std::string(SIGNALC_TEST_DIR) + "/" + RelPath;
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// Compares \p Actual against the golden file at \p RelPath, after
/// normalizing both sides.
inline void expectMatchesGolden(const std::string &Actual,
                                const std::string &RelPath) {
  std::string Golden = readTestFile(RelPath);
  EXPECT_EQ(normalizeDump(Actual), normalizeDump(Golden))
      << "output differs from golden file " << RelPath
      << " (regenerate it if the change is intentional)";
}

} // namespace sigc::test

#endif // SIGNALC_TESTS_TESTUTIL_H
