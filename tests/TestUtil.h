//===--- TestUtil.h - Shared test helpers -----------------------*- C++-*-===//

#ifndef SIGNALC_TESTS_TESTUTIL_H
#define SIGNALC_TESTS_TESTUTIL_H

#include "driver/Driver.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace sigc::test {

/// Compiles \p Source and expects success; failures print diagnostics.
inline std::unique_ptr<Compilation> compileOk(const std::string &Source) {
  auto C = compileSource("<test>", Source);
  EXPECT_TRUE(C->Ok) << "stage: " << C->FailedStage << "\n"
                     << C->Diags.render();
  return C;
}

/// Compiles \p Source and expects failure in \p Stage.
inline std::unique_ptr<Compilation> compileErr(const std::string &Source,
                                               const std::string &Stage) {
  auto C = compileSource("<test>", Source);
  EXPECT_FALSE(C->Ok);
  EXPECT_EQ(C->FailedStage, Stage) << C->Diags.render();
  return C;
}

/// Wraps a body and locals into a one-process source with the given
/// interface lines, for compact test programs.
inline std::string proc(const std::string &Interface, const std::string &Body,
                        const std::string &Locals = "") {
  std::string Out = "process P =\n  ( " + Interface + " )\n  (|\n" + Body +
                    "\n  |)\n";
  if (!Locals.empty())
    Out += "  where " + Locals + " end";
  Out += ";\n";
  return Out;
}

} // namespace sigc::test

#endif // SIGNALC_TESTS_TESTUTIL_H
