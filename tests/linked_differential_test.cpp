//===--- linked_differential_test.cpp - Linked-vs-monolithic oracle -------===//
///
/// The separate-compilation acceptance suite: producer/consumer systems
/// compiled separately and linked must produce, on the differential
/// oracle, traces identical to the monolithic compilation of the
/// textually composed program — for hand-written pipelines and for 100+
/// seeded random two-process systems, with the linked C emission
/// round-tripped through the host C compiler on a sample. The oracle
/// also asserts linking performed no per-process re-resolution.
///
//===----------------------------------------------------------------------===//

#include "testing/Oracle.h"
#include "testing/RandomProgram.h"

#include <gtest/gtest.h>

using namespace sigc;

namespace {

/// The hand-written sensor/monitor pipeline (also examples/linked_pipeline).
const char *SensorSource = R"(
process SENSOR =
  ( ? integer RAW;
    ! integer KEPT, SUM; )
  (| EVENFLAG := (RAW mod 2) = 0
   | KEPT := RAW when EVENFLAG
   | SUM := KEPT + (SUM $ 1 init 0)
  |)
  where
    boolean EVENFLAG;
  end;
)";

const char *MonitorSource = R"(
process MONITOR =
  ( ? integer KEPT, SUM;
    ! integer TOTAL; boolean ALERT; )
  (| synchro {KEPT, SUM}
   | TOTAL := KEPT + (TOTAL $ 1 init 0)
   | ALERT := SUM > 20
  |);
)";

const char *SensorMonitorComposed = R"(
process PIPE =
  ( ? integer RAW;
    ! integer TOTAL; boolean ALERT; )
  (| EVENFLAG := (RAW mod 2) = 0
   | KEPT := RAW when EVENFLAG
   | SUM := KEPT + (SUM $ 1 init 0)
   | synchro {KEPT, SUM}
   | TOTAL := KEPT + (TOTAL $ 1 init 0)
   | ALERT := SUM > 20
  |)
  where
    boolean EVENFLAG;
    integer KEPT, SUM;
  end;
)";

/// A Figure-13-style divider pipeline split at a process boundary: the
/// front half samples every other occurrence twice (a two-stage divider
/// chain), the back half counts what survives.
const char *DividerFrontSource = R"(
process FRONT =
  ( ? integer STREAM;
    ! integer LVL2; )
  (| F1 := not (F1 $ 1 init false)
   | synchro {F1, STREAM}
   | LVL1 := STREAM when F1
   | F2 := not (F2 $ 1 init false)
   | synchro {F2, LVL1}
   | LVL2 := LVL1 when F2
  |)
  where
    boolean F1, F2;
    integer LVL1;
  end;
)";

const char *DividerBackSource = R"(
process BACK =
  ( ? integer LVL2;
    ! integer COUNT, LAST; )
  (| COUNT := 1 + (COUNT $ 1 init 0)
   | synchro {COUNT, LVL2}
   | LAST := LVL2
  |);
)";

const char *DividerComposed = R"(
process DIVIDE4 =
  ( ? integer STREAM;
    ! integer COUNT, LAST; )
  (| F1 := not (F1 $ 1 init false)
   | synchro {F1, STREAM}
   | LVL1 := STREAM when F1
   | F2 := not (F2 $ 1 init false)
   | synchro {F2, LVL1}
   | LVL2 := LVL1 when F2
   | COUNT := 1 + (COUNT $ 1 init 0)
   | synchro {COUNT, LVL2}
   | LAST := LVL2
  |)
  where
    boolean F1, F2;
    integer LVL1, LVL2;
  end;
)";

} // namespace

TEST(LinkedDifferential, SensorMonitorPipeline) {
  OracleOptions O;
  O.Instants = 96;
  O.EnvSeed = 7;
  OracleReport R = checkLinkedDifferential(
      "sensor-monitor",
      {{"SENSOR", SensorSource}, {"MONITOR", MonitorSource}},
      SensorMonitorComposed, O);
  EXPECT_TRUE(R.Ok) << R.Error;
}

TEST(LinkedDifferential, DividerPipeline) {
  OracleOptions O;
  O.Instants = 128;
  O.EnvSeed = 3;
  OracleReport R = checkLinkedDifferential(
      "divider",
      {{"FRONT", DividerFrontSource}, {"BACK", DividerBackSource}},
      DividerComposed, O);
  EXPECT_TRUE(R.Ok) << R.Error;
}

TEST(LinkedDifferential, SensorMonitorEmittedC) {
  if (!hostCCompilerAvailable())
    GTEST_SKIP() << "no host C compiler";
  OracleOptions O;
  O.Instants = 64;
  O.EnvSeed = 11;
  O.EmitCRoundTrip = true;
  OracleReport R = checkLinkedDifferential(
      "sensor-monitor-c",
      {{"SENSOR", SensorSource}, {"MONITOR", MonitorSource}},
      SensorMonitorComposed, O);
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(R.CRoundTripRan);
}

//===----------------------------------------------------------------------===//
// Random two-process systems: 8 blocks x 13 seeds = 104 pairs.
//===----------------------------------------------------------------------===//

namespace {

class RandomPairDifferential : public ::testing::TestWithParam<unsigned> {};

} // namespace

TEST_P(RandomPairDifferential, LinkedMatchesMonolithic) {
  unsigned Block = GetParam();
  ProcessPairOptions Gen;
  OracleOptions O;
  O.Instants = 48;
  for (uint64_t Seed = Block * 13; Seed < (Block + 1) * 13ull; ++Seed) {
    O.EnvSeed = Seed * 31 + 1;
    OracleReport R = checkRandomPairDifferential(Seed, Gen, O);
    EXPECT_TRUE(R.Ok) << R.Error;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomPairDifferential,
                         ::testing::Range(0u, 8u));

TEST(RandomPairDifferential, SparseTicks) {
  ProcessPairOptions Gen;
  OracleOptions O;
  O.Instants = 64;
  O.TickPermille = 350; // mostly-absent free clocks
  for (uint64_t Seed = 300; Seed < 312; ++Seed) {
    O.EnvSeed = Seed + 17;
    OracleReport R = checkRandomPairDifferential(Seed, Gen, O);
    EXPECT_TRUE(R.Ok) << R.Error;
  }
}

TEST(RandomPairDifferential, BiggerUnits) {
  ProcessPairOptions Gen;
  Gen.Producer.Equations = 24;
  Gen.Consumer.Equations = 24;
  Gen.MaxChannels = 4;
  OracleOptions O;
  O.Instants = 32;
  for (uint64_t Seed = 400; Seed < 410; ++Seed) {
    O.EnvSeed = Seed;
    OracleReport R = checkRandomPairDifferential(Seed, Gen, O);
    EXPECT_TRUE(R.Ok) << R.Error;
  }
}

TEST(RandomPairDifferential, EmittedCSample) {
  if (!hostCCompilerAvailable())
    GTEST_SKIP() << "no host C compiler";
  ProcessPairOptions Gen;
  OracleOptions O;
  O.Instants = 32;
  O.EmitCRoundTrip = true;
  for (uint64_t Seed = 500; Seed < 506; ++Seed) {
    O.EnvSeed = Seed;
    OracleReport R = checkRandomPairDifferential(Seed, Gen, O);
    EXPECT_TRUE(R.Ok) << R.Error;
    EXPECT_TRUE(R.CRoundTripRan);
  }
}

//===----------------------------------------------------------------------===//
// Longer chains: three and four processes linked in sequence.
//===----------------------------------------------------------------------===//

TEST(RandomChainDifferential, ThreeAndFourStages) {
  for (unsigned Stages : {3u, 4u}) {
    for (uint64_t Seed = 0; Seed < 6; ++Seed) {
      GeneratedChain Chain = generateProcessChain(Seed, Stages);
      std::vector<LinkInput> Inputs;
      for (size_t K = 0; K < Chain.Sources.size(); ++K)
        Inputs.push_back({Chain.Names[K], Chain.Sources[K]});
      OracleOptions O;
      O.Instants = 32;
      O.EnvSeed = Seed + 5;
      OracleReport R = checkLinkedDifferential(
          "chain-" + std::to_string(Stages) + "-" + std::to_string(Seed),
          Inputs, Chain.ComposedSource, O);
      EXPECT_TRUE(R.Ok) << R.Error;
    }
  }
}

//===----------------------------------------------------------------------===//
// Feedback and diamond systems: the compositions instruction-level
// fusion exists for. Whole-unit linking had to reject both — the loop
// because the unit graph is cyclic, the diamond because its synchro
// obligation spans two producers' forests.
//===----------------------------------------------------------------------===//

TEST(FeedbackDifferential, LoopMatchesMonolithic) {
  for (uint64_t Seed = 0; Seed < 12; ++Seed) {
    GeneratedPair P = generateFeedbackPair(Seed);
    std::vector<LinkInput> Inputs = {{P.ProducerName, P.ProducerSource},
                                     {P.ConsumerName, P.ConsumerSource}};
    OracleOptions O;
    O.Instants = 48;
    O.EnvSeed = Seed * 7 + 3;
    OracleReport R = checkLinkedDifferential(
        "feedback-" + std::to_string(Seed), Inputs, P.ComposedSource, O);
    EXPECT_TRUE(R.Ok) << R.Error;
  }
}

TEST(FeedbackDifferential, SparseTicks) {
  for (uint64_t Seed = 20; Seed < 26; ++Seed) {
    GeneratedPair P = generateFeedbackPair(Seed);
    std::vector<LinkInput> Inputs = {{P.ProducerName, P.ProducerSource},
                                     {P.ConsumerName, P.ConsumerSource}};
    OracleOptions O;
    O.Instants = 64;
    O.TickPermille = 350;
    O.EnvSeed = Seed + 11;
    OracleReport R = checkLinkedDifferential(
        "feedback-sparse-" + std::to_string(Seed), Inputs, P.ComposedSource,
        O);
    EXPECT_TRUE(R.Ok) << R.Error;
  }
}

TEST(FeedbackDifferential, EmittedC) {
  if (!hostCCompilerAvailable())
    GTEST_SKIP() << "no host C compiler";
  for (uint64_t Seed = 0; Seed < 4; ++Seed) {
    GeneratedPair P = generateFeedbackPair(Seed);
    std::vector<LinkInput> Inputs = {{P.ProducerName, P.ProducerSource},
                                     {P.ConsumerName, P.ConsumerSource}};
    OracleOptions O;
    O.Instants = 32;
    O.EnvSeed = Seed + 1;
    O.EmitCRoundTrip = true;
    OracleReport R = checkLinkedDifferential(
        "feedback-c-" + std::to_string(Seed), Inputs, P.ComposedSource, O);
    EXPECT_TRUE(R.Ok) << R.Error;
    EXPECT_TRUE(R.CRoundTripRan);
  }
}

TEST(DiamondDifferential, JointObligationMatchesMonolithic) {
  for (uint64_t Seed = 0; Seed < 12; ++Seed) {
    GeneratedChain D = generateDiamondSystem(Seed);
    std::vector<LinkInput> Inputs;
    for (size_t K = 0; K < D.Sources.size(); ++K)
      Inputs.push_back({D.Names[K], D.Sources[K]});
    OracleOptions O;
    O.Instants = 48;
    O.EnvSeed = Seed * 5 + 2;
    OracleReport R = checkLinkedDifferential(
        "diamond-" + std::to_string(Seed), Inputs, D.ComposedSource, O);
    EXPECT_TRUE(R.Ok) << R.Error;
  }
}

TEST(DiamondDifferential, EmittedC) {
  if (!hostCCompilerAvailable())
    GTEST_SKIP() << "no host C compiler";
  for (uint64_t Seed = 0; Seed < 4; ++Seed) {
    GeneratedChain D = generateDiamondSystem(Seed);
    std::vector<LinkInput> Inputs;
    for (size_t K = 0; K < D.Sources.size(); ++K)
      Inputs.push_back({D.Names[K], D.Sources[K]});
    OracleOptions O;
    O.Instants = 32;
    O.EnvSeed = Seed + 9;
    O.EmitCRoundTrip = true;
    OracleReport R = checkLinkedDifferential(
        "diamond-c-" + std::to_string(Seed), Inputs, D.ComposedSource, O);
    EXPECT_TRUE(R.Ok) << R.Error;
    EXPECT_TRUE(R.CRoundTripRan);
  }
}

//===----------------------------------------------------------------------===//
// Generator sanity for the multi-process mode.
//===----------------------------------------------------------------------===//

TEST(FeedbackGenerator, DeterministicAndChannelShaped) {
  GeneratedPair A = generateFeedbackPair(7);
  GeneratedPair B = generateFeedbackPair(7);
  EXPECT_EQ(A.ProducerSource, B.ProducerSource);
  EXPECT_EQ(A.ConsumerSource, B.ConsumerSource);
  EXPECT_EQ(A.ComposedSource, B.ComposedSource);
  ASSERT_EQ(A.Channels.size(), 2u);
  EXPECT_NE(A.ProducerSource, generateFeedbackPair(8).ProducerSource);
}

TEST(DiamondGenerator, DeterministicWithSpanningSynchro) {
  GeneratedChain A = generateDiamondSystem(3);
  GeneratedChain B = generateDiamondSystem(3);
  ASSERT_EQ(A.Sources.size(), 4u);
  EXPECT_EQ(A.Sources, B.Sources);
  EXPECT_EQ(A.ComposedSource, B.ComposedSource);
  // The consumer carries the obligation that spans both producers.
  EXPECT_NE(A.Sources[3].find("synchro {DA, DB}"), std::string::npos);
  EXPECT_NE(A.Sources, generateDiamondSystem(4).Sources);
}

TEST(ProcessPairGenerator, DeterministicForFixedSeed) {
  ProcessPairOptions O;
  GeneratedPair A = generateProcessPair(77, O);
  GeneratedPair B = generateProcessPair(77, O);
  EXPECT_EQ(A.ProducerSource, B.ProducerSource);
  EXPECT_EQ(A.ConsumerSource, B.ConsumerSource);
  EXPECT_EQ(A.ComposedSource, B.ComposedSource);
  EXPECT_EQ(A.Channels, B.Channels);
}

TEST(ProcessPairGenerator, ChannelsAreProducerOutputsAndConsumerInputs) {
  GeneratedPair P = generateProcessPair(5);
  ASSERT_FALSE(P.Channels.empty());
  for (const std::string &Ch : P.Channels) {
    // Exported by the producer...
    EXPECT_NE(P.ProducerSource.find(Ch), std::string::npos) << Ch;
    // ...imported by the consumer...
    EXPECT_NE(P.ConsumerSource.find(Ch), std::string::npos) << Ch;
    // ...and internal (a local) in the composition.
    EXPECT_NE(P.ComposedSource.find(Ch), std::string::npos) << Ch;
  }
}
