//===--- cli_test.cpp - signalc command-line regression tests -------------===//
///
/// Subprocess tests of the installed `signalc` binary's argument
/// handling. The numeric flags (--simulate, --batch, --seed, --fleet,
/// --threads) share one checked parse: a malformed, out-of-range or
/// missing operand must be a diagnosed exit-code-2 failure naming the
/// flag — historically `--batch abc` was an uncaught std::stoul throw
/// and a flag given as the last argument was silently dropped.
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include <sys/wait.h>

namespace {

struct CliResult {
  int Exit = -1;
  std::string Output; ///< stdout and stderr, interleaved.
};

/// Runs `signalc <Args>` and captures exit code plus combined output.
CliResult runSignalc(const std::string &Args) {
  CliResult R;
  std::string Cmd = std::string(SIGNALC_BIN) + " " + Args + " 2>&1";
  FILE *P = popen(Cmd.c_str(), "r");
  if (!P)
    return R;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof Buf, P)) > 0)
    R.Output.append(Buf, N);
  int St = pclose(P);
  if (WIFEXITED(St))
    R.Exit = WEXITSTATUS(St);
  return R;
}

const char *numericFlags[] = {"--simulate", "--batch", "--seed", "--fleet",
                              "--threads"};

} // namespace

TEST(Cli, MalformedNumericOperandIsDiagnosedPerFlag) {
  for (const char *Flag : numericFlags) {
    CliResult R =
        runSignalc("--builtin FIG5_ALARM " + std::string(Flag) + " abc");
    EXPECT_EQ(R.Exit, 2) << Flag << ": " << R.Output;
    EXPECT_NE(R.Output.find("invalid value 'abc' for " + std::string(Flag)),
              std::string::npos)
        << Flag << ": " << R.Output;
  }
}

TEST(Cli, NegativeNumericOperandIsDiagnosed) {
  CliResult R = runSignalc("--builtin FIG5_ALARM --simulate -5");
  EXPECT_EQ(R.Exit, 2) << R.Output;
  EXPECT_NE(R.Output.find("invalid value '-5' for --simulate"),
            std::string::npos)
      << R.Output;
}

TEST(Cli, OutOfRangeSeedIsDiagnosedNotThrown) {
  // 20 digits: above 2^64-1. Historically this was an uncaught
  // std::out_of_range from std::stoull (an abort, not a diagnostic).
  CliResult R =
      runSignalc("--builtin FIG5_ALARM --seed 99999999999999999999");
  EXPECT_EQ(R.Exit, 2) << R.Output;
  EXPECT_NE(R.Output.find("for --seed is out of range"), std::string::npos)
      << R.Output;
}

TEST(Cli, OutOfRangeUnsignedFlagIsDiagnosed) {
  // Fits in 64 bits but not in the 32-bit instant/instance counts.
  for (const char *Flag : {"--simulate", "--fleet"}) {
    CliResult R = runSignalc("--builtin FIG5_ALARM " + std::string(Flag) +
                             " 99999999999");
    EXPECT_EQ(R.Exit, 2) << Flag << ": " << R.Output;
    EXPECT_NE(R.Output.find("is out of range (max 4294967295)"),
              std::string::npos)
        << Flag << ": " << R.Output;
  }
}

TEST(Cli, MissingOperandAsLastArgumentIsDiagnosedPerFlag) {
  // A numeric flag as the very last argument used to be silently
  // dropped; it must diagnose the missing operand and exit 2.
  for (const char *Flag : numericFlags) {
    CliResult R = runSignalc("--builtin FIG5_ALARM " + std::string(Flag));
    EXPECT_EQ(R.Exit, 2) << Flag << ": " << R.Output;
    EXPECT_NE(R.Output.find("missing value for " + std::string(Flag)),
              std::string::npos)
        << Flag << ": " << R.Output;
  }
}

TEST(Cli, ValidNumericFlagsStillRun) {
  CliResult R = runSignalc("--builtin FIG5_ALARM --simulate 4 --seed 3");
  EXPECT_EQ(R.Exit, 0) << R.Output;
  EXPECT_NE(R.Output.find("simulation (4 instants, seed 3)"),
            std::string::npos)
      << R.Output;
}

TEST(Cli, FleetSimulationRunsFromTheCli) {
  CliResult R = runSignalc(
      "--builtin FIG5_ALARM --simulate 16 --fleet 3 --threads 2 --seed 5");
  EXPECT_EQ(R.Exit, 0) << R.Output;
  EXPECT_NE(R.Output.find("fleet simulation (3 instances, 16 instants, "
                          "seed 5"),
            std::string::npos)
      << R.Output;
  // Every instance's trace prints, in instance order.
  size_t I0 = R.Output.find("instance 0:");
  size_t I1 = R.Output.find("instance 1:");
  size_t I2 = R.Output.find("instance 2:");
  EXPECT_NE(I0, std::string::npos) << R.Output;
  EXPECT_LT(I0, I1);
  EXPECT_LT(I1, I2);
}

TEST(Cli, FleetInstanceReplaysTheScalarSeed) {
  // Fleet instance j draws from seed S + j: instance 1 of a seed-5 fleet
  // must print exactly the trace of a scalar run with seed 6.
  CliResult F = runSignalc(
      "--builtin FIG5_ALARM --simulate 24 --fleet 3 --seed 5");
  ASSERT_EQ(F.Exit, 0) << F.Output;
  size_t Beg = F.Output.find("instance 1:\n");
  size_t End = F.Output.find("instance 2:\n");
  ASSERT_NE(Beg, std::string::npos) << F.Output;
  ASSERT_NE(End, std::string::npos) << F.Output;
  std::string FleetTrace =
      F.Output.substr(Beg + 12, End - (Beg + 12));

  CliResult S = runSignalc("--builtin FIG5_ALARM --simulate 24 --seed 6");
  ASSERT_EQ(S.Exit, 0) << S.Output;
  size_t Hdr = S.Output.find("simulation (24 instants, seed 6):\n");
  ASSERT_NE(Hdr, std::string::npos) << S.Output;
  std::string ScalarTrace =
      S.Output.substr(S.Output.find('\n', Hdr) + 1);

  EXPECT_EQ(FleetTrace, ScalarTrace);
}

TEST(Cli, FleetStatsSumCountersAcrossInstances) {
  CliResult One = runSignalc(
      "--builtin FIG5_ALARM --simulate 16 --fleet 1 --seed 9 --stats");
  CliResult Two = runSignalc(
      "--builtin FIG5_ALARM --simulate 16 --fleet 2 --seed 9 --stats");
  ASSERT_EQ(One.Exit, 0) << One.Output;
  ASSERT_EQ(Two.Exit, 0) << Two.Output;
  EXPECT_NE(One.Output.find("stats: mode=fleet instants=16"),
            std::string::npos)
      << One.Output;
  EXPECT_NE(Two.Output.find("stats: mode=fleet instants=32"),
            std::string::npos)
      << Two.Output;
}

TEST(Cli, UnknownOptionExitsTwo) {
  CliResult R = runSignalc("--builtin FIG5_ALARM --no-such-flag");
  EXPECT_EQ(R.Exit, 2) << R.Output;
  EXPECT_NE(R.Output.find("unknown option '--no-such-flag'"),
            std::string::npos)
      << R.Output;
}
