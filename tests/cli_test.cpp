//===--- cli_test.cpp - signalc command-line regression tests -------------===//
///
/// Subprocess tests of the installed `signalc` binary's argument
/// handling. The numeric flags (--simulate, --batch, --seed, --fleet,
/// --threads) share one checked parse: a malformed, out-of-range or
/// missing operand must be a diagnosed exit-code-2 failure naming the
/// flag — historically `--batch abc` was an uncaught std::stoul throw
/// and a flag given as the last argument was silently dropped.
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include <sys/wait.h>
#include <unistd.h>

namespace {

struct CliResult {
  int Exit = -1;
  std::string Output; ///< stdout and stderr, interleaved.
};

/// Runs `signalc <Args>` and captures exit code plus combined output.
CliResult runSignalc(const std::string &Args) {
  CliResult R;
  std::string Cmd = std::string(SIGNALC_BIN) + " " + Args + " 2>&1";
  FILE *P = popen(Cmd.c_str(), "r");
  if (!P)
    return R;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof Buf, P)) > 0)
    R.Output.append(Buf, N);
  int St = pclose(P);
  if (WIFEXITED(St))
    R.Exit = WEXITSTATUS(St);
  return R;
}

const char *numericFlags[] = {"--simulate", "--batch", "--seed", "--fleet",
                              "--threads"};

} // namespace

TEST(Cli, MalformedNumericOperandIsDiagnosedPerFlag) {
  for (const char *Flag : numericFlags) {
    CliResult R =
        runSignalc("--builtin FIG5_ALARM " + std::string(Flag) + " abc");
    EXPECT_EQ(R.Exit, 2) << Flag << ": " << R.Output;
    EXPECT_NE(R.Output.find("invalid value 'abc' for " + std::string(Flag)),
              std::string::npos)
        << Flag << ": " << R.Output;
  }
}

TEST(Cli, NegativeNumericOperandIsDiagnosed) {
  CliResult R = runSignalc("--builtin FIG5_ALARM --simulate -5");
  EXPECT_EQ(R.Exit, 2) << R.Output;
  EXPECT_NE(R.Output.find("invalid value '-5' for --simulate"),
            std::string::npos)
      << R.Output;
}

TEST(Cli, OutOfRangeSeedIsDiagnosedNotThrown) {
  // 20 digits: above 2^64-1. Historically this was an uncaught
  // std::out_of_range from std::stoull (an abort, not a diagnostic).
  CliResult R =
      runSignalc("--builtin FIG5_ALARM --seed 99999999999999999999");
  EXPECT_EQ(R.Exit, 2) << R.Output;
  EXPECT_NE(R.Output.find("for --seed is out of range"), std::string::npos)
      << R.Output;
}

TEST(Cli, OutOfRangeUnsignedFlagIsDiagnosed) {
  // Fits in 64 bits but not in the 32-bit instant/instance counts.
  for (const char *Flag : {"--simulate", "--fleet"}) {
    CliResult R = runSignalc("--builtin FIG5_ALARM " + std::string(Flag) +
                             " 99999999999");
    EXPECT_EQ(R.Exit, 2) << Flag << ": " << R.Output;
    EXPECT_NE(R.Output.find("is out of range (max 4294967295)"),
              std::string::npos)
        << Flag << ": " << R.Output;
  }
}

TEST(Cli, MissingOperandAsLastArgumentIsDiagnosedPerFlag) {
  // A numeric flag as the very last argument used to be silently
  // dropped; it must diagnose the missing operand and exit 2.
  for (const char *Flag : numericFlags) {
    CliResult R = runSignalc("--builtin FIG5_ALARM " + std::string(Flag));
    EXPECT_EQ(R.Exit, 2) << Flag << ": " << R.Output;
    EXPECT_NE(R.Output.find("missing value for " + std::string(Flag)),
              std::string::npos)
        << Flag << ": " << R.Output;
  }
}

TEST(Cli, ValidNumericFlagsStillRun) {
  CliResult R = runSignalc("--builtin FIG5_ALARM --simulate 4 --seed 3");
  EXPECT_EQ(R.Exit, 0) << R.Output;
  EXPECT_NE(R.Output.find("simulation (4 instants, seed 3)"),
            std::string::npos)
      << R.Output;
}

TEST(Cli, FleetSimulationRunsFromTheCli) {
  CliResult R = runSignalc(
      "--builtin FIG5_ALARM --simulate 16 --fleet 3 --threads 2 --seed 5");
  EXPECT_EQ(R.Exit, 0) << R.Output;
  EXPECT_NE(R.Output.find("fleet simulation (3 instances, 16 instants, "
                          "seed 5"),
            std::string::npos)
      << R.Output;
  // Every instance's trace prints, in instance order.
  size_t I0 = R.Output.find("instance 0:");
  size_t I1 = R.Output.find("instance 1:");
  size_t I2 = R.Output.find("instance 2:");
  EXPECT_NE(I0, std::string::npos) << R.Output;
  EXPECT_LT(I0, I1);
  EXPECT_LT(I1, I2);
}

TEST(Cli, FleetInstanceReplaysTheScalarSeed) {
  // Fleet instance j draws from seed S + j: instance 1 of a seed-5 fleet
  // must print exactly the trace of a scalar run with seed 6.
  CliResult F = runSignalc(
      "--builtin FIG5_ALARM --simulate 24 --fleet 3 --seed 5");
  ASSERT_EQ(F.Exit, 0) << F.Output;
  size_t Beg = F.Output.find("instance 1:\n");
  size_t End = F.Output.find("instance 2:\n");
  ASSERT_NE(Beg, std::string::npos) << F.Output;
  ASSERT_NE(End, std::string::npos) << F.Output;
  std::string FleetTrace =
      F.Output.substr(Beg + 12, End - (Beg + 12));

  CliResult S = runSignalc("--builtin FIG5_ALARM --simulate 24 --seed 6");
  ASSERT_EQ(S.Exit, 0) << S.Output;
  size_t Hdr = S.Output.find("simulation (24 instants, seed 6):\n");
  ASSERT_NE(Hdr, std::string::npos) << S.Output;
  std::string ScalarTrace =
      S.Output.substr(S.Output.find('\n', Hdr) + 1);

  EXPECT_EQ(FleetTrace, ScalarTrace);
}

TEST(Cli, FleetStatsSumCountersAcrossInstances) {
  CliResult One = runSignalc(
      "--builtin FIG5_ALARM --simulate 16 --fleet 1 --seed 9 --stats");
  CliResult Two = runSignalc(
      "--builtin FIG5_ALARM --simulate 16 --fleet 2 --seed 9 --stats");
  ASSERT_EQ(One.Exit, 0) << One.Output;
  ASSERT_EQ(Two.Exit, 0) << Two.Output;
  EXPECT_NE(One.Output.find("stats: mode=fleet instants=16"),
            std::string::npos)
      << One.Output;
  EXPECT_NE(Two.Output.find("stats: mode=fleet instants=32"),
            std::string::npos)
      << Two.Output;
}

TEST(Cli, UnknownOptionExitsTwo) {
  CliResult R = runSignalc("--builtin FIG5_ALARM --no-such-flag");
  EXPECT_EQ(R.Exit, 2) << R.Output;
  EXPECT_NE(R.Output.find("unknown option '--no-such-flag'"),
            std::string::npos)
      << R.Output;
}

TEST(Cli, UnknownOptionSuggestsTheNearestFlag) {
  // A one-character typo of a known flag earns a suggestion.
  CliResult R = runSignalc("--builtin FIG5_ALARM --simulte 4");
  EXPECT_EQ(R.Exit, 2) << R.Output;
  EXPECT_NE(R.Output.find("unknown option '--simulte'"), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("did you mean '--simulate'?"), std::string::npos)
      << R.Output;
}

TEST(Cli, UnknownOptionFarFromEverythingGetsNoSuggestion) {
  // Nothing plausibly close: the diagnostic must not guess.
  CliResult R = runSignalc("--builtin FIG5_ALARM --zzqxj");
  EXPECT_EQ(R.Exit, 2) << R.Output;
  EXPECT_NE(R.Output.find("unknown option '--zzqxj'"), std::string::npos)
      << R.Output;
  EXPECT_EQ(R.Output.find("did you mean"), std::string::npos) << R.Output;
}

//===----------------------------------------------------------------------===//
// Record / replay round trips through the binary trace format.
//===----------------------------------------------------------------------===//

namespace {

/// A per-test temp path under gtest's temp dir.
std::string tempTracePath(const char *Tag) {
  return ::testing::TempDir() + "sigc_cli_" + Tag + "_" +
         std::to_string(::getpid()) + ".sgtr";
}

} // namespace

TEST(Cli, RecordThenReplayRoundTripsFromTheCli) {
  std::string Path = tempTracePath("roundtrip");
  CliResult Rec = runSignalc(
      "--builtin FIG5_ALARM --simulate 50 --seed 7 --record " + Path);
  ASSERT_EQ(Rec.Exit, 0) << Rec.Output;
  EXPECT_NE(Rec.Output.find("recorded 50 instant(s) to"), std::string::npos)
      << Rec.Output;

  // Replay through both sources: the mmap fast path and the buffered
  // read(2) path must agree.
  CliResult Mmap =
      runSignalc("--builtin FIG5_ALARM --replay " + Path);
  EXPECT_EQ(Mmap.Exit, 0) << Mmap.Output;
  EXPECT_NE(Mmap.Output.find("replay (50 instants, mmap):"),
            std::string::npos)
      << Mmap.Output;
  EXPECT_NE(Mmap.Output.find("match the trace"), std::string::npos)
      << Mmap.Output;

  CliResult Buf = runSignalc("--builtin FIG5_ALARM --replay " + Path +
                             " --replay-buffered");
  EXPECT_EQ(Buf.Exit, 0) << Buf.Output;
  EXPECT_NE(Buf.Output.find("replay (50 instants, buffered):"),
            std::string::npos)
      << Buf.Output;
  std::remove(Path.c_str());
}

TEST(Cli, ReplayOfGarbageIsAPositionedExitTwo) {
  std::string Path = tempTracePath("garbage");
  FILE *F = fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr);
  fputs("this is not a signal trace at all", F);
  fclose(F);

  CliResult R = runSignalc("--builtin FIG5_ALARM --replay " + Path);
  EXPECT_EQ(R.Exit, 2) << R.Output;
  EXPECT_NE(R.Output.find("offset 0"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("bad magic"), std::string::npos) << R.Output;
  std::remove(Path.c_str());
}

TEST(Cli, ReplayOfTruncatedRecordingIsAPositionedExitTwo) {
  std::string Path = tempTracePath("truncated");
  CliResult Rec = runSignalc(
      "--builtin FIG5_ALARM --simulate 40 --seed 3 --record " + Path);
  ASSERT_EQ(Rec.Exit, 0) << Rec.Output;

  // Chop the file mid-stream: the replay must diagnose the truncation
  // with a byte offset, not read past the end or pass silently.
  FILE *F = fopen(Path.c_str(), "rb+");
  ASSERT_NE(F, nullptr);
  fseek(F, 0, SEEK_END);
  long Size = ftell(F);
  ASSERT_GT(Size, 40);
  fclose(F);
  ASSERT_EQ(truncate(Path.c_str(), Size - 20), 0);

  for (const char *Extra : {"", " --replay-buffered"}) {
    CliResult R = runSignalc("--builtin FIG5_ALARM --replay " + Path + Extra);
    EXPECT_EQ(R.Exit, 2) << R.Output;
    EXPECT_NE(R.Output.find("offset"), std::string::npos) << R.Output;
    EXPECT_NE(R.Output.find("stream ends inside"), std::string::npos)
        << R.Output;
  }
  std::remove(Path.c_str());
}

TEST(Cli, ReplayAgainstTheWrongProcessIsAnInterfaceMismatch) {
  std::string Path = tempTracePath("mismatch");
  CliResult Rec = runSignalc(
      "--builtin FIG5_ALARM --simulate 20 --seed 5 --record " + Path);
  ASSERT_EQ(Rec.Exit, 0) << Rec.Output;

  CliResult R = runSignalc("--builtin WATCH --replay " + Path);
  EXPECT_EQ(R.Exit, 2) << R.Output;
  EXPECT_NE(R.Output.find("does not match"), std::string::npos) << R.Output;
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Serving flags ride the same checked numeric parse, and a dead output
// pipe is a diagnosed exit, not death by SIGPIPE.
//===----------------------------------------------------------------------===//

namespace {

const char *serveNumericFlags[] = {"--resume",        "--batch-budget",
                                   "--idle-timeout",  "--write-timeout",
                                   "--drain-grace",   "--sndbuf"};

} // namespace

TEST(Cli, ServeFlagsRejectMalformedOperands) {
  for (const char *Flag : serveNumericFlags) {
    CliResult R =
        runSignalc("--builtin FIG5_ALARM " + std::string(Flag) + " abc");
    EXPECT_EQ(R.Exit, 2) << Flag << ": " << R.Output;
    EXPECT_NE(R.Output.find("invalid value 'abc' for " + std::string(Flag)),
              std::string::npos)
        << Flag << ": " << R.Output;
  }
}

TEST(Cli, ServeFlagsDiagnoseMissingOperandAsLastArgument) {
  for (const char *Flag : serveNumericFlags) {
    CliResult R = runSignalc("--builtin FIG5_ALARM " + std::string(Flag));
    EXPECT_EQ(R.Exit, 2) << Flag << ": " << R.Output;
    EXPECT_NE(R.Output.find("missing value for " + std::string(Flag)),
              std::string::npos)
        << Flag << ": " << R.Output;
  }
}

TEST(Cli, ServeFlagsDiagnoseOutOfRangeOperands) {
  // All but --batch-budget carry 32-bit counts; --batch-budget is 64-bit
  // and must overflow only past 2^64-1.
  for (const char *Flag : {"--resume", "--idle-timeout", "--write-timeout",
                           "--drain-grace", "--sndbuf"}) {
    CliResult R = runSignalc("--builtin FIG5_ALARM " + std::string(Flag) +
                             " 99999999999");
    EXPECT_EQ(R.Exit, 2) << Flag << ": " << R.Output;
    EXPECT_NE(R.Output.find("is out of range (max 4294967295)"),
              std::string::npos)
        << Flag << ": " << R.Output;
  }
  CliResult Fits =
      runSignalc("--builtin FIG5_ALARM --simulate 4 --batch-budget "
                 "99999999999");
  EXPECT_EQ(Fits.Exit, 0) << Fits.Output;
  CliResult Over = runSignalc("--builtin FIG5_ALARM --batch-budget "
                              "99999999999999999999");
  EXPECT_EQ(Over.Exit, 2) << Over.Output;
  EXPECT_NE(Over.Output.find("for --batch-budget is out of range"),
            std::string::npos)
      << Over.Output;
}

TEST(Cli, ServeFlagTypoSuggestsTheNearestFlag) {
  CliResult R = runSignalc("--builtin FIG5_ALARM --drain-grce 100");
  EXPECT_EQ(R.Exit, 2) << R.Output;
  EXPECT_NE(R.Output.find("unknown option '--drain-grce'"), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("did you mean '--drain-grace'?"), std::string::npos)
      << R.Output;
}

TEST(Cli, RecordToDeadPipeIsExitTwoNotSigpipeDeath) {
  // Record to a pipe whose read end is already closed: the very first
  // header write raises EPIPE. SIGPIPE is ignored at startup, so the
  // process must EXIT (code 2) with the sink's byte-positioned
  // diagnostic — not die on the signal.
  int Pipe[2];
  ASSERT_EQ(::pipe(Pipe), 0);
  ::close(Pipe[0]); // No reader will ever exist.

  std::string ErrPath = tempTracePath("sigpipe_err");
  pid_t Pid = ::fork();
  ASSERT_GE(Pid, 0);
  if (Pid == 0) {
    ::dup2(Pipe[1], 3);
    ::close(Pipe[1]);
    FILE *Err = fopen(ErrPath.c_str(), "wb");
    if (Err)
      ::dup2(fileno(Err), 2);
    ::execl(SIGNALC_BIN, SIGNALC_BIN, "--builtin", "FIG5_ALARM",
            "--simulate", "20", "--record", "/dev/fd/3",
            static_cast<char *>(nullptr));
    _exit(127);
  }
  ::close(Pipe[1]);
  int St = 0;
  ASSERT_EQ(::waitpid(Pid, &St, 0), Pid);
  ASSERT_TRUE(WIFEXITED(St)) << "killed by signal "
                             << (WIFSIGNALED(St) ? WTERMSIG(St) : 0);
  EXPECT_EQ(WEXITSTATUS(St), 2);

  std::string Err;
  if (FILE *F = fopen(ErrPath.c_str(), "rb")) {
    char Buf[4096];
    size_t N;
    while ((N = fread(Buf, 1, sizeof Buf, F)) > 0)
      Err.append(Buf, N);
    fclose(F);
  }
  EXPECT_NE(Err.find("write failed on '/dev/fd/3'"), std::string::npos)
      << Err;
  EXPECT_NE(Err.find("at byte"), std::string::npos) << Err;
  EXPECT_NE(Err.find("Broken pipe"), std::string::npos) << Err;
  std::remove(ErrPath.c_str());
}

//===----------------------------------------------------------------------===//
// Tiered native execution flags (--native / --cache-dir / --tier-after).
//===----------------------------------------------------------------------===//

namespace {

/// A throwaway cache directory for one test (removed with contents).
struct TempCacheDirCli {
  std::string Path;
  TempCacheDirCli() {
    Path = ::testing::TempDir() + "sigc_cli_cache_" +
           std::to_string(::getpid());
    std::string Cmd = "rm -rf " + Path + " && mkdir -p " + Path;
    EXPECT_EQ(std::system(Cmd.c_str()), 0);
  }
  ~TempCacheDirCli() { std::system(("rm -rf " + Path).c_str()); }
};

bool cliHostCcAvailable() {
  return std::system("command -v cc >/dev/null 2>&1 || "
                     "command -v gcc >/dev/null 2>&1 || "
                     "command -v clang >/dev/null 2>&1") == 0;
}

} // namespace

TEST(Cli, NativeFlagTyposSuggestTheNearestFlag) {
  struct {
    const char *Typo, *Suggest;
  } Cases[] = {{"--nativ", "--native"},
               {"--cache-dri", "--cache-dir"},
               {"--tier-aftr", "--tier-after"}};
  for (auto C : Cases) {
    CliResult R = runSignalc("--builtin FIG5_ALARM --simulate 1 " +
                             std::string(C.Typo) + " x");
    EXPECT_EQ(R.Exit, 2) << C.Typo << ": " << R.Output;
    EXPECT_NE(R.Output.find("did you mean '" + std::string(C.Suggest) +
                            "'?"),
              std::string::npos)
        << C.Typo << ": " << R.Output;
  }
}

TEST(Cli, NativeModeOperandIsValidated) {
  CliResult R =
      runSignalc("--builtin FIG5_ALARM --simulate 1 --native sometimes");
  EXPECT_EQ(R.Exit, 2) << R.Output;
  EXPECT_NE(R.Output.find("unknown --native 'sometimes'"), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("valid modes: off, auto, force"), std::string::npos)
      << R.Output;
  // The = spelling goes through the same checked parse.
  CliResult R2 =
      runSignalc("--builtin FIG5_ALARM --simulate 1 --native=never");
  EXPECT_EQ(R2.Exit, 2) << R2.Output;
  EXPECT_NE(R2.Output.find("unknown --native 'never'"), std::string::npos)
      << R2.Output;
}

TEST(Cli, TierAfterOperandIsChecked) {
  CliResult Bad =
      runSignalc("--builtin FIG5_ALARM --simulate 1 --tier-after abc");
  EXPECT_EQ(Bad.Exit, 2) << Bad.Output;
  EXPECT_NE(Bad.Output.find("invalid value 'abc' for --tier-after"),
            std::string::npos)
      << Bad.Output;
  CliResult Missing =
      runSignalc("--builtin FIG5_ALARM --simulate 1 --tier-after");
  EXPECT_EQ(Missing.Exit, 2) << Missing.Output;
  EXPECT_NE(Missing.Output.find("missing value for --tier-after"),
            std::string::npos)
      << Missing.Output;
}

TEST(Cli, NativeForceMatchesInterpretedTraceAndReportsTiers) {
  if (!cliHostCcAvailable())
    GTEST_SKIP() << "no host C compiler";
  TempCacheDirCli Cache;
  CliResult Off = runSignalc("--builtin FIG5_ALARM --simulate 48 --seed 9");
  ASSERT_EQ(Off.Exit, 0) << Off.Output;
  CliResult Force =
      runSignalc("--builtin FIG5_ALARM --simulate 48 --seed 9 "
                 "--native force --cache-dir " +
                 Cache.Path);
  ASSERT_EQ(Force.Exit, 0) << Force.Output;
  // Identical combined output: the native tier is trace-invisible.
  EXPECT_EQ(Off.Output, Force.Output);

  // --stats adds the tier split; the whole run went native.
  CliResult Stats =
      runSignalc("--builtin FIG5_ALARM --simulate 48 --seed 9 "
                 "--native force --stats --cache-dir " +
                 Cache.Path);
  ASSERT_EQ(Stats.Exit, 0) << Stats.Output;
  EXPECT_NE(Stats.Output.find("stats: tier native=force cache=hit "
                              "vm_instants=0 native_instants=48"),
            std::string::npos)
      << Stats.Output;
}

TEST(Cli, AutoModeWarmHitPromotesAtTierAfter) {
  if (!cliHostCcAvailable())
    GTEST_SKIP() << "no host C compiler";
  TempCacheDirCli Cache;
  // Warm the cache.
  CliResult Warm = runSignalc("--builtin FIG5_ALARM --simulate 4 "
                              "--native force --cache-dir " +
                              Cache.Path);
  ASSERT_EQ(Warm.Exit, 0) << Warm.Output;
  // Warm hit: native from the promotion threshold on, VM before it.
  CliResult R = runSignalc("--builtin FIG5_ALARM --simulate 48 --seed 9 "
                           "--native=auto --tier-after=16 --stats "
                           "--cache-dir=" +
                           Cache.Path);
  ASSERT_EQ(R.Exit, 0) << R.Output;
  EXPECT_NE(R.Output.find("stats: tier native=auto cache=hit "
                          "vm_instants=16 native_instants=32"),
            std::string::npos)
      << R.Output;
}

TEST(Cli, FleetNativeMatchesInterpretedFleet) {
  if (!cliHostCcAvailable())
    GTEST_SKIP() << "no host C compiler";
  TempCacheDirCli Cache;
  CliResult Off =
      runSignalc("--builtin FIG5_ALARM --simulate 32 --seed 5 --fleet 3");
  ASSERT_EQ(Off.Exit, 0) << Off.Output;
  CliResult Nat =
      runSignalc("--builtin FIG5_ALARM --simulate 32 --seed 5 --fleet 3 "
                 "--native force --cache-dir " +
                 Cache.Path);
  ASSERT_EQ(Nat.Exit, 0) << Nat.Output;
  EXPECT_EQ(Off.Output, Nat.Output);
}
