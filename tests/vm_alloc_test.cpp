//===--- vm_alloc_test.cpp - Steady-state allocation pin for the VM -------===//
///
/// The slot-resolved VM's contract is *zero heap allocation per instant*
/// in the steady state: slots, scratch expression storage and environment
/// bindings are all set up front, and the per-instant loop only indexes
/// into them. This test pins the contract with a counting allocator: the
/// whole test binary's operator new/delete tally every allocation, and a
/// measured window of VM instants after warm-up must tally zero.
///
/// The legacy StepExecutor is measured alongside, documenting what the VM
/// fixes (its EvalFunc path allocates argument and result vectors per
/// instruction per instant).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "interp/FleetExecutor.h"
#include "interp/StepExecutor.h"
#include "interp/VmExecutor.h"
#include "programs/Programs.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <functional>
#include <memory>
#include <new>
#include <vector>

namespace {

std::atomic<uint64_t> AllocCount{0};

} // namespace

// Counting global allocator: every path through operator new lands here,
// including the C++17 aligned and the nothrow overloads (so a future
// over-aligned member cannot silently escape the pin).
void *operator new(size_t Size) {
  AllocCount.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(Size ? Size : 1))
    return P;
  throw std::bad_alloc();
}
void *operator new[](size_t Size) { return ::operator new(Size); }
void *operator new(size_t Size, std::align_val_t Align) {
  AllocCount.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::aligned_alloc(static_cast<size_t>(Align),
                                   (Size + static_cast<size_t>(Align) - 1) &
                                       ~(static_cast<size_t>(Align) - 1)))
    return P;
  throw std::bad_alloc();
}
void *operator new[](size_t Size, std::align_val_t Align) {
  return ::operator new(Size, Align);
}
void *operator new(size_t Size, const std::nothrow_t &) noexcept {
  AllocCount.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(Size ? Size : 1);
}
void *operator new[](size_t Size, const std::nothrow_t &T) noexcept {
  return ::operator new(Size, T);
}
void operator delete(void *P) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete(void *P, size_t) noexcept { std::free(P); }
void operator delete[](void *P, size_t) noexcept { std::free(P); }
void operator delete(void *P, std::align_val_t) noexcept { std::free(P); }
void operator delete[](void *P, std::align_val_t) noexcept { std::free(P); }
void operator delete(void *P, size_t, std::align_val_t) noexcept {
  std::free(P);
}
void operator delete[](void *P, size_t, std::align_val_t) noexcept {
  std::free(P);
}
void operator delete(void *P, const std::nothrow_t &) noexcept {
  std::free(P);
}
void operator delete[](void *P, const std::nothrow_t &) noexcept {
  std::free(P);
}

using namespace sigc;
using namespace sigc::test;

namespace {

/// Random environment that discards outputs without recording (recording
/// grows a vector; the engine contract under test is the executor's).
class DiscardEnvironment : public RandomEnvironment {
public:
  using RandomEnvironment::RandomEnvironment;
  uint64_t Events = 0;
  void writeOutput(EnvOutputId, unsigned, const Value &) override {
    ++Events;
  }
};

uint64_t allocsDuring(const std::function<void()> &Fn) {
  uint64_t Before = AllocCount.load(std::memory_order_relaxed);
  Fn();
  return AllocCount.load(std::memory_order_relaxed) - Before;
}

} // namespace

TEST(VmAllocation, ZeroHeapAllocationsPerInstantInSteadyState) {
  ProgramShape Shape;
  Shape.DividerStages = 24;
  auto C = compileOk(generateProgram("CHAIN", Shape));

  CompiledStep CS = CompiledStep::build(*C->Kernel, C->Step);
  VmExecutor Exec(CS);
  DiscardEnvironment Env(42, 800);

  // Warm up: binding resolution and any lazy one-time setup happen here.
  Exec.run(Env, 8);

  uint64_t Allocs = allocsDuring([&] { Exec.run(Env, 512); });
  EXPECT_EQ(Allocs, 0u)
      << "the slot-VM allocated on the hot path; the CompiledStep "
         "contract is zero per-instant heap allocation";
  EXPECT_GT(Env.Events, 0u) << "the run must actually produce outputs";
}

TEST(VmAllocation, BatchedStepNIsZeroAllocInSteadyState) {
  // stepN's batch buffers (tick/input prefetch, output flush, watch
  // recording) are preallocated; once warm, whole batched windows run
  // without a single heap allocation — the boundary-amortization cannot
  // buy throughput with hidden allocation.
  ProgramShape Shape;
  Shape.DividerStages = 24;
  auto C = compileOk(generateProgram("CHAIN", Shape));

  VmExecutor Exec(C->Compiled);
  DiscardEnvironment Env(42, 800);

  // Warm up: binding, batch-buffer growth and lazy setup happen here.
  Exec.runBatched(Env, 64, 32);

  uint64_t Allocs = allocsDuring([&] {
    for (unsigned Round = 0; Round < 8; ++Round)
      Exec.runBatched(Env, 512, 32);
  });
  EXPECT_EQ(Allocs, 0u)
      << "stepN allocated on the hot path; batch buffers must be "
         "preallocated and reused";
  EXPECT_GT(Env.Events, 0u) << "the run must actually produce outputs";
}

TEST(VmAllocation, FleetSweepIsZeroAllocInSteadyState) {
  // The fleet's SoA lane-block sweep inherits the VM's contract: state,
  // scratch, mask stacks, prefetch and flush buffers are all sized up
  // front (or grown during warm-up), and warm windows run allocation-
  // free. Measured on the inline single-shard path — spawning worker
  // threads allocates by nature, so the Threads>1 path is exempt.
  ProgramShape Shape;
  Shape.DividerStages = 24;
  auto C = compileOk(generateProgram("CHAIN", Shape));

  std::vector<std::unique_ptr<DiscardEnvironment>> Owned;
  std::vector<Environment *> Envs;
  for (unsigned J = 0; J < 6; ++J) {
    Owned.push_back(std::make_unique<DiscardEnvironment>(42 + J, 800));
    Envs.push_back(Owned.back().get());
  }
  FleetExecutor::Config Cfg;
  Cfg.LaneBlock = 4; // 6 instances: one full block plus a partial tail.
  Cfg.Threads = 1;
  FleetExecutor Exec(C->Compiled, 6, Cfg);

  // Warm up: binding, window-buffer growth and lazy setup happen here.
  Exec.runBatched(Envs, 64, 32);

  uint64_t Allocs = allocsDuring([&] {
    for (unsigned Round = 0; Round < 8; ++Round)
      Exec.runBatched(Envs, 512, 32);
  });
  EXPECT_EQ(Allocs, 0u)
      << "the fleet sweep allocated on the hot path; SoA state, masks "
         "and exchange buffers must be preallocated and reused";
  uint64_t Events = 0;
  for (const auto &E : Owned)
    Events += E->Events;
  EXPECT_GT(Events, 0u) << "the run must actually produce outputs";
}

TEST(VmAllocation, LegacyStepExecutorAllocatesWhatTheVmEliminated) {
  ProgramShape Shape;
  Shape.DividerStages = 24;
  auto C = compileOk(generateProgram("CHAIN", Shape));

  StepExecutor Exec(*C->Kernel, C->Step);
  DiscardEnvironment Env(42, 800);
  Exec.run(Env, 8, ExecMode::Nested);

  uint64_t Allocs = allocsDuring([&] { Exec.run(Env, 512, ExecMode::Nested); });
  EXPECT_GT(Allocs, 0u)
      << "the legacy executor's EvalFunc path allocates per instant; if "
         "this ever reaches zero, retire the VM's advantage note in the "
         "README";
}

TEST(VmAllocation, ScriptedAdapterStillWorksUnderCountingAllocator) {
  // Sanity: the counting allocator must not change semantics anywhere.
  auto C = compileOk(proc("? integer A; ! integer Y;", "   Y := A + 1"));
  ScriptedEnvironment Env;
  Env.tickAlways();
  Env.set("A", 0, Value::makeInt(41));
  CompiledStep CS = CompiledStep::build(*C->Kernel, C->Step);
  VmExecutor Exec(CS);
  Exec.step(Env, 0);
  EXPECT_EQ(formatEvents(Env.outputs()), "0 Y=42\n");
}
