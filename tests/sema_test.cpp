//===--- sema_test.cpp - Type checking and kernel lowering ----------------===//

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace sigc;
using namespace sigc::test;

namespace {

/// Compiles and returns the kernel dump for structural checks.
std::string kernelOf(const std::string &Source) {
  auto C = compileOk(Source);
  if (!C->Ok)
    return "<failed>";
  return C->Kernel->dump(C->names());
}

} // namespace

TEST(Sema, SimpleFuncEquation) {
  std::string K = kernelOf(proc("? integer A, B; ! integer Y;",
                                "   Y := A + B"));
  EXPECT_NE(K.find("Y := (A + B)"), std::string::npos) << K;
}

TEST(Sema, NestedWhenIsFlattened) {
  auto C = compileOk(proc("? integer A, B; boolean C; ! integer Y;",
                          "   Y := (A + B) when C"));
  // One fresh signal for A+B, then a When equation.
  unsigned Fresh = 0;
  for (const KernelSignal &S : C->Kernel->Signals)
    Fresh += S.IsFresh;
  EXPECT_EQ(Fresh, 1u);
  bool FoundWhen = false;
  for (const KernelEq &Eq : C->Kernel->Equations)
    FoundWhen |= Eq.Kind == KernelEqKind::When;
  EXPECT_TRUE(FoundWhen);
}

TEST(Sema, MixedNumericDefaultRejected) {
  // Integer/real promotion across a default would make the merged
  // signal's runtime kind depend on which arm is present each instant —
  // unreproducible by any static lowering (the C emitter's typed
  // locals). SIGNAL requires like-typed operands; so do we.
  auto C = compileErr(proc("? integer A; real B; boolean CC; ! real Y;",
                           "   Y := (A when CC) default B"),
                      CompileStage::Sema);
  EXPECT_NE(C->Diags.render().find(
                "operands of 'default' must have the same numeric type"),
            std::string::npos)
      << C->Diags.render();
}

TEST(Sema, UndeclaredSignalRejected) {
  auto C = compileErr(proc("? integer A; ! integer Y;", "   Y := A + Z"),
                      CompileStage::Sema);
  EXPECT_NE(C->Diags.render().find("undeclared signal 'Z'"),
            std::string::npos);
}

TEST(Sema, DoubleDefinitionRejected) {
  auto C = compileErr(proc("? integer A; ! integer Y;",
                           "   Y := A\n   | Y := A + 1"),
                      CompileStage::Sema);
  EXPECT_NE(C->Diags.render().find("defined more than once"),
            std::string::npos);
}

TEST(Sema, InputCannotBeDefined) {
  auto C = compileErr(proc("? integer A; ! integer Y;",
                           "   A := 1 when (A > 0)\n   | Y := A"),
                      CompileStage::Sema);
  EXPECT_NE(C->Diags.render().find("cannot be defined"), std::string::npos);
}

TEST(Sema, OutputMustBeDefined) {
  auto C = compileErr(proc("? integer A; ! integer Y;",
                           "   synchro {A, A}"),
                      CompileStage::Sema);
  EXPECT_NE(C->Diags.render().find("never defined"), std::string::npos);
}

TEST(Sema, UndefinedLocalWarnsAndIsFree) {
  auto C = compileOk(proc("? integer A; ! integer Y;",
                          "   Y := A + B", "integer B;"));
  EXPECT_GE(C->Diags.warningCount(), 1u);
}

TEST(Sema, TypeErrorArithOnBool) {
  auto C = compileErr(proc("? boolean A; ! integer Y;", "   Y := A + 1"),
                      CompileStage::Sema);
  EXPECT_NE(C->Diags.render().find("numeric"), std::string::npos);
}

TEST(Sema, TypeErrorNotOnInteger) {
  compileErr(proc("? integer A; ! boolean Y;", "   Y := not A"), CompileStage::Sema);
}

TEST(Sema, TypeErrorWhenConditionNotBool) {
  auto C = compileErr(proc("? integer A, B; ! integer Y;",
                           "   Y := A when B"),
                      CompileStage::Sema);
  EXPECT_NE(C->Diags.render().find("must be boolean"), std::string::npos);
}

TEST(Sema, TypeErrorDefaultMismatch) {
  compileErr(proc("? integer A; boolean B; ! integer Y;",
                  "   Y := A default B"),
             CompileStage::Sema);
}

TEST(Sema, IntegerWidensToReal) {
  compileOk(proc("? integer A; real B; ! real Y;", "   Y := A + B"));
  compileOk(proc("? integer A; ! real Y;", "   Y := A"));
}

TEST(Sema, RealDoesNotNarrowToInteger) {
  compileErr(proc("? real A; ! integer Y;", "   Y := A"), CompileStage::Sema);
}

TEST(Sema, ModRequiresIntegers) {
  compileErr(proc("? real A; ! real Y;", "   Y := A mod 2"), CompileStage::Sema);
}

TEST(Sema, OrderingComparisonNeedsNumbers) {
  compileErr(proc("? boolean A, B; ! boolean Y;", "   Y := A < B"), CompileStage::Sema);
}

TEST(Sema, EqualityOnBooleansAllowed) {
  compileOk(proc("? boolean A, B; ! boolean Y;", "   Y := A = B"));
}

TEST(Sema, DelayOfConstantRejected) {
  compileErr(proc("? integer A; ! integer Y;", "   Y := 3 $ 1 init 0"),
             CompileStage::Sema);
}

TEST(Sema, DelayInitTypeMismatch) {
  compileErr(proc("? integer A; ! integer Y;", "   Y := A $ 1 init true"),
             CompileStage::Sema);
}

TEST(Sema, DeepDelayExpandsToChain) {
  auto C = compileOk(proc("? integer A; ! integer Y;",
                          "   Y := A $ 3 init 0"));
  unsigned Delays = 0;
  for (const KernelEq &Eq : C->Kernel->Equations)
    Delays += Eq.Kind == KernelEqKind::Delay;
  EXPECT_EQ(Delays, 3u);
}

TEST(Sema, ConstantDefaultOperandRejected) {
  auto C = compileErr(proc("? integer A; ! integer Y;",
                           "   Y := A default 0"),
                      CompileStage::Sema);
  EXPECT_NE(C->Diags.render().find("sample it with 'when'"),
            std::string::npos);
}

TEST(Sema, ConstantWhenValueAllowed) {
  std::string K = kernelOf(proc("? boolean C; ! integer Y;",
                                "   Y := 1 when C"));
  EXPECT_NE(K.find("1 when C"), std::string::npos) << K;
}

TEST(Sema, WhenNotUsesNegativeLiteral) {
  std::string K = kernelOf(proc("? integer A; boolean C; ! integer Y;",
                                "   Y := A when (not C)"));
  EXPECT_NE(K.find("when not C"), std::string::npos) << K;
}

TEST(Sema, UnaryWhenLowersToConstTrueWhen) {
  auto C = compileOk(proc("? boolean C; ! event Y;", "   Y := when C"));
  bool Found = false;
  for (const KernelEq &Eq : C->Kernel->Equations) {
    if (Eq.Kind != KernelEqKind::When)
      continue;
    Found = true;
    EXPECT_TRUE(Eq.WhenValue.IsConst);
    EXPECT_TRUE(Eq.WhenPositive);
  }
  EXPECT_TRUE(Found);
}

TEST(Sema, EventLowersToSelfEquality) {
  std::string K = kernelOf(proc("? integer A; ! event Y;",
                                "   Y := event A"));
  EXPECT_NE(K.find("(A = A)"), std::string::npos) << K;
}

TEST(Sema, CellExpansion) {
  auto C = compileOk(proc("? integer X; boolean B; ! integer Y;",
                          "   Y := X cell B init 7"));
  // Expansion adds: one Delay, the Default defining Y, an event func, a
  // when, a clock-union default, plus one clock constraint.
  unsigned Delays = 0, Defaults = 0, Whens = 0;
  for (const KernelEq &Eq : C->Kernel->Equations) {
    Delays += Eq.Kind == KernelEqKind::Delay;
    Defaults += Eq.Kind == KernelEqKind::Default;
    Whens += Eq.Kind == KernelEqKind::When;
  }
  EXPECT_EQ(Delays, 1u);
  EXPECT_EQ(Defaults, 2u);
  EXPECT_EQ(Whens, 1u);
  EXPECT_EQ(C->Kernel->Constraints.size(), 1u);
}

TEST(Sema, SynchroLowersToConstraints) {
  auto C = compileOk(proc("? integer A, B; ! integer Y;",
                          "   Y := A + B\n   | synchro {A, B}"));
  EXPECT_EQ(C->Kernel->Constraints.size(), 1u);
}

TEST(Sema, ClockEqLowersToConstraint) {
  auto C = compileOk(proc("? integer A, B; ! integer Y;",
                          "   Y := A\n   | A ^= B"));
  EXPECT_EQ(C->Kernel->Constraints.size(), 1u);
}

TEST(Sema, FreshNamesUnspeakable) {
  auto C = compileOk(proc("? integer A; boolean C; ! integer Y;",
                          "   Y := (A + 1) when C"));
  for (const KernelSignal &S : C->Kernel->Signals)
    if (S.IsFresh) {
      std::string Name(C->names().spelling(S.Name));
      EXPECT_NE(Name.find('$'), std::string::npos);
    }
}

TEST(Sema, SingleAssignmentAcrossNestedComposition) {
  compileErr(proc("? integer A; ! integer Y;",
                  "   (| Y := A |)\n   | (| Y := A + 1 |)"),
             CompileStage::Sema);
}

TEST(Sema, FuncArgsDeduplicated) {
  auto C = compileOk(proc("? integer A; ! integer Y;", "   Y := A + A"));
  for (const KernelEq &Eq : C->Kernel->Equations) {
    if (Eq.Kind == KernelEqKind::Func &&
        C->names().spelling(C->Kernel->Signals[Eq.Target].Name) == "Y") {
      EXPECT_EQ(Eq.Args.size(), 1u);
    }
  }
}

TEST(Sema, CountClockVariables) {
  auto C = compileOk(proc("? boolean A; ! boolean Y;", "   Y := not A"));
  // Y, A boolean: 2 signals -> 2 clock vars + 2*2 literals = 6.
  EXPECT_EQ(C->Kernel->countClockVariables(), 6u);
}
