//===--- graph_test.cpp - Conditional dependency graph & schedule ---------===//

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <unordered_map>

using namespace sigc;
using namespace sigc::test;

namespace {

/// Position of each action in the schedule.
std::unordered_map<int, int> positions(const CondDepGraph &G) {
  std::unordered_map<int, int> Pos;
  for (unsigned I = 0; I < G.schedule().size(); ++I)
    Pos[G.schedule()[I]] = static_cast<int>(I);
  return Pos;
}

} // namespace

TEST(Graph, ScheduleIsTopological) {
  auto C = compileOk(proc("? integer A; boolean C1; ! integer Y;",
                          "   T := A when C1\n   | Y := T + (T $ 1 init 0)",
                          "integer T;"));
  auto Pos = positions(C->Graph);
  for (unsigned From = 0; From < C->Graph.actions().size(); ++From)
    for (int To : C->Graph.successors()[From])
      EXPECT_LT(Pos[static_cast<int>(From)], Pos[To]);
}

TEST(Graph, ScheduleCoversAllActions) {
  auto C = compileOk(proc("? integer A, B; ! integer Y;",
                          "   Y := A default B"));
  EXPECT_EQ(C->Graph.schedule().size(), C->Graph.actions().size());
}

TEST(Graph, DelayBreaksCycles) {
  // Y := Y $ 1 + A is fine: the delay provides the old value.
  compileOk(proc("? integer A; ! integer Y;",
                 "   Y := (Y $ 1 init 0) + A"));
}

TEST(Graph, InstantaneousCycleRejected) {
  auto C = compileErr(proc("? integer A; ! integer Y;",
                           "   Y := Z + A\n   | Z := Y + A",
                           "integer Z;"),
                      CompileStage::Graph);
  EXPECT_NE(C->Diags.render().find("dependency cycle"), std::string::npos);
}

TEST(Graph, SelfCycleRejected) {
  compileErr(proc("? integer A; ! integer Y;", "   Y := Y + A"), CompileStage::Graph);
}

TEST(Graph, StoreDelayAfterLoadAndSource) {
  auto C = compileOk(proc("? integer A; ! integer Y;",
                          "   Z := A $ 1 init 0\n   | Y := A + Z",
                          "integer Z;"));
  auto Pos = positions(C->Graph);
  int Load = -1, Store = -1, SourceEval = -1;
  for (unsigned I = 0; I < C->Graph.actions().size(); ++I) {
    const Action &Act = C->Graph.actions()[I];
    if (Act.Kind == ActionKind::LoadDelay)
      Load = static_cast<int>(I);
    if (Act.Kind == ActionKind::StoreDelay)
      Store = static_cast<int>(I);
    if (Act.Kind == ActionKind::SignalInput)
      SourceEval = static_cast<int>(I);
  }
  ASSERT_GE(Load, 0);
  ASSERT_GE(Store, 0);
  ASSERT_GE(SourceEval, 0);
  EXPECT_LT(Pos[Load], Pos[Store]);
  EXPECT_LT(Pos[SourceEval], Pos[Store]);
}

TEST(Graph, ConditionValueBeforeLiteralClock) {
  auto C = compileOk(proc("? integer A; boolean C1; ! integer Y;",
                          "   Y := A when C1"));
  auto Pos = positions(C->Graph);
  int CondRead = -1, LitEval = -1;
  for (unsigned I = 0; I < C->Graph.actions().size(); ++I) {
    const Action &Act = C->Graph.actions()[I];
    if (Act.Kind == ActionKind::SignalInput && Act.Sig != InvalidSignal) {
      std::string Name(
          C->names().spelling(C->Kernel->Signals[Act.Sig].Name));
      if (Name == "C1")
        CondRead = static_cast<int>(I);
    }
    if (Act.Kind == ActionKind::ClockEval &&
        C->Forest->node(Act.Clock).Def == ClockDefKind::Literal)
      LitEval = static_cast<int>(I);
  }
  ASSERT_GE(CondRead, 0);
  ASSERT_GE(LitEval, 0);
  EXPECT_LT(Pos[CondRead], Pos[LitEval]);
}

TEST(Graph, OutputsAfterValues) {
  auto C = compileOk(proc("? integer A; ! integer Y;", "   Y := A + 1"));
  auto Pos = positions(C->Graph);
  int Eval = -1, Out = -1;
  for (unsigned I = 0; I < C->Graph.actions().size(); ++I) {
    const Action &Act = C->Graph.actions()[I];
    if (Act.Kind == ActionKind::SignalEval)
      Eval = static_cast<int>(I);
    if (Act.Kind == ActionKind::WriteOutput)
      Out = static_cast<int>(I);
  }
  ASSERT_GE(Eval, 0);
  ASSERT_GE(Out, 0);
  EXPECT_LT(Pos[Eval], Pos[Out]);
}

TEST(Graph, NullClockSignalsHaveNoActions) {
  auto C = compileOk(proc("? integer A; boolean CC; ! integer Y;",
                          "   synchro {A, CC}\n"
                          "   | T := A when CC\n"
                          "   | U := T when (not CC)\n"
                          "   | Y := A default U",
                          "integer T, U;"));
  // U's clock is empty: no SignalEval action may mention U.
  for (const Action &Act : C->Graph.actions()) {
    if (Act.Sig == InvalidSignal)
      continue;
    std::string Name(C->names().spelling(C->Kernel->Signals[Act.Sig].Name));
    EXPECT_NE(Name, "U");
  }
}

TEST(Graph, ActionKindNames) {
  EXPECT_STREQ(actionKindName(ActionKind::ClockInput), "clock-input");
  EXPECT_STREQ(actionKindName(ActionKind::StoreDelay), "store-delay");
}

TEST(Graph, EdgeCountPositive) {
  auto C = compileOk(proc("? integer A; ! integer Y;", "   Y := A"));
  EXPECT_GT(C->Graph.numEdges(), 0u);
}

TEST(Graph, DumpListsActions) {
  auto C = compileOk(proc("? integer A; ! integer Y;", "   Y := A"));
  std::string D =
      C->Graph.dump(*C->Kernel, C->names(), *C->Forest, C->Clocks);
  EXPECT_NE(D.find("signal-input A"), std::string::npos) << D;
  EXPECT_NE(D.find("write-output Y"), std::string::npos) << D;
}

TEST(Graph, DeterministicSchedule) {
  std::string Source = proc("? integer A; boolean C1, C2; ! integer Y;",
                            "   T1 := A when C1\n   | T2 := A when C2\n"
                            "   | Y := T1 default T2",
                            "integer T1, T2;");
  auto C1 = compileOk(Source);
  auto C2 = compileOk(Source);
  EXPECT_EQ(C1->Graph.schedule(), C2->Graph.schedule());
}
