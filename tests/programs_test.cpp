//===--- programs_test.cpp - Figure-13 suite sanity ------------------------===//

#include "TestUtil.h"
#include "interp/StepExecutor.h"
#include "programs/Programs.h"

#include <gtest/gtest.h>

using namespace sigc;
using namespace sigc::test;

TEST(Programs, Figure5AlarmCompiles) {
  auto C = compileOk(alarmFigure5Source());
  EXPECT_EQ(C->Forest->freeClocks().size(), 1u);
}

TEST(Programs, SuiteHasSevenPrograms) {
  EXPECT_EQ(figure13Suite().size(), 7u);
}

namespace {
class SuiteTest : public ::testing::TestWithParam<unsigned> {};
} // namespace

TEST_P(SuiteTest, CompilesAndMatchesPaperVariableCount) {
  Figure13Program P = figure13Suite()[GetParam()];
  auto C = compileOk(P.Source);
  ASSERT_TRUE(C->Ok) << P.Name;
  // The generated program's clock-variable count must be within 5% of the
  // paper's reported "number of variables".
  double Ratio = static_cast<double>(C->Clocks.numVars()) /
                 static_cast<double>(P.PaperVariables);
  EXPECT_GT(Ratio, 0.95) << P.Name << ": " << C->Clocks.numVars() << " vs "
                         << P.PaperVariables;
  EXPECT_LT(Ratio, 1.05) << P.Name << ": " << C->Clocks.numVars() << " vs "
                         << P.PaperVariables;
}

TEST_P(SuiteTest, SimulatesWithoutDivergence) {
  Figure13Program P = figure13Suite()[GetParam()];
  auto C = compileOk(P.Source);
  ASSERT_TRUE(C->Ok);
  RandomEnvironment EnvFlat(11), EnvNested(11);
  StepExecutor A(*C->Kernel, C->Step), B(*C->Kernel, C->Step);
  A.run(EnvFlat, 16, ExecMode::Flat);
  B.run(EnvNested, 16, ExecMode::Nested);
  EXPECT_EQ(formatEvents(EnvFlat.outputs()),
            formatEvents(EnvNested.outputs()))
      << P.Name;
}

INSTANTIATE_TEST_SUITE_P(AllSeven, SuiteTest, ::testing::Range(0u, 7u));

TEST(Programs, GeneratorShapesAreMonotone) {
  // More stages means more clock variables.
  ProgramShape Small{4, 0, 0, 0};
  ProgramShape Big{8, 0, 0, 0};
  auto CS = compileOk(generateProgram("S", Small));
  auto CB = compileOk(generateProgram("B", Big));
  EXPECT_LT(CS->Clocks.numVars(), CB->Clocks.numVars());
}

TEST(Programs, GridAddsIntersections) {
  ProgramShape NoGrid{2, 0, 0, 0};
  ProgramShape Grid{2, 0, 3, 3};
  auto CN = compileOk(generateProgram("N", NoGrid));
  auto CG = compileOk(generateProgram("G", Grid));
  EXPECT_GT(CG->Forest->stats().Insertions, CN->Forest->stats().Insertions);
}

TEST(Programs, AlarmFarmHasOneFreeClockPerInstance) {
  ProgramShape Shape{0, 3, 0, 0};
  auto C = compileOk(generateProgram("F", Shape));
  // Each automaton exhibits its own master clock; IN has one more.
  EXPECT_GE(C->Forest->freeClocks().size(), 4u);
}
