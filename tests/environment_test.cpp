//===--- environment_test.cpp - Environment bulk-exchange defaults --------===//
///
/// The batched executors cross the environment boundary through the bulk
/// API (clockTicks/inputValues/exchangeOutputs). An environment that
/// overrides only the per-instant virtuals must still be batchable: the
/// base-class defaults delegate per instant, preserving answers, event
/// order and recorded traces exactly. These tests pin that contract —
/// it is what lets RecordingEnvironment wrap arbitrary environments and
/// the serve loop drive any session shape.
///
//===----------------------------------------------------------------------===//

#include "interp/Environment.h"

#include <gtest/gtest.h>

using namespace sigc;

namespace {

/// Overrides only the per-instant virtuals and counts every call, so the
/// tests can see exactly how the bulk defaults delegate.
class PerInstantEnv : public Environment {
public:
  using Environment::clockTick;
  using Environment::inputValue;
  using Environment::writeOutput;

  bool clockTick(EnvClockId Clock, unsigned Instant) override {
    ++TickCalls;
    // Clock 0 ticks on even instants, clock 1 on multiples of 3.
    return Clock == 0 ? Instant % 2 == 0 : Instant % 3 == 0;
  }

  Value inputValue(EnvInputId Input, unsigned Instant) override {
    ++ValueCalls;
    return Value::makeInt(static_cast<int64_t>(Input) * 1000 + Instant);
  }

  void writeOutput(EnvOutputId Output, unsigned Instant,
                   const Value &V) override {
    ++WriteCalls;
    Environment::writeOutput(Output, Instant, V); // records the event
  }

  unsigned TickCalls = 0;
  unsigned ValueCalls = 0;
  unsigned WriteCalls = 0;
};

} // namespace

TEST(EnvironmentBulk, ClockTicksDefaultDelegatesPerInstant) {
  PerInstantEnv Env;
  EnvClockId C0 = Env.resolveClock("H0");
  EnvClockId C1 = Env.resolveClock("H1");

  unsigned char Out[5] = {9, 9, 9, 9, 9};
  Env.clockTicks(C0, 4, 5, Out);
  EXPECT_EQ(Env.TickCalls, 5u);
  for (unsigned I = 0; I < 5; ++I)
    EXPECT_EQ(Out[I] != 0, (4 + I) % 2 == 0) << "instant " << 4 + I;

  Env.clockTicks(C1, 0, 5, Out);
  EXPECT_EQ(Env.TickCalls, 10u);
  for (unsigned I = 0; I < 5; ++I)
    EXPECT_EQ(Out[I] != 0, I % 3 == 0) << "instant " << I;
}

TEST(EnvironmentBulk, InputValuesDefaultDelegatesPerInstant) {
  PerInstantEnv Env;
  EnvInputId A = Env.resolveInput("A", TypeKind::Integer);
  EnvInputId B = Env.resolveInput("B", TypeKind::Integer);
  ASSERT_NE(A, B);

  Value Out[4];
  Env.inputValues(B, 7, 4, Out);
  EXPECT_EQ(Env.ValueCalls, 4u);
  for (unsigned I = 0; I < 4; ++I) {
    EXPECT_EQ(Out[I].Kind, TypeKind::Integer);
    EXPECT_EQ(Out[I].Int, static_cast<int64_t>(B) * 1000 + 7 + I)
        << "instant " << 7 + I;
  }
}

TEST(EnvironmentBulk, ExchangeOutputsDefaultReplaysPerInstantOrder) {
  // A 3-instant batch over two outputs; presence is row-major
  // [instant][output]. The default must replay through writeOutput in
  // instant-major order, each instant in the executor's column order —
  // exactly the event sequence an unbatched run records.
  PerInstantEnv Env;
  EnvOutputId Y = Env.resolveOutput("Y", TypeKind::Integer);
  EnvOutputId Z = Env.resolveOutput("Z", TypeKind::Integer);
  EnvOutputId Ids[2] = {Y, Z};

  unsigned char Present[6] = {
      1, 1, // instant 5: Y and Z
      0, 1, // instant 6: Z only
      1, 0, // instant 7: Y only
  };
  Value Vals[6] = {Value::makeInt(50), Value::makeInt(51), Value(),
                   Value::makeInt(61), Value::makeInt(70), Value()};

  Env.exchangeOutputs(5, 3, 2, Ids, Present, Vals);
  EXPECT_EQ(Env.WriteCalls, 4u) << "only present cells are delivered";

  std::vector<OutputEvent> Expected = {
      {5, "Y", Value::makeInt(50)},
      {5, "Z", Value::makeInt(51)},
      {6, "Z", Value::makeInt(61)},
      {7, "Y", Value::makeInt(70)},
  };
  EXPECT_EQ(Env.outputs(), Expected);
}

TEST(EnvironmentBulk, EmptyWindowsTouchNothing) {
  PerInstantEnv Env;
  EnvClockId C0 = Env.resolveClock("H0");
  EnvOutputId Y = Env.resolveOutput("Y", TypeKind::Integer);

  Env.clockTicks(C0, 3, 0, nullptr);
  Env.inputValues(Env.resolveInput("A", TypeKind::Integer), 3, 0, nullptr);
  Env.exchangeOutputs(3, 0, 1, &Y, nullptr, nullptr);
  EXPECT_EQ(Env.TickCalls, 0u);
  EXPECT_EQ(Env.ValueCalls, 0u);
  EXPECT_EQ(Env.WriteCalls, 0u);
  EXPECT_TRUE(Env.outputs().empty());
}

TEST(EnvironmentBulk, RandomEnvironmentBulkEqualsPerInstant) {
  // RandomEnvironment overrides the bulk paths with straight loops; they
  // must agree answer for answer with its own per-instant virtuals.
  RandomEnvironment A(42), B(42);
  EnvClockId CA = A.resolveClock("H");
  EnvClockId CB = B.resolveClock("H");
  EnvInputId IA = A.resolveInput("X", TypeKind::Integer);
  EnvInputId IB = B.resolveInput("X", TypeKind::Integer);

  unsigned char Ticks[32];
  Value Vals[32];
  A.clockTicks(CA, 10, 32, Ticks);
  A.inputValues(IA, 10, 32, Vals);
  for (unsigned I = 0; I < 32; ++I) {
    EXPECT_EQ(Ticks[I] != 0, B.clockTick(CB, 10 + I)) << "instant " << 10 + I;
    EXPECT_EQ(Vals[I], B.inputValue(IB, 10 + I)) << "instant " << 10 + I;
  }
}
