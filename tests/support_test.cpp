//===--- support_test.cpp - Diagnostics, interner, budget, sources --------===//

#include "support/Budget.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"
#include "support/StringInterner.h"

#include <gtest/gtest.h>

#include <thread>

using namespace sigc;

TEST(StringInterner, SameSpellingSameSymbol) {
  StringInterner I;
  EXPECT_EQ(I.intern("foo"), I.intern("foo"));
  EXPECT_NE(I.intern("foo"), I.intern("bar"));
}

TEST(StringInterner, SpellingRoundTrip) {
  StringInterner I;
  Symbol S = I.intern("BRAKING_STATE");
  EXPECT_EQ(I.spelling(S), "BRAKING_STATE");
}

TEST(StringInterner, InvalidSymbol) {
  StringInterner I;
  EXPECT_FALSE(Symbol().isValid());
  EXPECT_EQ(I.spelling(Symbol()), "");
}

TEST(StringInterner, LookupWithoutInterning) {
  StringInterner I;
  EXPECT_FALSE(I.lookup("nothere").isValid());
  Symbol S = I.intern("here");
  EXPECT_EQ(I.lookup("here"), S);
}

TEST(StringInterner, ManySymbolsStayStable) {
  StringInterner I;
  std::vector<Symbol> Syms;
  for (int K = 0; K < 1000; ++K)
    Syms.push_back(I.intern("sym" + std::to_string(K)));
  for (int K = 0; K < 1000; ++K)
    EXPECT_EQ(I.spelling(Syms[K]), "sym" + std::to_string(K));
}

TEST(SourceManager, LineColumn) {
  SourceManager SM;
  SourceLoc Start = SM.addBuffer("a.sig", "ab\ncd\nef");
  EXPECT_EQ(SM.lineColumn(Start).Line, 1u);
  EXPECT_EQ(SM.lineColumn(Start).Column, 1u);
  SourceLoc AtD(Start.offset() + 4);
  EXPECT_EQ(SM.lineColumn(AtD).Line, 2u);
  EXPECT_EQ(SM.lineColumn(AtD).Column, 2u);
}

TEST(SourceManager, MultipleBuffers) {
  SourceManager SM;
  SourceLoc A = SM.addBuffer("a", "xxxx");
  SourceLoc B = SM.addBuffer("b", "yyyy");
  EXPECT_EQ(SM.bufferName(A), "a");
  EXPECT_EQ(SM.bufferName(B), "b");
  EXPECT_EQ(SM.bufferText(B), "yyyy");
}

TEST(SourceManager, Describe) {
  SourceManager SM;
  SourceLoc A = SM.addBuffer("f.sig", "line\nnext");
  EXPECT_EQ(SM.describe(SourceLoc(A.offset() + 5)), "f.sig:2:1");
  EXPECT_EQ(SM.describe(SourceLoc()), "<unknown>");
}

TEST(Diagnostics, CountsErrorsAndWarnings) {
  DiagnosticEngine D;
  EXPECT_FALSE(D.hasErrors());
  D.warning("watch out");
  EXPECT_FALSE(D.hasErrors());
  D.error("boom");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.errorCount(), 1u);
  EXPECT_EQ(D.warningCount(), 1u);
}

TEST(Diagnostics, RenderStyle) {
  DiagnosticEngine D;
  D.error("something failed");
  std::string R = D.render();
  EXPECT_NE(R.find("error: something failed"), std::string::npos);
}

TEST(Diagnostics, Clear) {
  DiagnosticEngine D;
  D.error("x");
  D.clear();
  EXPECT_FALSE(D.hasErrors());
  EXPECT_TRUE(D.diagnostics().empty());
}

TEST(Budget, UnlimitedByDefault) {
  Budget B;
  B.start();
  EXPECT_TRUE(B.checkTime());
  EXPECT_TRUE(B.checkNodes(1ull << 40));
  EXPECT_EQ(B.verdict(), BudgetVerdict::Ok);
}

TEST(Budget, NodeLimitTripsUnableMem) {
  Budget B(0, 100);
  B.start();
  EXPECT_TRUE(B.checkNodes(100));
  EXPECT_FALSE(B.checkNodes(101));
  EXPECT_EQ(B.verdict(), BudgetVerdict::UnableMem);
  // Sticky.
  EXPECT_FALSE(B.checkNodes(1));
  EXPECT_FALSE(B.checkTime());
}

TEST(Budget, TimeLimitTripsUnableCpu) {
  Budget B(1, 0);
  B.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(B.checkTime());
  EXPECT_EQ(B.verdict(), BudgetVerdict::UnableCpu);
}

TEST(Budget, VerdictNames) {
  EXPECT_STREQ(budgetVerdictName(BudgetVerdict::Ok), "ok");
  EXPECT_STREQ(budgetVerdictName(BudgetVerdict::UnableCpu), "unable-cpu");
  EXPECT_STREQ(budgetVerdictName(BudgetVerdict::UnableMem), "unable-mem");
}

TEST(Budget, RestartResetsVerdict) {
  Budget B(0, 10);
  B.start();
  EXPECT_FALSE(B.checkNodes(11));
  B.start();
  EXPECT_EQ(B.verdict(), BudgetVerdict::Ok);
  EXPECT_TRUE(B.checkNodes(5));
}

//===----------------------------------------------------------------------===//
// Edge cases: re-interning, buffer boundaries, exhaustion interplay.
//===----------------------------------------------------------------------===//

TEST(StringInterner, ReinterningAfterGrowthKeepsSymbol) {
  // The symbol handed out for a spelling must survive arbitrary later
  // interning (table growth, rehashing) and re-interning the same text —
  // including via a spelling() view into the interner's own storage.
  StringInterner I;
  Symbol First = I.intern("pivot");
  for (int K = 0; K < 4096; ++K)
    I.intern("filler" + std::to_string(K));
  EXPECT_EQ(I.intern("pivot"), First);
  std::string_view Sp = I.spelling(First);
  EXPECT_EQ(I.intern(Sp), First);
  EXPECT_EQ(I.lookup("pivot"), First);
}

TEST(StringInterner, EmptyAndNearIdenticalSpellings) {
  StringInterner I;
  Symbol Empty = I.intern("");
  EXPECT_TRUE(Empty.isValid());
  EXPECT_EQ(I.spelling(Empty), "");
  EXPECT_EQ(I.intern(""), Empty);
  // Prefix/suffix neighbours must not collide.
  Symbol A = I.intern("CLOCK");
  Symbol B = I.intern("CLOCK_");
  Symbol C = I.intern("CLOC");
  EXPECT_NE(A, B);
  EXPECT_NE(A, C);
  EXPECT_NE(B, C);
}

TEST(SourceManager, LineColumnAtBufferBoundaries) {
  SourceManager SM;
  // "ab\ncd" occupies offsets Start..Start+4; Start+5 is one-past-the-end.
  SourceLoc Start = SM.addBuffer("edge.sig", "ab\ncd");

  // Last character of the buffer.
  LineColumn Last = SM.lineColumn(SourceLoc(Start.offset() + 4));
  EXPECT_EQ(Last.Line, 2u);
  EXPECT_EQ(Last.Column, 2u);

  // The newline itself belongs to line 1.
  LineColumn NL = SM.lineColumn(SourceLoc(Start.offset() + 2));
  EXPECT_EQ(NL.Line, 1u);
  EXPECT_EQ(NL.Column, 3u);

  // One-past-the-end still resolves to this buffer (EOF diagnostics).
  SourceLoc End(Start.offset() + 5);
  EXPECT_EQ(SM.bufferName(End), "edge.sig");
  LineColumn AtEnd = SM.lineColumn(End);
  EXPECT_EQ(AtEnd.Line, 2u);
  EXPECT_EQ(AtEnd.Column, 3u);
}

TEST(SourceManager, AdjacentBuffersDoNotBleed) {
  SourceManager SM;
  SourceLoc A = SM.addBuffer("a.sig", "aaa");
  SourceLoc B = SM.addBuffer("b.sig", "bbb");
  // One-past-the-end of A is still A; the next offset is B's first char.
  EXPECT_EQ(SM.bufferName(SourceLoc(A.offset() + 3)), "a.sig");
  EXPECT_EQ(B.offset(), A.offset() + 4);
  EXPECT_EQ(SM.bufferName(B), "b.sig");
  EXPECT_EQ(SM.lineColumn(B).Line, 1u);
  EXPECT_EQ(SM.lineColumn(B).Column, 1u);
}

TEST(SourceManager, EmptyBufferResolves) {
  SourceManager SM;
  SourceLoc A = SM.addBuffer("empty.sig", "");
  SourceLoc B = SM.addBuffer("next.sig", "x");
  EXPECT_EQ(SM.bufferName(A), "empty.sig");
  EXPECT_EQ(SM.describe(A), "empty.sig:1:1");
  EXPECT_EQ(SM.bufferName(B), "next.sig");
}

TEST(Budget, NodeExhaustionIsStickyAcrossTimeChecks) {
  // Once unable-mem trips, later time checks must not flip the verdict.
  Budget B(100000, 10);
  B.start();
  EXPECT_FALSE(B.checkNodes(11));
  EXPECT_FALSE(B.checkTime());
  EXPECT_EQ(B.verdict(), BudgetVerdict::UnableMem);
}

TEST(Budget, ExhaustionAtExactLimitIsOk) {
  Budget B(0, 10);
  B.start();
  EXPECT_TRUE(B.checkNodes(10));
  EXPECT_EQ(B.verdict(), BudgetVerdict::Ok);
}

TEST(Budget, ElapsedIsMonotonic) {
  Budget B;
  B.start();
  uint64_t E1 = B.elapsedMs();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  uint64_t E2 = B.elapsedMs();
  EXPECT_GE(E2, E1);
}
