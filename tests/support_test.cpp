//===--- support_test.cpp - Diagnostics, interner, budget, sources --------===//

#include "support/Budget.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"
#include "support/StringInterner.h"

#include <gtest/gtest.h>

#include <thread>

using namespace sigc;

TEST(StringInterner, SameSpellingSameSymbol) {
  StringInterner I;
  EXPECT_EQ(I.intern("foo"), I.intern("foo"));
  EXPECT_NE(I.intern("foo"), I.intern("bar"));
}

TEST(StringInterner, SpellingRoundTrip) {
  StringInterner I;
  Symbol S = I.intern("BRAKING_STATE");
  EXPECT_EQ(I.spelling(S), "BRAKING_STATE");
}

TEST(StringInterner, InvalidSymbol) {
  StringInterner I;
  EXPECT_FALSE(Symbol().isValid());
  EXPECT_EQ(I.spelling(Symbol()), "");
}

TEST(StringInterner, LookupWithoutInterning) {
  StringInterner I;
  EXPECT_FALSE(I.lookup("nothere").isValid());
  Symbol S = I.intern("here");
  EXPECT_EQ(I.lookup("here"), S);
}

TEST(StringInterner, ManySymbolsStayStable) {
  StringInterner I;
  std::vector<Symbol> Syms;
  for (int K = 0; K < 1000; ++K)
    Syms.push_back(I.intern("sym" + std::to_string(K)));
  for (int K = 0; K < 1000; ++K)
    EXPECT_EQ(I.spelling(Syms[K]), "sym" + std::to_string(K));
}

TEST(SourceManager, LineColumn) {
  SourceManager SM;
  SourceLoc Start = SM.addBuffer("a.sig", "ab\ncd\nef");
  EXPECT_EQ(SM.lineColumn(Start).Line, 1u);
  EXPECT_EQ(SM.lineColumn(Start).Column, 1u);
  SourceLoc AtD(Start.offset() + 4);
  EXPECT_EQ(SM.lineColumn(AtD).Line, 2u);
  EXPECT_EQ(SM.lineColumn(AtD).Column, 2u);
}

TEST(SourceManager, MultipleBuffers) {
  SourceManager SM;
  SourceLoc A = SM.addBuffer("a", "xxxx");
  SourceLoc B = SM.addBuffer("b", "yyyy");
  EXPECT_EQ(SM.bufferName(A), "a");
  EXPECT_EQ(SM.bufferName(B), "b");
  EXPECT_EQ(SM.bufferText(B), "yyyy");
}

TEST(SourceManager, Describe) {
  SourceManager SM;
  SourceLoc A = SM.addBuffer("f.sig", "line\nnext");
  EXPECT_EQ(SM.describe(SourceLoc(A.offset() + 5)), "f.sig:2:1");
  EXPECT_EQ(SM.describe(SourceLoc()), "<unknown>");
}

TEST(Diagnostics, CountsErrorsAndWarnings) {
  DiagnosticEngine D;
  EXPECT_FALSE(D.hasErrors());
  D.warning("watch out");
  EXPECT_FALSE(D.hasErrors());
  D.error("boom");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.errorCount(), 1u);
  EXPECT_EQ(D.warningCount(), 1u);
}

TEST(Diagnostics, RenderStyle) {
  DiagnosticEngine D;
  D.error("something failed");
  std::string R = D.render();
  EXPECT_NE(R.find("error: something failed"), std::string::npos);
}

TEST(Diagnostics, Clear) {
  DiagnosticEngine D;
  D.error("x");
  D.clear();
  EXPECT_FALSE(D.hasErrors());
  EXPECT_TRUE(D.diagnostics().empty());
}

TEST(Budget, UnlimitedByDefault) {
  Budget B;
  B.start();
  EXPECT_TRUE(B.checkTime());
  EXPECT_TRUE(B.checkNodes(1ull << 40));
  EXPECT_EQ(B.verdict(), BudgetVerdict::Ok);
}

TEST(Budget, NodeLimitTripsUnableMem) {
  Budget B(0, 100);
  B.start();
  EXPECT_TRUE(B.checkNodes(100));
  EXPECT_FALSE(B.checkNodes(101));
  EXPECT_EQ(B.verdict(), BudgetVerdict::UnableMem);
  // Sticky.
  EXPECT_FALSE(B.checkNodes(1));
  EXPECT_FALSE(B.checkTime());
}

TEST(Budget, TimeLimitTripsUnableCpu) {
  Budget B(1, 0);
  B.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(B.checkTime());
  EXPECT_EQ(B.verdict(), BudgetVerdict::UnableCpu);
}

TEST(Budget, VerdictNames) {
  EXPECT_STREQ(budgetVerdictName(BudgetVerdict::Ok), "ok");
  EXPECT_STREQ(budgetVerdictName(BudgetVerdict::UnableCpu), "unable-cpu");
  EXPECT_STREQ(budgetVerdictName(BudgetVerdict::UnableMem), "unable-mem");
}

TEST(Budget, RestartResetsVerdict) {
  Budget B(0, 10);
  B.start();
  EXPECT_FALSE(B.checkNodes(11));
  B.start();
  EXPECT_EQ(B.verdict(), BudgetVerdict::Ok);
  EXPECT_TRUE(B.checkNodes(5));
}
