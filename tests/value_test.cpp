//===--- value_test.cpp - Scalar Value semantics ---------------------------===//

#include "ast/Ast.h"
#include "ast/AstPrinter.h"
#include "sema/Kernel.h"

#include <gtest/gtest.h>

using namespace sigc;

TEST(Value, Constructors) {
  EXPECT_EQ(Value::makeBool(true).Kind, TypeKind::Boolean);
  EXPECT_EQ(Value::makeInt(7).Int, 7);
  EXPECT_DOUBLE_EQ(Value::makeReal(2.5).Real, 2.5);
  EXPECT_TRUE(Value::makeEvent().asBool());
}

TEST(Value, CrossKindNumericEquality) {
  EXPECT_EQ(Value::makeInt(3), Value::makeReal(3.0));
  EXPECT_NE(Value::makeInt(3), Value::makeReal(3.5));
  EXPECT_NE(Value::makeInt(1), Value::makeBool(true));
}

TEST(Value, AsReal) {
  EXPECT_DOUBLE_EQ(Value::makeInt(-4).asReal(), -4.0);
  EXPECT_DOUBLE_EQ(Value::makeReal(0.25).asReal(), 0.25);
}

TEST(Value, Str) {
  EXPECT_EQ(Value::makeBool(false).str(), "false");
  EXPECT_EQ(Value::makeInt(42).str(), "42");
  EXPECT_EQ(Value::makeEvent().str(), "tick");
}

TEST(Value, TypeNames) {
  EXPECT_STREQ(typeName(TypeKind::Boolean), "boolean");
  EXPECT_STREQ(typeName(TypeKind::Integer), "integer");
  EXPECT_STREQ(typeName(TypeKind::Real), "real");
  EXPECT_STREQ(typeName(TypeKind::Event), "event");
}

TEST(Value, OpNames) {
  EXPECT_STREQ(binaryOpName(BinaryOp::Ne), "/=");
  EXPECT_STREQ(binaryOpName(BinaryOp::Mod), "mod");
  EXPECT_STREQ(unaryOpName(UnaryOp::Not), "not");
  EXPECT_TRUE(isPredicateOp(BinaryOp::Le));
  EXPECT_FALSE(isPredicateOp(BinaryOp::Add));
  EXPECT_TRUE(isLogicalOp(BinaryOp::Xor));
  EXPECT_FALSE(isLogicalOp(BinaryOp::Eq));
}

//===----------------------------------------------------------------------===//
// evalFuncTree: the pointwise evaluator shared by both interpreters.
//===----------------------------------------------------------------------===//

namespace {

/// Builds "arg0 <op> arg1" as a kernel Func equation.
KernelEq binaryEq(BinaryOp Op) {
  KernelEq Eq;
  Eq.Kind = KernelEqKind::Func;
  Eq.Args = {0, 1};
  FuncNode A0;
  A0.Kind = FuncNode::Kind::Arg;
  A0.ArgIndex = 0;
  FuncNode A1;
  A1.Kind = FuncNode::Kind::Arg;
  A1.ArgIndex = 1;
  FuncNode B;
  B.Kind = FuncNode::Kind::Binary;
  B.BOp = Op;
  B.Lhs = 0;
  B.Rhs = 1;
  Eq.Nodes = {A0, A1, B};
  return Eq;
}

} // namespace

TEST(EvalFuncTree, IntegerArithmetic) {
  KernelEq Add = binaryEq(BinaryOp::Add);
  EXPECT_EQ(evalFuncTree(Add, {Value::makeInt(2), Value::makeInt(3)}).Int,
            5);
  KernelEq Div = binaryEq(BinaryOp::Div);
  EXPECT_EQ(evalFuncTree(Div, {Value::makeInt(7), Value::makeInt(2)}).Int,
            3);
  // Division by zero yields zero (matching the generated C).
  EXPECT_EQ(evalFuncTree(Div, {Value::makeInt(7), Value::makeInt(0)}).Int,
            0);
}

TEST(EvalFuncTree, EuclideanMod) {
  KernelEq Mod = binaryEq(BinaryOp::Mod);
  EXPECT_EQ(evalFuncTree(Mod, {Value::makeInt(7), Value::makeInt(3)}).Int,
            1);
  EXPECT_EQ(evalFuncTree(Mod, {Value::makeInt(-7), Value::makeInt(3)}).Int,
            2);
  EXPECT_EQ(evalFuncTree(Mod, {Value::makeInt(5), Value::makeInt(0)}).Int,
            0);
}

TEST(EvalFuncTree, MixedWidening) {
  KernelEq Mul = binaryEq(BinaryOp::Mul);
  Value R = evalFuncTree(Mul, {Value::makeInt(2), Value::makeReal(1.5)});
  EXPECT_EQ(R.Kind, TypeKind::Real);
  EXPECT_DOUBLE_EQ(R.Real, 3.0);
}

TEST(EvalFuncTree, Comparisons) {
  EXPECT_TRUE(evalFuncTree(binaryEq(BinaryOp::Lt),
                           {Value::makeInt(1), Value::makeInt(2)})
                  .asBool());
  EXPECT_TRUE(evalFuncTree(binaryEq(BinaryOp::Ge),
                           {Value::makeReal(2.0), Value::makeInt(2)})
                  .asBool());
  EXPECT_TRUE(evalFuncTree(binaryEq(BinaryOp::Ne),
                           {Value::makeBool(true), Value::makeBool(false)})
                  .asBool());
}

TEST(EvalFuncTree, Logic) {
  EXPECT_FALSE(evalFuncTree(binaryEq(BinaryOp::And),
                            {Value::makeBool(true), Value::makeBool(false)})
                   .asBool());
  EXPECT_TRUE(evalFuncTree(binaryEq(BinaryOp::Xor),
                           {Value::makeBool(true), Value::makeBool(false)})
                  .asBool());
}

TEST(EvalFuncTree, UnaryAndConst) {
  // not(arg0) and a constant leaf.
  KernelEq Eq;
  Eq.Kind = KernelEqKind::Func;
  Eq.Args = {0};
  FuncNode A0;
  A0.Kind = FuncNode::Kind::Arg;
  A0.ArgIndex = 0;
  FuncNode N;
  N.Kind = FuncNode::Kind::Unary;
  N.UOp = UnaryOp::Not;
  N.Lhs = 0;
  Eq.Nodes = {A0, N};
  EXPECT_TRUE(evalFuncTree(Eq, {Value::makeBool(false)}).asBool());

  KernelEq CEq;
  CEq.Kind = KernelEqKind::Func;
  FuncNode CN;
  CN.Kind = FuncNode::Kind::Const;
  CN.Const = Value::makeInt(9);
  CEq.Nodes = {CN};
  EXPECT_EQ(evalFuncTree(CEq, {}).Int, 9);
}
