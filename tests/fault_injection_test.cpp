//===--- fault_injection_test.cpp - Scripted I/O failure classes ----------===//
///
/// The deterministic fault harness exercised end to end: FdTraceSource
/// and FdSink run over real descriptors whose read(2)/write(2) layer is
/// a FaultSyscalls executing a scripted FaultPlan. Each test pins one
/// failure class with exact diagnostics and counters — no sleeps, no
/// signals, no timing:
///
///   * short writes: a byte-at-a-time sink still produces the recording
///     byte for byte (the full-write retry loop), with the call count
///     proving the schedule actually ran;
///   * short reads: byte-at-a-time delivery and a schedule that splits
///     every 16-byte frame header across two reads both decode to the
///     same verified replay as an mmap of the same file;
///   * EINTR storms on both directions: retried transparently, counted
///     exactly, and invisible in the bytes;
///   * mid-payload truncation: the positioned Truncated diagnostic is
///     character-identical across Fd, Memory and Mmap sources;
///   * in-flight byte corruption: the checksum diagnostic is
///     character-identical across sources;
///   * ENOSPC / EPIPE at an exact byte: the sink latches "at byte N:"
///     with everything below N written for real, and the writer reports
///     the failure instead of truncating silently.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "interp/VmExecutor.h"
#include "io/FaultInjection.h"
#include "io/TraceEnvironment.h"
#include "io/TraceReader.h"
#include "io/TraceWriter.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <unistd.h>

using namespace sigc;
using namespace sigc::test;

namespace {

/// A process exercising every wire value encoding.
std::unique_ptr<Compilation> compileMixed() {
  return compileOk(proc("? integer A; boolean C1; real R; "
                        "! integer Y; boolean B; real S;",
                        "   Y := (A + 1) when C1\n"
                        "   | B := not C1\n"
                        "   | S := R * 2.0"));
}

/// Records \p Instants instants under a seeded random environment into
/// \p Sink, frame capacity \p FrameCap.
void recordInto(const Compilation &C, unsigned Instants, unsigned FrameCap,
                TraceSink &Sink, uint64_t Seed = 11) {
  TraceWriter W(Sink, TraceSpec::fromStep(C.Compiled, "P", FrameCap));
  RandomEnvironment Rnd(Seed);
  RecordingEnvironment Rec(Rnd, W);
  VmExecutor Vm(C.Compiled);
  Vm.runBatched(Rec, Instants, FrameCap);
  EXPECT_TRUE(W.finish(Instants));
}

/// The reference recording in memory.
std::vector<uint8_t> recordBytes(const Compilation &C, unsigned Instants,
                                 unsigned FrameCap) {
  MemorySink Sink;
  recordInto(C, Instants, FrameCap, Sink);
  return Sink.takeBytes();
}

/// Parses the (valid) header of \p Bytes and returns its length.
size_t headerLen(const std::vector<uint8_t> &Bytes) {
  TraceSpec Spec;
  size_t Len = 0;
  TraceError Err;
  EXPECT_TRUE(parseTraceHeader(Bytes.data(), Bytes.size(), Spec, Len, Err))
      << Err.str();
  return Len;
}

/// Writes \p Bytes to a fresh temp file and returns its path.
std::string writeTempTrace(const std::vector<uint8_t> &Bytes) {
  std::string Path = ::testing::TempDir() + "sigc_fault_" +
                     std::to_string(::getpid()) + "_" +
                     std::to_string(::testing::UnitTest::GetInstance()
                                        ->current_test_info()
                                        ->line()) +
                     ".sgtr";
  FILE *F = std::fopen(Path.c_str(), "wb");
  EXPECT_NE(F, nullptr);
  if (!Bytes.empty()) {
    EXPECT_EQ(std::fwrite(Bytes.data(), 1, Bytes.size(), F), Bytes.size());
  }
  std::fclose(F);
  return Path;
}

/// Reads the whole file back.
std::vector<uint8_t> readFile(const std::string &Path) {
  std::vector<uint8_t> Out;
  FILE *F = std::fopen(Path.c_str(), "rb");
  EXPECT_NE(F, nullptr);
  if (!F)
    return Out;
  uint8_t Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.insert(Out.end(), Buf, Buf + N);
  std::fclose(F);
  return Out;
}

/// Fully replays \p Src against \p C with output verification on and
/// returns the replayed events; any decode or divergence failure is a
/// test failure.
std::vector<OutputEvent> replayVerified(const Compilation &C,
                                        TraceSource &Src) {
  TraceReader Reader(Src);
  EXPECT_TRUE(Reader.readHeader()) << Reader.error().str();
  EXPECT_TRUE(Reader.matchesStep(C.Compiled)) << Reader.error().str();
  TraceEnvironment Env(Reader);
  Env.setVerifyOutputs(true);
  Env.setCollectOutputs(true);
  VmExecutor Vm(C.Compiled);
  unsigned At = 0;
  for (;;) {
    unsigned N = Env.prepare(At, Env.streamSpec().FrameInstants);
    if (N == 0)
      break;
    Vm.stepN(Env, At, N);
    At += N;
  }
  EXPECT_FALSE(Env.failed()) << Env.error().str();
  EXPECT_TRUE(Env.atEnd());
  EXPECT_EQ(Env.divergence(), "");
  return Env.outputs();
}

/// Walks \p Src to the first decode failure and returns the positioned
/// error. EXPECTs that a failure happens.
TraceError walkToError(TraceSource &Src) {
  TraceReader Reader(Src);
  if (!Reader.readHeader())
    return Reader.error();
  TraceFrame F;
  TraceFrameStatus St;
  while ((St = Reader.nextFrame(F)) == TraceFrameStatus::Frame)
    ;
  EXPECT_EQ(static_cast<int>(St), static_cast<int>(TraceFrameStatus::Error));
  return Reader.error();
}

/// Opens \p Path as an FdTraceSource routed through \p Sys.
std::unique_ptr<FdTraceSource> openFaulty(const std::string &Path,
                                          IoSyscalls *Sys,
                                          size_t BufSize = 1 << 16) {
  std::string Error;
  int Fd = FdTraceSource::openFile(Path, Error);
  EXPECT_GE(Fd, 0) << Error;
  return std::make_unique<FdTraceSource>(Fd, /*OwnsFd=*/true, BufSize, Sys);
}

} // namespace

//===----------------------------------------------------------------------===//
// Failure class 1: short writes — the sink's retry loop
//===----------------------------------------------------------------------===//

TEST(FaultInjection, ByteAtATimeWritesProduceAnIdenticalRecording) {
  auto C = compileMixed();
  std::vector<uint8_t> Ref = recordBytes(*C, 24, 8);

  FaultPlan Plan;
  Plan.WriteTail = FaultOp::shortIo(1); // Every write moves one byte.
  FaultSyscalls Sys(Plan);
  std::string Path = writeTempTrace({});
  std::string Error;
  int Fd = FdSink::openFile(Path, Error);
  ASSERT_GE(Fd, 0) << Error;
  {
    FdSink Sink(Fd, /*OwnsFd=*/true, &Sys);
    recordInto(*C, 24, 8, Sink);
    EXPECT_EQ(Sink.written(), Ref.size());
    EXPECT_TRUE(Sink.errorDetail().empty()) << Sink.errorDetail();
  }
  // The retry loop really ran byte-at-a-time...
  EXPECT_EQ(Sys.writeCalls(), Ref.size());
  // ...and the recording is still byte-identical to the in-memory one.
  EXPECT_EQ(readFile(Path), Ref);
  ::unlink(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Failure classes 2 and 3: short reads and split frame headers
//===----------------------------------------------------------------------===//

TEST(FaultInjection, ByteAtATimeReadsDecodeTheSameReplayAsMmap) {
  auto C = compileMixed();
  std::vector<uint8_t> Ref = recordBytes(*C, 24, 8);
  std::string Path = writeTempTrace(Ref);

  MmapTraceSource Mmap;
  std::string Error;
  ASSERT_TRUE(Mmap.open(Path, Error)) << Error;
  std::vector<OutputEvent> Expected = replayVerified(*C, Mmap);

  FaultPlan Plan;
  Plan.ReadTail = FaultOp::shortIo(1); // The kernel yields one byte per call.
  FaultSyscalls Sys(Plan);
  auto Src = openFaulty(Path, &Sys);
  std::vector<OutputEvent> Got = replayVerified(*C, *Src);
  EXPECT_EQ(Got.size(), Expected.size());
  // One call per byte; the reader stops at the trailer without an extra
  // EOF probe.
  EXPECT_EQ(Sys.readCalls(), Ref.size());
  ::unlink(Path.c_str());
}

TEST(FaultInjection, FrameHeaderSplitAcrossReadsDecodesIdentically) {
  auto C = compileMixed();
  std::vector<uint8_t> Ref = recordBytes(*C, 24, 8);
  std::string Path = writeTempTrace(Ref);

  MmapTraceSource Mmap;
  std::string Error;
  ASSERT_TRUE(Mmap.open(Path, Error)) << Error;
  std::vector<OutputEvent> Expected = replayVerified(*C, Mmap);

  // Deliver the header in one read, then 7 bytes per call: every 16-byte
  // frame header is split across at least two reads, and payloads arrive
  // misaligned with their frames.
  FaultPlan Plan;
  Plan.Reads = {FaultOp::shortIo(headerLen(Ref))};
  Plan.ReadTail = FaultOp::shortIo(7);
  FaultSyscalls Sys(Plan);
  auto Src = openFaulty(Path, &Sys);
  std::vector<OutputEvent> Got = replayVerified(*C, *Src);
  EXPECT_EQ(Got.size(), Expected.size());
  ::unlink(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Failure class 4: EINTR storms on both directions
//===----------------------------------------------------------------------===//

TEST(FaultInjection, EintrStormsAreRetriedAndCountedOnReadsAndWrites) {
  auto C = compileMixed();
  std::vector<uint8_t> Ref = recordBytes(*C, 24, 8);

  // Writes: three EINTRs before every real write.
  {
    FaultPlan Plan;
    for (int I = 0; I < 64; ++I) {
      Plan.Writes.push_back(FaultOp::eintr());
      Plan.Writes.push_back(FaultOp::eintr());
      Plan.Writes.push_back(FaultOp::eintr());
      Plan.Writes.push_back(FaultOp::pass());
    }
    FaultSyscalls Sys(Plan);
    std::string Path = writeTempTrace({});
    std::string Error;
    int Fd = FdSink::openFile(Path, Error);
    ASSERT_GE(Fd, 0) << Error;
    {
      FdSink Sink(Fd, /*OwnsFd=*/true, &Sys);
      recordInto(*C, 24, 8, Sink);
      EXPECT_TRUE(Sink.errorDetail().empty()) << Sink.errorDetail();
    }
    EXPECT_EQ(readFile(Path), Ref);
    uint64_t Real = Sys.writeCalls() - Sys.eintrReturns();
    EXPECT_EQ(Sys.eintrReturns(), 3 * Real)
        << "every real write paid exactly three EINTRs";
    ::unlink(Path.c_str());
  }

  // Reads: an EINTR before every refill, invisible in the replay.
  {
    std::string Path = writeTempTrace(Ref);
    FaultPlan Plan;
    for (int I = 0; I < 256; ++I) {
      Plan.Reads.push_back(FaultOp::eintr());
      Plan.Reads.push_back(FaultOp::pass());
    }
    FaultSyscalls Sys(Plan);
    auto Src = openFaulty(Path, &Sys);
    replayVerified(*C, *Src);
    EXPECT_GT(Sys.eintrReturns(), 0u);
    EXPECT_EQ(Sys.eintrReturns(), Sys.readCalls() - Sys.eintrReturns())
        << "EINTRs and real reads alternated one to one";
    ::unlink(Path.c_str());
  }
}

//===----------------------------------------------------------------------===//
// Failure class 5: mid-payload truncation, diagnostics pinned across
// sources
//===----------------------------------------------------------------------===//

TEST(FaultInjection, MidPayloadTruncationDiagnosticMatchesAllSources) {
  auto C = compileMixed();
  std::vector<uint8_t> Ref = recordBytes(*C, 24, 8);
  size_t H = headerLen(Ref);
  uint64_t Cut = H + TraceFrameHeaderBytes + 3; // Inside the first payload.

  // Fd source over the full file, stream scripted to end at Cut.
  std::string Path = writeTempTrace(Ref);
  FaultPlan Plan;
  Plan.TruncateReadAt = Cut;
  FaultSyscalls Sys(Plan);
  auto Fd = openFaulty(Path, &Sys);
  TraceError FdErr = walkToError(*Fd);

  // Memory source over the same prefix.
  std::vector<uint8_t> Prefix(Ref.begin(),
                              Ref.begin() + static_cast<long>(Cut));
  MemoryTraceSource Mem(Prefix);
  TraceError MemErr = walkToError(Mem);

  // Mmap source over a truncated file on disk.
  std::string CutPath = writeTempTrace(Prefix);
  MmapTraceSource Mmap;
  std::string Error;
  ASSERT_TRUE(Mmap.open(CutPath, Error)) << Error;
  TraceError MmapErr = walkToError(Mmap);

  EXPECT_EQ(static_cast<int>(FdErr.Kind),
            static_cast<int>(TraceErrorKind::Truncated));
  EXPECT_EQ(FdErr.Offset, Cut);
  EXPECT_EQ(FdErr.str(), MemErr.str())
      << "buffered-fd diagnostic differs from the memory source";
  EXPECT_EQ(FdErr.str(), MmapErr.str())
      << "buffered-fd diagnostic differs from the mmap source";
  ::unlink(Path.c_str());
  ::unlink(CutPath.c_str());
}

//===----------------------------------------------------------------------===//
// Failure class 6: in-flight byte corruption, diagnostics pinned across
// sources
//===----------------------------------------------------------------------===//

TEST(FaultInjection, InFlightCorruptionDiagnosticMatchesAllSources) {
  auto C = compileMixed();
  std::vector<uint8_t> Ref = recordBytes(*C, 24, 8);
  size_t H = headerLen(Ref);
  uint64_t At = H + TraceFrameHeaderBytes; // First payload byte.

  // Fd source over the intact file; the byte is damaged in flight.
  std::string Path = writeTempTrace(Ref);
  FaultPlan Plan;
  Plan.CorruptReadAt = At;
  Plan.CorruptXor = 0x40;
  FaultSyscalls Sys(Plan);
  auto Fd = openFaulty(Path, &Sys);
  TraceError FdErr = walkToError(*Fd);

  // The same damage applied at rest, decoded from memory and mmap.
  std::vector<uint8_t> Damaged = Ref;
  Damaged[At] ^= 0x40;
  MemoryTraceSource Mem(Damaged);
  TraceError MemErr = walkToError(Mem);
  std::string DamagedPath = writeTempTrace(Damaged);
  MmapTraceSource Mmap;
  std::string Error;
  ASSERT_TRUE(Mmap.open(DamagedPath, Error)) << Error;
  TraceError MmapErr = walkToError(Mmap);

  EXPECT_EQ(static_cast<int>(FdErr.Kind),
            static_cast<int>(TraceErrorKind::Corrupt));
  EXPECT_EQ(FdErr.Offset, At);
  EXPECT_NE(FdErr.Message.find("checksum"), std::string::npos) << FdErr.str();
  EXPECT_EQ(FdErr.str(), MemErr.str());
  EXPECT_EQ(FdErr.str(), MmapErr.str());
  ::unlink(Path.c_str());
  ::unlink(DamagedPath.c_str());
}

//===----------------------------------------------------------------------===//
// Failure class 7: write failure at an exact byte — ENOSPC and EPIPE
//===----------------------------------------------------------------------===//

TEST(FaultInjection, WriteFailureLatchesExactByteOffsetDiagnostic) {
  auto C = compileMixed();
  std::vector<uint8_t> Ref = recordBytes(*C, 24, 8);
  uint64_t FailAt = headerLen(Ref) + 5; // Inside the first frame flush.

  for (int Errno : {ENOSPC, EPIPE}) {
    FaultPlan Plan;
    Plan.FailWriteAt = FailAt;
    Plan.FailWriteErrno = Errno;
    FaultSyscalls Sys(Plan);
    std::string Path = writeTempTrace({});
    std::string Error;
    int Fd = FdSink::openFile(Path, Error);
    ASSERT_GE(Fd, 0) << Error;
    {
      FdSink Sink(Fd, /*OwnsFd=*/true, &Sys);
      TraceWriter W(Sink, TraceSpec::fromStep(C->Compiled, "P", 8));
      RandomEnvironment Rnd(11);
      RecordingEnvironment Rec(Rnd, W);
      VmExecutor Vm(C->Compiled);
      Vm.runBatched(Rec, 24, 8);
      EXPECT_FALSE(W.finish(24)) << "the failed flush must be reported";
      EXPECT_FALSE(W.ok());
      // Everything below the failing byte reached the file for real, so
      // the diagnostic names the exact resume point.
      EXPECT_EQ(Sink.written(), FailAt);
      std::string Want =
          "at byte " + std::to_string(FailAt) + ": " + std::strerror(Errno);
      EXPECT_EQ(Sink.errorDetail(), Want);
    }
    std::vector<uint8_t> OnDisk = readFile(Path);
    EXPECT_EQ(OnDisk.size(), FailAt);
    EXPECT_TRUE(std::equal(OnDisk.begin(), OnDisk.end(), Ref.begin()));
    ::unlink(Path.c_str());
  }
}
