//===--- forest_test.cpp - Arborescent canonical form ---------------------===//

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <random>

using namespace sigc;
using namespace sigc::test;

namespace {

/// Finds the clock variable of signal \p Name.
ClockVarId clockOf(Compilation &C, const std::string &Name) {
  for (SignalId S = 0; S < C.Kernel->numSignals(); ++S)
    if (C.names().spelling(C.Kernel->Signals[S].Name) == Name)
      return C.Clocks.signalClock(S);
  ADD_FAILURE() << "no signal " << Name;
  return InvalidClockVar;
}

SignalId sigOf(Compilation &C, const std::string &Name) {
  for (SignalId S = 0; S < C.Kernel->numSignals(); ++S)
    if (C.names().spelling(C.Kernel->Signals[S].Name) == Name)
      return S;
  ADD_FAILURE() << "no signal " << Name;
  return InvalidSignal;
}

/// True if node of A is a (possibly transitive) descendant of node of B.
bool isDescendant(Compilation &C, ClockVarId A, ClockVarId B) {
  ForestNodeId NA = C.Forest->nodeOf(A);
  ForestNodeId NB = C.Forest->nodeOf(B);
  if (NA == InvalidForestNode || NB == InvalidForestNode)
    return false;
  while (NA != InvalidForestNode) {
    if (NA == NB)
      return true;
    NA = C.Forest->node(NA).Parent;
  }
  return false;
}

} // namespace

TEST(Forest, WhenPlacesClockUnderLiteral) {
  auto C = compileOk(proc("? integer A; boolean CC; ! integer Y;",
                          "   Y := A when CC\n   | synchro {A, CC}"));
  // ^Y = ^A ∧ [CC] with ^A = ^CC: Y's clock must merge with [CC] itself.
  EXPECT_EQ(C->Forest->rep(clockOf(*C, "Y")),
            C->Forest->rep(C->Clocks.posLiteral(sigOf(*C, "CC"))));
}

TEST(Forest, PartitionChildrenUnderCondition) {
  auto C = compileOk(proc("? boolean CC; ! boolean Y;", "   Y := not CC"));
  ClockVarId Pos = C->Clocks.posLiteral(sigOf(*C, "CC"));
  ClockVarId Neg = C->Clocks.negLiteral(sigOf(*C, "CC"));
  ClockVarId Parent = clockOf(*C, "CC");
  EXPECT_TRUE(isDescendant(*C, Pos, Parent));
  EXPECT_TRUE(isDescendant(*C, Neg, Parent));
  // And they are distinct non-null classes.
  EXPECT_NE(C->Forest->rep(Pos), C->Forest->rep(Neg));
  EXPECT_FALSE(C->Forest->isNull(Pos));
  EXPECT_FALSE(C->Forest->isNull(Neg));
}

TEST(Forest, ChildSubsetOfParentInvariant) {
  // After building any of the benchmark-ish programs, every child BDD
  // implies its parent BDD (the defining invariant of the hierarchy).
  auto C = compileOk(proc(
      "? integer A; boolean C1, C2; ! integer Y;",
      "   T1 := A when C1\n   | T2 := T1 when C2\n   | Z := T1 default T2\n"
      "   | Y := Z",
      "integer T1, T2, Z;"));
  BddManager &M = C->Bdds;
  for (ForestNodeId N : C->Forest->dfsOrder()) {
    const ClockNode &Node = C->Forest->node(N);
    if (Node.Parent == InvalidForestNode)
      continue;
    EXPECT_TRUE(M.implies(Node.Bdd, C->Forest->node(Node.Parent).Bdd));
  }
}

TEST(Forest, DfsVisitsParentsFirst) {
  auto C = compileOk(proc("? integer A; boolean C1, C2; ! integer Y;",
                          "   T1 := A when C1\n   | Y := T1 when C2",
                          "integer T1;"));
  std::vector<ForestNodeId> Order = C->Forest->dfsOrder();
  std::vector<int> Position(C->Forest->numNodes(), -1);
  for (unsigned I = 0; I < Order.size(); ++I)
    Position[Order[I]] = static_cast<int>(I);
  for (ForestNodeId N : Order) {
    ForestNodeId P = C->Forest->node(N).Parent;
    if (P != InvalidForestNode) {
      EXPECT_LT(Position[P], Position[N]);
    }
  }
}

TEST(Forest, IntersectionInsertedUnderDeepest) {
  // M := A1 when Q: ^M = [P] ∧ [Q]; both literals sit under ^IN, so ^M
  // must be strictly below one of them, not under the root.
  auto C = compileOk(proc("? integer IN; ! integer OUT;",
                          "   P := (IN mod 2) = 0\n"
                          "   | A1 := IN when P\n"
                          "   | Q := (IN mod 3) = 0\n"
                          "   | M := A1 when Q\n"
                          "   | OUT := IN default M",
                          "boolean P, Q; integer A1, M;"));
  ClockVarId MC = clockOf(*C, "M");
  ForestNodeId MN = C->Forest->nodeOf(MC);
  ASSERT_NE(MN, InvalidForestNode);
  EXPECT_GE(C->Forest->depth(MN), 2u);
}

TEST(Forest, UnionMergesWithRootWhenCovering) {
  // ^Y = [C] ∨ [¬C] = ^C: the union must merge with the root class, not
  // become a new node.
  auto C = compileOk(proc("? boolean CC; ! integer Y;",
                          "   U := 1 when CC\n"
                          "   | V := 2 when (not CC)\n"
                          "   | Y := U default V",
                          "integer U, V;"));
  EXPECT_EQ(C->Forest->rep(clockOf(*C, "Y")),
            C->Forest->rep(clockOf(*C, "CC")));
}

TEST(Forest, AlarmHierarchyMatchesFigure7) {
  auto C = compileOk(R"(
process ALARM =
  ( ? boolean BRAKE, STOP_OK, LIMIT_REACHED;
    ! boolean ALARM; )
  (| BRAKING_STATE := BRAKING_NEXT_STATE $ 1 init false
   | BRAKING_NEXT_STATE :=
       (true when BRAKE) default (false when STOP_OK) default BRAKING_STATE
   | synchro {when BRAKING_STATE, STOP_OK, LIMIT_REACHED}
   | synchro {when (not BRAKING_STATE), BRAKE}
   | ALARM := LIMIT_REACHED and (not STOP_OK)
  |)
  where boolean BRAKING_STATE, BRAKING_NEXT_STATE; end;
)");
  // ĉSTOP_OK = ĉLIMIT = ĉALARM = [BRAKING_STATE].
  ClockVarId StateLit = C->Clocks.posLiteral(sigOf(*C, "BRAKING_STATE"));
  EXPECT_EQ(C->Forest->rep(clockOf(*C, "STOP_OK")),
            C->Forest->rep(StateLit));
  EXPECT_EQ(C->Forest->rep(clockOf(*C, "ALARM")), C->Forest->rep(StateLit));
  // ĉBRAKE = [¬BRAKING_STATE].
  ClockVarId NegLit = C->Clocks.negLiteral(sigOf(*C, "BRAKING_STATE"));
  EXPECT_EQ(C->Forest->rep(clockOf(*C, "BRAKE")), C->Forest->rep(NegLit));
  // [BRAKE] under [¬BRAKING_STATE]; [STOP_OK] under [BRAKING_STATE].
  EXPECT_TRUE(isDescendant(*C, C->Clocks.posLiteral(sigOf(*C, "BRAKE")),
                           NegLit));
  EXPECT_TRUE(isDescendant(*C, C->Clocks.posLiteral(sigOf(*C, "STOP_OK")),
                           StateLit));
  // Exactly one free clock: the master ĉ (paper Section 3.3).
  EXPECT_EQ(C->Forest->freeClocks().size(), 1u);
  EXPECT_EQ(C->Forest->rep(clockOf(*C, "BRAKING_STATE")),
            C->Forest->node(C->Forest->freeClocks()[0]).Rep);
  // The cyclic equation ĉ = [D] ∨ [C1] ∨ ĉ was discharged by rewriting.
  EXPECT_GE(C->Forest->stats().VerifiedEquations, 1u);
}

TEST(Forest, EmptyClockDetected) {
  // Y := (A when C) when (not C) has the null clock [C] ∧ [¬C]
  // (A and CC synchronized so the literals share a tree).
  auto C = compileOk(proc("? integer A; boolean CC; ! integer Y;",
                          "   synchro {A, CC}\n"
                          "   | T := A when CC\n"
                          "   | U := T when (not CC)\n"
                          "   | Y := A default U",
                          "integer T, U;"));
  EXPECT_TRUE(C->Forest->isNull(clockOf(*C, "U")));
  EXPECT_GE(C->Forest->stats().NullClocks, 1u);
}

TEST(Forest, ConditionAlwaysTrueCollapsesNegLiteral) {
  // synchro {when C, C} forces [C] = ĉ, hence [¬C] = 0̂.
  auto C = compileOk(proc("? boolean CC; ! boolean Y;",
                          "   Y := CC\n   | synchro {when CC, CC}"));
  SignalId S = sigOf(*C, "CC");
  EXPECT_FALSE(C->Forest->isNull(C->Clocks.posLiteral(S)));
  EXPECT_TRUE(C->Forest->isNull(C->Clocks.negLiteral(S)));
  EXPECT_EQ(C->Forest->rep(C->Clocks.posLiteral(S)),
            C->Forest->rep(clockOf(*C, "CC")));
}

TEST(Forest, ContradictoryClockRejected) {
  // Equating the positive literals of two independent conditions cannot
  // be proved by the hierarchy (it would only hold if C ≡ D at every
  // instant) — the compiler rejects the program, as the paper allows for
  // its incomplete heuristic.
  auto C = compileErr(proc("? integer A; boolean CC, DD; ! integer Y;",
                           "   synchro {A, CC}\n   | synchro {A, DD}\n"
                           "   | T := A when CC\n   | U := A when DD\n"
                           "   | synchro {T, U}\n   | Y := A",
                           "integer T, U;"),
                      CompileStage::ClockCalculus);
  EXPECT_NE(C->Diags.render().find("temporally incorrect"),
            std::string::npos);
}

TEST(Forest, EquatingLiteralsOfOneConditionCollapses) {
  // synchro {when CC, when (not CC)} forces [C] = [¬C], hence everything
  // on CC's clock is empty — accepted, with the clocks proved null.
  auto C = compileOk(proc("? boolean CC; ! boolean Y;",
                          "   Y := CC\n"
                          "   | synchro {when CC, when (not CC)}"));
  SignalId S = sigOf(*C, "CC");
  EXPECT_TRUE(C->Forest->isNull(C->Clocks.posLiteral(S)));
  EXPECT_TRUE(C->Forest->isNull(C->Clocks.negLiteral(S)));
  EXPECT_TRUE(C->Forest->isNull(clockOf(*C, "CC")));
}

TEST(Forest, CrossTreeDefinitionBecomesResidual) {
  // A and B have unrelated clocks; Y := A default B is a cross-tree union
  // kept as an explicit residual definition rooted at ^Y.
  auto C = compileOk(proc("? integer A, B; ! integer Y;",
                          "   Y := A default B"));
  ForestNodeId YN = C->Forest->nodeOf(clockOf(*C, "Y"));
  ASSERT_NE(YN, InvalidForestNode);
  EXPECT_EQ(C->Forest->node(YN).Def, ClockDefKind::Residual);
  EXPECT_EQ(C->Forest->stats().ResidualDefinitions, 1u);
  // Free clocks: ^A and ^B but not ^Y.
  EXPECT_EQ(C->Forest->freeClocks().size(), 2u);
}

TEST(Forest, SynchronizedInputsShareNode) {
  auto C = compileOk(proc("? integer A, B; ! integer Y;",
                          "   Y := A + B"));
  EXPECT_EQ(C->Forest->rep(clockOf(*C, "A")), C->Forest->rep(clockOf(*C,
                                                                     "B")));
  EXPECT_EQ(C->Forest->freeClocks().size(), 1u);
}

TEST(Forest, StatsReported) {
  auto C = compileOk(proc("? integer A; boolean C1; ! integer Y;",
                          "   Y := A when C1"));
  const ForestBuildStats &St = C->Forest->stats();
  EXPECT_GE(St.Iterations, 1u);
  EXPECT_GT(St.BddNodes, 0u);
}

TEST(Forest, DumpShowsHierarchy) {
  auto C = compileOk(proc("? integer A; boolean C1; ! integer Y;",
                          "   Y := A when C1\n   | synchro {A, C1}"));
  std::string D = C->Forest->dump(C->Clocks, *C->Kernel, C->names());
  EXPECT_NE(D.find("[literal +C1]"), std::string::npos) << D;
  EXPECT_NE(D.find("free root"), std::string::npos) << D;
}

TEST(Forest, DotExportShowsTreeAndOperandEdges) {
  auto C = compileOk(proc("? integer A, B; boolean C1; ! integer Y;",
                          "   T := A when C1\n   | Y := T default B",
                          "integer T;"));
  std::string Dot = C->Forest->toDot(C->Clocks, *C->Kernel, C->names());
  EXPECT_NE(Dot.find("digraph clocks"), std::string::npos);
  EXPECT_NE(Dot.find("style=dashed"), std::string::npos) << Dot;
  EXPECT_NE(Dot.find("[C1]"), std::string::npos) << Dot;
}

TEST(Forest, DeepChainDepthGrows) {
  // Divider chain: each stage's clock nests under the previous literal.
  std::string Body = "   C1 := (IN mod 2) = 0\n"
                     "   | S1 := IN when C1\n"
                     "   | C2 := (S1 mod 2) = 0\n"
                     "   | S2 := S1 when C2\n"
                     "   | C3 := (S2 mod 2) = 0\n"
                     "   | S3 := S2 when C3\n"
                     "   | OUT := S3";
  auto C = compileOk(proc("? integer IN; ! integer OUT;", Body,
                          "boolean C1, C2, C3; integer S1, S2, S3;"));
  ForestNodeId N = C->Forest->nodeOf(clockOf(*C, "S3"));
  ASSERT_NE(N, InvalidForestNode);
  EXPECT_EQ(C->Forest->depth(N), 3u);
}

TEST(Forest, BudgetExhaustionReportsUnable) {
  // A tiny node budget must abort resolution with UnableMem, not crash.
  // (Two nodes: with complement edges this program needs only four BDD
  // nodes in total — ¬x shares x's node — so the pre-rework limit of
  // eight no longer trips.)
  CompileOptions Options;
  Options.Limits = Budget(0, 2);
  auto C = compileSource("<budget>", proc("? integer IN; ! integer OUT;",
                                          "   C1 := (IN mod 2) = 0\n"
                                          "   | S1 := IN when C1\n"
                                          "   | C2 := (S1 mod 2) = 0\n"
                                          "   | S2 := S1 when C2\n"
                                          "   | OUT := S2",
                                          "boolean C1, C2; integer S1, S2;"),
                         Options);
  EXPECT_FALSE(C->Ok);
  EXPECT_EQ(C->FailedStage, CompileStage::ClockCalculus);
  EXPECT_EQ(C->ForestBudget.verdict(), BudgetVerdict::UnableMem);
}

//===----------------------------------------------------------------------===//
// Property sweep: randomized when/default programs keep the invariants.
//===----------------------------------------------------------------------===//

namespace {
class ForestPropertyTest : public ::testing::TestWithParam<unsigned> {};
} // namespace

TEST_P(ForestPropertyTest, InvariantsHoldOnRandomPrograms) {
  unsigned Seed = GetParam();
  std::mt19937 Rng(Seed);
  // Build a random but well-formed chain/merge program.
  std::string Body;
  std::string Locals = "boolean B0; ";
  std::vector<std::string> Pool{"IN"};
  Body += "   B0 := (IN mod 2) = 0\n";
  std::vector<std::string> Conds{"B0"};
  unsigned NextId = 1;
  for (unsigned I = 0; I < 8; ++I) {
    unsigned Kind = Rng() % 3;
    std::string New = "S" + std::to_string(NextId);
    if (Kind == 0) {
      // Downsample a pool signal by a random condition.
      std::string Src = Pool[Rng() % Pool.size()];
      std::string Cond = Conds[Rng() % Conds.size()];
      Locals += "integer " + New + "; ";
      Body += "   | " + New + " := " + Src + " when " + Cond + "\n";
      Pool.push_back(New);
    } else if (Kind == 1) {
      // Merge two pool signals.
      std::string A = Pool[Rng() % Pool.size()];
      std::string B = Pool[Rng() % Pool.size()];
      Locals += "integer " + New + "; ";
      Body += "   | " + New + " := " + A + " default " + B + "\n";
      Pool.push_back(New);
    } else {
      // New condition on a pool signal.
      std::string Src = Pool[Rng() % Pool.size()];
      std::string CN = "B" + std::to_string(NextId);
      Locals += "boolean " + CN + "; ";
      Body += "   | " + CN + " := (" + Src + " mod 3) = 0\n";
      Conds.push_back(CN);
    }
    ++NextId;
  }
  Body += "   | OUT := " + Pool.back();
  auto C = compileOk(proc("? integer IN; ! integer OUT;", Body, Locals));
  if (!C->Ok)
    return;

  BddManager &M = C->Bdds;
  std::vector<ForestNodeId> Order = C->Forest->dfsOrder();
  for (ForestNodeId N : Order) {
    const ClockNode &Node = C->Forest->node(N);
    EXPECT_TRUE(Node.Alive);
    EXPECT_FALSE(Node.Bdd.isFalse()) << "null clock kept a node";
    if (Node.Parent != InvalidForestNode) {
      // child ⊆ parent, strictly.
      EXPECT_TRUE(M.implies(Node.Bdd, C->Forest->node(Node.Parent).Bdd));
      EXPECT_NE(Node.Bdd, C->Forest->node(Node.Parent).Bdd);
    }
    // No two siblings share a BDD (canonicity).
    if (Node.Parent != InvalidForestNode) {
      for (ForestNodeId Sib : C->Forest->node(Node.Parent).Children) {
        if (Sib != N) {
          EXPECT_NE(C->Forest->node(Sib).Bdd, Node.Bdd);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, ForestPropertyTest,
                         ::testing::Range(0u, 20u));
