//===--- native_test.cpp - Tiered native execution ------------------------===//
///
/// Tests of the native tier: content hashing, the persistent artifact
/// cache (hit/miss, corruption classes, concurrent publication, failed
/// compiles), native-vs-VM trace and counter identity, and the VM ->
/// native hot swap at every batch boundary. Everything that needs the
/// host C compiler skips (not fails) when none is on PATH.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "interp/FleetExecutor.h"
#include "interp/VmExecutor.h"
#include "native/CcRunner.h"
#include "native/NativeCache.h"
#include "native/NativeExecutor.h"
#include "native/StepHash.h"
#include "native/TierController.h"
#include "programs/Programs.h"
#include "testing/Oracle.h"
#include "testing/RandomProgram.h"
#include "testing/TraceCompare.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <dirent.h>
#include <fstream>
#include <memory>
#include <thread>
#include <unistd.h>

using namespace sigc;
using namespace sigc::test;

namespace {

/// A fresh cache directory per test, removed (with contents) on exit.
struct TempCacheDir {
  std::string Path;
  TempCacheDir() {
    char Template[] = "/tmp/sigc-native-test-XXXXXX";
    Path = mkdtemp(Template);
  }
  ~TempCacheDir() {
    for (const std::string &F : entries())
      std::remove((Path + "/" + F).c_str());
    rmdir(Path.c_str());
  }
  std::vector<std::string> entries() const {
    std::vector<std::string> Out;
    if (DIR *D = opendir(Path.c_str())) {
      while (dirent *E = readdir(D)) {
        std::string N = E->d_name;
        if (N != "." && N != "..")
          Out.push_back(N);
      }
      closedir(D);
    }
    return Out;
  }
};

/// A small but representative program: generated well-clocked source
/// with a high accumulator share, so delays carry real state across the
/// swap tests.
std::string sampleSource() {
  RandomProgramOptions O;
  O.Equations = 10;
  O.AccumulatorPercent = 60;
  return generateRandomProgram("P", 42, O);
}

struct TraceRun {
  std::vector<OutputEvent> Events;
  uint64_t Guards = 0;
  uint64_t Executed = 0;
};

TraceRun runVm(const CompiledStep &CS, uint64_t Seed, unsigned Instants,
               unsigned Batch) {
  RandomEnvironment Env(Seed);
  VmExecutor Vm(CS);
  Vm.runBatched(Env, Instants, Batch);
  return {Env.outputs(), Vm.guardTests(), Vm.executed()};
}

TraceRun runNative(const CompiledStep &CS, const NativeModule &M,
                   uint64_t Seed, unsigned Instants, unsigned Batch) {
  RandomEnvironment Env(Seed);
  NativeExecutor NX(CS, M);
  NX.runBatched(Env, Instants, Batch);
  return {Env.outputs(), NX.guardTests(), NX.executed()};
}

void expectSameRun(const TraceRun &A, const char *NameA, const TraceRun &B,
                   const char *NameB) {
  TraceDiff D = compareTraces(NameA, A.Events, NameB, B.Events);
  EXPECT_TRUE(D.Equal) << D.Report;
  EXPECT_EQ(A.Guards, B.Guards);
  EXPECT_EQ(A.Executed, B.Executed);
}

} // namespace

//===----------------------------------------------------------------------===//
// Content hashing
//===----------------------------------------------------------------------===//

TEST(StepHash, DeterministicAndNameIndependent) {
  auto C1 = compileOk(sampleSource());
  auto C2 = compileOk(sampleSource());
  EXPECT_EQ(hashCompiledStep(C1->Compiled), hashCompiledStep(C2->Compiled));
  EXPECT_EQ(hashCompiledStep(C1->Compiled).size(), 16u);

  // Same program under another process name: same bytecode, same hash
  // (the native unit is emitted under a fixed internal name).
  std::string Renamed = sampleSource();
  size_t At = Renamed.find("process P");
  ASSERT_NE(At, std::string::npos);
  Renamed.replace(At, 9, "process Q");
  auto C3 = compileOk(Renamed);
  EXPECT_EQ(hashCompiledStep(C1->Compiled), hashCompiledStep(C3->Compiled));
}

TEST(StepHash, SensitiveToProgramChanges) {
  auto C1 = compileOk(sampleSource());
  auto C2 = compileOk(proc("? integer A; boolean C1; ! integer Y;",
                           "   Y := (A + 2) when C1"));
  EXPECT_NE(hashCompiledStep(C1->Compiled), hashCompiledStep(C2->Compiled));
}

//===----------------------------------------------------------------------===//
// Native execution equivalence
//===----------------------------------------------------------------------===//

TEST(NativeExecutor, MatchesVmOnSampleProgram) {
  if (!nativeCompileAvailable())
    GTEST_SKIP() << "no host C compiler";
  auto C = compileOk(sampleSource());
  TempCacheDir Dir;
  NativeCache Cache(Dir.Path);
  std::string Hash = hashCompiledStep(C->Compiled), Err;
  auto Mod = Cache.compileAndPublish(C->Compiled, Hash, Err);
  ASSERT_TRUE(Mod) << Err;

  for (unsigned Batch : {1u, 7u, 32u})
    expectSameRun(runVm(C->Compiled, 11, 96, Batch), "vm",
                  runNative(C->Compiled, *Mod, 11, 96, Batch), "native");
}

TEST(NativeExecutor, MatchesVmOnAlarmBuiltin) {
  if (!nativeCompileAvailable())
    GTEST_SKIP() << "no host C compiler";
  auto C = compileOk(alarmFigure5Source());
  TempCacheDir Dir;
  NativeCache Cache(Dir.Path);
  std::string Hash = hashCompiledStep(C->Compiled), Err;
  auto Mod = Cache.compileAndPublish(C->Compiled, Hash, Err);
  ASSERT_TRUE(Mod) << Err;
  expectSameRun(runVm(C->Compiled, 3, 128, 8), "vm",
                runNative(C->Compiled, *Mod, 3, 128, 8), "native");
}

TEST(NativeExecutor, MatchesVmOnRandomSweep) {
  if (!nativeCompileAvailable())
    GTEST_SKIP() << "no host C compiler";
  TempCacheDir Dir;
  NativeCache Cache(Dir.Path);
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    std::string Source =
        generateRandomProgram("R" + std::to_string(Seed), Seed);
    auto C = compileSource("<native-sweep>", Source);
    ASSERT_TRUE(C->Ok) << C->Diags.render();
    std::string Hash = hashCompiledStep(C->Compiled), Err;
    auto Mod = Cache.compileAndPublish(C->Compiled, Hash, Err);
    ASSERT_TRUE(Mod) << Err << "\n--- program ---\n" << Source;
    TraceRun Vm = runVm(C->Compiled, Seed * 31 + 1, 64, 8);
    TraceRun Nat = runNative(C->Compiled, *Mod, Seed * 31 + 1, 64, 8);
    TraceDiff D = compareTraces("vm", Vm.Events, "native", Nat.Events);
    EXPECT_TRUE(D.Equal) << D.Report << "\n--- program ---\n" << Source;
    EXPECT_EQ(Vm.Guards, Nat.Guards) << Source;
    EXPECT_EQ(Vm.Executed, Nat.Executed) << Source;
  }
}

//===----------------------------------------------------------------------===//
// Hot swap at every batch boundary
//===----------------------------------------------------------------------===//

TEST(TierSwap, VmToNativeAtEveryBoundaryIsInvisible) {
  if (!nativeCompileAvailable())
    GTEST_SKIP() << "no host C compiler";
  auto C = compileOk(sampleSource());
  TempCacheDir Dir;
  NativeCache Cache(Dir.Path);
  std::string Hash = hashCompiledStep(C->Compiled), Err;
  auto Mod = Cache.compileAndPublish(C->Compiled, Hash, Err);
  ASSERT_TRUE(Mod) << Err;

  const unsigned Total = 48, Batch = 8;
  TraceRun Base = runVm(C->Compiled, 77, Total, Batch);

  for (unsigned K = 0; K <= Total; K += Batch) {
    RandomEnvironment Env(77);
    VmExecutor Vm(C->Compiled);
    for (unsigned S = 0; S < K; S += Batch)
      Vm.stepN(Env, S, Batch);
    NativeExecutor NX(C->Compiled, *Mod);
    NX.importState(Vm.stateSlots(), Vm.guardTests(), Vm.executed());
    for (unsigned S = K; S < Total; S += Batch)
      NX.stepN(Env, S, Batch);

    TraceDiff D = compareTraces("vm-uninterrupted", Base.Events,
                                "swap@" + std::to_string(K), Env.outputs());
    EXPECT_TRUE(D.Equal) << D.Report;
    EXPECT_EQ(Base.Guards, NX.guardTests()) << "swap at " << K;
    EXPECT_EQ(Base.Executed, NX.executed()) << "swap at " << K;
  }
}

TEST(TierSwap, RoundTripNativeBackToVm) {
  if (!nativeCompileAvailable())
    GTEST_SKIP() << "no host C compiler";
  auto C = compileOk(sampleSource());
  TempCacheDir Dir;
  NativeCache Cache(Dir.Path);
  std::string Hash = hashCompiledStep(C->Compiled), Err;
  auto Mod = Cache.compileAndPublish(C->Compiled, Hash, Err);
  ASSERT_TRUE(Mod) << Err;

  const unsigned Total = 48, Batch = 8;
  TraceRun Base = runVm(C->Compiled, 5, Total, Batch);

  // VM -> native at 16, native -> VM at 32: the state must survive both
  // directions.
  RandomEnvironment Env(5);
  VmExecutor Vm(C->Compiled);
  for (unsigned S = 0; S < 16; S += Batch)
    Vm.stepN(Env, S, Batch);
  NativeExecutor NX(C->Compiled, *Mod);
  NX.importState(Vm.stateSlots(), Vm.guardTests(), Vm.executed());
  for (unsigned S = 16; S < 32; S += Batch)
    NX.stepN(Env, S, Batch);
  VmExecutor Vm2(C->Compiled);
  Vm2.setStateSlots(NX.exportState());
  Vm2.setCounters(NX.guardTests(), NX.executed());
  for (unsigned S = 32; S < Total; S += Batch)
    Vm2.stepN(Env, S, Batch);

  TraceDiff D =
      compareTraces("vm-uninterrupted", Base.Events, "round-trip",
                    Env.outputs());
  EXPECT_TRUE(D.Equal) << D.Report;
  EXPECT_EQ(Base.Guards, Vm2.guardTests());
  EXPECT_EQ(Base.Executed, Vm2.executed());
}

//===----------------------------------------------------------------------===//
// Cache behavior
//===----------------------------------------------------------------------===//

TEST(NativeCache, WarmHitSpawnsNoCompiler) {
  if (!nativeCompileAvailable())
    GTEST_SKIP() << "no host C compiler";
  auto C = compileOk(sampleSource());
  TempCacheDir Dir;

  TierOptions O;
  O.Mode = NativeMode::Force;
  O.CacheDir = Dir.Path;
  TierController Cold(C->Compiled, O);
  ASSERT_TRUE(Cold.start()) << Cold.error();
  EXPECT_FALSE(Cold.cacheHit());
  EXPECT_TRUE(Cold.nativeReady());

  uint64_t SpawnsAfterCold = ccSpawnCount();
  TierController Warm(C->Compiled, O);
  ASSERT_TRUE(Warm.start()) << Warm.error();
  EXPECT_TRUE(Warm.cacheHit());
  EXPECT_TRUE(Warm.nativeReady());
  EXPECT_EQ(ccSpawnCount(), SpawnsAfterCold)
      << "a warm cache hit must not spawn the compiler";
}

TEST(NativeCache, AutoModePromotesInBackground) {
  if (!nativeCompileAvailable())
    GTEST_SKIP() << "no host C compiler";
  auto C = compileOk(sampleSource());
  TempCacheDir Dir;

  TierOptions O;
  O.Mode = NativeMode::Auto;
  O.CacheDir = Dir.Path;
  TierController TC(C->Compiled, O);
  ASSERT_TRUE(TC.start()) << TC.error();
  // Miss: the VM would carry the session; wait for the worker here.
  for (int Spin = 0; Spin < 600 && !TC.nativeReady(); ++Spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(TC.nativeReady()) << TC.error();
  ASSERT_NE(TC.module(), nullptr);
  expectSameRun(runVm(C->Compiled, 9, 64, 8), "vm",
                runNative(C->Compiled, *TC.module(), 9, 64, 8), "native");
}

TEST(NativeCache, TruncatedArtifactIsDiscardedAndRecompiled) {
  if (!nativeCompileAvailable())
    GTEST_SKIP() << "no host C compiler";
  auto C = compileOk(sampleSource());
  TempCacheDir Dir;
  NativeCache Cache(Dir.Path);
  std::string Hash = hashCompiledStep(C->Compiled), Err;
  ASSERT_TRUE(Cache.compileAndPublish(C->Compiled, Hash, Err)) << Err;

  // Truncate the artifact to its first 128 bytes.
  {
    std::ifstream In(Cache.soPath(Hash), std::ios::binary);
    char Buf[128] = {0};
    In.read(Buf, sizeof Buf);
    std::ofstream Out(Cache.soPath(Hash),
                      std::ios::binary | std::ios::trunc);
    Out.write(Buf, In.gcount());
  }
  std::string LoadErr;
  EXPECT_EQ(Cache.tryLoad(Hash, LoadErr), nullptr);
  EXPECT_FALSE(LoadErr.empty());
  // The bad file is gone; the next fill recompiles a working artifact.
  std::ifstream Gone(Cache.soPath(Hash));
  EXPECT_FALSE(Gone.good());
  auto Mod = Cache.compileAndPublish(C->Compiled, Hash, Err);
  ASSERT_TRUE(Mod) << Err;
  expectSameRun(runVm(C->Compiled, 2, 32, 8), "vm",
                runNative(C->Compiled, *Mod, 2, 32, 8), "native");
}

TEST(NativeCache, GarbageArtifactIsDiscarded) {
  auto C = compileOk(sampleSource());
  TempCacheDir Dir;
  NativeCache Cache(Dir.Path);
  std::string Hash = hashCompiledStep(C->Compiled);
  {
    std::ofstream Out(Cache.soPath(Hash), std::ios::binary);
    Out << "this is not an ELF shared object";
  }
  std::string Err;
  EXPECT_EQ(Cache.tryLoad(Hash, Err), nullptr);
  EXPECT_FALSE(Err.empty());
  std::ifstream Gone(Cache.soPath(Hash));
  EXPECT_FALSE(Gone.good());
}

TEST(NativeCache, StaleHashArtifactIsDiscarded) {
  if (!nativeCompileAvailable())
    GTEST_SKIP() << "no host C compiler";
  // Publish program A's artifact under program B's hash: the embedded
  // hash betrays it as stale and it must be discarded.
  auto A = compileOk(sampleSource());
  auto B = compileOk(proc("? integer A; boolean C1; ! integer Y;",
                          "   Y := (A + 2) when C1"));
  TempCacheDir Dir;
  NativeCache Cache(Dir.Path);
  std::string HashA = hashCompiledStep(A->Compiled);
  std::string HashB = hashCompiledStep(B->Compiled), Err;
  ASSERT_TRUE(Cache.compileAndPublish(A->Compiled, HashA, Err)) << Err;
  ASSERT_EQ(::rename(Cache.soPath(HashA).c_str(),
                     Cache.soPath(HashB).c_str()),
            0);
  EXPECT_EQ(Cache.tryLoad(HashB, Err), nullptr);
  EXPECT_NE(Err.find("stale"), std::string::npos) << Err;
  std::ifstream Gone(Cache.soPath(HashB));
  EXPECT_FALSE(Gone.good());
}

TEST(NativeCache, AbiTagMismatchIsDiscarded) {
  if (!nativeCompileAvailable())
    GTEST_SKIP() << "no host C compiler";
  auto C = compileOk(sampleSource());
  TempCacheDir Dir;
  NativeCache Cache(Dir.Path);
  std::string Hash = hashCompiledStep(C->Compiled), Err;

  // Build the artifact from doctored source claiming a future ABI.
  std::string Src = NativeModule::buildSource(C->Compiled, Hash);
  std::string Needle = "int sigc_native_abi_tag(void) { return " +
                       std::to_string(NativeFormatVersion) + "; }";
  size_t At = Src.find(Needle);
  ASSERT_NE(At, std::string::npos);
  Src.replace(At, Needle.size(),
              "int sigc_native_abi_tag(void) { return 999; }");
  ASSERT_TRUE(compileSharedObject(Src, Cache.soPath(Hash), Err)) << Err;

  EXPECT_EQ(Cache.tryLoad(Hash, Err), nullptr);
  EXPECT_NE(Err.find("ABI tag mismatch"), std::string::npos) << Err;
  std::ifstream Gone(Cache.soPath(Hash));
  EXPECT_FALSE(Gone.good());
}

TEST(NativeCache, FailedCompileLeavesNoArtifact) {
  if (!nativeCompileAvailable())
    GTEST_SKIP() << "no host C compiler";
  TempCacheDir Dir;
  std::string Out = Dir.Path + "/deadbeefdeadbeef.so", Err;
  EXPECT_FALSE(compileSharedObject("this is not C;", Out, Err));
  EXPECT_FALSE(Err.empty());
  EXPECT_TRUE(Dir.entries().empty())
      << "failed compile left files: " << Dir.entries().front();
}

TEST(NativeCache, ConcurrentPublishersRaceSafely) {
  if (!nativeCompileAvailable())
    GTEST_SKIP() << "no host C compiler";
  auto C = compileOk(sampleSource());
  TempCacheDir Dir;
  NativeCache Cache(Dir.Path);
  std::string Hash = hashCompiledStep(C->Compiled);

  // Both publishers compile the same hash concurrently; rename makes the
  // last one win with an identical artifact, and both must load.
  std::unique_ptr<NativeModule> M1, M2;
  std::string E1, E2;
  std::thread T1([&] { M1 = Cache.compileAndPublish(C->Compiled, Hash, E1); });
  std::thread T2([&] { M2 = Cache.compileAndPublish(C->Compiled, Hash, E2); });
  T1.join();
  T2.join();
  ASSERT_TRUE(M1) << E1;
  ASSERT_TRUE(M2) << E2;
  expectSameRun(runNative(C->Compiled, *M1, 4, 32, 8), "publisher-1",
                runNative(C->Compiled, *M2, 4, 32, 8), "publisher-2");
  // Exactly the published artifact remains — no tmp leftovers.
  auto Entries = Dir.entries();
  ASSERT_EQ(Entries.size(), 1u);
  EXPECT_EQ(Entries[0], Hash + ".so");
}

//===----------------------------------------------------------------------===//
// Fleet native path
//===----------------------------------------------------------------------===//

namespace {

uint64_t instanceSeed(uint64_t Base, unsigned Instance) {
  return Base + 1000003ull * Instance;
}

/// Per-instance environments plus a FleetExecutor, as in fleet_test.
struct Fleet {
  std::vector<std::unique_ptr<RandomEnvironment>> Owned;
  std::vector<Environment *> Envs;
  std::unique_ptr<FleetExecutor> Exec;

  Fleet(const CompiledStep &CS, unsigned Instances, uint64_t BaseSeed,
        FleetExecutor::Config Cfg) {
    for (unsigned J = 0; J < Instances; ++J) {
      Owned.push_back(
          std::make_unique<RandomEnvironment>(instanceSeed(BaseSeed, J)));
      Envs.push_back(Owned.back().get());
    }
    Exec = std::make_unique<FleetExecutor>(CS, Instances, Cfg);
  }
};

std::unique_ptr<NativeModule> buildModule(const CompiledStep &CS,
                                          const std::string &CacheDir) {
  NativeCache Cache(CacheDir);
  std::string Err;
  auto M = Cache.compileAndPublish(CS, hashCompiledStep(CS), Err);
  EXPECT_TRUE(M) << Err;
  return M;
}

} // namespace

TEST(FleetNative, MatchesInterpretedFleetAcrossShapes) {
  if (!nativeCompileAvailable())
    GTEST_SKIP() << "no host C compiler";
  auto C = compileOk(sampleSource());
  TempCacheDir Dir;
  auto M = buildModule(C->Compiled, Dir.Path);
  ASSERT_TRUE(M);

  const unsigned Instances = 7, Instants = 48;
  struct {
    unsigned LaneBlock, Threads, Window;
  } Shapes[] = {{1, 1, 48}, {4, 1, 8}, {4, 2, 16}, {64, 3, 7}};
  for (auto Sh : Shapes) {
    FleetExecutor::Config Cfg;
    Cfg.LaneBlock = Sh.LaneBlock;
    Cfg.Threads = Sh.Threads;
    Fleet Interp(C->Compiled, Instances, 0xF1EE7, Cfg);
    Interp.Exec->runBatched(Interp.Envs, Instants, Sh.Window);

    Fleet Nat(C->Compiled, Instances, 0xF1EE7, Cfg);
    Nat.Exec->setNative(M.get());
    Nat.Exec->runBatched(Nat.Envs, Instants, Sh.Window);

    for (unsigned J = 0; J < Instances; ++J) {
      TraceDiff D = compareTraces("interp", Interp.Owned[J]->outputs(),
                                  "native", Nat.Owned[J]->outputs());
      EXPECT_TRUE(D.Equal) << "lane block " << Sh.LaneBlock << ", threads "
                           << Sh.Threads << ", instance " << J << "\n"
                           << D.Report;
    }
    EXPECT_EQ(Interp.Exec->guardTests(), Nat.Exec->guardTests());
    EXPECT_EQ(Interp.Exec->executed(), Nat.Exec->executed());
  }
}

TEST(FleetNative, SwapAtWindowBoundaryIsInvisible) {
  if (!nativeCompileAvailable())
    GTEST_SKIP() << "no host C compiler";
  auto C = compileOk(sampleSource());
  TempCacheDir Dir;
  auto M = buildModule(C->Compiled, Dir.Path);
  ASSERT_TRUE(M);

  const unsigned Instances = 5, Total = 48, Window = 8;
  FleetExecutor::Config Cfg;
  Cfg.LaneBlock = 4;

  Fleet Ref(C->Compiled, Instances, 0x5A4B, Cfg);
  Ref.Exec->runBatched(Ref.Envs, Total, Window);

  // Swap to native at every window boundary k, and back to the
  // interpreter one window later: StateSoA is canonical across the
  // swap, so neither handoff may be observable.
  for (unsigned K = Window; K < Total; K += Window) {
    Fleet F(C->Compiled, Instances, 0x5A4B, Cfg);
    F.Exec->runBatched(F.Envs, K, Window);
    F.Exec->setNative(M.get());
    unsigned Back = std::min(K + Window, Total);
    F.Exec->stepN(F.Envs, K, Back - K);
    F.Exec->setNative(nullptr);
    for (unsigned At = Back; At < Total; At += Window)
      F.Exec->stepN(F.Envs, At, std::min(Window, Total - At));

    for (unsigned J = 0; J < Instances; ++J) {
      TraceDiff D = compareTraces("uninterrupted", Ref.Owned[J]->outputs(),
                                  "swapped", F.Owned[J]->outputs());
      EXPECT_TRUE(D.Equal) << "swap at " << K << ", instance " << J << "\n"
                           << D.Report;
    }
    EXPECT_EQ(Ref.Exec->guardTests(), F.Exec->guardTests()) << "swap at " << K;
    EXPECT_EQ(Ref.Exec->executed(), F.Exec->executed()) << "swap at " << K;
  }
}

TEST(FleetNative, LaneCheckpointsSurviveNativeWindows) {
  if (!nativeCompileAvailable())
    GTEST_SKIP() << "no host C compiler";
  auto C = compileOk(sampleSource());
  TempCacheDir Dir;
  auto M = buildModule(C->Compiled, Dir.Path);
  ASSERT_TRUE(M);

  // A checkpoint taken after a native window restores onto a fresh
  // interpreted executor — serve resume must not care which tier ran.
  FleetExecutor::Config Cfg;
  Cfg.LaneBlock = 4;
  Fleet F(C->Compiled, 3, 0xC4EC, Cfg);
  F.Exec->setNative(M.get());
  F.Exec->stepN(F.Envs, 0, 24);
  std::vector<Value> Snap;
  F.Exec->saveLaneState(1, Snap);

  Fleet G(C->Compiled, 3, 0xC4EC, Cfg);
  G.Exec->stepN(G.Envs, 0, 24);
  std::vector<Value> Ref;
  G.Exec->saveLaneState(1, Ref);

  ASSERT_EQ(Snap.size(), Ref.size());
  for (size_t S = 0; S < Snap.size(); ++S)
    EXPECT_EQ(Snap[S].Kind, Ref[S].Kind) << "slot " << S;

  // Restoring the native-tier checkpoint into the interpreted fleet and
  // continuing matches the all-interpreted continuation.
  G.Exec->restoreLaneState(1, Snap);
  F.Exec->setNative(nullptr);
  F.Exec->stepN(F.Envs, 24, 24);
  G.Exec->stepN(G.Envs, 24, 24);
  TraceDiff D = compareTraces("native-checkpoint", F.Owned[1]->outputs(),
                              "interp-checkpoint", G.Owned[1]->outputs());
  EXPECT_TRUE(D.Equal) << D.Report;
}
