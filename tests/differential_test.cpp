//===--- differential_test.cpp - Simulation-oracle differential suite -----===//
///
/// Drives the src/testing/ oracle over
///   * the Figure-13 builtin program suite (plus the Figure-5 alarm),
///   * 100+ random well-clocked programs,
///   * the emitted-C round-trip, when a host C compiler is present,
/// asserting that the fixpoint interpreter, the flat step program, the
/// nested step program and the compiled C all produce identical traces —
/// the executable form of the paper's claim that the hierarchization
/// preserves the program's semantics (Section 3.4).
///
//===----------------------------------------------------------------------===//

#include "programs/Programs.h"
#include "testing/Oracle.h"
#include "testing/RandomProgram.h"
#include "testing/TraceCompare.h"

#include <gtest/gtest.h>

using namespace sigc;

//===----------------------------------------------------------------------===//
// The oracle itself must be able to see a divergence.
//===----------------------------------------------------------------------===//

TEST(TraceCompare, EqualTracesCompareEqual) {
  std::vector<OutputEvent> A = {{0, "X", Value::makeInt(1)},
                                {0, "Y", Value::makeInt(2)},
                                {1, "X", Value::makeInt(3)}};
  // Same events, different within-instant order: canonically equal.
  std::vector<OutputEvent> B = {{0, "Y", Value::makeInt(2)},
                                {0, "X", Value::makeInt(1)},
                                {1, "X", Value::makeInt(3)}};
  EXPECT_TRUE(compareTraces("a", A, "b", B).Equal);
}

TEST(TraceCompare, ValueDivergenceIsReported) {
  std::vector<OutputEvent> A = {{0, "X", Value::makeInt(1)},
                                {1, "X", Value::makeInt(2)}};
  std::vector<OutputEvent> B = {{0, "X", Value::makeInt(1)},
                                {1, "X", Value::makeInt(5)}};
  TraceDiff D = compareTraces("left", A, "right", B);
  EXPECT_FALSE(D.Equal);
  EXPECT_NE(D.Report.find("left: 1 X=2"), std::string::npos) << D.Report;
  EXPECT_NE(D.Report.find("right: 1 X=5"), std::string::npos) << D.Report;
}

TEST(TraceCompare, MissingEventIsReported) {
  std::vector<OutputEvent> A = {{0, "X", Value::makeInt(1)},
                                {2, "X", Value::makeInt(2)}};
  std::vector<OutputEvent> B = {{0, "X", Value::makeInt(1)}};
  TraceDiff D = compareTraces("full", A, "short", B);
  EXPECT_FALSE(D.Equal);
  EXPECT_NE(D.Report.find("<end of trace>"), std::string::npos) << D.Report;
}

TEST(Oracle, RejectsUncompilableSource) {
  OracleReport R = checkDifferential("broken", "process = (");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("compilation failed"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Random program generation.
//===----------------------------------------------------------------------===//

TEST(RandomProgram, DeterministicForFixedSeed) {
  RandomProgramOptions O;
  EXPECT_EQ(generateRandomProgram("P", 42, O),
            generateRandomProgram("P", 42, O));
}

TEST(RandomProgram, DifferentSeedsDiffer) {
  RandomProgramOptions O;
  EXPECT_NE(generateRandomProgram("P", 1, O),
            generateRandomProgram("P", 2, O));
}

TEST(RandomProgram, ClampsDegenerateOptions) {
  // Zero boolean inputs / zero outputs are clamped to the documented
  // minimums instead of corrupting the generator.
  RandomProgramOptions Gen;
  Gen.BoolInputs = 0;
  Gen.MaxOutputs = 0;
  std::string S = generateRandomProgram("P", 5, Gen);
  EXPECT_NE(S.find("boolean B1"), std::string::npos) << S;
  OracleOptions O;
  O.Instants = 16;
  OracleReport R = checkRandomDifferential(5, Gen, O);
  EXPECT_TRUE(R.Ok) << R.Error;
}

//===----------------------------------------------------------------------===//
// Figure-13 builtin suite.
//===----------------------------------------------------------------------===//

TEST(DifferentialBuiltins, Figure5Alarm) {
  OracleOptions O;
  O.Instants = 96;
  O.EnvSeed = 7;
  OracleReport R = checkDifferential("FIG5_ALARM", alarmFigure5Source(), O);
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_LE(R.GuardTestsNested, R.GuardTestsFlat);
}

namespace {

class Figure13Differential
    : public ::testing::TestWithParam<Figure13Program> {};

} // namespace

TEST_P(Figure13Differential, AllPathsAgree) {
  const Figure13Program &P = GetParam();
  OracleOptions O;
  O.Instants = 48;
  O.EnvSeed = 3;
  // The C leg runs on the whole builtin suite (skipped, not failed, on
  // compiler-less hosts); counters pin to the VM inside the oracle.
  O.EmitCRoundTrip = true;
  OracleReport R = checkDifferential(P.Name, P.Source, O);
  EXPECT_TRUE(R.Ok) << R.Error;
  // Note: nested mode is not universally cheaper in *tests* — a deep tree
  // with few instructions per block can test more block guards than the
  // flat program tests instruction guards (STOPWATCH does). Equality of
  // traces is the invariant; the guard economics are the benchmarks' job.
}

INSTANTIATE_TEST_SUITE_P(Suite, Figure13Differential,
                         ::testing::ValuesIn(figure13Suite()),
                         [](const auto &Info) { return Info.param.Name; });

//===----------------------------------------------------------------------===//
// Emitted-C round-trip (compiles the generated C with the host cc).
//===----------------------------------------------------------------------===//

TEST(DifferentialEmitC, Alarm) {
  if (!hostCCompilerAvailable())
    GTEST_SKIP() << "no host C compiler";
  OracleOptions O;
  O.Instants = 64;
  O.EnvSeed = 11;
  O.EmitCRoundTrip = true;
  // The native hot-swap leg rides along: swap at every batch boundary,
  // trace and counters pinned to the pure VM run.
  O.NativeSwap = true;
  OracleReport R = checkDifferential("FIG5_ALARM", alarmFigure5Source(), O);
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(R.CRoundTripRan);
  EXPECT_TRUE(R.NativeSwapRan);
  // The generated C maintains its own guard/executed counters and the
  // oracle pins them to the VM's; the parsed values surface here.
  EXPECT_EQ(R.GuardTestsC, R.GuardTestsVm);
  EXPECT_EQ(R.ExecutedC, R.ExecutedVm);
  EXPECT_GT(R.GuardTestsC, 0u);
  EXPECT_GT(R.ExecutedC, 0u);
  // The harness also self-checked the emitted _step_fleet against
  // per-instance _step_batch runs and reported success.
  EXPECT_TRUE(R.CFleetChecked);
}

TEST(DifferentialFleet, CountersSumOverInstancesAndInstanceZeroIsTheVm) {
  // The fleet leg runs inside every oracle call; this pins the exposed
  // report fields: the fleet totals are per-instance scalar sums, and
  // instance 0 (seeded EnvSeed) contributes exactly the VM leg's
  // counters, so the totals strictly dominate them for >1 instances.
  OracleOptions O;
  O.Instants = 96;
  O.EnvSeed = 7;
  O.FleetInstances = 4;
  O.FleetLaneBlock = 2;
  O.FleetThreads = 2;
  OracleReport R = checkDifferential("FIG5_ALARM", alarmFigure5Source(), O);
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_GT(R.GuardTestsFleet, R.GuardTestsVm);
  EXPECT_GT(R.ExecutedFleet, R.ExecutedVm);
}

TEST(DifferentialEmitC, AlarmLargeBatchWindow) {
  // The batched VM leg at a window larger than the instant count — one
  // stepN call covers the whole run.
  if (!hostCCompilerAvailable())
    GTEST_SKIP() << "no host C compiler";
  OracleOptions O;
  O.Instants = 64;
  O.EnvSeed = 11;
  O.BatchSize = 128;
  O.EmitCRoundTrip = true;
  OracleReport R = checkDifferential("FIG5_ALARM", alarmFigure5Source(), O);
  EXPECT_TRUE(R.Ok) << R.Error;
}

TEST(DifferentialEmitC, BooleanVsEventComparisonMatchesValueSemantics) {
  // Sema accepts `=` between any boolish pair, and Value::operator==
  // makes a boolean and an event compare unequal regardless of payload;
  // the emitted C must fold the comparison the same way the VM
  // evaluates it (historically it compared the int representations and
  // answered true).
  if (!hostCCompilerAvailable())
    GTEST_SKIP() << "no host C compiler";
  const char *Source =
      "process P =\n"
      "  ( ? boolean B; event E; ! boolean Y, N; )\n"
      "  (| Y := B = E\n"
      "   | N := B /= E\n"
      "   | synchro {B, E}\n"
      "  |);\n";
  OracleOptions O;
  O.Instants = 24;
  O.EnvSeed = 13;
  O.EmitCRoundTrip = true;
  OracleReport R = checkDifferential("bool-vs-event", Source, O);
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(R.CRoundTripRan);
}

TEST(DifferentialEmitC, RandomPrograms) {
  if (!hostCCompilerAvailable())
    GTEST_SKIP() << "no host C compiler";
  RandomProgramOptions Gen;
  OracleOptions O;
  O.Instants = 32;
  O.EmitCRoundTrip = true;
  for (uint64_t Seed = 9000; Seed < 9008; ++Seed) {
    O.EnvSeed = Seed;
    OracleReport R = checkRandomDifferential(Seed, Gen, O);
    EXPECT_TRUE(R.Ok) << R.Error;
    EXPECT_TRUE(R.CRoundTripRan);
    EXPECT_EQ(R.GuardTestsC, R.GuardTestsVm);
    EXPECT_EQ(R.ExecutedC, R.ExecutedVm);
  }
}

TEST(DifferentialNativeSwap, RandomPrograms) {
  // The oracle's hot-swap leg over generated programs: one native
  // artifact per program through the production cache path, swapped in
  // at every batch boundary (batch size varied per seed so the swap
  // points cover different instant phases). Delay-heavy generation
  // makes the state handoff carry real accumulator values.
  if (!hostCCompilerAvailable())
    GTEST_SKIP() << "no host C compiler";
  RandomProgramOptions Gen;
  Gen.AccumulatorPercent = 60;
  OracleOptions O;
  O.Instants = 40;
  O.NativeSwap = true;
  for (uint64_t Seed = 4200; Seed < 4204; ++Seed) {
    O.EnvSeed = Seed + 5;
    O.BatchSize = 1 + static_cast<unsigned>(Seed % 9);
    OracleReport R = checkRandomDifferential(Seed, Gen, O);
    EXPECT_TRUE(R.Ok) << R.Error;
    EXPECT_TRUE(R.NativeSwapRan);
  }
}

//===----------------------------------------------------------------------===//
// Random-program sweep: 100+ seeds through all in-process paths.
//===----------------------------------------------------------------------===//

namespace {

class RandomDifferential : public ::testing::TestWithParam<unsigned> {};

} // namespace

TEST_P(RandomDifferential, AllPathsAgree) {
  unsigned Block = GetParam();
  RandomProgramOptions Gen;
  OracleOptions O;
  O.Instants = 48;
  // Every random program round-trips through the host C compiler too
  // (8 blocks x 16 seeds = 128 programs through the emitted-C leg).
  O.EmitCRoundTrip = true;
  for (uint64_t Seed = Block * 16; Seed < (Block + 1) * 16ull; ++Seed) {
    O.EnvSeed = Seed * 31 + 1;
    // Vary the batched leg's window so the sweep covers every
    // batch/instant-count phase, not just one.
    O.BatchSize = 1 + static_cast<unsigned>(Seed % 9);
    // Vary the fleet leg's lane grouping and sharding the same way, so
    // the sweep covers single-lane blocks, partial tail blocks, and
    // both the inline and the threaded execution paths.
    O.FleetLaneBlock = 1 + static_cast<unsigned>(Seed % 5);
    O.FleetThreads = 1 + static_cast<unsigned>(Seed % 3);
    OracleReport R = checkRandomDifferential(Seed, Gen, O);
    EXPECT_TRUE(R.Ok) << R.Error;
  }
}

// 8 blocks x 16 seeds = 128 random programs.
INSTANTIATE_TEST_SUITE_P(Sweep, RandomDifferential,
                         ::testing::Range(0u, 8u));

//===----------------------------------------------------------------------===//
// Sparse clocks and bigger programs: variations of the generator knobs.
//===----------------------------------------------------------------------===//

TEST(RandomDifferential, SparseTicks) {
  RandomProgramOptions Gen;
  OracleOptions O;
  O.Instants = 64;
  O.TickPermille = 300; // mostly-absent free clocks
  O.EmitCRoundTrip = true;
  for (uint64_t Seed = 500; Seed < 516; ++Seed) {
    O.EnvSeed = Seed + 99;
    OracleReport R = checkRandomDifferential(Seed, Gen, O);
    EXPECT_TRUE(R.Ok) << R.Error;
  }
}

TEST(RandomDifferential, LargerPrograms) {
  RandomProgramOptions Gen;
  Gen.Equations = 32;
  Gen.IntInputs = 4;
  Gen.BoolInputs = 4;
  Gen.MaxOutputs = 6;
  OracleOptions O;
  O.Instants = 32;
  O.EmitCRoundTrip = true;
  for (uint64_t Seed = 700; Seed < 712; ++Seed) {
    O.EnvSeed = Seed;
    OracleReport R = checkRandomDifferential(Seed, Gen, O);
    EXPECT_TRUE(R.Ok) << R.Error;
  }
}
