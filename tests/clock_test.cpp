//===--- clock_test.cpp - Table-1 extraction and union-find ---------------===//

#include "TestUtil.h"
#include "clock/UnionFind.h"

#include <gtest/gtest.h>

using namespace sigc;
using namespace sigc::test;

TEST(UnionFind, Basics) {
  UnionFind UF(5);
  EXPECT_FALSE(UF.same(0, 1));
  UF.unite(0, 1);
  EXPECT_TRUE(UF.same(0, 1));
  UF.unite(1, 2);
  EXPECT_TRUE(UF.same(0, 2));
  EXPECT_FALSE(UF.same(0, 3));
}

TEST(UnionFind, RepresentativeStable) {
  UnionFind UF(4);
  uint32_t R = UF.unite(0, 1);
  EXPECT_EQ(UF.find(0), R);
  EXPECT_EQ(UF.find(1), R);
}

TEST(UnionFind, Ensure) {
  UnionFind UF(2);
  UF.ensure(10);
  EXPECT_EQ(UF.size(), 10u);
  EXPECT_EQ(UF.find(9), 9u);
}

TEST(UnionFind, Representatives) {
  UnionFind UF(4);
  UF.unite(0, 3);
  auto Reps = UF.representatives();
  EXPECT_EQ(Reps.size(), 3u);
}

TEST(UnionFind, TransitiveChains) {
  UnionFind UF(100);
  for (uint32_t I = 0; I + 1 < 100; ++I)
    UF.unite(I, I + 1);
  EXPECT_TRUE(UF.same(0, 99));
  EXPECT_EQ(UF.representatives().size(), 1u);
}

//===----------------------------------------------------------------------===//
// Table-1 extraction
//===----------------------------------------------------------------------===//

namespace {

std::string clocksOf(const std::string &Source) {
  auto C = compileOk(Source);
  if (!C->Ok)
    return "<failed>";
  return C->Clocks.dump(*C->Kernel, C->names());
}

} // namespace

TEST(ClockExtract, FuncRowYieldsEqualities) {
  std::string S = clocksOf(proc("? integer A, B; ! integer Y;",
                                "   Y := A + B"));
  EXPECT_NE(S.find("^Y = ^A"), std::string::npos) << S;
  EXPECT_NE(S.find("^Y = ^B"), std::string::npos) << S;
}

TEST(ClockExtract, DelayRowYieldsEquality) {
  std::string S = clocksOf(proc("? integer A; ! integer Y;",
                                "   Y := A $ 1 init 0"));
  EXPECT_NE(S.find("^Y = ^A"), std::string::npos) << S;
}

TEST(ClockExtract, WhenRowYieldsIntersection) {
  std::string S = clocksOf(proc("? integer A; boolean C; ! integer Y;",
                                "   Y := A when C"));
  EXPECT_NE(S.find("^Y = ^A ^* [C]"), std::string::npos) << S;
}

TEST(ClockExtract, WhenNotUsesNegLiteral) {
  std::string S = clocksOf(proc("? integer A; boolean C; ! integer Y;",
                                "   Y := A when (not C)"));
  EXPECT_NE(S.find("^Y = ^A ^* [~C]"), std::string::npos) << S;
}

TEST(ClockExtract, ConstantWhenIsEqualityWithLiteral) {
  std::string S = clocksOf(proc("? boolean C; ! integer Y;",
                                "   Y := 1 when C"));
  EXPECT_NE(S.find("^Y = [C]"), std::string::npos) << S;
}

TEST(ClockExtract, DefaultRowYieldsUnion) {
  std::string S = clocksOf(proc("? integer A, B; ! integer Y;",
                                "   Y := A default B"));
  EXPECT_NE(S.find("^Y = ^A ^+ ^B"), std::string::npos) << S;
}

TEST(ClockExtract, PartitionConstraintsPerBoolean) {
  std::string S = clocksOf(proc("? boolean C; ! boolean Y;",
                                "   Y := not C"));
  EXPECT_NE(S.find("[C] ^+ [~C] = ^C"), std::string::npos) << S;
  EXPECT_NE(S.find("[C] ^* [~C] = 0"), std::string::npos) << S;
  EXPECT_NE(S.find("[Y] ^+ [~Y] = ^Y"), std::string::npos) << S;
}

TEST(ClockExtract, EventSignalsGetNoLiterals) {
  auto C = compileOk(proc("? boolean B; ! event Y;", "   Y := when B"));
  for (SignalId S = 0; S < C->Kernel->numSignals(); ++S) {
    if (C->Kernel->Signals[S].Type == TypeKind::Event) {
      EXPECT_EQ(C->Clocks.posLiteral(S), InvalidClockVar);
    }
  }
}

TEST(ClockExtract, SynchroYieldsEquality) {
  auto C = compileOk(proc("? integer A, B; ! integer Y;",
                          "   Y := A\n   | synchro {A, B}"));
  bool Found = false;
  for (const ClockEquality &E : C->Clocks.equalities()) {
    const ClockVarInfo &IA = C->Clocks.varInfo(E.A);
    const ClockVarInfo &IB = C->Clocks.varInfo(E.B);
    std::string NA(C->names().spelling(C->Kernel->Signals[IA.Signal].Name));
    std::string NB(C->names().spelling(C->Kernel->Signals[IB.Signal].Name));
    if ((NA == "A" && NB == "B") || (NA == "B" && NB == "A"))
      Found = true;
  }
  EXPECT_TRUE(Found);
}

TEST(ClockExtract, VariableCountMatchesKernelPrediction) {
  auto C = compileOk(proc("? boolean A; integer B; ! integer Y;",
                          "   Y := B when A"));
  EXPECT_EQ(C->Clocks.numVars(), C->Kernel->countClockVariables());
}

TEST(ClockExtract, VarNames) {
  auto C = compileOk(proc("? boolean C; ! boolean Y;", "   Y := C"));
  SignalId CSig = 0;
  for (SignalId S = 0; S < C->Kernel->numSignals(); ++S)
    if (C->names().spelling(C->Kernel->Signals[S].Name) == "C")
      CSig = S;
  EXPECT_EQ(C->Clocks.varName(C->Clocks.signalClock(CSig), *C->Kernel,
                              C->names()),
            "^C");
  EXPECT_EQ(C->Clocks.varName(C->Clocks.posLiteral(CSig), *C->Kernel,
                              C->names()),
            "[C]");
  EXPECT_EQ(C->Clocks.varName(C->Clocks.negLiteral(CSig), *C->Kernel,
                              C->names()),
            "[~C]");
}
