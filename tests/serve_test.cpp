//===--- serve_test.cpp - signalc --serve session front end ---------------===//
///
/// End-to-end tests of the trace-stream server: a bounded `signalc
/// --serve` subprocess on a Unix domain socket, driven by real clients.
///
///   * two concurrent sessions receive correct, independent outputs-only
///     response streams, and the per-session counters the server prints
///     equal the scalar VM run on the same stimulus,
///   * a client disconnecting mid-frame tears its session down as
///     "disconnected" while a full session on the same server completes
///     cleanly,
///   * a stimulus recorded against a different interface is rejected as
///     an interface mismatch, not executed.
///
/// Requests are built in-process with TraceWriter against the same
/// compiled interface the server loads (--builtin FIG5_ALARM).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "interp/VmExecutor.h"
#include "io/TraceEnvironment.h"
#include "io/TraceFormat.h"
#include "io/TraceReader.h"
#include "io/TraceWriter.h"
#include "programs/Programs.h"
#include "native/NativeCache.h"
#include "native/StepHash.h"
#include "testing/Oracle.h"
#include "testing/RandomProgram.h"

#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>
#include <tuple>

using namespace sigc;
using namespace sigc::test;

namespace {

//===----------------------------------------------------------------------===//
// Server subprocess management
//===----------------------------------------------------------------------===//

struct ScopedServer {
  pid_t Pid = -1;
  std::string Sock, LogPath;

  /// Spawns `signalc <Program>... --serve SOCK <Extra>...` with stderr
  /// captured to a log file. \p Program defaults to the FIG5 alarm
  /// builtin; pass e.g. {"/path/prog.sig"} to serve a file.
  void spawnArgs(const std::vector<std::string> &Extra,
                 const std::vector<std::string> &Program = {"--builtin",
                                                           "FIG5_ALARM"}) {
    static int Counter = 0;
    std::string Base = ::testing::TempDir() + "sigc_serve_" +
                       std::to_string(::getpid()) + "_" +
                       std::to_string(Counter++);
    Sock = Base + ".sock";
    LogPath = Base + ".log";
    ::unlink(Sock.c_str());
    std::vector<std::string> Args;
    Args.push_back(SIGNALC_BIN);
    Args.insert(Args.end(), Program.begin(), Program.end());
    Args.push_back("--serve");
    Args.push_back(Sock);
    Args.insert(Args.end(), Extra.begin(), Extra.end());
    Pid = ::fork();
    ASSERT_NE(Pid, -1);
    if (Pid == 0) {
      int Log = ::open(LogPath.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (Log >= 0) {
        ::dup2(Log, 1);
        ::dup2(Log, 2);
        ::close(Log);
      }
      std::vector<char *> Argv;
      for (std::string &A : Args)
        Argv.push_back(A.data());
      Argv.push_back(nullptr);
      ::execv(SIGNALC_BIN, Argv.data());
      _exit(127);
    }
  }

  void spawn(unsigned MaxSessions, unsigned Limit, unsigned Batch = 0) {
    std::vector<std::string> Extra = {"--max-sessions",
                                      std::to_string(MaxSessions),
                                      "--serve-limit", std::to_string(Limit)};
    if (Batch) {
      Extra.push_back("--batch");
      Extra.push_back(std::to_string(Batch));
    }
    spawnArgs(Extra);
  }

  /// Waits for the bounded server to exit and returns its exit code.
  int wait() {
    int St = 0;
    ::waitpid(Pid, &St, 0);
    Pid = -1;
    return WIFEXITED(St) ? WEXITSTATUS(St) : -1;
  }

  std::string log() const {
    std::ifstream In(LogPath);
    std::ostringstream SS;
    SS << In.rdbuf();
    return SS.str();
  }

  /// Polls the log until \p Needle has appeared \p Times times (the
  /// cross-process rendezvous: e.g. "the session was parked").
  bool waitForLog(const std::string &Needle, unsigned Times = 1) const {
    for (int Try = 0; Try < 3000; ++Try) {
      std::string L = log();
      size_t Seen = 0, At = 0;
      while ((At = L.find(Needle, At)) != std::string::npos) {
        ++Seen;
        At += Needle.size();
      }
      if (Seen >= Times)
        return true;
      ::usleep(10 * 1000);
    }
    return false;
  }

  ~ScopedServer() {
    if (Pid > 0) {
      ::kill(Pid, SIGKILL);
      ::waitpid(Pid, nullptr, 0);
    }
    if (!Sock.empty())
      ::unlink(Sock.c_str());
    if (!LogPath.empty())
      ::unlink(LogPath.c_str());
  }
};

/// Connects to \p Sock, retrying while the server is still starting.
int connectClient(const std::string &Sock) {
  for (int Try = 0; Try < 1000; ++Try) {
    int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0)
      return -1;
    sockaddr_un Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sun_family = AF_UNIX;
    std::strncpy(Addr.sun_path, Sock.c_str(), sizeof(Addr.sun_path) - 1);
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) ==
        0) {
      // A stuck server must fail the test, not hang it.
      timeval TV{30, 0};
      ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &TV, sizeof(TV));
      return Fd;
    }
    ::close(Fd);
    ::usleep(10 * 1000);
  }
  return -1;
}

bool sendAll(int Fd, const uint8_t *Data, size_t Len) {
  size_t At = 0;
  while (At < Len) {
    ssize_t N = ::send(Fd, Data + At, Len - At, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    At += static_cast<size_t>(N);
  }
  return true;
}

/// Reads until the server closes the connection.
std::vector<uint8_t> recvAll(int Fd) {
  std::vector<uint8_t> Out;
  uint8_t Buf[4096];
  for (;;) {
    ssize_t N = ::recv(Fd, Buf, sizeof Buf, 0);
    if (N > 0) {
      Out.insert(Out.end(), Buf, Buf + N);
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    break; // EOF, timeout, or reset after teardown: caller validates.
  }
  return Out;
}

/// Reads exactly \p Len bytes (fails the test on EOF/timeout short of it).
std::vector<uint8_t> recvExactly(int Fd, size_t Len) {
  std::vector<uint8_t> Out;
  uint8_t Buf[4096];
  while (Out.size() < Len) {
    size_t Want = std::min(sizeof Buf, Len - Out.size());
    ssize_t N = ::recv(Fd, Buf, Want, 0);
    if (N > 0) {
      Out.insert(Out.end(), Buf, Buf + N);
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    ADD_FAILURE() << "connection ended after " << Out.size() << " of " << Len
                  << " bytes";
    break;
  }
  return Out;
}

/// Splits the fixed-size Hello control frame off the front of a session
/// response, returning the resume token through \p Token. The remainder
/// is the response trace stream itself.
std::vector<uint8_t> stripHello(const std::vector<uint8_t> &Resp,
                                uint64_t &Token) {
  if (Resp.size() < ServeHelloBytes) {
    ADD_FAILURE() << "response shorter than a Hello: " << Resp.size();
    return {};
  }
  ServeCtrl C;
  size_t Consumed = 0;
  TraceError Err;
  TraceFrameStatus St = decodeServeCtrl(Resp.data(), Resp.size(), 0, C,
                                        Consumed, Err);
  EXPECT_EQ(static_cast<int>(St), static_cast<int>(TraceFrameStatus::Frame))
      << Err.str();
  EXPECT_EQ(static_cast<int>(C.Type),
            static_cast<int>(ServeCtrlType::Hello));
  EXPECT_EQ(Consumed, static_cast<size_t>(ServeHelloBytes));
  Token = C.Token;
  return {Resp.begin() + ServeHelloBytes, Resp.end()};
}

std::vector<uint8_t> stripHello(const std::vector<uint8_t> &Resp) {
  uint64_t Token = 0;
  return stripHello(Resp, Token);
}

/// Decodes a response that must be a single typed Reject frame.
ServeCtrl decodeReject(const std::vector<uint8_t> &Resp) {
  ServeCtrl C;
  size_t Consumed = 0;
  TraceError Err;
  TraceFrameStatus St = decodeServeCtrl(Resp.data(), Resp.size(), 0, C,
                                        Consumed, Err);
  EXPECT_EQ(static_cast<int>(St), static_cast<int>(TraceFrameStatus::Frame))
      << Err.str();
  EXPECT_EQ(static_cast<int>(C.Type),
            static_cast<int>(ServeCtrlType::Reject));
  EXPECT_EQ(Consumed, Resp.size()) << "trailing bytes after the reject";
  return C;
}

/// The Resume preamble a reconnecting client sends.
std::vector<uint8_t> encodeResume(uint64_t Token, uint64_t Hash,
                                  unsigned Instant) {
  ServeCtrl C;
  C.Type = ServeCtrlType::Resume;
  C.Token = Token;
  C.InterfaceHash = Hash;
  C.ResumeInstant = Instant;
  std::vector<uint8_t> Out;
  encodeServeCtrl(C, Out);
  return Out;
}

//===----------------------------------------------------------------------===//
// Stimulus construction and response decoding
//===----------------------------------------------------------------------===//

struct Stimulus {
  std::vector<uint8_t> Bytes;
  std::vector<OutputEvent> Events; ///< The live run's outputs.
  uint64_t GuardTests = 0, Executed = 0;
};

/// Records \p Instants instants of \p C under seed \p Seed into a
/// request trace (frame capacity 8), remembering the live outputs and
/// the scalar VM counters the server must reproduce lane-for-lane.
Stimulus recordStimulus(const Compilation &C, unsigned Instants,
                        uint64_t Seed, const std::string &ProcName = "ALARM") {
  Stimulus St;
  MemorySink Sink;
  TraceWriter W(Sink, TraceSpec::fromStep(C.Compiled, ProcName, 8));
  RandomEnvironment Rnd(Seed);
  RecordingEnvironment Rec(Rnd, W);
  VmExecutor Vm(C.Compiled);
  Vm.runBatched(Rec, Instants, 8);
  EXPECT_TRUE(W.finish(Instants));
  St.Bytes = Sink.takeBytes();
  St.Events = Rnd.outputs();
  St.GuardTests = Vm.guardTests();
  St.Executed = Vm.executed();
  return St;
}

/// The exact response stream an uninterrupted session must produce for
/// \p St: the stimulus replayed through the scalar VM with an
/// outputs-only echo writer — an in-process oracle the server's bytes
/// (Hello stripped) are compared against byte for byte.
std::vector<uint8_t> expectedResponse(const Compilation &C,
                                      const Stimulus &St) {
  MemoryTraceSource Src(St.Bytes);
  TraceReader Reader(Src);
  EXPECT_TRUE(Reader.readHeader()) << Reader.error().str();
  TraceEnvironment Env(Reader);
  MemorySink Sink;
  TraceWriter Echo(Sink, Reader.spec().outputsOnly());
  Env.setEcho(&Echo);
  VmExecutor Vm(C.Compiled);
  unsigned W = Reader.spec().FrameInstants;
  unsigned At = 0;
  for (;;) {
    unsigned N = Env.prepare(At, W);
    if (N == 0)
      break;
    Vm.stepN(Env, At, N);
    At += N;
  }
  EXPECT_TRUE(Env.atEnd()) << Reader.error().str();
  EXPECT_TRUE(Echo.finish(At));
  return Sink.takeBytes();
}

uint32_t readU32(const std::vector<uint8_t> &B, size_t At) {
  return static_cast<uint32_t>(B[At]) |
         static_cast<uint32_t>(B[At + 1]) << 8 |
         static_cast<uint32_t>(B[At + 2]) << 16 |
         static_cast<uint32_t>(B[At + 3]) << 24;
}

/// Length of the prefix of a (Hello-less) trace stream that covers its
/// header plus every frame ending at or before instant \p K — i.e. the
/// bytes a client has seen once the server flushed outputs through K.
size_t prefixLenThrough(const std::vector<uint8_t> &Stream, unsigned K) {
  TraceSpec Spec;
  size_t HeaderLen = 0;
  TraceError Err;
  EXPECT_TRUE(parseTraceHeader(Stream.data(), Stream.size(), Spec, HeaderLen,
                               Err))
      << Err.str();
  size_t At = HeaderLen;
  while (At + TraceFrameHeaderBytes <= Stream.size()) {
    uint32_t PayloadLen = readU32(Stream, At);
    uint32_t Start = readU32(Stream, At + 4);
    uint32_t Count = Stream[At + 8] | Stream[At + 9] << 8;
    if (Count == 0 || Start + Count > K)
      break; // Trailer, or a frame past K.
    At += TraceFrameHeaderBytes + PayloadLen;
  }
  return At;
}

/// Decodes an outputs-only response stream into output events.
std::vector<OutputEvent> parseResponse(const std::vector<uint8_t> &Bytes) {
  std::vector<OutputEvent> Events;
  MemoryTraceSource Src(Bytes);
  TraceReader Reader(Src);
  EXPECT_TRUE(Reader.readHeader()) << Reader.error().str();
  if (!Reader.error().ok())
    return Events;
  const TraceSpec &Spec = Reader.spec();
  EXPECT_TRUE(Spec.Clocks.empty()) << "response must be outputs-only";
  EXPECT_TRUE(Spec.Inputs.empty()) << "response must be outputs-only";
  TraceFrame F;
  for (;;) {
    TraceFrameStatus StFr = Reader.nextFrame(F);
    if (StFr == TraceFrameStatus::End)
      break;
    EXPECT_EQ(static_cast<int>(StFr),
              static_cast<int>(TraceFrameStatus::Frame))
        << Reader.error().str();
    if (StFr != TraceFrameStatus::Frame)
      break;
    for (unsigned I = 0; I < F.Count; ++I)
      for (size_t O = 0; O < Spec.Outputs.size(); ++O)
        if (F.OutPresent[O * F.Cap + I])
          Events.push_back({F.Start + I, Spec.Outputs[O].Name,
                            F.OutVals[O * F.Cap + I]});
  }
  return Events;
}

/// Canonical order for comparing event lists that may interleave
/// same-instant outputs differently (emission order vs descriptor order).
std::vector<OutputEvent> sorted(std::vector<OutputEvent> E) {
  std::sort(E.begin(), E.end(), [](const OutputEvent &A,
                                   const OutputEvent &B) {
    return std::make_tuple(A.Instant, A.Signal, A.Val.str()) <
           std::make_tuple(B.Instant, B.Signal, B.Val.str());
  });
  return E;
}

struct SessionStats {
  unsigned Instants = 0;
  unsigned long long Outputs = 0, GuardTests = 0, Executed = 0;
  std::string How;
};

/// Parses every per-session teardown line out of the server's log.
std::vector<SessionStats> parseSessionLines(const std::string &Log) {
  std::vector<SessionStats> Out;
  std::istringstream In(Log);
  std::string Line;
  while (std::getline(In, Line)) {
    SessionStats S;
    unsigned Id = 0;
    if (std::sscanf(Line.c_str(),
                    "session %u: instants=%u outputs=%llu guard_tests=%llu "
                    "executed=%llu",
                    &Id, &S.Instants, &S.Outputs, &S.GuardTests,
                    &S.Executed) != 5)
      continue;
    // First '(' to last ')': teardown kinds may nest parens, e.g.
    // "(stalled (idle timeout))"; the counters never contain one.
    size_t L = Line.find('('), R = Line.rfind(')');
    if (L != std::string::npos && R != std::string::npos && R > L)
      S.How = Line.substr(L + 1, R - L - 1);
    Out.push_back(S);
  }
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Tests
//===----------------------------------------------------------------------===//

TEST(Serve, TwoConcurrentSessionsGetIndependentCorrectResponses) {
  auto C = compileOk(alarmFigure5Source());
  // 320 instants at the default 64-instant serve batch: each session
  // needs several scheduler wakeups, so the two lanes genuinely
  // interleave at different instants.
  Stimulus A = recordStimulus(*C, 320, 21);
  Stimulus B = recordStimulus(*C, 320, 22);
  ASSERT_NE(A.Bytes, B.Bytes);

  ScopedServer Server;
  Server.spawn(/*MaxSessions=*/2, /*Limit=*/2);
  ASSERT_GT(Server.Pid, 0);

  std::vector<uint8_t> RespA, RespB;
  std::thread TA([&] {
    int Fd = connectClient(Server.Sock);
    ASSERT_GE(Fd, 0);
    ASSERT_TRUE(sendAll(Fd, A.Bytes.data(), A.Bytes.size()));
    RespA = recvAll(Fd);
    ::close(Fd);
  });
  std::thread TB([&] {
    int Fd = connectClient(Server.Sock);
    ASSERT_GE(Fd, 0);
    ASSERT_TRUE(sendAll(Fd, B.Bytes.data(), B.Bytes.size()));
    RespB = recvAll(Fd);
    ::close(Fd);
  });
  TA.join();
  TB.join();
  EXPECT_EQ(Server.wait(), 0);

  // Each client got exactly its own session's outputs, behind its own
  // Hello (distinct resume tokens).
  uint64_t TokA = 0, TokB = 0;
  EXPECT_EQ(sorted(parseResponse(stripHello(RespA, TokA))), sorted(A.Events));
  EXPECT_EQ(sorted(parseResponse(stripHello(RespB, TokB))), sorted(B.Events));
  EXPECT_NE(TokA, TokB);

  // The per-session counters the server prints are the scalar VM's
  // numbers for the same stimulus — lane execution is counter-faithful.
  std::string Log = Server.log();
  std::vector<SessionStats> Stats = parseSessionLines(Log);
  ASSERT_EQ(Stats.size(), 2u) << Log;
  unsigned long long Outputs = 0, Guards = 0, Executed = 0;
  for (const SessionStats &S : Stats) {
    EXPECT_EQ(S.How, "clean") << Log;
    EXPECT_EQ(S.Instants, 320u) << Log;
    Outputs += S.Outputs;
    Guards += S.GuardTests;
    Executed += S.Executed;
  }
  EXPECT_EQ(Outputs, A.Events.size() + B.Events.size()) << Log;
  EXPECT_EQ(Guards, A.GuardTests + B.GuardTests) << Log;
  EXPECT_EQ(Executed, A.Executed + B.Executed) << Log;
  EXPECT_NE(Log.find("served 2 session(s)"), std::string::npos) << Log;
}

TEST(Serve, MidFrameDisconnectTearsDownWithoutDisturbingOthers) {
  auto C = compileOk(alarmFigure5Source());
  Stimulus Full = recordStimulus(*C, 160, 33);

  // A prefix ending inside the first frame's payload.
  TraceSpec Spec;
  size_t HeaderLen = 0;
  TraceError Err;
  ASSERT_TRUE(parseTraceHeader(Full.Bytes.data(), Full.Bytes.size(), Spec,
                               HeaderLen, Err))
      << Err.str();
  size_t CutLen = HeaderLen + TraceFrameHeaderBytes + 3;
  ASSERT_LT(CutLen, Full.Bytes.size());

  ScopedServer Server;
  Server.spawn(/*MaxSessions=*/2, /*Limit=*/2);
  ASSERT_GT(Server.Pid, 0);

  // Session 1: header plus a partial frame, then a hard close.
  int FdA = connectClient(Server.Sock);
  ASSERT_GE(FdA, 0);
  ASSERT_TRUE(sendAll(FdA, Full.Bytes.data(), CutLen));
  ::close(FdA);

  // Session 2: a complete trace on the same server must be unaffected.
  int FdB = connectClient(Server.Sock);
  ASSERT_GE(FdB, 0);
  ASSERT_TRUE(sendAll(FdB, Full.Bytes.data(), Full.Bytes.size()));
  std::vector<uint8_t> Resp = recvAll(FdB);
  ::close(FdB);

  EXPECT_EQ(Server.wait(), 0);
  EXPECT_EQ(sorted(parseResponse(stripHello(Resp))), sorted(Full.Events));

  std::string Log = Server.log();
  EXPECT_NE(Log.find("(disconnected)"), std::string::npos) << Log;
  EXPECT_NE(Log.find("(clean)"), std::string::npos) << Log;
  EXPECT_NE(Log.find("served 2 session(s)"), std::string::npos) << Log;
}

TEST(Serve, HalfClosedClientUnderInboundFlowControlCompletesCleanly) {
  // The whole stimulus — trailer included — is sent and the write side
  // shut down before the server executes anything. Two regressions in
  // one: (1) an EOF with a complete session still buffered must not be
  // torn down as a disconnect, and (2) a 1-instant batch caps the
  // resident inbound window far below the 200-instant stream, so the
  // server must repeatedly pause parsing (inbound flow control) and
  // resume as execution catches up, instead of decoding everything
  // up front.
  auto C = compileOk(alarmFigure5Source());
  Stimulus St = recordStimulus(*C, 200, 44);

  ScopedServer Server;
  Server.spawn(/*MaxSessions=*/1, /*Limit=*/1, /*Batch=*/1);
  ASSERT_GT(Server.Pid, 0);

  int Fd = connectClient(Server.Sock);
  ASSERT_GE(Fd, 0);
  ASSERT_TRUE(sendAll(Fd, St.Bytes.data(), St.Bytes.size()));
  ASSERT_EQ(::shutdown(Fd, SHUT_WR), 0);
  std::vector<uint8_t> Resp = recvAll(Fd);
  ::close(Fd);

  EXPECT_EQ(Server.wait(), 0);
  EXPECT_EQ(sorted(parseResponse(stripHello(Resp))), sorted(St.Events));

  std::string Log = Server.log();
  std::vector<SessionStats> Stats = parseSessionLines(Log);
  ASSERT_EQ(Stats.size(), 1u) << Log;
  EXPECT_EQ(Stats[0].How, "clean") << Log;
  EXPECT_EQ(Stats[0].Instants, 200u) << Log;
  EXPECT_EQ(Stats[0].Outputs, St.Events.size()) << Log;
}

TEST(Serve, WrongInterfaceIsRejectedNotExecuted) {
  // A stimulus recorded against a different process interface.
  auto Other = compileOk(proc("? integer A; ! integer Y;", "   Y := A + 1"));
  Stimulus Wrong = recordStimulus(*Other, 20, 5);

  ScopedServer Server;
  Server.spawn(/*MaxSessions=*/1, /*Limit=*/1);
  ASSERT_GT(Server.Pid, 0);

  int Fd = connectClient(Server.Sock);
  ASSERT_GE(Fd, 0);
  ASSERT_TRUE(sendAll(Fd, Wrong.Bytes.data(), Wrong.Bytes.size()));
  std::vector<uint8_t> Resp = recvAll(Fd);
  ::close(Fd);

  EXPECT_EQ(Server.wait(), 0);
  // The refusal is a typed control frame, not a silent close: the client
  // can tell an interface mismatch from a capacity reject.
  ServeCtrl Reject = decodeReject(Resp);
  EXPECT_EQ(static_cast<int>(Reject.Reason),
            static_cast<int>(ServeRejectReason::InterfaceMismatch));
  EXPECT_NE(Reject.Message.find("does not match the served process"),
            std::string::npos)
      << Reject.Message;

  std::string Log = Server.log();
  EXPECT_NE(Log.find("does not match the served process"), std::string::npos)
      << Log;
  EXPECT_NE(Log.find("(interface mismatch)"), std::string::npos) << Log;
}

//===----------------------------------------------------------------------===//
// Fault tolerance: kill-and-resume byte identity
//===----------------------------------------------------------------------===//

namespace {

enum class KillMode {
  Close, ///< The client hard-closes the connection.
  Stall, ///< The client goes silent; the idle deadline tears it down.
};

/// The kill-and-resume oracle. Runs a session against its own bounded
/// server, kills the connection once outputs through frame boundary
/// \p K have arrived (the server has then provably executed exactly K
/// instants), reconnects with Resume(token, hash, K), streams the rest
/// of the stimulus, and demands the two connections' response bytes —
/// Hellos stripped — concatenate to the uninterrupted run's exact
/// bytes. Nothing is replayed: the resumed connection starts at K from
/// a lane-state checkpoint.
void checkKillResume(const Compilation &C, const std::string &ProcName,
                     const std::vector<std::string> &Program,
                     unsigned Instants, uint64_t Seed, unsigned K,
                     KillMode Mode = KillMode::Close,
                     const std::vector<std::string> &ExtraArgs = {}) {
  SCOPED_TRACE("kill at instant " + std::to_string(K));
  Stimulus St = recordStimulus(C, Instants, Seed, ProcName);
  std::vector<uint8_t> Ref = expectedResponse(C, St);
  uint64_t Hash = traceSpecHash(TraceSpec::fromStep(C.Compiled, ProcName, 8));
  size_t StimCut = prefixLenThrough(St.Bytes, K);
  size_t RespCut = prefixLenThrough(Ref, K);

  ScopedServer Server;
  std::vector<std::string> Extra = {"--max-sessions", "1", "--resume", "2",
                                    "--serve-limit", "2"};
  if (Mode == KillMode::Stall) {
    Extra.push_back("--idle-timeout");
    Extra.push_back("100");
  }
  Extra.insert(Extra.end(), ExtraArgs.begin(), ExtraArgs.end());
  Server.spawnArgs(Extra, Program);
  ASSERT_GT(Server.Pid, 0);

  // Connection 1: stimulus through K only. Reading the outputs through K
  // guarantees the server's execution frontier is exactly K before the
  // kill — output frames flush only after their batch executed.
  int Fd1 = connectClient(Server.Sock);
  ASSERT_GE(Fd1, 0);
  ASSERT_TRUE(sendAll(Fd1, St.Bytes.data(), StimCut));
  std::vector<uint8_t> Resp1 = recvExactly(Fd1, ServeHelloBytes + RespCut);
  if (Mode == KillMode::Close)
    ::close(Fd1);
  // Otherwise: stay connected but silent; the idle deadline kills us.
  ASSERT_TRUE(Server.waitForLog("parked at instant " + std::to_string(K)))
      << Server.log();
  if (Mode == KillMode::Stall)
    ::close(Fd1);
  uint64_t Token = 0;
  std::vector<uint8_t> Part1 = stripHello(Resp1, Token);

  // Connection 2: Resume preamble, the original header again, then the
  // stimulus from frame K on.
  int Fd2 = connectClient(Server.Sock);
  ASSERT_GE(Fd2, 0);
  std::vector<uint8_t> Req = encodeResume(Token, Hash, K);
  TraceSpec Spec;
  size_t HeaderLen = 0;
  TraceError Err;
  ASSERT_TRUE(parseTraceHeader(St.Bytes.data(), St.Bytes.size(), Spec,
                               HeaderLen, Err))
      << Err.str();
  Req.insert(Req.end(), St.Bytes.begin(), St.Bytes.begin() + HeaderLen);
  Req.insert(Req.end(), St.Bytes.begin() + StimCut, St.Bytes.end());
  ASSERT_TRUE(sendAll(Fd2, Req.data(), Req.size()));
  std::vector<uint8_t> Resp2 = recvAll(Fd2);
  ::close(Fd2);
  EXPECT_EQ(Server.wait(), 0) << Server.log();
  uint64_t Token2 = 0;
  std::vector<uint8_t> Part2 = stripHello(Resp2, Token2);
  EXPECT_EQ(Token2, Token) << "a resumed session keeps its token";

  // The pin: concatenated responses == the uninterrupted run, byte for
  // byte (header, every output frame, trailer).
  std::vector<uint8_t> Concat = Part1;
  Concat.insert(Concat.end(), Part2.begin(), Part2.end());
  EXPECT_EQ(Concat, Ref) << Server.log();

  // Per-connection work sums to the whole stream: nothing re-executed.
  std::vector<SessionStats> Stats = parseSessionLines(Server.log());
  ASSERT_EQ(Stats.size(), 2u) << Server.log();
  EXPECT_EQ(Stats[0].Instants, K) << Server.log();
  EXPECT_EQ(Stats[0].How, Mode == KillMode::Close
                              ? "disconnected"
                              : "stalled (idle timeout)")
      << Server.log();
  EXPECT_EQ(Stats[1].Instants, Instants - K) << Server.log();
  EXPECT_EQ(Stats[1].How, "clean") << Server.log();
}

/// Writes \p Source to a throwaway .sig file and returns its path.
std::string writeProgramFile(const std::string &Source) {
  static int Counter = 0;
  std::string Path = ::testing::TempDir() + "sigc_serve_prog_" +
                     std::to_string(::getpid()) + "_" +
                     std::to_string(Counter++) + ".sig";
  std::ofstream Out(Path);
  Out << Source;
  return Path;
}

/// A process producing one dense 8-byte output per instant: response
/// volume scales with instants, which makes write-side backpressure
/// (small --sndbuf, unread client) reachable with short tests.
std::string denseOutputSource() {
  return proc("? integer A; ! integer Y;", "   Y := A + 1");
}

long residentRssBytes(pid_t Pid) {
  std::ifstream In("/proc/" + std::to_string(Pid) + "/statm");
  long Pages = 0, Resident = 0;
  In >> Pages >> Resident;
  return Resident * ::sysconf(_SC_PAGESIZE);
}

} // namespace

TEST(ServeResume, KillAndResumeAtEveryFrameBoundaryIsByteIdentical) {
  auto C = compileOk(alarmFigure5Source());
  // 80 instants, frame capacity 8: every boundary 0, 8, ..., 72 is a
  // kill-and-resume point, each against a fresh bounded server.
  for (unsigned K = 0; K < 80; K += 8)
    checkKillResume(*C, "ALARM", {"--builtin", "FIG5_ALARM"}, 80, 1234 + K,
                    K);
}

TEST(ServeResume, IdleStalledSessionParksAndResumesByteIdentical) {
  auto C = compileOk(alarmFigure5Source());
  // The deadline teardown path parks too: a client that goes silent past
  // --idle-timeout can still come back.
  checkKillResume(*C, "ALARM", {"--builtin", "FIG5_ALARM"}, 80, 77, 24,
                  KillMode::Stall);
}

TEST(ServeResume, RandomProgramSweepResumesByteIdentical) {
  // Same oracle over generated programs served from files: resume is a
  // property of the protocol and the checkpoint mechanism, not of one
  // hand-written builtin.
  for (uint64_t Seed : {101u, 202u}) {
    std::string Source = generateRandomProgram("RND", Seed);
    auto C = compileOk(Source);
    std::string File = writeProgramFile(Source);
    checkKillResume(*C, "RND", {File}, 48, Seed, 24);
    ::unlink(File.c_str());
  }
}

TEST(ServeResume, BadTokenHashAndInstantAreTypedRejects) {
  auto C = compileOk(alarmFigure5Source());
  Stimulus St = recordStimulus(*C, 80, 5);
  std::vector<uint8_t> Ref = expectedResponse(*C, St);
  uint64_t Hash = traceSpecHash(TraceSpec::fromStep(C->Compiled, "ALARM", 8));
  size_t StimCut = prefixLenThrough(St.Bytes, 8);
  size_t RespCut = prefixLenThrough(Ref, 8);

  ScopedServer Server;
  Server.spawnArgs({"--max-sessions", "1", "--resume", "2", "--serve-limit",
                    "4"});
  ASSERT_GT(Server.Pid, 0);

  // An unknown token is refused before any trace bytes are read.
  int FdA = connectClient(Server.Sock);
  ASSERT_GE(FdA, 0);
  std::vector<uint8_t> Bogus = encodeResume(999999, Hash, 8);
  ASSERT_TRUE(sendAll(FdA, Bogus.data(), Bogus.size()));
  ServeCtrl RejA = decodeReject(recvAll(FdA));
  ::close(FdA);
  EXPECT_EQ(static_cast<int>(RejA.Reason),
            static_cast<int>(ServeRejectReason::BadResume));
  EXPECT_NE(RejA.Message.find("unknown or expired session token"),
            std::string::npos)
      << RejA.Message;

  // Park a real session at instant 8.
  int FdB = connectClient(Server.Sock);
  ASSERT_GE(FdB, 0);
  ASSERT_TRUE(sendAll(FdB, St.Bytes.data(), StimCut));
  std::vector<uint8_t> RespB = recvExactly(FdB, ServeHelloBytes + RespCut);
  ::close(FdB);
  ASSERT_TRUE(Server.waitForLog("parked at instant 8")) << Server.log();
  uint64_t Token = 0;
  stripHello(RespB, Token);

  // Right token, wrong interface hash.
  int FdC = connectClient(Server.Sock);
  ASSERT_GE(FdC, 0);
  std::vector<uint8_t> WrongHash = encodeResume(Token, Hash ^ 1, 8);
  ASSERT_TRUE(sendAll(FdC, WrongHash.data(), WrongHash.size()));
  ServeCtrl RejC = decodeReject(recvAll(FdC));
  ::close(FdC);
  EXPECT_EQ(static_cast<int>(RejC.Reason),
            static_cast<int>(ServeRejectReason::InterfaceMismatch));

  // Right token and hash, but no checkpoint at a mid-frame instant.
  int FdD = connectClient(Server.Sock);
  ASSERT_GE(FdD, 0);
  std::vector<uint8_t> WrongAt = encodeResume(Token, Hash, 5);
  ASSERT_TRUE(sendAll(FdD, WrongAt.data(), WrongAt.size()));
  ServeCtrl RejD = decodeReject(recvAll(FdD));
  ::close(FdD);
  EXPECT_EQ(static_cast<int>(RejD.Reason),
            static_cast<int>(ServeRejectReason::BadResume));
  EXPECT_NE(RejD.Message.find("no checkpoint at instant 5"),
            std::string::npos)
      << RejD.Message;

  EXPECT_EQ(Server.wait(), 0) << Server.log();
}

//===----------------------------------------------------------------------===//
// Tiered native execution under --serve
//===----------------------------------------------------------------------===//

namespace {

/// A fresh tier cache directory, removed with contents.
struct ServeCacheDir {
  std::string Path;
  ServeCacheDir() {
    char Template[] = "/tmp/sigc-serve-cache-XXXXXX";
    Path = mkdtemp(Template);
  }
  ~ServeCacheDir() { std::system(("rm -rf " + Path).c_str()); }
};

} // namespace

TEST(ServeTier, ForceNativeKillResumeIsByteIdentical) {
  // The resume oracle with the whole fleet running native from instant
  // 0: lane checkpoints are taken from the canonical state the native
  // windows write back, so parking and resuming must stay byte-exact.
  if (!hostCCompilerAvailable())
    GTEST_SKIP() << "no host C compiler";
  ServeCacheDir Cache;
  auto C = compileOk(alarmFigure5Source());
  for (unsigned K : {0u, 24u, 64u})
    checkKillResume(*C, "ALARM", {"--builtin", "FIG5_ALARM"}, 80, 900 + K, K,
                    KillMode::Close,
                    {"--native", "force", "--cache-dir", Cache.Path});
}

TEST(ServeTier, AutoWarmSwapMidStreamResumesByteIdentical) {
  // Warm cache + --tier-after 16: sessions start on the VM and the whole
  // fleet hot-swaps to native at a wakeup boundary mid-stream. The kill
  // points straddle the swap (before at 8, after at 40); both must
  // resume byte-identically — the swap is invisible to the protocol.
  if (!hostCCompilerAvailable())
    GTEST_SKIP() << "no host C compiler";
  ServeCacheDir Cache;
  auto C = compileOk(alarmFigure5Source());
  std::string Err;
  ASSERT_NE(NativeCache(Cache.Path).compileAndPublish(
                C->Compiled, hashCompiledStep(C->Compiled), Err),
            nullptr)
      << Err;
  for (unsigned K : {8u, 40u})
    checkKillResume(*C, "ALARM", {"--builtin", "FIG5_ALARM"}, 80, 700 + K, K,
                    KillMode::Close,
                    {"--native", "auto", "--tier-after", "16", "--cache-dir",
                     Cache.Path});
}

TEST(ServeTier, AutoSwapIsLoggedAndResponseIsExact) {
  // One clean session across the swap: the response equals the VM-only
  // run byte for byte, the server logs the fleet-wide swap, and the tier
  // summary reports a warm cache hit (which also pins that the served
  // builtin hashes identically to the in-process compile).
  if (!hostCCompilerAvailable())
    GTEST_SKIP() << "no host C compiler";
  ServeCacheDir Cache;
  auto C = compileOk(alarmFigure5Source());
  std::string Err;
  ASSERT_NE(NativeCache(Cache.Path).compileAndPublish(
                C->Compiled, hashCompiledStep(C->Compiled), Err),
            nullptr)
      << Err;
  Stimulus St = recordStimulus(*C, 80, 61);
  std::vector<uint8_t> Ref = expectedResponse(*C, St);

  ScopedServer Server;
  Server.spawnArgs({"--max-sessions", "1", "--serve-limit", "1", "--batch",
                    "8", "--native", "auto", "--tier-after", "16",
                    "--cache-dir", Cache.Path});
  ASSERT_GT(Server.Pid, 0);

  int Fd = connectClient(Server.Sock);
  ASSERT_GE(Fd, 0);
  ASSERT_TRUE(sendAll(Fd, St.Bytes.data(), St.Bytes.size()));
  ASSERT_EQ(::shutdown(Fd, SHUT_WR), 0);
  std::vector<uint8_t> Resp = recvAll(Fd);
  ::close(Fd);
  EXPECT_EQ(Server.wait(), 0) << Server.log();
  EXPECT_EQ(stripHello(Resp), Ref) << Server.log();

  std::string Log = Server.log();
  EXPECT_NE(Log.find("tier: sessions now run native (cache hit"),
            std::string::npos)
      << Log;
  // Deterministic split: --batch 8, swap at the first wakeup boundary
  // past --tier-after 16, the remaining 64 instants native.
  EXPECT_NE(Log.find("tier: vm_instants=16 native_instants=64 cache=hit"),
            std::string::npos)
      << Log;
}

//===----------------------------------------------------------------------===//
// Overload admission
//===----------------------------------------------------------------------===//

TEST(ServeOverload, SaturatedLanesGetTypedRejectWithBoundedRss) {
  auto C = compileOk(alarmFigure5Source());
  Stimulus St = recordStimulus(*C, 80, 6);
  TraceSpec Spec;
  size_t HeaderLen = 0;
  TraceError Err;
  ASSERT_TRUE(parseTraceHeader(St.Bytes.data(), St.Bytes.size(), Spec,
                               HeaderLen, Err));

  ScopedServer Server;
  Server.spawnArgs({"--max-sessions", "1", "--serve-limit", "1"});
  ASSERT_GT(Server.Pid, 0);

  // Occupy the only lane: header sent, Hello received, stream held open.
  int Held = connectClient(Server.Sock);
  ASSERT_GE(Held, 0);
  ASSERT_TRUE(sendAll(Held, St.Bytes.data(), HeaderLen));
  std::vector<uint8_t> Hello = recvExactly(Held, ServeHelloBytes);
  ASSERT_EQ(Hello.size(), static_cast<size_t>(ServeHelloBytes));

  long RssBefore = residentRssBytes(Server.Pid);
  ASSERT_GT(RssBefore, 0);
  for (int I = 0; I < 40; ++I) {
    int Fd = connectClient(Server.Sock);
    ASSERT_GE(Fd, 0);
    ServeCtrl Rej = decodeReject(recvAll(Fd));
    ::close(Fd);
    EXPECT_EQ(static_cast<int>(Rej.Reason),
              static_cast<int>(ServeRejectReason::AtCapacity));
    EXPECT_NE(Rej.Message.find("no free session lane"), std::string::npos)
        << Rej.Message;
  }
  long RssAfter = residentRssBytes(Server.Pid);
  // A reject allocates no session state: a reject storm must not grow
  // the server. Generous slack for allocator noise.
  EXPECT_LT(RssAfter, RssBefore + (8 << 20))
      << "RSS grew from " << RssBefore << " to " << RssAfter;

  // The held session still completes untouched.
  ASSERT_TRUE(sendAll(Held, St.Bytes.data() + HeaderLen,
                      St.Bytes.size() - HeaderLen));
  std::vector<uint8_t> Resp = recvAll(Held);
  ::close(Held);
  EXPECT_EQ(Server.wait(), 0) << Server.log();
  // Hello was read separately above; the remainder is the trace stream.
  EXPECT_EQ(sorted(parseResponse(Resp)), sorted(St.Events));

  std::string Log = Server.log();
  EXPECT_NE(Log.find("rejected 40 connection(s) (at capacity 40, "
                     "draining 0)"),
            std::string::npos)
      << Log;
}

TEST(ServeOverload, BatchBudgetRejectsEvenWithFreeLanes) {
  auto C = compileOk(alarmFigure5Source());
  Stimulus St = recordStimulus(*C, 80, 7);
  TraceSpec Spec;
  size_t HeaderLen = 0;
  TraceError Err;
  ASSERT_TRUE(parseTraceHeader(St.Bytes.data(), St.Bytes.size(), Spec,
                               HeaderLen, Err));

  // Each admitted session reserves MaxAheadBatches(4) * --batch(8) = 32
  // instants against the budget. Budget 32 admits exactly one session;
  // the second is rejected although three lanes are free.
  ScopedServer Server;
  Server.spawnArgs({"--max-sessions", "4", "--batch", "8", "--batch-budget",
                    "32", "--serve-limit", "1"});
  ASSERT_GT(Server.Pid, 0);

  int Held = connectClient(Server.Sock);
  ASSERT_GE(Held, 0);
  ASSERT_TRUE(sendAll(Held, St.Bytes.data(), HeaderLen));
  ASSERT_EQ(recvExactly(Held, ServeHelloBytes).size(),
            static_cast<size_t>(ServeHelloBytes));

  int Fd = connectClient(Server.Sock);
  ASSERT_GE(Fd, 0);
  ServeCtrl Rej = decodeReject(recvAll(Fd));
  ::close(Fd);
  EXPECT_EQ(static_cast<int>(Rej.Reason),
            static_cast<int>(ServeRejectReason::AtCapacity));
  EXPECT_NE(Rej.Message.find("batch budget exhausted"), std::string::npos)
      << Rej.Message;

  ASSERT_TRUE(sendAll(Held, St.Bytes.data() + HeaderLen,
                      St.Bytes.size() - HeaderLen));
  std::vector<uint8_t> Resp = recvAll(Held);
  ::close(Held);
  EXPECT_EQ(Server.wait(), 0) << Server.log();
  EXPECT_EQ(sorted(parseResponse(Resp)), sorted(St.Events));
}

//===----------------------------------------------------------------------===//
// Deadlines
//===----------------------------------------------------------------------===//

TEST(ServeDeadline, IdleClientIsTornDownWithCountersIntact) {
  auto C = compileOk(alarmFigure5Source());
  Stimulus St = recordStimulus(*C, 80, 8);
  std::vector<uint8_t> Ref = expectedResponse(*C, St);
  size_t StimCut = prefixLenThrough(St.Bytes, 8);
  size_t RespCut = prefixLenThrough(Ref, 8);

  ScopedServer Server;
  Server.spawnArgs({"--max-sessions", "1", "--serve-limit", "1",
                    "--idle-timeout", "100"});
  ASSERT_GT(Server.Pid, 0);

  // One frame of stimulus, then silence: the server must not wait
  // forever on a stalled client.
  int Fd = connectClient(Server.Sock);
  ASSERT_GE(Fd, 0);
  ASSERT_TRUE(sendAll(Fd, St.Bytes.data(), StimCut));
  std::vector<uint8_t> Resp = recvAll(Fd); // Until the teardown EOF.
  ::close(Fd);
  EXPECT_EQ(Server.wait(), 0) << Server.log();

  // Everything sent before the stall was executed and answered: the
  // response is the uninterrupted run's exact prefix through instant 8.
  std::vector<uint8_t> Got = stripHello(Resp);
  EXPECT_EQ(Got, std::vector<uint8_t>(Ref.begin(), Ref.begin() + RespCut));

  std::string Log = Server.log();
  EXPECT_NE(Log.find("no stimulus for 100 ms"), std::string::npos) << Log;
  std::vector<SessionStats> Stats = parseSessionLines(Log);
  ASSERT_EQ(Stats.size(), 1u) << Log;
  EXPECT_EQ(Stats[0].How, "stalled (idle timeout)") << Log;
  EXPECT_EQ(Stats[0].Instants, 8u) << Log;
}

TEST(ServeDeadline, UnresponsiveReaderHitsWriteTimeout) {
  auto C = compileOk(denseOutputSource());
  Stimulus St = recordStimulus(*C, 4000, 9, "P");
  std::string File = writeProgramFile(denseOutputSource());

  // A small SO_SNDBUF makes the ~32 KiB response stream overrun the
  // in-flight window of a client that never reads; with no write
  // deadline the flush would wait forever.
  ScopedServer Server;
  Server.spawnArgs({"--max-sessions", "1", "--serve-limit", "1",
                    "--write-timeout", "200", "--sndbuf", "4096"},
                   {File});
  ASSERT_GT(Server.Pid, 0);

  int Fd = connectClient(Server.Sock);
  ASSERT_GE(Fd, 0);
  ASSERT_TRUE(sendAll(Fd, St.Bytes.data(), St.Bytes.size()));
  // Never read. The server must diagnose us and exit on its own.
  EXPECT_EQ(Server.wait(), 0) << Server.log();
  ::close(Fd);
  ::unlink(File.c_str());

  std::string Log = Server.log();
  EXPECT_NE(Log.find("accepted no output for 200 ms"), std::string::npos)
      << Log;
  std::vector<SessionStats> Stats = parseSessionLines(Log);
  ASSERT_EQ(Stats.size(), 1u) << Log;
  EXPECT_EQ(Stats[0].How, "stalled (write timeout)") << Log;
}

//===----------------------------------------------------------------------===//
// Graceful drain
//===----------------------------------------------------------------------===//

TEST(ServeDrain, SigtermFinishesResidentFramesAndExitsZero) {
  auto C = compileOk(alarmFigure5Source());
  Stimulus St = recordStimulus(*C, 80, 10);
  std::vector<uint8_t> Ref = expectedResponse(*C, St);
  size_t StimCut = prefixLenThrough(St.Bytes, 16);
  size_t RespCut = prefixLenThrough(Ref, 16);

  ScopedServer Server;
  Server.spawnArgs({"--max-sessions", "1"}); // Unbounded: only the signal
                                             // ends this server.
  ASSERT_GT(Server.Pid, 0);

  // Two frames in flight, outputs read back (so the server provably
  // executed them), then SIGTERM mid-session.
  int Fd = connectClient(Server.Sock);
  ASSERT_GE(Fd, 0);
  ASSERT_TRUE(sendAll(Fd, St.Bytes.data(), StimCut));
  std::vector<uint8_t> Part = recvExactly(Fd, ServeHelloBytes + RespCut);
  ASSERT_EQ(::kill(Server.Pid, SIGTERM), 0);
  std::vector<uint8_t> Rest = recvAll(Fd); // Early trailer, then EOF.
  ::close(Fd);
  EXPECT_EQ(Server.wait(), 0) << Server.log();

  // The shortened response is still a well-formed trace: everything
  // resident executed, closed by a trailer at the drain point.
  std::vector<uint8_t> Resp = stripHello(Part);
  Resp.insert(Resp.end(), Rest.begin(), Rest.end());
  std::vector<OutputEvent> Expect;
  for (const OutputEvent &E : St.Events)
    if (E.Instant < 16)
      Expect.push_back(E);
  EXPECT_EQ(sorted(parseResponse(Resp)), sorted(Expect));

  std::string Log = Server.log();
  EXPECT_NE(Log.find("draining: finishing 1 session(s)"), std::string::npos)
      << Log;
  std::vector<SessionStats> Stats = parseSessionLines(Log);
  ASSERT_EQ(Stats.size(), 1u) << Log;
  EXPECT_EQ(Stats[0].How, "drained") << Log;
  EXPECT_EQ(Stats[0].Instants, 16u) << Log;
  EXPECT_NE(Log.find("served 1 session(s) (drained)"), std::string::npos)
      << Log;
}

TEST(ServeDrain, SecondSignalForcesExitOne) {
  auto C = compileOk(denseOutputSource());
  Stimulus St = recordStimulus(*C, 4000, 11, "P");
  std::string File = writeProgramFile(denseOutputSource());

  // An unread ~32 KiB response against a 4 KiB SO_SNDBUF cannot flush:
  // the drain never completes on its own, so the second signal must
  // force the exit.
  ScopedServer Server;
  Server.spawnArgs({"--max-sessions", "1", "--sndbuf", "4096"}, {File});
  ASSERT_GT(Server.Pid, 0);

  int Fd = connectClient(Server.Sock);
  ASSERT_GE(Fd, 0);
  ASSERT_TRUE(sendAll(Fd, St.Bytes.data(), St.Bytes.size()));
  ASSERT_EQ(recvExactly(Fd, ServeHelloBytes).size(),
            static_cast<size_t>(ServeHelloBytes));
  ASSERT_EQ(::kill(Server.Pid, SIGTERM), 0);
  ASSERT_TRUE(Server.waitForLog("draining:")) << Server.log();
  ASSERT_EQ(::kill(Server.Pid, SIGINT), 0);
  EXPECT_EQ(Server.wait(), 1) << Server.log();
  ::close(Fd);
  ::unlink(File.c_str());

  std::string Log = Server.log();
  EXPECT_NE(Log.find("second signal: forcing exit"), std::string::npos)
      << Log;
  std::vector<SessionStats> Stats = parseSessionLines(Log);
  ASSERT_EQ(Stats.size(), 1u) << Log;
  EXPECT_EQ(Stats[0].How, "forced") << Log;
}

TEST(ServeDrain, DrainGraceExpiryForcesExitZero) {
  auto C = compileOk(denseOutputSource());
  Stimulus St = recordStimulus(*C, 4000, 12, "P");
  std::string File = writeProgramFile(denseOutputSource());

  ScopedServer Server;
  Server.spawnArgs({"--max-sessions", "1", "--sndbuf", "4096",
                    "--drain-grace", "150"},
                   {File});
  ASSERT_GT(Server.Pid, 0);

  int Fd = connectClient(Server.Sock);
  ASSERT_GE(Fd, 0);
  ASSERT_TRUE(sendAll(Fd, St.Bytes.data(), St.Bytes.size()));
  ASSERT_EQ(recvExactly(Fd, ServeHelloBytes).size(),
            static_cast<size_t>(ServeHelloBytes));
  ASSERT_EQ(::kill(Server.Pid, SIGTERM), 0);
  // One signal only: the grace deadline bounds the drain.
  EXPECT_EQ(Server.wait(), 0) << Server.log();
  ::close(Fd);
  ::unlink(File.c_str());

  std::string Log = Server.log();
  EXPECT_NE(Log.find("drain grace expired: forcing exit"), std::string::npos)
      << Log;
  EXPECT_NE(Log.find("(forced)"), std::string::npos) << Log;
}

TEST(ServeDrain, ClientDisconnectDuringDrainStillExitsZero) {
  auto C = compileOk(denseOutputSource());
  Stimulus St = recordStimulus(*C, 4000, 13, "P");
  std::string File = writeProgramFile(denseOutputSource());

  ScopedServer Server;
  Server.spawnArgs({"--max-sessions", "1", "--sndbuf", "4096"}, {File});
  ASSERT_GT(Server.Pid, 0);

  int Fd = connectClient(Server.Sock);
  ASSERT_GE(Fd, 0);
  ASSERT_TRUE(sendAll(Fd, St.Bytes.data(), St.Bytes.size()));
  ASSERT_EQ(recvExactly(Fd, ServeHelloBytes).size(),
            static_cast<size_t>(ServeHelloBytes));
  ASSERT_EQ(::kill(Server.Pid, SIGTERM), 0);
  ASSERT_TRUE(Server.waitForLog("draining:")) << Server.log();
  // The client gives up mid-drain instead of reading its queued bytes.
  ::close(Fd);
  EXPECT_EQ(Server.wait(), 0) << Server.log();
  ::unlink(File.c_str());

  std::string Log = Server.log();
  EXPECT_NE(Log.find("(disconnected)"), std::string::npos) << Log;
  EXPECT_NE(Log.find("served 1 session(s) (drained)"), std::string::npos)
      << Log;
}

TEST(ServeDrain, NewConnectionsDuringDrainGetDrainingReject) {
  auto C = compileOk(denseOutputSource());
  Stimulus St = recordStimulus(*C, 4000, 14, "P");
  std::string File = writeProgramFile(denseOutputSource());

  ScopedServer Server;
  Server.spawnArgs({"--max-sessions", "2", "--sndbuf", "4096"}, {File});
  ASSERT_GT(Server.Pid, 0);

  int Held = connectClient(Server.Sock);
  ASSERT_GE(Held, 0);
  ASSERT_TRUE(sendAll(Held, St.Bytes.data(), St.Bytes.size()));
  ASSERT_EQ(recvExactly(Held, ServeHelloBytes).size(),
            static_cast<size_t>(ServeHelloBytes));
  ASSERT_EQ(::kill(Server.Pid, SIGTERM), 0);
  ASSERT_TRUE(Server.waitForLog("draining:")) << Server.log();

  int Fd = connectClient(Server.Sock);
  ASSERT_GE(Fd, 0);
  ServeCtrl Rej = decodeReject(recvAll(Fd));
  ::close(Fd);
  EXPECT_EQ(static_cast<int>(Rej.Reason),
            static_cast<int>(ServeRejectReason::Draining));
  EXPECT_NE(Rej.Message.find("server is draining"), std::string::npos)
      << Rej.Message;

  ::close(Held); // Unblocks the drain; the server exits on its own.
  EXPECT_EQ(Server.wait(), 0) << Server.log();
  ::unlink(File.c_str());
}
