//===--- serve_test.cpp - signalc --serve session front end ---------------===//
///
/// End-to-end tests of the trace-stream server: a bounded `signalc
/// --serve` subprocess on a Unix domain socket, driven by real clients.
///
///   * two concurrent sessions receive correct, independent outputs-only
///     response streams, and the per-session counters the server prints
///     equal the scalar VM run on the same stimulus,
///   * a client disconnecting mid-frame tears its session down as
///     "disconnected" while a full session on the same server completes
///     cleanly,
///   * a stimulus recorded against a different interface is rejected as
///     an interface mismatch, not executed.
///
/// Requests are built in-process with TraceWriter against the same
/// compiled interface the server loads (--builtin FIG5_ALARM).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "interp/VmExecutor.h"
#include "io/TraceEnvironment.h"
#include "io/TraceReader.h"
#include "io/TraceWriter.h"
#include "programs/Programs.h"

#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>
#include <tuple>

using namespace sigc;
using namespace sigc::test;

namespace {

//===----------------------------------------------------------------------===//
// Server subprocess management
//===----------------------------------------------------------------------===//

struct ScopedServer {
  pid_t Pid = -1;
  std::string Sock, LogPath;

  /// Spawns `signalc --builtin FIG5_ALARM --serve` with stderr captured
  /// to a log file. \p Batch 0 keeps the server's default batch size.
  void spawn(unsigned MaxSessions, unsigned Limit, unsigned Batch = 0) {
    static int Counter = 0;
    std::string Base = ::testing::TempDir() + "sigc_serve_" +
                       std::to_string(::getpid()) + "_" +
                       std::to_string(Counter++);
    Sock = Base + ".sock";
    LogPath = Base + ".log";
    ::unlink(Sock.c_str());
    std::string MS = std::to_string(MaxSessions);
    std::string SL = std::to_string(Limit);
    std::string BA = std::to_string(Batch);
    Pid = ::fork();
    ASSERT_NE(Pid, -1);
    if (Pid == 0) {
      int Log = ::open(LogPath.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (Log >= 0) {
        ::dup2(Log, 1);
        ::dup2(Log, 2);
        ::close(Log);
      }
      if (Batch)
        ::execl(SIGNALC_BIN, SIGNALC_BIN, "--builtin", "FIG5_ALARM",
                "--serve", Sock.c_str(), "--max-sessions", MS.c_str(),
                "--serve-limit", SL.c_str(), "--batch", BA.c_str(),
                static_cast<char *>(nullptr));
      else
        ::execl(SIGNALC_BIN, SIGNALC_BIN, "--builtin", "FIG5_ALARM",
                "--serve", Sock.c_str(), "--max-sessions", MS.c_str(),
                "--serve-limit", SL.c_str(), static_cast<char *>(nullptr));
      _exit(127);
    }
  }

  /// Waits for the bounded server to exit and returns its exit code.
  int wait() {
    int St = 0;
    ::waitpid(Pid, &St, 0);
    Pid = -1;
    return WIFEXITED(St) ? WEXITSTATUS(St) : -1;
  }

  std::string log() const {
    std::ifstream In(LogPath);
    std::ostringstream SS;
    SS << In.rdbuf();
    return SS.str();
  }

  ~ScopedServer() {
    if (Pid > 0) {
      ::kill(Pid, SIGKILL);
      ::waitpid(Pid, nullptr, 0);
    }
    if (!Sock.empty())
      ::unlink(Sock.c_str());
    if (!LogPath.empty())
      ::unlink(LogPath.c_str());
  }
};

/// Connects to \p Sock, retrying while the server is still starting.
int connectClient(const std::string &Sock) {
  for (int Try = 0; Try < 1000; ++Try) {
    int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0)
      return -1;
    sockaddr_un Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sun_family = AF_UNIX;
    std::strncpy(Addr.sun_path, Sock.c_str(), sizeof(Addr.sun_path) - 1);
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) ==
        0) {
      // A stuck server must fail the test, not hang it.
      timeval TV{30, 0};
      ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &TV, sizeof(TV));
      return Fd;
    }
    ::close(Fd);
    ::usleep(10 * 1000);
  }
  return -1;
}

bool sendAll(int Fd, const uint8_t *Data, size_t Len) {
  size_t At = 0;
  while (At < Len) {
    ssize_t N = ::send(Fd, Data + At, Len - At, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    At += static_cast<size_t>(N);
  }
  return true;
}

/// Reads until the server closes the connection.
std::vector<uint8_t> recvAll(int Fd) {
  std::vector<uint8_t> Out;
  uint8_t Buf[4096];
  for (;;) {
    ssize_t N = ::recv(Fd, Buf, sizeof Buf, 0);
    if (N > 0) {
      Out.insert(Out.end(), Buf, Buf + N);
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    break; // EOF, timeout, or reset after teardown: caller validates.
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Stimulus construction and response decoding
//===----------------------------------------------------------------------===//

struct Stimulus {
  std::vector<uint8_t> Bytes;
  std::vector<OutputEvent> Events; ///< The live run's outputs.
  uint64_t GuardTests = 0, Executed = 0;
};

/// Records \p Instants instants of \p C under seed \p Seed into a
/// request trace (frame capacity 8), remembering the live outputs and
/// the scalar VM counters the server must reproduce lane-for-lane.
Stimulus recordStimulus(const Compilation &C, unsigned Instants,
                        uint64_t Seed) {
  Stimulus St;
  MemorySink Sink;
  TraceWriter W(Sink, TraceSpec::fromStep(C.Compiled, "ALARM", 8));
  RandomEnvironment Rnd(Seed);
  RecordingEnvironment Rec(Rnd, W);
  VmExecutor Vm(C.Compiled);
  Vm.runBatched(Rec, Instants, 8);
  EXPECT_TRUE(W.finish(Instants));
  St.Bytes = Sink.takeBytes();
  St.Events = Rnd.outputs();
  St.GuardTests = Vm.guardTests();
  St.Executed = Vm.executed();
  return St;
}

/// Decodes an outputs-only response stream into output events.
std::vector<OutputEvent> parseResponse(const std::vector<uint8_t> &Bytes) {
  std::vector<OutputEvent> Events;
  MemoryTraceSource Src(Bytes);
  TraceReader Reader(Src);
  EXPECT_TRUE(Reader.readHeader()) << Reader.error().str();
  if (!Reader.error().ok())
    return Events;
  const TraceSpec &Spec = Reader.spec();
  EXPECT_TRUE(Spec.Clocks.empty()) << "response must be outputs-only";
  EXPECT_TRUE(Spec.Inputs.empty()) << "response must be outputs-only";
  TraceFrame F;
  for (;;) {
    TraceFrameStatus StFr = Reader.nextFrame(F);
    if (StFr == TraceFrameStatus::End)
      break;
    EXPECT_EQ(static_cast<int>(StFr),
              static_cast<int>(TraceFrameStatus::Frame))
        << Reader.error().str();
    if (StFr != TraceFrameStatus::Frame)
      break;
    for (unsigned I = 0; I < F.Count; ++I)
      for (size_t O = 0; O < Spec.Outputs.size(); ++O)
        if (F.OutPresent[O * F.Cap + I])
          Events.push_back({F.Start + I, Spec.Outputs[O].Name,
                            F.OutVals[O * F.Cap + I]});
  }
  return Events;
}

/// Canonical order for comparing event lists that may interleave
/// same-instant outputs differently (emission order vs descriptor order).
std::vector<OutputEvent> sorted(std::vector<OutputEvent> E) {
  std::sort(E.begin(), E.end(), [](const OutputEvent &A,
                                   const OutputEvent &B) {
    return std::make_tuple(A.Instant, A.Signal, A.Val.str()) <
           std::make_tuple(B.Instant, B.Signal, B.Val.str());
  });
  return E;
}

struct SessionStats {
  unsigned Instants = 0;
  unsigned long long Outputs = 0, GuardTests = 0, Executed = 0;
  std::string How;
};

/// Parses every per-session teardown line out of the server's log.
std::vector<SessionStats> parseSessionLines(const std::string &Log) {
  std::vector<SessionStats> Out;
  std::istringstream In(Log);
  std::string Line;
  while (std::getline(In, Line)) {
    SessionStats S;
    unsigned Id = 0;
    if (std::sscanf(Line.c_str(),
                    "session %u: instants=%u outputs=%llu guard_tests=%llu "
                    "executed=%llu",
                    &Id, &S.Instants, &S.Outputs, &S.GuardTests,
                    &S.Executed) != 5)
      continue;
    size_t L = Line.rfind('('), R = Line.rfind(')');
    if (L != std::string::npos && R != std::string::npos && R > L)
      S.How = Line.substr(L + 1, R - L - 1);
    Out.push_back(S);
  }
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Tests
//===----------------------------------------------------------------------===//

TEST(Serve, TwoConcurrentSessionsGetIndependentCorrectResponses) {
  auto C = compileOk(alarmFigure5Source());
  // 320 instants at the default 64-instant serve batch: each session
  // needs several scheduler wakeups, so the two lanes genuinely
  // interleave at different instants.
  Stimulus A = recordStimulus(*C, 320, 21);
  Stimulus B = recordStimulus(*C, 320, 22);
  ASSERT_NE(A.Bytes, B.Bytes);

  ScopedServer Server;
  Server.spawn(/*MaxSessions=*/2, /*Limit=*/2);
  ASSERT_GT(Server.Pid, 0);

  std::vector<uint8_t> RespA, RespB;
  std::thread TA([&] {
    int Fd = connectClient(Server.Sock);
    ASSERT_GE(Fd, 0);
    ASSERT_TRUE(sendAll(Fd, A.Bytes.data(), A.Bytes.size()));
    RespA = recvAll(Fd);
    ::close(Fd);
  });
  std::thread TB([&] {
    int Fd = connectClient(Server.Sock);
    ASSERT_GE(Fd, 0);
    ASSERT_TRUE(sendAll(Fd, B.Bytes.data(), B.Bytes.size()));
    RespB = recvAll(Fd);
    ::close(Fd);
  });
  TA.join();
  TB.join();
  EXPECT_EQ(Server.wait(), 0);

  // Each client got exactly its own session's outputs.
  EXPECT_EQ(sorted(parseResponse(RespA)), sorted(A.Events));
  EXPECT_EQ(sorted(parseResponse(RespB)), sorted(B.Events));

  // The per-session counters the server prints are the scalar VM's
  // numbers for the same stimulus — lane execution is counter-faithful.
  std::string Log = Server.log();
  std::vector<SessionStats> Stats = parseSessionLines(Log);
  ASSERT_EQ(Stats.size(), 2u) << Log;
  unsigned long long Outputs = 0, Guards = 0, Executed = 0;
  for (const SessionStats &S : Stats) {
    EXPECT_EQ(S.How, "clean") << Log;
    EXPECT_EQ(S.Instants, 320u) << Log;
    Outputs += S.Outputs;
    Guards += S.GuardTests;
    Executed += S.Executed;
  }
  EXPECT_EQ(Outputs, A.Events.size() + B.Events.size()) << Log;
  EXPECT_EQ(Guards, A.GuardTests + B.GuardTests) << Log;
  EXPECT_EQ(Executed, A.Executed + B.Executed) << Log;
  EXPECT_NE(Log.find("served 2 session(s)"), std::string::npos) << Log;
}

TEST(Serve, MidFrameDisconnectTearsDownWithoutDisturbingOthers) {
  auto C = compileOk(alarmFigure5Source());
  Stimulus Full = recordStimulus(*C, 160, 33);

  // A prefix ending inside the first frame's payload.
  TraceSpec Spec;
  size_t HeaderLen = 0;
  TraceError Err;
  ASSERT_TRUE(parseTraceHeader(Full.Bytes.data(), Full.Bytes.size(), Spec,
                               HeaderLen, Err))
      << Err.str();
  size_t CutLen = HeaderLen + TraceFrameHeaderBytes + 3;
  ASSERT_LT(CutLen, Full.Bytes.size());

  ScopedServer Server;
  Server.spawn(/*MaxSessions=*/2, /*Limit=*/2);
  ASSERT_GT(Server.Pid, 0);

  // Session 1: header plus a partial frame, then a hard close.
  int FdA = connectClient(Server.Sock);
  ASSERT_GE(FdA, 0);
  ASSERT_TRUE(sendAll(FdA, Full.Bytes.data(), CutLen));
  ::close(FdA);

  // Session 2: a complete trace on the same server must be unaffected.
  int FdB = connectClient(Server.Sock);
  ASSERT_GE(FdB, 0);
  ASSERT_TRUE(sendAll(FdB, Full.Bytes.data(), Full.Bytes.size()));
  std::vector<uint8_t> Resp = recvAll(FdB);
  ::close(FdB);

  EXPECT_EQ(Server.wait(), 0);
  EXPECT_EQ(sorted(parseResponse(Resp)), sorted(Full.Events));

  std::string Log = Server.log();
  EXPECT_NE(Log.find("(disconnected)"), std::string::npos) << Log;
  EXPECT_NE(Log.find("(clean)"), std::string::npos) << Log;
  EXPECT_NE(Log.find("served 2 session(s)"), std::string::npos) << Log;
}

TEST(Serve, HalfClosedClientUnderInboundFlowControlCompletesCleanly) {
  // The whole stimulus — trailer included — is sent and the write side
  // shut down before the server executes anything. Two regressions in
  // one: (1) an EOF with a complete session still buffered must not be
  // torn down as a disconnect, and (2) a 1-instant batch caps the
  // resident inbound window far below the 200-instant stream, so the
  // server must repeatedly pause parsing (inbound flow control) and
  // resume as execution catches up, instead of decoding everything
  // up front.
  auto C = compileOk(alarmFigure5Source());
  Stimulus St = recordStimulus(*C, 200, 44);

  ScopedServer Server;
  Server.spawn(/*MaxSessions=*/1, /*Limit=*/1, /*Batch=*/1);
  ASSERT_GT(Server.Pid, 0);

  int Fd = connectClient(Server.Sock);
  ASSERT_GE(Fd, 0);
  ASSERT_TRUE(sendAll(Fd, St.Bytes.data(), St.Bytes.size()));
  ASSERT_EQ(::shutdown(Fd, SHUT_WR), 0);
  std::vector<uint8_t> Resp = recvAll(Fd);
  ::close(Fd);

  EXPECT_EQ(Server.wait(), 0);
  EXPECT_EQ(sorted(parseResponse(Resp)), sorted(St.Events));

  std::string Log = Server.log();
  std::vector<SessionStats> Stats = parseSessionLines(Log);
  ASSERT_EQ(Stats.size(), 1u) << Log;
  EXPECT_EQ(Stats[0].How, "clean") << Log;
  EXPECT_EQ(Stats[0].Instants, 200u) << Log;
  EXPECT_EQ(Stats[0].Outputs, St.Events.size()) << Log;
}

TEST(Serve, WrongInterfaceIsRejectedNotExecuted) {
  // A stimulus recorded against a different process interface.
  auto Other = compileOk(proc("? integer A; ! integer Y;", "   Y := A + 1"));
  Stimulus Wrong = recordStimulus(*Other, 20, 5);

  ScopedServer Server;
  Server.spawn(/*MaxSessions=*/1, /*Limit=*/1);
  ASSERT_GT(Server.Pid, 0);

  int Fd = connectClient(Server.Sock);
  ASSERT_GE(Fd, 0);
  ASSERT_TRUE(sendAll(Fd, Wrong.Bytes.data(), Wrong.Bytes.size()));
  std::vector<uint8_t> Resp = recvAll(Fd);
  ::close(Fd);

  EXPECT_EQ(Server.wait(), 0);
  EXPECT_TRUE(Resp.empty()) << "a rejected session must not stream outputs";

  std::string Log = Server.log();
  EXPECT_NE(Log.find("does not match the served process"), std::string::npos)
      << Log;
  EXPECT_NE(Log.find("(interface mismatch)"), std::string::npos) << Log;
}
