//===--- link_test.cpp - Separate compilation + linker unit tests ---------===//
///
/// Covers the src/link/ subsystem: ProcessInterface extraction (restricted
/// forest shape, endochrony verdicts), channel matching and its error
/// cases, the BDD-implication compatibility check, the cross-process
/// schedule, the no-re-resolution guarantee, parallel vs serial
/// compilation, the LinkedExecutor (including the dynamic clock check)
/// and the linked C emission's surface.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "interp/LinkedExecutor.h"
#include "link/LinkEmitter.h"
#include "link/Linker.h"

#include <gtest/gtest.h>

using namespace sigc;
using namespace sigc::test;

namespace {

const char *SensorSource = R"(
process SENSOR =
  ( ? integer RAW;
    ! integer KEPT, SUM; )
  (| EVENFLAG := (RAW mod 2) = 0
   | KEPT := RAW when EVENFLAG
   | SUM := KEPT + (SUM $ 1 init 0)
  |)
  where
    boolean EVENFLAG;
  end;
)";

const char *MonitorSource = R"(
process MONITOR =
  ( ? integer KEPT, SUM;
    ! integer TOTAL; boolean ALERT; )
  (| synchro {KEPT, SUM}
   | TOTAL := KEPT + (TOTAL $ 1 init 0)
   | ALERT := SUM > 20
  |);
)";

LinkResult linkSensorMonitor() {
  return compileAndLinkSources(
      {{"SENSOR", SensorSource}, {"MONITOR", MonitorSource}});
}

} // namespace

//===----------------------------------------------------------------------===//
// ProcessInterface extraction
//===----------------------------------------------------------------------===//

TEST(ProcessInterface, SingleRootIsEndochronous) {
  auto C = compileOk(proc("? integer A; ! integer Y;",
                          "   Y := A + (Y $ 1 init 0)"));
  ProcessInterface I = extractInterface(*C);
  EXPECT_EQ(I.ProcessName, "P");
  EXPECT_EQ(I.RootCount, 1u);
  EXPECT_TRUE(I.Endochronous);
  EXPECT_TRUE(I.ExochronyReason.empty());
  ASSERT_EQ(I.Imports.size(), 1u);
  ASSERT_EQ(I.Exports.size(), 1u);
  // One shared clock class: A and Y are synchronous.
  EXPECT_EQ(I.Imports[0].Clock, I.Exports[0].Clock);
}

TEST(ProcessInterface, IndependentInputsAreExochronous) {
  auto C = compileOk(proc("? integer A, B; ! integer Y, Z;",
                          "   Y := A * 2\n   | Z := B * 3"));
  ProcessInterface I = extractInterface(*C);
  EXPECT_EQ(I.RootCount, 2u);
  EXPECT_EQ(I.FreeRootCount, 2u);
  EXPECT_FALSE(I.Endochronous);
  // The diagnostic names both unresolved roots and says whose problem
  // their relative rates are.
  EXPECT_NE(I.ExochronyReason.find("2 independent clock roots"),
            std::string::npos)
      << I.ExochronyReason;
  EXPECT_NE(I.ExochronyReason.find("environment"), std::string::npos);
}

TEST(ProcessInterface, RestrictedShapeKeepsAncestry) {
  // Y lives on a subclock of A: the restricted forest must place Y's
  // class under A's, even though intermediate classes are not part of
  // the interface.
  auto C = compileOk(proc("? integer A; boolean CC; ! integer Y;",
                          "   synchro {A, CC}\n   | Y := A when CC"));
  ProcessInterface I = extractInterface(*C);
  ASSERT_EQ(I.Imports.size(), 2u);
  ASSERT_EQ(I.Exports.size(), 1u);
  int AClock = I.Imports[0].Clock;
  int YClock = I.Exports[0].Clock;
  ASSERT_GE(AClock, 0);
  ASSERT_GE(YClock, 0);
  EXPECT_NE(AClock, YClock);
  EXPECT_EQ(I.Clocks[YClock].Parent, AClock);
  EXPECT_TRUE(I.Clocks[AClock].FreeRoot);
  EXPECT_FALSE(I.Clocks[YClock].TreeRoot);
}

TEST(ProcessInterface, DumpCarriesAllSections) {
  auto C = compileOk(proc("? integer A; ! integer Y;", "   Y := A * 2"));
  std::string Dump = extractInterface(*C).dump();
  EXPECT_NE(Dump.find("interface of process P"), std::string::npos);
  EXPECT_NE(Dump.find("endochronous: yes"), std::string::npos);
  EXPECT_NE(Dump.find("imports:"), std::string::npos);
  EXPECT_NE(Dump.find("exports:"), std::string::npos);
  EXPECT_NE(Dump.find("A : integer"), std::string::npos);
  EXPECT_NE(Dump.find("Y : integer"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Linking
//===----------------------------------------------------------------------===//

TEST(Linker, PipelineLinksByName) {
  LinkResult R = linkSensorMonitor();
  ASSERT_TRUE(R.Sys) << R.Error;
  LinkedSystem &Sys = *R.Sys;
  ASSERT_EQ(Sys.Units.size(), 2u);
  EXPECT_EQ(Sys.Units[0].Name, "SENSOR");
  EXPECT_EQ(Sys.Units[1].Name, "MONITOR");
  ASSERT_EQ(Sys.Channels.size(), 2u);
  EXPECT_EQ(Sys.Channels[0].Name, "KEPT");
  EXPECT_EQ(Sys.Channels[1].Name, "SUM");
  // Producer before consumer.
  ASSERT_EQ(Sys.Order.size(), 2u);
  EXPECT_EQ(Sys.Order[0], 0u);
  EXPECT_EQ(Sys.Order[1], 1u);
  // RAW stays external; TOTAL/ALERT are the system outputs.
  ASSERT_EQ(Sys.ExternalInputs.size(), 1u);
  EXPECT_EQ(Sys.ExternalInputs[0].Name, "RAW");
  ASSERT_EQ(Sys.ExternalOutputs.size(), 2u);
  // A single unbound root paces the linked system.
  EXPECT_TRUE(Sys.endochronous());
}

TEST(Linker, NoReResolutionAtLink) {
  LinkResult R = linkSensorMonitor();
  ASSERT_TRUE(R.Sys) << R.Error;
  ASSERT_EQ(R.Sys->ForestNodesAtLink.size(), 2u);
  for (size_t U = 0; U < 2; ++U)
    EXPECT_EQ(R.Sys->ForestNodesAtLink[U],
              R.Sys->Units[U].Iface.ForestNodes);
}

TEST(Linker, SynchroObligationDischargedByImplies) {
  // MONITOR demands KEPT and SUM synchronous; SENSOR proves it (their
  // relative BDDs are equal). The channels bind the consumer clock.
  LinkResult R = linkSensorMonitor();
  ASSERT_TRUE(R.Sys) << R.Error;
  for (const LinkChannel &Ch : R.Sys->Channels)
    EXPECT_GE(Ch.ConsumerClockInput, 0) << Ch.Name;
}

TEST(Linker, UnprovableSynchroIsRejected) {
  // K1 and K2 are *not* synchronous in the producer (disjoint samplings),
  // so the consumer's synchro cannot be discharged.
  const char *Prod = R"(
process PROD =
  ( ? integer A; boolean CC; ! integer K1, K2; )
  (| synchro {A, CC}
   | K1 := A when CC
   | K2 := A when (not CC)
  |);
)";
  const char *Cons = R"(
process CONS =
  ( ? integer K1, K2; ! integer Y; )
  (| synchro {K1, K2}
   | Y := K1 + K2
  |);
)";
  LinkResult R = compileAndLinkSources({{"PROD", Prod}, {"CONS", Cons}});
  ASSERT_FALSE(R.Sys);
  EXPECT_NE(R.Error.find("must be synchronous"), std::string::npos)
      << R.Error;
  EXPECT_NE(R.Error.find("cannot prove"), std::string::npos) << R.Error;
}

TEST(Linker, TypeMismatchIsRejected) {
  const char *Prod =
      "process PROD = ( ? integer A; ! integer X; ) (| X := A |);";
  const char *Cons =
      "process CONS = ( ? boolean X; ! boolean Y; ) (| Y := not X |);";
  LinkResult R = compileAndLinkSources({{"PROD", Prod}, {"CONS", Cons}});
  ASSERT_FALSE(R.Sys);
  EXPECT_NE(R.Error.find("channel 'X'"), std::string::npos) << R.Error;
  EXPECT_NE(R.Error.find("integer"), std::string::npos) << R.Error;
  EXPECT_NE(R.Error.find("boolean"), std::string::npos) << R.Error;
}

TEST(Linker, DuplicateExportIsRejected) {
  const char *P1 = "process P1 = ( ? integer A; ! integer X; ) (| X := A |);";
  const char *P2 =
      "process P2 = ( ? integer B; ! integer X; ) (| X := B * 2 |);";
  LinkResult R = compileAndLinkSources({{"P1", P1}, {"P2", P2}});
  ASSERT_FALSE(R.Sys);
  EXPECT_NE(R.Error.find("exported by both"), std::string::npos) << R.Error;
}

TEST(Linker, CrossProcessCycleIsRejected) {
  const char *P1 =
      "process P1 = ( ? integer B; ! integer A; ) (| A := B + 1 |);";
  const char *P2 =
      "process P2 = ( ? integer A; ! integer B; ) (| B := A * 2 |);";
  LinkResult R = compileAndLinkSources({{"P1", P1}, {"P2", P2}});
  ASSERT_FALSE(R.Sys);
  EXPECT_NE(R.Error.find("cyclic"), std::string::npos) << R.Error;
  // The diagnostic walks the wait edges and names the channel path in
  // dataflow direction, plus the repair.
  bool PathP1First =
      R.Error.find("P1 -[A]-> P2 -[B]-> P1") != std::string::npos;
  bool PathP2First =
      R.Error.find("P2 -[B]-> P1 -[A]-> P2") != std::string::npos;
  EXPECT_TRUE(PathP1First || PathP2First) << R.Error;
  EXPECT_NE(R.Error.find("break the cycle with a delay ($)"),
            std::string::npos)
      << R.Error;
}

TEST(Linker, FeedbackCompositionLinksWhenInstructionGraphIsAcyclic) {
  // A unit-level cycle (LOOPA -> LOOPB -> LOOPA) whose instruction-level
  // dependence graph is acyclic: LOOPB needs only LOOPA's FA half, and
  // LOOPA's FB half runs after LOOPB. Whole-unit scheduling had to
  // reject this; fusion interleaves the halves.
  const char *A = "process LOOPA = ( ? integer FX, FB; ! integer FA, FC; )"
                  " (| FA := (FX + 1) mod 97 | FC := (FB * 2 + 3) mod 97 |);";
  const char *B = "process LOOPB = ( ? integer FA; ! integer FB; )"
                  " (| FB := (FA * 4 + 5) mod 97 |);";
  LinkResult R = compileAndLinkSources({{"LOOPA", A}, {"LOOPB", B}});
  ASSERT_TRUE(R.Sys) << R.Error;
  EXPECT_EQ(R.Sys->Channels.size(), 2u);
  ASSERT_EQ(R.Sys->ExternalInputs.size(), 1u);
  EXPECT_EQ(R.Sys->ExternalInputs[0].Name, "FX");
  ASSERT_EQ(R.Sys->ExternalOutputs.size(), 1u);
  EXPECT_EQ(R.Sys->ExternalOutputs[0].Name, "FC");
  // The fused schedule starts in LOOPA (its root paces the system) and
  // interleaves LOOPB before LOOPA's consumer half finishes.
  ASSERT_EQ(R.Sys->Order.size(), 2u);
  EXPECT_EQ(R.Sys->Order[0], 0u);
  EXPECT_FALSE(R.Sys->Fused.Code.empty());
}

TEST(Linker, TwoProducerObligationLinksThroughTheJointSpace) {
  // DIAK's synchro spans DIAA's and DIAB's exports; neither producer's
  // forest alone can discharge it — only the joint space, which resolves
  // both roots to DIAS's presence of DX.
  const char *S = "process DIAS = ( ? integer SRC; ! integer DX; )"
                  " (| DX := (SRC + 1) mod 97 |);";
  const char *A = "process DIAA = ( ? integer DX; ! integer DA; )"
                  " (| DA := (DX * 2 + 1) mod 97 |);";
  const char *B = "process DIAB = ( ? integer DX; ! integer DB; )"
                  " (| DB := (DX + 5) mod 97 |);";
  const char *K = "process DIAK = ( ? integer DA, DB; ! integer DY; )"
                  " (| synchro {DA, DB} | DY := (DA + DB * 3) mod 97 |);";
  LinkResult R = compileAndLinkSources(
      {{"DIAS", S}, {"DIAA", A}, {"DIAB", B}, {"DIAK", K}});
  ASSERT_TRUE(R.Sys) << R.Error;
  EXPECT_EQ(R.Sys->Channels.size(), 4u);
  ASSERT_EQ(R.Sys->Roots.size(), 1u);
  EXPECT_FALSE(R.Sys->Fused.Code.empty());
}

TEST(Linker, UncompilableUnitReportsItsDiagnostics) {
  const char *Bad = "process BAD = ( ? integer A; ! integer Y; ) (| Y := Q |);";
  const char *Good =
      "process GOOD = ( ? integer B; ! integer Z; ) (| Z := B |);";
  LinkResult R = compileAndLinkSources({{"BAD", Bad}, {"GOOD", Good}});
  ASSERT_FALSE(R.Sys);
  EXPECT_NE(R.Error.find("did not compile"), std::string::npos) << R.Error;
}

TEST(Linker, SingleFileLinkByProcessNames) {
  std::string Two = std::string(SensorSource) + MonitorSource;
  LinkResult R = compileAndLink("<two>", Two, {"SENSOR", "MONITOR"});
  ASSERT_TRUE(R.Sys) << R.Error;
  EXPECT_EQ(R.Sys->Channels.size(), 2u);

  LinkResult Bad = compileAndLink("<two>", Two, {"SENSOR", "NOPE"});
  ASSERT_FALSE(Bad.Sys);
  EXPECT_NE(Bad.Error.find("no process named 'NOPE'"), std::string::npos)
      << Bad.Error;
  EXPECT_NE(Bad.Error.find("SENSOR, MONITOR"), std::string::npos)
      << Bad.Error;
}

TEST(Linker, ParallelAndSerialCompilationAgree) {
  LinkOptions Serial;
  Serial.ParallelCompile = false;
  LinkResult A = compileAndLinkSources(
      {{"SENSOR", SensorSource}, {"MONITOR", MonitorSource}}, Serial);
  LinkResult B = linkSensorMonitor();
  ASSERT_TRUE(A.Sys) << A.Error;
  ASSERT_TRUE(B.Sys) << B.Error;
  ASSERT_EQ(A.Sys->Units.size(), B.Sys->Units.size());
  for (size_t U = 0; U < A.Sys->Units.size(); ++U)
    EXPECT_EQ(A.Sys->Units[U].Iface.dump(), B.Sys->Units[U].Iface.dump());
  EXPECT_EQ(A.Sys->dump(), B.Sys->dump());
}

//===----------------------------------------------------------------------===//
// Linked execution
//===----------------------------------------------------------------------===//

TEST(LinkedExecutor, PipelineProducesTheExpectedTrace) {
  LinkResult R = linkSensorMonitor();
  ASSERT_TRUE(R.Sys) << R.Error;
  ScriptedEnvironment Env;
  Env.tickAlways();
  for (unsigned I = 0; I < 10; ++I)
    Env.set("RAW", I, Value::makeInt(static_cast<int>(I) + 1));
  LinkedExecutor Exec(*R.Sys);
  ASSERT_TRUE(Exec.run(Env, 10)) << Exec.error();
  // KEPT = 2,4,6,8,10 at instants 1,3,5,7,9; TOTAL accumulates; ALERT
  // fires when SUM (= TOTAL here) exceeds 20.
  EXPECT_EQ(formatEvents(Env.outputs()),
            "1 TOTAL=2\n1 ALERT=false\n"
            "3 TOTAL=6\n3 ALERT=false\n"
            "5 TOTAL=12\n5 ALERT=false\n"
            "7 TOTAL=20\n7 ALERT=false\n"
            "9 TOTAL=30\n9 ALERT=true\n");
}

TEST(LinkedExecutor, DynamicClockMismatchIsDetected) {
  // The consumer *derives* X's clock from its own condition B, so the
  // linker cannot bind it; the executor must catch the first instant the
  // producer and the consumer disagree about X's presence.
  const char *Prod =
      "process PROD = ( ? integer A; ! integer X; ) (| X := A |);";
  const char *Cons = R"(
process CONS =
  ( ? integer X; boolean B; ! integer Y; )
  (| W := when B
   | synchro {X, W}
   | Y := X + 1
  |)
  where
    event W;
  end;
)";
  LinkResult R = compileAndLinkSources({{"PROD", Prod}, {"CONS", Cons}});
  ASSERT_TRUE(R.Sys) << R.Error;
  ASSERT_EQ(R.Sys->Channels.size(), 1u);
  EXPECT_EQ(R.Sys->Channels[0].ConsumerClockInput, -1)
      << "X's clock is consumer-derived, not a free root";

  // A always ticks (so X is always produced), but B is false at instant
  // 0: the consumer expects silence while the producer emitted.
  ScriptedEnvironment Env;
  Env.tickAlways();
  Env.set("A", 0, Value::makeInt(7));
  Env.set("B", 0, Value::makeBool(false));
  LinkedExecutor Exec(*R.Sys);
  EXPECT_FALSE(Exec.run(Env, 1));
  EXPECT_NE(Exec.error().find("clock mismatch"), std::string::npos)
      << Exec.error();
}

//===----------------------------------------------------------------------===//
// Linked C emission
//===----------------------------------------------------------------------===//

TEST(LinkEmitter, EmitsTheFusedStepWithAllEntryPoints) {
  LinkResult R = linkSensorMonitor();
  ASSERT_TRUE(R.Sys) << R.Error;
  CEmitOptions EO;
  std::string C = emitLinkedC(*R.Sys, "sys", EO);
  // One fused translation unit: system-level entry points only, no
  // per-unit step functions survive the fusion.
  EXPECT_NE(C.find("void sys_step("), std::string::npos);
  EXPECT_NE(C.find("void sys_init("), std::string::npos);
  EXPECT_NE(C.find("void sys_step_batch("), std::string::npos);
  EXPECT_NE(C.find("void sys_step_fleet("), std::string::npos);
  EXPECT_EQ(C.find("void SENSOR_step("), std::string::npos);
  EXPECT_EQ(C.find("void MONITOR_step("), std::string::npos);
  // Channels were resolved into slot copies at link time: no channel
  // fields cross the C interface, only the true externals do.
  EXPECT_NE(C.find("in->RAW"), std::string::npos);
  EXPECT_NE(C.find("out->TOTAL"), std::string::npos);
  EXPECT_NE(C.find("out->ALERT"), std::string::npos);
  EXPECT_EQ(C.find("in->KEPT"), std::string::npos);
  EXPECT_EQ(C.find("in->SUM"), std::string::npos);
}

TEST(LinkEmitter, InterfaceFieldsAreDeduplicatedAndNamed) {
  LinkResult R = linkSensorMonitor();
  ASSERT_TRUE(R.Sys) << R.Error;
  LinkedCInterface CI = linkedCInterface(*R.Sys);
  ASSERT_EQ(CI.Ticks.size(), 1u); // One unbound root.
  ASSERT_EQ(CI.Inputs.size(), 1u);
  EXPECT_EQ(CI.Inputs[0].SignalName, "RAW");
  ASSERT_EQ(CI.Outputs.size(), 2u);
  EXPECT_EQ(CI.Outputs[0].SignalName, "TOTAL");
  EXPECT_EQ(CI.Outputs[1].SignalName, "ALERT");
}
