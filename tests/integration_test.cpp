//===--- integration_test.cpp - End-to-end pipeline behaviour -------------===//

#include "TestUtil.h"
#include "codegen/CEmitter.h"
#include "interp/StepExecutor.h"

#include <gtest/gtest.h>

using namespace sigc;
using namespace sigc::test;

TEST(Integration, FailedStageIsReported) {
  EXPECT_EQ(compileSource("<t>", "process = (")->FailedStage,
            CompileStage::Parse);
  EXPECT_EQ(compileSource("<t>", proc("? integer A; ! integer Y;",
                                      "   Y := Q"))
                ->FailedStage,
            CompileStage::Sema);
  EXPECT_EQ(compileSource("<t>",
                          proc("? integer A; boolean CC, DD; ! integer Y;",
                               "   synchro {A, CC}\n   | synchro {A, DD}\n"
                               "   | T := A when CC\n"
                               "   | U := A when DD\n"
                               "   | synchro {T, U}\n   | Y := A",
                               "integer T, U;"))
                ->FailedStage,
            CompileStage::ClockCalculus);
  EXPECT_EQ(compileSource("<t>", proc("? integer A; ! integer Y;",
                                      "   Y := Z + A\n   | Z := Y + A",
                                      "integer Z;"))
                ->FailedStage,
            CompileStage::Graph);
}

TEST(Integration, CompileStageNamesAreCanonical) {
  EXPECT_STREQ(to_string(CompileStage::None), "none");
  EXPECT_STREQ(to_string(CompileStage::Parse), "parse");
  EXPECT_STREQ(to_string(CompileStage::Select), "select");
  EXPECT_STREQ(to_string(CompileStage::Sema), "sema");
  EXPECT_STREQ(to_string(CompileStage::ClockCalculus), "clock-calculus");
  EXPECT_STREQ(to_string(CompileStage::Graph), "graph");
}

TEST(Integration, ProcessSelectionByName) {
  std::string Two =
      "process A = ( ? integer X; ! integer Y; ) (| Y := X |);\n"
      "process B = ( ? integer U; ! integer V; ) (| V := U * 2 |);\n";
  CompileOptions O;
  O.ProcessName = "B";
  auto C = compileSource("<t>", Two, O);
  ASSERT_TRUE(C->Ok) << C->Diags.render();
  EXPECT_EQ(std::string(C->names().spelling(C->Decl->Name)), "B");

  O.ProcessName = "NOPE";
  auto C2 = compileSource("<t>", Two, O);
  EXPECT_FALSE(C2->Ok);
  EXPECT_EQ(C2->FailedStage, CompileStage::Select);
  // The diagnostic must name every declared process, so a typo'd
  // --process does not send the user source-diving.
  std::string Diags = C2->Diags.render();
  EXPECT_NE(Diags.find("no process named 'NOPE'"), std::string::npos)
      << Diags;
  EXPECT_NE(Diags.find("declared processes: A, B"), std::string::npos)
      << Diags;
}

TEST(Integration, CounterEndToEnd) {
  auto C = compileOk(proc("? integer STEP; ! integer TOTAL;",
                          "   TOTAL := STEP + (TOTAL $ 1 init 0)"));
  ScriptedEnvironment Env;
  Env.tickAlways();
  for (unsigned I = 0; I < 5; ++I)
    Env.set("STEP", I, Value::makeInt(static_cast<int>(I)));
  StepExecutor Exec(*C->Kernel, C->Step);
  Exec.run(Env, 5, ExecMode::Nested);
  EXPECT_EQ(formatEvents(Env.outputs()),
            "0 TOTAL=0\n1 TOTAL=1\n2 TOTAL=3\n3 TOTAL=6\n4 TOTAL=10\n");
}

TEST(Integration, WatchdogScenario) {
  // A watchdog: when DO_RELOAD is true the counter reloads, otherwise it
  // counts down each tick; EXPIRED fires at zero. The clock of CNT is the
  // master clock; the reload branch lives on [DO_RELOAD] — the same
  // inclusion-based cycle elimination as the paper's ALARM applies.
  auto C = compileOk(proc(
      "? integer RELOAD; boolean DO_RELOAD; ! boolean EXPIRED;",
      "   R := RELOAD when DO_RELOAD\n"
      "   | CNT := R default (PREV - 1)\n"
      "   | PREV := CNT $ 1 init 0\n"
      "   | synchro {CNT, DO_RELOAD}\n"
      "   | synchro {RELOAD, DO_RELOAD}\n"
      "   | EXPIRED := CNT <= 0",
      "integer R, CNT, PREV;"));
  ScriptedEnvironment Env;
  Env.tickAlways();
  bool Do[] = {true, false, false, false, true};
  for (unsigned I = 0; I < 5; ++I) {
    Env.set("DO_RELOAD", I, Value::makeBool(Do[I]));
    Env.set("RELOAD", I, Value::makeInt(3));
  }
  StepExecutor Exec(*C->Kernel, C->Step);
  Exec.run(Env, 5, ExecMode::Nested);
  EXPECT_EQ(formatEvents(Env.outputs()),
            "0 EXPIRED=false\n1 EXPIRED=false\n2 EXPIRED=false\n"
            "3 EXPIRED=true\n4 EXPIRED=false\n");
}

TEST(Integration, EmittedCMatchesInterpreterOnCounter) {
  // Compile the counter, emit C with the deterministic driver, build and
  // run it, and compare against the StepExecutor fed by the same LCG.
  auto C = compileOk(proc("? integer A; ! integer Y;",
                          "   Y := A + (Y $ 1 init 0)"));
  CEmitOptions O;
  O.Nested = true;
  O.WithDriver = true;
  O.DriverSteps = 8;
  std::string Code = emitC(*C->Kernel, C->Step, C->names(), "p", O);

  std::string Dir = ::testing::TempDir();
  std::string CPath = Dir + "sig_int_test.c";
  std::string Bin = Dir + "sig_int_test";
  FILE *F = fopen(CPath.c_str(), "w");
  ASSERT_NE(F, nullptr);
  fputs(Code.c_str(), F);
  fclose(F);
  ASSERT_EQ(system(("cc -std=c99 -O1 -o " + Bin + " " + CPath).c_str()), 0);

  FILE *P = popen((Bin + " 2>/dev/null").c_str(), "r");
  ASSERT_NE(P, nullptr);
  std::string Got;
  char Buf[256];
  while (fgets(Buf, sizeof Buf, P))
    Got += Buf;
  pclose(P);

  // Recreate the driver's LCG to compute the expected outputs.
  unsigned long long State = 0x12345678ULL;
  auto Rng = [&]() {
    State = State * 6364136223846793005ULL + 1442695040888963407ULL;
    return State >> 33;
  };
  long long Total = 0;
  std::string Expect;
  for (unsigned I = 0; I < 8; ++I) {
    long long A = static_cast<long long>(Rng() % 100);
    Total += A;
    Expect += std::to_string(I) + " Y=" + std::to_string(Total) + "\n";
  }
  EXPECT_EQ(Got, Expect);
}

namespace {

/// Emits, compiles and runs both control structures of one program and
/// returns their stdout; used to prove nested C ≡ flat C behaviourally.
std::pair<std::string, std::string> runBothCStructures(
    Compilation &C, const std::string &Tag) {
  std::string Results[2];
  for (int ModeIdx = 0; ModeIdx < 2; ++ModeIdx) {
    CEmitOptions O;
    O.Nested = ModeIdx == 0;
    O.WithDriver = true;
    O.DriverSteps = 16;
    std::string Code = emitC(*C.Kernel, C.Step, C.names(), "p", O);
    std::string Base = ::testing::TempDir() + "sig_diff_" + Tag + "_" +
                       std::to_string(ModeIdx);
    FILE *F = fopen((Base + ".c").c_str(), "w");
    EXPECT_NE(F, nullptr);
    fputs(Code.c_str(), F);
    fclose(F);
    EXPECT_EQ(system(("cc -std=c99 -O1 -o " + Base + " " + Base + ".c")
                         .c_str()),
              0);
    FILE *P = popen((Base + " 2>/dev/null").c_str(), "r");
    EXPECT_NE(P, nullptr);
    char Buf[256];
    while (P && fgets(Buf, sizeof Buf, P))
      Results[ModeIdx] += Buf;
    if (P)
      pclose(P);
  }
  return {Results[0], Results[1]};
}

} // namespace

TEST(Integration, NestedAndFlatCBinariesAgree) {
  struct Case {
    const char *Tag;
    std::string Source;
  } Cases[] = {
      {"counter", proc("? integer A; ! integer Y;",
                       "   Y := A + (Y $ 1 init 0)")},
      {"sampler", proc("? integer A; boolean C1; ! integer Y;",
                       "   T := A when C1\n   | Y := T + (T $ 1 init 0)",
                       "integer T;")},
      {"merger", proc("? integer A; boolean C1; ! integer Y;",
                      "   U := A when C1\n   | V := A when (not C1)\n"
                      "   | Y := U default V",
                      "integer U, V;")},
  };
  for (const Case &K : Cases) {
    auto C = compileOk(K.Source);
    ASSERT_TRUE(C->Ok);
    auto [Nested, Flat] = runBothCStructures(*C, K.Tag);
    EXPECT_FALSE(Nested.empty()) << K.Tag;
    EXPECT_EQ(Nested, Flat) << K.Tag;
  }
}

TEST(Integration, TemporallyIncorrectDiagnosisNamesEquation) {
  auto C = compileSource(
      "<t>", proc("? integer A; boolean CC, DD; ! integer Y;",
                  "   synchro {A, CC}\n   | synchro {A, DD}\n"
                  "   | T := A when CC\n   | U := A when DD\n"
                  "   | synchro {T, U}\n   | Y := A",
                  "integer T, U;"));
  EXPECT_FALSE(C->Ok);
  EXPECT_NE(C->Diags.render().find("temporally incorrect"),
            std::string::npos);
}

TEST(Integration, DiagnosticsCarryLocations) {
  auto C = compileSource("<t>", proc("? integer A; ! integer Y;",
                                     "   Y := A + Q"));
  ASSERT_TRUE(C->Diags.hasErrors());
  bool AnyLocated = false;
  for (const Diagnostic &D : C->Diags.diagnostics())
    AnyLocated |= D.Loc.isValid();
  EXPECT_TRUE(AnyLocated);
}

TEST(Integration, MultiOutputProcess) {
  auto C = compileOk(proc("? integer A; ! integer DBL, SQR;",
                          "   DBL := A * 2\n   | SQR := A * A"));
  ScriptedEnvironment Env;
  Env.tickAlways();
  Env.set("A", 0, Value::makeInt(5));
  StepExecutor Exec(*C->Kernel, C->Step);
  Exec.run(Env, 1, ExecMode::Nested);
  std::string Out = formatEvents(Env.outputs());
  EXPECT_NE(Out.find("DBL=10"), std::string::npos);
  EXPECT_NE(Out.find("SQR=25"), std::string::npos);
}

TEST(Integration, RealArithmetic) {
  auto C = compileOk(proc("? real A; ! real Y;", "   Y := A * 0.5"));
  ScriptedEnvironment Env;
  Env.tickAlways();
  Env.set("A", 0, Value::makeReal(3.0));
  StepExecutor Exec(*C->Kernel, C->Step);
  Exec.run(Env, 1, ExecMode::Nested);
  ASSERT_EQ(Env.outputs().size(), 1u);
  EXPECT_DOUBLE_EQ(Env.outputs()[0].Val.Real, 1.5);
}

TEST(Integration, EventOutput) {
  auto C = compileOk(proc("? boolean CC; ! event T;", "   T := when CC"));
  ScriptedEnvironment Env;
  Env.tickAlways();
  Env.set("CC", 0, Value::makeBool(true));
  Env.set("CC", 1, Value::makeBool(false));
  Env.set("CC", 2, Value::makeBool(true));
  StepExecutor Exec(*C->Kernel, C->Step);
  Exec.run(Env, 3, ExecMode::Nested);
  EXPECT_EQ(formatEvents(Env.outputs()), "0 T=true\n2 T=true\n");
}
