//===--- integration_test.cpp - End-to-end pipeline behaviour -------------===//

#include "TestUtil.h"
#include "codegen/CEmitter.h"
#include "interp/StepExecutor.h"

#include <gtest/gtest.h>

using namespace sigc;
using namespace sigc::test;

TEST(Integration, FailedStageIsReported) {
  EXPECT_EQ(compileSource("<t>", "process = (")->FailedStage,
            CompileStage::Parse);
  EXPECT_EQ(compileSource("<t>", proc("? integer A; ! integer Y;",
                                      "   Y := Q"))
                ->FailedStage,
            CompileStage::Sema);
  EXPECT_EQ(compileSource("<t>",
                          proc("? integer A; boolean CC, DD; ! integer Y;",
                               "   synchro {A, CC}\n   | synchro {A, DD}\n"
                               "   | T := A when CC\n"
                               "   | U := A when DD\n"
                               "   | synchro {T, U}\n   | Y := A",
                               "integer T, U;"))
                ->FailedStage,
            CompileStage::ClockCalculus);
  EXPECT_EQ(compileSource("<t>", proc("? integer A; ! integer Y;",
                                      "   Y := Z + A\n   | Z := Y + A",
                                      "integer Z;"))
                ->FailedStage,
            CompileStage::Graph);
}

TEST(Integration, CompileStageNamesAreCanonical) {
  EXPECT_STREQ(to_string(CompileStage::None), "none");
  EXPECT_STREQ(to_string(CompileStage::Parse), "parse");
  EXPECT_STREQ(to_string(CompileStage::Select), "select");
  EXPECT_STREQ(to_string(CompileStage::Sema), "sema");
  EXPECT_STREQ(to_string(CompileStage::ClockCalculus), "clock-calculus");
  EXPECT_STREQ(to_string(CompileStage::Graph), "graph");
}

TEST(Integration, UnknownEngineModeNamesValidModes) {
  // Same diagnostic shape as the --process typo fix: a typo'd --mode
  // must name every valid mode instead of sending the user to the
  // sources.
  EngineMode Mode = EngineMode::Vm;
  std::string Diag;
  EXPECT_TRUE(parseEngineMode("vm", Mode, Diag));
  EXPECT_EQ(Mode, EngineMode::Vm);
  EXPECT_TRUE(parseEngineMode("nested", Mode, Diag));
  EXPECT_EQ(Mode, EngineMode::Nested);
  EXPECT_TRUE(parseEngineMode("flat", Mode, Diag));
  EXPECT_EQ(Mode, EngineMode::Flat);

  EXPECT_FALSE(parseEngineMode("vmm", Mode, Diag));
  EXPECT_NE(Diag.find("unknown --mode 'vmm'"), std::string::npos) << Diag;
  EXPECT_NE(Diag.find("valid modes: vm, nested, flat"), std::string::npos)
      << Diag;
}

TEST(Integration, ProcessSelectionByName) {
  std::string Two =
      "process A = ( ? integer X; ! integer Y; ) (| Y := X |);\n"
      "process B = ( ? integer U; ! integer V; ) (| V := U * 2 |);\n";
  CompileOptions O;
  O.ProcessName = "B";
  auto C = compileSource("<t>", Two, O);
  ASSERT_TRUE(C->Ok) << C->Diags.render();
  EXPECT_EQ(std::string(C->names().spelling(C->Decl->Name)), "B");

  O.ProcessName = "NOPE";
  auto C2 = compileSource("<t>", Two, O);
  EXPECT_FALSE(C2->Ok);
  EXPECT_EQ(C2->FailedStage, CompileStage::Select);
  // The diagnostic must name every declared process, so a typo'd
  // --process does not send the user source-diving.
  std::string Diags = C2->Diags.render();
  EXPECT_NE(Diags.find("no process named 'NOPE'"), std::string::npos)
      << Diags;
  EXPECT_NE(Diags.find("declared processes: A, B"), std::string::npos)
      << Diags;
}

TEST(Integration, CounterEndToEnd) {
  auto C = compileOk(proc("? integer STEP; ! integer TOTAL;",
                          "   TOTAL := STEP + (TOTAL $ 1 init 0)"));
  ScriptedEnvironment Env;
  Env.tickAlways();
  for (unsigned I = 0; I < 5; ++I)
    Env.set("STEP", I, Value::makeInt(static_cast<int>(I)));
  StepExecutor Exec(*C->Kernel, C->Step);
  Exec.run(Env, 5, ExecMode::Nested);
  EXPECT_EQ(formatEvents(Env.outputs()),
            "0 TOTAL=0\n1 TOTAL=1\n2 TOTAL=3\n3 TOTAL=6\n4 TOTAL=10\n");
}

TEST(Integration, WatchdogScenario) {
  // A watchdog: when DO_RELOAD is true the counter reloads, otherwise it
  // counts down each tick; EXPIRED fires at zero. The clock of CNT is the
  // master clock; the reload branch lives on [DO_RELOAD] — the same
  // inclusion-based cycle elimination as the paper's ALARM applies.
  auto C = compileOk(proc(
      "? integer RELOAD; boolean DO_RELOAD; ! boolean EXPIRED;",
      "   R := RELOAD when DO_RELOAD\n"
      "   | CNT := R default (PREV - 1)\n"
      "   | PREV := CNT $ 1 init 0\n"
      "   | synchro {CNT, DO_RELOAD}\n"
      "   | synchro {RELOAD, DO_RELOAD}\n"
      "   | EXPIRED := CNT <= 0",
      "integer R, CNT, PREV;"));
  ScriptedEnvironment Env;
  Env.tickAlways();
  bool Do[] = {true, false, false, false, true};
  for (unsigned I = 0; I < 5; ++I) {
    Env.set("DO_RELOAD", I, Value::makeBool(Do[I]));
    Env.set("RELOAD", I, Value::makeInt(3));
  }
  StepExecutor Exec(*C->Kernel, C->Step);
  Exec.run(Env, 5, ExecMode::Nested);
  EXPECT_EQ(formatEvents(Env.outputs()),
            "0 EXPIRED=false\n1 EXPIRED=false\n2 EXPIRED=false\n"
            "3 EXPIRED=true\n4 EXPIRED=false\n");
}

TEST(Integration, EmittedCMatchesInterpreterOnCounter) {
  // Compile the counter, emit C with the deterministic driver, build and
  // run it, and compare against the StepExecutor fed by the same LCG.
  auto C = compileOk(proc("? integer A; ! integer Y;",
                          "   Y := A + (Y $ 1 init 0)"));
  CEmitOptions O;
  O.WithDriver = true;
  O.DriverSteps = 8;
  std::string Code = emitC(C->Compiled, "p", O);

  std::string Dir = ::testing::TempDir();
  std::string CPath = Dir + "sig_int_test.c";
  std::string Bin = Dir + "sig_int_test";
  FILE *F = fopen(CPath.c_str(), "w");
  ASSERT_NE(F, nullptr);
  fputs(Code.c_str(), F);
  fclose(F);
  ASSERT_EQ(system(("cc -std=c99 -O1 -o " + Bin + " " + CPath).c_str()), 0);

  FILE *P = popen((Bin + " 2>/dev/null").c_str(), "r");
  ASSERT_NE(P, nullptr);
  std::string Got;
  char Buf[256];
  while (fgets(Buf, sizeof Buf, P))
    Got += Buf;
  pclose(P);

  // Recreate the driver's LCG to compute the expected outputs.
  unsigned long long State = 0x12345678ULL;
  auto Rng = [&]() {
    State = State * 6364136223846793005ULL + 1442695040888963407ULL;
    return State >> 33;
  };
  long long Total = 0;
  std::string Expect;
  for (unsigned I = 0; I < 8; ++I) {
    long long A = static_cast<long long>(Rng() % 100);
    Total += A;
    Expect += std::to_string(I) + " Y=" + std::to_string(Total) + "\n";
  }
  EXPECT_EQ(Got, Expect);
}

namespace {

/// Emits one program, appends a harness driving it once instant by
/// instant and once through the batched entry point, compiles and runs
/// both binaries, and returns their stdout — proving the emitted C's
/// step ≡ step_batch behaviourally (counters included).
std::pair<std::string, std::string> runStepAndBatchC(Compilation &C,
                                                     const std::string &Tag) {
  std::string Results[2];
  std::string Base = emitC(C.Compiled, "p", CEmitOptions());
  for (int BatchIdx = 0; BatchIdx < 2; ++BatchIdx) {
    std::string Code = Base;
    Code += "\n#include <stdio.h>\n";
    Code += "static unsigned long rng_state = 0x9876543UL;\n";
    Code += "static unsigned long rng(void) {\n";
    Code += "  rng_state = rng_state * 6364136223846793005UL + "
            "1442695040888963407UL;\n";
    Code += "  return rng_state >> 33;\n}\n";
    Code += "static p_in_t in_v[16]; static p_out_t out_v[16];\n";
    Code += "int main(void) {\n  p_state_t st;\n  unsigned i;\n";
    Code += "  p_init(&st);\n";
    Code += "  for (i = 0; i < 16u; ++i) {\n";
    for (const auto &CI : C.Compiled.ClockInputs)
      Code += "    in_v[i].tick_" + sanitizeIdent(CI.Name) + " = 1;\n";
    for (const auto &SI : C.Compiled.Inputs) {
      std::string Id = sanitizeIdent(SI.Name);
      if (SI.Type == TypeKind::Integer)
        Code += "    in_v[i]." + Id + " = (long)(rng() % 100);\n";
      else
        Code += "    in_v[i]." + Id + " = (int)(rng() & 1);\n";
    }
    Code += "  }\n";
    if (BatchIdx == 0)
      Code += "  for (i = 0; i < 16u; ++i) p_step(&st, &in_v[i], "
              "&out_v[i]);\n";
    else
      Code += "  p_step_batch(&st, in_v, out_v, 16u);\n";
    Code += "  for (i = 0; i < 16u; ++i) {\n";
    for (const auto &SO : C.Compiled.Outputs) {
      std::string Id = sanitizeIdent(SO.Name);
      Code += "    if (out_v[i]." + Id + "_present) printf(\"%u " + Id +
              "=%ld\\n\", i, (long)out_v[i]." + Id + ");\n";
    }
    Code += "  }\n";
    Code += "  printf(\"guards=%llu executed=%llu\\n\", st.guard_tests, "
            "st.executed);\n";
    Code += "  return 0;\n}\n";

    std::string BasePath = ::testing::TempDir() + "sig_batch_" + Tag + "_" +
                           std::to_string(BatchIdx);
    FILE *F = fopen((BasePath + ".c").c_str(), "w");
    EXPECT_NE(F, nullptr);
    fputs(Code.c_str(), F);
    fclose(F);
    EXPECT_EQ(system(("cc -std=c99 -Wall -Werror -O1 -o " + BasePath + " " +
                      BasePath + ".c")
                         .c_str()),
              0)
        << Code;
    FILE *P = popen((BasePath + " 2>/dev/null").c_str(), "r");
    EXPECT_NE(P, nullptr);
    char Buf[256];
    while (P && fgets(Buf, sizeof Buf, P))
      Results[BatchIdx] += Buf;
    if (P)
      pclose(P);
  }
  return {Results[0], Results[1]};
}

} // namespace

TEST(Integration, SteppedAndBatchedCBinariesAgree) {
  struct Case {
    const char *Tag;
    std::string Source;
  } Cases[] = {
      {"counter", proc("? integer A; ! integer Y;",
                       "   Y := A + (Y $ 1 init 0)")},
      {"sampler", proc("? integer A; boolean C1; ! integer Y;",
                       "   T := A when C1\n   | Y := T + (T $ 1 init 0)",
                       "integer T;")},
      {"merger", proc("? integer A; boolean C1; ! integer Y;",
                      "   U := A when C1\n   | V := A when (not C1)\n"
                      "   | Y := U default V",
                      "integer U, V;")},
  };
  for (const Case &K : Cases) {
    auto C = compileOk(K.Source);
    ASSERT_TRUE(C->Ok);
    auto [Stepped, Batched] = runStepAndBatchC(*C, K.Tag);
    EXPECT_FALSE(Stepped.empty()) << K.Tag;
    EXPECT_EQ(Stepped, Batched) << K.Tag;
  }
}

TEST(Integration, TemporallyIncorrectDiagnosisNamesEquation) {
  auto C = compileSource(
      "<t>", proc("? integer A; boolean CC, DD; ! integer Y;",
                  "   synchro {A, CC}\n   | synchro {A, DD}\n"
                  "   | T := A when CC\n   | U := A when DD\n"
                  "   | synchro {T, U}\n   | Y := A",
                  "integer T, U;"));
  EXPECT_FALSE(C->Ok);
  EXPECT_NE(C->Diags.render().find("temporally incorrect"),
            std::string::npos);
}

TEST(Integration, DiagnosticsCarryLocations) {
  auto C = compileSource("<t>", proc("? integer A; ! integer Y;",
                                     "   Y := A + Q"));
  ASSERT_TRUE(C->Diags.hasErrors());
  bool AnyLocated = false;
  for (const Diagnostic &D : C->Diags.diagnostics())
    AnyLocated |= D.Loc.isValid();
  EXPECT_TRUE(AnyLocated);
}

TEST(Integration, MultiOutputProcess) {
  auto C = compileOk(proc("? integer A; ! integer DBL, SQR;",
                          "   DBL := A * 2\n   | SQR := A * A"));
  ScriptedEnvironment Env;
  Env.tickAlways();
  Env.set("A", 0, Value::makeInt(5));
  StepExecutor Exec(*C->Kernel, C->Step);
  Exec.run(Env, 1, ExecMode::Nested);
  std::string Out = formatEvents(Env.outputs());
  EXPECT_NE(Out.find("DBL=10"), std::string::npos);
  EXPECT_NE(Out.find("SQR=25"), std::string::npos);
}

TEST(Integration, RealArithmetic) {
  auto C = compileOk(proc("? real A; ! real Y;", "   Y := A * 0.5"));
  ScriptedEnvironment Env;
  Env.tickAlways();
  Env.set("A", 0, Value::makeReal(3.0));
  StepExecutor Exec(*C->Kernel, C->Step);
  Exec.run(Env, 1, ExecMode::Nested);
  ASSERT_EQ(Env.outputs().size(), 1u);
  EXPECT_DOUBLE_EQ(Env.outputs()[0].Val.Real, 1.5);
}

TEST(Integration, EventOutput) {
  auto C = compileOk(proc("? boolean CC; ! event T;", "   T := when CC"));
  ScriptedEnvironment Env;
  Env.tickAlways();
  Env.set("CC", 0, Value::makeBool(true));
  Env.set("CC", 1, Value::makeBool(false));
  Env.set("CC", 2, Value::makeBool(true));
  StepExecutor Exec(*C->Kernel, C->Step);
  Exec.run(Env, 3, ExecMode::Nested);
  EXPECT_EQ(formatEvents(Env.outputs()), "0 T=true\n2 T=true\n");
}
