//===--- vm_test.cpp - Slot-resolved VM: structure, semantics, counters ---===//
///
/// Tests of the CompiledStep/VmExecutor execution engine:
///   * structural invariants of the lowered bytecode (resolved descriptor
///     indices, well-formed skip offsets, folded constants),
///   * trace equivalence against the nested StepExecutor on scripted and
///     random programs (the differential oracle re-checks this at scale;
///     here the failures localize),
///   * the guard-economics regression pin: the VM must do exactly the
///     nested structure's guard work — never regress to flat-level — and
///     its Executed counter stays comparable across the multi-instruction
///     expression lowering (Weight accounting).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "interp/StepExecutor.h"
#include "interp/VmExecutor.h"
#include "programs/Programs.h"

#include <gtest/gtest.h>

using namespace sigc;
using namespace sigc::test;

namespace {

CompiledStep buildVm(Compilation &C) {
  return CompiledStep::build(*C.Kernel, C.Step);
}

} // namespace

//===----------------------------------------------------------------------===//
// Structural invariants of the lowered bytecode.
//===----------------------------------------------------------------------===//

TEST(CompiledStep, DescriptorIndicesAreResolved) {
  auto C = compileOk(proc("? integer A; boolean C1; ! integer Y;",
                          "   Y := (A + 1) when C1"));
  CompiledStep CS = buildVm(*C);
  for (const VmInstr &In : CS.Code) {
    switch (In.Op) {
    case VmOp::ReadClockInput:
      ASSERT_GE(In.Aux, 0);
      ASSERT_LT(static_cast<size_t>(In.Aux), CS.ClockInputs.size());
      break;
    case VmOp::ReadSignal:
      ASSERT_GE(In.Aux, 0);
      ASSERT_LT(static_cast<size_t>(In.Aux), CS.Inputs.size());
      break;
    case VmOp::WriteOutput:
      ASSERT_GE(In.Aux, 0);
      ASSERT_LT(static_cast<size_t>(In.Aux), CS.Outputs.size());
      break;
    default:
      break;
    }
  }
}

TEST(CompiledStep, SkipOffsetsAreForwardAndBounded) {
  auto C = compileOk(proc("? integer A; boolean C1, C2; ! integer Y;",
                          "   T1 := A when C1\n"
                          "   | T2 := T1 when C2\n"
                          "   | Y := T2 + 1",
                          "integer T1, T2;"));
  CompiledStep CS = buildVm(*C);
  unsigned Skips = 0;
  for (size_t PC = 0; PC < CS.Code.size(); ++PC) {
    const VmInstr &In = CS.Code[PC];
    if (In.Op != VmOp::SkipIfAbsent)
      continue;
    ++Skips;
    EXPECT_GT(In.Aux, static_cast<int32_t>(PC)) << "skip must move forward";
    EXPECT_LE(In.Aux, static_cast<int32_t>(CS.Code.size()));
    EXPECT_GE(In.A, 0);
    EXPECT_LT(In.A, static_cast<int32_t>(CS.NumClockSlots));
    EXPECT_EQ(In.Weight, 0) << "guard tests are not executed instructions";
  }
  EXPECT_GT(Skips, 0u) << "a sampled program must have guarded blocks";
}

TEST(CompiledStep, ExpressionLoweringCountsOnceViaWeights) {
  // (A * A + 1) * (A - 2) lowers to several three-address instructions;
  // exactly one of them (the root) must carry Weight 1.
  auto C = compileOk(proc("? integer A; ! integer Y;",
                          "   Y := (A * A + 1) * (A - 2)"));
  CompiledStep CS = buildVm(*C);
  EXPECT_GT(CS.NumTempSlots, 0u) << "interior results need scratch slots";
  uint64_t StepInstrs = C->Step.Instrs.size();
  uint64_t WeightSum = 0;
  for (const VmInstr &In : CS.Code)
    WeightSum += In.Weight;
  EXPECT_EQ(WeightSum, StepInstrs)
      << "every step instruction contributes exactly 1 to Executed";
}

TEST(CompiledStep, ConstantSubtreesFoldAtBuildTime) {
  auto C = compileOk(proc("? integer A; ! integer Y;",
                          "   Y := A + (2 * 3 + 4)"));
  CompiledStep CS = buildVm(*C);
  bool FoldedSeen = false;
  for (const Value &V : CS.Consts)
    FoldedSeen |= V.Kind == TypeKind::Integer && V.Int == 10;
  EXPECT_TRUE(FoldedSeen) << "2 * 3 + 4 should fold to the constant 10";
}

//===----------------------------------------------------------------------===//
// Trace equivalence with the step executor.
//===----------------------------------------------------------------------===//

TEST(VmExecutor, MatchesNestedOnScriptedTrace) {
  auto C = compileOk(proc("? integer X1, X2; ! integer X;",
                          "   X := X1 + X2"));
  ScriptedEnvironment EnvA, EnvB;
  for (auto *E : {&EnvA, &EnvB}) {
    E->tickAlways();
    for (unsigned I = 0; I < 4; ++I) {
      E->set("X1", I, Value::makeInt(static_cast<int>(I) + 1));
      E->set("X2", I, Value::makeInt(10 - static_cast<int>(I)));
    }
  }
  StepExecutor Nested(*C->Kernel, C->Step);
  Nested.run(EnvA, 4, ExecMode::Nested);
  CompiledStep CS = buildVm(*C);
  VmExecutor Vm(CS);
  Vm.run(EnvB, 4);
  EXPECT_EQ(formatEvents(EnvA.outputs()), formatEvents(EnvB.outputs()));
}

TEST(VmExecutor, MatchesNestedOnBuiltinSuite) {
  for (const Figure13Program &P : figure13Suite()) {
    auto C = compileSource("<vm:" + P.Name + ">", P.Source);
    ASSERT_TRUE(C->Ok) << P.Name;
    RandomEnvironment EnvNested(17), EnvVm(17);
    StepExecutor Nested(*C->Kernel, C->Step);
    Nested.run(EnvNested, 48, ExecMode::Nested);
    CompiledStep CS = buildVm(*C);
    VmExecutor Vm(CS);
    Vm.run(EnvVm, 48);
    EXPECT_EQ(formatEvents(EnvNested.outputs()), formatEvents(EnvVm.outputs()))
        << P.Name;
    EXPECT_EQ(Vm.guardTests(), Nested.guardTests()) << P.Name;
    EXPECT_EQ(Vm.executed(), Nested.executed()) << P.Name;
  }
}

TEST(VmExecutor, ResetRestoresInitialState) {
  auto C = compileOk(proc("? integer A; ! integer Y;",
                          "   Y := A + (Y $ 1 init 100)"));
  ScriptedEnvironment Env;
  Env.tickAlways();
  for (unsigned I = 0; I < 3; ++I)
    Env.set("A", I, Value::makeInt(1));
  CompiledStep CS = buildVm(*C);
  VmExecutor Exec(CS);
  Exec.run(Env, 3);
  std::string First = formatEvents(Env.outputs());
  Env.clearOutputs();
  Exec.reset();
  Exec.run(Env, 3);
  EXPECT_EQ(formatEvents(Env.outputs()), First);
}

TEST(VmExecutor, RebindsWhenEnvironmentAddressIsReused) {
  // A loop-local environment is destroyed and the next one typically
  // lands at the same address: the binding cache must key on the
  // environment's identity, not its address, or the second run queries
  // a dead environment's ids (historically an out-of-bounds read).
  auto C = compileOk(proc("? integer A; ! integer Y;", "   Y := A + 1"));
  CompiledStep CS = CompiledStep::build(*C->Kernel, C->Step);
  VmExecutor Exec(CS);
  for (uint64_t Seed = 1; Seed <= 3; ++Seed) {
    RandomEnvironment Env(Seed, 1000);
    RandomEnvironment Ref(Seed, 1000); // fresh executor = known-good path
    Exec.reset();
    Exec.run(Env, 16);
    VmExecutor Fresh(CS);
    Fresh.run(Ref, 16);
    EXPECT_EQ(formatEvents(Env.outputs()), formatEvents(Ref.outputs()))
        << "stale binding after environment address reuse (seed " << Seed
        << ")";
  }
}

TEST(VmExecutor, RebindsWhenEnvironmentChanges) {
  auto C = compileOk(proc("? integer A; ! integer Y;", "   Y := A + 1"));
  CompiledStep CS = buildVm(*C);
  VmExecutor Exec(CS);
  ScriptedEnvironment E1, E2;
  E1.tickAlways();
  E2.tickAlways();
  E1.set("A", 0, Value::makeInt(1));
  E2.set("A", 1, Value::makeInt(41));
  Exec.step(E1, 0);
  Exec.step(E2, 1); // different environment: must rebind, not misroute
  EXPECT_EQ(formatEvents(E1.outputs()), "0 Y=2\n");
  EXPECT_EQ(formatEvents(E2.outputs()), "1 Y=42\n");
}

//===----------------------------------------------------------------------===//
// Instant batching: stepN must be invisible next to step().
//===----------------------------------------------------------------------===//

TEST(VmExecutor, BatchedMatchesSteppedOnBuiltinSuite) {
  // Exact event-sequence identity (not just canonical-trace identity):
  // the batched flush replays outputs in the unbatched order, so the raw
  // recorded vectors must be equal, at every batch/instant phase.
  const unsigned Instants = 53; // deliberately no multiple of any batch
  for (const Figure13Program &P : figure13Suite()) {
    auto C = compileSource("<vmbatch:" + P.Name + ">", P.Source);
    ASSERT_TRUE(C->Ok) << P.Name;
    RandomEnvironment EnvStep(23);
    VmExecutor Stepped(C->Compiled);
    Stepped.run(EnvStep, Instants);
    for (unsigned Batch : {1u, 2u, 7u, 64u}) {
      RandomEnvironment EnvBatch(23);
      VmExecutor Batched(C->Compiled);
      Batched.runBatched(EnvBatch, Instants, Batch);
      EXPECT_EQ(formatEvents(EnvBatch.outputs()),
                formatEvents(EnvStep.outputs()))
          << P.Name << " batch=" << Batch;
      EXPECT_EQ(Batched.guardTests(), Stepped.guardTests())
          << P.Name << " batch=" << Batch;
      EXPECT_EQ(Batched.executed(), Stepped.executed())
          << P.Name << " batch=" << Batch;
    }
  }
}

TEST(VmExecutor, BatchedDelayStateCarriesAcrossWindows) {
  // A delay chain is where a windowing bug (state reset or instant
  // mis-tagging between batches) shows first.
  auto C = compileOk(proc("? integer A; ! integer Y;",
                          "   Y := A + (Y $ 1 init 0)"));
  RandomEnvironment E1(5, 1000), E2(5, 1000);
  VmExecutor Stepped(C->Compiled), Batched(C->Compiled);
  Stepped.run(E1, 20);
  Batched.runBatched(E2, 20, 7);
  EXPECT_EQ(formatEvents(E2.outputs()), formatEvents(E1.outputs()));
}

TEST(VmExecutor, BatchedOutputOrderWithinInstantIsUnbatchedOrder) {
  auto C = compileOk(proc("? integer A; ! integer DBL, SQR;",
                          "   DBL := A * 2\n   | SQR := A * A"));
  RandomEnvironment E1(9, 1000), E2(9, 1000);
  VmExecutor Stepped(C->Compiled), Batched(C->Compiled);
  Stepped.run(E1, 6);
  Batched.stepN(E2, 0, 6);
  // Raw sequences equal — per instant, DBL before SQR on both paths.
  ASSERT_EQ(E1.outputs().size(), E2.outputs().size());
  for (size_t I = 0; I < E1.outputs().size(); ++I)
    EXPECT_TRUE(E1.outputs()[I] == E2.outputs()[I]) << I;
}

//===----------------------------------------------------------------------===//
// Guard-economics regression pin (the Figure-9 effect, satellite task).
//===----------------------------------------------------------------------===//

TEST(VmExecutor, GuardWorkNeverRegressesToFlatLevel) {
  // A deep divider chain with a sparse root: the whole point of the
  // clock hierarchy is that nested/VM skip absent subtrees wholesale.
  ProgramShape Shape;
  Shape.DividerStages = 24;
  auto C = compileOk(generateProgram("CHAIN", Shape));
  const unsigned Instants = 256;

  RandomEnvironment EnvFlat(5, 200), EnvNested(5, 200), EnvVm(5, 200);
  StepExecutor Flat(*C->Kernel, C->Step);
  Flat.run(EnvFlat, Instants, ExecMode::Flat);
  StepExecutor Nested(*C->Kernel, C->Step);
  Nested.run(EnvNested, Instants, ExecMode::Nested);
  CompiledStep CS = buildVm(*C);
  VmExecutor Vm(CS);
  Vm.run(EnvVm, Instants);

  // Identical traces first — the economics are meaningless otherwise.
  EXPECT_EQ(formatEvents(EnvNested.outputs()), formatEvents(EnvFlat.outputs()));
  EXPECT_EQ(formatEvents(EnvVm.outputs()), formatEvents(EnvNested.outputs()));

  // The pins: VM == nested exactly; both well below flat on this shape.
  EXPECT_EQ(Vm.guardTests(), Nested.guardTests());
  EXPECT_EQ(Vm.executed(), Nested.executed());
  EXPECT_LT(Nested.guardTests(), Flat.guardTests() / 2)
      << "nested guard work regressed toward flat-level scanning";
  EXPECT_LT(Vm.guardTests(), Flat.guardTests() / 2)
      << "VM guard work regressed toward flat-level scanning";
  EXPECT_LE(Nested.executed(), Flat.executed());
}

//===----------------------------------------------------------------------===//
// Dispatch strategy: computed goto must be execution-invisible.
//===----------------------------------------------------------------------===//

TEST(VmDispatch, GotoMatchesSwitchOnBuiltinSuite) {
  // Identical raw event sequences AND counters across dispatchers, on
  // both the stepped and the batched path — the direct-threaded loop is
  // a branch-structure change only.
  for (const Figure13Program &P : figure13Suite()) {
    auto C = compileSource("<vmdispatch:" + P.Name + ">", P.Source);
    ASSERT_TRUE(C->Ok) << P.Name;
    RandomEnvironment EnvSwitch(31), EnvGoto(31);
    VmExecutor Sw(C->Compiled), Go(C->Compiled);
    Sw.setDispatch(VmDispatch::Switch);
    Go.setDispatch(VmDispatch::Goto);
    ASSERT_EQ(Sw.dispatch(), VmDispatch::Switch);
    if (VmExecutor::computedGotoAvailable()) {
      ASSERT_EQ(Go.dispatch(), VmDispatch::Goto) << P.Name;
    }
    Sw.run(EnvSwitch, 48);
    Go.run(EnvGoto, 48);
    EXPECT_EQ(formatEvents(EnvGoto.outputs()), formatEvents(EnvSwitch.outputs()))
        << P.Name;
    EXPECT_EQ(Go.guardTests(), Sw.guardTests()) << P.Name;
    EXPECT_EQ(Go.executed(), Sw.executed()) << P.Name;

    RandomEnvironment BatchSwitch(31), BatchGoto(31);
    VmExecutor BSw(C->Compiled), BGo(C->Compiled);
    BSw.setDispatch(VmDispatch::Switch);
    BGo.setDispatch(VmDispatch::Goto);
    BSw.runBatched(BatchSwitch, 48, 7);
    BGo.runBatched(BatchGoto, 48, 7);
    EXPECT_EQ(formatEvents(BatchGoto.outputs()),
              formatEvents(BatchSwitch.outputs()))
        << P.Name << " (batched)";
    EXPECT_EQ(BGo.guardTests(), BSw.guardTests()) << P.Name;
  }
}

TEST(VmDispatch, SwitchOverrideSurvivesResetAndRebind) {
  auto C = compileOk(proc("? integer A; ! integer Y;",
                          "   Y := A + (Y $ 1 init 0)"));
  VmExecutor Exec(C->Compiled);
  Exec.setDispatch(VmDispatch::Switch);
  RandomEnvironment E1(7, 1000);
  Exec.run(E1, 8);
  Exec.reset();
  EXPECT_EQ(Exec.dispatch(), VmDispatch::Switch)
      << "reset() must not reconsider the dispatch choice";
  RandomEnvironment E2(7, 1000);
  Exec.run(E2, 8);
  EXPECT_EQ(formatEvents(E2.outputs()), formatEvents(E1.outputs()));
}
