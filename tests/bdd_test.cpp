//===--- bdd_test.cpp - ROBDD package unit & property tests ---------------===//

#include "bdd/Bdd.h"
#include "bdd/BddDot.h"

#include <gtest/gtest.h>

#include <functional>
#include <random>
#include <set>

using namespace sigc;

namespace {

class BddTest : public ::testing::Test {
protected:
  BddManager M;
};

} // namespace

TEST_F(BddTest, TerminalIdentities) {
  EXPECT_TRUE(M.top().isTrue());
  EXPECT_TRUE(M.bottom().isFalse());
  EXPECT_NE(M.top(), M.bottom());
}

TEST_F(BddTest, VarAndComplement) {
  BddRef X = M.var(0);
  BddRef NX = M.nvar(0);
  EXPECT_EQ(M.apply_not(X), NX);
  EXPECT_EQ(M.apply_not(NX), X);
}

TEST_F(BddTest, CanonicalSharing) {
  // Same function built two ways must be the same node.
  BddRef A = M.var(0), B = M.var(1);
  BddRef F1 = M.apply_or(A, B);
  BddRef F2 = M.apply_not(M.apply_and(M.apply_not(A), M.apply_not(B)));
  EXPECT_EQ(F1, F2) << "De Morgan failed canonicity";
}

TEST_F(BddTest, AndIdentities) {
  BddRef A = M.var(0);
  EXPECT_EQ(M.apply_and(A, M.top()), A);
  EXPECT_EQ(M.apply_and(A, M.bottom()), M.bottom());
  EXPECT_EQ(M.apply_and(A, A), A);
  EXPECT_EQ(M.apply_and(A, M.apply_not(A)), M.bottom());
}

TEST_F(BddTest, OrIdentities) {
  BddRef A = M.var(0);
  EXPECT_EQ(M.apply_or(A, M.bottom()), A);
  EXPECT_EQ(M.apply_or(A, M.top()), M.top());
  EXPECT_EQ(M.apply_or(A, A), A);
  EXPECT_EQ(M.apply_or(A, M.apply_not(A)), M.top());
}

TEST_F(BddTest, DiffSemantics) {
  BddRef A = M.var(0), B = M.var(1);
  BddRef D = M.apply_diff(A, B);
  // A\B == A ∧ ¬B
  EXPECT_EQ(D, M.apply_and(A, M.apply_not(B)));
  EXPECT_EQ(M.apply_diff(A, A), M.bottom());
  EXPECT_EQ(M.apply_diff(A, M.bottom()), A);
}

TEST_F(BddTest, XorIffDuality) {
  BddRef A = M.var(0), B = M.var(1);
  EXPECT_EQ(M.apply_xor(A, B), M.apply_not(M.apply_iff(A, B)));
  EXPECT_EQ(M.apply_xor(A, A), M.bottom());
  EXPECT_EQ(M.apply_iff(A, A), M.top());
}

TEST_F(BddTest, ImpliesIsInclusion) {
  BddRef A = M.var(0), B = M.var(1);
  BddRef AB = M.apply_and(A, B);
  EXPECT_TRUE(M.implies(AB, A));
  EXPECT_TRUE(M.implies(AB, B));
  EXPECT_FALSE(M.implies(A, AB));
  EXPECT_TRUE(M.implies(M.bottom(), A));
  EXPECT_TRUE(M.implies(A, M.top()));
}

TEST_F(BddTest, IteBasis) {
  BddRef A = M.var(0), B = M.var(1), C = M.var(2);
  BddRef F = M.ite(A, B, C);
  // Shannon expansion check against evaluation.
  for (int Bits = 0; Bits < 8; ++Bits) {
    std::vector<bool> Env{(Bits & 1) != 0, (Bits & 2) != 0, (Bits & 4) != 0};
    bool Expect = Env[0] ? Env[1] : Env[2];
    EXPECT_EQ(M.evaluate(F, Env), Expect);
  }
}

TEST_F(BddTest, RestrictCofactors) {
  BddRef A = M.var(0), B = M.var(1);
  BddRef F = M.apply_and(A, B);
  EXPECT_EQ(M.restrict(F, 0, true), B);
  EXPECT_EQ(M.restrict(F, 0, false), M.bottom());
  // Restricting an absent variable is the identity.
  EXPECT_EQ(M.restrict(F, 7, true), F);
}

TEST_F(BddTest, ExistsForall) {
  BddRef A = M.var(0), B = M.var(1);
  BddRef F = M.apply_and(A, B);
  EXPECT_EQ(M.exists(F, 0), B);
  EXPECT_EQ(M.forall(F, 0), M.bottom());
  BddRef G = M.apply_or(A, B);
  EXPECT_EQ(M.exists(G, 0), M.top());
  EXPECT_EQ(M.forall(G, 0), B);
}

TEST_F(BddTest, ExistsMany) {
  BddRef F = M.apply_and(M.var(0), M.apply_and(M.var(1), M.var(2)));
  EXPECT_EQ(M.existsMany(F, {0, 1, 2}), M.top());
  EXPECT_EQ(M.existsMany(F, {0, 1}), M.var(2));
}

TEST_F(BddTest, ComposeSubstitutes) {
  BddRef A = M.var(0), B = M.var(1), C = M.var(2);
  BddRef F = M.apply_or(A, B);
  // F[B := A∧C] = A ∨ (A∧C) = A... no: A ∨ (A∧C) simplifies to A.
  BddRef G = M.compose(F, 1, M.apply_and(A, C));
  EXPECT_EQ(G, A);
  // F[A := C] = C ∨ B.
  EXPECT_EQ(M.compose(F, 0, C), M.apply_or(C, B));
}

TEST_F(BddTest, SupportIsSorted) {
  BddRef F = M.apply_and(M.var(3), M.apply_or(M.var(1), M.var(5)));
  std::vector<BddVar> S = M.support(F);
  ASSERT_EQ(S.size(), 3u);
  EXPECT_EQ(S[0], 1u);
  EXPECT_EQ(S[1], 3u);
  EXPECT_EQ(S[2], 5u);
}

TEST_F(BddTest, SatCount) {
  BddRef A = M.var(0), B = M.var(1);
  EXPECT_DOUBLE_EQ(M.satCount(M.apply_and(A, B), 2), 1.0);
  EXPECT_DOUBLE_EQ(M.satCount(M.apply_or(A, B), 2), 3.0);
  EXPECT_DOUBLE_EQ(M.satCount(M.top(), 2), 4.0);
  EXPECT_DOUBLE_EQ(M.satCount(M.bottom(), 2), 0.0);
  EXPECT_DOUBLE_EQ(M.satCount(M.apply_xor(A, B), 5), 16.0);
}

TEST_F(BddTest, AnySatFindsWitness) {
  BddRef F = M.apply_and(M.var(0), M.apply_not(M.var(2)));
  auto Path = M.anySat(F);
  std::vector<bool> Env(3, false);
  for (auto &[Var, Val] : Path)
    Env[Var] = Val;
  EXPECT_TRUE(M.evaluate(F, Env));
}

TEST_F(BddTest, CountNodes) {
  BddRef A = M.var(0), B = M.var(1);
  EXPECT_EQ(M.countNodes(M.top()), 0u);
  EXPECT_EQ(M.countNodes(A), 1u);
  BddRef F = M.apply_and(A, B);
  EXPECT_EQ(M.countNodes(F), 2u);
  // Shared counting does not double count.
  EXPECT_EQ(M.countNodesMany({F, A}), 3u); // F's two nodes + A's own node.
}

TEST_F(BddTest, CountNodesSharedSubgraph) {
  BddRef A = M.var(0), B = M.var(1);
  BddRef F = M.apply_and(A, B);
  // B's projection node is exactly the inner node of F, so the union is 2.
  EXPECT_EQ(M.countNodesMany({F, M.var(1)}), 2u);
}

TEST_F(BddTest, NodeBudgetYieldsInvalid) {
  Budget Bud(0, 16);
  M.setBudget(&Bud);
  // Build a function that needs far more than 16 nodes.
  BddRef F = M.top();
  for (BddVar V = 0; V < 32; ++V) {
    F = M.apply_and(F, M.apply_xor(M.var(2 * V), M.var(2 * V + 1)));
    if (!F.isValid())
      break;
  }
  EXPECT_FALSE(F.isValid());
  EXPECT_EQ(Bud.verdict(), BudgetVerdict::UnableMem);
}

TEST_F(BddTest, InvalidPropagates) {
  EXPECT_FALSE(M.apply_and(BddRef::invalid(), M.top()).isValid());
  EXPECT_FALSE(M.ite(M.top(), BddRef::invalid(), M.top()).isValid());
  EXPECT_FALSE(M.restrict(BddRef::invalid(), 0, true).isValid());
}

TEST_F(BddTest, DotExportMentionsNodes) {
  BddRef F = M.apply_and(M.var(0), M.var(1));
  std::string Dot = bddToDot(M, {F});
  EXPECT_NE(Dot.find("digraph"), std::string::npos);
  EXPECT_NE(Dot.find("x0"), std::string::npos);
  EXPECT_NE(Dot.find("x1"), std::string::npos);
}

TEST_F(BddTest, DotCustomNames) {
  BddRef F = M.var(0);
  std::string Dot =
      bddToDot(M, {F}, [](BddVar) { return std::string("COND"); });
  EXPECT_NE(Dot.find("COND"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Property tests: random formula pairs, BDD equality ⇔ semantic equality.
//===----------------------------------------------------------------------===//

namespace {

/// A tiny random boolean formula evaluator + BDD builder.
struct Formula {
  // Encoded as a postfix program over N variables.
  enum OpCode { PushVar, Not, And, Or, Xor };
  struct Op {
    OpCode Code;
    unsigned Var = 0;
  };
  std::vector<Op> Code;

  static Formula random(std::mt19937 &Rng, unsigned NumVars, unsigned Size) {
    Formula F;
    unsigned Depth = 0;
    while (F.Code.size() < Size || Depth < 1) {
      unsigned Choice = Rng() % 5;
      if (Depth == 0 || Choice == 0) {
        F.Code.push_back({PushVar, static_cast<unsigned>(Rng() % NumVars)});
        ++Depth;
      } else if (Choice == 1) {
        F.Code.push_back({Not});
      } else if (Depth >= 2) {
        F.Code.push_back({static_cast<OpCode>(2 + Rng() % 3)});
        --Depth;
      } else {
        F.Code.push_back({PushVar, static_cast<unsigned>(Rng() % NumVars)});
        ++Depth;
      }
      if (F.Code.size() > 4 * Size)
        break;
    }
    return F;
  }

  bool eval(const std::vector<bool> &Env) const {
    std::vector<bool> Stack;
    for (const Op &O : Code) {
      switch (O.Code) {
      case PushVar:
        Stack.push_back(Env[O.Var]);
        break;
      case Not:
        Stack.back() = !Stack.back();
        break;
      case And:
      case Or:
      case Xor: {
        bool B = Stack.back();
        Stack.pop_back();
        bool A = Stack.back();
        Stack.back() = O.Code == And ? (A && B) : O.Code == Or ? (A || B)
                                                               : (A != B);
        break;
      }
      }
    }
    bool R = Stack.back();
    return R;
  }

  BddRef build(BddManager &M) const {
    std::vector<BddRef> Stack;
    for (const Op &O : Code) {
      switch (O.Code) {
      case PushVar:
        Stack.push_back(M.var(O.Var));
        break;
      case Not:
        Stack.back() = M.apply_not(Stack.back());
        break;
      case And:
      case Or:
      case Xor: {
        BddRef B = Stack.back();
        Stack.pop_back();
        BddRef A = Stack.back();
        Stack.back() = O.Code == And ? M.apply_and(A, B)
                       : O.Code == Or ? M.apply_or(A, B)
                                      : M.apply_xor(A, B);
        break;
      }
      }
    }
    return Stack.back();
  }
};

class BddPropertyTest : public ::testing::TestWithParam<unsigned> {};

} // namespace

TEST_P(BddPropertyTest, BddMatchesTruthTable) {
  std::mt19937 Rng(GetParam());
  BddManager M;
  constexpr unsigned NumVars = 5;
  Formula F = Formula::random(Rng, NumVars, 12);
  BddRef B = F.build(M);
  for (unsigned Bits = 0; Bits < (1u << NumVars); ++Bits) {
    std::vector<bool> Env;
    for (unsigned V = 0; V < NumVars; ++V)
      Env.push_back((Bits >> V) & 1);
    EXPECT_EQ(M.evaluate(B, Env), F.eval(Env)) << "seed " << GetParam();
  }
}

TEST_P(BddPropertyTest, EqualFunctionsShareNode) {
  std::mt19937 Rng(GetParam() * 7919 + 13);
  BddManager M;
  constexpr unsigned NumVars = 4;
  Formula F = Formula::random(Rng, NumVars, 10);
  Formula G = Formula::random(Rng, NumVars, 10);
  BddRef BF = F.build(M);
  BddRef BG = G.build(M);
  bool SameSemantics = true;
  for (unsigned Bits = 0; Bits < (1u << NumVars); ++Bits) {
    std::vector<bool> Env;
    for (unsigned V = 0; V < NumVars; ++V)
      Env.push_back((Bits >> V) & 1);
    if (F.eval(Env) != G.eval(Env)) {
      SameSemantics = false;
      break;
    }
  }
  EXPECT_EQ(BF == BG, SameSemantics) << "canonicity violated, seed "
                                     << GetParam();
}

TEST_P(BddPropertyTest, QuantifierShannon) {
  // ∃x.F == F|x=0 ∨ F|x=1 and ∀x.F == F|x=0 ∧ F|x=1 for random F.
  std::mt19937 Rng(GetParam() * 31337 + 5);
  BddManager M;
  Formula F = Formula::random(Rng, 5, 14);
  BddRef B = F.build(M);
  for (BddVar V = 0; V < 5; ++V) {
    BddRef E = M.exists(B, V);
    BddRef A = M.forall(B, V);
    EXPECT_EQ(E, M.apply_or(M.restrict(B, V, false), M.restrict(B, V, true)));
    EXPECT_EQ(A, M.apply_and(M.restrict(B, V, false), M.restrict(B, V, true)));
    // ∀x.F ⇒ F ⇒ ∃x.F
    EXPECT_TRUE(M.implies(A, B));
    EXPECT_TRUE(M.implies(B, E));
  }
}

TEST_P(BddPropertyTest, ThenEdgesAreNeverComplemented) {
  // The complement-edge canonical form: only else-edges (and external
  // references) may carry the complement bit. Walk every reachable node of
  // a random BDD and check the stored then-edge is regular.
  std::mt19937 Rng(GetParam() * 48271 + 3);
  BddManager M;
  Formula F = Formula::random(Rng, 6, 16);
  BddRef B = F.build(M);
  std::vector<BddRef> Stack{B.regular()};
  std::set<uint32_t> Seen;
  while (!Stack.empty()) {
    BddRef Cur = Stack.back();
    Stack.pop_back();
    if (Cur.isTerminal() || !Seen.insert(Cur.nodeIndex()).second)
      continue;
    // Cur is regular, so nodeHigh returns the stored then-edge verbatim.
    BddRef High = M.nodeHigh(Cur);
    EXPECT_FALSE(High.isComplement())
        << "complemented then-edge stored, seed " << GetParam();
    Stack.push_back(M.nodeLow(Cur).regular());
    Stack.push_back(High.regular());
  }
}

INSTANTIATE_TEST_SUITE_P(RandomFormulas, BddPropertyTest,
                         ::testing::Range(0u, 24u));

//===----------------------------------------------------------------------===//
// Complement-edge structural properties
//===----------------------------------------------------------------------===//

TEST_F(BddTest, NegationIsFreeAndShared) {
  BddRef F = M.apply_and(M.var(0), M.apply_or(M.var(1), M.nvar(2)));
  uint64_t Before = M.numNodes();
  BddRef NF = M.apply_not(F);
  // ¬ is a complement-bit flip: no allocation, same node, involution.
  EXPECT_EQ(M.numNodes(), Before);
  EXPECT_EQ(NF.nodeIndex(), F.nodeIndex());
  EXPECT_NE(NF, F);
  EXPECT_EQ(M.apply_not(NF), F);
  // F and ¬F share every node.
  EXPECT_EQ(M.countNodes(F), M.countNodes(NF));
  EXPECT_EQ(M.countNodesMany({F, NF}), M.countNodes(F));
}

TEST_F(BddTest, SingleTerminalComplementPair) {
  EXPECT_EQ(M.bottom(), !M.top());
  EXPECT_EQ(M.top().nodeIndex(), M.bottom().nodeIndex());
  EXPECT_EQ(M.numNodes(), 0u);
}

TEST_F(BddTest, ImpliesAllocatesNoNodes) {
  // The inclusion test the forest's hot loops run per candidate parent:
  // an ITE-to-constant check that recurses over existing edges only.
  BddRef F = M.top(), G = M.top();
  for (BddVar V = 0; V < 12; ++V) {
    F = M.apply_and(F, M.apply_or(M.var(2 * V), M.var(2 * V + 1)));
    if (V % 2 == 0)
      G = M.apply_and(G, M.apply_or(M.var(2 * V), M.var(2 * V + 1)));
  }
  uint64_t Before = M.numNodes();
  // Cold queries allocate nothing...
  EXPECT_TRUE(M.implies(F, G));
  EXPECT_FALSE(M.implies(G, F));
  EXPECT_TRUE(M.implies(M.apply_and(F, G), F));
  EXPECT_EQ(M.numNodes(), Before);
  // ...and neither do cache-warm repeats.
  for (int I = 0; I < 100; ++I) {
    EXPECT_TRUE(M.implies(F, G));
    EXPECT_FALSE(M.implies(G, F));
  }
  EXPECT_EQ(M.numNodes(), Before);
}

//===----------------------------------------------------------------------===//
// Regression: op-cache collisions must miss, not corrupt
//===----------------------------------------------------------------------===//

TEST(BddCollisionTest, TinyCacheStaysSound) {
  // Pre-rework, cache entries stored only a mixed 64-bit hash: two triples
  // colliding on the full hash silently returned the wrong BDD. With a
  // 1-entry cache every second operation collides, so any keyed-by-hash
  // bug turns into immediate truth-table mismatches.
  BddManager M;
  M.setCacheCapacityForTesting(1);
  std::mt19937 Rng(20260728);
  constexpr unsigned NumVars = 6;
  for (int Round = 0; Round < 40; ++Round) {
    Formula F = Formula::random(Rng, NumVars, 14);
    BddRef B = F.build(M);
    ASSERT_TRUE(B.isValid());
    for (unsigned Bits = 0; Bits < (1u << NumVars); ++Bits) {
      std::vector<bool> Env;
      for (unsigned V = 0; V < NumVars; ++V)
        Env.push_back((Bits >> V) & 1);
      ASSERT_EQ(M.evaluate(B, Env), F.eval(Env))
          << "round " << Round << " row " << Bits;
    }
  }
  // The tiny cache really did collide; the operand check turned every
  // collision into a miss instead of a wrong result.
  EXPECT_GT(M.cacheCollisions(), 0u);
  EXPECT_GT(M.cacheHits(), 0u);
}

TEST(BddCollisionTest, TinyCacheQuantifiersAndCofactors) {
  BddManager M;
  M.setCacheCapacityForTesting(2);
  std::mt19937 Rng(7);
  constexpr unsigned NumVars = 5;
  for (int Round = 0; Round < 25; ++Round) {
    Formula F = Formula::random(Rng, NumVars, 12);
    BddRef B = F.build(M);
    for (BddVar V = 0; V < NumVars; ++V) {
      BddRef R0 = M.restrict(B, V, false), R1 = M.restrict(B, V, true);
      EXPECT_EQ(M.exists(B, V), M.apply_or(R0, R1));
      EXPECT_EQ(M.forall(B, V), M.apply_and(R0, R1));
    }
  }
  EXPECT_GT(M.cacheCollisions(), 0u);
}

//===----------------------------------------------------------------------===//
// Regression: budget-tripped var() must not skew numVars()
//===----------------------------------------------------------------------===//

TEST(BddBudgetTest, FailedVarDoesNotGrowNumVars) {
  BddManager M;
  Budget Bud(0, 3);
  M.setBudget(&Bud);
  ASSERT_TRUE(M.var(0).isValid());
  ASSERT_TRUE(M.var(1).isValid());
  ASSERT_TRUE(M.var(2).isValid());
  ASSERT_EQ(M.numVars(), 3u);
  // The node budget is now exhausted: the allocation fails and the
  // variable count must not move (pre-fix it jumped to 41 and skewed
  // every later satCount(F, numVars())).
  EXPECT_FALSE(M.var(40).isValid());
  EXPECT_EQ(M.numVars(), 3u);
  EXPECT_FALSE(M.nvar(50).isValid());
  EXPECT_EQ(M.numVars(), 3u);
  EXPECT_EQ(Bud.verdict(), BudgetVerdict::UnableMem);
}

//===----------------------------------------------------------------------===//
// existsMany: descending order, early exit, set semantics
//===----------------------------------------------------------------------===//

TEST_F(BddTest, ExistsManyOrderIndependentWithDuplicates) {
  BddRef F = M.apply_and(M.apply_xor(M.var(0), M.var(3)),
                         M.apply_or(M.var(1), M.nvar(2)));
  std::vector<BddVar> Asc{0, 1, 2, 3};
  std::vector<BddVar> Desc{3, 2, 1, 0};
  std::vector<BddVar> Dup{1, 3, 1, 0, 2, 3};
  BddRef Seq = F;
  for (BddVar V : Asc)
    Seq = M.exists(Seq, V);
  EXPECT_EQ(M.existsMany(F, Asc), Seq);
  EXPECT_EQ(M.existsMany(F, Desc), Seq);
  EXPECT_EQ(M.existsMany(F, Dup), Seq);
}

TEST_F(BddTest, ExistsManyEarlyExitsOnTerminal) {
  BddRef F = M.apply_and(M.var(0), M.var(1));
  // Quantifying the deepest variables first collapses to a terminal before
  // the shallow ones are ever visited; after that no work may happen.
  EXPECT_EQ(M.existsMany(F, {0, 1, 5, 9}), M.top());
  uint64_t Before = M.numNodes();
  EXPECT_EQ(M.existsMany(M.top(), {0, 1, 2, 3}), M.top());
  EXPECT_EQ(M.existsMany(M.bottom(), {0, 1, 2, 3}), M.bottom());
  EXPECT_EQ(M.numNodes(), Before);
}

//===----------------------------------------------------------------------===//
// Randomized truth-table cross-check of every public operation (≤8 vars):
// the safety net of the complement-edge migration.
//===----------------------------------------------------------------------===//

namespace {

class BddOpsCrossCheckTest : public ::testing::TestWithParam<unsigned> {};

/// Brute-force truth table of \p F over \p NumVars variables; row index
/// bit V holds variable V's value.
std::vector<bool> tableOf(const BddManager &M, BddRef F, unsigned NumVars) {
  std::vector<bool> Table;
  Table.reserve(1u << NumVars);
  for (unsigned Bits = 0; Bits < (1u << NumVars); ++Bits) {
    std::vector<bool> Env;
    for (unsigned V = 0; V < NumVars; ++V)
      Env.push_back((Bits >> V) & 1);
    Table.push_back(M.evaluate(F, Env));
  }
  return Table;
}

} // namespace

TEST_P(BddOpsCrossCheckTest, EveryOpMatchesBruteForce) {
  std::mt19937 Rng(GetParam() * 2654435761u + 17);
  BddManager M;
  constexpr unsigned NumVars = 8;
  const unsigned Rows = 1u << NumVars;
  Formula FF = Formula::random(Rng, NumVars, 18);
  Formula GG = Formula::random(Rng, NumVars, 18);
  Formula HH = Formula::random(Rng, NumVars, 12);
  BddRef F = FF.build(M), G = GG.build(M), H = HH.build(M);
  std::vector<bool> TF = tableOf(M, F, NumVars);
  std::vector<bool> TG = tableOf(M, G, NumVars);
  std::vector<bool> TH = tableOf(M, H, NumVars);

  auto check = [&](BddRef R, const std::function<bool(unsigned)> &Expect,
                   const char *Op) {
    ASSERT_TRUE(R.isValid()) << Op;
    std::vector<bool> TR = tableOf(M, R, NumVars);
    for (unsigned I = 0; I < Rows; ++I)
      ASSERT_EQ(TR[I], Expect(I))
          << Op << " mismatch at row " << I << ", seed " << GetParam();
  };

  check(M.apply_and(F, G), [&](unsigned I) { return TF[I] && TG[I]; }, "and");
  check(M.apply_or(F, G), [&](unsigned I) { return TF[I] || TG[I]; }, "or");
  check(M.apply_not(F), [&](unsigned I) { return !TF[I]; }, "not");
  check(M.apply_xor(F, G), [&](unsigned I) { return TF[I] != TG[I]; }, "xor");
  check(M.apply_iff(F, G), [&](unsigned I) { return TF[I] == TG[I]; }, "iff");
  check(M.apply_diff(F, G), [&](unsigned I) { return TF[I] && !TG[I]; },
        "diff");
  check(M.apply_imp(F, G), [&](unsigned I) { return !TF[I] || TG[I]; },
        "imp");
  check(M.ite(F, G, H), [&](unsigned I) { return TF[I] ? TG[I] : TH[I]; },
        "ite");

  BddVar V = static_cast<BddVar>(Rng() % NumVars);
  auto rowWith = [&](unsigned I, bool Val) {
    return Val ? (I | (1u << V)) : (I & ~(1u << V));
  };
  check(M.restrict(F, V, true),
        [&](unsigned I) { return TF[rowWith(I, true)]; }, "restrict1");
  check(M.restrict(F, V, false),
        [&](unsigned I) { return TF[rowWith(I, false)]; }, "restrict0");
  check(M.exists(F, V),
        [&](unsigned I) {
          return TF[rowWith(I, false)] || TF[rowWith(I, true)];
        },
        "exists");
  check(M.forall(F, V),
        [&](unsigned I) {
          return TF[rowWith(I, false)] && TF[rowWith(I, true)];
        },
        "forall");
  check(M.compose(F, V, G),
        [&](unsigned I) { return TF[rowWith(I, TG[I])]; }, "compose");

  // existsMany over a random variable subset, against brute-force
  // quantification over all assignments of the subset.
  std::vector<BddVar> Subset;
  unsigned SubsetMask = 0;
  for (BddVar SV = 0; SV < NumVars; ++SV)
    if (Rng() % 2) {
      Subset.push_back(SV);
      SubsetMask |= 1u << SV;
    }
  check(M.existsMany(F, Subset),
        [&](unsigned I) {
          // Any completion of the non-subset bits of row I satisfies F?
          for (unsigned Sub = SubsetMask;; Sub = (Sub - 1) & SubsetMask) {
            if (TF[(I & ~SubsetMask) | Sub])
              return true;
            if (Sub == 0)
              return false;
          }
        },
        "existsMany");

  // implies and satCount against the same tables.
  bool BruteImp = true, BruteConv = true;
  unsigned Ones = 0;
  for (unsigned I = 0; I < Rows; ++I) {
    BruteImp &= !TF[I] || TG[I];
    BruteConv &= !TG[I] || TF[I];
    Ones += TF[I] ? 1 : 0;
  }
  EXPECT_EQ(M.implies(F, G), BruteImp) << "seed " << GetParam();
  EXPECT_EQ(M.implies(G, F), BruteConv) << "seed " << GetParam();
  EXPECT_DOUBLE_EQ(M.satCount(F, NumVars), static_cast<double>(Ones));

  // anySat returns a genuine witness whenever F is satisfiable.
  if (!F.isFalse()) {
    std::vector<bool> Env(NumVars, false);
    for (auto &[Var, Val] : M.anySat(F))
      Env[Var] = Val;
    EXPECT_TRUE(M.evaluate(F, Env)) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomOpSuites, BddOpsCrossCheckTest,
                         ::testing::Range(0u, 16u));

//===----------------------------------------------------------------------===//
// Garbage collection: the linker's joint clock space opts in, promises
// addRef'd roots, and expects sweeps to reclaim everything else while
// the operation caches forget the dead entries.
//===----------------------------------------------------------------------===//

TEST(BddGcTest, LiveRefsSurviveTheSweepAndGarbageIsReclaimed) {
  BddManager M;
  M.enableGC();
  BddRef A = M.var(0), B = M.var(1), C = M.var(2);
  BddRef F = M.apply_or(M.apply_and(A, B), C);
  M.addRef(F);

  // Unprotected churn: distinct conjunction ladders, dead the moment the
  // next one replaces them.
  std::mt19937 Rng(7);
  for (int I = 0; I < 24; ++I) {
    BddRef T = (Rng() & 1) ? M.var(3 + Rng() % 8) : M.nvar(3 + Rng() % 8);
    for (int K = 0; K < 10; ++K) {
      BddRef V = (Rng() & 1) ? M.var(3 + Rng() % 8) : M.nvar(3 + Rng() % 8);
      T = (Rng() & 1) ? M.apply_and(T, V) : M.apply_or(T, V);
    }
  }

  uint64_t LiveBefore = M.numLiveNodes();
  uint64_t Reclaimed = M.gc();
  EXPECT_GT(Reclaimed, 0u);
  EXPECT_EQ(M.gcRuns(), 1u);
  EXPECT_EQ(M.gcReclaimed(), Reclaimed);
  EXPECT_EQ(M.numLiveNodes(), LiveBefore - Reclaimed);

  // The protected root still computes (x0 & x1) | x2.
  for (unsigned Bits = 0; Bits < 8; ++Bits) {
    std::vector<bool> Env(11, false);
    Env[0] = Bits & 1;
    Env[1] = Bits & 2;
    Env[2] = Bits & 4;
    bool Want = (Env[0] && Env[1]) || Env[2];
    EXPECT_EQ(M.evaluate(F, Env), Want) << "assignment " << Bits;
  }

  // Dropping the last external ref makes the root garbage for the next
  // sweep.
  M.decRef(F);
  EXPECT_GT(M.gc(), 0u);
  EXPECT_EQ(M.gcRuns(), 2u);
}

TEST(BddGcTest, SweepInvalidatesTheOperationCachesNoStaleHits) {
  BddManager M;
  M.enableGC();
  M.setCacheCapacityForTesting(64);
  BddRef A = M.var(0), B = M.var(1);
  BddRef G = M.apply_and(A, B); // Seeds an ite-cache entry.
  (void)G;

  // Everything is unprotected: the sweep frees the nodes for in-place
  // reuse, so any surviving cache entry would hand back an index that
  // now means something else.
  EXPECT_GT(M.gc(), 0u);

  uint64_t Hits = M.cacheHits();
  BddRef A2 = M.var(0), B2 = M.var(1);
  BddRef G2 = M.apply_and(A2, B2);
  EXPECT_EQ(M.cacheHits(), Hits) << "stale ite-cache hit after a sweep";
  for (unsigned Bits = 0; Bits < 4; ++Bits) {
    std::vector<bool> Env(2, false);
    Env[0] = Bits & 1;
    Env[1] = Bits & 2;
    EXPECT_EQ(M.evaluate(G2, Env), Env[0] && Env[1]);
  }
}

TEST(BddGcTest, BudgetPressureTriggersCollectionInsteadOfExhaustion) {
  BddManager M;
  Budget Bud(0, 2000); // Unlimited time, 2000 live nodes.
  Bud.start();
  M.setBudget(&Bud);
  M.enableGC();

  // A small protected working set, verified again after the churn.
  BddRef Keep =
      M.apply_or(M.apply_and(M.var(0), M.var(1)), M.var(2));
  M.addRef(Keep);

  // Churn far more garbage than the node limit. The GC contract: refs a
  // caller needs across a public operation must be addRef'd, because any
  // public entry is a safe collection point.
  auto protectedOp = [&](BddRef F, BddRef G, bool IsAnd) {
    M.addRef(F);
    M.addRef(G);
    BddRef R = IsAnd ? M.apply_and(F, G) : M.apply_or(F, G);
    M.decRef(F);
    M.decRef(G);
    return R;
  };
  std::mt19937 Rng(11);
  for (int I = 0; I < 400; ++I) {
    BddRef T = (Rng() & 1) ? M.var(Rng() % 24) : M.nvar(Rng() % 24);
    for (int K = 0; K < 30 && T.isValid(); ++K) {
      BddRef V = (Rng() & 1) ? M.var(Rng() % 24) : M.nvar(Rng() % 24);
      T = protectedOp(T, V, Rng() & 1);
    }
    ASSERT_TRUE(T.isValid()) << "budget tripped at iteration " << I;
  }

  EXPECT_FALSE(Bud.exhausted());
  EXPECT_EQ(Bud.verdict(), BudgetVerdict::Ok);
  EXPECT_GT(M.gcRuns(), 0u);
  EXPECT_GT(M.gcReclaimed(), 0u);
  EXPECT_LE(M.numLiveNodes(), Bud.nodeLimit());

  for (unsigned Bits = 0; Bits < 8; ++Bits) {
    std::vector<bool> Env(24, false);
    Env[0] = Bits & 1;
    Env[1] = Bits & 2;
    Env[2] = Bits & 4;
    bool Want = (Env[0] && Env[1]) || Env[2];
    EXPECT_EQ(M.evaluate(Keep, Env), Want) << "assignment " << Bits;
  }
}
