//===--- fleet_test.cpp - Fleet-vs-scalar identity pins -------------------===//
///
/// The FleetExecutor's contract is *bit-identical observable behaviour*
/// per instance: running N instances of a program through the SoA
/// lane-block sweep must produce, for every instance, exactly the trace
/// and exactly the guard/executed counters a scalar VmExecutor produces
/// for that instance alone — for every lane-block size, every thread
/// count and every batching window. These tests pin that contract over
/// the Figure-13 builtins; the differential oracle extends it to the
/// random-program sweep.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "interp/FleetExecutor.h"
#include "interp/VmExecutor.h"
#include "programs/Programs.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

using namespace sigc;
using namespace sigc::test;

namespace {

/// Per-instance environment seeds: distinct but deterministic.
uint64_t instanceSeed(uint64_t Base, unsigned Instance) {
  return Base + 1000003ull * Instance;
}

struct ScalarRef {
  std::string Trace;
  uint64_t GuardTests = 0;
  uint64_t Executed = 0;
};

/// The scalar reference: one VmExecutor, one environment, unbatched.
ScalarRef scalarRun(const CompiledStep &CS, uint64_t Seed, unsigned Instants) {
  VmExecutor Exec(CS);
  RandomEnvironment Env(Seed);
  Exec.run(Env, Instants);
  return {formatEvents(Env.outputs()), Exec.guardTests(), Exec.executed()};
}

/// A fleet of per-instance RandomEnvironments over one CompiledStep.
struct Fleet {
  std::vector<std::unique_ptr<RandomEnvironment>> Owned;
  std::vector<Environment *> Envs;
  std::unique_ptr<FleetExecutor> Exec;

  Fleet(const CompiledStep &CS, unsigned Instances, uint64_t BaseSeed,
        FleetExecutor::Config Cfg) {
    for (unsigned J = 0; J < Instances; ++J) {
      Owned.push_back(std::make_unique<RandomEnvironment>(
          instanceSeed(BaseSeed, J)));
      Envs.push_back(Owned.back().get());
    }
    Exec = std::make_unique<FleetExecutor>(CS, Instances, Cfg);
  }

  std::string trace(unsigned Instance) const {
    return formatEvents(Owned[Instance]->outputs());
  }
};

/// Pins a fleet run of \p Instances instances against per-instance
/// scalar references: traces per instance, counters as the sum.
void expectFleetMatchesScalar(const CompiledStep &CS, unsigned Instances,
                              unsigned Instants, uint64_t BaseSeed,
                              FleetExecutor::Config Cfg,
                              const std::string &What) {
  Fleet F(CS, Instances, BaseSeed, Cfg);
  F.Exec->run(F.Envs, Instants);

  uint64_t SumGuards = 0, SumExecuted = 0;
  for (unsigned J = 0; J < Instances; ++J) {
    ScalarRef Ref = scalarRun(CS, instanceSeed(BaseSeed, J), Instants);
    EXPECT_EQ(F.trace(J), Ref.Trace)
        << What << ": instance " << J << " diverged (lane block "
        << Cfg.LaneBlock << ", threads " << Cfg.Threads << ")";
    SumGuards += Ref.GuardTests;
    SumExecuted += Ref.Executed;
  }
  EXPECT_EQ(F.Exec->guardTests(), SumGuards)
      << What << ": guard tests must sum per instance";
  EXPECT_EQ(F.Exec->executed(), SumExecuted)
      << What << ": executed count must sum per instance";
}

} // namespace

TEST(Fleet, MatchesScalarAcrossFigure13Suite) {
  for (const Figure13Program &P : figure13Suite()) {
    auto C = compileOk(P.Source);
    if (!C->Ok)
      continue;
    FleetExecutor::Config Cfg;
    Cfg.LaneBlock = 4;
    expectFleetMatchesScalar(C->Compiled, 5, 40, 0xF13 + P.PaperVariables,
                             Cfg, P.Name);
  }
}

TEST(Fleet, Figure5AlarmEveryLaneBlockSize) {
  auto C = compileOk(alarmFigure5Source());
  for (unsigned Block : {1u, 4u, 64u}) {
    FleetExecutor::Config Cfg;
    Cfg.LaneBlock = Block;
    expectFleetMatchesScalar(C->Compiled, 9, 100, 77, Cfg, "FIG5_ALARM");
  }
}

TEST(Fleet, LaneBlockSizesProduceIdenticalTraces) {
  // The lane grouping is an implementation detail: every block size is
  // pinned against the same scalar reference, so any pair of block sizes
  // is transitively trace-identical.
  ProgramShape Shape;
  Shape.DividerStages = 6;
  Shape.AlarmInstances = 2;
  auto C = compileOk(generateProgram("FLEET_MIX", Shape));
  for (unsigned Block : {1u, 4u, 64u}) {
    FleetExecutor::Config Cfg;
    Cfg.LaneBlock = Block;
    expectFleetMatchesScalar(C->Compiled, 10, 64, 4242, Cfg, "FLEET_MIX");
  }
}

TEST(Fleet, ThreadCountDoesNotChangeTheTrace) {
  // Shards own disjoint instance ranges, scratch and counters; the only
  // post-join step is a deterministic fold. 1, 2 and 5 threads must be
  // observationally identical (and identical to scalar).
  ProgramShape Shape;
  Shape.DividerStages = 8;
  Shape.GridA = 2;
  Shape.GridB = 2;
  auto C = compileOk(generateProgram("FLEET_THREADED", Shape));
  for (unsigned Threads : {1u, 2u, 5u}) {
    FleetExecutor::Config Cfg;
    Cfg.LaneBlock = 4; // 13 instances -> 4 blocks, shards split unevenly.
    Cfg.Threads = Threads;
    expectFleetMatchesScalar(C->Compiled, 13, 48, 99, Cfg, "FLEET_THREADED");
  }
}

TEST(Fleet, WindowedRunsMatchOneWindow) {
  // Delay state is the only carrier across windows; windowed execution
  // (many stepN calls) must equal one big window and the scalar run.
  auto C = compileOk(proc("? integer A; ! integer SUM;",
                          "   SUM := A + (SUM$ init 0)"));
  FleetExecutor::Config Cfg;
  Cfg.LaneBlock = 4;

  Fleet Windowed(C->Compiled, 6, 555, Cfg);
  Windowed.Exec->runBatched(Windowed.Envs, 60, 7);

  Fleet Single(C->Compiled, 6, 555, Cfg);
  Single.Exec->run(Single.Envs, 60);

  for (unsigned J = 0; J < 6; ++J) {
    EXPECT_EQ(Windowed.trace(J), Single.trace(J)) << "instance " << J;
    ScalarRef Ref = scalarRun(C->Compiled, instanceSeed(555, J), 60);
    EXPECT_EQ(Windowed.trace(J), Ref.Trace) << "instance " << J;
  }
  EXPECT_EQ(Windowed.Exec->guardTests(), Single.Exec->guardTests());
  EXPECT_EQ(Windowed.Exec->executed(), Single.Exec->executed());
}

TEST(Fleet, ResetRestoresInitialDelayState) {
  auto C = compileOk(proc("? integer A; ! integer SUM;",
                          "   SUM := A + (SUM$ init 0)"));
  FleetExecutor::Config Cfg;
  Cfg.LaneBlock = 2;
  Fleet F(C->Compiled, 3, 31, Cfg);
  F.Exec->run(F.Envs, 20);
  F.Exec->reset();
  F.Exec->resetCounters();
  for (auto &E : F.Owned)
    E->clearOutputs();

  F.Exec->run(F.Envs, 20);
  for (unsigned J = 0; J < 3; ++J) {
    ScalarRef Ref = scalarRun(C->Compiled, instanceSeed(31, J), 20);
    EXPECT_EQ(F.trace(J), Ref.Trace) << "instance " << J;
  }
}

TEST(Fleet, SingleInstanceFleetIsAScalarRun) {
  // Degenerate fleet: one instance, one lane. Exercises the NB < K path
  // and pins that a fleet of one is indistinguishable from the VM.
  auto C = compileOk(alarmFigure5Source());
  FleetExecutor::Config Cfg;
  Cfg.LaneBlock = 64;
  expectFleetMatchesScalar(C->Compiled, 1, 80, 8, Cfg, "FIG5_ALARM[1]");
}
