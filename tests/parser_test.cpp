//===--- parser_test.cpp --------------------------------------------------===//

#include "ast/AstPrinter.h"
#include "parser/Parser.h"
#include "support/SourceManager.h"

#include <gtest/gtest.h>

using namespace sigc;

namespace {

struct ParseFixture {
  SourceManager SM;
  AstContext Ctx;
  DiagnosticEngine Diags{&SM};

  Expr *expr(const std::string &Text) {
    SourceLoc Start = SM.addBuffer("<expr>", Text);
    Parser P(SM.bufferText(Start), Start, Ctx, Diags);
    return P.parseStandaloneExpr();
  }

  Process *process(const std::string &Text) {
    SourceLoc Start = SM.addBuffer("<proc>", Text);
    Parser P(SM.bufferText(Start), Start, Ctx, Diags);
    return P.parseStandaloneProcess();
  }

  Program *program(const std::string &Text) {
    SourceLoc Start = SM.addBuffer("<prog>", Text);
    Parser P(SM.bufferText(Start), Start, Ctx, Diags);
    return P.parseProgram();
  }

  std::string printed(const std::string &Text) {
    Expr *E = expr(Text);
    if (!E)
      return "<error: " + Diags.render() + ">";
    return printExpr(E, Ctx.interner());
  }
};

} // namespace

TEST(Parser, NameAndLiterals) {
  ParseFixture F;
  EXPECT_EQ(F.printed("X"), "X");
  EXPECT_EQ(F.printed("42"), "42");
  EXPECT_EQ(F.printed("true"), "true");
  EXPECT_EQ(F.printed("false"), "false");
}

TEST(Parser, ArithPrecedence) {
  ParseFixture F;
  EXPECT_EQ(F.printed("a + b * c"), "(a + (b * c))");
  EXPECT_EQ(F.printed("a * b + c"), "((a * b) + c)");
  EXPECT_EQ(F.printed("a - b - c"), "((a - b) - c)");
  EXPECT_EQ(F.printed("a mod b * c"), "((a mod b) * c)");
}

TEST(Parser, UnaryMinusBinds) {
  ParseFixture F;
  EXPECT_EQ(F.printed("-a + b"), "((-a) + b)");
  EXPECT_EQ(F.printed("a * -b"), "(a * (-b))");
}

TEST(Parser, ComparisonAndLogic) {
  ParseFixture F;
  EXPECT_EQ(F.printed("a < b and c"), "((a < b) and c)");
  EXPECT_EQ(F.printed("not a or b"), "((not a) or b)");
  EXPECT_EQ(F.printed("a and b or c and d"), "((a and b) or (c and d))");
  EXPECT_EQ(F.printed("a /= b"), "(a /= b)");
}

TEST(Parser, WhenDefaultPrecedence) {
  ParseFixture F;
  // 'default' binds loosest, then 'when'.
  EXPECT_EQ(F.printed("a default b when c"), "(a default (b when c))");
  EXPECT_EQ(F.printed("a when b default c"), "((a when b) default c)");
  EXPECT_EQ(F.printed("a when b or c"), "(a when (b or c))");
}

TEST(Parser, DefaultIsLeftAssociative) {
  ParseFixture F;
  EXPECT_EQ(F.printed("a default b default c"), "((a default b) default c)");
}

TEST(Parser, WhenChain) {
  ParseFixture F;
  EXPECT_EQ(F.printed("a when b when c"), "((a when b) when c)");
}

TEST(Parser, UnaryWhen) {
  ParseFixture F;
  EXPECT_EQ(F.printed("when c"), "(when c)");
  EXPECT_EQ(F.printed("when not c"), "(when (not c))");
  EXPECT_EQ(F.printed("a default when c"), "(a default (when c))");
}

TEST(Parser, EventOperator) {
  ParseFixture F;
  EXPECT_EQ(F.printed("event X"), "(event X)");
}

TEST(Parser, DelaySyntax) {
  ParseFixture F;
  EXPECT_EQ(F.printed("X $ 1 init 0"), "(X $ 1 init 0)");
  EXPECT_EQ(F.printed("X $ init 5"), "(X $ 1 init 5)");
  EXPECT_EQ(F.printed("X $ 3 init true"), "(X $ 3 init true)");
  EXPECT_EQ(F.printed("X $ 1 init -2"), "(X $ 1 init -2)");
}

TEST(Parser, DelayZeroRejected) {
  ParseFixture F;
  EXPECT_EQ(F.expr("X $ 0 init 0"), nullptr);
  EXPECT_TRUE(F.Diags.hasErrors());
}

TEST(Parser, CellSyntax) {
  ParseFixture F;
  EXPECT_EQ(F.printed("X cell B init 1"), "(X cell B init 1)");
}

TEST(Parser, ParenthesesOverride) {
  ParseFixture F;
  EXPECT_EQ(F.printed("(a default b) when c"), "((a default b) when c)");
  EXPECT_EQ(F.printed("a * (b + c)"), "(a * (b + c))");
}

TEST(Parser, CompositionAndEquations) {
  ParseFixture F;
  Process *P = F.process("(| X := a + b | Y := X when c |)");
  ASSERT_NE(P, nullptr) << F.Diags.render();
  const auto *Comp = cast<CompositionProc>(P);
  ASSERT_EQ(Comp->children().size(), 2u);
  EXPECT_TRUE(isa<EquationProc>(Comp->children()[0]));
  EXPECT_TRUE(isa<EquationProc>(Comp->children()[1]));
}

TEST(Parser, NestedComposition) {
  ParseFixture F;
  Process *P = F.process("(| (| X := a |) | Y := b |)");
  ASSERT_NE(P, nullptr) << F.Diags.render();
  const auto *Comp = cast<CompositionProc>(P);
  ASSERT_EQ(Comp->children().size(), 2u);
  EXPECT_TRUE(isa<CompositionProc>(Comp->children()[0]));
}

TEST(Parser, SynchroList) {
  ParseFixture F;
  Process *P = F.process("(| synchro {X, Y, when C} |)");
  ASSERT_NE(P, nullptr) << F.Diags.render();
  const auto *Comp = cast<CompositionProc>(P);
  const auto *S = cast<SynchroProc>(Comp->children()[0]);
  EXPECT_EQ(S->operands().size(), 3u);
}

TEST(Parser, SynchroNeedsTwoOperands) {
  ParseFixture F;
  EXPECT_EQ(F.process("(| synchro {X} |)"), nullptr);
  EXPECT_TRUE(F.Diags.hasErrors());
}

TEST(Parser, ClockEqualityConstraint) {
  ParseFixture F;
  Process *P = F.process("(| X ^= Y when C |)");
  ASSERT_NE(P, nullptr) << F.Diags.render();
  const auto *Comp = cast<CompositionProc>(P);
  EXPECT_TRUE(isa<ClockEqProc>(Comp->children()[0]));
}

TEST(Parser, FullProcessDecl) {
  ParseFixture F;
  Program *Prog = F.program(R"(
process COUNT =
  ( ? integer IN;
    ! integer OUT; )
  (| OUT := IN + Z
   | Z := OUT $ 1 init 0
  |)
  where integer Z; end;
)");
  ASSERT_NE(Prog, nullptr) << F.Diags.render();
  ASSERT_EQ(Prog->Processes.size(), 1u);
  const ProcessDecl *D = Prog->Processes[0];
  EXPECT_EQ(F.Ctx.interner().spelling(D->Name), "COUNT");
  ASSERT_EQ(D->Signals.size(), 3u);
  EXPECT_EQ(D->Signals[0].Dir, SignalDir::Input);
  EXPECT_EQ(D->Signals[1].Dir, SignalDir::Output);
  EXPECT_EQ(D->Signals[2].Dir, SignalDir::Local);
  EXPECT_EQ(D->Signals[2].Type, TypeKind::Integer);
}

TEST(Parser, MultipleProcesses) {
  ParseFixture F;
  Program *Prog = F.program(
      "process A = ( ? integer X; ! integer Y; ) (| Y := X |);\n"
      "process B = ( ? integer U; ! integer V; ) (| V := U |);\n");
  ASSERT_NE(Prog, nullptr) << F.Diags.render();
  EXPECT_EQ(Prog->Processes.size(), 2u);
  EXPECT_NE(Prog->findProcess(F.Ctx.interner().lookup("B")), nullptr);
}

TEST(Parser, CommaSeparatedDecls) {
  ParseFixture F;
  Program *Prog = F.program("process A = ( ? boolean X, Y, Z; ! boolean W; ) "
                            "(| W := X and Y and Z |);");
  ASSERT_NE(Prog, nullptr) << F.Diags.render();
  EXPECT_EQ(Prog->Processes[0]->Signals.size(), 4u);
}

TEST(Parser, DuplicateDeclRejected) {
  ParseFixture F;
  EXPECT_EQ(F.program("process A = ( ? boolean X, X; ! boolean Y; ) "
                      "(| Y := X |);"),
            nullptr);
  EXPECT_TRUE(F.Diags.hasErrors());
}

TEST(Parser, ErrorMessagesMentionExpectation) {
  ParseFixture F;
  EXPECT_EQ(F.program("process = ( ) (| |);"), nullptr);
  std::string R = F.Diags.render();
  EXPECT_NE(R.find("expected process name"), std::string::npos);
}

TEST(Parser, MissingCompositionClose) {
  ParseFixture F;
  EXPECT_EQ(F.process("(| X := a "), nullptr);
  EXPECT_TRUE(F.Diags.hasErrors());
}

TEST(Parser, EmptyProgramRejected) {
  ParseFixture F;
  EXPECT_EQ(F.program(""), nullptr);
  EXPECT_TRUE(F.Diags.hasErrors());
}

TEST(Parser, EquationRequiresAssignOrClockEq) {
  ParseFixture F;
  EXPECT_EQ(F.process("(| X + Y |)"), nullptr);
  EXPECT_TRUE(F.Diags.hasErrors());
}

TEST(Parser, PaperFigure5Parses) {
  ParseFixture F;
  Program *Prog = F.program(R"(
process ALARM =
  ( ? boolean BRAKE, STOP_OK, LIMIT_REACHED;
    ! boolean ALARM; )
  (| BRAKING_STATE := BRAKING_NEXT_STATE $ 1 init false
   | BRAKING_NEXT_STATE :=
       (true when BRAKE) default (false when STOP_OK) default BRAKING_STATE
   | synchro {when BRAKING_STATE, STOP_OK, LIMIT_REACHED}
   | synchro {when (not BRAKING_STATE), BRAKE}
   | ALARM := LIMIT_REACHED and (not STOP_OK)
  |)
  where boolean BRAKING_STATE, BRAKING_NEXT_STATE; end;
)");
  ASSERT_NE(Prog, nullptr) << F.Diags.render();
  const ProcessDecl *D = Prog->Processes[0];
  EXPECT_EQ(D->Signals.size(), 6u);
  const auto *Body = cast<CompositionProc>(D->Body);
  EXPECT_EQ(Body->children().size(), 5u);
}

TEST(Parser, PrintRoundTripStable) {
  // print(parse(print(parse(text)))) == print(parse(text)).
  ParseFixture F;
  std::string Once = F.printed("a when b default c + d * -e");
  ParseFixture F2;
  std::string Twice = F2.printed(Once);
  EXPECT_EQ(Once, Twice);
}
