//===--- trace_io_test.cpp - Trace format, writer, reader, replay ---------===//
///
/// Tests of the binary trace pipeline:
///   * writer/reader round trips over every signal type, multi-frame
///     traces with a partial last frame, and the empty (zero-instant)
///     trace,
///   * the framing invariant: the bytes a recording produces do not
///     depend on the delivery batch size, and a verified replay echoed
///     through a writer with the same frame capacity is byte-identical,
///   * source equivalence: mmap-backed and buffered-read replay of the
///     same file decode the same trace,
///   * the corrupt-input regression suite: truncated header, bad magic,
///     unsupported version, byteswapped endian mark, header-hash damage,
///     interface mismatch, mid-frame EOF, oversized frame lengths and
///     payload corruption must each produce a positioned diagnostic of
///     the right kind — never UB, never a crash.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "interp/VmExecutor.h"
#include "io/TraceEnvironment.h"
#include "io/TraceReader.h"
#include "io/TraceWriter.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>

using namespace sigc;
using namespace sigc::test;

namespace {

/// A process exercising every wire value encoding: integer, boolean and
/// real inputs; sampled integer, boolean and real outputs.
std::unique_ptr<Compilation> compileMixed() {
  return compileOk(proc("? integer A; boolean C1; real R; "
                        "! integer Y; boolean B; real S;",
                        "   Y := (A + 1) when C1\n"
                        "   | B := not C1\n"
                        "   | S := R * 2.0"));
}

struct Recording {
  std::vector<uint8_t> Bytes;
  std::vector<OutputEvent> Events;
};

/// Records \p Instants instants of \p C under a seeded random environment
/// into an in-memory trace. \p Batch 0 runs unbatched (per-instant
/// queries only); otherwise the run is stepN-batched.
Recording record(const Compilation &C, unsigned Instants, unsigned FrameCap,
                 unsigned Batch, uint64_t Seed = 11) {
  Recording R;
  MemorySink Sink;
  TraceWriter W(Sink, TraceSpec::fromStep(C.Compiled, "P", FrameCap));
  RandomEnvironment Rnd(Seed);
  RecordingEnvironment Rec(Rnd, W);
  VmExecutor Vm(C.Compiled);
  if (Batch == 0)
    Vm.run(Rec, Instants);
  else
    Vm.runBatched(Rec, Instants, Batch);
  EXPECT_TRUE(W.finish(Instants));
  R.Bytes = Sink.takeBytes();
  R.Events = Rnd.outputs();
  return R;
}

/// Replays \p Bytes against \p C through the given source, verifying the
/// recorded outputs, and returns the replayed events.
std::vector<OutputEvent> replayVerified(const Compilation &C,
                                        TraceSource &Src) {
  TraceReader Reader(Src);
  EXPECT_TRUE(Reader.readHeader()) << Reader.error().str();
  EXPECT_TRUE(Reader.matchesStep(C.Compiled)) << Reader.error().str();
  TraceEnvironment Env(Reader);
  Env.setVerifyOutputs(true);
  Env.setCollectOutputs(true);
  VmExecutor Vm(C.Compiled);
  unsigned At = 0;
  for (;;) {
    unsigned N = Env.prepare(At, Env.streamSpec().FrameInstants);
    if (N == 0)
      break;
    Vm.stepN(Env, At, N);
    At += N;
  }
  EXPECT_FALSE(Env.failed()) << Env.error().str();
  EXPECT_TRUE(Env.atEnd());
  EXPECT_EQ(Env.divergence(), "");
  return Env.outputs();
}

/// Parses the header of \p Bytes (which must be valid) and returns its
/// length, i.e. the offset of the first frame.
size_t headerLen(const std::vector<uint8_t> &Bytes) {
  TraceSpec Spec;
  size_t Len = 0;
  TraceError Err;
  EXPECT_TRUE(parseTraceHeader(Bytes.data(), Bytes.size(), Spec, Len, Err))
      << Err.str();
  return Len;
}

/// Writes \p Bytes to a fresh temp file and returns its path.
std::string writeTempTrace(const std::vector<uint8_t> &Bytes) {
  std::string Path = ::testing::TempDir() + "sigc_trace_" +
                     std::to_string(::getpid()) + "_" +
                     std::to_string(::testing::UnitTest::GetInstance()
                                        ->current_test_info()
                                        ->line()) +
                     ".sgtr";
  FILE *F = std::fopen(Path.c_str(), "wb");
  EXPECT_NE(F, nullptr);
  if (!Bytes.empty()) {
    EXPECT_EQ(std::fwrite(Bytes.data(), 1, Bytes.size(), F), Bytes.size());
  }
  std::fclose(F);
  return Path;
}

} // namespace

//===----------------------------------------------------------------------===//
// Round trips
//===----------------------------------------------------------------------===//

TEST(TraceRoundTrip, AllValueTypesSurviveRecordAndReplay) {
  auto C = compileMixed();
  Recording R = record(*C, 40, 8, 8);
  ASSERT_FALSE(R.Events.empty());

  MemoryTraceSource Src(R.Bytes);
  std::vector<OutputEvent> Replayed = replayVerified(*C, Src);
  EXPECT_EQ(Replayed, R.Events);
}

TEST(TraceRoundTrip, PartialLastFrameAndTrailerAccounting) {
  auto C = compileMixed();
  // 21 instants at frame capacity 8: two full frames, one 5-instant
  // partial, then the trailer.
  Recording R = record(*C, 21, 8, 4);

  MemoryTraceSource Src(R.Bytes);
  TraceReader Reader(Src);
  ASSERT_TRUE(Reader.readHeader()) << Reader.error().str();
  EXPECT_EQ(Reader.spec().FrameInstants, 8u);

  TraceFrame F;
  std::vector<std::pair<unsigned, unsigned>> Seen;
  for (;;) {
    TraceFrameStatus St = Reader.nextFrame(F);
    if (St == TraceFrameStatus::End)
      break;
    ASSERT_EQ(St, TraceFrameStatus::Frame) << Reader.error().str();
    Seen.push_back({F.Start, F.Count});
  }
  std::vector<std::pair<unsigned, unsigned>> Expected = {
      {0, 8}, {8, 8}, {16, 5}};
  EXPECT_EQ(Seen, Expected);
  EXPECT_EQ(Reader.totalInstants(), 21u);
  EXPECT_EQ(Reader.offset(), R.Bytes.size()) << "trailer ends the stream";
}

TEST(TraceRoundTrip, ZeroInstantTraceIsHeaderPlusTrailer) {
  auto C = compileMixed();
  Recording R = record(*C, 0, 8, 0);
  EXPECT_TRUE(R.Events.empty());

  MemoryTraceSource Src(R.Bytes);
  TraceReader Reader(Src);
  ASSERT_TRUE(Reader.readHeader()) << Reader.error().str();
  TraceFrame F;
  EXPECT_EQ(Reader.nextFrame(F), TraceFrameStatus::End)
      << Reader.error().str();
  EXPECT_EQ(Reader.totalInstants(), 0u);
}

TEST(TraceRoundTrip, RecordedBytesAreIndependentOfBatchSize) {
  // The writer owns the framing: batched runs delivering windows of 1, 5
  // and 13 instants all fetch the stimulus densely and must produce
  // identical bytes regardless of how the windows land on frame seams.
  auto C = compileMixed();
  Recording Batched1 = record(*C, 30, 8, 1);
  Recording Batched5 = record(*C, 30, 8, 5);
  Recording Batched13 = record(*C, 30, 8, 13);
  EXPECT_EQ(Batched1.Events, Batched5.Events);
  EXPECT_EQ(Batched1.Bytes, Batched5.Bytes)
      << "recorded bytes must not depend on the execution batch size";
  EXPECT_EQ(Batched1.Bytes, Batched13.Bytes);
}

TEST(TraceRoundTrip, UnbatchedRunStillReplaysCorrectly) {
  // A run that never batches records via the per-instant overrides only
  // (absent input instants stay at their defaults); the trace still
  // verifies and replays to the same events.
  auto C = compileMixed();
  Recording R = record(*C, 30, 8, 0);
  MemoryTraceSource Src(R.Bytes);
  std::vector<OutputEvent> Replayed = replayVerified(*C, Src);
  EXPECT_EQ(Replayed, R.Events);
}

TEST(TraceRoundTrip, VerifiedReplayEchoesByteIdenticalTrace) {
  auto C = compileMixed();
  Recording R = record(*C, 50, 8, 8);

  MemoryTraceSource Src(R.Bytes);
  TraceReader Reader(Src);
  ASSERT_TRUE(Reader.readHeader()) << Reader.error().str();
  ASSERT_TRUE(Reader.matchesStep(C->Compiled)) << Reader.error().str();

  MemorySink EchoSink;
  TraceWriter Echo(EchoSink, Reader.spec());
  TraceEnvironment Env(Reader);
  Env.setVerifyOutputs(true);
  Env.setEcho(&Echo);
  VmExecutor Vm(C->Compiled);
  unsigned At = 0;
  // A replay window coprime with the frame capacity: every frame seam is
  // crossed mid-window at least once.
  for (;;) {
    unsigned N = Env.prepare(At, 7);
    if (N == 0)
      break;
    Vm.stepN(Env, At, N);
    At += N;
  }
  ASSERT_FALSE(Env.failed()) << Env.error().str();
  EXPECT_EQ(Env.divergence(), "");
  EXPECT_TRUE(Echo.finish(At));
  EXPECT_EQ(EchoSink.bytes(), R.Bytes)
      << "re-recorded replay must be byte-identical to the original";
}

TEST(TraceRoundTrip, PerInstantReplayEchoesAUsableStream) {
  // A replay driven by the per-instant executor (scalar clockTick /
  // inputValue / writeOutput, never the bulk exchange) must still mirror
  // what it serves into the echo writer: replaying the echoed stream
  // reproduces the original events. Regression for an echo that only
  // hooked the bulk paths and emitted an empty stimulus stream.
  auto C = compileMixed();
  Recording R = record(*C, 24, 8, 8);

  MemoryTraceSource Src(R.Bytes);
  TraceReader Reader(Src);
  ASSERT_TRUE(Reader.readHeader()) << Reader.error().str();
  ASSERT_TRUE(Reader.matchesStep(C->Compiled)) << Reader.error().str();
  MemorySink EchoSink;
  TraceWriter Echo(EchoSink, Reader.spec());
  TraceEnvironment Env(Reader);
  Env.setVerifyOutputs(true);
  Env.setEcho(&Echo);
  ASSERT_EQ(Env.prepare(0, 24), 24u) << Env.error().str();
  VmExecutor Vm(C->Compiled);
  Vm.run(Env, 24); // Per-instant queries only.
  EXPECT_EQ(Env.divergence(), "");
  EXPECT_EQ(Env.outputCount(), R.Events.size());
  ASSERT_TRUE(Echo.finish(24));
  ASSERT_GT(EchoSink.bytes().size(), headerLen(EchoSink.bytes()))
      << "echo must carry frames, not just a header";

  MemoryTraceSource EchoSrc(EchoSink.bytes());
  std::vector<OutputEvent> Replayed = replayVerified(*C, EchoSrc);
  EXPECT_EQ(Replayed, R.Events);
}

TEST(TraceRoundTrip, MmapAndBufferedSourcesDecodeTheSameFile) {
  auto C = compileMixed();
  Recording R = record(*C, 33, 8, 8);
  std::string Path = writeTempTrace(R.Bytes);

  MmapTraceSource Mapped;
  std::string Error;
  ASSERT_TRUE(Mapped.open(Path, Error)) << Error;
  std::vector<OutputEvent> ViaMmap = replayVerified(*C, Mapped);

  // A deliberately tiny buffer forces the buffered source through its
  // compaction and refill paths many times per trace.
  int Fd = FdTraceSource::openFile(Path, Error);
  ASSERT_GE(Fd, 0) << Error;
  FdTraceSource Buffered(Fd, /*OwnsFd=*/true, /*BufSize=*/1);
  std::vector<OutputEvent> ViaRead = replayVerified(*C, Buffered);

  EXPECT_EQ(ViaMmap, R.Events);
  EXPECT_EQ(ViaRead, R.Events);
  ::unlink(Path.c_str());
}

TEST(TraceRoundTrip, MmapSourceRejectsNonRegularFiles) {
  MmapTraceSource Src;
  std::string Error;
  EXPECT_FALSE(Src.open("/dev/null", Error));
  EXPECT_NE(Error.find("not a regular file"), std::string::npos) << Error;
}

//===----------------------------------------------------------------------===//
// Corrupt-input regressions: every damaged stream is a positioned
// diagnostic of the right kind.
//===----------------------------------------------------------------------===//

namespace {

/// Reads the header of \p Bytes and expects it to fail with \p Kind.
TraceError expectHeaderError(const std::vector<uint8_t> &Bytes,
                             TraceErrorKind Kind) {
  MemoryTraceSource Src(Bytes);
  TraceReader Reader(Src);
  EXPECT_FALSE(Reader.readHeader());
  EXPECT_EQ(static_cast<int>(Reader.error().Kind), static_cast<int>(Kind))
      << Reader.error().str();
  return Reader.error();
}

/// Reads the header (expecting success), then expects the first
/// nextFrame walk to fail with \p Kind.
TraceError expectFrameError(const std::vector<uint8_t> &Bytes,
                            TraceErrorKind Kind) {
  MemoryTraceSource Src(Bytes);
  TraceReader Reader(Src);
  EXPECT_TRUE(Reader.readHeader()) << Reader.error().str();
  TraceFrame F;
  TraceFrameStatus St;
  while ((St = Reader.nextFrame(F)) == TraceFrameStatus::Frame)
    ;
  EXPECT_EQ(static_cast<int>(St), static_cast<int>(TraceFrameStatus::Error));
  EXPECT_EQ(static_cast<int>(Reader.error().Kind), static_cast<int>(Kind))
      << Reader.error().str();
  return Reader.error();
}

} // namespace

TEST(TraceCorruption, TruncatedHeaderIsAPositionedTruncation) {
  auto C = compileMixed();
  Recording R = record(*C, 16, 8, 8);
  for (size_t Keep : {size_t(0), size_t(3), size_t(9), headerLen(R.Bytes) - 1}) {
    std::vector<uint8_t> Cut(R.Bytes.begin(), R.Bytes.begin() + Keep);
    TraceError E = expectHeaderError(Cut, TraceErrorKind::Truncated);
    EXPECT_EQ(E.Offset, Keep) << "truncation points at the stream end";
  }
}

TEST(TraceCorruption, BadMagicIsDiagnosedAtOffsetZero) {
  auto C = compileMixed();
  Recording R = record(*C, 8, 8, 8);
  R.Bytes[0] ^= 0xFF;
  TraceError E = expectHeaderError(R.Bytes, TraceErrorKind::BadMagic);
  EXPECT_EQ(E.Offset, 0u);
  EXPECT_NE(E.Message.find("SGTR"), std::string::npos) << E.Message;
}

TEST(TraceCorruption, UnsupportedVersionNamesBothVersions) {
  auto C = compileMixed();
  Recording R = record(*C, 8, 8, 8);
  R.Bytes[4] = 0x63; // version 99
  TraceError E = expectHeaderError(R.Bytes, TraceErrorKind::BadVersion);
  EXPECT_EQ(E.Offset, 4u);
  EXPECT_NE(E.Message.find("99"), std::string::npos) << E.Message;
}

TEST(TraceCorruption, ByteswappedEndianMarkIsDiagnosedNotGuessed) {
  auto C = compileMixed();
  Recording R = record(*C, 8, 8, 8);
  std::swap(R.Bytes[6], R.Bytes[7]);
  TraceError E = expectHeaderError(R.Bytes, TraceErrorKind::BadEndian);
  EXPECT_EQ(E.Offset, 6u);
  EXPECT_NE(E.Message.find("byteswapped"), std::string::npos) << E.Message;
}

TEST(TraceCorruption, DamagedHeaderBytesFailTheInterfaceHash) {
  auto C = compileMixed();
  Recording R = record(*C, 8, 8, 8);
  // Flip one bit inside the process name region; the stored FNV-1a64 no
  // longer matches.
  R.Bytes[12] ^= 0x01;
  TraceError E =
      expectHeaderError(R.Bytes, TraceErrorKind::InterfaceMismatch);
  EXPECT_NE(E.Message.find("hash"), std::string::npos) << E.Message;
}

TEST(TraceCorruption, InterfaceMismatchNamesTheFirstDifference) {
  auto C = compileMixed();
  Recording R = record(*C, 8, 8, 8);
  auto Other = compileOk(proc("? integer A; ! integer Y;", "   Y := A + 1"));
  MemoryTraceSource Src(R.Bytes);
  TraceReader Reader(Src);
  ASSERT_TRUE(Reader.readHeader()) << Reader.error().str();
  EXPECT_FALSE(Reader.matchesStep(Other->Compiled));
  EXPECT_EQ(static_cast<int>(Reader.error().Kind),
            static_cast<int>(TraceErrorKind::InterfaceMismatch));
  EXPECT_NE(Reader.error().Message.find("does not match"), std::string::npos)
      << Reader.error().str();
}

TEST(TraceCorruption, MidFrameEofIsATruncationPastTheHeader) {
  auto C = compileMixed();
  Recording R = record(*C, 16, 8, 8);
  size_t H = headerLen(R.Bytes);
  // Cut inside the first frame: once mid-header, once mid-payload.
  for (size_t Keep : {H + 7, H + TraceFrameHeaderBytes + 3}) {
    std::vector<uint8_t> Cut(R.Bytes.begin(), R.Bytes.begin() + Keep);
    TraceError E = expectFrameError(Cut, TraceErrorKind::Truncated);
    EXPECT_EQ(E.Offset, Keep);
    EXPECT_NE(E.Message.find("stream ends inside"), std::string::npos)
        << E.Message;
  }
}

TEST(TraceCorruption, MissingTrailerIsATruncationNotASilentEnd) {
  auto C = compileMixed();
  Recording R = record(*C, 16, 8, 8);
  // Drop exactly the 16-byte trailer: every data frame is intact, but
  // the stream must not pass as complete.
  std::vector<uint8_t> Cut(R.Bytes.begin(), R.Bytes.end() - 16);
  TraceError E = expectFrameError(Cut, TraceErrorKind::Truncated);
  EXPECT_NE(E.Message.find("no trailer"), std::string::npos) << E.Message;
}

TEST(TraceCorruption, OversizedFrameLengthIsMalformedNotAnAllocation) {
  auto C = compileMixed();
  Recording R = record(*C, 16, 8, 8);
  size_t H = headerLen(R.Bytes);
  // Patch the first frame's payload length to ~2GB. The reader must
  // reject it against the interface's maximum instead of trying to
  // buffer it.
  R.Bytes[H + 0] = 0xFF;
  R.Bytes[H + 1] = 0xFF;
  R.Bytes[H + 2] = 0xFF;
  R.Bytes[H + 3] = 0x7F;
  TraceError E = expectFrameError(R.Bytes, TraceErrorKind::Malformed);
  EXPECT_EQ(E.Offset, H);
  EXPECT_NE(E.Message.find("oversized frame"), std::string::npos)
      << E.Message;
}

TEST(TraceCorruption, FlippedPayloadByteFailsTheChecksum) {
  auto C = compileMixed();
  Recording R = record(*C, 16, 8, 8);
  size_t H = headerLen(R.Bytes);
  R.Bytes[H + TraceFrameHeaderBytes] ^= 0x40;
  TraceError E = expectFrameError(R.Bytes, TraceErrorKind::Corrupt);
  EXPECT_EQ(E.Offset, H + TraceFrameHeaderBytes);
  EXPECT_NE(E.Message.find("checksum"), std::string::npos) << E.Message;
}

TEST(TraceCorruption, OvercountedFrameInstantsAreMalformed) {
  auto C = compileMixed();
  Recording R = record(*C, 16, 8, 8);
  size_t H = headerLen(R.Bytes);
  // Claim 9 instants in a capacity-8 stream.
  R.Bytes[H + 8] = 9;
  TraceError E = expectFrameError(R.Bytes, TraceErrorKind::Malformed);
  EXPECT_NE(E.Message.find("frame capacity"), std::string::npos)
      << E.Message;
}

TEST(TraceCorruption, MidStreamPartialFrameIsMalformedNotAHang) {
  // Two self-consistent 5-instant frames in a capacity-8 stream: each
  // decodes cleanly in isolation and they are contiguous, but a partial
  // frame anywhere except the end of the stream would break the replay
  // window's constant-time frame indexing (release builds would loop
  // forever copying zero instants per round). The second frame's start
  // is not a multiple of the capacity and must be rejected.
  TraceSpec Spec;
  Spec.ProcName = "P";
  Spec.FrameInstants = 8;
  Spec.Clocks.push_back("C");
  std::vector<uint8_t> Bytes = encodeTraceHeader(Spec);
  TraceFrame F;
  F.shape(Spec);
  F.Count = 5;
  F.Start = 0;
  encodeTraceFrame(Spec, F, Bytes);
  F.Start = 5;
  encodeTraceFrame(Spec, F, Bytes);
  encodeTraceTrailer(10, Bytes);

  TraceError E = expectFrameError(Bytes, TraceErrorKind::Malformed);
  EXPECT_NE(E.Message.find("final frame"), std::string::npos) << E.Message;
  EXPECT_NE(E.Message.find("instant 5"), std::string::npos) << E.Message;
}

TEST(TraceCorruption, NonContiguousFrameStartIsMalformed) {
  auto C = compileMixed();
  Recording R = record(*C, 16, 8, 8);
  size_t H = headerLen(R.Bytes);
  // Shift the first frame's start instant: contiguity breaks (and the
  // checksum stays valid, since only the header changed).
  R.Bytes[H + 4] = 3;
  TraceError E = expectFrameError(R.Bytes, TraceErrorKind::Malformed);
  EXPECT_NE(E.Message.find("instant"), std::string::npos) << E.Message;
}
