//===--- solver_test.cpp - The three Figure-13 strategies -----------------===//

#include "TestUtil.h"
#include "solver/CharFunc.h"
#include "solver/Solver.h"

#include <gtest/gtest.h>

using namespace sigc;
using namespace sigc::test;

namespace {

SolveResult runSolver(Compilation &C, SolverKind Kind,
                      Budget Limits = Budget()) {
  auto S = makeSolver(Kind);
  DiagnosticEngine Diags;
  return S->solve(C.Clocks, *C.Kernel, C.names(), Diags, Limits);
}

std::string smallProgram() {
  return proc("? integer A; boolean C1; ! integer Y;",
              "   T := A when C1\n   | Z := T $ 1 init 0\n"
              "   | Y := T + Z",
              "integer T, Z;");
}

} // namespace

TEST(Solver, KindNamesMatchFigure13) {
  EXPECT_STREQ(solverKindName(SolverKind::TreeBdd), "T&BDD");
  EXPECT_NE(std::string(solverKindName(SolverKind::CharFunc))
                .find("characteristic"),
            std::string::npos);
  EXPECT_NE(std::string(solverKindName(SolverKind::Hybrid)).find("T&BDD"),
            std::string::npos);
}

TEST(Solver, AllThreeSolveSmallProgram) {
  auto C = compileOk(smallProgram());
  for (SolverKind K :
       {SolverKind::TreeBdd, SolverKind::CharFunc, SolverKind::Hybrid}) {
    SolveResult R = runSolver(*C, K);
    EXPECT_TRUE(R.ok()) << solverKindName(K);
    EXPECT_GT(R.BddNodes, 0u) << solverKindName(K);
  }
}

TEST(Solver, TreeUsesFewerNodesThanCharFunc) {
  auto C = compileOk(smallProgram());
  SolveResult Tree = runSolver(*C, SolverKind::TreeBdd);
  SolveResult Char = runSolver(*C, SolverKind::CharFunc);
  EXPECT_LT(Tree.BddNodes, Char.BddNodes);
}

TEST(Solver, HybridHasFewerVarsThanCharFunc) {
  auto C = compileOk(smallProgram());
  SolveResult Char = runSolver(*C, SolverKind::CharFunc);
  SolveResult Hyb = runSolver(*C, SolverKind::Hybrid);
  // Equalities were eliminated by the tree pass first.
  EXPECT_LT(Hyb.NumVars, Char.NumVars);
}

TEST(Solver, CharFuncDeterminesDependentVars) {
  auto C = compileOk(smallProgram());
  SolveResult R = runSolver(*C, SolverKind::CharFunc);
  // At least the literals' parents etc. are forced; exact number depends
  // on the encoding, but something must be functionally determined.
  EXPECT_GT(R.DeterminedVars, 0u);
}

TEST(Solver, NodeBudgetProducesUnableMem) {
  auto C = compileOk(smallProgram());
  SolveResult R = runSolver(*C, SolverKind::CharFunc, Budget(0, 32));
  EXPECT_EQ(R.Verdict, BudgetVerdict::UnableMem);
  EXPECT_FALSE(R.ok());
}

TEST(Solver, TreeReportsFreeClocks) {
  auto C = compileOk(smallProgram());
  SolveResult R = runSolver(*C, SolverKind::TreeBdd);
  // ^A and ^C1 are unrelated: two free clocks.
  EXPECT_EQ(R.FreeClocks, 2u);
}

TEST(Solver, TreeStatsPropagated) {
  auto C = compileOk(smallProgram());
  SolveResult R = runSolver(*C, SolverKind::TreeBdd);
  EXPECT_GT(R.TreeStats.BddNodes, 0u);
}

//===----------------------------------------------------------------------===//
// Characteristic-function construction in isolation
//===----------------------------------------------------------------------===//

TEST(CharFunc, EqualConstraint) {
  BddManager M;
  CharConstraint C;
  C.Kind = CharConstraint::Kind::Equal;
  C.V0 = 0;
  C.V1 = 1;
  CharFuncResult R = buildCharFunc(M, 2, {C});
  ASSERT_TRUE(R.Chi.isValid());
  // Exactly assignments 00 and 11.
  EXPECT_DOUBLE_EQ(M.satCount(R.Chi, 2), 2.0);
}

TEST(CharFunc, PartitionConstraint) {
  BddManager M;
  CharConstraint C;
  C.Kind = CharConstraint::Kind::Partition;
  C.V0 = 0; // parent
  C.V1 = 1; // pos
  C.V2 = 2; // neg
  CharFuncResult R = buildCharFunc(M, 3, {C});
  ASSERT_TRUE(R.Chi.isValid());
  // Solutions: parent absent (000) or exactly one literal (110?,101?):
  // (0,0,0), (1,1,0), (1,0,1) — 3 assignments.
  EXPECT_DOUBLE_EQ(M.satCount(R.Chi, 3), 3.0);
}

TEST(CharFunc, EquationConstraintUnion) {
  BddManager M;
  CharConstraint C;
  C.Kind = CharConstraint::Kind::Equation;
  C.Op = ClockOp::Union;
  C.V0 = 0;
  C.V1 = 1;
  C.V2 = 2;
  CharFuncResult R = buildCharFunc(M, 3, {C});
  // v0 ⇔ v1∨v2: 4 satisfying assignments of 8.
  EXPECT_DOUBLE_EQ(M.satCount(R.Chi, 3), 4.0);
}

TEST(CharFunc, ForceOffConstraint) {
  BddManager M;
  CharConstraint C;
  C.Kind = CharConstraint::Kind::ForceOff;
  C.V0 = 1;
  CharFuncResult R = buildCharFunc(M, 2, {C});
  EXPECT_DOUBLE_EQ(M.satCount(R.Chi, 2), 2.0);
}

TEST(CharFunc, AnalyzeCountsForcedVars) {
  BddManager M;
  // v1 ⇔ v0 and v2 ⇔ v0 ∧ v1: v1, v2 determined by v0.
  std::vector<CharConstraint> Cs(2);
  Cs[0].Kind = CharConstraint::Kind::Equal;
  Cs[0].V0 = 1;
  Cs[0].V1 = 0;
  Cs[1].Kind = CharConstraint::Kind::Equation;
  Cs[1].Op = ClockOp::Inter;
  Cs[1].V0 = 2;
  Cs[1].V1 = 0;
  Cs[1].V2 = 1;
  CharFuncResult R = buildCharFunc(M, 3, Cs);
  // v1 and v2 are forced by v0 — and v0 itself is recoverable from v1, so
  // all three are functionally determined by the rest.
  EXPECT_EQ(analyzeCharFunc(M, R.Chi, 3), 3u);
}

TEST(CharFunc, SystemConstraintsCoverEverything) {
  auto C = compileOk(smallProgram());
  std::vector<CharConstraint> Cs = systemConstraints(C->Clocks);
  unsigned Partitions = 0, Equations = 0, Equalities = 0;
  for (const CharConstraint &X : Cs) {
    Partitions += X.Kind == CharConstraint::Kind::Partition;
    Equations += X.Kind == CharConstraint::Kind::Equation;
    Equalities += X.Kind == CharConstraint::Kind::Equal;
  }
  EXPECT_EQ(Partitions, C->Clocks.conditions().size());
  EXPECT_EQ(Equations, C->Clocks.equations().size());
  EXPECT_EQ(Equalities, C->Clocks.equalities().size());
}

TEST(Solver, AgreementOnTemporallyCorrectPrograms) {
  // Every Figure-13 style motif: all three solvers agree the program is
  // consistent (no solver reports a temporal error).
  for (const std::string &Source :
       {smallProgram(),
        proc("? integer A, B; ! integer Y;", "   Y := A default B"),
        proc("? boolean CC; ! integer Y;",
             "   U := 1 when CC\n   | V := 2 when (not CC)\n"
             "   | Y := U default V",
             "integer U, V;")}) {
    auto C = compileOk(Source);
    for (SolverKind K :
         {SolverKind::TreeBdd, SolverKind::CharFunc, SolverKind::Hybrid}) {
      SolveResult R = runSolver(*C, K);
      EXPECT_TRUE(R.ok()) << solverKindName(K) << "\n" << Source;
    }
  }
}
