//===--- lexer_test.cpp ---------------------------------------------------===//

#include "parser/Lexer.h"

#include <gtest/gtest.h>

using namespace sigc;

namespace {

std::vector<TokenKind> kindsOf(const std::string &Text) {
  Lexer L(Text, SourceLoc(0));
  std::vector<TokenKind> Kinds;
  for (const Token &T : L.lexAll())
    Kinds.push_back(T.Kind);
  return Kinds;
}

} // namespace

TEST(Lexer, EmptyInput) {
  EXPECT_EQ(kindsOf(""), std::vector<TokenKind>{TokenKind::Eof});
  EXPECT_EQ(kindsOf("   \n\t "), std::vector<TokenKind>{TokenKind::Eof});
}

TEST(Lexer, CompositionBrackets) {
  auto K = kindsOf("(| X | Y |)");
  std::vector<TokenKind> Expect{TokenKind::LParenBar, TokenKind::Identifier,
                                TokenKind::Bar, TokenKind::Identifier,
                                TokenKind::BarRParen, TokenKind::Eof};
  EXPECT_EQ(K, Expect);
}

TEST(Lexer, ParenVsParenBar) {
  auto K = kindsOf("( (|");
  std::vector<TokenKind> Expect{TokenKind::LParen, TokenKind::LParenBar,
                                TokenKind::Eof};
  EXPECT_EQ(K, Expect);
}

TEST(Lexer, MultiCharOperators) {
  auto K = kindsOf(":= ^= /= <= >=");
  std::vector<TokenKind> Expect{TokenKind::Assign, TokenKind::ClockEq,
                                TokenKind::Ne, TokenKind::Le, TokenKind::Ge,
                                TokenKind::Eof};
  EXPECT_EQ(K, Expect);
}

TEST(Lexer, KeywordsCaseInsensitive) {
  auto K = kindsOf("WHEN when When DEFAULT default");
  for (unsigned I = 0; I < 3; ++I)
    EXPECT_EQ(K[I], TokenKind::KwWhen);
  EXPECT_EQ(K[3], TokenKind::KwDefault);
  EXPECT_EQ(K[4], TokenKind::KwDefault);
}

TEST(Lexer, IdentifiersWithUnderscore) {
  Lexer L("BRAKING_STATE _x x_1", SourceLoc(0));
  auto Tokens = L.lexAll();
  ASSERT_EQ(Tokens.size(), 4u);
  EXPECT_EQ(Tokens[0].Text, "BRAKING_STATE");
  EXPECT_EQ(Tokens[1].Text, "_x");
  EXPECT_EQ(Tokens[2].Text, "x_1");
}

TEST(Lexer, PercentLineComment) {
  auto K = kindsOf("X % this is ignored := |)\nY");
  std::vector<TokenKind> Expect{TokenKind::Identifier, TokenKind::Identifier,
                                TokenKind::Eof};
  EXPECT_EQ(K, Expect);
}

TEST(Lexer, IntegerAndRealLiterals) {
  auto K = kindsOf("42 3.14 1e5 2.5e-3 7");
  std::vector<TokenKind> Expect{TokenKind::IntLiteral, TokenKind::RealLiteral,
                                TokenKind::RealLiteral,
                                TokenKind::RealLiteral, TokenKind::IntLiteral,
                                TokenKind::Eof};
  EXPECT_EQ(K, Expect);
}

TEST(Lexer, DollarAndInit) {
  auto K = kindsOf("X $ 1 init 0");
  std::vector<TokenKind> Expect{TokenKind::Identifier, TokenKind::Dollar,
                                TokenKind::IntLiteral, TokenKind::KwInit,
                                TokenKind::IntLiteral, TokenKind::Eof};
  EXPECT_EQ(K, Expect);
}

TEST(Lexer, SlashVsNe) {
  auto K = kindsOf("a / b /= c");
  std::vector<TokenKind> Expect{TokenKind::Identifier, TokenKind::Slash,
                                TokenKind::Identifier, TokenKind::Ne,
                                TokenKind::Identifier, TokenKind::Eof};
  EXPECT_EQ(K, Expect);
}

TEST(Lexer, ErrorTokenForStray) {
  auto K = kindsOf("#");
  EXPECT_EQ(K[0], TokenKind::Error);
  auto K2 = kindsOf(": x");
  EXPECT_EQ(K2[0], TokenKind::Error);
}

TEST(Lexer, LocationsAdvance) {
  Lexer L("ab cd", SourceLoc(100));
  auto Tokens = L.lexAll();
  EXPECT_EQ(Tokens[0].Loc.offset(), 100u);
  EXPECT_EQ(Tokens[1].Loc.offset(), 103u);
}

TEST(Lexer, DotNotPartOfInteger) {
  // "1." followed by non-digit stays an integer then an error token.
  Lexer L("3 .", SourceLoc(0));
  auto Tokens = L.lexAll();
  EXPECT_EQ(Tokens[0].Kind, TokenKind::IntLiteral);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Error);
}

TEST(Lexer, AllKeywords) {
  auto K = kindsOf("process where end boolean integer real event cell init "
                   "not and or xor mod synchro true false");
  std::vector<TokenKind> Expect{
      TokenKind::KwProcess, TokenKind::KwWhere,   TokenKind::KwEnd,
      TokenKind::KwBoolean, TokenKind::KwInteger, TokenKind::KwReal,
      TokenKind::KwEvent,   TokenKind::KwCell,    TokenKind::KwInit,
      TokenKind::KwNot,     TokenKind::KwAnd,     TokenKind::KwOr,
      TokenKind::KwXor,     TokenKind::KwMod,     TokenKind::KwSynchro,
      TokenKind::KwTrue,    TokenKind::KwFalse,   TokenKind::Eof};
  EXPECT_EQ(K, Expect);
}
