//===--- golden_test.cpp - Golden-file pins of the compiler's dumps -------===//
///
/// Pins the resolved clock forest (--dump-tree), the CompiledStep
/// bytecode (--dump-step), the C emission (--emit-c) and the
/// separate-compilation interface (--dump-interface) of five builtin
/// programs against checked-in golden files under tests/golden/. These
/// are change detectors: any alteration of the hierarchization, the
/// bytecode lowering or the code generator shows up as a readable diff
/// here before the differential suite has to find it dynamically.
///
/// To regenerate after an intentional change, write the new dumps over
/// tests/golden/<NAME>.{tree,step,c,iface}.txt (the test failure message
/// carries the full actual output).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "codegen/CEmitter.h"
#include "link/LinkEmitter.h"
#include "link/Linker.h"
#include "link/ProcessInterface.h"
#include "programs/Programs.h"

#include <gtest/gtest.h>

using namespace sigc;
using namespace sigc::test;

namespace {

/// Names of the pinned Figure-13 programs (FIG5_ALARM is pinned
/// separately; STOPWATCH/WATCH/ALARM dumps are large and churn-prone).
const char *PinnedPrograms[] = {"CHRONO", "SUPERVISOR", "PACE_MAKER",
                                "ROBOT"};

std::string builtinSource(const std::string &Name) {
  if (Name == "FIG5_ALARM")
    return alarmFigure5Source();
  for (const Figure13Program &P : figure13Suite())
    if (P.Name == Name)
      return P.Source;
  ADD_FAILURE() << "unknown builtin " << Name;
  return "";
}

void checkGolden(const std::string &Name) {
  auto C = compileOk(builtinSource(Name));
  if (!C->Ok)
    return;
  const StringInterner &Names = C->names();
  std::string Proc(Names.spelling(C->Decl->Name));

  expectMatchesGolden(C->Forest->dump(C->Clocks, *C->Kernel, Names),
                      "golden/" + Name + ".tree.txt");

  // The single lowered IR (--dump-step): the bytecode both the VM and
  // the C emitter consume.
  expectMatchesGolden(C->Compiled.dump(), "golden/" + Name + ".step.txt");

  expectMatchesGolden(emitC(C->Compiled, Proc, CEmitOptions()),
                      "golden/" + Name + ".c.txt");

  // The separate-compilation interface (--dump-interface): pins the
  // restricted forest shape and the endochrony verdict.
  expectMatchesGolden(extractInterface(*C).dump(),
                      "golden/" + Name + ".iface.txt");
}

} // namespace

TEST(Golden, NormalizeDumpStripsTrailingWhitespace) {
  EXPECT_EQ(normalizeDump("a  \nb\t\r\n\n\nc"), "a\nb\n\n\nc\n");
  EXPECT_EQ(normalizeDump("x\n"), "x\n");
  EXPECT_EQ(normalizeDump(""), "");
}

TEST(Golden, Figure5AlarmTreeAndC) { checkGolden("FIG5_ALARM"); }

class GoldenFigure13 : public ::testing::TestWithParam<const char *> {};

TEST_P(GoldenFigure13, TreeAndC) { checkGolden(GetParam()); }

INSTANTIATE_TEST_SUITE_P(Pinned, GoldenFigure13,
                         ::testing::ValuesIn(PinnedPrograms),
                         [](const auto &Info) {
                           return std::string(Info.param);
                         });

//===----------------------------------------------------------------------===//
// Linked-system pins: the fused schedule (--dump-link) and the linked C
// emission of two builtin compositions. LINKED_PIPELINE is the
// sensor/monitor producer-consumer example; LINKED_FEEDBACK is a
// unit-level cycle whose fused schedule interleaves LOOPA's producer
// half, all of LOOPB, then LOOPA's consumer half — the schedule shape IS
// the feature, so it is pinned. Regenerate with:
//   signalc --link <procs> --dump-link <src>  >  <NAME>.link.txt
//   signalc --link <procs> --emit-c    <src>  >  <NAME>.c.txt
//===----------------------------------------------------------------------===//

namespace {

const char *GoldenSensorSource = R"(
process SENSOR =
  ( ? integer RAW;
    ! integer KEPT, SUM; )
  (| EVENFLAG := (RAW mod 2) = 0
   | KEPT := RAW when EVENFLAG
   | SUM := KEPT + (SUM $ 1 init 0)
  |)
  where
    boolean EVENFLAG;
  end;
)";

const char *GoldenMonitorSource = R"(
process MONITOR =
  ( ? integer KEPT, SUM;
    ! integer TOTAL; boolean ALERT; )
  (| synchro {KEPT, SUM}
   | TOTAL := KEPT + (TOTAL $ 1 init 0)
   | ALERT := SUM > 20
  |);
)";

const char *GoldenLoopASource =
    "process LOOPA = ( ? integer FX, FB; ! integer FA, FC; )"
    " (| FA := (FX + 1) mod 97 | FC := (FB * 2 + 3) mod 97 |);";

const char *GoldenLoopBSource =
    "process LOOPB = ( ? integer FA; ! integer FB; )"
    " (| FB := (FA * 4 + 5) mod 97 |);";

void checkLinkedGolden(const std::string &Name,
                       const std::vector<LinkInput> &Inputs) {
  LinkResult R = compileAndLinkSources(Inputs);
  ASSERT_TRUE(R.Sys) << R.Error;
  expectMatchesGolden(R.Sys->dump() + "fused schedule:\n" +
                          R.Sys->Fused.dump(),
                      "golden/" + Name + ".link.txt");
  expectMatchesGolden(emitLinkedC(*R.Sys, "linked_sys", CEmitOptions()),
                      "golden/" + Name + ".c.txt");
}

} // namespace

TEST(GoldenLinked, PipelineFusedScheduleAndC) {
  checkLinkedGolden("LINKED_PIPELINE", {{"SENSOR", GoldenSensorSource},
                                        {"MONITOR", GoldenMonitorSource}});
}

TEST(GoldenLinked, FeedbackFusedScheduleAndC) {
  checkLinkedGolden("LINKED_FEEDBACK", {{"LOOPA", GoldenLoopASource},
                                        {"LOOPB", GoldenLoopBSource}});
}
