//===--- codegen_test.cpp - Step IR and C emission -------------------------===//

#include "TestUtil.h"
#include "codegen/CEmitter.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>

using namespace sigc;
using namespace sigc::test;

TEST(StepProgram, SlotsAssigned) {
  auto C = compileOk(proc("? integer A; boolean C1; ! integer Y;",
                          "   Y := A when C1"));
  EXPECT_GT(C->Step.NumClockSlots, 0u);
  EXPECT_GT(C->Step.NumValueSlots, 0u);
  // Every live signal has distinct value slots.
  std::vector<int> Seen;
  for (int Slot : C->Step.SignalValueSlot) {
    if (Slot < 0)
      continue;
    EXPECT_EQ(std::count(Seen.begin(), Seen.end(), Slot), 0);
    Seen.push_back(Slot);
  }
}

TEST(StepProgram, DelayHasStateSlot) {
  auto C = compileOk(proc("? integer A; ! integer Y;",
                          "   Y := A $ 1 init 42"));
  ASSERT_EQ(C->Step.StateInit.size(), 1u);
  EXPECT_EQ(C->Step.StateInit[0].Int, 42);
}

TEST(StepProgram, IODescriptors) {
  auto C = compileOk(proc("? integer A; boolean C1; ! integer Y;",
                          "   Y := A when C1"));
  ASSERT_EQ(C->Step.Inputs.size(), 2u);
  ASSERT_EQ(C->Step.Outputs.size(), 1u);
  EXPECT_EQ(C->Step.Outputs[0].Name, "Y");
  // A and C1 are unrelated inputs, so each brings its own free clock.
  EXPECT_EQ(C->Step.ClockInputs.size(), 2u);
}

TEST(StepProgram, GuardsCoveredByNestedBlocks) {
  auto C = compileOk(proc("? integer A; boolean C1; ! integer Y;",
                          "   Y := A when C1"));
  // Walk the nested structure: instrs inside a guarded block must carry
  // exactly that guard (or -1 in the root block for clock computations).
  const StepProgram &SP = C->Step;
  std::function<void(int, int)> Check = [&](int BlockIdx, int Guard) {
    const StepBlock &B = SP.Blocks[BlockIdx];
    for (const StepBlock::Item &It : B.Items) {
      if (It.IsBlock) {
        Check(It.Index, SP.Blocks[It.Index].GuardSlot);
        continue;
      }
      const StepInstr &In = SP.Instrs[It.Index];
      EXPECT_EQ(In.Guard, Guard) << "instruction in wrong block";
    }
  };
  Check(SP.RootBlock, -1);
}

TEST(StepProgram, DumpsAreNonEmpty) {
  auto C = compileOk(proc("? integer A; ! integer Y;", "   Y := A + 1"));
  EXPECT_NE(C->Step.dump().find("eval-func"), std::string::npos);
  EXPECT_NE(C->Step.dumpNested().find("read-clock"), std::string::npos);
}

TEST(CEmitter, SanitizeIdent) {
  EXPECT_EQ(sanitizeIdent("^C"), "ck_C");
  EXPECT_EQ(sanitizeIdent("[C]"), "on_C");
  EXPECT_EQ(sanitizeIdent("[~C]"), "on_not_C");
  EXPECT_EQ(sanitizeIdent("t$1"), "t_1");
  EXPECT_EQ(sanitizeIdent("123"), "x123");
}

TEST(StepProgram, ValueSlotTypesRecorded) {
  auto C = compileOk(proc("? integer A; boolean C1; ! real Y;",
                          "   Y := 0.5 when C1"));
  ASSERT_EQ(C->Step.ValueSlotType.size(),
            static_cast<size_t>(C->Step.NumValueSlots));
  bool SawInt = false, SawReal = false;
  for (TypeKind K : C->Step.ValueSlotType) {
    SawInt |= K == TypeKind::Integer;
    SawReal |= K == TypeKind::Real;
  }
  EXPECT_TRUE(SawInt);
  EXPECT_TRUE(SawReal);
}

namespace {

std::string emit(Compilation &C, bool Driver = false) {
  CEmitOptions O;
  O.WithDriver = Driver;
  return emitC(C.Compiled, "p", O);
}

} // namespace

TEST(CEmitter, GeneratesStepFunction) {
  auto C = compileOk(proc("? integer A; ! integer Y;", "   Y := A * 2"));
  std::string Code = emit(*C);
  EXPECT_NE(Code.find("void p_step(p_state_t *st, const p_in_t *in, "
                      "p_out_t *out)"),
            std::string::npos)
      << Code;
  EXPECT_NE(Code.find("void p_init(p_state_t *st)"), std::string::npos);
  EXPECT_NE(Code.find("out->Y_present = 1"), std::string::npos);
}

TEST(CEmitter, EmitsBatchEntryPoint) {
  auto C = compileOk(proc("? integer A; ! integer Y;", "   Y := A * 2"));
  std::string Code = emit(*C);
  EXPECT_NE(Code.find("void p_step_batch(p_state_t *st, const p_in_t *in, "
                      "p_out_t *out, unsigned n)"),
            std::string::npos)
      << Code;
}

TEST(CEmitter, StructuredIfsMatchSkipInstructionCount) {
  // The emitter reconstructs exactly one `if` per SkipIfAbsent — the
  // bytecode's guard economics carry into the C text one for one.
  auto C = compileOk(proc("? integer A; boolean C1, C2; ! integer Y;",
                          "   T1 := A when C1\n"
                          "   | T2 := T1 when C2\n"
                          "   | Y := T2 + 1",
                          "integer T1, T2;"));
  std::string Code = emit(*C);
  size_t Skips = 0;
  for (const VmInstr &In : C->Compiled.Code)
    Skips += In.Op == VmOp::SkipIfAbsent;
  auto count = [](const std::string &S, const std::string &Needle) {
    size_t N = 0, Pos = 0;
    while ((Pos = S.find(Needle, Pos)) != std::string::npos) {
      ++N;
      Pos += Needle.size();
    }
    return N;
  };
  EXPECT_GT(Skips, 0u);
  // Each skip contributes one guard-counter bump and one if.
  EXPECT_EQ(count(Code, "st->guard_tests += 1ULL;"), Skips) << Code;
  EXPECT_EQ(count(Code, "if (c"), Skips) << Code;
}

TEST(CEmitter, CountersLiveInStateStruct) {
  auto C = compileOk(proc("? integer A; ! integer Y;", "   Y := A + 1"));
  std::string Code = emit(*C);
  EXPECT_NE(Code.find("unsigned long long guard_tests;"), std::string::npos);
  EXPECT_NE(Code.find("unsigned long long executed;"), std::string::npos);
  EXPECT_NE(Code.find("st->guard_tests = 0ULL;"), std::string::npos);
  EXPECT_NE(Code.find("st->executed += "), std::string::npos);
}

TEST(CEmitter, FoldedConstantsAreInlined) {
  // 2 * 3 + 4 folds at bytecode build time; the C must carry the folded
  // literal, not the expression.
  auto C = compileOk(proc("? integer A; ! integer Y;",
                          "   Y := A + (2 * 3 + 4)"));
  std::string Code = emit(*C);
  EXPECT_NE(Code.find("10L"), std::string::npos) << Code;
  EXPECT_EQ(Code.find("2L * 3L"), std::string::npos) << Code;
}

TEST(CEmitter, ScratchSlotsBecomeLocals) {
  // A multi-operator tree needs scratch slots; they surface as locals
  // past the value-slot range.
  auto C = compileOk(proc("? integer A; ! integer Y;",
                          "   Y := (A * A + 1) * (A - 2)"));
  ASSERT_GT(C->Compiled.NumTempSlots, 0u);
  std::string Code = emit(*C);
  std::string TempVar = "v" + std::to_string(C->Compiled.NumValueSlots);
  EXPECT_NE(Code.find("long " + TempVar), std::string::npos) << Code;
}

TEST(CEmitter, DelayStateInStruct) {
  auto C = compileOk(proc("? integer A; ! integer Y;",
                          "   Y := A $ 1 init 5"));
  std::string Code = emit(*C);
  EXPECT_NE(Code.find("long s0;"), std::string::npos) << Code;
  EXPECT_NE(Code.find("st->s0 = 5L;"), std::string::npos) << Code;
}

TEST(CEmitter, DivisionGuardedAgainstZero) {
  auto C = compileOk(proc("? integer A, B; ! integer Y;", "   Y := A / B"));
  std::string Code = emit(*C);
  EXPECT_NE(Code.find("== 0 ? 0L :"), std::string::npos) << Code;
}

TEST(CEmitter, ConstantDivisorFoldsTheGuard) {
  auto C = compileOk(proc("? integer A; ! integer Y;", "   Y := A / 3"));
  std::string Code = emit(*C);
  EXPECT_NE(Code.find("/ 3L"), std::string::npos) << Code;
  EXPECT_EQ(Code.find("== 0 ? 0L :"), std::string::npos) << Code;
}

TEST(CEmitter, NonFiniteFoldedConstantsSpellValidC) {
  // Build-time folding evaluates real arithmetic, so a constant can
  // overflow to infinity; %.17g would print the identifier `inf`, which
  // is not C. The emitter must spell non-finite values as expressions.
  auto C = compileOk(proc("? boolean CC; ! real Y;",
                          "   Y := (1.0e308 + 1.0e308) when CC"));
  std::string Code = emit(*C);
  EXPECT_NE(Code.find("(1.0 / 0.0)"), std::string::npos) << Code;
  EXPECT_EQ(Code.find("= inf"), std::string::npos) << Code;

  std::string Path = ::testing::TempDir() + "signalc_inf_test.c";
  FILE *F = fopen(Path.c_str(), "w");
  ASSERT_NE(F, nullptr);
  fputs(Code.c_str(), F);
  fclose(F);
  EXPECT_EQ(system(("cc -std=c99 -Wall -Werror -o /dev/null -c " + Path +
                    " 2>&1")
                       .c_str()),
            0)
      << Code;
}

TEST(CEmitter, IntegerArithmeticWrapsLikeTheVm) {
  auto C = compileOk(proc("? integer A, B; ! integer Y;", "   Y := A + B"));
  std::string Code = emit(*C);
  EXPECT_NE(Code.find("(long)((unsigned long)"), std::string::npos) << Code;
}

TEST(CEmitter, DriverEmitsMain) {
  auto C = compileOk(proc("? integer A; ! integer Y;", "   Y := A + 1"));
  std::string Code = emit(*C, /*Driver=*/true);
  EXPECT_NE(Code.find("int main(void)"), std::string::npos);
  EXPECT_NE(Code.find("printf"), std::string::npos);
}

TEST(CEmitter, GeneratedCCompilesWithSystemCompiler) {
  auto C = compileOk(proc("? integer A; boolean C1; ! integer Y;",
                          "   T := A when C1\n"
                          "   | Y := T + (T $ 1 init 0)",
                          "integer T;"));
  std::string Code = emit(*C, /*Driver=*/true);
  std::string Path = ::testing::TempDir() + "signalc_emit_test.c";
  FILE *F = fopen(Path.c_str(), "w");
  ASSERT_NE(F, nullptr);
  fputs(Code.c_str(), F);
  fclose(F);
  std::string Cmd = "cc -std=c99 -Wall -Werror -o /dev/null -c " + Path +
                    " 2>&1";
  int Rc = system(Cmd.c_str());
  EXPECT_EQ(Rc, 0) << "generated C does not compile\n" << Code;
}

TEST(CEmitter, BooleanOutputsUseIntType) {
  auto C = compileOk(proc("? boolean A; ! boolean Y;", "   Y := not A"));
  std::string Code = emit(*C);
  EXPECT_NE(Code.find("int Y;"), std::string::npos) << Code;
}

TEST(CEmitter, RealSignalsUseDouble) {
  auto C = compileOk(proc("? real A; ! real Y;", "   Y := A * 2.0"));
  std::string Code = emit(*C);
  EXPECT_NE(Code.find("double"), std::string::npos);
}
