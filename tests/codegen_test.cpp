//===--- codegen_test.cpp - Step IR and C emission -------------------------===//

#include "TestUtil.h"
#include "codegen/CEmitter.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>

using namespace sigc;
using namespace sigc::test;

TEST(StepProgram, SlotsAssigned) {
  auto C = compileOk(proc("? integer A; boolean C1; ! integer Y;",
                          "   Y := A when C1"));
  EXPECT_GT(C->Step.NumClockSlots, 0u);
  EXPECT_GT(C->Step.NumValueSlots, 0u);
  // Every live signal has distinct value slots.
  std::vector<int> Seen;
  for (int Slot : C->Step.SignalValueSlot) {
    if (Slot < 0)
      continue;
    EXPECT_EQ(std::count(Seen.begin(), Seen.end(), Slot), 0);
    Seen.push_back(Slot);
  }
}

TEST(StepProgram, DelayHasStateSlot) {
  auto C = compileOk(proc("? integer A; ! integer Y;",
                          "   Y := A $ 1 init 42"));
  ASSERT_EQ(C->Step.StateInit.size(), 1u);
  EXPECT_EQ(C->Step.StateInit[0].Int, 42);
}

TEST(StepProgram, IODescriptors) {
  auto C = compileOk(proc("? integer A; boolean C1; ! integer Y;",
                          "   Y := A when C1"));
  ASSERT_EQ(C->Step.Inputs.size(), 2u);
  ASSERT_EQ(C->Step.Outputs.size(), 1u);
  EXPECT_EQ(C->Step.Outputs[0].Name, "Y");
  // A and C1 are unrelated inputs, so each brings its own free clock.
  EXPECT_EQ(C->Step.ClockInputs.size(), 2u);
}

TEST(StepProgram, GuardsCoveredByNestedBlocks) {
  auto C = compileOk(proc("? integer A; boolean C1; ! integer Y;",
                          "   Y := A when C1"));
  // Walk the nested structure: instrs inside a guarded block must carry
  // exactly that guard (or -1 in the root block for clock computations).
  const StepProgram &SP = C->Step;
  std::function<void(int, int)> Check = [&](int BlockIdx, int Guard) {
    const StepBlock &B = SP.Blocks[BlockIdx];
    for (const StepBlock::Item &It : B.Items) {
      if (It.IsBlock) {
        Check(It.Index, SP.Blocks[It.Index].GuardSlot);
        continue;
      }
      const StepInstr &In = SP.Instrs[It.Index];
      EXPECT_EQ(In.Guard, Guard) << "instruction in wrong block";
    }
  };
  Check(SP.RootBlock, -1);
}

TEST(StepProgram, DumpsAreNonEmpty) {
  auto C = compileOk(proc("? integer A; ! integer Y;", "   Y := A + 1"));
  EXPECT_NE(C->Step.dump().find("eval-func"), std::string::npos);
  EXPECT_NE(C->Step.dumpNested().find("read-clock"), std::string::npos);
}

TEST(CEmitter, SanitizeIdent) {
  EXPECT_EQ(sanitizeIdent("^C"), "ck_C");
  EXPECT_EQ(sanitizeIdent("[C]"), "on_C");
  EXPECT_EQ(sanitizeIdent("[~C]"), "on_not_C");
  EXPECT_EQ(sanitizeIdent("t$1"), "t_1");
  EXPECT_EQ(sanitizeIdent("123"), "x123");
}

namespace {

std::string emit(Compilation &C, bool Nested, bool Driver = false) {
  CEmitOptions O;
  O.Nested = Nested;
  O.WithDriver = Driver;
  return emitC(*C.Kernel, C.Step, C.names(), "p", O);
}

} // namespace

TEST(CEmitter, GeneratesStepFunction) {
  auto C = compileOk(proc("? integer A; ! integer Y;", "   Y := A * 2"));
  std::string Code = emit(*C, true);
  EXPECT_NE(Code.find("void p_step(p_state_t *st, const p_in_t *in, "
                      "p_out_t *out)"),
            std::string::npos)
      << Code;
  EXPECT_NE(Code.find("void p_init(p_state_t *st)"), std::string::npos);
  EXPECT_NE(Code.find("out->Y_present = 1"), std::string::npos);
}

TEST(CEmitter, NestedUsesBlockStructure) {
  auto C = compileOk(proc("? integer A; boolean C1; ! integer Y;",
                          "   Y := A when C1"));
  std::string Nested = emit(*C, true);
  std::string Flat = emit(*C, false);
  // Flat has one if per guarded statement (single-line bodies), nested
  // opens multi-statement blocks; both must mention the output write.
  EXPECT_NE(Nested.find("if ("), std::string::npos);
  EXPECT_NE(Flat.find("if ("), std::string::npos);
  // Nested form has strictly fewer guard tests in the text.
  auto countIfs = [](const std::string &S) {
    size_t N = 0, Pos = 0;
    while ((Pos = S.find("if (", Pos)) != std::string::npos) {
      ++N;
      Pos += 4;
    }
    return N;
  };
  EXPECT_LT(countIfs(Nested), countIfs(Flat));
}

TEST(CEmitter, DelayStateInStruct) {
  auto C = compileOk(proc("? integer A; ! integer Y;",
                          "   Y := A $ 1 init 5"));
  std::string Code = emit(*C, true);
  EXPECT_NE(Code.find("long s0;"), std::string::npos) << Code;
  EXPECT_NE(Code.find("st->s0 = 5L;"), std::string::npos) << Code;
}

TEST(CEmitter, DivisionGuardedAgainstZero) {
  auto C = compileOk(proc("? integer A, B; ! integer Y;", "   Y := A / B"));
  std::string Code = emit(*C, true);
  EXPECT_NE(Code.find("== 0 ? 0 :"), std::string::npos) << Code;
}

TEST(CEmitter, DriverEmitsMain) {
  auto C = compileOk(proc("? integer A; ! integer Y;", "   Y := A + 1"));
  std::string Code = emit(*C, true, /*Driver=*/true);
  EXPECT_NE(Code.find("int main(void)"), std::string::npos);
  EXPECT_NE(Code.find("printf"), std::string::npos);
}

TEST(CEmitter, GeneratedCCompilesWithSystemCompiler) {
  auto C = compileOk(proc("? integer A; boolean C1; ! integer Y;",
                          "   T := A when C1\n"
                          "   | Y := T + (T $ 1 init 0)",
                          "integer T;"));
  for (bool Nested : {true, false}) {
    std::string Code = emit(*C, Nested, /*Driver=*/true);
    std::string Path = ::testing::TempDir() + "signalc_emit_test.c";
    FILE *F = fopen(Path.c_str(), "w");
    ASSERT_NE(F, nullptr);
    fputs(Code.c_str(), F);
    fclose(F);
    std::string Cmd = "cc -std=c99 -Wall -Werror -o /dev/null -c " + Path +
                      " 2>&1";
    int Rc = system(Cmd.c_str());
    EXPECT_EQ(Rc, 0) << "generated C does not compile (nested=" << Nested
                     << ")\n"
                     << Code;
  }
}

TEST(CEmitter, BooleanOutputsUseIntType) {
  auto C = compileOk(proc("? boolean A; ! boolean Y;", "   Y := not A"));
  std::string Code = emit(*C, true);
  EXPECT_NE(Code.find("int Y;"), std::string::npos) << Code;
}

TEST(CEmitter, RealSignalsUseDouble) {
  auto C = compileOk(proc("? real A; ! real Y;", "   Y := A * 2.0"));
  std::string Code = emit(*C, true);
  EXPECT_NE(Code.find("double"), std::string::npos);
}
