//===--- train_alarm.cpp - The paper's PROCESS_ALARM, narrated ------------===//
///
/// Runs the Figure-5 train alarm through a braking scenario and narrates
/// what the clock calculus achieved: sensors are *sampled only when their
/// value is necessary* — BRAKE while idle, STOP_OK/LIMIT_REACHED while
/// braking — and the pace of sampling (the master clock ĉ) is a free
/// variable the environment provides, exactly as Section 3.3 concludes.
///
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "interp/StepExecutor.h"
#include "programs/Programs.h"

#include <cstdio>

using namespace sigc;

namespace {

/// The scripted story, one entry per instant.
struct Scenario {
  bool Brake;        // sampled while idle
  bool StopOk;       // sampled while braking
  bool LimitReached; // sampled while braking
  const char *Narration;
};

} // namespace

int main() {
  auto C = compileSource("train_alarm.sig", alarmFigure5Source());
  if (!C->Ok) {
    std::fprintf(stderr, "%s", C->Diags.render().c_str());
    return 1;
  }

  std::printf("PROCESS_ALARM — the train alarm of the paper's Figure 5\n\n");
  std::printf("The compiler found %zu free clock(s); the environment "
              "chooses the sampling pace\n(every metre or every "
              "millisecond — not the alarm's business).\n\n",
              C->Forest->freeClocks().size());

  const Scenario Story[] = {
      {false, false, false, "cruising; brakes untouched"},
      {false, false, false, "still cruising"},
      {true, false, false, "driver hits the brakes -> braking state"},
      {false, false, false, "braking; not stopped, limit not reached"},
      {false, false, true, "braking; LIMIT passed while still moving!"},
      {false, true, false, "train finally stops -> back to idle"},
      {false, false, false, "idle again; brake sensor sampled anew"},
  };
  constexpr unsigned N = sizeof(Story) / sizeof(Story[0]);

  ScriptedEnvironment Env;
  Env.tickAlways();
  for (unsigned I = 0; I < N; ++I) {
    Env.set("BRAKE", I, Value::makeBool(Story[I].Brake));
    Env.set("STOP_OK", I, Value::makeBool(Story[I].StopOk));
    Env.set("LIMIT_REACHED", I, Value::makeBool(Story[I].LimitReached));
  }

  StepExecutor Exec(*C->Kernel, C->Step);
  for (unsigned I = 0; I < N; ++I) {
    size_t Before = Env.outputs().size();
    Exec.step(Env, I, ExecMode::Nested);
    std::string AlarmState = "   (alarm silent: not braking)";
    if (Env.outputs().size() > Before) {
      const OutputEvent &E = Env.outputs().back();
      AlarmState = E.Val.asBool() ? ">> ALARM RAISED <<"
                                  : "   alarm checked: ok";
    }
    std::printf("instant %u: %-52s %s\n", I, Story[I].Narration,
                AlarmState.c_str());
  }

  std::printf("\nNote how ALARM only has occurrences while braking: its "
              "clock is [BRAKING_STATE],\na strict subset of the master "
              "clock, derived entirely at compile time.\n");
  return 0;
}
