//===--- stopwatch.cpp - A button-driven chronometer ----------------------===//
///
/// A hand-written stopwatch in the style the paper's evaluation programs
/// hint at: a RUNNING mode toggled by START_STOP, a centisecond counter
/// that only advances while running, and a LAP display frozen with the
/// derived "cell" operator. Demonstrates mode automata, oversampling
/// control and the memorizing cell on a real(istic) device.
///
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "interp/StepExecutor.h"

#include <cstdio>

using namespace sigc;

int main() {
  const char *Source = R"(
% STOPWATCH: TICK is the time base; START_STOP and LAP are buttons
% (booleans sampled on the time base).
process STOPWATCH =
  ( ? integer TICK; boolean START_STOP, LAP;
    ! integer TIME, LAPTIME; )
  (| synchro {TICK, START_STOP, LAP}
   | RUNNING := (not RUNPREV when START_STOP) default RUNPREV
   | RUNPREV := RUNNING $ 1 init false
   | CNT := (CNTPREV + 1) when RUNNING
   | CNTPREV := (CNT default CNTPREV2) $ 1 init 0
   | CNTPREV2 := CNTPREV
   | TIME := CNT
   | LAPTIME := CNT cell LAPHOLD init 0
   | LAPHOLD := LAP
  |)
  where
    boolean RUNNING, RUNPREV, LAPHOLD;
    integer CNT, CNTPREV, CNTPREV2;
  end;
)";

  auto C = compileSource("stopwatch.sig", Source);
  if (!C->Ok) {
    std::fprintf(stderr, "compilation failed (%s):\n%s",
                 C->failedStageName(), C->Diags.render().c_str());
    return 1;
  }
  std::printf("STOPWATCH compiled: %u clock variables resolved into %zu "
              "classes, %zu free clock(s)\n\n",
              C->Clocks.numVars(), C->Forest->dfsOrder().size(),
              C->Forest->freeClocks().size());

  // Scenario: start at 1, stop at 6, query LAP at 7 (while stopped!),
  // restart at 8.
  ScriptedEnvironment Env;
  Env.tickAlways();
  for (unsigned I = 0; I < 10; ++I) {
    Env.set("TICK", I, Value::makeInt(static_cast<int>(I)));
    Env.set("START_STOP", I, Value::makeBool(I == 1 || I == 6 || I == 8));
    Env.set("LAP", I, Value::makeBool(I == 7));
  }

  StepExecutor Exec(*C->Kernel, C->Step);
  std::printf("instant | events\n--------+---------------------------\n");
  for (unsigned I = 0; I < 10; ++I) {
    size_t Before = Env.outputs().size();
    Exec.step(Env, I, ExecMode::Nested);
    std::printf("   %2u   |", I);
    for (size_t K = Before; K < Env.outputs().size(); ++K)
      std::printf(" %s=%s", Env.outputs()[K].Signal.c_str(),
                  Env.outputs()[K].Val.str().c_str());
    std::printf("\n");
  }
  std::printf("\nTIME advances only while running. At instant 7 the watch "
              "is stopped — TIME is\nabsent — yet pressing LAP shows the "
              "memorized count: the 'cell' operator keeps\nthe last value "
              "available at the clock ĉnt v [LAP].\n");
  return 0;
}
