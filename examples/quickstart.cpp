//===--- quickstart.cpp - First contact with the signalc library ----------===//
///
/// Compiles a small SIGNAL process from a string, walks through every
/// artifact the pipeline produces (kernel equations, boolean clock system,
/// resolved clock forest, schedule, step program, generated C), then runs
/// a short simulation. Start here.
///
//===----------------------------------------------------------------------===//

#include "codegen/CEmitter.h"
#include "driver/Driver.h"
#include "interp/StepExecutor.h"

#include <cstdio>

using namespace sigc;

int main() {
  // A rate divider: every other occurrence of IN is accumulated.
  const char *Source = R"(
% HALF: accumulate every other occurrence of IN.
process HALF =
  ( ? integer IN;
    ! integer OUT; )
  (| EVENFLAG := (IN mod 2) = 0        % a condition on IN's clock
   | SAMPLED := IN when EVENFLAG       % present only when the flag is true
   | PREV := OUT $ 1 init 0            % the accumulator's memory
   | OUT := SAMPLED + PREV             % all three share OUT's clock
  |)
  where
    boolean EVENFLAG;
    integer SAMPLED, PREV;
  end;
)";

  auto C = compileSource("quickstart.sig", Source);
  if (!C->Ok) {
    std::fprintf(stderr, "compilation failed (%s):\n%s",
                 C->failedStageName(), C->Diags.render().c_str());
    return 1;
  }

  std::printf("== 1. kernel equations (after lowering) ==\n%s\n",
              C->Kernel->dump(C->names()).c_str());
  std::printf("== 2. boolean clock system (Table 1 of the paper) ==\n%s\n",
              C->Clocks.dump(*C->Kernel, C->names()).c_str());
  std::printf("== 3. resolved clock forest ==\n%s\n",
              C->Forest->dump(C->Clocks, *C->Kernel, C->names()).c_str());
  std::printf("== 4. step program (scheduled, flat view) ==\n%s\n",
              C->Step.dump().c_str());
  std::printf("== 5. step bytecode (the single lowered IR) ==\n%s\n",
              C->Compiled.dump().c_str());

  CEmitOptions Options;
  std::printf("== 6. generated C (lowered from the bytecode) ==\n%s\n",
              emitC(C->Compiled, "half", Options).c_str());

  std::printf("== 7. simulation ==\n");
  // IN = 1, 2, 3, ..., 8 on every instant; only even values accumulate.
  ScriptedEnvironment Env;
  Env.tickAlways();
  for (unsigned I = 0; I < 8; ++I)
    Env.set("IN", I, Value::makeInt(static_cast<int>(I) + 1));
  StepExecutor Exec(*C->Kernel, C->Step);
  Exec.run(Env, 8, ExecMode::Nested);
  std::printf("%s", formatEvents(Env.outputs()).c_str());
  std::printf("(OUT fires at instants with even IN: 2, 2+4=6, 6+6=12, "
              "12+8=20)\n");
  return 0;
}
