//===--- linked_pipeline.cpp - Separate compilation and linking -----------===//
///
/// Two processes, compiled in isolation and composed by the linker:
///
///   SENSOR   reads a raw integer stream, filters it ("when EVENFLAG")
///            and exports the filtered stream plus a running sum,
///   MONITOR  imports both, accumulates the filtered stream and raises
///            a boolean ALERT when the sum crosses a threshold.
///
/// The demo prints each process's clock interface (including the
/// endochrony verdict the paper's arborescent calculus makes decidable),
/// links them — matching SENSOR's exports to MONITOR's imports and
/// discharging MONITOR's "synchro" obligation with a BDD implication on
/// SENSOR's forest — and runs the linked system without ever building a
/// global clock hierarchy.
///
//===----------------------------------------------------------------------===//

#include "interp/LinkedExecutor.h"
#include "link/LinkEmitter.h"
#include "link/Linker.h"

#include <cstdio>

using namespace sigc;

int main() {
  const char *SensorSource = R"(
% SENSOR: filter the raw stream and export the kept values + a sum.
process SENSOR =
  ( ? integer RAW;
    ! integer KEPT, SUM; )
  (| EVENFLAG := (RAW mod 2) = 0
   | KEPT := RAW when EVENFLAG          % exported at a subclock of RAW
   | SUM := KEPT + (SUM $ 1 init 0)     % same clock as KEPT
  |)
  where
    boolean EVENFLAG;
  end;
)";

  const char *MonitorSource = R"(
% MONITOR: consume SENSOR's exports; synchro is an interface obligation
% the linker must prove on SENSOR's clock forest.
process MONITOR =
  ( ? integer KEPT, SUM;
    ! integer TOTAL; boolean ALERT; )
  (| synchro {KEPT, SUM}
   | TOTAL := KEPT + (TOTAL $ 1 init 0)
   | ALERT := SUM > 20
  |);
)";

  // 1. Separate compilation (on worker threads) + interface link.
  LinkResult R = compileAndLinkSources(
      {{"SENSOR", SensorSource}, {"MONITOR", MonitorSource}});
  if (!R.Sys) {
    std::fprintf(stderr, "link failed: %s\n", R.Error.c_str());
    return 1;
  }
  LinkedSystem &Sys = *R.Sys;

  std::printf("== 1. per-process clock interfaces ==\n");
  for (const LinkUnit &U : Sys.Units)
    std::printf("%s", U.Iface.dump().c_str());

  std::printf("\n== 2. the linked system ==\n%s", Sys.dump().c_str());
  std::printf("(no re-resolution: ");
  for (size_t U = 0; U < Sys.Units.size(); ++U)
    std::printf("%s%s kept %llu forest nodes", U ? ", " : "",
                Sys.Units[U].Name.c_str(),
                static_cast<unsigned long long>(Sys.ForestNodesAtLink[U]));
  std::printf(")\n");

  // 3. Run the linked system: RAW = 1..10, every even value flows through
  // the channel into MONITOR.
  std::printf("\n== 3. linked simulation ==\n");
  ScriptedEnvironment Env;
  Env.tickAlways();
  for (unsigned I = 0; I < 10; ++I)
    Env.set("RAW", I, Value::makeInt(static_cast<int>(I) + 1));
  LinkedExecutor Exec(Sys);
  if (!Exec.run(Env, 10)) {
    std::fprintf(stderr, "linked run stopped: %s\n", Exec.error().c_str());
    return 1;
  }
  std::printf("%s", formatEvents(Env.outputs()).c_str());
  std::printf("(TOTAL accumulates KEPT: 2, 6, 12, 20, 30; ALERT fires "
              "once SUM > 20)\n");

  // 4. The linked C emission: one step function per process plus a
  // generated system driver.
  CEmitOptions EO;
  std::string CSource = emitLinkedC(Sys, "pipeline", EO);
  std::printf("\n== 4. linked C emission: %zu bytes, symbols "
              "pipeline_init/pipeline_step/pipeline_step_batch ==\n",
              CSource.size());
  return 0;
}
