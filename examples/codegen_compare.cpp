//===--- codegen_compare.cpp - One lowering, two backends -----------------===//
///
/// Shows the single-lowering pipeline on one process: the CompiledStep
/// bytecode (skip offsets along the clock tree), the C the emitter
/// derives from that same bytecode (structured ifs — code a of the
/// paper's Figure 9), and the guard work the hierarchy saves against the
/// flat one-guard-per-statement structure (code b) on the same random
/// trace.
///
//===----------------------------------------------------------------------===//

#include "codegen/CEmitter.h"
#include "driver/Driver.h"
#include "interp/StepExecutor.h"
#include "interp/VmExecutor.h"

#include <cstdio>

using namespace sigc;

int main() {
  const char *Source = R"(
process FILTERBANK =
  ( ? integer IN;
    ! integer OUT; )
  (| C1 := (IN mod 2) = 0
   | S1 := IN when C1
   | C2 := (S1 mod 2) = 0
   | S2 := S1 when C2
   | C3 := (S2 mod 2) = 0
   | S3 := S2 when C3
   | OUT := S3 + (OUT $ 1 init 0)
  |)
  where boolean C1, C2, C3; integer S1, S2, S3; end;
)";

  auto C = compileSource("filterbank.sig", Source);
  if (!C->Ok) {
    std::fprintf(stderr, "%s", C->Diags.render().c_str());
    return 1;
  }

  std::printf("==== CompiledStep bytecode (the single lowered IR) ====\n%s\n",
              C->Compiled.dump().c_str());
  std::printf("==== generated C: structured ifs from the skip offsets "
              "(code a of Figure 9) ====\n%s\n",
              emitC(C->Compiled, "fb", CEmitOptions()).c_str());

  constexpr unsigned Steps = 100000;
  for (unsigned Permille : {1000, 200}) {
    StepExecutor FlatExec(*C->Kernel, C->Step);
    RandomEnvironment E1(3, Permille);
    FlatExec.run(E1, Steps, ExecMode::Flat);
    VmExecutor Vm(C->Compiled);
    RandomEnvironment E2(3, Permille);
    Vm.run(E2, Steps);
    std::printf("tick density %4u/1000 over %u steps: flat %llu guard "
                "tests, bytecode/C %llu (%.1fx fewer)\n",
                Permille, Steps,
                static_cast<unsigned long long>(FlatExec.guardTests()),
                static_cast<unsigned long long>(Vm.guardTests()),
                static_cast<double>(FlatExec.guardTests()) /
                    static_cast<double>(Vm.guardTests()));
  }
  return 0;
}
