//===--- codegen_compare.cpp - Figure 9 side by side ----------------------===//
///
/// Emits the same compiled process in both control structures — the
/// clock-tree nesting of the paper's "code a" and the flat guards of
/// "code b" (Figure 9) — prints both C sources, and measures the guard
/// work each one does on the same random trace.
///
//===----------------------------------------------------------------------===//

#include "codegen/CEmitter.h"
#include "driver/Driver.h"
#include "interp/StepExecutor.h"

#include <cstdio>

using namespace sigc;

int main() {
  const char *Source = R"(
process FILTERBANK =
  ( ? integer IN;
    ! integer OUT; )
  (| C1 := (IN mod 2) = 0
   | S1 := IN when C1
   | C2 := (S1 mod 2) = 0
   | S2 := S1 when C2
   | C3 := (S2 mod 2) = 0
   | S3 := S2 when C3
   | OUT := S3 + (OUT $ 1 init 0)
  |)
  where boolean C1, C2, C3; integer S1, S2, S3; end;
)";

  auto C = compileSource("filterbank.sig", Source);
  if (!C->Ok) {
    std::fprintf(stderr, "%s", C->Diags.render().c_str());
    return 1;
  }

  CEmitOptions Nested, Flat;
  Nested.Nested = true;
  Flat.Nested = false;
  std::printf("==== code a: nested along the clock tree ====\n%s\n",
              emitC(*C->Kernel, C->Step, C->names(), "fb", Nested).c_str());
  std::printf("==== code b: flat, one guard per statement ====\n%s\n",
              emitC(*C->Kernel, C->Step, C->names(), "fb", Flat).c_str());

  constexpr unsigned Steps = 100000;
  for (unsigned Permille : {1000, 200}) {
    StepExecutor FlatExec(*C->Kernel, C->Step);
    RandomEnvironment E1(3, Permille);
    FlatExec.run(E1, Steps, ExecMode::Flat);
    StepExecutor NestedExec(*C->Kernel, C->Step);
    RandomEnvironment E2(3, Permille);
    NestedExec.run(E2, Steps, ExecMode::Nested);
    std::printf("tick density %4u/1000 over %u steps: flat %llu guard "
                "tests, nested %llu (%.1fx fewer)\n",
                Permille, Steps,
                static_cast<unsigned long long>(FlatExec.guardTests()),
                static_cast<unsigned long long>(NestedExec.guardTests()),
                static_cast<double>(FlatExec.guardTests()) /
                    static_cast<double>(NestedExec.guardTests()));
  }
  return 0;
}
