#!/usr/bin/env python3
"""Smoke-drive a `signalc --serve` socket.

Default mode — `serve_smoke.py SOCKET TRACE [SESSIONS]` — connects N
concurrent sessions to an already-running server, streams the same
recorded stimulus trace into each, strips the 16-byte Hello control
frame off every response, and checks that all sessions got the same
non-empty response bytes (same stimulus => same outputs; the response
carries no timestamps, so byte equality is the right check). CI runs
this against `--serve-limit N` so the server exits on its own and its
per-session teardown lines can be inspected.

Chaos mode — `serve_smoke.py --chaos SIGNALC TRACE [BUILTIN]` — spawns
its own servers and walks the fault-tolerance surface end to end:

  1. kill-and-resume: a session is killed at a frame boundary and
     resumed on a new connection with Resume(token, hash, k); the
     concatenated responses must be byte-identical to an uninterrupted
     run;
  2. stalled-idle: a session that stops sending trips the idle
     deadline, is parked, and resumes byte-identically;
  3. graceful drain: SIGTERM mid-stream finishes resident frames,
     closes with an early trailer, and the server exits 0.
"""

import os
import signal
import socket
import struct
import subprocess
import sys
import threading
import time

HELLO_BYTES = 16
CTRL_MAGIC = b"SGCT"
CTRL_HELLO = 1
FRAME_HEADER_BYTES = 16


def strip_hello(resp):
    """Validates and removes the leading Hello; returns (token, rest)."""
    if len(resp) < HELLO_BYTES or resp[:4] != CTRL_MAGIC:
        sys.exit("serve_smoke: response does not start with a control frame")
    if resp[4] != CTRL_HELLO:
        sys.exit(f"serve_smoke: expected a hello frame, got type {resp[4]}")
    (token,) = struct.unpack_from("<Q", resp, 8)
    return token, resp[HELLO_BYTES:]


def encode_resume(token, iface_hash, instant):
    return CTRL_MAGIC + struct.pack("<BBHQQI", 3, 0, 20, token, iface_hash,
                                    instant)


def header_len(trace):
    """Length of the trace header (offset of the first frame)."""
    at = 10  # magic(4) version(2) endian(2) frame-capacity(2)
    (n,) = struct.unpack_from("<H", trace, at)
    at += 2 + n  # process name
    (clocks,) = struct.unpack_from("<H", trace, at)
    at += 2
    for _ in range(clocks):
        (n,) = struct.unpack_from("<H", trace, at)
        at += 2 + n
    for _ in range(2):  # inputs, then outputs: type byte + name each
        (sigs,) = struct.unpack_from("<H", trace, at)
        at += 2
        for _ in range(sigs):
            (n,) = struct.unpack_from("<H", trace, at + 1)
            at += 3 + n
    return at + 8  # interface hash


def spec_hash(trace):
    """The interface hash: the header's trailing u64."""
    (h,) = struct.unpack_from("<Q", trace, header_len(trace) - 8)
    return h


def prefix_len_through(stream, k):
    """Byte length of header plus every frame covering instants < k."""
    at = header_len(stream)
    while at + FRAME_HEADER_BYTES <= len(stream):
        payload, start, count = struct.unpack_from("<IIH", stream, at)
        if count == 0 or start + count > k:  # trailer or past the cut
            break
        at += FRAME_HEADER_BYTES + payload
    return at


def connect(sock_path, timeout=60):
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    s.settimeout(timeout)
    # The socket file appears on bind, fractionally before listen().
    for _ in range(100):
        try:
            s.connect(sock_path)
            return s
        except (ConnectionRefusedError, FileNotFoundError):
            time.sleep(0.05)
    sys.exit(f"serve_smoke: cannot connect to {sock_path}")


def recv_all(s):
    chunks = []
    while True:
        b = s.recv(65536)
        if not b:
            return b"".join(chunks)
        chunks.append(b)


def recv_exactly(s, n):
    got = b""
    while len(got) < n:
        b = s.recv(n - len(got))
        if not b:
            sys.exit(f"serve_smoke: EOF after {len(got)}/{n} bytes")
        got += b
    return got


def wait_for_socket(sock_path):
    for _ in range(600):
        if os.path.exists(sock_path):
            return
        time.sleep(0.05)
    sys.exit(f"serve_smoke: {sock_path}: server never came up")


#===----------------------------------------------------------------------===//
# Default mode: concurrent identical sessions against a running server
#===----------------------------------------------------------------------===//


def drive(sock_path, stimulus, responses, idx):
    s = connect(sock_path)
    s.sendall(stimulus)
    # Keep our write side open until the server closes: the server
    # treats EOF before the stimulus trailer as a disconnect.
    _token, resp = strip_hello(recv_all(s))
    s.close()
    responses[idx] = resp


def smoke(sock_path, trace_path, sessions):
    with open(trace_path, "rb") as f:
        stimulus = f.read()

    # No probe connection: with --serve-limit every accepted connection
    # counts as a session, so a probe would eat a slot.
    wait_for_socket(sock_path)

    responses = [b""] * sessions
    threads = [
        threading.Thread(target=drive, args=(sock_path, stimulus, responses, i))
        for i in range(sessions)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    if not responses[0]:
        sys.exit("serve_smoke: session 0 got an empty response")
    for i, r in enumerate(responses[1:], start=1):
        if r != responses[0]:
            sys.exit(
                f"serve_smoke: session {i} response differs from session 0 "
                f"({len(r)} vs {len(responses[0])} bytes)"
            )
    print(
        f"serve_smoke: {sessions} session(s), "
        f"{len(responses[0])} response byte(s) each, all identical"
    )


#===----------------------------------------------------------------------===//
# Chaos mode: kill-and-resume, stalled-idle, SIGTERM drain
#===----------------------------------------------------------------------===//


class Server:
    """One scripted `signalc --serve` child with a captured log."""

    def __init__(self, binary, builtin, sock, extra):
        self.sock = sock
        self.log_path = sock + ".log"
        self.log_file = open(self.log_path, "wb")
        self.proc = subprocess.Popen(
            [binary, "--builtin", builtin, "--serve", sock] + extra,
            stderr=self.log_file,
        )
        wait_for_socket(sock)

    def log(self):
        with open(self.log_path, "rb") as f:
            return f.read().decode(errors="replace")

    def wait_log(self, needle, tries=600):
        for _ in range(tries):
            if needle in self.log():
                return
            time.sleep(0.01)
        sys.exit(f"serve_smoke: server log never contained {needle!r}:\n"
                 + self.log())

    def finish(self, expect_exit=0):
        code = self.proc.wait(timeout=60)
        self.log_file.close()
        if code != expect_exit:
            sys.exit(f"serve_smoke: server exited {code}, expected "
                     f"{expect_exit}:\n" + self.log())
        log = self.log()
        os.unlink(self.log_path)
        return log


def full_response(binary, builtin, sock, stimulus):
    """The uninterrupted single-session response (hello stripped)."""
    srv = Server(binary, builtin, sock, ["--serve-limit", "1"])
    c = connect(sock)
    c.sendall(stimulus)
    _token, resp = strip_hello(recv_all(c))
    c.close()
    srv.finish()
    return resp


def chaos_resume(binary, builtin, sock, stimulus, reference, k, stall):
    """Kill (or stall) a session at frame boundary k, then resume it."""
    how = "stall" if stall else "kill"
    extra = ["--max-sessions", "1", "--resume", "2", "--serve-limit", "2"]
    if stall:
        extra += ["--idle-timeout", "150"]
    srv = Server(binary, builtin, sock, extra)

    stim_cut = prefix_len_through(stimulus, k)
    resp_cut = prefix_len_through(reference, k)

    c1 = connect(sock)
    c1.sendall(stimulus[:stim_cut])
    # Reading the response through instant k proves the server executed
    # exactly that far before the interruption.
    token, part1 = strip_hello(recv_exactly(c1, HELLO_BYTES + resp_cut))
    if not stall:
        c1.close()
    srv.wait_log(f"parked at instant {k}")

    c2 = connect(sock)
    c2.sendall(encode_resume(token, spec_hash(stimulus), k))
    c2.sendall(stimulus[:header_len(stimulus)])
    c2.sendall(stimulus[stim_cut:])
    _token2, part2 = strip_hello(recv_all(c2))
    c2.close()
    if stall:
        c1.close()

    if part1 + part2 != reference:
        sys.exit(f"serve_smoke: {how}-and-resume response diverges "
                 f"({len(part1)}+{len(part2)} vs {len(reference)} bytes)")
    log = srv.finish()
    if f"resuming session 0 at instant {k}" not in log:
        sys.exit("serve_smoke: no resume line in:\n" + log)
    print(f"serve_smoke: {how}-and-resume at instant {k} is byte-identical "
          f"({len(reference)} bytes)")


def chaos_drain(binary, builtin, sock, stimulus, k):
    """SIGTERM mid-stream: resident frames finish, exit is 0."""
    srv = Server(binary, builtin, sock, ["--serve-limit", "2"])
    stim_cut = prefix_len_through(stimulus, k)
    c = connect(sock)
    c.sendall(stimulus[:stim_cut])
    recv_exactly(c, HELLO_BYTES)  # admitted
    time.sleep(0.1)  # let the sent frames land before the signal
    srv.proc.send_signal(signal.SIGTERM)
    srv.wait_log("draining:")
    _token, resp = strip_hello_maybe(recv_all(c), already=True)
    c.close()
    log = srv.finish()
    if "(drained)" not in log:
        sys.exit("serve_smoke: no drained teardown in:\n" + log)
    # The early-trailer response must be a whole stream: its trailer
    # (count 0) declares however many instants actually executed.
    if len(resp) < FRAME_HEADER_BYTES:
        sys.exit("serve_smoke: drained response has no trailer")
    payload, _start, count = struct.unpack_from("<IIH", resp,
                                                len(resp) - FRAME_HEADER_BYTES)
    if payload != 0 or count != 0:
        sys.exit("serve_smoke: drained response does not end in a trailer")
    print(f"serve_smoke: drain closed the stream with a trailer after "
          f"{len(resp)} response byte(s), exit 0")


def strip_hello_maybe(resp, already=False):
    """After the Hello was consumed separately, pass bytes through."""
    if already:
        return None, resp
    return strip_hello(resp)


def chaos(binary, trace_path, builtin):
    with open(trace_path, "rb") as f:
        stimulus = f.read()
    frame_w = struct.unpack_from("<H", stimulus, 8)[0]
    tmp = f"/tmp/sigc_chaos_{os.getpid()}"

    reference = full_response(binary, builtin, tmp + "_ref.sock", stimulus)
    if not reference:
        sys.exit("serve_smoke: reference response is empty")

    k = frame_w  # The first frame boundary: one whole frame executed.
    chaos_resume(binary, builtin, tmp + "_kill.sock", stimulus, reference, k,
                 stall=False)
    chaos_resume(binary, builtin, tmp + "_stall.sock", stimulus, reference, k,
                 stall=True)
    chaos_drain(binary, builtin, tmp + "_drain.sock", stimulus, k)
    print("serve_smoke: chaos scenarios all passed")


def main():
    if len(sys.argv) >= 2 and sys.argv[1] == "--chaos":
        if len(sys.argv) < 4:
            sys.exit(__doc__.strip())
        chaos(sys.argv[2], sys.argv[3],
              sys.argv[4] if len(sys.argv) > 4 else "FIG5_ALARM")
        return
    if len(sys.argv) < 3:
        sys.exit(__doc__.strip())
    smoke(sys.argv[1], sys.argv[2],
          int(sys.argv[3]) if len(sys.argv) > 3 else 2)


if __name__ == "__main__":
    main()
