#!/usr/bin/env python3
"""Smoke-drive a running `signalc --serve` socket.

Connects N concurrent sessions, streams the same recorded stimulus
trace into each, reads each response stream to EOF, and checks that
every session got the same non-empty response bytes (same stimulus =>
same outputs; the response carries no timestamps, so byte equality is
the right check). CI runs this against `--serve-limit N` so the server
exits on its own and its per-session teardown lines can be inspected.

Usage: serve_smoke.py SOCKET TRACE [SESSIONS]
"""

import os
import socket
import sys
import threading
import time


def drive(sock_path, stimulus, responses, idx):
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    s.settimeout(60)
    # The socket file appears on bind, fractionally before listen().
    for _ in range(100):
        try:
            s.connect(sock_path)
            break
        except ConnectionRefusedError:
            time.sleep(0.05)
    s.sendall(stimulus)
    # Keep our write side open until the server closes: the server
    # treats EOF before the stimulus trailer as a disconnect.
    chunks = []
    while True:
        b = s.recv(65536)
        if not b:
            break
        chunks.append(b)
    s.close()
    responses[idx] = b"".join(chunks)


def main():
    if len(sys.argv) < 3:
        sys.exit(__doc__.strip())
    sock_path, trace_path = sys.argv[1], sys.argv[2]
    sessions = int(sys.argv[3]) if len(sys.argv) > 3 else 2

    with open(trace_path, "rb") as f:
        stimulus = f.read()

    # The server is started in the background; wait for the socket file.
    # No probe connection: with --serve-limit every accepted connection
    # counts as a session, so a probe would eat a slot.
    for _ in range(600):
        if os.path.exists(sock_path):
            break
        time.sleep(0.05)
    else:
        sys.exit(f"serve_smoke: {sock_path}: server never came up")

    responses = [b""] * sessions
    threads = [
        threading.Thread(target=drive, args=(sock_path, stimulus, responses, i))
        for i in range(sessions)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    if not responses[0]:
        sys.exit("serve_smoke: session 0 got an empty response")
    for i, r in enumerate(responses[1:], start=1):
        if r != responses[0]:
            sys.exit(
                f"serve_smoke: session {i} response differs from session 0 "
                f"({len(r)} vs {len(responses[0])} bytes)"
            )
    print(
        f"serve_smoke: {sessions} session(s), "
        f"{len(responses[0])} response byte(s) each, all identical"
    )


if __name__ == "__main__":
    main()
