//===--- bench_bdd.cpp - BDD substrate micro-benchmarks -------------------===//
///
/// Two purposes:
///   * raw throughput of the ROBDD package (ITE chains, unique-table
///     pressure), to document the substrate the clock calculus rests on;
///   * the blow-up mechanism behind Figure 13: the characteristic function
///     of a "sampling grid" clock system grows steeply with the grid edge,
///     while the sum of the per-clock BDDs the tree keeps grows linearly.
///
//===----------------------------------------------------------------------===//

#include "bdd/Bdd.h"
#include "solver/CharFunc.h"

#include <benchmark/benchmark.h>

using namespace sigc;

namespace {

void BM_IteChain(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    BddManager M;
    BddRef F = M.top();
    for (unsigned I = 0; I < N; ++I)
      F = M.apply_and(F, M.apply_or(M.var(2 * I), M.var(2 * I + 1)));
    benchmark::DoNotOptimize(F.index());
  }
  State.SetItemsProcessed(State.iterations() * N);
}

void BM_XorLadder(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    BddManager M;
    BddRef F = M.bottom();
    for (unsigned I = 0; I < N; ++I)
      F = M.apply_xor(F, M.var(I));
    benchmark::DoNotOptimize(F.index());
  }
  State.SetItemsProcessed(State.iterations() * N);
}

/// Builds the characteristic function of an n×n sampling grid:
/// m_ij ⇔ p_i ∧ q_j over presence variables, plus the partitions.
void BM_CharFuncGrid(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  // Variables: p_1..p_n at 0..n-1, q_1..q_n at n..2n-1, m_ij after.
  std::vector<CharConstraint> Cs;
  for (unsigned I = 0; I < N; ++I)
    for (unsigned J = 0; J < N; ++J) {
      CharConstraint C;
      C.Kind = CharConstraint::Kind::Equation;
      C.Op = ClockOp::Inter;
      C.V0 = 2 * N + I * N + J;
      C.V1 = I;
      C.V2 = N + J;
      Cs.push_back(C);
    }
  uint64_t Nodes = 0;
  for (auto _ : State) {
    BddManager M;
    CharFuncResult R = buildCharFunc(M, 2 * N + N * N, Cs);
    benchmark::DoNotOptimize(R.Chi.index());
    Nodes = M.numNodes();
  }
  State.counters["chi_nodes"] = static_cast<double>(Nodes);
}

/// The tree-side equivalent: each m_ij keeps its own 2-variable BDD;
/// total nodes grow linearly in the number of grid cells.
void BM_PerClockGrid(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  uint64_t Nodes = 0;
  for (auto _ : State) {
    BddManager M;
    std::vector<BddRef> Clocks;
    for (unsigned I = 0; I < N; ++I)
      for (unsigned J = 0; J < N; ++J)
        Clocks.push_back(M.apply_and(M.var(I), M.var(N + J)));
    benchmark::DoNotOptimize(Clocks.size());
    Nodes = M.numNodes();
  }
  State.counters["tree_nodes"] = static_cast<double>(Nodes);
}

void BM_SatCount(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  BddManager M;
  BddRef F = M.bottom();
  for (unsigned I = 0; I < N; ++I)
    F = M.apply_xor(F, M.var(I));
  for (auto _ : State) {
    double C = M.satCount(F, N);
    benchmark::DoNotOptimize(C);
  }
}

} // namespace

BENCHMARK(BM_IteChain)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_XorLadder)->Arg(64)->Arg(256);
BENCHMARK(BM_CharFuncGrid)->Arg(3)->Arg(5)->Arg(7);
BENCHMARK(BM_PerClockGrid)->Arg(3)->Arg(5)->Arg(7)->Arg(12);
BENCHMARK(BM_SatCount)->Arg(32)->Arg(128);

BENCHMARK_MAIN();
