//===--- bench_bdd.cpp - BDD substrate micro-benchmarks -------------------===//
///
/// Two purposes:
///   * raw throughput of the ROBDD package (ITE chains, unique-table
///     pressure), to document the substrate the clock calculus rests on;
///   * the blow-up mechanism behind Figure 13: the characteristic function
///     of a "sampling grid" clock system grows steeply with the grid edge,
///     while the sum of the per-clock BDDs the tree keeps grows linearly.
///
/// CI runs this binary with --benchmark_format=json and uploads the result
/// as BENCH_bdd.json, so the numbers form a per-commit trajectory. For the
/// complement-edge rework the reference before/after on the CI class of
/// machine (RelWithDebInfo, 1 shared vCPU, ±10% run-to-run noise) was:
///
///   BM_IteChain/64       805 us  ->  ~190 us  (right-sized tables: the old
///                                              manager memset 2 MB of
///                                              caches per construction)
///   BM_IteChain/1024     170 ms  ->  ~155 ms  (complement edges + standard
///                                              triples + one-round hashes)
///   BM_XorLadder/256     4.4 ms  ->  ~2.0 ms  (¬ is free: xor's negated
///                                              subproblems share nodes and
///                                              cache lines with the duals)
///   BM_CharFuncGrid/7    544 ms  ->  ~465 ms
///   BM_PerClockGrid/12    92 us  ->  ~10 us
///   BM_ImpliesWarm/*     new     ->  reports nodes_allocated == 0: the
///                                    inclusion test of the forest hot loops
///                                    no longer allocates (pre-rework it
///                                    built an apply_diff BDD per query)
///
//===----------------------------------------------------------------------===//

#include "bdd/Bdd.h"
#include "solver/CharFunc.h"

#include <benchmark/benchmark.h>

using namespace sigc;

namespace {

void BM_IteChain(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    BddManager M;
    BddRef F = M.top();
    for (unsigned I = 0; I < N; ++I)
      F = M.apply_and(F, M.apply_or(M.var(2 * I), M.var(2 * I + 1)));
    benchmark::DoNotOptimize(F.index());
  }
  State.SetItemsProcessed(State.iterations() * N);
}

void BM_XorLadder(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    BddManager M;
    BddRef F = M.bottom();
    for (unsigned I = 0; I < N; ++I)
      F = M.apply_xor(F, M.var(I));
    benchmark::DoNotOptimize(F.index());
  }
  State.SetItemsProcessed(State.iterations() * N);
}

/// Builds the characteristic function of an n×n sampling grid:
/// m_ij ⇔ p_i ∧ q_j over presence variables, plus the partitions.
void BM_CharFuncGrid(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  // Variables: p_1..p_n at 0..n-1, q_1..q_n at n..2n-1, m_ij after.
  std::vector<CharConstraint> Cs;
  for (unsigned I = 0; I < N; ++I)
    for (unsigned J = 0; J < N; ++J) {
      CharConstraint C;
      C.Kind = CharConstraint::Kind::Equation;
      C.Op = ClockOp::Inter;
      C.V0 = 2 * N + I * N + J;
      C.V1 = I;
      C.V2 = N + J;
      Cs.push_back(C);
    }
  uint64_t Nodes = 0;
  for (auto _ : State) {
    BddManager M;
    CharFuncResult R = buildCharFunc(M, 2 * N + N * N, Cs);
    benchmark::DoNotOptimize(R.Chi.index());
    Nodes = M.numNodes();
  }
  State.counters["chi_nodes"] = static_cast<double>(Nodes);
}

/// The tree-side equivalent: each m_ij keeps its own 2-variable BDD;
/// total nodes grow linearly in the number of grid cells.
void BM_PerClockGrid(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  uint64_t Nodes = 0;
  for (auto _ : State) {
    BddManager M;
    std::vector<BddRef> Clocks;
    for (unsigned I = 0; I < N; ++I)
      for (unsigned J = 0; J < N; ++J)
        Clocks.push_back(M.apply_and(M.var(I), M.var(N + J)));
    benchmark::DoNotOptimize(Clocks.size());
    Nodes = M.numNodes();
  }
  State.counters["tree_nodes"] = static_cast<double>(Nodes);
}

/// The forest's hot operation: inclusion tests between per-clock BDDs
/// (ClockForest::findDeepestParent probes every candidate parent). The
/// rework made implies() an ITE-to-constant check: nodes_allocated counts
/// BDD nodes created across all timed queries and must stay 0.
void BM_ImpliesWarm(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  BddManager M;
  std::vector<BddRef> Clocks;
  BddRef F = M.top();
  for (unsigned I = 0; I < N; ++I) {
    F = M.apply_and(F, M.apply_or(M.var(2 * I), M.var(2 * I + 1)));
    Clocks.push_back(F);
  }
  uint64_t Before = M.numNodes();
  for (auto _ : State) {
    bool R = true;
    for (unsigned I = 1; I < Clocks.size(); ++I) {
      R &= M.implies(Clocks[I], Clocks[I - 1]); // deeper ⊆ shallower: true
      R &= !M.implies(Clocks[I - 1], Clocks[I]);
    }
    benchmark::DoNotOptimize(R);
  }
  State.counters["nodes_allocated"] =
      static_cast<double>(M.numNodes() - Before);
  State.SetItemsProcessed(State.iterations() * 2 * (N - 1));
}

/// Multi-variable quantification over a wide conjunction; the descending
/// (deepest-first) order keeps each pass inside the unquantified suffix.
void BM_ExistsMany(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  BddManager M;
  BddRef F = M.top();
  for (unsigned I = 0; I < N; ++I)
    F = M.apply_and(F, M.apply_or(M.var(2 * I), M.var(2 * I + 1)));
  // Quantify the odd half of the variables: the result stays non-trivial.
  std::vector<BddVar> Vars;
  for (unsigned V = 1; V < 2 * N; V += 2)
    Vars.push_back(V);
  for (auto _ : State) {
    BddRef R = M.existsMany(F, Vars);
    benchmark::DoNotOptimize(R.index());
  }
  State.SetItemsProcessed(State.iterations() * Vars.size());
}

void BM_SatCount(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  BddManager M;
  BddRef F = M.bottom();
  for (unsigned I = 0; I < N; ++I)
    F = M.apply_xor(F, M.var(I));
  for (auto _ : State) {
    double C = M.satCount(F, N);
    benchmark::DoNotOptimize(C);
  }
}

} // namespace

BENCHMARK(BM_IteChain)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_XorLadder)->Arg(64)->Arg(256);
BENCHMARK(BM_CharFuncGrid)->Arg(3)->Arg(5)->Arg(7);
BENCHMARK(BM_PerClockGrid)->Arg(3)->Arg(5)->Arg(7)->Arg(12);
BENCHMARK(BM_ImpliesWarm)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_ExistsMany)->Arg(16)->Arg(64);
BENCHMARK(BM_SatCount)->Arg(32)->Arg(128);

BENCHMARK_MAIN();
