//===--- bench_stream.cpp - Trace record/replay throughput ----------------===//
///
/// Measures the streaming trace I/O path end to end, in instants per
/// second and stream megabytes per second:
///
///   * record       — a batched VM run mirrored through
///                    RecordingEnvironment into an in-memory sink (the
///                    cost of recording on top of executing),
///   * replay-mem   — replay out of bytes already in memory (codec +
///                    executor, no I/O at all: the ceiling),
///   * replay-mmap  — replay of an on-disk recording through
///                    MmapTraceSource (the `--replay` fast path),
///   * replay-fd    — the same file through FdTraceSource's buffered
///                    read(2) ring (the pipe/socket path `--serve`
///                    sessions and `--replay-buffered` use).
///
/// Workloads: the Figure-5 alarm and a divider chain, at dense and
/// sparse stimulus — the same shapes bench_step and bench_fleet time, so
/// the reports compose.
///
/// Usage: bench_stream [--json FILE] [--instants K]
/// CI uploads the JSON output as BENCH_stream.json.
///
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "interp/VmExecutor.h"
#include "io/TraceEnvironment.h"
#include "io/TraceReader.h"
#include "io/TraceWriter.h"
#include "programs/Programs.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

using namespace sigc;

namespace {

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

struct Row {
  std::string Name;
  unsigned TickPermille = 800;
  size_t TraceBytes = 0;
  double RecordPerSec = 0;
  double ReplayMemPerSec = 0;
  double ReplayMmapPerSec = 0;
  double ReplayFdPerSec = 0;
};

/// One recorded run of \p CS: the trace bytes plus the recording rate.
std::vector<uint8_t> recordTrace(const CompiledStep &CS, unsigned Instants,
                                 unsigned TickPermille, double &PerSec) {
  // Warm pass binds and sizes every buffer; the timed pass is steady
  // state.
  for (int Pass = 0; Pass < 2; ++Pass) {
    MemorySink Sink;
    TraceWriter W(Sink, TraceSpec::fromStep(CS, "bench"));
    RandomEnvironment Rnd(42, TickPermille);
    RecordingEnvironment Rec(Rnd, W);
    VmExecutor Vm(CS);
    unsigned N = Pass == 0 ? Instants / 8 + 1 : Instants;
    auto T0 = std::chrono::steady_clock::now();
    Vm.runBatched(Rec, N, 64);
    W.finish(N);
    double S = secondsSince(T0);
    if (Pass == 1) {
      PerSec = S > 0 ? N / S : 0;
      return Sink.takeBytes();
    }
  }
  return {};
}

/// Replays a whole trace from \p Src; \returns instants per second.
double replayFrom(const CompiledStep &CS, TraceSource &Src) {
  TraceReader Reader(Src);
  if (!Reader.readHeader() || !Reader.matchesStep(CS)) {
    std::fprintf(stderr, "replay failed: %s\n", Reader.error().str().c_str());
    std::exit(1);
  }
  TraceEnvironment Env(Reader);
  VmExecutor Vm(CS);
  unsigned At = 0;
  auto T0 = std::chrono::steady_clock::now();
  for (;;) {
    unsigned N = Env.prepare(At, Env.streamSpec().FrameInstants);
    if (N == 0)
      break;
    Vm.stepN(Env, At, N);
    At += N;
  }
  double S = secondsSince(T0);
  if (Env.failed()) {
    std::fprintf(stderr, "replay failed: %s\n", Env.error().str().c_str());
    std::exit(1);
  }
  return S > 0 ? At / S : 0;
}

Row benchProgram(const std::string &Name, const std::string &Source,
                 unsigned TickPermille, unsigned Instants) {
  auto C = compileSource("<bench:" + Name + ">", Source);
  if (!C->Ok) {
    std::fprintf(stderr, "%s: compilation failed:\n%s", Name.c_str(),
                 C->Diags.render().c_str());
    std::exit(1);
  }
  Row R;
  R.Name = Name;
  R.TickPermille = TickPermille;

  std::vector<uint8_t> Bytes =
      recordTrace(C->Compiled, Instants, TickPermille, R.RecordPerSec);
  R.TraceBytes = Bytes.size();

  {
    // Warm replay (binds, shapes frames), then the timed one.
    MemoryTraceSource Warm(Bytes);
    replayFrom(C->Compiled, Warm);
    MemoryTraceSource Src(Bytes);
    R.ReplayMemPerSec = replayFrom(C->Compiled, Src);
  }

  std::string Path = "/tmp/sigc-benchstream-" + std::to_string(::getpid()) +
                     ".sgtr";
  {
    std::ofstream Out(Path, std::ios::binary);
    Out.write(reinterpret_cast<const char *>(Bytes.data()),
              static_cast<std::streamsize>(Bytes.size()));
  }
  // File-backed legs get their own warm pass so the timed run is not
  // measuring cold page faults against the fresh file.
  for (int Pass = 0; Pass < 2; ++Pass) {
    MmapTraceSource Src;
    std::string Error;
    if (!Src.open(Path, Error)) {
      std::fprintf(stderr, "%s\n", Error.c_str());
      std::exit(1);
    }
    R.ReplayMmapPerSec = replayFrom(C->Compiled, Src);
  }
  for (int Pass = 0; Pass < 2; ++Pass) {
    std::string Error;
    int Fd = FdTraceSource::openFile(Path, Error);
    if (Fd < 0) {
      std::fprintf(stderr, "%s\n", Error.c_str());
      std::exit(1);
    }
    FdTraceSource Src(Fd, /*OwnsFd=*/true);
    R.ReplayFdPerSec = replayFrom(C->Compiled, Src);
  }
  std::remove(Path.c_str());
  return R;
}

/// Stream megabytes per second at \p InstantsPerSec.
double mbPerSec(const Row &R, double InstantsPerSec, unsigned Instants) {
  return Instants > 0
             ? InstantsPerSec * R.TraceBytes / Instants / (1024.0 * 1024.0)
             : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Instants = 1u << 16;
  std::string JsonPath;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--json" && I + 1 < Argc)
      JsonPath = Argv[++I];
    else if (Arg == "--instants" && I + 1 < Argc)
      Instants = static_cast<unsigned>(std::stoul(Argv[++I]));
  }

  std::printf("Trace streaming throughput (instants/sec, %u instants)\n\n",
              Instants);
  std::printf("%-14s %6s %10s %12s %12s %12s %12s %10s\n", "program", "tick",
              "bytes", "record", "replay-mem", "replay-mmap", "replay-fd",
              "mmap-MB/s");

  std::vector<Row> Rows;
  auto Report = [&](Row R) {
    std::printf("%-14s %6u %10zu %12.0f %12.0f %12.0f %12.0f %10.1f\n",
                R.Name.c_str(), R.TickPermille, R.TraceBytes, R.RecordPerSec,
                R.ReplayMemPerSec, R.ReplayMmapPerSec, R.ReplayFdPerSec,
                mbPerSec(R, R.ReplayMmapPerSec, Instants));
    Rows.push_back(std::move(R));
  };

  Report(benchProgram("FIG5_ALARM", alarmFigure5Source(), 800, Instants));
  {
    ProgramShape Shape;
    Shape.DividerStages = 16;
    std::string Source = generateProgram("CHAIN", Shape);
    Report(benchProgram("chain16", Source, 1000, Instants));
    Report(benchProgram("chain16", Source, 250, Instants));
  }

  if (!JsonPath.empty()) {
    std::ofstream Out(JsonPath);
    Out << "{\n  \"benchmarks\": [\n";
    for (size_t I = 0; I < Rows.size(); ++I) {
      const Row &R = Rows[I];
      Out << "    {\"name\": \"stream/" << R.Name << "/tick="
          << R.TickPermille << "\", "
          << "\"instants\": " << Instants << ", "
          << "\"trace_bytes\": " << R.TraceBytes << ", "
          << "\"record_inst_per_sec\": " << R.RecordPerSec << ", "
          << "\"replay_mem_inst_per_sec\": " << R.ReplayMemPerSec << ", "
          << "\"replay_mmap_inst_per_sec\": " << R.ReplayMmapPerSec << ", "
          << "\"replay_fd_inst_per_sec\": " << R.ReplayFdPerSec << ", "
          << "\"replay_mmap_mb_per_sec\": "
          << mbPerSec(R, R.ReplayMmapPerSec, Instants) << ", "
          << "\"replay_fd_vs_mmap\": "
          << (R.ReplayMmapPerSec > 0 ? R.ReplayFdPerSec / R.ReplayMmapPerSec
                                     : 0)
          << "}" << (I + 1 < Rows.size() ? "," : "") << "\n";
    }
    Out << "  ]\n}\n";
    std::printf("\nwrote %s\n", JsonPath.c_str());
  }
  return 0;
}
