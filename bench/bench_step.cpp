//===--- bench_step.cpp - Execution-engine throughput ---------------------===//
///
/// Measures interpreter throughput (instants per second) of the
/// execution engines over identical random traces:
///
///   * flat     — StepExecutor, every instruction tests its own guard,
///   * nested   — StepExecutor, block guards along the clock tree,
///   * vm       — VmExecutor over the slot-resolved CompiledStep bytecode
///                (pre-resolved descriptor indices, three-address
///                expression bytecode over scratch slots, skip-offset
///                block linearization; zero per-instant heap allocation),
///   * vm-batch — the same VM through stepN windows: the virtual
///                environment boundary is crossed once per descriptor
///                per batch instead of once per query per instant,
///   * cemit    — the C emitted from the same bytecode, compiled by the
///                host C compiler and timed in a subprocess (the paper's
///                actual artifact; skipped when no compiler is found).
///
/// Workloads: the Figure-13 builtin suite and deep divider chains at
/// dense and sparse root activity (the deeper and sparser, the more the
/// clock hierarchy pays — the paper's Figure-9 effect; the denser, the
/// more the allocation-free expression engine pays).
///
/// Usage: bench_step [--json FILE] [--json-cemit FILE] [--instants K]
///        [--batch B] [--no-builtins] [--no-cemit]
/// CI uploads the JSON outputs as BENCH_interp.json and BENCH_cemit.json.
///
//===----------------------------------------------------------------------===//

#include "codegen/CEmitter.h"
#include "driver/Driver.h"
#include "interp/StepExecutor.h"
#include "interp/VmExecutor.h"
#include "programs/Programs.h"
#include "testing/Oracle.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

using namespace sigc;

namespace {

/// Random environment that drops outputs: throughput runs measure the
/// engines, not trace recording, and stay allocation-free end to end.
class DiscardEnvironment : public RandomEnvironment {
public:
  using RandomEnvironment::RandomEnvironment;
  void writeOutput(EnvOutputId, unsigned, const Value &) override {}
};

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

struct Row {
  std::string Name;
  unsigned TickPermille = 800;
  double FlatPerSec = 0, NestedPerSec = 0, VmPerSec = 0, VmBatchPerSec = 0;
  double CEmitPerSec = 0; ///< 0 when the cemit leg did not run.
  double GuardsFlat = 0, GuardsNested = 0, GuardsVm = 0;
  double InstrsNested = 0, InstrsVm = 0;
};

template <typename Exec, typename Run>
double throughput(Exec &E, unsigned TickPermille, unsigned Instants,
                  Run RunFn) {
  // Warm up and time the same environment instance, so the one-time
  // binding resolution stays outside the measured window. Random
  // answers are pure functions of (seed, name, instant): re-running
  // instants 0..N-1 after reset() replays the identical trace.
  DiscardEnvironment Env(42, TickPermille);
  RunFn(E, Env, Instants / 8 + 1); // Bind + warm caches.
  E.reset();
  E.resetCounters();
  auto T0 = std::chrono::steady_clock::now();
  RunFn(E, Env, Instants);
  double S = secondsSince(T0);
  return S > 0 ? Instants / S : 0;
}

/// The host compiler command, probed once by the oracle subsystem.
const std::string &hostCC() { return hostCCompilerCommand(); }

/// Emits the program's C, appends a self-timing main (a cyclic window of
/// pre-generated inputs pushed through <proc>_step_batch), compiles it
/// with the host cc and runs it; \returns instants/sec, 0 on any failure.
double cemitThroughput(const Compilation &C, unsigned TickPermille,
                       unsigned Instants) {
  if (hostCC().empty())
    return 0;

  const unsigned Window = 256;
  // Enough work for clock() to resolve; the emitted code runs tens of
  // millions of instants per second.
  unsigned long long Total = static_cast<unsigned long long>(Instants) * 8;
  if (Total < (1ull << 21))
    Total = 1ull << 21;
  unsigned long long Reps = Total / Window;

  std::string Src = emitC(C.Compiled, "bp", CEmitOptions());
  std::string M;
  M += "\n#include <stdio.h>\n#include <time.h>\n";
  M += "static unsigned long rng_state = 0x2545F491UL;\n";
  M += "static unsigned long rng(void) {\n";
  M += "  rng_state = rng_state * 6364136223846793005UL + "
       "1442695040888963407UL;\n";
  M += "  return rng_state >> 33;\n}\n";
  M += "static bp_in_t in_v[256]; static bp_out_t out_v[256];\n";
  M += "int main(void) {\n";
  M += "  bp_state_t st;\n  unsigned i;\n  unsigned long long rep;\n";
  M += "  bp_init(&st);\n";
  M += "  for (i = 0; i < 256u; ++i) {\n";
  for (const auto &CI : C.Compiled.ClockInputs)
    M += "    in_v[i].tick_" + sanitizeIdent(CI.Name) + " = rng() % 1000 < " +
         std::to_string(TickPermille) + "u;\n";
  for (const auto &SI : C.Compiled.Inputs) {
    std::string Id = sanitizeIdent(SI.Name);
    if (SI.Type == TypeKind::Integer)
      M += "    in_v[i]." + Id + " = (long)(rng() % 100);\n";
    else if (SI.Type == TypeKind::Real)
      M += "    in_v[i]." + Id + " = (double)(rng() % 1000) / 10.0;\n";
    else
      M += "    in_v[i]." + Id + " = (int)(rng() & 1);\n";
  }
  M += "  }\n";
  M += "  clock_t t0 = clock();\n";
  M += "  for (rep = 0; rep < " + std::to_string(Reps) + "ULL; ++rep)\n";
  M += "    bp_step_batch(&st, in_v, out_v, 256u);\n";
  M += "  double s = (double)(clock() - t0) / CLOCKS_PER_SEC;\n";
  M += "  double n = " + std::to_string(Reps) + "ULL * 256.0;\n";
  M += "  /* counters keep the optimizer honest */\n";
  M += "  fprintf(stderr, \"executed=%llu\\n\", st.executed);\n";
  M += "  printf(\"%f\\n\", s > 0 ? n / s : 0.0);\n";
  M += "  return 0;\n}\n";
  Src += M;

  char Template[] = "/tmp/sigc-bench-XXXXXX";
  char *Dir = mkdtemp(Template);
  if (!Dir)
    return 0;
  std::string D = Dir;
  std::string CPath = D + "/bench.c", Bin = D + "/bench";
  {
    std::ofstream Out(CPath);
    Out << Src;
  }
  double PerSec = 0;
  std::string Compile = hostCC() + " -std=c99 -O2 -o " + Bin + " " + CPath +
                        " >/dev/null 2>&1";
  if (std::system(Compile.c_str()) == 0) {
    if (FILE *P = popen((Bin + " 2>/dev/null").c_str(), "r")) {
      char Buf[128];
      if (fgets(Buf, sizeof Buf, P))
        PerSec = std::strtod(Buf, nullptr);
      pclose(P);
    }
  }
  for (const std::string &F : {CPath, Bin})
    std::remove(F.c_str());
  rmdir(D.c_str());
  return PerSec;
}

Row benchProgram(const std::string &Name, const std::string &Source,
                 unsigned TickPermille, unsigned Instants, unsigned Batch,
                 bool WithCEmit) {
  auto C = compileSource("<bench:" + Name + ">", Source);
  if (!C->Ok) {
    std::fprintf(stderr, "%s: compilation failed:\n%s", Name.c_str(),
                 C->Diags.render().c_str());
    std::exit(1);
  }
  Row R;
  R.Name = Name;
  R.TickPermille = TickPermille;

  {
    StepExecutor Exec(*C->Kernel, C->Step);
    R.FlatPerSec = throughput(Exec, TickPermille, Instants,
                              [](StepExecutor &E, Environment &Env,
                                 unsigned N) {
                                E.run(Env, N, ExecMode::Flat);
                              });
    R.GuardsFlat = static_cast<double>(Exec.guardTests()) / Instants;
  }
  {
    StepExecutor Exec(*C->Kernel, C->Step);
    R.NestedPerSec = throughput(Exec, TickPermille, Instants,
                                [](StepExecutor &E, Environment &Env,
                                   unsigned N) {
                                  E.run(Env, N, ExecMode::Nested);
                                });
    R.GuardsNested = static_cast<double>(Exec.guardTests()) / Instants;
    R.InstrsNested = static_cast<double>(Exec.executed()) / Instants;
  }
  {
    VmExecutor Exec(C->Compiled);
    R.VmPerSec = throughput(Exec, TickPermille, Instants,
                            [](VmExecutor &E, Environment &Env, unsigned N) {
                              E.run(Env, N);
                            });
    R.GuardsVm = static_cast<double>(Exec.guardTests()) / Instants;
    R.InstrsVm = static_cast<double>(Exec.executed()) / Instants;
  }
  {
    VmExecutor Exec(C->Compiled);
    R.VmBatchPerSec =
        throughput(Exec, TickPermille, Instants,
                   [Batch](VmExecutor &E, Environment &Env, unsigned N) {
                     E.runBatched(Env, N, Batch);
                   });
  }
  if (WithCEmit)
    R.CEmitPerSec = cemitThroughput(*C, TickPermille, Instants);
  return R;
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Instants = 20000;
  unsigned Batch = 64;
  bool Builtins = true, WithCEmit = true;
  std::string JsonPath, JsonCemitPath;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--json" && I + 1 < Argc)
      JsonPath = Argv[++I];
    else if (Arg == "--json-cemit" && I + 1 < Argc)
      JsonCemitPath = Argv[++I];
    else if (Arg == "--instants" && I + 1 < Argc)
      Instants = static_cast<unsigned>(std::stoul(Argv[++I]));
    else if (Arg == "--batch" && I + 1 < Argc)
      Batch = static_cast<unsigned>(std::stoul(Argv[++I]));
    else if (Arg == "--no-builtins")
      Builtins = false;
    else if (Arg == "--no-cemit")
      WithCEmit = false;
  }
  if (WithCEmit && hostCC().empty()) {
    std::fprintf(stderr, "no host C compiler: skipping the cemit leg\n");
    WithCEmit = false;
  }

  std::printf("Execution-engine throughput (instants/sec, %u instants, "
              "batch %u)\n\n",
              Instants, Batch);
  std::printf("%-14s %6s %11s %11s %11s %11s %12s %8s %8s\n", "program",
              "tick", "flat", "nested", "vm", "vm-batch", "cemit", "vm/nest",
              "cemit/vm");

  std::vector<Row> Rows;
  auto Report = [&](const Row &R) {
    std::printf("%-14s %6u %11.0f %11.0f %11.0f %11.0f %12.0f %7.2fx "
                "%7.2fx\n",
                R.Name.c_str(), R.TickPermille, R.FlatPerSec, R.NestedPerSec,
                R.VmPerSec, R.VmBatchPerSec, R.CEmitPerSec,
                R.NestedPerSec > 0 ? R.VmPerSec / R.NestedPerSec : 0,
                R.VmPerSec > 0 ? R.CEmitPerSec / R.VmPerSec : 0);
    Rows.push_back(R);
  };

  if (Builtins)
    for (const Figure13Program &P : figure13Suite())
      Report(benchProgram(P.Name, P.Source, 800, Instants, Batch, WithCEmit));

  // Deep divider chains: the paper's deep partition hierarchies, at
  // dense and sparse root activity.
  for (unsigned Stages : {16u, 48u, 96u})
    for (unsigned Permille : {1000u, 250u}) {
      ProgramShape Shape;
      Shape.DividerStages = Stages;
      Report(benchProgram("chain" + std::to_string(Stages),
                          generateProgram("CHAIN", Shape), Permille, Instants,
                          Batch, WithCEmit));
    }

  if (!JsonPath.empty()) {
    std::ofstream Out(JsonPath);
    Out << "{\n  \"benchmarks\": [\n";
    for (size_t I = 0; I < Rows.size(); ++I) {
      const Row &R = Rows[I];
      Out << "    {\"name\": \"step/" << R.Name << "/tick=" << R.TickPermille
          << "\", "
          << "\"flat_steps_per_sec\": " << R.FlatPerSec << ", "
          << "\"nested_steps_per_sec\": " << R.NestedPerSec << ", "
          << "\"vm_steps_per_sec\": " << R.VmPerSec << ", "
          << "\"vm_batch_steps_per_sec\": " << R.VmBatchPerSec << ", "
          << "\"vm_vs_flat\": "
          << (R.FlatPerSec > 0 ? R.VmPerSec / R.FlatPerSec : 0) << ", "
          << "\"vm_vs_nested\": "
          << (R.NestedPerSec > 0 ? R.VmPerSec / R.NestedPerSec : 0) << ", "
          << "\"vm_batch_vs_vm\": "
          << (R.VmPerSec > 0 ? R.VmBatchPerSec / R.VmPerSec : 0) << ", "
          << "\"guards_per_instant_flat\": " << R.GuardsFlat << ", "
          << "\"guards_per_instant_nested\": " << R.GuardsNested << ", "
          << "\"guards_per_instant_vm\": " << R.GuardsVm << ", "
          << "\"instrs_per_instant_vm\": " << R.InstrsVm << "}"
          << (I + 1 < Rows.size() ? "," : "") << "\n";
    }
    Out << "  ]\n}\n";
    std::printf("\nwrote %s\n", JsonPath.c_str());
  }

  if (!JsonCemitPath.empty()) {
    std::ofstream Out(JsonCemitPath);
    Out << "{\n  \"benchmarks\": [\n";
    for (size_t I = 0; I < Rows.size(); ++I) {
      const Row &R = Rows[I];
      Out << "    {\"name\": \"cemit/" << R.Name << "/tick="
          << R.TickPermille << "\", "
          << "\"cemit_steps_per_sec\": " << R.CEmitPerSec << ", "
          << "\"vm_steps_per_sec\": " << R.VmPerSec << ", "
          << "\"vm_batch_steps_per_sec\": " << R.VmBatchPerSec << ", "
          << "\"cemit_vs_vm\": "
          << (R.VmPerSec > 0 ? R.CEmitPerSec / R.VmPerSec : 0) << "}"
          << (I + 1 < Rows.size() ? "," : "") << "\n";
    }
    Out << "  ]\n}\n";
    std::printf("wrote %s\n", JsonCemitPath.c_str());
  }
  return 0;
}
