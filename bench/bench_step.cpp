//===--- bench_step.cpp - Execution-engine throughput: flat/nested/VM -----===//
///
/// Measures interpreter throughput (instants per second) of the three
/// execution engines over identical random traces:
///
///   * flat   — StepExecutor, every instruction tests its own guard,
///   * nested — StepExecutor, block guards along the clock tree,
///   * vm     — VmExecutor over the slot-resolved CompiledStep bytecode
///              (pre-resolved descriptor indices, postfix expression
///              bytecode on a reusable operand stack, skip-offset block
///              linearization; zero per-instant heap allocation).
///
/// Workloads: the Figure-13 builtin suite and deep divider chains at
/// dense and sparse root activity (the deeper and sparser, the more the
/// clock hierarchy pays — the paper's Figure-9 effect; the denser, the
/// more the VM's allocation-free expression engine pays).
///
/// Usage: bench_step [--json FILE] [--instants K] [--no-builtins]
/// The JSON output is uploaded by CI as BENCH_interp.json.
///
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "interp/StepExecutor.h"
#include "interp/VmExecutor.h"
#include "programs/Programs.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

using namespace sigc;

namespace {

/// Random environment that drops outputs: throughput runs measure the
/// engines, not trace recording, and stay allocation-free end to end.
class DiscardEnvironment : public RandomEnvironment {
public:
  using RandomEnvironment::RandomEnvironment;
  void writeOutput(EnvOutputId, unsigned, const Value &) override {}
};

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

struct Row {
  std::string Name;
  unsigned TickPermille = 800;
  double FlatPerSec = 0, NestedPerSec = 0, VmPerSec = 0;
  double GuardsFlat = 0, GuardsNested = 0, GuardsVm = 0;
  double InstrsNested = 0, InstrsVm = 0;
};

template <typename Exec, typename Run>
double throughput(Exec &E, unsigned TickPermille, unsigned Instants,
                  Run RunFn) {
  // Warm up and time the same environment instance, so the one-time
  // binding resolution stays outside the measured window. Random
  // answers are pure functions of (seed, name, instant): re-running
  // instants 0..N-1 after reset() replays the identical trace.
  DiscardEnvironment Env(42, TickPermille);
  RunFn(E, Env, Instants / 8 + 1); // Bind + warm caches.
  E.reset();
  E.resetCounters();
  auto T0 = std::chrono::steady_clock::now();
  RunFn(E, Env, Instants);
  double S = secondsSince(T0);
  return S > 0 ? Instants / S : 0;
}

Row benchProgram(const std::string &Name, const std::string &Source,
                 unsigned TickPermille, unsigned Instants) {
  auto C = compileSource("<bench:" + Name + ">", Source);
  if (!C->Ok) {
    std::fprintf(stderr, "%s: compilation failed:\n%s", Name.c_str(),
                 C->Diags.render().c_str());
    std::exit(1);
  }
  Row R;
  R.Name = Name;
  R.TickPermille = TickPermille;

  {
    StepExecutor Exec(*C->Kernel, C->Step);
    R.FlatPerSec = throughput(Exec, TickPermille, Instants,
                              [](StepExecutor &E, Environment &Env,
                                 unsigned N) {
                                E.run(Env, N, ExecMode::Flat);
                              });
    R.GuardsFlat = static_cast<double>(Exec.guardTests()) / Instants;
  }
  {
    StepExecutor Exec(*C->Kernel, C->Step);
    R.NestedPerSec = throughput(Exec, TickPermille, Instants,
                                [](StepExecutor &E, Environment &Env,
                                   unsigned N) {
                                  E.run(Env, N, ExecMode::Nested);
                                });
    R.GuardsNested = static_cast<double>(Exec.guardTests()) / Instants;
    R.InstrsNested = static_cast<double>(Exec.executed()) / Instants;
  }
  {
    CompiledStep CS = CompiledStep::build(*C->Kernel, C->Step);
    VmExecutor Exec(CS);
    R.VmPerSec = throughput(Exec, TickPermille, Instants,
                            [](VmExecutor &E, Environment &Env, unsigned N) {
                              E.run(Env, N);
                            });
    R.GuardsVm = static_cast<double>(Exec.guardTests()) / Instants;
    R.InstrsVm = static_cast<double>(Exec.executed()) / Instants;
  }
  return R;
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Instants = 20000;
  bool Builtins = true;
  std::string JsonPath;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--json" && I + 1 < Argc)
      JsonPath = Argv[++I];
    else if (Arg == "--instants" && I + 1 < Argc)
      Instants = static_cast<unsigned>(std::stoul(Argv[++I]));
    else if (Arg == "--no-builtins")
      Builtins = false;
  }

  std::printf("Execution-engine throughput (instants/sec, %u instants)\n\n",
              Instants);
  std::printf("%-14s %6s %12s %12s %12s %8s %8s\n", "program", "tick",
              "flat", "nested", "vm", "vm/flat", "vm/nest");

  std::vector<Row> Rows;
  auto Report = [&](const Row &R) {
    std::printf("%-14s %6u %12.0f %12.0f %12.0f %7.2fx %7.2fx\n",
                R.Name.c_str(), R.TickPermille, R.FlatPerSec, R.NestedPerSec,
                R.VmPerSec,
                R.FlatPerSec > 0 ? R.VmPerSec / R.FlatPerSec : 0,
                R.NestedPerSec > 0 ? R.VmPerSec / R.NestedPerSec : 0);
    Rows.push_back(R);
  };

  if (Builtins)
    for (const Figure13Program &P : figure13Suite())
      Report(benchProgram(P.Name, P.Source, 800, Instants));

  // Deep divider chains: the paper's deep partition hierarchies, at
  // dense and sparse root activity.
  for (unsigned Stages : {16u, 48u, 96u})
    for (unsigned Permille : {1000u, 250u}) {
      ProgramShape Shape;
      Shape.DividerStages = Stages;
      Report(benchProgram("chain" + std::to_string(Stages),
                          generateProgram("CHAIN", Shape), Permille,
                          Instants));
    }

  if (!JsonPath.empty()) {
    std::ofstream Out(JsonPath);
    Out << "{\n  \"benchmarks\": [\n";
    for (size_t I = 0; I < Rows.size(); ++I) {
      const Row &R = Rows[I];
      Out << "    {\"name\": \"step/" << R.Name << "/tick=" << R.TickPermille
          << "\", "
          << "\"flat_steps_per_sec\": " << R.FlatPerSec << ", "
          << "\"nested_steps_per_sec\": " << R.NestedPerSec << ", "
          << "\"vm_steps_per_sec\": " << R.VmPerSec << ", "
          << "\"vm_vs_flat\": "
          << (R.FlatPerSec > 0 ? R.VmPerSec / R.FlatPerSec : 0) << ", "
          << "\"vm_vs_nested\": "
          << (R.NestedPerSec > 0 ? R.VmPerSec / R.NestedPerSec : 0) << ", "
          << "\"guards_per_instant_flat\": " << R.GuardsFlat << ", "
          << "\"guards_per_instant_nested\": " << R.GuardsNested << ", "
          << "\"guards_per_instant_vm\": " << R.GuardsVm << ", "
          << "\"instrs_per_instant_vm\": " << R.InstrsVm << "}"
          << (I + 1 < Rows.size() ? "," : "") << "\n";
    }
    Out << "  ]\n}\n";
    std::printf("\nwrote %s\n", JsonPath.c_str());
  }
  return 0;
}
