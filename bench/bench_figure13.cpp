//===--- bench_figure13.cpp - Reproduction of the paper's Figure 13 -------===//
///
/// Compares the three representations of the boolean equation system on
/// the seven benchmark programs, exactly as the paper's Figure 13:
///
///   * T&BDD               — the arborescent canonical form,
///   * BDD characteristic function — the whole system as one BDD,
///   * char. function after T&BDD — built on the triangularized system.
///
/// The paper ran on a SUN4/Sparc10 with a 40 min CPU limit and a 200 MB
/// memory limit; this harness scales the limits down (default 5 s wall
/// clock and 1.5 M BDD nodes per run, overridable through the
/// SIGNALC_FIG13_MS / SIGNALC_FIG13_NODES environment variables) so the
/// same "unable-cpu"/"unable-mem" phenomenology appears in seconds.
///
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "programs/Programs.h"
#include "solver/Solver.h"

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace sigc;

namespace {

uint64_t envOr(const char *Name, uint64_t Default) {
  const char *V = std::getenv(Name);
  return V ? std::strtoull(V, nullptr, 10) : Default;
}

std::string cell(const SolveResult &R) {
  if (R.Verdict != BudgetVerdict::Ok)
    return budgetVerdictName(R.Verdict);
  if (!R.TemporallyCorrect)
    return "rejected";
  char Buf[64];
  std::snprintf(Buf, sizeof Buf, "%llu nodes %6.2fs",
                static_cast<unsigned long long>(R.BddNodes),
                static_cast<double>(R.TimeMs) / 1000.0);
  return Buf;
}

} // namespace

int main() {
  uint64_t LimitMs = envOr("SIGNALC_FIG13_MS", 5000);
  uint64_t LimitNodes = envOr("SIGNALC_FIG13_NODES", 1500000);
  Budget Limits(LimitMs, LimitNodes);

  std::printf("Figure 13 reproduction: three representations of the "
              "boolean equation systems\n");
  std::printf("limits per run: %llu ms wall clock, %llu BDD nodes "
              "(paper: 40 min cpu, 200 MB)\n\n",
              static_cast<unsigned long long>(LimitMs),
              static_cast<unsigned long long>(LimitNodes));
  std::printf("%-11s %6s | %-22s | %-22s | %-22s\n", "program", "vars",
              "T&BDD", "BDD charac. function", "charac. after T&BDD");
  std::printf("%-11s %6s | %-22s | %-22s | %-22s\n", "", "(paper)",
              "(paper nodes/time)", "(paper)", "(paper)");
  std::printf("-----------------------------------------------------------"
              "--------------------------------\n");

  for (const Figure13Program &P : figure13Suite()) {
    auto C = compileSource(P.Name, P.Source);
    if (!C->Kernel) {
      std::printf("%-11s  failed to reach the clock phase: %s\n",
                  P.Name.c_str(), C->failedStageName());
      continue;
    }

    SolveResult Results[3];
    SolverKind Kinds[3] = {SolverKind::TreeBdd, SolverKind::CharFunc,
                           SolverKind::Hybrid};
    for (int I = 0; I < 3; ++I) {
      DiagnosticEngine Diags;
      Results[I] = makeSolver(Kinds[I])->solve(C->Clocks, *C->Kernel,
                                               C->names(), Diags, Limits);
    }

    std::printf("%-11s %6u | %-22s | %-22s | %-22s\n", P.Name.c_str(),
                C->Clocks.numVars(), cell(Results[0]).c_str(),
                cell(Results[1]).c_str(), cell(Results[2]).c_str());
    std::printf("%-11s %6u | %-22s | %-22s | %-22s\n", "",
                P.PaperVariables,
                (std::to_string(P.PaperTreeNodes) + " nodes " +
                 std::to_string(P.PaperTreeSeconds) + "s")
                    .c_str(),
                P.PaperCharFunc.c_str(), P.PaperHybrid.c_str());
  }

  std::printf("\nExpected shape (paper): T&BDD always completes with small "
              "node counts; the monolithic\ncharacteristic function is "
              "unable for all but the smallest program; the hybrid "
              "completes\nonly for the mid/small programs.\n");
  return 0;
}
