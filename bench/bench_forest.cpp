//===--- bench_forest.cpp - Tree construction micro-benchmarks ------------===//
///
/// Cost of the arborescent resolution itself (Section 3.4): sweeps the two
/// structural extremes of the generator —
///
///   * deep divider chains (tree depth grows linearly),
///   * wide sampling grids (many intersection insertions under one root),
///
/// and reports resolution time plus the per-run statistics (insertions,
/// fusions, merges, BDD nodes). The paper's practicality claim corresponds
/// to near-linear growth here.
///
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "parser/Parser.h"
#include "programs/Programs.h"
#include "sema/Sema.h"

#include <benchmark/benchmark.h>

using namespace sigc;

namespace {

struct Prepared {
  SourceManager SM;
  DiagnosticEngine Diags{&SM};
  AstContext Ctx;
  std::optional<KernelProgram> Kernel;
  ClockSystem Sys;

  explicit Prepared(const std::string &Source) {
    SourceLoc Start = SM.addBuffer("bench", Source);
    Parser P(SM.bufferText(Start), Start, Ctx, Diags);
    Program *Ast = P.parseProgram();
    if (!Ast)
      std::abort();
    Sema S(Ctx, Diags);
    Kernel = S.analyze(*Ast->Processes.front());
    if (!Kernel)
      std::abort();
    Sys = extractClockSystem(*Kernel);
  }
};

void BM_ForestChain(benchmark::State &State) {
  ProgramShape Shape;
  Shape.DividerStages = static_cast<unsigned>(State.range(0));
  Prepared P(generateProgram("CHAIN", Shape));
  uint64_t Nodes = 0, Insertions = 0;
  for (auto _ : State) {
    BddManager Mgr;
    ClockForest Forest(Mgr);
    bool Ok = Forest.build(P.Sys, *P.Kernel, P.Ctx.interner(), P.Diags);
    benchmark::DoNotOptimize(Ok);
    Nodes = Forest.stats().BddNodes;
    Insertions = Forest.stats().Insertions;
  }
  State.counters["clock_vars"] = P.Sys.numVars();
  State.counters["bdd_nodes"] = static_cast<double>(Nodes);
  State.counters["insertions"] = static_cast<double>(Insertions);
}

void BM_ForestGrid(benchmark::State &State) {
  ProgramShape Shape;
  Shape.GridA = static_cast<unsigned>(State.range(0));
  Shape.GridB = static_cast<unsigned>(State.range(0));
  Prepared P(generateProgram("GRID", Shape));
  uint64_t Nodes = 0, Fusions = 0;
  for (auto _ : State) {
    BddManager Mgr;
    ClockForest Forest(Mgr);
    bool Ok = Forest.build(P.Sys, *P.Kernel, P.Ctx.interner(), P.Diags);
    benchmark::DoNotOptimize(Ok);
    Nodes = Forest.stats().BddNodes;
    Fusions = Forest.stats().Fusions;
  }
  State.counters["clock_vars"] = P.Sys.numVars();
  State.counters["bdd_nodes"] = static_cast<double>(Nodes);
  State.counters["fusions"] = static_cast<double>(Fusions);
}

void BM_ForestAlarmFarm(benchmark::State &State) {
  ProgramShape Shape;
  Shape.AlarmInstances = static_cast<unsigned>(State.range(0));
  Prepared P(generateProgram("FARM", Shape));
  for (auto _ : State) {
    BddManager Mgr;
    ClockForest Forest(Mgr);
    bool Ok = Forest.build(P.Sys, *P.Kernel, P.Ctx.interner(), P.Diags);
    benchmark::DoNotOptimize(Ok);
  }
  State.counters["clock_vars"] = P.Sys.numVars();
}

} // namespace

BENCHMARK(BM_ForestChain)->Arg(8)->Arg(32)->Arg(128);
BENCHMARK(BM_ForestGrid)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK(BM_ForestAlarmFarm)->Arg(1)->Arg(4)->Arg(16);

BENCHMARK_MAIN();
