//===--- bench_link.cpp - Separate compilation + linking benchmark --------===//
///
/// Measures the separate-compilation toolchain on generated N-stage
/// pipelines, through 64 stages:
///
///   * serial vs parallel compilation of the N units (the first scaling
///     win: compilations share no state, so threads are free speedup),
///   * link time (interface extraction + channel matching + joint-space
///     BDD obligations + instruction-granularity fusion) as N grows,
///   * fused throughput (the one cross-unit CompiledStep the linker now
///     schedules) against two baselines: the monolithic compilation of
///     the textually composed program, and per-unit execution of the
///     same N compiled steps in isolation — the pre-fusion dispatch
///     pattern of one executor + one environment exchange per unit per
///     instant, which is the overhead fusion deletes.
///
/// Usage: bench_link [--json FILE] [--stages N,N,...] [--instants K]
/// The JSON output is uploaded by CI as BENCH_link.json.
///
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "interp/Environment.h"
#include "interp/LinkedExecutor.h"
#include "interp/StepExecutor.h"
#include "interp/VmExecutor.h"
#include "link/Linker.h"
#include "testing/RandomProgram.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

using namespace sigc;

namespace {

double msSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

struct Row {
  unsigned Stages = 0;
  double CompileSerialMs = 0;
  double CompileParallelMs = 0;
  double LinkMs = 0;
  double MonoCompileMs = 0;
  double FusedStepsPerSec = 0;
  double PerUnitStepsPerSec = 0;
  double MonoStepsPerSec = 0;
  uint64_t ForestNodes = 0; ///< Sum over units, unchanged by link.
};

} // namespace

int main(int Argc, char **Argv) {
  std::vector<unsigned> StageCounts = {8, 16, 32, 64};
  unsigned Instants = 4096;
  std::string JsonPath;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--json" && I + 1 < Argc) {
      JsonPath = Argv[++I];
    } else if (Arg == "--stages" && I + 1 < Argc) {
      StageCounts.clear();
      std::string List = Argv[++I], Cur;
      for (char C : List + ",")
        if (C == ',') {
          if (!Cur.empty())
            StageCounts.push_back(
                static_cast<unsigned>(std::stoul(Cur)));
          Cur.clear();
        } else {
          Cur += C;
        }
    } else if (Arg == "--instants" && I + 1 < Argc) {
      Instants = static_cast<unsigned>(std::stoul(Argv[++I]));
    }
  }

  std::printf("Separate compilation + linking on generated pipelines\n\n");
  std::printf("%-7s %10s %10s %8s %10s %12s %12s %12s\n", "stages",
              "serial", "parallel", "link", "mono", "fused", "per-unit",
              "monolithic");
  std::printf("%-7s %10s %10s %8s %10s %12s %12s %12s\n", "", "(ms)",
              "(ms)", "(ms)", "(ms)", "(steps/s)", "(steps/s)",
              "(steps/s)");

  RandomProgramOptions StageOptions;
  StageOptions.Equations = 96;
  StageOptions.IntInputs = 4;
  StageOptions.BoolInputs = 4;

  std::vector<Row> Rows;
  for (unsigned N : StageCounts) {
    GeneratedChain Chain =
        generateProcessChain(/*Seed=*/42, N, StageOptions,
                             /*MaxChannels=*/2,
                             /*SynchroChannelPercent=*/30);
    std::vector<LinkInput> Inputs;
    for (size_t K = 0; K < Chain.Sources.size(); ++K)
      Inputs.push_back({Chain.Names[K], Chain.Sources[K]});

    Row R;
    R.Stages = N;

    LinkOptions Serial;
    Serial.ParallelCompile = false;
    LinkResult SerialRes = compileAndLinkSources(Inputs, Serial);
    if (!SerialRes.Sys) {
      std::fprintf(stderr, "stages=%u: link failed: %s\n", N,
                   SerialRes.Error.c_str());
      return 1;
    }
    R.CompileSerialMs = SerialRes.CompileMs;

    LinkResult Par = compileAndLinkSources(Inputs);
    if (!Par.Sys) {
      std::fprintf(stderr, "stages=%u: parallel link failed: %s\n", N,
                   Par.Error.c_str());
      return 1;
    }
    R.CompileParallelMs = Par.CompileMs;
    R.LinkMs = Par.LinkMs;
    for (uint64_t Nodes : Par.Sys->ForestNodesAtLink)
      R.ForestNodes += Nodes;

    auto T0 = std::chrono::steady_clock::now();
    auto Mono = compileSource("<bench-mono>", Chain.ComposedSource);
    R.MonoCompileMs = msSince(T0);
    if (!Mono->Ok) {
      std::fprintf(stderr, "stages=%u: monolithic compile failed:\n%s", N,
                   Mono->Diags.render().c_str());
      return 1;
    }

    {
      RandomEnvironment Env(7);
      LinkedExecutor Exec(*Par.Sys);
      T0 = std::chrono::steady_clock::now();
      Exec.run(Env, Instants);
      double Ms = msSince(T0);
      R.FusedStepsPerSec = Ms > 0 ? 1000.0 * Instants / Ms : 0;
    }
    {
      // The pre-fusion dispatch pattern: every instant pays one executor
      // call and one environment exchange *per unit*. Each unit runs its
      // own compiled step against its own environment — same instruction
      // mix, N times the crossing overhead the fused step pays once.
      std::vector<std::unique_ptr<RandomEnvironment>> Envs;
      std::vector<std::unique_ptr<VmExecutor>> Execs;
      for (const LinkUnit &U : Par.Sys->Units) {
        Envs.push_back(std::make_unique<RandomEnvironment>(7));
        Execs.push_back(std::make_unique<VmExecutor>(U.Comp->Compiled));
      }
      T0 = std::chrono::steady_clock::now();
      for (unsigned I = 0; I < Instants; ++I)
        for (size_t U = 0; U < Execs.size(); ++U)
          Execs[U]->step(*Envs[U], I);
      double Ms = msSince(T0);
      R.PerUnitStepsPerSec = Ms > 0 ? 1000.0 * Instants / Ms : 0;
    }
    {
      RandomEnvironment Env(7);
      StepExecutor Exec(*Mono->Kernel, Mono->Step);
      T0 = std::chrono::steady_clock::now();
      Exec.run(Env, Instants, ExecMode::Nested);
      double Ms = msSince(T0);
      R.MonoStepsPerSec = Ms > 0 ? 1000.0 * Instants / Ms : 0;
    }

    std::printf("%-7u %10.2f %10.2f %8.2f %10.2f %12.0f %12.0f %12.0f\n",
                N, R.CompileSerialMs, R.CompileParallelMs, R.LinkMs,
                R.MonoCompileMs, R.FusedStepsPerSec, R.PerUnitStepsPerSec,
                R.MonoStepsPerSec);
    Rows.push_back(R);
  }

  if (!JsonPath.empty()) {
    std::ofstream Out(JsonPath);
    Out << "{\n  \"benchmarks\": [\n";
    for (size_t I = 0; I < Rows.size(); ++I) {
      const Row &R = Rows[I];
      Out << "    {\"name\": \"link/stages=" << R.Stages << "\", "
          << "\"compile_serial_ms\": " << R.CompileSerialMs << ", "
          << "\"compile_parallel_ms\": " << R.CompileParallelMs << ", "
          << "\"link_ms\": " << R.LinkMs << ", "
          << "\"mono_compile_ms\": " << R.MonoCompileMs << ", "
          << "\"fused_steps_per_sec\": " << R.FusedStepsPerSec << ", "
          << "\"per_unit_steps_per_sec\": " << R.PerUnitStepsPerSec << ", "
          << "\"mono_steps_per_sec\": " << R.MonoStepsPerSec << ", "
          << "\"forest_nodes\": " << R.ForestNodes << "}"
          << (I + 1 < Rows.size() ? "," : "") << "\n";
    }
    Out << "  ]\n}\n";
    std::printf("\nwrote %s\n", JsonPath.c_str());
  }
  return 0;
}
