//===--- bench_alarm.cpp - The worked example of Section 3.3 --------------===//
///
/// Reproduces the paper's PROCESS_ALARM walk-through end to end:
///   * compiles the Figure-5 source,
///   * shows that the cyclic equation ĉ = [D] ∨ [C1] ∨ ĉ is discharged by
///     inclusion rewriting (VerifiedEquations ≥ 1),
///   * shows the Figure-7 hierarchy and the exhibited free variable ĉ,
///   * then measures the run-time effect of the clock-tree nesting on a
///     long random simulation (guard tests + wall time, nested vs flat).
///
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "interp/StepExecutor.h"
#include "programs/Programs.h"

#include <chrono>
#include <cstdio>

using namespace sigc;

int main() {
  auto C = compileSource("FIG5_ALARM", alarmFigure5Source());
  if (!C->Ok) {
    std::fprintf(stderr, "ALARM failed to compile:\n%s",
                 C->Diags.render().c_str());
    return 1;
  }

  std::printf("PROCESS_ALARM (paper Figure 5) — clock calculus results\n\n");
  std::printf("clock variables: %u, classes alive: %zu, free clocks: %zu\n",
              C->Clocks.numVars(), C->Forest->dfsOrder().size(),
              C->Forest->freeClocks().size());
  std::printf("equations discharged by rewriting: %u (the paper's "
              "ĉ = [D] v [C1] v ĉ example)\n",
              C->Forest->stats().VerifiedEquations);
  std::printf("\nclock hierarchy (paper Figure 7):\n%s\n",
              C->Forest->dump(C->Clocks, *C->Kernel, C->names()).c_str());

  constexpr unsigned Steps = 200000;
  for (unsigned Permille : {900, 500, 100}) {
    double Times[2];
    uint64_t Guards[2];
    for (int ModeIdx = 0; ModeIdx < 2; ++ModeIdx) {
      ExecMode Mode = ModeIdx ? ExecMode::Nested : ExecMode::Flat;
      StepExecutor Exec(*C->Kernel, C->Step);
      RandomEnvironment Env(7, Permille);
      auto T0 = std::chrono::steady_clock::now();
      Exec.run(Env, Steps, Mode);
      auto T1 = std::chrono::steady_clock::now();
      Times[ModeIdx] =
          std::chrono::duration<double, std::milli>(T1 - T0).count();
      Guards[ModeIdx] = Exec.guardTests();
    }
    std::printf("tick density %3u/1000: flat %8.2f ms (%llu guard tests), "
                "nested %8.2f ms (%llu guard tests), speedup %.2fx\n",
                Permille, Times[0],
                static_cast<unsigned long long>(Guards[0]), Times[1],
                static_cast<unsigned long long>(Guards[1]),
                Times[0] / Times[1]);
  }
  return 0;
}
