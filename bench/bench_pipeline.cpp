//===--- bench_pipeline.cpp - Per-phase compile cost on the suite ---------===//
///
/// Breaks the end-to-end compilation of each Figure-13 program into its
/// phases (parse+sema, clock extraction, arborescent resolution, graph +
/// schedule, step emission) and reports wall time and sizes per phase.
/// The paper's claim that the tree method makes "fast compilation of
/// commonly encountered systems" practical shows up here as resolution
/// staying a small fraction of total compile time even at 1300 variables.
///
//===----------------------------------------------------------------------===//

#include "codegen/StepCompiler.h"
#include "driver/Driver.h"
#include "parser/Parser.h"
#include "programs/Programs.h"
#include "sema/Sema.h"

#include <chrono>
#include <cstdio>

using namespace sigc;

namespace {

double msSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

} // namespace

int main() {
  std::printf("Per-phase compilation cost (ms) on the Figure-13 suite\n\n");
  std::printf("%-11s %6s %9s %9s %9s %9s %9s %8s %8s\n", "program", "vars",
              "frontend", "extract", "forest", "graph", "step", "nodes",
              "instrs");

  for (const Figure13Program &P : figure13Suite()) {
    auto T0 = std::chrono::steady_clock::now();

    SourceManager SM;
    DiagnosticEngine Diags(&SM);
    AstContext Ctx;
    SourceLoc Start = SM.addBuffer(P.Name, P.Source);
    Parser Psr(SM.bufferText(Start), Start, Ctx, Diags);
    Program *Ast = Psr.parseProgram();
    if (!Ast) {
      std::printf("%-11s parse error\n", P.Name.c_str());
      continue;
    }
    Sema S(Ctx, Diags);
    auto Kernel = S.analyze(*Ast->Processes.front());
    if (!Kernel) {
      std::printf("%-11s sema error\n", P.Name.c_str());
      continue;
    }
    double FrontendMs = msSince(T0);

    T0 = std::chrono::steady_clock::now();
    ClockSystem Sys = extractClockSystem(*Kernel);
    double ExtractMs = msSince(T0);

    T0 = std::chrono::steady_clock::now();
    BddManager Mgr;
    ClockForest Forest(Mgr);
    if (!Forest.build(Sys, *Kernel, Ctx.interner(), Diags)) {
      std::printf("%-11s clock calculus failed\n", P.Name.c_str());
      continue;
    }
    double ForestMs = msSince(T0);

    T0 = std::chrono::steady_clock::now();
    CondDepGraph Graph;
    if (!Graph.build(*Kernel, Sys, Forest, Ctx.interner(), Diags)) {
      std::printf("%-11s graph failed\n", P.Name.c_str());
      continue;
    }
    double GraphMs = msSince(T0);

    T0 = std::chrono::steady_clock::now();
    StepProgram Step = compileStep(*Kernel, Sys, Forest, Graph,
                                   Ctx.interner());
    double StepMs = msSince(T0);

    std::printf("%-11s %6u %9.2f %9.2f %9.2f %9.2f %9.2f %8llu %8zu\n",
                P.Name.c_str(), Sys.numVars(), FrontendMs, ExtractMs,
                ForestMs, GraphMs, StepMs,
                static_cast<unsigned long long>(Mgr.numNodes()),
                Step.Instrs.size());
  }
  return 0;
}
