//===--- bench_nesting.cpp - Figure 9 ablation: nested vs flat guards -----===//
///
/// The paper (Section 3.4, "Code optimization", Figure 9) credits the
/// nesting of if-then-else control structures along the clock inclusion
/// tree with making generated code up to 300 % faster. This benchmark
/// executes the *same* scheduled step program in both control structures
/// over random traces and sweeps
///
///   * the depth of the divider chain (deeper tree = more skippable work),
///   * the tick density of the root clock (sparser = more skipping).
///
/// Expected shape: nested is never slower and approaches the paper's
/// multiple-× speedup on deep trees with sparse activity.
///
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "interp/StepExecutor.h"
#include "programs/Programs.h"

#include <benchmark/benchmark.h>

using namespace sigc;

namespace {

std::unique_ptr<Compilation> compileChain(unsigned Stages) {
  ProgramShape Shape;
  Shape.DividerStages = Stages;
  auto C = compileSource("chain", generateProgram("CHAIN", Shape));
  if (!C->Ok)
    std::abort();
  return C;
}

void runBench(benchmark::State &State, ExecMode Mode) {
  unsigned Stages = static_cast<unsigned>(State.range(0));
  unsigned TickPermille = static_cast<unsigned>(State.range(1));
  auto C = compileChain(Stages);
  StepExecutor Exec(*C->Kernel, C->Step);
  RandomEnvironment Env(42, TickPermille);

  unsigned Instant = 0;
  for (auto _ : State) {
    Exec.step(Env, Instant++, Mode);
    benchmark::DoNotOptimize(Instant);
  }
  State.counters["guard_tests_per_step"] = benchmark::Counter(
      static_cast<double>(Exec.guardTests()),
      benchmark::Counter::kAvgIterations);
  State.counters["instrs_per_step"] = benchmark::Counter(
      static_cast<double>(Exec.executed()),
      benchmark::Counter::kAvgIterations);
}

void BM_StepFlat(benchmark::State &State) {
  runBench(State, ExecMode::Flat);
}

void BM_StepNested(benchmark::State &State) {
  runBench(State, ExecMode::Nested);
}

void sweep(benchmark::internal::Benchmark *B) {
  for (int Stages : {4, 16, 48})
    for (int Permille : {1000, 500, 100, 25})
      B->Args({Stages, Permille});
}

} // namespace

BENCHMARK(BM_StepFlat)->Apply(sweep);
BENCHMARK(BM_StepNested)->Apply(sweep);

BENCHMARK_MAIN();
