//===--- bench_tier.cpp - Tiered native execution ------------------------===//
///
/// Measures the tier economics end to end:
///
///   * vm-switch / vm-goto — scalar VM throughput under both dispatch
///     strategies (the computed-goto gain in isolation),
///   * native             — the dlopen'd artifact's scalar throughput
///     on the same traces (the speedup the tier promotion buys),
///   * cold_compile_ms    — content-hash + emit + host cc + atomic
///     publish + load, i.e. how long the background thread works on a
///     cache miss,
///   * warm_load_ms       — loading the published artifact on a later
///     run; the report also asserts the warm path spawned no compiler
///     (cc_spawns_warm must be 0 — the cache-hit acceptance criterion),
///   * swap_import_us     — one VM -> native state handoff (the hot
///     part of a promotion; module load is counted under warm_load_ms).
///
/// Workloads: the Figure-5 alarm plus deep divider chains at dense and
/// sparse root activity — the shapes where the clock hierarchy's guard
/// skipping and the native code's lack of dispatch both show.
///
/// Usage: bench_tier [--json FILE] [--instants K]
/// CI uploads the JSON output as BENCH_tier.json. Without a host C
/// compiler only the VM dispatch legs run.
///
//===----------------------------------------------------------------------===//

#include "interp/VmExecutor.h"
#include "native/CcRunner.h"
#include "native/NativeCache.h"
#include "native/NativeExecutor.h"
#include "native/StepHash.h"
#include "programs/Programs.h"
#include "testing/Oracle.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

using namespace sigc;

namespace {

/// Random environment that drops outputs: throughput runs measure the
/// engines, not trace recording.
class DiscardEnvironment : public RandomEnvironment {
public:
  using RandomEnvironment::RandomEnvironment;
  void writeOutput(EnvOutputId, unsigned, const Value &) override {}
};

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

struct Row {
  std::string Name;
  unsigned TickPermille = 800;
  double VmSwitchPerSec = 0;
  double VmGotoPerSec = 0;
  double NativePerSec = 0;     ///< 0 when the native legs did not run.
  double ColdCompileMs = 0;    ///< miss: emit + cc + publish + load.
  double WarmLoadMs = 0;       ///< hit: validate + dlopen only.
  uint64_t CcSpawnsWarm = 0;   ///< must stay 0 — hit spawns no compiler.
  double SwapImportUs = 0;     ///< one VM -> native state handoff.
};

/// Best of three timed repetitions (scheduler noise shows up as slow
/// outliers, never fast ones).
const unsigned Reps = 3;

double vmThroughput(const CompiledStep &CS, VmDispatch D, uint64_t Seed,
                    unsigned TickPermille, unsigned Instants) {
  DiscardEnvironment Env(Seed, TickPermille);
  VmExecutor Vm(CS);
  Vm.setDispatch(D);
  Vm.runBatched(Env, Instants / 8 + 1, 64); // Bind + warm.
  double Best = 0;
  for (unsigned R = 0; R < Reps; ++R) {
    Vm.reset();
    auto T0 = std::chrono::steady_clock::now();
    Vm.runBatched(Env, Instants, 64);
    double S = secondsSince(T0);
    if (S > 0 && Instants / S > Best)
      Best = Instants / S;
  }
  return Best;
}

double nativeThroughput(const CompiledStep &CS, const NativeModule &M,
                        uint64_t Seed, unsigned TickPermille,
                        unsigned Instants) {
  DiscardEnvironment Env(Seed, TickPermille);
  NativeExecutor NX(CS, M);
  NX.runBatched(Env, Instants / 8 + 1, 64); // Bind + warm.
  double Best = 0;
  for (unsigned R = 0; R < Reps; ++R) {
    NX.reset();
    auto T0 = std::chrono::steady_clock::now();
    NX.runBatched(Env, Instants, 64);
    double S = secondsSince(T0);
    if (S > 0 && Instants / S > Best)
      Best = Instants / S;
  }
  return Best;
}

/// A fresh cache directory, removed with contents.
struct TempCacheDir {
  std::string Path;
  TempCacheDir() {
    char Template[] = "/tmp/sigc-benchtier-XXXXXX";
    if (char *D = mkdtemp(Template))
      Path = D;
  }
  ~TempCacheDir() {
    if (!Path.empty())
      std::system(("rm -rf " + Path).c_str());
  }
};

Row benchProgram(const std::string &Name, const std::string &Source,
                 unsigned TickPermille, unsigned Instants, bool WithNative) {
  auto C = compileSource("<bench:" + Name + ">", Source);
  if (!C->Ok) {
    std::fprintf(stderr, "%s: compilation failed:\n%s", Name.c_str(),
                 C->Diags.render().c_str());
    std::exit(1);
  }
  const CompiledStep &CS = C->Compiled;

  Row R;
  R.Name = Name;
  R.TickPermille = TickPermille;
  R.VmSwitchPerSec =
      vmThroughput(CS, VmDispatch::Switch, 42, TickPermille, Instants);
  R.VmGotoPerSec =
      vmThroughput(CS, VmDispatch::Goto, 42, TickPermille, Instants);
  if (!WithNative)
    return R;

  TempCacheDir Cache;
  if (Cache.Path.empty())
    return R;
  NativeCache NC(Cache.Path);
  std::string Hash = hashCompiledStep(CS), Err;

  // Cold miss: the whole background-compile pipeline, timed.
  auto T0 = std::chrono::steady_clock::now();
  std::unique_ptr<NativeModule> Cold = NC.compileAndPublish(CS, Hash, Err);
  R.ColdCompileMs = secondsSince(T0) * 1e3;
  if (!Cold) {
    std::fprintf(stderr, "%s: native compile failed: %s\n", Name.c_str(),
                 Err.c_str());
    return R;
  }

  // Warm hit: validate + dlopen, and provably no compiler spawn.
  uint64_t Spawns0 = ccSpawnCount();
  T0 = std::chrono::steady_clock::now();
  std::unique_ptr<NativeModule> Warm = NC.tryLoad(Hash, Err);
  R.WarmLoadMs = secondsSince(T0) * 1e3;
  R.CcSpawnsWarm = ccSpawnCount() - Spawns0;
  const NativeModule &M = Warm ? *Warm : *Cold;

  // One promotion handoff: export the VM's state into the native unit.
  {
    DiscardEnvironment Env(42, TickPermille);
    VmExecutor Vm(CS);
    Vm.runBatched(Env, 64, 64);
    NativeExecutor NX(CS, M);
    T0 = std::chrono::steady_clock::now();
    NX.importState(Vm.stateSlots(), Vm.guardTests(), Vm.executed());
    R.SwapImportUs = secondsSince(T0) * 1e6;
  }

  R.NativePerSec = nativeThroughput(CS, M, 42, TickPermille, Instants);
  return R;
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Instants = 1u << 18;
  std::string JsonPath;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--json" && I + 1 < Argc)
      JsonPath = Argv[++I];
    else if (Arg == "--instants" && I + 1 < Argc)
      Instants = static_cast<unsigned>(std::stoul(Argv[++I]));
  }
  bool WithNative = !hostCCompilerCommand().empty();
  if (!WithNative)
    std::fprintf(stderr, "no host C compiler: vm dispatch legs only\n");
  if (!VmExecutor::computedGotoAvailable())
    std::fprintf(stderr,
                 "computed goto unavailable: vm-goto falls back to switch\n");

  std::printf("Tier economics (instants/sec, %u instants)\n\n", Instants);
  std::printf("%-12s %6s %12s %12s %12s %8s %8s %10s %9s %9s\n", "program",
              "tick", "vm-switch", "vm-goto", "native", "goto/sw", "nat/vm",
              "cold(ms)", "warm(ms)", "swap(us)");

  std::vector<Row> Rows;
  auto Report = [&](const Row &R) {
    std::printf("%-12s %6u %12.0f %12.0f %12.0f %7.2fx %7.2fx %10.1f %9.2f "
                "%9.1f\n",
                R.Name.c_str(), R.TickPermille, R.VmSwitchPerSec,
                R.VmGotoPerSec, R.NativePerSec,
                R.VmSwitchPerSec > 0 ? R.VmGotoPerSec / R.VmSwitchPerSec : 0,
                R.VmGotoPerSec > 0 ? R.NativePerSec / R.VmGotoPerSec : 0,
                R.ColdCompileMs, R.WarmLoadMs, R.SwapImportUs);
    if (R.CcSpawnsWarm)
      std::printf("  WARNING: warm cache hit spawned %llu compiler(s)\n",
                  static_cast<unsigned long long>(R.CcSpawnsWarm));
    Rows.push_back(R);
  };

  Report(benchProgram("FIG5_ALARM", alarmFigure5Source(), 800, Instants,
                      WithNative));
  for (unsigned Stages : {16u, 48u})
    for (unsigned Permille : {1000u, 250u}) {
      ProgramShape Shape;
      Shape.DividerStages = Stages;
      Report(benchProgram("chain" + std::to_string(Stages),
                          generateProgram("CHAIN", Shape), Permille, Instants,
                          WithNative));
    }

  if (!JsonPath.empty()) {
    std::ofstream Out(JsonPath);
    Out << "{\n  \"benchmarks\": [\n";
    for (size_t I = 0; I < Rows.size(); ++I) {
      const Row &R = Rows[I];
      Out << "    {\"name\": \"tier/" << R.Name << "/tick=" << R.TickPermille
          << "\", "
          << "\"vm_switch_per_sec\": " << R.VmSwitchPerSec << ", "
          << "\"vm_goto_per_sec\": " << R.VmGotoPerSec << ", "
          << "\"native_per_sec\": " << R.NativePerSec << ", "
          << "\"goto_vs_switch\": "
          << (R.VmSwitchPerSec > 0 ? R.VmGotoPerSec / R.VmSwitchPerSec : 0)
          << ", "
          << "\"native_vs_vm_goto\": "
          << (R.VmGotoPerSec > 0 ? R.NativePerSec / R.VmGotoPerSec : 0)
          << ", "
          << "\"cold_compile_ms\": " << R.ColdCompileMs << ", "
          << "\"warm_load_ms\": " << R.WarmLoadMs << ", "
          << "\"cc_spawns_warm\": " << R.CcSpawnsWarm << ", "
          << "\"swap_import_us\": " << R.SwapImportUs << "}"
          << (I + 1 < Rows.size() ? "," : "") << "\n";
    }
    Out << "  ]\n}\n";
    std::printf("\nwrote %s\n", JsonPath.c_str());
  }
  return 0;
}
