//===--- bench_fleet.cpp - Fleet-execution throughput ---------------------===//
///
/// Measures fleet throughput — instance-instants per second — of running
/// many instances of one compiled process over identical random traces:
///
///   * scalar    — one VmExecutor per instance, run sequentially (the
///                 baseline the fleet sweep must beat),
///   * fleet tT  — the FleetExecutor's SoA lane-block sweep, sharded
///                 over T worker threads (T = 1, 4 and the hardware
///                 concurrency; T=1 isolates the SoA/lane-sweep gain,
///                 the others add parallel scaling),
///   * cemit     — the `<proc>_step_fleet` entry point emitted from the
///                 same bytecode, compiled by the host C compiler and
///                 timed in a subprocess (skipped when no compiler is
///                 found).
///
/// Workloads: the Figure-5 alarm and divider chains at dense and sparse
/// root activity — the same shapes bench_step times scalar engines on,
/// so the two reports compose.
///
/// Usage: bench_fleet [--json FILE] [--instants K] [--instances M]
///        [--no-cemit]
/// CI uploads the JSON output as BENCH_fleet.json.
///
//===----------------------------------------------------------------------===//

#include "codegen/CEmitter.h"
#include "driver/Driver.h"
#include "interp/FleetExecutor.h"
#include "interp/VmExecutor.h"
#include "programs/Programs.h"
#include "testing/Oracle.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace sigc;

namespace {

/// Random environment that drops outputs: throughput runs measure the
/// engines, not trace recording.
class DiscardEnvironment : public RandomEnvironment {
public:
  using RandomEnvironment::RandomEnvironment;
  void writeOutput(EnvOutputId, unsigned, const Value &) override {}
};

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

struct Row {
  std::string Name;
  unsigned TickPermille = 800;
  double ScalarPerSec = 0;
  double FleetT1PerSec = 0, FleetT4PerSec = 0, FleetTMaxPerSec = 0;
  unsigned MaxThreads = 1;
  double CEmitPerSec = 0; ///< 0 when the cemit leg did not run.
};

/// A fleet of per-instance discard environments (instance j seeded
/// Seed+j, matching the CLI's --fleet convention).
struct EnvFleet {
  std::vector<std::unique_ptr<DiscardEnvironment>> Owned;
  std::vector<Environment *> Envs;
  EnvFleet(unsigned Instances, uint64_t Seed, unsigned TickPermille) {
    for (unsigned J = 0; J < Instances; ++J) {
      Owned.push_back(
          std::make_unique<DiscardEnvironment>(Seed + J, TickPermille));
      Envs.push_back(Owned.back().get());
    }
  }
};

/// Sequential baseline: every instance through its own scalar VM.
double scalarThroughput(const CompiledStep &CS, unsigned Instances,
                        unsigned TickPermille, unsigned Instants) {
  EnvFleet F(Instances, 42, TickPermille);
  std::vector<std::unique_ptr<VmExecutor>> Execs;
  for (unsigned J = 0; J < Instances; ++J) {
    Execs.push_back(std::make_unique<VmExecutor>(CS));
    Execs[J]->run(*F.Envs[J], Instants / 8 + 1); // Bind + warm.
    Execs[J]->reset();
  }
  auto T0 = std::chrono::steady_clock::now();
  for (unsigned J = 0; J < Instances; ++J)
    Execs[J]->run(*F.Envs[J], Instants);
  double S = secondsSince(T0);
  return S > 0 ? static_cast<double>(Instances) * Instants / S : 0;
}

/// The fleet sweep at a given shard-thread count.
double fleetThroughput(const CompiledStep &CS, unsigned Instances,
                       unsigned TickPermille, unsigned Instants,
                       unsigned LaneBlock, unsigned Threads) {
  EnvFleet F(Instances, 42, TickPermille);
  FleetExecutor::Config Cfg;
  Cfg.LaneBlock = LaneBlock;
  Cfg.Threads = Threads;
  FleetExecutor Exec(CS, Instances, Cfg);
  Exec.run(F.Envs, Instants / 8 + 1); // Bind + warm.
  Exec.reset();
  auto T0 = std::chrono::steady_clock::now();
  Exec.run(F.Envs, Instants);
  double S = secondsSince(T0);
  return S > 0 ? static_cast<double>(Instances) * Instants / S : 0;
}

/// Emits the program's C, appends a self-timing main pushing a cyclic
/// window of pre-generated per-instance inputs through
/// <proc>_step_fleet, compiles with the host cc and runs it;
/// \returns instance-instants/sec, 0 on any failure.
double cemitFleetThroughput(const Compilation &C, unsigned Instances,
                            unsigned TickPermille, unsigned Instants) {
  if (hostCCompilerCommand().empty())
    return 0;

  const unsigned Window = 64;
  unsigned long long Total =
      static_cast<unsigned long long>(Instants) * Instances;
  if (Total < (1ull << 22))
    Total = 1ull << 22;
  unsigned long long Reps = Total / (static_cast<unsigned long long>(
                                         Instances) * Window) + 1;

  std::string MS = std::to_string(Instances), WS = std::to_string(Window);
  std::string Src = emitC(C.Compiled, "bp", CEmitOptions());
  std::string M;
  M += "\n#include <stdio.h>\n#include <time.h>\n";
  M += "static unsigned long rng_state = 0x2545F491UL;\n";
  M += "static unsigned long rng(void) {\n";
  M += "  rng_state = rng_state * 6364136223846793005UL + "
       "1442695040888963407UL;\n";
  M += "  return rng_state >> 33;\n}\n";
  M += "static bp_in_t in_v[" + MS + " * " + WS + "];\n";
  M += "static bp_out_t out_v[" + MS + " * " + WS + "];\n";
  M += "static bp_state_t st_v[" + MS + "];\n";
  M += "int main(void) {\n";
  M += "  unsigned j, i;\n  unsigned long long rep;\n";
  M += "  for (j = 0; j < " + MS + "u; ++j)\n";
  M += "    for (i = 0; i < " + WS + "u; ++i) {\n";
  for (const auto &CI : C.Compiled.ClockInputs)
    M += "      in_v[j * " + WS + " + i].tick_" + sanitizeIdent(CI.Name) +
         " = rng() % 1000 < " + std::to_string(TickPermille) + "u;\n";
  for (const auto &SI : C.Compiled.Inputs) {
    std::string Id = sanitizeIdent(SI.Name);
    if (SI.Type == TypeKind::Integer)
      M += "      in_v[j * " + WS + " + i]." + Id +
           " = (long)(rng() % 100);\n";
    else if (SI.Type == TypeKind::Real)
      M += "      in_v[j * " + WS + " + i]." + Id +
           " = (double)(rng() % 1000) / 10.0;\n";
    else
      M += "      in_v[j * " + WS + " + i]." + Id + " = (int)(rng() & 1);\n";
  }
  M += "    }\n";
  M += "  for (j = 0; j < " + MS + "u; ++j)\n";
  M += "    bp_init(&st_v[j]);\n";
  M += "  clock_t t0 = clock();\n";
  M += "  for (rep = 0; rep < " + std::to_string(Reps) + "ULL; ++rep)\n";
  M += "    bp_step_fleet(st_v, in_v, out_v, " + MS + "u, " + WS + "u);\n";
  M += "  double s = (double)(clock() - t0) / CLOCKS_PER_SEC;\n";
  M += "  double n = " + std::to_string(Reps) + "ULL * " + MS + ".0 * " + WS +
       ".0;\n";
  M += "  /* counters keep the optimizer honest */\n";
  M += "  fprintf(stderr, \"executed=%llu\\n\", st_v[0].executed);\n";
  M += "  printf(\"%f\\n\", s > 0 ? n / s : 0.0);\n";
  M += "  return 0;\n}\n";
  Src += M;

  char Template[] = "/tmp/sigc-benchfleet-XXXXXX";
  char *Dir = mkdtemp(Template);
  if (!Dir)
    return 0;
  std::string D = Dir;
  std::string CPath = D + "/bench.c", Bin = D + "/bench";
  {
    std::ofstream Out(CPath);
    Out << Src;
  }
  double PerSec = 0;
  std::string Compile = hostCCompilerCommand() + " -std=c99 -O2 -o " + Bin +
                        " " + CPath + " >/dev/null 2>&1";
  if (std::system(Compile.c_str()) == 0) {
    if (FILE *P = popen((Bin + " 2>/dev/null").c_str(), "r")) {
      char Buf[128];
      if (fgets(Buf, sizeof Buf, P))
        PerSec = std::strtod(Buf, nullptr);
      pclose(P);
    }
  }
  for (const std::string &F : {CPath, Bin})
    std::remove(F.c_str());
  rmdir(D.c_str());
  return PerSec;
}

Row benchProgram(const std::string &Name, const std::string &Source,
                 unsigned Instances, unsigned TickPermille, unsigned Instants,
                 bool WithCEmit) {
  auto C = compileSource("<bench:" + Name + ">", Source);
  if (!C->Ok) {
    std::fprintf(stderr, "%s: compilation failed:\n%s", Name.c_str(),
                 C->Diags.render().c_str());
    std::exit(1);
  }
  Row R;
  R.Name = Name;
  R.TickPermille = TickPermille;
  R.MaxThreads = std::thread::hardware_concurrency();
  if (R.MaxThreads < 2)
    R.MaxThreads = 2;

  // A lane block well below the instance count, so the shard pool has
  // several blocks per thread to spread.
  const unsigned LaneBlock = 16;
  R.ScalarPerSec =
      scalarThroughput(C->Compiled, Instances, TickPermille, Instants);
  R.FleetT1PerSec = fleetThroughput(C->Compiled, Instances, TickPermille,
                                    Instants, LaneBlock, 1);
  R.FleetT4PerSec = fleetThroughput(C->Compiled, Instances, TickPermille,
                                    Instants, LaneBlock, 4);
  R.FleetTMaxPerSec = fleetThroughput(C->Compiled, Instances, TickPermille,
                                      Instants, LaneBlock, R.MaxThreads);
  if (WithCEmit)
    R.CEmitPerSec =
        cemitFleetThroughput(*C, Instances, TickPermille, Instants);
  return R;
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Instants = 4096;
  unsigned Instances = 128;
  bool WithCEmit = true;
  std::string JsonPath;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--json" && I + 1 < Argc)
      JsonPath = Argv[++I];
    else if (Arg == "--instants" && I + 1 < Argc)
      Instants = static_cast<unsigned>(std::stoul(Argv[++I]));
    else if (Arg == "--instances" && I + 1 < Argc)
      Instances = static_cast<unsigned>(std::stoul(Argv[++I]));
    else if (Arg == "--no-cemit")
      WithCEmit = false;
  }
  if (WithCEmit && hostCCompilerCommand().empty()) {
    std::fprintf(stderr, "no host C compiler: skipping the cemit leg\n");
    WithCEmit = false;
  }

  std::printf("Fleet throughput (instance-instants/sec, %u instances x %u "
              "instants)\n\n",
              Instances, Instants);
  std::printf("%-14s %6s %12s %12s %12s %12s %12s %8s %8s\n", "program",
              "tick", "scalar", "fleet-t1", "fleet-t4", "fleet-tmax",
              "cemit", "t1/scal", "tmax/t1");

  std::vector<Row> Rows;
  auto Report = [&](const Row &R) {
    std::printf("%-14s %6u %12.0f %12.0f %12.0f %12.0f %12.0f %7.2fx "
                "%7.2fx\n",
                R.Name.c_str(), R.TickPermille, R.ScalarPerSec,
                R.FleetT1PerSec, R.FleetT4PerSec, R.FleetTMaxPerSec,
                R.CEmitPerSec,
                R.ScalarPerSec > 0 ? R.FleetT1PerSec / R.ScalarPerSec : 0,
                R.FleetT1PerSec > 0 ? R.FleetTMaxPerSec / R.FleetT1PerSec
                                    : 0);
    Rows.push_back(R);
  };

  Report(benchProgram("FIG5_ALARM", alarmFigure5Source(), Instances, 800,
                      Instants, WithCEmit));
  for (unsigned Stages : {16u, 48u})
    for (unsigned Permille : {1000u, 250u}) {
      ProgramShape Shape;
      Shape.DividerStages = Stages;
      Report(benchProgram("chain" + std::to_string(Stages),
                          generateProgram("CHAIN", Shape), Instances,
                          Permille, Instants, WithCEmit));
    }

  if (!JsonPath.empty()) {
    std::ofstream Out(JsonPath);
    Out << "{\n  \"benchmarks\": [\n";
    for (size_t I = 0; I < Rows.size(); ++I) {
      const Row &R = Rows[I];
      Out << "    {\"name\": \"fleet/" << R.Name << "/tick="
          << R.TickPermille << "\", "
          << "\"instances\": " << Instances << ", "
          << "\"scalar_vm_ii_per_sec\": " << R.ScalarPerSec << ", "
          << "\"fleet_vm_t1_ii_per_sec\": " << R.FleetT1PerSec << ", "
          << "\"fleet_vm_t4_ii_per_sec\": " << R.FleetT4PerSec << ", "
          << "\"fleet_vm_tmax_ii_per_sec\": " << R.FleetTMaxPerSec << ", "
          << "\"max_threads\": " << R.MaxThreads << ", "
          << "\"cemit_fleet_ii_per_sec\": " << R.CEmitPerSec << ", "
          << "\"fleet_t1_vs_scalar\": "
          << (R.ScalarPerSec > 0 ? R.FleetT1PerSec / R.ScalarPerSec : 0)
          << ", "
          << "\"fleet_tmax_vs_t1\": "
          << (R.FleetT1PerSec > 0 ? R.FleetTMaxPerSec / R.FleetT1PerSec : 0)
          << ", "
          << "\"cemit_vs_fleet_t1\": "
          << (R.FleetT1PerSec > 0 ? R.CEmitPerSec / R.FleetT1PerSec : 0)
          << "}" << (I + 1 < Rows.size() ? "," : "") << "\n";
    }
    Out << "  ]\n}\n";
    std::printf("\nwrote %s\n", JsonPath.c_str());
  }
  return 0;
}
