//===--- CondDepGraph.h - Conditional dependency graph ----------*- C++-*-===//
///
/// \file
/// The conditional dependency graph of the paper's Section 2.5 (Table 2)
/// and its scheduling into a sequential step. Graph nodes are *actions*
/// (compute a clock's presence, read an input, evaluate a signal, update a
/// delay, emit an output); edges mean "must happen earlier in the step".
///
/// The Table-2 rows appear as:
///   Xi --x̂→ X          Func operand edges (value before value),
///   U --x̂→ X            when/default value edges,
///   C --ĉ→ [C], [¬C]    a literal clock needs the condition's value,
///   x̂ --x̂→ X            every signal needs its own clock's presence,
///   (ZX := X$1)          no value edge; instead a StoreDelay action at the
///                        end of the instant ordered after X and after the
///                        LoadDelay that reads the old state.
///
/// A dependency cycle makes the program causally incorrect and is
/// rejected. (The paper refines this with the clock labels — a cycle whose
/// label product is the null clock is harmless; this implementation keeps
/// the simpler conservative check and documents the difference.)
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_GRAPH_CONDDEPGRAPH_H
#define SIGNALC_GRAPH_CONDDEPGRAPH_H

#include "forest/ClockForest.h"
#include "sema/Kernel.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace sigc {

/// What one scheduled step action does.
enum class ActionKind {
  ClockInput,  ///< Read a free root clock's tick from the environment.
  ClockEval,   ///< Compute a derived/literal clock's presence.
  SignalInput, ///< Read an input signal's value (guarded by its clock).
  SignalEval,  ///< Evaluate a Func/When/Default equation.
  LoadDelay,   ///< Read the delay state into the target signal.
  StoreDelay,  ///< Write the delay source into the state (end of instant).
  WriteOutput, ///< Hand an output to the environment.
};

const char *actionKindName(ActionKind K);

/// One node of the dependency graph.
struct Action {
  ActionKind Kind = ActionKind::ClockEval;
  ForestNodeId Clock = InvalidForestNode; ///< Clock computed / guard clock.
  SignalId Sig = InvalidSignal;           ///< Signal read/evaluated/output.
  int EqIndex = -1;                       ///< Kernel equation, if any.
};

/// The built graph plus its schedule.
class CondDepGraph {
public:
  /// Builds the graph for \p Prog whose clocks were resolved into
  /// \p Forest, then topologically sorts it.
  /// \returns false on a causality cycle (diagnosed).
  bool build(const KernelProgram &Prog, const ClockSystem &Sys,
             ClockForest &Forest, const StringInterner &Names,
             DiagnosticEngine &Diags);

  const std::vector<Action> &actions() const { return Actions; }
  /// Indices into actions() in a valid execution order.
  const std::vector<int> &schedule() const { return Schedule; }
  const std::vector<std::vector<int>> &successors() const { return Succs; }

  unsigned numEdges() const;

  /// Renders the scheduled actions (tests, -dump-graph).
  std::string dump(const KernelProgram &Prog, const StringInterner &Names,
                   ClockForest &Forest, const ClockSystem &Sys) const;

private:
  int addAction(const Action &A);
  void addEdge(int From, int To);

  std::vector<Action> Actions;
  std::vector<std::vector<int>> Succs;
  std::vector<int> Schedule;
};

} // namespace sigc

#endif // SIGNALC_GRAPH_CONDDEPGRAPH_H
