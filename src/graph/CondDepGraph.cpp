//===--- CondDepGraph.cpp -------------------------------------------------===//

#include "graph/CondDepGraph.h"

#include <algorithm>
#include <cassert>
#include <queue>
#include <unordered_map>

using namespace sigc;

const char *sigc::actionKindName(ActionKind K) {
  switch (K) {
  case ActionKind::ClockInput:
    return "clock-input";
  case ActionKind::ClockEval:
    return "clock-eval";
  case ActionKind::SignalInput:
    return "signal-input";
  case ActionKind::SignalEval:
    return "signal-eval";
  case ActionKind::LoadDelay:
    return "load-delay";
  case ActionKind::StoreDelay:
    return "store-delay";
  case ActionKind::WriteOutput:
    return "write-output";
  }
  return "<bad>";
}

int CondDepGraph::addAction(const Action &A) {
  Actions.push_back(A);
  Succs.emplace_back();
  return static_cast<int>(Actions.size()) - 1;
}

void CondDepGraph::addEdge(int From, int To) {
  assert(From >= 0 && To >= 0);
  // A self-edge (Y := Y + A) is a legal *input* to the graph: it is an
  // instantaneous cycle the topological sort rejects with a proper
  // diagnostic, exactly like any longer cycle.
  Succs[From].push_back(To);
}

unsigned CondDepGraph::numEdges() const {
  unsigned N = 0;
  for (const auto &S : Succs)
    N += static_cast<unsigned>(S.size());
  return N;
}

bool CondDepGraph::build(const KernelProgram &Prog, const ClockSystem &Sys,
                         ClockForest &Forest, const StringInterner &Names,
                         DiagnosticEngine &Diags) {
  Actions.clear();
  Succs.clear();
  Schedule.clear();

  // --- Create actions ---------------------------------------------------

  // One clock action per alive forest node.
  std::unordered_map<ForestNodeId, int> ClockAction;
  for (ForestNodeId N : Forest.dfsOrder()) {
    const ClockNode &Node = Forest.node(N);
    Action A;
    A.Kind = (Node.Def == ClockDefKind::Root) ? ActionKind::ClockInput
                                              : ActionKind::ClockEval;
    A.Clock = N;
    ClockAction[N] = addAction(A);
  }

  // One value-producing action per signal with a non-empty clock.
  std::vector<int> ValueAction(Prog.numSignals(), -1);
  std::vector<int> StoreAction(Prog.numSignals(), -1);
  for (SignalId S = 0; S < Prog.numSignals(); ++S) {
    ForestNodeId ClockNodeId = Forest.nodeOf(Sys.signalClock(S));
    if (ClockNodeId == InvalidForestNode)
      continue; // Null clock: the signal never occurs.
    const KernelEq *Def = Prog.definition(S);
    Action A;
    A.Sig = S;
    A.Clock = ClockNodeId;
    if (!Def) {
      // Inputs and free locals are read from the environment.
      A.Kind = ActionKind::SignalInput;
    } else if (Def->Kind == KernelEqKind::Delay) {
      A.Kind = ActionKind::LoadDelay;
      A.EqIndex = Prog.DefiningEq[S];
    } else {
      A.Kind = ActionKind::SignalEval;
      A.EqIndex = Prog.DefiningEq[S];
    }
    ValueAction[S] = addAction(A);
  }

  // StoreDelay actions (the end-of-instant state writes).
  for (unsigned EqI = 0; EqI < Prog.Equations.size(); ++EqI) {
    const KernelEq &Eq = Prog.Equations[EqI];
    if (Eq.Kind != KernelEqKind::Delay)
      continue;
    if (ValueAction[Eq.Target] < 0)
      continue; // Clock proved empty.
    Action A;
    A.Kind = ActionKind::StoreDelay;
    A.Sig = Eq.Target;
    A.EqIndex = static_cast<int>(EqI);
    A.Clock = Actions[ValueAction[Eq.Target]].Clock;
    StoreAction[Eq.Target] = addAction(A);
  }

  // Output actions.
  for (SignalId S : Prog.outputs()) {
    if (ValueAction[S] < 0)
      continue;
    Action A;
    A.Kind = ActionKind::WriteOutput;
    A.Sig = S;
    A.Clock = Actions[ValueAction[S]].Clock;
    addAction(A);
    addEdge(ValueAction[S], static_cast<int>(Actions.size()) - 1);
  }

  // --- Edges -------------------------------------------------------------

  // Clock recipes.
  for (const auto &[NodeId, ActIdx] : ClockAction) {
    const ClockNode &Node = Forest.node(NodeId);
    switch (Node.Def) {
    case ClockDefKind::Root:
      break;
    case ClockDefKind::Literal: {
      // Needs the condition's clock presence and the condition's value
      // (Table 2: C --ĉ→ [C]). Note: the *condition's clock*, not the
      // tree parent — reparenting may have placed a derived union between
      // them, and unions evaluate after their operands.
      ForestNodeId CondClock =
          Forest.nodeOf(Sys.signalClock(Node.CondSignal));
      if (CondClock != InvalidForestNode)
        addEdge(ClockAction.at(CondClock), ActIdx);
      if (ValueAction[Node.CondSignal] >= 0)
        addEdge(ValueAction[Node.CondSignal], ActIdx);
      break;
    }
    case ClockDefKind::Derived:
    case ClockDefKind::Residual: {
      for (ClockVarId Op : {Node.OpA, Node.OpB}) {
        ForestNodeId ON = Forest.nodeOf(Op);
        if (ON != InvalidForestNode)
          addEdge(ClockAction.at(ON), ActIdx);
      }
      break;
    }
    }
  }

  // Signal actions: own-clock edge (x̂ --x̂→ X) plus value operands.
  for (SignalId S = 0; S < Prog.numSignals(); ++S) {
    int Act = ValueAction[S];
    if (Act < 0)
      continue;
    addEdge(ClockAction.at(Actions[Act].Clock), Act);
    const KernelEq *Def = Prog.definition(S);
    if (!Def || Def->Kind == KernelEqKind::Delay)
      continue;
    switch (Def->Kind) {
    case KernelEqKind::Func:
      for (SignalId Arg : Def->Args)
        if (ValueAction[Arg] >= 0)
          addEdge(ValueAction[Arg], Act);
      break;
    case KernelEqKind::When:
      if (Def->WhenValue.isSignal() && ValueAction[Def->WhenValue.Sig] >= 0)
        addEdge(ValueAction[Def->WhenValue.Sig], Act);
      break;
    case KernelEqKind::Default:
      for (SignalId Src : {Def->DefaultPreferred, Def->DefaultAlternative}) {
        if (ValueAction[Src] >= 0)
          addEdge(ValueAction[Src], Act);
        // The merge also tests the preferred operand's presence.
        ForestNodeId SrcClock = Forest.nodeOf(Sys.signalClock(Src));
        if (SrcClock != InvalidForestNode)
          addEdge(ClockAction.at(SrcClock), Act);
      }
      break;
    case KernelEqKind::Delay:
      break;
    }
  }

  // Delay stores: after the new source value and after the old state was
  // read by LoadDelay.
  for (SignalId S = 0; S < Prog.numSignals(); ++S) {
    int Store = StoreAction[S];
    if (Store < 0)
      continue;
    const KernelEq &Eq = Prog.Equations[Actions[Store].EqIndex];
    if (ValueAction[Eq.DelaySource] >= 0)
      addEdge(ValueAction[Eq.DelaySource], Store);
    addEdge(ValueAction[S], Store);
    addEdge(ClockAction.at(Actions[Store].Clock), Store);
  }

  // --- Topological sort (Kahn, smallest action index first for
  // determinism) -----------------------------------------------------------
  std::vector<unsigned> InDegree(Actions.size(), 0);
  for (const auto &S : Succs)
    for (int T : S)
      ++InDegree[T];

  std::priority_queue<int, std::vector<int>, std::greater<int>> Ready;
  for (unsigned I = 0; I < Actions.size(); ++I)
    if (InDegree[I] == 0)
      Ready.push(static_cast<int>(I));

  while (!Ready.empty()) {
    int A = Ready.top();
    Ready.pop();
    Schedule.push_back(A);
    for (int T : Succs[A])
      if (--InDegree[T] == 0)
        Ready.push(T);
  }

  if (Schedule.size() != Actions.size()) {
    // Identify one action on a cycle for the message.
    std::string Who = "<unknown>";
    for (unsigned I = 0; I < Actions.size(); ++I) {
      if (InDegree[I] != 0) {
        const Action &A = Actions[I];
        if (A.Sig != InvalidSignal)
          Who = std::string(Names.spelling(Prog.Signals[A.Sig].Name));
        else
          Who = std::string("clock #") + std::to_string(A.Clock);
        break;
      }
    }
    Diags.error(SourceLoc(), "causally incorrect program: instantaneous "
                             "dependency cycle involving '" +
                                 Who + "'");
    return false;
  }
  return true;
}

std::string CondDepGraph::dump(const KernelProgram &Prog,
                               const StringInterner &Names,
                               ClockForest &Forest,
                               const ClockSystem &Sys) const {
  (void)Forest;
  (void)Sys;
  std::string Out;
  for (int I : Schedule) {
    const Action &A = Actions[I];
    Out += "  ";
    Out += actionKindName(A.Kind);
    if (A.Sig != InvalidSignal)
      Out += std::string(" ") +
             std::string(Names.spelling(Prog.Signals[A.Sig].Name));
    if (A.Clock != InvalidForestNode)
      Out += " @clock#" + std::to_string(A.Clock);
    Out += "\n";
  }
  return Out;
}
