//===--- Lowering.cpp - AST to kernel-program flattening ------------------===//

#include "sema/Sema.h"

#include <cassert>

using namespace sigc;

/// Working state of one lowering run.
struct Sema::LowerState {
  KernelProgram Prog;
  std::unordered_map<Symbol, SignalId> Ids;
  unsigned FreshCounter = 0;
  StringInterner *Interner = nullptr;

  SignalId idOf(Symbol Name) const {
    auto It = Ids.find(Name);
    assert(It != Ids.end() && "name resolution should have caught this");
    return It->second;
  }

  /// Introduces a compiler-generated signal. The '$' in the spelling makes
  /// it unspeakable in the surface syntax, so it cannot collide.
  SignalId freshSignal(TypeKind Type, SourceLoc Loc) {
    std::string Name = "t$" + std::to_string(++FreshCounter);
    KernelSignal S;
    S.Name = Interner->intern(Name);
    S.Type = Type;
    S.Dir = SignalDir::Local;
    S.IsFresh = true;
    S.Loc = Loc;
    SignalId Id = static_cast<SignalId>(Prog.Signals.size());
    Prog.Signals.push_back(S);
    Ids.emplace(S.Name, Id);
    return Id;
  }
};

std::optional<KernelProgram> Sema::analyze(const ProcessDecl &D) {
  NameTypes.clear();
  Defined.clear();

  // Collect declared names.
  for (const SignalDecl &S : D.Signals)
    NameTypes[S.Name] = S.Type;

  if (!D.Body) {
    Diags.error(D.Loc, "process has no body");
    return std::nullopt;
  }

  if (!checkProcess(D, D.Body))
    return std::nullopt;

  // Outputs must be defined; undefined locals are free (warn).
  for (const SignalDecl &S : D.Signals) {
    if (Defined.count(S.Name))
      continue;
    std::string Name(Ctx.interner().spelling(S.Name));
    if (S.Dir == SignalDir::Output) {
      Diags.error(S.Loc, "output signal '" + Name + "' is never defined");
      return std::nullopt;
    }
    if (S.Dir == SignalDir::Local)
      Diags.warning(S.Loc, "local signal '" + Name +
                               "' has no defining equation; it behaves as "
                               "a free input");
  }
  if (Diags.hasErrors())
    return std::nullopt;

  LowerState LS;
  LS.Interner = &Ctx.interner();
  LS.Prog.Name = D.Name;
  for (const SignalDecl &S : D.Signals) {
    KernelSignal KS;
    KS.Name = S.Name;
    KS.Type = S.Type;
    KS.Dir = S.Dir;
    KS.Loc = S.Loc;
    SignalId Id = static_cast<SignalId>(LS.Prog.Signals.size());
    LS.Prog.Signals.push_back(KS);
    LS.Ids.emplace(S.Name, Id);
  }

  if (!lowerProcess(LS, D.Body))
    return std::nullopt;

  // Index defining equations.
  LS.Prog.DefiningEq.assign(LS.Prog.Signals.size(), -1);
  for (unsigned I = 0; I < LS.Prog.Equations.size(); ++I) {
    SignalId T = LS.Prog.Equations[I].Target;
    assert(LS.Prog.DefiningEq[T] == -1 && "double definition after lowering");
    LS.Prog.DefiningEq[T] = static_cast<int>(I);
  }
  return std::move(LS.Prog);
}

bool Sema::lowerProcess(LowerState &LS, const Process *P) {
  switch (P->kind()) {
  case ProcessKind::Equation:
    return lowerEquation(LS, cast<EquationProc>(P));
  case ProcessKind::Composition: {
    for (const Process *Child : cast<CompositionProc>(P)->children())
      if (!lowerProcess(LS, Child))
        return false;
    return true;
  }
  case ProcessKind::Synchro: {
    const auto *S = cast<SynchroProc>(P);
    std::vector<SignalId> Sigs;
    for (const Expr *Op : S->operands()) {
      SignalId Id = lowerToSignal(LS, Op);
      if (Id == InvalidSignal)
        return false;
      Sigs.push_back(Id);
    }
    for (unsigned I = 1; I < Sigs.size(); ++I)
      LS.Prog.Constraints.push_back({Sigs[0], Sigs[I], P->loc()});
    return true;
  }
  case ProcessKind::ClockEq: {
    const auto *C = cast<ClockEqProc>(P);
    SignalId L = lowerToSignal(LS, C->lhs());
    SignalId R = lowerToSignal(LS, C->rhs());
    if (L == InvalidSignal || R == InvalidSignal)
      return false;
    LS.Prog.Constraints.push_back({L, R, P->loc()});
    return true;
  }
  }
  return false;
}

bool Sema::lowerEquation(LowerState &LS, const EquationProc *E) {
  return lowerInto(LS, LS.idOf(E->target()), E->rhs());
}

Atom Sema::lowerToAtom(LowerState &LS, const Expr *E) {
  if (const auto *N = dyn_cast<NameExpr>(E))
    return Atom::signal(LS.idOf(N->name()));
  if (const auto *C = dyn_cast<ConstExpr>(E))
    return Atom::constant(C->value());
  SignalId Fresh = LS.freshSignal(E->type(), E->loc());
  if (!lowerInto(LS, Fresh, E))
    return Atom::constant(Value());
  return Atom::signal(Fresh);
}

SignalId Sema::lowerToSignal(LowerState &LS, const Expr *E) {
  if (isa<ConstExpr>(E)) {
    Diags.error(E->loc(), "a constant has no clock of its own here; sample "
                          "it with 'when'");
    return InvalidSignal;
  }
  Atom A = lowerToAtom(LS, E);
  if (A.IsConst)
    return InvalidSignal; // Error already reported during recursion.
  return A.Sig;
}

/// \returns true if \p E lowers into a Func operator tree node (pointwise).
[[maybe_unused]] static bool isPointwise(const Expr *E) {
  switch (E->kind()) {
  case ExprKind::Name:
  case ExprKind::Const:
  case ExprKind::Unary:
  case ExprKind::Binary:
    return true;
  default:
    return false;
  }
}

int Sema::buildFuncTree(LowerState &LS, KernelEq &Eq, const Expr *E) {
  FuncNode Node;
  switch (E->kind()) {
  case ExprKind::Const:
    Node.Kind = FuncNode::Kind::Const;
    Node.Const = cast<ConstExpr>(E)->value();
    break;
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    int Lhs = buildFuncTree(LS, Eq, U->operand());
    if (Lhs < 0)
      return -1;
    Node.Kind = FuncNode::Kind::Unary;
    Node.UOp = U->op();
    Node.Lhs = Lhs;
    break;
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    int Lhs = buildFuncTree(LS, Eq, B->lhs());
    if (Lhs < 0)
      return -1;
    int Rhs = buildFuncTree(LS, Eq, B->rhs());
    if (Rhs < 0)
      return -1;
    Node.Kind = FuncNode::Kind::Binary;
    Node.BOp = B->op();
    Node.Lhs = Lhs;
    Node.Rhs = Rhs;
    break;
  }
  default: {
    // Name, or any non-pointwise subexpression: becomes an operand signal.
    SignalId Sig;
    if (const auto *N = dyn_cast<NameExpr>(E)) {
      Sig = LS.idOf(N->name());
    } else {
      Sig = lowerToSignal(LS, E);
      if (Sig == InvalidSignal)
        return -1;
    }
    // Reuse the operand slot if this signal already appears.
    unsigned ArgIndex = 0;
    for (; ArgIndex < Eq.Args.size(); ++ArgIndex)
      if (Eq.Args[ArgIndex] == Sig)
        break;
    if (ArgIndex == Eq.Args.size())
      Eq.Args.push_back(Sig);
    Node.Kind = FuncNode::Kind::Arg;
    Node.ArgIndex = ArgIndex;
    break;
  }
  }
  Eq.Nodes.push_back(Node);
  return static_cast<int>(Eq.Nodes.size()) - 1;
}

bool Sema::lowerInto(LowerState &LS, SignalId Target, const Expr *E) {
  KernelEq Eq;
  Eq.Target = Target;
  Eq.Loc = E->loc();

  switch (E->kind()) {
  case ExprKind::Name:
  case ExprKind::Const:
  case ExprKind::Unary:
  case ExprKind::Binary: {
    assert(isPointwise(E));
    Eq.Kind = KernelEqKind::Func;
    if (buildFuncTree(LS, Eq, E) < 0)
      return false;
    break;
  }
  case ExprKind::Delay: {
    const auto *D = cast<DelayExpr>(E);
    SignalId Source = lowerToSignal(LS, D->operand());
    if (Source == InvalidSignal)
      return false;
    // "X $ n" is a chain of n unit delays ending in Target.
    TypeKind Ty = D->operand()->type();
    SignalId Prev = Source;
    for (unsigned Step = 1; Step <= D->depth(); ++Step) {
      SignalId StageTarget =
          (Step == D->depth()) ? Target : LS.freshSignal(Ty, E->loc());
      KernelEq Stage;
      Stage.Kind = KernelEqKind::Delay;
      Stage.Target = StageTarget;
      Stage.Loc = E->loc();
      Stage.DelaySource = Prev;
      Stage.DelayInit = D->init();
      LS.Prog.Equations.push_back(Stage);
      Prev = StageTarget;
    }
    return true;
  }
  case ExprKind::When: {
    const auto *W = cast<WhenExpr>(E);
    Eq.Kind = KernelEqKind::When;
    Eq.WhenValue = lowerToAtom(LS, W->value());
    if (Eq.WhenValue.IsConst && Eq.WhenValue.Const.Kind == TypeKind::Unknown)
      return false;
    // "X when (not C)" samples on the negative literal [¬C] directly
    // (Section 2.3), avoiding a fresh condition for the negation.
    const Expr *Cond = W->condition();
    if (const auto *U = dyn_cast<UnaryExpr>(Cond);
        U && U->op() == UnaryOp::Not && isa<NameExpr>(U->operand())) {
      Eq.WhenPositive = false;
      Cond = U->operand();
    }
    Eq.WhenCond = lowerToSignal(LS, Cond);
    if (Eq.WhenCond == InvalidSignal)
      return false;
    break;
  }
  case ExprKind::Default: {
    const auto *D = cast<DefaultExpr>(E);
    Eq.Kind = KernelEqKind::Default;
    Eq.DefaultPreferred = lowerToSignal(LS, D->preferred());
    if (Eq.DefaultPreferred == InvalidSignal)
      return false;
    Eq.DefaultAlternative = lowerToSignal(LS, D->alternative());
    if (Eq.DefaultAlternative == InvalidSignal)
      return false;
    break;
  }
  case ExprKind::Event: {
    // event X  ==>  Target := (X = X)
    const auto *Ev = cast<EventExpr>(E);
    SignalId Sig = lowerToSignal(LS, Ev->operand());
    if (Sig == InvalidSignal)
      return false;
    Eq.Kind = KernelEqKind::Func;
    Eq.Args.push_back(Sig);
    FuncNode ArgNode;
    ArgNode.Kind = FuncNode::Kind::Arg;
    ArgNode.ArgIndex = 0;
    Eq.Nodes.push_back(ArgNode);
    Eq.Nodes.push_back(ArgNode);
    FuncNode EqNode;
    EqNode.Kind = FuncNode::Kind::Binary;
    EqNode.BOp = BinaryOp::Eq;
    EqNode.Lhs = 0;
    EqNode.Rhs = 1;
    Eq.Nodes.push_back(EqNode);
    break;
  }
  case ExprKind::UnaryWhen: {
    // when C        ==>  Target := true when C       (clock [C])
    // when (not C)  ==>  Target := true when not C   (clock [¬C])
    const auto *W = cast<UnaryWhenExpr>(E);
    const Expr *Cond = W->condition();
    Eq.Kind = KernelEqKind::When;
    Eq.WhenValue = Atom::constant(Value::makeBool(true));
    if (const auto *U = dyn_cast<UnaryExpr>(Cond);
        U && U->op() == UnaryOp::Not && isa<NameExpr>(U->operand())) {
      Eq.WhenPositive = false;
      Cond = U->operand();
    }
    Eq.WhenCond = lowerToSignal(LS, Cond);
    if (Eq.WhenCond == InvalidSignal)
      return false;
    break;
  }
  case ExprKind::Cell: {
    // Y := X cell B init v  ==>
    //   Z := Y $ 1 init v        memory of Y
    //   Y := X default Z          value: X when present, else last value
    //   EX := (X = X)             event X
    //   W := B when B             when B
    //   U := EX default W         clock x̂ ∨ [B]
    //   synchro {Y, U}            ŷ = x̂ ∨ [B]
    const auto *C = cast<CellExpr>(E);
    SignalId X = lowerToSignal(LS, C->value());
    SignalId B = lowerToSignal(LS, C->condition());
    if (X == InvalidSignal || B == InvalidSignal)
      return false;
    TypeKind Ty = C->value()->type();

    SignalId Z = LS.freshSignal(Ty, E->loc());
    KernelEq ZEq;
    ZEq.Kind = KernelEqKind::Delay;
    ZEq.Target = Z;
    ZEq.Loc = E->loc();
    ZEq.DelaySource = Target;
    ZEq.DelayInit = C->init();
    LS.Prog.Equations.push_back(ZEq);

    Eq.Kind = KernelEqKind::Default;
    Eq.DefaultPreferred = X;
    Eq.DefaultAlternative = Z;
    LS.Prog.Equations.push_back(Eq);

    SignalId EX = LS.freshSignal(TypeKind::Event, E->loc());
    KernelEq EXEq;
    EXEq.Kind = KernelEqKind::Func;
    EXEq.Target = EX;
    EXEq.Loc = E->loc();
    EXEq.Args.push_back(X);
    FuncNode ArgNode;
    ArgNode.Kind = FuncNode::Kind::Arg;
    ArgNode.ArgIndex = 0;
    EXEq.Nodes.push_back(ArgNode);
    EXEq.Nodes.push_back(ArgNode);
    FuncNode EqNode;
    EqNode.Kind = FuncNode::Kind::Binary;
    EqNode.BOp = BinaryOp::Eq;
    EqNode.Lhs = 0;
    EqNode.Rhs = 1;
    EXEq.Nodes.push_back(EqNode);
    LS.Prog.Equations.push_back(EXEq);

    SignalId W = LS.freshSignal(TypeKind::Event, E->loc());
    KernelEq WEq;
    WEq.Kind = KernelEqKind::When;
    WEq.Target = W;
    WEq.Loc = E->loc();
    WEq.WhenValue = Atom::signal(B);
    WEq.WhenCond = B;
    LS.Prog.Equations.push_back(WEq);

    SignalId U = LS.freshSignal(TypeKind::Event, E->loc());
    KernelEq UEq;
    UEq.Kind = KernelEqKind::Default;
    UEq.Target = U;
    UEq.Loc = E->loc();
    UEq.DefaultPreferred = EX;
    UEq.DefaultAlternative = W;
    LS.Prog.Equations.push_back(UEq);

    LS.Prog.Constraints.push_back({Target, U, E->loc()});
    return true;
  }
  }

  LS.Prog.Equations.push_back(std::move(Eq));
  return true;
}
