//===--- Kernel.h - Flattened kernel-SIGNAL programs ------------*- C++-*-===//
///
/// \file
/// The kernel program form every later phase works on: each derived
/// operator has been rewritten away and every equation is one of the four
/// kernel statements of the paper's Section 2.2 (Table 1):
///
///   Func     Y := f(A1, ..., An)     pointwise function over synchronous
///                                    operands (f may be an operator tree,
///                                    but all signal operands share ŷ)
///   Delay    Y := X $ 1 init v      previous value, ŷ = x̂
///   When     Y := A when C          downsampling, ŷ = â ∧ [C]
///   Default  Y := A default B       merge, ŷ = â ∨ b̂
///
/// plus clock-equality constraints contributed by "synchro"/"^=".
///
/// Operands are atoms: either a signal reference or a literal constant
/// (constants adapt to the context clock and impose no clock constraint).
/// Nested expressions are flattened by Lowering.cpp, which introduces fresh
/// signals for intermediate results.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_SEMA_KERNEL_H
#define SIGNALC_SEMA_KERNEL_H

#include "ast/Ast.h"

#include <string>
#include <vector>

namespace sigc {

/// Index of a signal inside a KernelProgram.
using SignalId = uint32_t;
constexpr SignalId InvalidSignal = 0xFFFFFFFFu;

/// An operand of a kernel equation: a signal or a literal.
struct Atom {
  bool IsConst = false;
  SignalId Sig = InvalidSignal;
  Value Const;

  static Atom signal(SignalId S) {
    Atom A;
    A.Sig = S;
    return A;
  }
  static Atom constant(Value V) {
    Atom A;
    A.IsConst = true;
    A.Const = V;
    return A;
  }

  bool isSignal() const { return !IsConst; }
};

/// Pointwise operator tree for Func equations. Leaves are indices into the
/// equation's operand list (for signals) or inline constants; inner nodes
/// are the instantaneous functions of the host language.
struct FuncNode {
  enum class Kind { Arg, Const, Unary, Binary } Kind = Kind::Const;
  unsigned ArgIndex = 0; ///< For Kind::Arg: index into KernelEq::Args.
  Value Const;           ///< For Kind::Const.
  UnaryOp UOp = UnaryOp::Not;
  BinaryOp BOp = BinaryOp::Add;
  int Lhs = -1; ///< Child indices into KernelEq::Nodes; -1 = none.
  int Rhs = -1;
};

/// The four kernel statement forms.
enum class KernelEqKind {
  Func,    ///< Y := f(A1..An)
  Delay,   ///< Y := X $ 1 init v
  When,    ///< Y := A when C
  Default, ///< Y := A default B
};

/// One flattened kernel equation defining signal Target.
struct KernelEq {
  KernelEqKind Kind = KernelEqKind::Func;
  SignalId Target = InvalidSignal;
  SourceLoc Loc;

  // --- Func ---
  std::vector<SignalId> Args; ///< Signal operands (all synchronous with Y).
  std::vector<FuncNode> Nodes; ///< Operator tree; Nodes.back() is the root.

  // --- Delay ---
  SignalId DelaySource = InvalidSignal;
  Value DelayInit;

  // --- When ---
  Atom WhenValue;
  SignalId WhenCond = InvalidSignal;
  /// False for "when not C": the clock is [¬C] instead of [C]
  /// (Section 2.3 identifies "when (not C)" with the negative literal).
  bool WhenPositive = true;

  // --- Default ---
  SignalId DefaultPreferred = InvalidSignal;
  SignalId DefaultAlternative = InvalidSignal;
};

/// A signal of the flattened program.
struct KernelSignal {
  Symbol Name;
  TypeKind Type = TypeKind::Unknown;
  SignalDir Dir = SignalDir::Local;
  bool IsFresh = false; ///< Introduced by flattening (no user declaration).
  SourceLoc Loc;
};

/// A clock-equality constraint between two signals ("synchro", "^=",
/// or implied by the expansion of a derived operator).
struct ClockConstraint {
  SignalId First = InvalidSignal;
  SignalId Second = InvalidSignal;
  SourceLoc Loc;
};

/// A whole process in kernel form.
struct KernelProgram {
  Symbol Name;
  std::vector<KernelSignal> Signals;
  std::vector<KernelEq> Equations;
  std::vector<ClockConstraint> Constraints;

  /// Index of the defining equation for each signal; -1 for inputs and
  /// other free signals.
  std::vector<int> DefiningEq;

  const KernelSignal &signal(SignalId Id) const { return Signals[Id]; }
  unsigned numSignals() const { return static_cast<unsigned>(Signals.size()); }

  /// \returns the ids of all input signals, in declaration order.
  std::vector<SignalId> inputs() const;
  /// \returns the ids of all output signals, in declaration order.
  std::vector<SignalId> outputs() const;

  /// \returns the defining equation of \p Id, or nullptr for free signals.
  const KernelEq *definition(SignalId Id) const {
    if (Id >= DefiningEq.size() || DefiningEq[Id] < 0)
      return nullptr;
    return &Equations[DefiningEq[Id]];
  }

  /// Counts the boolean "variables" of the clock system in the paper's
  /// sense: one clock variable per signal plus two condition literals per
  /// boolean signal.
  unsigned countClockVariables() const;

  /// Renders the kernel program as readable text (for tests and -dump).
  std::string dump(const StringInterner &Names) const;
};

//===----------------------------------------------------------------------===//
// Scalar operator semantics
//===----------------------------------------------------------------------===//
//
// The single definition of what the host-language operators mean on
// Values, shared by the tree evaluator below and the step-VM's postfix
// bytecode (CompiledStep) so the two can never diverge. Inline: both
// evaluators run these per instruction per instant.

/// Two's-complement wrapping arithmetic: SIGNAL "integer" values wrap on
/// overflow (runaway accumulators are a legal program, not UB). Computing
/// through uint64_t keeps the C++ defined and matches what the emitted C
/// produces on the targets we run on.
inline int64_t wrapAdd(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}
inline int64_t wrapSub(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) -
                              static_cast<uint64_t>(B));
}
inline int64_t wrapMul(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) *
                              static_cast<uint64_t>(B));
}
inline int64_t wrapNeg(int64_t A) {
  return static_cast<int64_t>(0 - static_cast<uint64_t>(A));
}

/// Evaluates unary operator \p Op on \p V.
inline Value evalUnaryValue(UnaryOp Op, const Value &V) {
  if (Op == UnaryOp::Not)
    return Value::makeBool(!V.asBool());
  if (V.Kind == TypeKind::Integer)
    return Value::makeInt(wrapNeg(V.Int));
  return Value::makeReal(-V.asReal());
}

/// Evaluates binary operator \p Op on \p L and \p R.
inline Value evalBinaryValue(BinaryOp Op, const Value &L, const Value &R) {
  bool BothInt = L.Kind == TypeKind::Integer && R.Kind == TypeKind::Integer;
  switch (Op) {
  case BinaryOp::Add:
    return BothInt ? Value::makeInt(wrapAdd(L.Int, R.Int))
                   : Value::makeReal(L.asReal() + R.asReal());
  case BinaryOp::Sub:
    return BothInt ? Value::makeInt(wrapSub(L.Int, R.Int))
                   : Value::makeReal(L.asReal() - R.asReal());
  case BinaryOp::Mul:
    return BothInt ? Value::makeInt(wrapMul(L.Int, R.Int))
                   : Value::makeReal(L.asReal() * R.asReal());
  case BinaryOp::Div:
    // R == -1 is handled as negation: INT64_MIN / -1 overflows.
    if (BothInt)
      return Value::makeInt(R.Int == 0    ? 0
                            : R.Int == -1 ? wrapNeg(L.Int)
                                          : L.Int / R.Int);
    return Value::makeReal(R.asReal() == 0.0 ? 0.0 : L.asReal() / R.asReal());
  case BinaryOp::Mod:
    // x mod -1 = 0; also sidesteps the INT64_MIN % -1 overflow.
    return Value::makeInt((R.Int == 0 || R.Int == -1)
                              ? 0
                              : ((L.Int % R.Int) + R.Int) % R.Int);
  case BinaryOp::And:
    return Value::makeBool(L.asBool() && R.asBool());
  case BinaryOp::Or:
    return Value::makeBool(L.asBool() || R.asBool());
  case BinaryOp::Xor:
    return Value::makeBool(L.asBool() != R.asBool());
  case BinaryOp::Eq:
    return Value::makeBool(L == R);
  case BinaryOp::Ne:
    return Value::makeBool(!(L == R));
  case BinaryOp::Lt:
    return Value::makeBool(L.asReal() < R.asReal());
  case BinaryOp::Le:
    return Value::makeBool(L.asReal() <= R.asReal());
  case BinaryOp::Gt:
    return Value::makeBool(L.asReal() > R.asReal());
  case BinaryOp::Ge:
    return Value::makeBool(L.asReal() >= R.asReal());
  }
  return Value::makeInt(0);
}

/// Evaluates a Func operator tree given the values of its signal operands.
/// Used by the fixpoint interpreter, the legacy step executor and constant
/// folding; the slot-VM flattens the same tree to postfix bytecode instead.
Value evalFuncTree(const KernelEq &Eq, const std::vector<Value> &ArgValues);

} // namespace sigc

#endif // SIGNALC_SEMA_KERNEL_H
