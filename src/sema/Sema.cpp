//===--- Sema.cpp - Name resolution and type checking ---------------------===//

#include "sema/Sema.h"

using namespace sigc;

bool Sema::typesCompatible(TypeKind Target, TypeKind Source) const {
  if (Target == Source)
    return true;
  // Integer widens to real.
  if (Target == TypeKind::Real && Source == TypeKind::Integer)
    return true;
  // An event is an always-true boolean.
  if (Target == TypeKind::Boolean && Source == TypeKind::Event)
    return true;
  return false;
}

static bool isBoolish(TypeKind T) {
  return T == TypeKind::Boolean || T == TypeKind::Event;
}

static bool isNumeric(TypeKind T) {
  return T == TypeKind::Integer || T == TypeKind::Real;
}

TypeKind Sema::checkExpr(const ProcessDecl &D, Expr *E) {
  TypeKind Result = TypeKind::Unknown;
  switch (E->kind()) {
  case ExprKind::Name: {
    auto *N = cast<NameExpr>(E);
    auto It = NameTypes.find(N->name());
    if (It == NameTypes.end()) {
      Diags.error(E->loc(), "use of undeclared signal '" +
                                std::string(Ctx.interner().spelling(
                                    N->name())) +
                                "'");
      return TypeKind::Unknown;
    }
    Result = It->second;
    break;
  }
  case ExprKind::Const:
    Result = cast<ConstExpr>(E)->value().Kind;
    break;
  case ExprKind::Unary: {
    auto *U = cast<UnaryExpr>(E);
    TypeKind T = checkExpr(D, U->operand());
    if (T == TypeKind::Unknown)
      return TypeKind::Unknown;
    if (U->op() == UnaryOp::Not) {
      if (!isBoolish(T)) {
        Diags.error(E->loc(), "'not' requires a boolean operand, got " +
                                  std::string(typeName(T)));
        return TypeKind::Unknown;
      }
      Result = TypeKind::Boolean;
    } else {
      if (!isNumeric(T)) {
        Diags.error(E->loc(), "unary '-' requires a numeric operand, got " +
                                  std::string(typeName(T)));
        return TypeKind::Unknown;
      }
      Result = T;
    }
    break;
  }
  case ExprKind::Binary: {
    auto *B = cast<BinaryExpr>(E);
    TypeKind L = checkExpr(D, B->lhs());
    TypeKind R = checkExpr(D, B->rhs());
    if (L == TypeKind::Unknown || R == TypeKind::Unknown)
      return TypeKind::Unknown;
    if (isLogicalOp(B->op())) {
      if (!isBoolish(L) || !isBoolish(R)) {
        Diags.error(E->loc(), std::string("'") + binaryOpName(B->op()) +
                                  "' requires boolean operands");
        return TypeKind::Unknown;
      }
      Result = TypeKind::Boolean;
    } else if (isPredicateOp(B->op())) {
      bool Comparable = (isNumeric(L) && isNumeric(R)) ||
                        (isBoolish(L) && isBoolish(R));
      // Ordering comparisons need numbers.
      if (B->op() != BinaryOp::Eq && B->op() != BinaryOp::Ne)
        Comparable = isNumeric(L) && isNumeric(R);
      if (!Comparable) {
        Diags.error(E->loc(), std::string("operands of '") +
                                  binaryOpName(B->op()) +
                                  "' have incompatible types " + typeName(L) +
                                  " and " + typeName(R));
        return TypeKind::Unknown;
      }
      Result = TypeKind::Boolean;
    } else {
      // Arithmetic.
      if (B->op() == BinaryOp::Mod) {
        if (L != TypeKind::Integer || R != TypeKind::Integer) {
          Diags.error(E->loc(), "'mod' requires integer operands");
          return TypeKind::Unknown;
        }
        Result = TypeKind::Integer;
      } else {
        if (!isNumeric(L) || !isNumeric(R)) {
          Diags.error(E->loc(), std::string("'") + binaryOpName(B->op()) +
                                    "' requires numeric operands");
          return TypeKind::Unknown;
        }
        Result = (L == TypeKind::Real || R == TypeKind::Real)
                     ? TypeKind::Real
                     : TypeKind::Integer;
      }
    }
    break;
  }
  case ExprKind::Delay: {
    auto *Dl = cast<DelayExpr>(E);
    TypeKind T = checkExpr(D, Dl->operand());
    if (T == TypeKind::Unknown)
      return TypeKind::Unknown;
    if (!isa<NameExpr>(Dl->operand())) {
      // The kernel's "$" applies to a signal; lowering introduces fresh
      // signals for expressions, so anything but a constant is fine.
      if (isa<ConstExpr>(Dl->operand())) {
        Diags.error(E->loc(), "'$' cannot be applied to a constant");
        return TypeKind::Unknown;
      }
    }
    if (T == TypeKind::Event) {
      Diags.error(E->loc(), "'$' cannot be applied to an event signal");
      return TypeKind::Unknown;
    }
    if (!typesCompatible(T, Dl->init().Kind) &&
        !typesCompatible(Dl->init().Kind, T)) {
      Diags.error(E->loc(),
                  std::string("'init' value type ") +
                      typeName(Dl->init().Kind) +
                      " does not match delayed signal type " + typeName(T));
      return TypeKind::Unknown;
    }
    Result = T;
    break;
  }
  case ExprKind::When: {
    auto *W = cast<WhenExpr>(E);
    TypeKind V = checkExpr(D, W->value());
    TypeKind C = checkExpr(D, W->condition());
    if (V == TypeKind::Unknown || C == TypeKind::Unknown)
      return TypeKind::Unknown;
    if (C != TypeKind::Boolean) {
      Diags.error(W->condition()->loc(),
                  std::string("condition of 'when' must be boolean, got ") +
                      typeName(C));
      return TypeKind::Unknown;
    }
    Result = V;
    break;
  }
  case ExprKind::Default: {
    auto *Df = cast<DefaultExpr>(E);
    TypeKind L = checkExpr(D, Df->preferred());
    TypeKind R = checkExpr(D, Df->alternative());
    if (L == TypeKind::Unknown || R == TypeKind::Unknown)
      return TypeKind::Unknown;
    if (isNumeric(L) && isNumeric(R)) {
      // No implicit integer/real promotion across the merge: the arms'
      // runtime kinds would then depend on which arm is present each
      // instant, which no static lowering (the C emitter's typed slot
      // locals in particular) can reproduce. SIGNAL's default requires
      // like-typed operands; enforce it.
      if (L != R) {
        Diags.error(E->loc(), std::string("operands of 'default' must have "
                                          "the same numeric type, got ") +
                                  typeName(L) + " and " + typeName(R));
        return TypeKind::Unknown;
      }
      Result = L;
    } else if (isBoolish(L) && isBoolish(R)) {
      Result = (L == TypeKind::Event && R == TypeKind::Event)
                   ? TypeKind::Event
                   : TypeKind::Boolean;
    } else {
      Diags.error(E->loc(), std::string("operands of 'default' have "
                                        "incompatible types ") +
                                typeName(L) + " and " + typeName(R));
      return TypeKind::Unknown;
    }
    break;
  }
  case ExprKind::Event: {
    TypeKind T = checkExpr(D, cast<EventExpr>(E)->operand());
    if (T == TypeKind::Unknown)
      return TypeKind::Unknown;
    Result = TypeKind::Event;
    break;
  }
  case ExprKind::UnaryWhen: {
    TypeKind C = checkExpr(D, cast<UnaryWhenExpr>(E)->condition());
    if (C == TypeKind::Unknown)
      return TypeKind::Unknown;
    if (C != TypeKind::Boolean) {
      Diags.error(E->loc(),
                  std::string("operand of unary 'when' must be boolean, "
                              "got ") +
                      typeName(C));
      return TypeKind::Unknown;
    }
    Result = TypeKind::Event;
    break;
  }
  case ExprKind::Cell: {
    auto *C = cast<CellExpr>(E);
    TypeKind V = checkExpr(D, C->value());
    TypeKind B = checkExpr(D, C->condition());
    if (V == TypeKind::Unknown || B == TypeKind::Unknown)
      return TypeKind::Unknown;
    if (B != TypeKind::Boolean) {
      Diags.error(C->condition()->loc(),
                  "condition of 'cell' must be boolean");
      return TypeKind::Unknown;
    }
    if (!typesCompatible(V, C->init().Kind)) {
      Diags.error(E->loc(), "'init' value of 'cell' does not match value "
                            "type");
      return TypeKind::Unknown;
    }
    Result = V;
    break;
  }
  }
  E->setType(Result);
  return Result;
}

bool Sema::checkProcess(const ProcessDecl &D, const Process *P) {
  switch (P->kind()) {
  case ProcessKind::Equation: {
    const auto *E = cast<EquationProc>(P);
    std::string TargetName(Ctx.interner().spelling(E->target()));
    auto TyIt = NameTypes.find(E->target());
    if (TyIt == NameTypes.end()) {
      Diags.error(P->loc(),
                  "equation defines undeclared signal '" + TargetName + "'");
      return false;
    }
    const SignalDecl *SD = D.findSignal(E->target());
    if (SD && SD->Dir == SignalDir::Input) {
      Diags.error(P->loc(),
                  "input signal '" + TargetName + "' cannot be defined");
      return false;
    }
    auto [It, Inserted] = Defined.emplace(E->target(), P->loc());
    (void)It;
    if (!Inserted) {
      Diags.error(P->loc(),
                  "signal '" + TargetName + "' is defined more than once");
      return false;
    }
    TypeKind RhsTy = checkExpr(D, E->rhs());
    if (RhsTy == TypeKind::Unknown)
      return false;
    if (!typesCompatible(TyIt->second, RhsTy)) {
      Diags.error(P->loc(), "cannot define " +
                                std::string(typeName(TyIt->second)) +
                                " signal '" + TargetName + "' with a " +
                                typeName(RhsTy) + " expression");
      return false;
    }
    return true;
  }
  case ProcessKind::Composition: {
    bool Ok = true;
    for (const Process *Child : cast<CompositionProc>(P)->children())
      Ok &= checkProcess(D, Child);
    return Ok;
  }
  case ProcessKind::Synchro: {
    bool Ok = true;
    for (Expr *Op : cast<SynchroProc>(P)->operands())
      Ok &= checkExpr(D, Op) != TypeKind::Unknown;
    return Ok;
  }
  case ProcessKind::ClockEq: {
    const auto *C = cast<ClockEqProc>(P);
    return checkExpr(D, C->lhs()) != TypeKind::Unknown &&
           checkExpr(D, C->rhs()) != TypeKind::Unknown;
  }
  }
  return false;
}
