//===--- Sema.h - Semantic analysis and kernel lowering ---------*- C++-*-===//
///
/// \file
/// Two cooperating passes over a parsed ProcessDecl:
///
///   1. type checking / name resolution (Sema.cpp): every name must be
///      declared, every signal defined at most once, inputs never defined,
///      outputs always defined, operator typing rules enforced;
///   2. lowering (Lowering.cpp): derived operators are rewritten into the
///      kernel (Section 2.3 of the paper) and nested expressions are
///      flattened into three-address kernel equations, introducing fresh
///      signals named "t$<n>" (unspeakable in the surface syntax).
///
/// Derived-operator expansions implemented:
///   event X          ==>  E := (X = X)
///   when C           ==>  W := C when C
///   X cell B init v  ==>  Z := Y $ 1 init v | Y := X default Z
///                         | W := when B | T := X default W | synchro {Y,T}
///   X $ n init v     ==>  chain of n unit delays
///   synchro {E1..En} ==>  pairwise clock constraints
///   E1 ^= E2         ==>  clock constraint
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_SEMA_SEMA_H
#define SIGNALC_SEMA_SEMA_H

#include "ast/Ast.h"
#include "sema/Kernel.h"
#include "support/Diagnostics.h"

#include <optional>
#include <unordered_map>

namespace sigc {

/// Runs type checking then kernel lowering on one process.
class Sema {
public:
  Sema(AstContext &Ctx, DiagnosticEngine &Diags) : Ctx(Ctx), Diags(Diags) {}

  /// Checks and lowers \p D.
  /// \returns the kernel program, or std::nullopt after reporting errors.
  std::optional<KernelProgram> analyze(const ProcessDecl &D);

private:
  // --- Type checking (Sema.cpp) ---
  bool checkProcess(const ProcessDecl &D, const Process *P);
  TypeKind checkExpr(const ProcessDecl &D, Expr *E);
  bool typesCompatible(TypeKind Target, TypeKind Source) const;

  // --- Lowering (Lowering.cpp) ---
  struct LowerState;
  bool lowerProcess(LowerState &LS, const Process *P);
  bool lowerEquation(LowerState &LS, const EquationProc *E);
  /// Flattens \p E into an atom, emitting equations for intermediates.
  Atom lowerToAtom(LowerState &LS, const Expr *E);
  /// Flattens \p E into a signal (wrapping constants is an error, reported).
  SignalId lowerToSignal(LowerState &LS, const Expr *E);
  /// Lowers \p E into (the definition of) signal \p Target.
  bool lowerInto(LowerState &LS, SignalId Target, const Expr *E);
  /// Builds a Func operator tree rooted at \p E into \p Eq; \returns the
  /// node index or -1 on error.
  int buildFuncTree(LowerState &LS, KernelEq &Eq, const Expr *E);

  AstContext &Ctx;
  DiagnosticEngine &Diags;

  /// Per-analysis map from names to declared/inferred types.
  std::unordered_map<Symbol, TypeKind> NameTypes;
  /// Equation targets seen so far (single-assignment check).
  std::unordered_map<Symbol, SourceLoc> Defined;
};

} // namespace sigc

#endif // SIGNALC_SEMA_SEMA_H
