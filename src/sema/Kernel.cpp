//===--- Kernel.cpp - Kernel program helpers ------------------------------===//

#include "sema/Kernel.h"

#include <cassert>
#include <cmath>

using namespace sigc;

std::vector<SignalId> KernelProgram::inputs() const {
  std::vector<SignalId> Result;
  for (SignalId I = 0; I < Signals.size(); ++I)
    if (Signals[I].Dir == SignalDir::Input)
      Result.push_back(I);
  return Result;
}

std::vector<SignalId> KernelProgram::outputs() const {
  std::vector<SignalId> Result;
  for (SignalId I = 0; I < Signals.size(); ++I)
    if (Signals[I].Dir == SignalDir::Output)
      Result.push_back(I);
  return Result;
}

unsigned KernelProgram::countClockVariables() const {
  unsigned Count = 0;
  for (const KernelSignal &S : Signals) {
    ++Count; // the clock variable x̂
    if (S.Type == TypeKind::Boolean)
      Count += 2; // the condition literals [C] and [¬C]
  }
  return Count;
}

namespace {

std::string atomStr(const Atom &A, const KernelProgram &P,
                    const StringInterner &Names) {
  if (A.IsConst)
    return A.Const.str();
  return std::string(Names.spelling(P.Signals[A.Sig].Name));
}

std::string funcNodeStr(const KernelEq &Eq, int Node, const KernelProgram &P,
                        const StringInterner &Names) {
  const FuncNode &N = Eq.Nodes[Node];
  switch (N.Kind) {
  case FuncNode::Kind::Arg:
    return std::string(Names.spelling(P.Signals[Eq.Args[N.ArgIndex]].Name));
  case FuncNode::Kind::Const:
    return N.Const.str();
  case FuncNode::Kind::Unary:
    return std::string("(") + unaryOpName(N.UOp) +
           (N.UOp == UnaryOp::Not ? " " : "") +
           funcNodeStr(Eq, N.Lhs, P, Names) + ")";
  case FuncNode::Kind::Binary:
    return "(" + funcNodeStr(Eq, N.Lhs, P, Names) + " " +
           binaryOpName(N.BOp) + " " + funcNodeStr(Eq, N.Rhs, P, Names) + ")";
  }
  return "<bad>";
}

} // namespace

std::string KernelProgram::dump(const StringInterner &Names) const {
  std::string Out;
  auto sigName = [&](SignalId Id) {
    return std::string(Names.spelling(Signals[Id].Name));
  };
  for (const KernelEq &Eq : Equations) {
    Out += "  " + sigName(Eq.Target) + " := ";
    switch (Eq.Kind) {
    case KernelEqKind::Func:
      if (Eq.Nodes.empty())
        Out += "<empty>";
      else
        Out += funcNodeStr(Eq, static_cast<int>(Eq.Nodes.size()) - 1, *this,
                           Names);
      break;
    case KernelEqKind::Delay:
      Out += sigName(Eq.DelaySource) + " $ 1 init " + Eq.DelayInit.str();
      break;
    case KernelEqKind::When:
      Out += atomStr(Eq.WhenValue, *this, Names) + " when " +
             (Eq.WhenPositive ? "" : "not ") + sigName(Eq.WhenCond);
      break;
    case KernelEqKind::Default:
      Out += sigName(Eq.DefaultPreferred) + " default " +
             sigName(Eq.DefaultAlternative);
      break;
    }
    Out += "\n";
  }
  for (const ClockConstraint &C : Constraints)
    Out += "  synchro {" + sigName(C.First) + ", " + sigName(C.Second) + "}\n";
  return Out;
}

/// Two's-complement wrapping arithmetic: SIGNAL "integer" values wrap on
/// overflow (runaway accumulators are a legal program, not UB). Computing
/// through uint64_t keeps the C++ defined and matches what the emitted C
/// produces on the targets we run on.
static int64_t wrapAdd(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}
static int64_t wrapSub(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) -
                              static_cast<uint64_t>(B));
}
static int64_t wrapMul(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) *
                              static_cast<uint64_t>(B));
}
static int64_t wrapNeg(int64_t A) {
  return static_cast<int64_t>(0 - static_cast<uint64_t>(A));
}

Value sigc::evalFuncTree(const KernelEq &Eq,
                         const std::vector<Value> &ArgValues) {
  assert(Eq.Kind == KernelEqKind::Func && !Eq.Nodes.empty());

  // Evaluate bottom-up: children always precede parents in Nodes (the
  // lowering emits them in post-order).
  std::vector<Value> Results(Eq.Nodes.size());
  for (unsigned I = 0; I < Eq.Nodes.size(); ++I) {
    const FuncNode &N = Eq.Nodes[I];
    switch (N.Kind) {
    case FuncNode::Kind::Arg:
      assert(N.ArgIndex < ArgValues.size());
      Results[I] = ArgValues[N.ArgIndex];
      break;
    case FuncNode::Kind::Const:
      Results[I] = N.Const;
      break;
    case FuncNode::Kind::Unary: {
      const Value &V = Results[N.Lhs];
      if (N.UOp == UnaryOp::Not)
        Results[I] = Value::makeBool(!V.asBool());
      else if (V.Kind == TypeKind::Integer)
        Results[I] = Value::makeInt(wrapNeg(V.Int));
      else
        Results[I] = Value::makeReal(-V.asReal());
      break;
    }
    case FuncNode::Kind::Binary: {
      const Value &L = Results[N.Lhs];
      const Value &R = Results[N.Rhs];
      bool BothInt =
          L.Kind == TypeKind::Integer && R.Kind == TypeKind::Integer;
      switch (N.BOp) {
      case BinaryOp::Add:
        Results[I] = BothInt ? Value::makeInt(wrapAdd(L.Int, R.Int))
                             : Value::makeReal(L.asReal() + R.asReal());
        break;
      case BinaryOp::Sub:
        Results[I] = BothInt ? Value::makeInt(wrapSub(L.Int, R.Int))
                             : Value::makeReal(L.asReal() - R.asReal());
        break;
      case BinaryOp::Mul:
        Results[I] = BothInt ? Value::makeInt(wrapMul(L.Int, R.Int))
                             : Value::makeReal(L.asReal() * R.asReal());
        break;
      case BinaryOp::Div:
        // R == -1 is handled as negation: INT64_MIN / -1 overflows.
        if (BothInt)
          Results[I] = Value::makeInt(R.Int == 0    ? 0
                                      : R.Int == -1 ? wrapNeg(L.Int)
                                                    : L.Int / R.Int);
        else
          Results[I] = Value::makeReal(
              R.asReal() == 0.0 ? 0.0 : L.asReal() / R.asReal());
        break;
      case BinaryOp::Mod:
        // x mod -1 = 0; also sidesteps the INT64_MIN % -1 overflow.
        Results[I] = Value::makeInt(
            (R.Int == 0 || R.Int == -1)
                ? 0
                : ((L.Int % R.Int) + R.Int) % R.Int);
        break;
      case BinaryOp::And:
        Results[I] = Value::makeBool(L.asBool() && R.asBool());
        break;
      case BinaryOp::Or:
        Results[I] = Value::makeBool(L.asBool() || R.asBool());
        break;
      case BinaryOp::Xor:
        Results[I] = Value::makeBool(L.asBool() != R.asBool());
        break;
      case BinaryOp::Eq:
        Results[I] = Value::makeBool(L == R);
        break;
      case BinaryOp::Ne:
        Results[I] = Value::makeBool(!(L == R));
        break;
      case BinaryOp::Lt:
        Results[I] = Value::makeBool(L.asReal() < R.asReal());
        break;
      case BinaryOp::Le:
        Results[I] = Value::makeBool(L.asReal() <= R.asReal());
        break;
      case BinaryOp::Gt:
        Results[I] = Value::makeBool(L.asReal() > R.asReal());
        break;
      case BinaryOp::Ge:
        Results[I] = Value::makeBool(L.asReal() >= R.asReal());
        break;
      }
      break;
    }
    }
  }
  return Results.back();
}
