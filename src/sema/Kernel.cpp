//===--- Kernel.cpp - Kernel program helpers ------------------------------===//

#include "sema/Kernel.h"

#include <cassert>
#include <cmath>

using namespace sigc;

std::vector<SignalId> KernelProgram::inputs() const {
  std::vector<SignalId> Result;
  for (SignalId I = 0; I < Signals.size(); ++I)
    if (Signals[I].Dir == SignalDir::Input)
      Result.push_back(I);
  return Result;
}

std::vector<SignalId> KernelProgram::outputs() const {
  std::vector<SignalId> Result;
  for (SignalId I = 0; I < Signals.size(); ++I)
    if (Signals[I].Dir == SignalDir::Output)
      Result.push_back(I);
  return Result;
}

unsigned KernelProgram::countClockVariables() const {
  unsigned Count = 0;
  for (const KernelSignal &S : Signals) {
    ++Count; // the clock variable x̂
    if (S.Type == TypeKind::Boolean)
      Count += 2; // the condition literals [C] and [¬C]
  }
  return Count;
}

namespace {

std::string atomStr(const Atom &A, const KernelProgram &P,
                    const StringInterner &Names) {
  if (A.IsConst)
    return A.Const.str();
  return std::string(Names.spelling(P.Signals[A.Sig].Name));
}

std::string funcNodeStr(const KernelEq &Eq, int Node, const KernelProgram &P,
                        const StringInterner &Names) {
  const FuncNode &N = Eq.Nodes[Node];
  switch (N.Kind) {
  case FuncNode::Kind::Arg:
    return std::string(Names.spelling(P.Signals[Eq.Args[N.ArgIndex]].Name));
  case FuncNode::Kind::Const:
    return N.Const.str();
  case FuncNode::Kind::Unary:
    return std::string("(") + unaryOpName(N.UOp) +
           (N.UOp == UnaryOp::Not ? " " : "") +
           funcNodeStr(Eq, N.Lhs, P, Names) + ")";
  case FuncNode::Kind::Binary:
    return "(" + funcNodeStr(Eq, N.Lhs, P, Names) + " " +
           binaryOpName(N.BOp) + " " + funcNodeStr(Eq, N.Rhs, P, Names) + ")";
  }
  return "<bad>";
}

} // namespace

std::string KernelProgram::dump(const StringInterner &Names) const {
  std::string Out;
  auto sigName = [&](SignalId Id) {
    return std::string(Names.spelling(Signals[Id].Name));
  };
  for (const KernelEq &Eq : Equations) {
    Out += "  " + sigName(Eq.Target) + " := ";
    switch (Eq.Kind) {
    case KernelEqKind::Func:
      if (Eq.Nodes.empty())
        Out += "<empty>";
      else
        Out += funcNodeStr(Eq, static_cast<int>(Eq.Nodes.size()) - 1, *this,
                           Names);
      break;
    case KernelEqKind::Delay:
      Out += sigName(Eq.DelaySource) + " $ 1 init " + Eq.DelayInit.str();
      break;
    case KernelEqKind::When:
      Out += atomStr(Eq.WhenValue, *this, Names) + " when " +
             (Eq.WhenPositive ? "" : "not ") + sigName(Eq.WhenCond);
      break;
    case KernelEqKind::Default:
      Out += sigName(Eq.DefaultPreferred) + " default " +
             sigName(Eq.DefaultAlternative);
      break;
    }
    Out += "\n";
  }
  for (const ClockConstraint &C : Constraints)
    Out += "  synchro {" + sigName(C.First) + ", " + sigName(C.Second) + "}\n";
  return Out;
}

Value sigc::evalFuncTree(const KernelEq &Eq,
                         const std::vector<Value> &ArgValues) {
  assert(Eq.Kind == KernelEqKind::Func && !Eq.Nodes.empty());

  // Evaluate bottom-up: children always precede parents in Nodes (the
  // lowering emits them in post-order). The operator semantics live in
  // evalUnaryValue/evalBinaryValue (Kernel.h), shared with the step-VM.
  std::vector<Value> Results(Eq.Nodes.size());
  for (unsigned I = 0; I < Eq.Nodes.size(); ++I) {
    const FuncNode &N = Eq.Nodes[I];
    switch (N.Kind) {
    case FuncNode::Kind::Arg:
      assert(N.ArgIndex < ArgValues.size());
      Results[I] = ArgValues[N.ArgIndex];
      break;
    case FuncNode::Kind::Const:
      Results[I] = N.Const;
      break;
    case FuncNode::Kind::Unary:
      Results[I] = evalUnaryValue(N.UOp, Results[N.Lhs]);
      break;
    case FuncNode::Kind::Binary:
      Results[I] = evalBinaryValue(N.BOp, Results[N.Lhs], Results[N.Rhs]);
      break;
    }
  }
  return Results.back();
}
