//===--- BddDot.h - Graphviz export of BDDs ---------------------*- C++-*-===//
///
/// \file
/// Renders a BDD (or a set of shared BDDs) as a Graphviz "dot" digraph for
/// debugging and documentation. Complement edges are drawn with an "odot"
/// arrowhead into the single "1" terminal box; dashed edges are
/// else-branches.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_BDD_BDDDOT_H
#define SIGNALC_BDD_BDDDOT_H

#include "bdd/Bdd.h"

#include <functional>
#include <string>
#include <vector>

namespace sigc {

/// Produces a dot digraph of the graphs rooted at \p Roots.
/// \param VarName maps a BddVar to its label; pass nullptr for "x<N>".
std::string bddToDot(const BddManager &Mgr, const std::vector<BddRef> &Roots,
                     const std::function<std::string(BddVar)> &VarName = {});

} // namespace sigc

#endif // SIGNALC_BDD_BDDDOT_H
