//===--- BddDot.cpp -------------------------------------------------------===//

#include "bdd/BddDot.h"

#include <unordered_set>

using namespace sigc;

std::string sigc::bddToDot(const BddManager &Mgr,
                           const std::vector<BddRef> &Roots,
                           const std::function<std::string(BddVar)> &VarName) {
  // Complement-edge rendering: there is a single "1" terminal; a
  // complemented reference is drawn as an edge with an odot arrowhead
  // (so "odot into 1" reads as the False constant). Sharing is per node,
  // so F and ¬F point at the same drawn subgraph.
  std::string Out = "digraph bdd {\n";
  Out += "  node [shape=circle];\n";
  Out += "  t [label=\"1\", shape=box];\n";

  auto nodeId = [](uint32_t NodeIdx) -> std::string {
    if (NodeIdx == 0)
      return "t";
    return "n" + std::to_string(NodeIdx);
  };
  auto edge = [&](const std::string &From, BddRef To, bool Dashed) {
    std::string Attrs;
    if (Dashed)
      Attrs += "style=dashed";
    if (To.isComplement()) {
      if (!Attrs.empty())
        Attrs += ", ";
      Attrs += "arrowhead=odot";
    }
    std::string E = "  " + From + " -> " + nodeId(To.nodeIndex());
    if (!Attrs.empty())
      E += " [" + Attrs + "]";
    return E + ";\n";
  };

  std::unordered_set<uint32_t> Seen;
  std::vector<BddRef> Stack;
  for (unsigned I = 0; I < Roots.size(); ++I) {
    BddRef R = Roots[I];
    if (!R.isValid())
      continue;
    Out += "  r" + std::to_string(I) + " [label=\"root" + std::to_string(I) +
           "\", shape=plaintext];\n";
    Out += edge("r" + std::to_string(I), R, false);
    if (!R.isTerminal())
      Stack.push_back(R.regular());
  }

  while (!Stack.empty()) {
    BddRef Cur = Stack.back();
    Stack.pop_back();
    if (Cur.isTerminal() || !Seen.insert(Cur.nodeIndex()).second)
      continue;
    BddVar V = Mgr.nodeVar(Cur);
    std::string Label = VarName ? VarName(V) : ("x" + std::to_string(V));
    Out += "  " + nodeId(Cur.nodeIndex()) + " [label=\"" + Label + "\"];\n";
    // Cur is regular, so nodeLow/nodeHigh return the stored edges verbatim.
    BddRef Low = Mgr.nodeLow(Cur), High = Mgr.nodeHigh(Cur);
    Out += edge(nodeId(Cur.nodeIndex()), Low, /*Dashed=*/true);
    Out += edge(nodeId(Cur.nodeIndex()), High, /*Dashed=*/false);
    if (!Low.isTerminal())
      Stack.push_back(Low.regular());
    if (!High.isTerminal())
      Stack.push_back(High.regular());
  }
  Out += "}\n";
  return Out;
}
