//===--- BddDot.cpp -------------------------------------------------------===//

#include "bdd/BddDot.h"

#include <unordered_set>

using namespace sigc;

std::string sigc::bddToDot(const BddManager &Mgr,
                           const std::vector<BddRef> &Roots,
                           const std::function<std::string(BddVar)> &VarName) {
  std::string Out = "digraph bdd {\n";
  Out += "  node [shape=circle];\n";
  Out += "  f [label=\"0\", shape=box];\n";
  Out += "  t [label=\"1\", shape=box];\n";

  auto nodeId = [](BddRef R) -> std::string {
    if (R.isFalse())
      return "f";
    if (R.isTrue())
      return "t";
    return "n" + std::to_string(R.index());
  };

  std::unordered_set<uint32_t> Seen;
  std::vector<BddRef> Stack;
  for (unsigned I = 0; I < Roots.size(); ++I) {
    BddRef R = Roots[I];
    if (!R.isValid())
      continue;
    Out += "  r" + std::to_string(I) + " [label=\"root" + std::to_string(I) +
           "\", shape=plaintext];\n";
    Out += "  r" + std::to_string(I) + " -> " + nodeId(R) + ";\n";
    if (!R.isTerminal())
      Stack.push_back(R);
  }

  while (!Stack.empty()) {
    BddRef Cur = Stack.back();
    Stack.pop_back();
    if (Cur.isTerminal() || !Seen.insert(Cur.index()).second)
      continue;
    BddVar V = Mgr.nodeVar(Cur);
    std::string Label = VarName ? VarName(V) : ("x" + std::to_string(V));
    Out += "  " + nodeId(Cur) + " [label=\"" + Label + "\"];\n";
    BddRef Low = Mgr.nodeLow(Cur), High = Mgr.nodeHigh(Cur);
    Out += "  " + nodeId(Cur) + " -> " + nodeId(Low) + " [style=dashed];\n";
    Out += "  " + nodeId(Cur) + " -> " + nodeId(High) + ";\n";
    if (!Low.isTerminal())
      Stack.push_back(Low);
    if (!High.isTerminal())
      Stack.push_back(High);
  }
  Out += "}\n";
  return Out;
}
