//===--- Bdd.h - Reduced ordered binary decision diagrams -------*- C++-*-===//
///
/// \file
/// A from-scratch ROBDD package in the style of Brace/Rudell/Bryant
/// ("Efficient Implementation of a BDD Package", DAC 1990), standing in for
/// the UC Berkeley package the paper used. It provides the operations the
/// SIGNAL clock calculus needs:
///
///   * canonical node construction through a shared unique table,
///   * ITE with standard-triple normalization and the derived boolean
///     connectives (and/or/not/diff/xor/iff),
///   * cofactors, existential/universal quantification, composition,
///   * a non-allocating implication (inclusion) test — the hot operation of
///     the arborescent resolution,
///   * support and node counting, satisfying-assignment counting and
///     one-path extraction,
///   * a node budget hooked into sigc::Budget so that runaway constructions
///     surface as the paper's "unable-mem"/"unable-cpu" verdicts instead of
///     exhausting the machine.
///
/// Representation: **complement edges** with a single True terminal. A
/// BddRef packs a node index and a complement bit; negation is a constant
/// time bit flip that allocates nothing. Canonicity is preserved by the
/// Brace-Rudell-Bryant rule that only else-edges (and external references)
/// may carry the complement bit: a node's then-edge is always regular, and
/// mkNode() re-normalizes by complementing both branches and the result
/// when handed a complemented then-branch. Consequences for clients:
///
///   * nodeHigh()/nodeLow() return the *semantic* cofactors of the referenced
///     function (the stored edge with the reference's own complement bit
///     pushed through), so evaluation-style traversals keep working
///     unchanged; identity-style traversals (sharing, node counts) must key
///     on nodeIndex(), not on the full reference;
///   * a function and its negation share every node, so apply_not() is free
///     and the ¬, ∧/∨ De-Morgan duals hit the same cache lines;
///   * the False terminal is the complemented True terminal: there is
///     exactly one terminal node (index 0).
///
/// Nodes are referenced by 32-bit packed refs into an arena. Garbage
/// collection is *opt-in* (enableGC()): the compiler's per-solver managers
/// stay collector-free and keep their trivial reference semantics, while
/// long-lived managers — the linker's joint clock space over many producer
/// forests — take external reference counts (addRef/decRef) on the roots
/// they keep and let mark-and-sweep reclaim everything else when the node
/// Budget comes under pressure. Freed slots are reused in place (nodes
/// never move, so held refs to live nodes stay valid across a sweep), the
/// unique table is rebuilt over the survivors, and both operation caches
/// are invalidated — a reused index must never satisfy a stale probe.
/// Collection runs only at public-operation entry, never mid-recursion, so
/// in-flight intermediate results need no protection protocol.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_BDD_BDD_H
#define SIGNALC_BDD_BDD_H

#include "support/Budget.h"

#include <cstdint>
#include <string>
#include <vector>

namespace sigc {

/// A reference to a BDD node inside a BddManager: a node index in the upper
/// 31 bits and a complement ("negate this function") bit in bit 0.
///
/// The null reference (invalid()) is returned by operations that were cut
/// short by the resource budget; it propagates through all operations.
class BddRef {
public:
  BddRef() = default;
  /// Raw-bits constructor: \p Bits is (nodeIndex << 1) | complement.
  explicit BddRef(uint32_t Bits) : Bits(Bits) {}

  static BddRef falseRef() { return BddRef(1); } // ¬True
  static BddRef trueRef() { return BddRef(0); }
  static BddRef invalid() { return BddRef(); }

  bool isValid() const { return Bits != InvalidBits; }
  bool isFalse() const { return Bits == 1; }
  bool isTrue() const { return Bits == 0; }
  bool isTerminal() const { return Bits <= 1; }

  /// The packed representation (node index + complement bit). Two refs are
  /// the same function iff their index() is equal.
  uint32_t index() const { return Bits; }

  /// Index of the referenced node in the manager's arena (complement bit
  /// stripped). F and ¬F have equal nodeIndex().
  uint32_t nodeIndex() const { return Bits >> 1; }

  /// \returns true if this reference complements the stored node function.
  bool isComplement() const { return (Bits & 1u) != 0; }

  /// The same node without the complement bit.
  BddRef regular() const { return BddRef(Bits & ~1u); }

  /// The negated function — constant time, no allocation. Negating the
  /// invalid ref yields the invalid ref.
  BddRef operator!() const {
    return isValid() ? BddRef(Bits ^ 1u) : invalid();
  }

  bool operator==(const BddRef &RHS) const { return Bits == RHS.Bits; }
  bool operator!=(const BddRef &RHS) const { return Bits != RHS.Bits; }
  bool operator<(const BddRef &RHS) const { return Bits < RHS.Bits; }

private:
  static constexpr uint32_t InvalidBits = 0xFFFFFFFFu;
  uint32_t Bits = InvalidBits;
};

/// A BDD variable, identified by its position in the (fixed) order:
/// smaller value = closer to the root.
using BddVar = uint32_t;

/// Shared-unique-table BDD manager.
class BddManager {
public:
  /// \param ExpectedVars expected number of distinct variables; sizes the
  /// unique table and the operation caches so typical programs never rehash.
  /// 0 picks a small default.
  explicit BddManager(unsigned ExpectedVars = 0);

  /// Re-sizes the unique table and operation caches for a program over
  /// \p ExpectedVars variables. Existing nodes and warm cache entries are
  /// rehashed, never dropped; tables only grow.
  void presize(unsigned ExpectedVars);

  /// Attaches a resource budget. The manager checks the node limit on every
  /// allocation and the time limit periodically; once the budget trips, all
  /// operations return BddRef::invalid().
  void setBudget(Budget *B) { Bud = B; }

  /// Declares (or returns) the projection function of variable \p Var.
  BddRef var(BddVar Var);
  /// \returns the complement of variable \p Var.
  BddRef nvar(BddVar Var);

  BddRef top() const { return BddRef::trueRef(); }
  BddRef bottom() const { return BddRef::falseRef(); }

  /// If-then-else: the universal connective. Normalizes the operand triple
  /// (equal/complement collapse, commutation toward the smaller operand,
  /// complement canonicalization) so all equivalent calls share one cache
  /// line and one polarity of the result.
  BddRef ite(BddRef F, BddRef G, BddRef H);

  BddRef apply_and(BddRef F, BddRef G) { return ite(F, G, bottom()); }
  BddRef apply_or(BddRef F, BddRef G) { return ite(F, top(), G); }
  /// Negation is a complement-bit flip: constant time, no allocation.
  BddRef apply_not(BddRef F) { return !F; }
  /// Set difference F \ G  =  F ∧ ¬G.
  BddRef apply_diff(BddRef F, BddRef G) { return ite(F, !G, bottom()); }
  BddRef apply_xor(BddRef F, BddRef G) { return ite(F, !G, G); }
  /// Biconditional F ⇔ G.
  BddRef apply_iff(BddRef F, BddRef G) { return ite(F, G, !G); }
  /// Implication as a function: ¬F ∨ G.
  BddRef apply_imp(BddRef F, BddRef G) { return ite(F, G, top()); }

  /// \returns true iff F ⇒ G is a tautology, i.e. F ∧ ¬G = 0.
  /// For clocks this is the inclusion test F ⊆ G. This is an ITE-to-constant
  /// check: it recurses over existing nodes and allocates nothing, so it
  /// can never trip the node budget (the forest's hot loops call it per
  /// candidate parent). It does poll the time budget; once that trips it
  /// conservatively answers false — check budgetExhausted() to tell a
  /// refutation from an abort.
  bool implies(BddRef F, BddRef G);

  /// \returns true iff F and G denote the same function (trivial, since
  /// BDDs are canonical — provided for readability at call sites).
  bool equivalent(BddRef F, BddRef G) const { return F == G; }

  /// Positive/negative cofactor of \p F by variable \p Var.
  BddRef restrict(BddRef F, BddVar Var, bool Value);

  /// Existential quantification of a single variable.
  BddRef exists(BddRef F, BddVar Var);
  /// Universal quantification of a single variable.
  BddRef forall(BddRef F, BddVar Var);
  /// Existential quantification of a set of variables. Quantifies deepest
  /// variables first (descending order) and stops as soon as the result is
  /// a terminal, so each pass touches only the not-yet-quantified suffix of
  /// the graph.
  BddRef existsMany(BddRef F, const std::vector<BddVar> &Vars);

  /// Substitutes function \p G for variable \p Var inside \p F.
  BddRef compose(BddRef F, BddVar Var, BddRef G);

  /// \returns the set of variables F depends on, ascending.
  std::vector<BddVar> support(BddRef F);

  /// Number of satisfying assignments of \p F over \p NumVars variables.
  double satCount(BddRef F, unsigned NumVars);

  /// Extracts one satisfying assignment as (var, value) pairs along a
  /// true-path; requires F != 0 and F valid.
  std::vector<std::pair<BddVar, bool>> anySat(BddRef F);

  /// Structural size of the graph rooted at \p F (the terminal is not
  /// counted; F and ¬F have equal size since they share every node).
  uint64_t countNodes(BddRef F) const;
  /// Structural size of the union of the graphs rooted at \p Roots.
  uint64_t countNodesMany(const std::vector<BddRef> &Roots) const;

  /// Total nodes ever allocated in this manager (excludes the terminal).
  uint64_t numNodes() const { return Nodes.size() - 1; }

  /// Largest variable ever successfully declared, plus one. Budget-tripped
  /// var()/nvar() calls do not count.
  unsigned numVars() const { return NumVars; }

  /// Accessors for traversals. nodeLow()/nodeHigh() return the *semantic*
  /// else/then cofactor of the function F references: the stored edge with
  /// F's complement bit pushed through. Traversals that compute with the
  /// function can use them unchanged; traversals that need node identity
  /// (sharing, counting) must key on nodeIndex().
  BddVar nodeVar(BddRef F) const { return Nodes[F.nodeIndex()].Var; }
  BddRef nodeLow(BddRef F) const {
    return withComplement(BddRef(Nodes[F.nodeIndex()].Low), F.isComplement());
  }
  BddRef nodeHigh(BddRef F) const {
    return withComplement(BddRef(Nodes[F.nodeIndex()].High),
                          F.isComplement());
  }

  /// Evaluates F under a full assignment (index = variable).
  bool evaluate(BddRef F, const std::vector<bool> &Assignment) const;

  /// \returns true once the attached budget has tripped.
  bool budgetExhausted() const { return Bud && Bud->exhausted(); }

  //===--- Garbage collection (opt-in) -------------------------------------===//
  //
  // Off by default: compiler-side managers are short-lived and hold plain
  // unref'd BddRefs everywhere (ClockForest nodes, solver scratch), so a
  // collector must never run behind their back. A manager that opts in
  // promises that everything it needs across operations is addRef'd.

  /// Opts this manager into garbage collection. Once enabled, node-budget
  /// pressure triggers a mark-and-sweep from the addRef'd roots at the
  /// next public-operation entry (and pollBudget counts *live* nodes, so
  /// reclaimed garbage does not count against the Budget).
  void enableGC() { GcEnabled = true; }
  bool gcEnabled() const { return GcEnabled; }

  /// Takes an external reference on the node \p F points at, protecting it
  /// (and everything reachable from it) across sweeps. Terminal/invalid
  /// refs are accepted and ignored. F and ¬F share the one count.
  void addRef(BddRef F);
  /// Drops one external reference previously taken with addRef().
  void decRef(BddRef F);

  /// Runs one mark-and-sweep now: marks from every node with a positive
  /// external count, moves dead nodes to the free list for in-place reuse,
  /// rebuilds the unique table over the survivors and invalidates both
  /// operation caches. \returns the number of nodes reclaimed.
  uint64_t gc();

  /// Nodes currently live (allocated minus reclaimed; excludes the
  /// terminal, like numNodes()).
  uint64_t numLiveNodes() const { return Nodes.size() - 1 - FreeList.size(); }

  /// Sweeps run / nodes reclaimed so far (tests, bench_link).
  uint64_t gcRuns() const { return GcRuns; }
  uint64_t gcReclaimed() const { return GcReclaimed; }

  /// Testing hook: clamps both operation caches to \p Entries slots
  /// (rounded down to a power of two, minimum 1) and freezes automatic
  /// cache growth, so collisions become easy to force. Never use outside
  /// tests.
  void setCacheCapacityForTesting(uint32_t Entries);

  // --- Instrumentation (cheap counters, read by bench_bdd) ---------------
  uint64_t cacheHits() const { return Stats.CacheHits; }
  uint64_t cacheMisses() const { return Stats.CacheMisses; }
  /// Cache slots whose stored operands did not match the probe — the case
  /// the pre-rework cache silently mistook for a hit.
  uint64_t cacheCollisions() const { return Stats.CacheCollisions; }

private:
  /// Operation tag stored in each cache entry; an entry only hits when the
  /// tag *and* all stored operands match the probe verbatim.
  enum class CacheOp : uint32_t {
    None = 0, ///< Empty slot.
    Ite,
    Restrict,
    Compose,
    Exists,
    Implies,
  };

  struct Node {
    BddVar Var;    ///< The terminal uses TerminalVar.
    uint32_t Low;  ///< Else-branch ref bits (may carry the complement bit).
    uint32_t High; ///< Then-branch ref bits (never complemented).
  };

  static constexpr BddVar TerminalVar = 0xFFFFFFFFu;
  static constexpr uint32_t NoEntry = 0xFFFFFFFFu;

  /// One operand-verified cache slot: the verbatim (op, A, B, C) key plus
  /// the result. Hash collisions compare unequal and count as misses
  /// instead of silently returning the colliding entry's result.
  /// Deliberately trivial (no default member initializers): whole tables
  /// are created zero-filled, which the allocator turns into a memset, and
  /// an all-zero entry reads as an empty slot (Op == CacheOp::None).
  struct CacheEntry {
    uint32_t Op; ///< CacheOp; None marks an empty slot.
    uint32_t A;
    uint32_t B;
    uint32_t C;
    uint32_t Result;
  };

  static BddRef withComplement(BddRef R, bool Complement) {
    return Complement ? !R : R;
  }

  /// splitmix64 finalizer: the mixing round behind both hash tables.
  static uint64_t mix64(uint64_t X) {
    X += 0x9e3779b97f4a7c15ull;
    X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
    X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
    return X ^ (X >> 31);
  }

  /// One-round hash of a node triple for the open-addressed unique table;
  /// collisions are resolved by probing, so one mix round is enough.
  static uint64_t hashNode(BddVar Var, uint32_t Low, uint32_t High) {
    uint64_t X = (uint64_t(Low) << 32) | High;
    return mix64(X ^ uint64_t(Var) * 0x100000001b3ull);
  }

  /// One-round hash of an op-tagged cache key. The caches are direct-mapped
  /// and operand-verified, so a colliding key is a miss, never a wrong hit.
  static uint64_t hashCacheKey(uint32_t Op, uint32_t A, uint32_t B,
                               uint32_t C) {
    uint64_t X = (uint64_t(A) << 32) | B;
    uint64_t Y = (uint64_t(Op) << 32) | C;
    return mix64(X ^ Y * 0x9e3779b97f4a7c15ull);
  }

  BddRef mkNode(BddVar Var, BddRef Low, BddRef High);
  uint32_t *uniqueSlot(BddVar Var, uint32_t Low, uint32_t High);
  void growUnique();
  void growCachesTo(unsigned TargetLog2);
  bool pollBudget();
  /// Collects at public-operation entry when the live count nears the node
  /// budget. Never called from inside a recursion (locals there hold
  /// unprotected intermediate refs).
  void maybeCollect();

  /// Probes \p Cache for (Op, A, B, C); writes the computed hash to
  /// \p HashOut so a following cacheStore() does not re-hash. Defined here
  /// so the per-recursion probe inlines into the operation loops.
  const CacheEntry *cacheLookup(const std::vector<CacheEntry> &Cache,
                                CacheOp Op, uint32_t A, uint32_t B, uint32_t C,
                                uint64_t &HashOut) {
    HashOut = hashCacheKey(static_cast<uint32_t>(Op), A, B, C);
    const CacheEntry &E = Cache[HashOut & CacheMask];
    if (E.Op == static_cast<uint32_t>(Op) && E.A == A && E.B == B &&
        E.C == C) {
      ++Stats.CacheHits;
      return &E;
    }
    if (E.Op != static_cast<uint32_t>(CacheOp::None))
      ++Stats.CacheCollisions;
    ++Stats.CacheMisses;
    return nullptr;
  }

  void cacheStore(std::vector<CacheEntry> &Cache, uint64_t Hash, CacheOp Op,
                  uint32_t A, uint32_t B, uint32_t C, uint32_t Result) {
    Cache[Hash & CacheMask] = {static_cast<uint32_t>(Op), A, B, C, Result};
  }

  BddVar topVar(BddRef F) const {
    return F.isTerminal() ? TerminalVar : Nodes[F.nodeIndex()].Var;
  }
  /// Cofactor of \p F by the variable \p Top (no-op when F starts lower).
  BddRef cofactor(BddRef F, BddVar Top, bool High) const;

  BddRef iteRec(BddRef F, BddRef G, BddRef H);
  bool impliesRec(BddRef F, BddRef G);
  BddRef restrictRec(BddRef F, BddVar Var, bool Value);
  BddRef existsRec(BddRef F, BddVar Var);
  BddRef composeRec(BddRef F, BddVar Var, BddRef G);
  double satFraction(BddRef F, std::vector<double> &Memo);

  struct Counters {
    uint64_t CacheHits = 0;
    uint64_t CacheMisses = 0;
    uint64_t CacheCollisions = 0;
  };

  std::vector<Node> Nodes;
  std::vector<uint32_t> UniqueTable; ///< Open-addressed, stores node indices.
  uint32_t UniqueMask = 0;

  std::vector<CacheEntry> IteCache;
  std::vector<CacheEntry> OpCache; ///< restrict/compose/quantify/implies.
  uint32_t CacheMask = 0;
  bool CacheGrowthFrozen = false;

  unsigned NumVars = 0;
  Budget *Bud = nullptr;
  uint64_t AllocsSincePoll = 0;
  Counters Stats;

  /// GC state. ExtRefs is index-aligned with Nodes (grown lazily);
  /// FreeList holds reclaimed node indices for in-place reuse. Dead slots
  /// are tombstoned with Var == TerminalVar so table rebuilds skip them.
  bool GcEnabled = false;
  std::vector<uint32_t> ExtRefs;
  std::vector<uint32_t> FreeList;
  uint64_t GcFloor = 0; ///< Live count after the last sweep (hysteresis).
  uint64_t GcRuns = 0;
  uint64_t GcReclaimed = 0;
};

} // namespace sigc

#endif // SIGNALC_BDD_BDD_H
