//===--- Bdd.h - Reduced ordered binary decision diagrams -------*- C++-*-===//
///
/// \file
/// A from-scratch ROBDD package in the style of Bryant's original algorithms
/// (Bryant, IEEE ToC 1986), standing in for the UC Berkeley package the paper
/// used. It provides the operations the SIGNAL clock calculus needs:
///
///   * canonical node construction through a shared unique table,
///   * ITE and the derived boolean connectives (and/or/not/diff/xor/iff),
///   * cofactors, existential/universal quantification, composition,
///   * implication (inclusion) tests, support and node counting,
///   * satisfying-assignment counting and one-path extraction,
///   * a node budget hooked into sigc::Budget so that runaway constructions
///     surface as the paper's "unable-mem"/"unable-cpu" verdicts instead of
///     exhausting the machine.
///
/// Nodes are referenced by 32-bit indices into an arena. Index 0 is the
/// False terminal, index 1 the True terminal. There is no garbage collector:
/// managers are cheap and short-lived (one per solver run), which matches
/// how the compiler uses them and keeps reference semantics trivial.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_BDD_BDD_H
#define SIGNALC_BDD_BDD_H

#include "support/Budget.h"

#include <cstdint>
#include <string>
#include <vector>

namespace sigc {

/// A reference to a BDD node inside a BddManager.
///
/// The null reference (invalid()) is returned by operations that were cut
/// short by the resource budget; it propagates through all operations.
class BddRef {
public:
  BddRef() = default;
  explicit BddRef(uint32_t Index) : Index(Index) {}

  static BddRef falseRef() { return BddRef(0); }
  static BddRef trueRef() { return BddRef(1); }
  static BddRef invalid() { return BddRef(); }

  bool isValid() const { return Index != InvalidIndex; }
  bool isFalse() const { return Index == 0; }
  bool isTrue() const { return Index == 1; }
  bool isTerminal() const { return Index <= 1; }

  uint32_t index() const { return Index; }

  bool operator==(const BddRef &RHS) const { return Index == RHS.Index; }
  bool operator!=(const BddRef &RHS) const { return Index != RHS.Index; }
  bool operator<(const BddRef &RHS) const { return Index < RHS.Index; }

private:
  static constexpr uint32_t InvalidIndex = 0xFFFFFFFFu;
  uint32_t Index = InvalidIndex;
};

/// A BDD variable, identified by its position in the (fixed) order:
/// smaller value = closer to the root.
using BddVar = uint32_t;

/// Shared-unique-table BDD manager.
class BddManager {
public:
  BddManager();

  /// Attaches a resource budget. The manager checks the node limit on every
  /// allocation and the time limit periodically; once the budget trips, all
  /// operations return BddRef::invalid().
  void setBudget(Budget *B) { Bud = B; }

  /// Declares (or returns) the projection function of variable \p Var.
  BddRef var(BddVar Var);
  /// \returns the complement of variable \p Var.
  BddRef nvar(BddVar Var);

  BddRef top() const { return BddRef::trueRef(); }
  BddRef bottom() const { return BddRef::falseRef(); }

  /// If-then-else: the universal connective.
  BddRef ite(BddRef F, BddRef G, BddRef H);

  BddRef apply_and(BddRef F, BddRef G) { return ite(F, G, bottom()); }
  BddRef apply_or(BddRef F, BddRef G) { return ite(F, top(), G); }
  BddRef apply_not(BddRef F) { return ite(F, bottom(), top()); }
  /// Set difference F \ G  =  F ∧ ¬G.
  BddRef apply_diff(BddRef F, BddRef G);
  BddRef apply_xor(BddRef F, BddRef G);
  /// Biconditional F ⇔ G.
  BddRef apply_iff(BddRef F, BddRef G);
  /// Implication as a function: ¬F ∨ G.
  BddRef apply_imp(BddRef F, BddRef G);

  /// \returns true iff F ⇒ G is a tautology, i.e. F ∧ ¬G = 0.
  /// For clocks this is the inclusion test F ⊆ G.
  bool implies(BddRef F, BddRef G);

  /// \returns true iff F and G denote the same function (trivial, since
  /// BDDs are canonical — provided for readability at call sites).
  bool equivalent(BddRef F, BddRef G) const { return F == G; }

  /// Positive/negative cofactor of \p F by variable \p Var.
  BddRef restrict(BddRef F, BddVar Var, bool Value);

  /// Existential quantification of a single variable.
  BddRef exists(BddRef F, BddVar Var);
  /// Universal quantification of a single variable.
  BddRef forall(BddRef F, BddVar Var);
  /// Existential quantification of a set of variables.
  BddRef existsMany(BddRef F, const std::vector<BddVar> &Vars);

  /// Substitutes function \p G for variable \p Var inside \p F.
  BddRef compose(BddRef F, BddVar Var, BddRef G);

  /// \returns the set of variables F depends on, ascending.
  std::vector<BddVar> support(BddRef F);

  /// Number of satisfying assignments of \p F over \p NumVars variables.
  double satCount(BddRef F, unsigned NumVars);

  /// Extracts one satisfying assignment as (var, value) pairs along a
  /// true-path; requires F != 0 and F valid.
  std::vector<std::pair<BddVar, bool>> anySat(BddRef F);

  /// Structural size of the graph rooted at \p F (terminals not counted).
  uint64_t countNodes(BddRef F) const;
  /// Structural size of the union of the graphs rooted at \p Roots.
  uint64_t countNodesMany(const std::vector<BddRef> &Roots) const;

  /// Total nodes ever allocated in this manager (excludes terminals).
  uint64_t numNodes() const { return Nodes.size() - 2; }

  /// Largest variable ever mentioned, plus one.
  unsigned numVars() const { return NumVars; }

  /// Accessors for traversals.
  BddVar nodeVar(BddRef F) const { return Nodes[F.index()].Var; }
  BddRef nodeLow(BddRef F) const { return BddRef(Nodes[F.index()].Low); }
  BddRef nodeHigh(BddRef F) const { return BddRef(Nodes[F.index()].High); }

  /// Evaluates F under a full assignment (index = variable).
  bool evaluate(BddRef F, const std::vector<bool> &Assignment) const;

  /// \returns true once the attached budget has tripped.
  bool budgetExhausted() const { return Bud && Bud->exhausted(); }

private:
  struct Node {
    BddVar Var;    ///< Terminals use TerminalVar.
    uint32_t Low;  ///< Else-branch (Var = false).
    uint32_t High; ///< Then-branch (Var = true).
  };

  static constexpr BddVar TerminalVar = 0xFFFFFFFFu;
  static constexpr uint32_t NoEntry = 0xFFFFFFFFu;

  /// Hashed (op,f,g,h) -> result cache entry.
  struct CacheEntry {
    uint64_t Key = ~0ull;
    uint32_t Result = NoEntry;
  };

  BddRef mkNode(BddVar Var, BddRef Low, BddRef High);
  uint32_t *uniqueSlot(BddVar Var, uint32_t Low, uint32_t High);
  void growUnique();
  bool pollBudget();

  BddRef iteRec(BddRef F, BddRef G, BddRef H);
  BddRef restrictRec(BddRef F, BddVar Var, bool Value);
  BddRef composeRec(BddRef F, BddVar Var, BddRef G);
  double satCountRec(BddRef F, std::vector<double> &Memo);

  std::vector<Node> Nodes;
  std::vector<uint32_t> UniqueTable; ///< Open-addressed, stores node indices.
  uint32_t UniqueMask = 0;

  std::vector<CacheEntry> IteCache;
  std::vector<CacheEntry> OpCache; ///< restrict/compose/quantify.
  uint64_t CacheMask = 0;

  unsigned NumVars = 0;
  Budget *Bud = nullptr;
  uint64_t AllocsSincePoll = 0;
};

} // namespace sigc

#endif // SIGNALC_BDD_BDD_H
