//===--- Bdd.cpp - ROBDD package implementation ---------------------------===//
///
/// Complement-edge ROBDD core. Invariants maintained here:
///
///   * node 0 is the only terminal (True); False is its complemented ref;
///   * a stored node's then-edge is never complemented (mkNode normalizes
///     by flipping both branches and complementing the result);
///   * both branches of a stored node differ (reduction rule);
///   * operation-cache entries store the verbatim (op, operands) key and
///     only hit when every field matches — a hash collision is a miss,
///     never a wrong result.
///
//===----------------------------------------------------------------------===//

#include "bdd/Bdd.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <unordered_set>

using namespace sigc;

namespace {

unsigned log2Ceil(uint64_t X) {
  unsigned L = 0;
  while ((1ull << L) < X)
    ++L;
  return L;
}

/// Table sizing from the number of program variables (clock conditions for
/// the forest, clock classes for the characteristic function). The clock
/// calculus allocates a few hundred nodes per variable on typical programs;
/// both tables also grow on demand, so under-estimates only cost a rehash.
unsigned uniqueLog2ForVars(unsigned Vars) {
  return std::min(22u, std::max(13u, log2Ceil(uint64_t(Vars) * 64)));
}
/// Operation caches are capped at 2^16 entries (~1.3 MB): big enough that
/// the fixed point of a Figure-13 program stays warm, small enough to stay
/// L2/L3-resident — measured on the ITE-chain benchmark, a 2^20-entry cache
/// is ~1.5x slower than 2^16 purely from cold probes.
constexpr unsigned MaxCacheLog2 = 16;

unsigned cacheLog2ForVars(unsigned Vars) {
  return std::min(MaxCacheLog2, std::max(12u, log2Ceil(uint64_t(Vars) * 128)));
}

} // namespace

BddManager::BddManager(unsigned ExpectedVars) {
  Nodes.reserve(1024);
  // The single True terminal. Its branches point to itself; Var sorts after
  // all real variables so terminal checks fall out of ordering comparisons.
  Nodes.push_back({TerminalVar, 0, 0});
  unsigned UL = uniqueLog2ForVars(ExpectedVars);
  UniqueTable.assign(1u << UL, NoEntry);
  UniqueMask = (1u << UL) - 1;
  unsigned CL = cacheLog2ForVars(ExpectedVars);
  IteCache = std::vector<CacheEntry>(size_t(1) << CL);
  OpCache = std::vector<CacheEntry>(size_t(1) << CL);
  CacheMask = (1u << CL) - 1;
}

void BddManager::presize(unsigned ExpectedVars) {
  while (UniqueMask + 1 < (1u << uniqueLog2ForVars(ExpectedVars)))
    growUnique();
  growCachesTo(cacheLog2ForVars(ExpectedVars));
}

void BddManager::setCacheCapacityForTesting(uint32_t Entries) {
  uint32_t Size = 1;
  while (Size * 2 <= Entries)
    Size *= 2;
  IteCache = std::vector<CacheEntry>(Size);
  OpCache = std::vector<CacheEntry>(Size);
  CacheMask = Size - 1;
  CacheGrowthFrozen = true;
}

bool BddManager::pollBudget() {
  if (!Bud)
    return true;
  if (Bud->exhausted())
    return false;
  // Charge the budget for *live* nodes: a GC-enabled manager's reclaimed
  // slots are capacity, not consumption.
  if (!Bud->checkNodes(Nodes.size() - FreeList.size()))
    return false;
  if (++AllocsSincePoll >= 4096) {
    AllocsSincePoll = 0;
    if (!Bud->checkTime())
      return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Unique table and node construction
//===----------------------------------------------------------------------===//

uint32_t *BddManager::uniqueSlot(BddVar Var, uint32_t Low, uint32_t High) {
  uint64_t H = hashNode(Var, Low, High);
  uint32_t Idx = static_cast<uint32_t>(H) & UniqueMask;
  for (;;) {
    uint32_t &Slot = UniqueTable[Idx];
    if (Slot == NoEntry)
      return &Slot;
    const Node &N = Nodes[Slot];
    if (N.Var == Var && N.Low == Low && N.High == High)
      return &Slot;
    Idx = (Idx + 1) & UniqueMask;
  }
}

void BddManager::growUnique() {
  uint32_t NewSize = (UniqueMask + 1) * 2;
  UniqueTable.assign(NewSize, NoEntry);
  UniqueMask = NewSize - 1;
  for (uint32_t I = 1; I < Nodes.size(); ++I) {
    const Node &N = Nodes[I];
    if (N.Var == TerminalVar)
      continue; // Tombstone of a reclaimed slot.
    uint64_t H = hashNode(N.Var, N.Low, N.High);
    uint32_t Idx = static_cast<uint32_t>(H) & UniqueMask;
    while (UniqueTable[Idx] != NoEntry)
      Idx = (Idx + 1) & UniqueMask;
    UniqueTable[Idx] = I;
  }
  // Keep the caches tracking the unique table (up to the residency cap) so
  // a growing problem does not thrash a tiny cache. The 4x hysteresis plus
  // the direct jump in growCachesTo bounds re-allocations to a handful per
  // manager lifetime.
  if (UniqueMask + 1 > 4 * (CacheMask + 1))
    growCachesTo(log2Ceil(UniqueMask + 1));
}

void BddManager::growCachesTo(unsigned TargetLog2) {
  // Jump to the target size in one re-allocation: repeated doubling fills
  // were the dominant cost of mid-size solver runs.
  TargetLog2 = std::min(TargetLog2, MaxCacheLog2);
  if (CacheGrowthFrozen || CacheMask + 1 >= (1u << TargetLog2))
    return;
  uint32_t NewMask = (1u << TargetLog2) - 1;
  auto rehash = [&](std::vector<CacheEntry> &Cache) {
    std::vector<CacheEntry> New(size_t(NewMask) + 1);
    for (const CacheEntry &E : Cache) {
      if (E.Op == static_cast<uint32_t>(CacheOp::None))
        continue;
      New[hashCacheKey(E.Op, E.A, E.B, E.C) & NewMask] = E;
    }
    Cache.swap(New);
  };
  rehash(IteCache);
  rehash(OpCache);
  CacheMask = NewMask;
}

BddRef BddManager::mkNode(BddVar Var, BddRef Low, BddRef High) {
  if (!Low.isValid() || !High.isValid())
    return BddRef::invalid();
  // Reduction rule: both branches equal => the node is redundant.
  if (Low == High)
    return Low;
  // Canonical form: the then-edge carries no complement bit. A complemented
  // then-branch flips both branches and complements the resulting ref.
  bool Neg = High.isComplement();
  if (Neg) {
    Low = !Low;
    High = !High;
  }
  if (!pollBudget())
    return BddRef::invalid();

  uint32_t *Slot = uniqueSlot(Var, Low.index(), High.index());
  if (*Slot != NoEntry)
    return withComplement(BddRef(*Slot << 1), Neg);

  // Reuse a reclaimed slot when the collector produced one: nodes never
  // move, so refs held across a sweep stay valid, and reuse keeps the
  // arena bounded by the live set instead of the allocation history.
  uint32_t Idx;
  if (!FreeList.empty()) {
    Idx = FreeList.back();
    FreeList.pop_back();
    Nodes[Idx] = {Var, Low.index(), High.index()};
  } else {
    Idx = static_cast<uint32_t>(Nodes.size());
    Nodes.push_back({Var, Low.index(), High.index()});
  }
  *Slot = Idx;

  // Keep the open-addressed table under 2/3 load.
  if (Nodes.size() * 3 > static_cast<uint64_t>(UniqueMask + 1) * 2)
    growUnique();
  return withComplement(BddRef(Idx << 1), Neg);
}

BddRef BddManager::var(BddVar Var) {
  BddRef R = mkNode(Var, bottom(), top());
  // Count the variable only when the node exists: a budget-tripped
  // allocation must not skew later satCount(F, numVars()) calls.
  if (R.isValid() && Var + 1 > NumVars)
    NumVars = Var + 1;
  return R;
}

BddRef BddManager::nvar(BddVar Var) { return !var(Var); }

//===----------------------------------------------------------------------===//
// Garbage collection
//===----------------------------------------------------------------------===//

void BddManager::addRef(BddRef F) {
  if (!F.isValid() || F.isTerminal())
    return;
  if (ExtRefs.size() < Nodes.size())
    ExtRefs.resize(Nodes.size(), 0);
  ++ExtRefs[F.nodeIndex()];
}

void BddManager::decRef(BddRef F) {
  if (!F.isValid() || F.isTerminal())
    return;
  assert(F.nodeIndex() < ExtRefs.size() && ExtRefs[F.nodeIndex()] > 0 &&
         "decRef() without a matching addRef()");
  --ExtRefs[F.nodeIndex()];
}

uint64_t BddManager::gc() {
  if (ExtRefs.size() < Nodes.size())
    ExtRefs.resize(Nodes.size(), 0);

  // Mark: everything reachable from an externally referenced node. The
  // complement bit does not affect reachability (F and ¬F share nodes).
  std::vector<unsigned char> Marked(Nodes.size(), 0);
  Marked[0] = 1;
  std::vector<uint32_t> Stack;
  for (uint32_t I = 1; I < Nodes.size(); ++I)
    if (ExtRefs[I] > 0)
      Stack.push_back(I);
  while (!Stack.empty()) {
    uint32_t Cur = Stack.back();
    Stack.pop_back();
    if (Marked[Cur])
      continue;
    Marked[Cur] = 1;
    const Node &N = Nodes[Cur];
    uint32_t L = BddRef(N.Low).nodeIndex();
    uint32_t H = BddRef(N.High).nodeIndex();
    if (!Marked[L])
      Stack.push_back(L);
    if (!Marked[H])
      Stack.push_back(H);
  }

  // Sweep: tombstone dead slots (Var == TerminalVar) and free them for
  // in-place reuse. Slots already on the free list stay there.
  std::vector<unsigned char> AlreadyFree(Nodes.size(), 0);
  for (uint32_t I : FreeList)
    AlreadyFree[I] = 1;
  uint64_t Reclaimed = 0;
  for (uint32_t I = 1; I < Nodes.size(); ++I) {
    if (Marked[I] || AlreadyFree[I])
      continue;
    Nodes[I] = {TerminalVar, 0, 0};
    FreeList.push_back(I);
    ++Reclaimed;
  }

  // Rebuild the unique table over the survivors only.
  std::fill(UniqueTable.begin(), UniqueTable.end(), NoEntry);
  for (uint32_t I = 1; I < Nodes.size(); ++I) {
    const Node &N = Nodes[I];
    if (N.Var == TerminalVar)
      continue;
    uint64_t H = hashNode(N.Var, N.Low, N.High);
    uint32_t Idx = static_cast<uint32_t>(H) & UniqueMask;
    while (UniqueTable[Idx] != NoEntry)
      Idx = (Idx + 1) & UniqueMask;
    UniqueTable[Idx] = I;
  }

  // Invalidate both operation caches: entries key on node indices, and a
  // reused index must never make a pre-sweep entry look like a verified
  // hit for a different function.
  std::fill(IteCache.begin(), IteCache.end(), CacheEntry{0, 0, 0, 0, 0});
  std::fill(OpCache.begin(), OpCache.end(), CacheEntry{0, 0, 0, 0, 0});

  ++GcRuns;
  GcReclaimed += Reclaimed;
  GcFloor = numLiveNodes();
  return Reclaimed;
}

void BddManager::maybeCollect() {
  if (!GcEnabled || !Bud || Bud->nodeLimit() == 0 || Bud->exhausted())
    return;
  uint64_t Live = Nodes.size() - FreeList.size();
  uint64_t Limit = Bud->nodeLimit();
  // Collect when within 25% of the node limit — but only once the live
  // count has grown by limit/8 past the last sweep's floor, so a sweep
  // that found little garbage is not repeated on every operation.
  if (Live * 4 < Limit * 3)
    return;
  if (numLiveNodes() <= GcFloor + Limit / 8)
    return;
  gc();
}

//===----------------------------------------------------------------------===//
// ITE
//===----------------------------------------------------------------------===//

BddRef BddManager::cofactor(BddRef F, BddVar Top, bool High) const {
  if (F.isTerminal() || Nodes[F.nodeIndex()].Var != Top)
    return F;
  const Node &N = Nodes[F.nodeIndex()];
  return withComplement(BddRef(High ? N.High : N.Low), F.isComplement());
}

BddRef BddManager::ite(BddRef F, BddRef G, BddRef H) {
  if (!F.isValid() || !G.isValid() || !H.isValid())
    return BddRef::invalid();
  // Safe collection point: no intermediate results are in flight at a
  // public entry, so everything unprotected is genuinely garbage.
  maybeCollect();
  return iteRec(F, G, H);
}

BddRef BddManager::iteRec(BddRef F, BddRef G, BddRef H) {
  // Terminal and operand-collapse cases.
  if (F.isTrue())
    return G;
  if (F.isFalse())
    return H;
  if (G == H)
    return G;
  if (F == G)
    G = BddRef::trueRef(); // ite(F, F, H) = ite(F, 1, H)
  else if (F == !G)
    G = BddRef::falseRef(); // ite(F, ¬F, H) = ite(F, 0, H)
  if (F == H)
    H = BddRef::falseRef(); // ite(F, G, F) = ite(F, G, 0)
  else if (F == !H)
    H = BddRef::trueRef(); // ite(F, G, ¬F) = ite(F, G, 1)
  if (G == H)
    return G;
  if (G.isTrue() && H.isFalse())
    return F;
  if (G.isFalse() && H.isTrue())
    return !F;

  // Standard-triple commutation: the two-operand connectives are symmetric
  // in one operand pair; order that pair deterministically so commuted
  // calls share one cache line. Node indices are a pure-register total
  // order over live nodes (no Nodes[] loads on the cache-hit path), and
  // complement bits do not affect it — F and ¬F share a node, so the
  // ¬-duals normalize to the same triple. F is non-terminal here, and so
  // is the operand swapped toward it.
  auto precedes = [](BddRef X, BddRef Y) {
    return X.nodeIndex() < Y.nodeIndex();
  };
  if (G.isTrue()) { // ite(F, 1, H) = F ∨ H = ite(H, 1, F)
    if (precedes(H, F))
      std::swap(F, H);
  } else if (H.isFalse()) { // ite(F, G, 0) = F ∧ G = ite(G, F, 0)
    if (precedes(G, F))
      std::swap(F, G);
  } else if (G.isFalse()) { // ite(F, 0, H) = ¬F ∧ H = ite(¬H, 0, ¬F)
    if (precedes(H, F)) {
      BddRef NotF = !F;
      F = !H;
      H = NotF;
    }
  } else if (H.isTrue()) { // ite(F, G, 1) = ¬F ∨ G = ite(¬G, ¬F, 1)
    if (precedes(G, F)) {
      BddRef NotF = !F;
      F = !G;
      G = NotF;
    }
  } else if (G == !H) { // ite(F, G, ¬G) = F ⇔ G = ite(G, F, ¬F)
    if (precedes(G, F)) {
      BddRef OldF = F;
      F = G;
      G = OldF;
      H = !OldF;
    }
  }

  // Polarity canonicalization: the stored triple has a regular F (swap the
  // branches of a complemented test) and a regular G (complement both
  // branches and the cached result), so ¬-related calls share cache lines.
  if (F.isComplement()) {
    std::swap(G, H);
    F = !F;
  }
  bool NegOut = G.isComplement();
  if (NegOut) {
    G = !G;
    H = !H;
  }

  uint64_t Key;
  const CacheEntry *Hit = cacheLookup(IteCache, CacheOp::Ite, F.index(),
                                      G.index(), H.index(), Key);
  if (Hit)
    return withComplement(BddRef(Hit->Result), NegOut);

  BddVar Top = std::min(topVar(F), std::min(topVar(G), topVar(H)));
  BddRef HighRes =
      iteRec(cofactor(F, Top, true), cofactor(G, Top, true),
             cofactor(H, Top, true));
  if (!HighRes.isValid())
    return BddRef::invalid();
  BddRef LowRes =
      iteRec(cofactor(F, Top, false), cofactor(G, Top, false),
             cofactor(H, Top, false));
  if (!LowRes.isValid())
    return BddRef::invalid();

  BddRef R = mkNode(Top, LowRes, HighRes);
  if (R.isValid())
    cacheStore(IteCache, Key, CacheOp::Ite, F.index(), G.index(), H.index(),
               R.index());
  return withComplement(R, NegOut);
}

//===----------------------------------------------------------------------===//
// Implication: ITE-to-constant, no allocation
//===----------------------------------------------------------------------===//

bool BddManager::implies(BddRef F, BddRef G) {
  assert(F.isValid() && G.isValid() && "implies() on invalid refs");
  return impliesRec(F, G);
}

bool BddManager::impliesRec(BddRef F, BddRef G) {
  if (F.isFalse() || G.isTrue() || F == G)
    return true;
  // F ⇒ ¬F only when F = 0, handled above; likewise the constant cases.
  if (F.isTrue() || G.isFalse() || F == !G)
    return false;

  // No node budget to poll (nothing allocates here), but a pathological
  // query over cache-thrashing operands must still honor the time budget
  // instead of running unboundedly. On exhaustion the answer degrades to
  // a conservative "not proved"; callers read the verdict off the Budget.
  if (Bud) {
    if (Bud->exhausted())
      return false;
    if (++AllocsSincePoll >= 4096) {
      AllocsSincePoll = 0;
      if (!Bud->checkTime())
        return false;
    }
  }

  uint64_t Key;
  const CacheEntry *Hit =
      cacheLookup(OpCache, CacheOp::Implies, F.index(), G.index(), 0, Key);
  if (Hit)
    return Hit->Result != 0;

  // Both operands are non-terminal here; recurse on existing cofactor
  // edges only — this never calls mkNode.
  BddVar Top = std::min(topVar(F), topVar(G));
  bool R = impliesRec(cofactor(F, Top, true), cofactor(G, Top, true)) &&
           impliesRec(cofactor(F, Top, false), cofactor(G, Top, false));
  // A sub-query cut short by the budget must not poison the cache with a
  // conservative false.
  if (!budgetExhausted())
    cacheStore(OpCache, Key, CacheOp::Implies, F.index(), G.index(), 0,
               R ? 1 : 0);
  return R;
}

//===----------------------------------------------------------------------===//
// Cofactors, quantification, composition
//===----------------------------------------------------------------------===//

BddRef BddManager::restrict(BddRef F, BddVar Var, bool Value) {
  if (!F.isValid())
    return BddRef::invalid();
  maybeCollect();
  return restrictRec(F, Var, Value);
}

BddRef BddManager::restrictRec(BddRef F, BddVar Var, bool Value) {
  if (F.isTerminal())
    return F;
  // Copied by value: the recursive calls below allocate through mkNode,
  // which may reallocate the Nodes arena under a held reference.
  const Node N = Nodes[F.nodeIndex()];
  if (N.Var > Var)
    return F; // Var does not occur in F.
  bool C = F.isComplement();
  if (N.Var == Var)
    return withComplement(BddRef(Value ? N.High : N.Low), C);

  // Restriction commutes with complement; cache on the regular ref so both
  // polarities share one entry.
  uint32_t VarKey = (Var << 1) | (Value ? 1u : 0u);
  uint64_t Key;
  const CacheEntry *Hit = cacheLookup(OpCache, CacheOp::Restrict,
                                      F.regular().index(), VarKey, 0, Key);
  if (Hit)
    return withComplement(BddRef(Hit->Result), C);

  BddRef Low = restrictRec(BddRef(N.Low), Var, Value);
  BddRef High = restrictRec(BddRef(N.High), Var, Value);
  BddRef R = mkNode(N.Var, Low, High);
  if (R.isValid())
    cacheStore(OpCache, Key, CacheOp::Restrict, F.regular().index(), VarKey,
               0, R.index());
  return withComplement(R, C);
}

BddRef BddManager::exists(BddRef F, BddVar Var) {
  if (!F.isValid())
    return F;
  maybeCollect();
  return existsRec(F, Var);
}

BddRef BddManager::forall(BddRef F, BddVar Var) {
  // ∀x.F = ¬∃x.¬F — free with complement edges.
  if (!F.isValid())
    return F;
  maybeCollect();
  return !existsRec(!F, Var);
}

BddRef BddManager::existsRec(BddRef F, BddVar Var) {
  if (F.isTerminal())
    return F;
  // Copied by value: recursion below allocates and may move the arena.
  const Node N = Nodes[F.nodeIndex()];
  if (N.Var > Var)
    return F; // Var does not occur in F.
  bool C = F.isComplement();
  BddRef Low = withComplement(BddRef(N.Low), C);
  BddRef High = withComplement(BddRef(N.High), C);
  if (N.Var == Var)
    return iteRec(Low, BddRef::trueRef(), High); // Low ∨ High

  // Quantification does not commute with complement: cache the full ref.
  uint64_t Key;
  const CacheEntry *Hit =
      cacheLookup(OpCache, CacheOp::Exists, F.index(), Var, 0, Key);
  if (Hit)
    return BddRef(Hit->Result);

  BddRef LowQ = existsRec(Low, Var);
  if (!LowQ.isValid())
    return BddRef::invalid();
  BddRef HighQ = existsRec(High, Var);
  if (!HighQ.isValid())
    return BddRef::invalid();
  BddRef R = mkNode(N.Var, LowQ, HighQ);
  if (R.isValid())
    cacheStore(OpCache, Key, CacheOp::Exists, F.index(), Var, 0, R.index());
  return R;
}

BddRef BddManager::existsMany(BddRef F, const std::vector<BddVar> &Vars) {
  if (!F.isValid())
    return F;
  // One collection point up front; the loop below holds an unprotected
  // intermediate R, so no collecting between variables.
  maybeCollect();
  // Deepest (largest) variables first: quantifying bottom-up keeps each
  // pass inside the still-unquantified lower region of the graph instead
  // of re-traversing from the root for every variable.
  std::vector<BddVar> Order(Vars);
  std::sort(Order.begin(), Order.end(), std::greater<BddVar>());
  Order.erase(std::unique(Order.begin(), Order.end()), Order.end());
  BddRef R = F;
  for (BddVar V : Order) {
    if (R.isTerminal())
      break; // Nothing left to quantify.
    R = existsRec(R, V);
    if (!R.isValid())
      return R;
  }
  return R;
}

BddRef BddManager::compose(BddRef F, BddVar Var, BddRef G) {
  if (!F.isValid() || !G.isValid())
    return BddRef::invalid();
  maybeCollect();
  return composeRec(F, Var, G);
}

BddRef BddManager::composeRec(BddRef F, BddVar Var, BddRef G) {
  if (F.isTerminal())
    return F;
  // Copied by value: recursion below allocates and may move the arena.
  const Node N = Nodes[F.nodeIndex()];
  if (N.Var > Var)
    return F;
  bool C = F.isComplement();
  if (N.Var == Var)
    return withComplement(iteRec(G, BddRef(N.High), BddRef(N.Low)), C);

  // Substitution commutes with complement; cache on the regular ref.
  uint64_t Key;
  const CacheEntry *Hit =
      cacheLookup(OpCache, CacheOp::Compose, F.regular().index(), Var,
                  G.index(), Key);
  if (Hit)
    return withComplement(BddRef(Hit->Result), C);

  BddRef Low = composeRec(BddRef(N.Low), Var, G);
  if (!Low.isValid())
    return BddRef::invalid();
  BddRef High = composeRec(BddRef(N.High), Var, G);
  if (!High.isValid())
    return BddRef::invalid();
  // The substituted branches may now start above N.Var, so rebuild with ITE
  // on the branch variable rather than mkNode.
  BddRef VarF = mkNode(N.Var, bottom(), top());
  BddRef R = iteRec(VarF, High, Low);
  if (R.isValid())
    cacheStore(OpCache, Key, CacheOp::Compose, F.regular().index(), Var,
               G.index(), R.index());
  return withComplement(R, C);
}

//===----------------------------------------------------------------------===//
// Queries
//===----------------------------------------------------------------------===//

std::vector<BddVar> BddManager::support(BddRef F) {
  std::vector<BddVar> Result;
  if (!F.isValid() || F.isTerminal())
    return Result;
  std::unordered_set<uint32_t> Seen;
  std::unordered_set<BddVar> Vars;
  std::vector<uint32_t> Stack{F.nodeIndex()};
  while (!Stack.empty()) {
    uint32_t Cur = Stack.back();
    Stack.pop_back();
    if (Cur == 0 || !Seen.insert(Cur).second)
      continue;
    const Node &N = Nodes[Cur];
    Vars.insert(N.Var);
    Stack.push_back(BddRef(N.Low).nodeIndex());
    Stack.push_back(BddRef(N.High).nodeIndex());
  }
  Result.assign(Vars.begin(), Vars.end());
  std::sort(Result.begin(), Result.end());
  return Result;
}

double BddManager::satCount(BddRef F, unsigned NumVarsTotal) {
  if (!F.isValid())
    return 0.0;
  std::vector<double> Memo(Nodes.size(), -1.0);
  double Count = satFraction(F, Memo);
  for (unsigned I = 0; I < NumVarsTotal; ++I)
    Count *= 2.0;
  return Count;
}

/// \returns the fraction of the full assignment space satisfying F. The
/// memo stores the fraction of each *regular* node function; a complement
/// bit on the way in flips it to 1 - fraction.
double BddManager::satFraction(BddRef F, std::vector<double> &Memo) {
  uint32_t Idx = F.nodeIndex();
  double Frac;
  if (Idx == 0) {
    Frac = 1.0; // True terminal.
  } else {
    double &M = Memo[Idx];
    if (M < 0.0) {
      const Node &N = Nodes[Idx];
      M = 0.5 * satFraction(BddRef(N.Low), Memo) +
          0.5 * satFraction(BddRef(N.High), Memo);
    }
    Frac = M;
  }
  return F.isComplement() ? 1.0 - Frac : Frac;
}

std::vector<std::pair<BddVar, bool>> BddManager::anySat(BddRef F) {
  std::vector<std::pair<BddVar, bool>> Path;
  assert(F.isValid() && !F.isFalse() && "anySat() requires satisfiable input");
  while (!F.isTerminal()) {
    const Node &N = Nodes[F.nodeIndex()];
    BddRef High = withComplement(BddRef(N.High), F.isComplement());
    if (!High.isFalse()) {
      Path.emplace_back(N.Var, true);
      F = High;
    } else {
      Path.emplace_back(N.Var, false);
      F = withComplement(BddRef(N.Low), F.isComplement());
    }
  }
  return Path;
}

uint64_t BddManager::countNodes(BddRef F) const {
  return countNodesMany({F});
}

uint64_t BddManager::countNodesMany(const std::vector<BddRef> &Roots) const {
  // Sharing is per node, independent of complement bits: F and ¬F have the
  // same structural size.
  std::unordered_set<uint32_t> Seen;
  std::vector<uint32_t> Stack;
  for (BddRef R : Roots)
    if (R.isValid() && !R.isTerminal())
      Stack.push_back(R.nodeIndex());
  uint64_t Count = 0;
  while (!Stack.empty()) {
    uint32_t Cur = Stack.back();
    Stack.pop_back();
    if (Cur == 0 || !Seen.insert(Cur).second)
      continue;
    ++Count;
    const Node &N = Nodes[Cur];
    Stack.push_back(BddRef(N.Low).nodeIndex());
    Stack.push_back(BddRef(N.High).nodeIndex());
  }
  return Count;
}

bool BddManager::evaluate(BddRef F, const std::vector<bool> &Assignment) const {
  assert(F.isValid() && "evaluate() on invalid ref");
  while (!F.isTerminal()) {
    const Node &N = Nodes[F.nodeIndex()];
    bool Value = N.Var < Assignment.size() && Assignment[N.Var];
    F = withComplement(BddRef(Value ? N.High : N.Low), F.isComplement());
  }
  return F.isTrue();
}
