//===--- Bdd.cpp - ROBDD package implementation ---------------------------===//

#include "bdd/Bdd.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

using namespace sigc;

namespace {

/// 64-bit mix for hashing node triples and cache keys (splitmix64 finalizer).
uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

uint64_t hashTriple(uint64_t A, uint64_t B, uint64_t C) {
  return mix64(A * 0x100000001b3ull ^ mix64(B) ^ (mix64(C) << 1));
}

constexpr unsigned InitialUniqueLog2 = 14; // 16384 slots
constexpr unsigned CacheLog2 = 16;         // 65536 entries per cache

} // namespace

BddManager::BddManager() {
  Nodes.reserve(1024);
  // Terminals. Their branches point to themselves; Var sorts after all real
  // variables so terminal checks fall out of the ordering comparisons.
  Nodes.push_back({TerminalVar, 0, 0}); // False
  Nodes.push_back({TerminalVar, 1, 1}); // True
  UniqueTable.assign(1u << InitialUniqueLog2, NoEntry);
  UniqueMask = (1u << InitialUniqueLog2) - 1;
  IteCache.assign(1u << CacheLog2, CacheEntry());
  OpCache.assign(1u << CacheLog2, CacheEntry());
  CacheMask = (1u << CacheLog2) - 1;
}

bool BddManager::pollBudget() {
  if (!Bud)
    return true;
  if (Bud->exhausted())
    return false;
  if (!Bud->checkNodes(Nodes.size()))
    return false;
  if (++AllocsSincePoll >= 4096) {
    AllocsSincePoll = 0;
    if (!Bud->checkTime())
      return false;
  }
  return true;
}

uint32_t *BddManager::uniqueSlot(BddVar Var, uint32_t Low, uint32_t High) {
  uint64_t H = hashTriple(Var, Low, High);
  uint32_t Idx = static_cast<uint32_t>(H) & UniqueMask;
  for (;;) {
    uint32_t &Slot = UniqueTable[Idx];
    if (Slot == NoEntry)
      return &Slot;
    const Node &N = Nodes[Slot];
    if (N.Var == Var && N.Low == Low && N.High == High)
      return &Slot;
    Idx = (Idx + 1) & UniqueMask;
  }
}

void BddManager::growUnique() {
  uint32_t NewSize = (UniqueMask + 1) * 2;
  UniqueTable.assign(NewSize, NoEntry);
  UniqueMask = NewSize - 1;
  for (uint32_t I = 2; I < Nodes.size(); ++I) {
    const Node &N = Nodes[I];
    uint64_t H = hashTriple(N.Var, N.Low, N.High);
    uint32_t Idx = static_cast<uint32_t>(H) & UniqueMask;
    while (UniqueTable[Idx] != NoEntry)
      Idx = (Idx + 1) & UniqueMask;
    UniqueTable[Idx] = I;
  }
}

BddRef BddManager::mkNode(BddVar Var, BddRef Low, BddRef High) {
  if (!Low.isValid() || !High.isValid())
    return BddRef::invalid();
  // Reduction rule: both branches equal => the node is redundant.
  if (Low == High)
    return Low;
  if (!pollBudget())
    return BddRef::invalid();

  uint32_t *Slot = uniqueSlot(Var, Low.index(), High.index());
  if (*Slot != NoEntry)
    return BddRef(*Slot);

  uint32_t Idx = static_cast<uint32_t>(Nodes.size());
  Nodes.push_back({Var, Low.index(), High.index()});
  *Slot = Idx;

  // Keep the open-addressed table under 2/3 load.
  if (Nodes.size() * 3 > static_cast<uint64_t>(UniqueMask + 1) * 2)
    growUnique();
  return BddRef(Idx);
}

BddRef BddManager::var(BddVar Var) {
  if (Var + 1 > NumVars)
    NumVars = Var + 1;
  return mkNode(Var, bottom(), top());
}

BddRef BddManager::nvar(BddVar Var) {
  if (Var + 1 > NumVars)
    NumVars = Var + 1;
  return mkNode(Var, top(), bottom());
}

BddRef BddManager::ite(BddRef F, BddRef G, BddRef H) {
  if (!F.isValid() || !G.isValid() || !H.isValid())
    return BddRef::invalid();
  return iteRec(F, G, H);
}

BddRef BddManager::iteRec(BddRef F, BddRef G, BddRef H) {
  // Terminal cases.
  if (F.isTrue())
    return G;
  if (F.isFalse())
    return H;
  if (G == H)
    return G;
  if (G.isTrue() && H.isFalse())
    return F;

  uint64_t Key = hashTriple(F.index(), G.index(), H.index());
  CacheEntry &E = IteCache[Key & CacheMask];
  if (E.Key == Key && E.Result != NoEntry)
    return BddRef(E.Result);

  // Top variable of the three operands.
  BddVar TopF = Nodes[F.index()].Var;
  BddVar TopG = G.isTerminal() ? TerminalVar : Nodes[G.index()].Var;
  BddVar TopH = H.isTerminal() ? TerminalVar : Nodes[H.index()].Var;
  BddVar Top = std::min(TopF, std::min(TopG, TopH));

  auto cof = [&](BddRef X, bool High) -> BddRef {
    if (X.isTerminal() || Nodes[X.index()].Var != Top)
      return X;
    return BddRef(High ? Nodes[X.index()].High : Nodes[X.index()].Low);
  };

  BddRef HighRes = iteRec(cof(F, true), cof(G, true), cof(H, true));
  if (!HighRes.isValid())
    return BddRef::invalid();
  BddRef LowRes = iteRec(cof(F, false), cof(G, false), cof(H, false));
  if (!LowRes.isValid())
    return BddRef::invalid();

  BddRef R = mkNode(Top, LowRes, HighRes);
  if (R.isValid()) {
    E.Key = Key;
    E.Result = R.index();
  }
  return R;
}

BddRef BddManager::apply_diff(BddRef F, BddRef G) {
  BddRef NotG = apply_not(G);
  return apply_and(F, NotG);
}

BddRef BddManager::apply_xor(BddRef F, BddRef G) {
  return ite(F, apply_not(G), G);
}

BddRef BddManager::apply_iff(BddRef F, BddRef G) {
  return ite(F, G, apply_not(G));
}

BddRef BddManager::apply_imp(BddRef F, BddRef G) {
  return ite(F, G, top());
}

bool BddManager::implies(BddRef F, BddRef G) {
  assert(F.isValid() && G.isValid() && "implies() on invalid refs");
  BddRef D = apply_diff(F, G);
  return D.isValid() && D.isFalse();
}

BddRef BddManager::restrict(BddRef F, BddVar Var, bool Value) {
  if (!F.isValid())
    return BddRef::invalid();
  return restrictRec(F, Var, Value);
}

BddRef BddManager::restrictRec(BddRef F, BddVar Var, bool Value) {
  if (F.isTerminal())
    return F;
  const Node &N = Nodes[F.index()];
  if (N.Var > Var)
    return F; // Var does not occur in F.
  if (N.Var == Var)
    return BddRef(Value ? N.High : N.Low);

  uint64_t Key = hashTriple(F.index(), (uint64_t(Var) << 1) | Value,
                            0xC0FEC0FEull);
  CacheEntry &E = OpCache[Key & CacheMask];
  if (E.Key == Key && E.Result != NoEntry)
    return BddRef(E.Result);

  BddRef Low = restrictRec(BddRef(N.Low), Var, Value);
  BddRef High = restrictRec(BddRef(N.High), Var, Value);
  BddRef R = mkNode(N.Var, Low, High);
  if (R.isValid()) {
    E.Key = Key;
    E.Result = R.index();
  }
  return R;
}

BddRef BddManager::exists(BddRef F, BddVar Var) {
  BddRef F0 = restrict(F, Var, false);
  BddRef F1 = restrict(F, Var, true);
  return apply_or(F0, F1);
}

BddRef BddManager::forall(BddRef F, BddVar Var) {
  BddRef F0 = restrict(F, Var, false);
  BddRef F1 = restrict(F, Var, true);
  return apply_and(F0, F1);
}

BddRef BddManager::existsMany(BddRef F, const std::vector<BddVar> &Vars) {
  BddRef R = F;
  for (BddVar V : Vars) {
    R = exists(R, V);
    if (!R.isValid())
      return R;
  }
  return R;
}

BddRef BddManager::compose(BddRef F, BddVar Var, BddRef G) {
  if (!F.isValid() || !G.isValid())
    return BddRef::invalid();
  return composeRec(F, Var, G);
}

BddRef BddManager::composeRec(BddRef F, BddVar Var, BddRef G) {
  if (F.isTerminal())
    return F;
  const Node &N = Nodes[F.index()];
  if (N.Var > Var)
    return F;
  if (N.Var == Var)
    return iteRec(G, BddRef(N.High), BddRef(N.Low));

  uint64_t Key = hashTriple(F.index(), G.index() ^ (uint64_t(Var) << 32),
                            0xC04450ull);
  CacheEntry &E = OpCache[Key & CacheMask];
  if (E.Key == Key && E.Result != NoEntry)
    return BddRef(E.Result);

  BddRef Low = composeRec(BddRef(N.Low), Var, G);
  if (!Low.isValid())
    return BddRef::invalid();
  BddRef High = composeRec(BddRef(N.High), Var, G);
  if (!High.isValid())
    return BddRef::invalid();
  // The substituted branches may now start above N.Var, so rebuild with ITE
  // on the branch variable rather than mkNode.
  BddRef VarF = mkNode(N.Var, bottom(), top());
  BddRef R = iteRec(VarF, High, Low);
  if (R.isValid()) {
    E.Key = Key;
    E.Result = R.index();
  }
  return R;
}

std::vector<BddVar> BddManager::support(BddRef F) {
  std::vector<BddVar> Result;
  if (!F.isValid() || F.isTerminal())
    return Result;
  std::unordered_set<uint32_t> Seen;
  std::unordered_set<BddVar> Vars;
  std::vector<BddRef> Stack{F};
  while (!Stack.empty()) {
    BddRef Cur = Stack.back();
    Stack.pop_back();
    if (Cur.isTerminal() || !Seen.insert(Cur.index()).second)
      continue;
    const Node &N = Nodes[Cur.index()];
    Vars.insert(N.Var);
    Stack.push_back(BddRef(N.Low));
    Stack.push_back(BddRef(N.High));
  }
  Result.assign(Vars.begin(), Vars.end());
  std::sort(Result.begin(), Result.end());
  return Result;
}

double BddManager::satCount(BddRef F, unsigned NumVarsTotal) {
  if (!F.isValid())
    return 0.0;
  std::vector<double> Memo(Nodes.size(), -1.0);
  double Fraction = satCountRec(F, Memo);
  double Count = Fraction;
  for (unsigned I = 0; I < NumVarsTotal; ++I)
    Count *= 2.0;
  return Count;
}

/// \returns the fraction of the full assignment space satisfying F.
double BddManager::satCountRec(BddRef F, std::vector<double> &Memo) {
  if (F.isFalse())
    return 0.0;
  if (F.isTrue())
    return 1.0;
  double &M = Memo[F.index()];
  if (M >= 0.0)
    return M;
  const Node &N = Nodes[F.index()];
  double R = 0.5 * satCountRec(BddRef(N.Low), Memo) +
             0.5 * satCountRec(BddRef(N.High), Memo);
  M = R;
  return R;
}

std::vector<std::pair<BddVar, bool>> BddManager::anySat(BddRef F) {
  std::vector<std::pair<BddVar, bool>> Path;
  assert(F.isValid() && !F.isFalse() && "anySat() requires satisfiable input");
  while (!F.isTerminal()) {
    const Node &N = Nodes[F.index()];
    if (!BddRef(N.High).isFalse()) {
      Path.emplace_back(N.Var, true);
      F = BddRef(N.High);
    } else {
      Path.emplace_back(N.Var, false);
      F = BddRef(N.Low);
    }
  }
  return Path;
}

uint64_t BddManager::countNodes(BddRef F) const {
  return countNodesMany({F});
}

uint64_t BddManager::countNodesMany(const std::vector<BddRef> &Roots) const {
  std::unordered_set<uint32_t> Seen;
  std::vector<BddRef> Stack;
  for (BddRef R : Roots)
    if (R.isValid() && !R.isTerminal())
      Stack.push_back(R);
  uint64_t Count = 0;
  while (!Stack.empty()) {
    BddRef Cur = Stack.back();
    Stack.pop_back();
    if (Cur.isTerminal() || !Seen.insert(Cur.index()).second)
      continue;
    ++Count;
    const Node &N = Nodes[Cur.index()];
    Stack.push_back(BddRef(N.Low));
    Stack.push_back(BddRef(N.High));
  }
  return Count;
}

bool BddManager::evaluate(BddRef F, const std::vector<bool> &Assignment) const {
  assert(F.isValid() && "evaluate() on invalid ref");
  while (!F.isTerminal()) {
    const Node &N = Nodes[F.index()];
    bool Value = N.Var < Assignment.size() && Assignment[N.Var];
    F = BddRef(Value ? N.High : N.Low);
  }
  return F.isTrue();
}
