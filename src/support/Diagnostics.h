//===--- Diagnostics.h - Diagnostic engine ----------------------*- C++-*-===//
///
/// \file
/// Error reporting for the whole pipeline. The project does not use C++
/// exceptions (per the coding standard); every phase reports problems through
/// a DiagnosticEngine and callers test hasErrors().
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_SUPPORT_DIAGNOSTICS_H
#define SIGNALC_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace sigc {

class SourceManager;

/// Severity of a diagnostic message.
enum class DiagSeverity {
  Note,
  Warning,
  Error,
};

/// One reported diagnostic.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLoc Loc;
  std::string Message;
};

/// Collects diagnostics emitted by all compiler phases.
///
/// Messages follow the LLVM style: start lowercase, no trailing period.
class DiagnosticEngine {
public:
  DiagnosticEngine() = default;
  explicit DiagnosticEngine(const SourceManager *SM) : SM(SM) {}

  void error(SourceLoc Loc, std::string Message);
  void warning(SourceLoc Loc, std::string Message);
  void note(SourceLoc Loc, std::string Message);

  /// Convenience overloads for phase-level problems with no location.
  void error(std::string Message) { error(SourceLoc(), std::move(Message)); }
  void warning(std::string Message) {
    warning(SourceLoc(), std::move(Message));
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  unsigned warningCount() const { return NumWarnings; }

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders every diagnostic as "file:line:col: severity: message\n".
  std::string render() const;

  /// Drops all recorded diagnostics (used by tests and the REPL-style
  /// examples).
  void clear();

private:
  void report(DiagSeverity Severity, SourceLoc Loc, std::string Message);

  const SourceManager *SM = nullptr;
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
  unsigned NumWarnings = 0;
};

} // namespace sigc

#endif // SIGNALC_SUPPORT_DIAGNOSTICS_H
