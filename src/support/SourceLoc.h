//===--- SourceLoc.h - Source locations -------------------------*- C++-*-===//
///
/// \file
/// Lightweight source locations and ranges used by the lexer, parser and
/// diagnostics engine. A SourceLoc is a byte offset into a buffer managed by
/// SourceManager; line/column rendering is resolved lazily.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_SUPPORT_SOURCELOC_H
#define SIGNALC_SUPPORT_SOURCELOC_H

#include <cstdint>

namespace sigc {

/// A position in a source buffer, encoded as a byte offset.
/// Offset UINT32_MAX denotes an invalid/unknown location.
class SourceLoc {
public:
  SourceLoc() = default;
  explicit SourceLoc(uint32_t Offset) : Offset(Offset) {}

  /// \returns true if this location points into a real buffer.
  bool isValid() const { return Offset != Invalid; }

  uint32_t offset() const { return Offset; }

  bool operator==(const SourceLoc &RHS) const { return Offset == RHS.Offset; }
  bool operator!=(const SourceLoc &RHS) const { return Offset != RHS.Offset; }
  bool operator<(const SourceLoc &RHS) const { return Offset < RHS.Offset; }

private:
  static constexpr uint32_t Invalid = 0xFFFFFFFFu;
  uint32_t Offset = Invalid;
};

/// A half-open range [Begin, End) of source text.
struct SourceRange {
  SourceLoc Begin;
  SourceLoc End;

  SourceRange() = default;
  SourceRange(SourceLoc Begin, SourceLoc End) : Begin(Begin), End(End) {}
  explicit SourceRange(SourceLoc Loc) : Begin(Loc), End(Loc) {}

  bool isValid() const { return Begin.isValid(); }
};

} // namespace sigc

#endif // SIGNALC_SUPPORT_SOURCELOC_H
