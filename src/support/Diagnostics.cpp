//===--- Diagnostics.cpp --------------------------------------------------===//

#include "support/Diagnostics.h"
#include "support/SourceManager.h"

using namespace sigc;

void DiagnosticEngine::report(DiagSeverity Severity, SourceLoc Loc,
                              std::string Message) {
  if (Severity == DiagSeverity::Error)
    ++NumErrors;
  else if (Severity == DiagSeverity::Warning)
    ++NumWarnings;
  Diags.push_back({Severity, Loc, std::move(Message)});
}

void DiagnosticEngine::error(SourceLoc Loc, std::string Message) {
  report(DiagSeverity::Error, Loc, std::move(Message));
}

void DiagnosticEngine::warning(SourceLoc Loc, std::string Message) {
  report(DiagSeverity::Warning, Loc, std::move(Message));
}

void DiagnosticEngine::note(SourceLoc Loc, std::string Message) {
  report(DiagSeverity::Note, Loc, std::move(Message));
}

static const char *severityName(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "unknown";
}

std::string DiagnosticEngine::render() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    if (SM && D.Loc.isValid())
      Out += SM->describe(D.Loc);
    else
      Out += "<signalc>";
    Out += ": ";
    Out += severityName(D.Severity);
    Out += ": ";
    Out += D.Message;
    Out += '\n';
  }
  return Out;
}

void DiagnosticEngine::clear() {
  Diags.clear();
  NumErrors = 0;
  NumWarnings = 0;
}
