//===--- SourceManager.h - Source buffer ownership --------------*- C++-*-===//
///
/// \file
/// Owns source buffers and maps SourceLoc offsets back to
/// (file, line, column) triples for diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_SUPPORT_SOURCEMANAGER_H
#define SIGNALC_SUPPORT_SOURCEMANAGER_H

#include "support/SourceLoc.h"

#include <string>
#include <string_view>
#include <vector>

namespace sigc {

/// A (line, column) pair, both 1-based.
struct LineColumn {
  unsigned Line = 0;
  unsigned Column = 0;
};

/// Owns the text of every source buffer fed to the compiler and resolves
/// byte offsets into human-readable positions.
///
/// Buffers are laid out in one virtual address space: buffer N starts where
/// buffer N-1 ended, so a plain SourceLoc identifies both the buffer and the
/// position inside it.
class SourceManager {
public:
  /// Registers \p Text under \p Name. \returns the location of its first
  /// byte.
  SourceLoc addBuffer(std::string Name, std::string Text);

  /// \returns the full text of the buffer containing \p Loc.
  std::string_view bufferText(SourceLoc Loc) const;

  /// \returns the name under which the buffer containing \p Loc was added.
  std::string_view bufferName(SourceLoc Loc) const;

  /// Resolves \p Loc to a 1-based line/column inside its buffer.
  LineColumn lineColumn(SourceLoc Loc) const;

  /// Renders \p Loc as "name:line:col" (or "<unknown>").
  std::string describe(SourceLoc Loc) const;

  unsigned numBuffers() const { return static_cast<unsigned>(Buffers.size()); }

private:
  struct Buffer {
    std::string Name;
    std::string Text;
    uint32_t Start = 0; ///< Global offset of the first byte.
  };

  const Buffer *findBuffer(SourceLoc Loc) const;

  std::vector<Buffer> Buffers;
  uint32_t NextStart = 0;
};

} // namespace sigc

#endif // SIGNALC_SUPPORT_SOURCEMANAGER_H
