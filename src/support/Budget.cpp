//===--- Budget.cpp -------------------------------------------------------===//

#include "support/Budget.h"

using namespace sigc;

const char *sigc::budgetVerdictName(BudgetVerdict V) {
  switch (V) {
  case BudgetVerdict::Ok:
    return "ok";
  case BudgetVerdict::UnableCpu:
    return "unable-cpu";
  case BudgetVerdict::UnableMem:
    return "unable-mem";
  }
  return "unknown";
}

void Budget::start() {
  Start = Clock::now();
  Verdict = BudgetVerdict::Ok;
}

uint64_t Budget::elapsedMs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                            Start)
          .count());
}

bool Budget::checkTime() {
  if (Verdict != BudgetVerdict::Ok)
    return false;
  if (TimeLimitMs != 0 && elapsedMs() > TimeLimitMs) {
    Verdict = BudgetVerdict::UnableCpu;
    return false;
  }
  return true;
}

bool Budget::checkNodes(uint64_t Nodes) {
  if (Verdict != BudgetVerdict::Ok)
    return false;
  if (NodeLimit != 0 && Nodes > NodeLimit) {
    Verdict = BudgetVerdict::UnableMem;
    return false;
  }
  return true;
}
