//===--- Budget.h - Resource budgets for solver runs ------------*- C++-*-===//
///
/// \file
/// Models the resource limits of the paper's experiment (Figure 13): a CPU
/// time limit ("unable-cpu": 40 minutes in the paper) and a memory limit
/// ("unable-mem": 200 MB in the paper, expressed here as a BDD node budget).
/// Solvers poll a Budget while working and abort with the matching verdict
/// when a limit is exceeded.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_SUPPORT_BUDGET_H
#define SIGNALC_SUPPORT_BUDGET_H

#include <chrono>
#include <cstdint>
#include <string>

namespace sigc {

/// Outcome of a resource-bounded computation, mirroring the verdicts of the
/// paper's Figure 13.
enum class BudgetVerdict {
  Ok,        ///< Finished within limits.
  UnableCpu, ///< "unable-cpu": exceeded the wall-clock budget.
  UnableMem, ///< "unable-mem": exceeded the node/memory budget.
};

/// \returns the Figure-13 spelling of \p V ("ok" / "unable-cpu" /
/// "unable-mem").
const char *budgetVerdictName(BudgetVerdict V);

/// A wall-clock + node-count budget that long-running solver loops poll.
///
/// A default-constructed Budget is unlimited. The node budget is checked by
/// whoever allocates (the BDD manager); the time budget is checked via
/// checkTime() at operation boundaries.
class Budget {
public:
  Budget() = default;

  /// Creates a budget of \p Millis wall-clock milliseconds and \p MaxNodes
  /// live BDD nodes; 0 means unlimited for either.
  Budget(uint64_t Millis, uint64_t MaxNodes)
      : TimeLimitMs(Millis), NodeLimit(MaxNodes) {}

  /// Starts (or restarts) the wall clock.
  void start();

  /// \returns elapsed milliseconds since start().
  uint64_t elapsedMs() const;

  /// \returns false once the time budget is exhausted (sticky).
  bool checkTime();

  /// Records that \p Nodes nodes are now live; \returns false once over
  /// budget (sticky).
  bool checkNodes(uint64_t Nodes);

  /// \returns the final verdict; Ok unless some limit tripped.
  BudgetVerdict verdict() const { return Verdict; }
  bool exhausted() const { return Verdict != BudgetVerdict::Ok; }

  uint64_t timeLimitMs() const { return TimeLimitMs; }
  uint64_t nodeLimit() const { return NodeLimit; }

private:
  using Clock = std::chrono::steady_clock;

  uint64_t TimeLimitMs = 0; ///< 0 = unlimited.
  uint64_t NodeLimit = 0;   ///< 0 = unlimited.
  Clock::time_point Start = Clock::now();
  BudgetVerdict Verdict = BudgetVerdict::Ok;
};

} // namespace sigc

#endif // SIGNALC_SUPPORT_BUDGET_H
