//===--- StringInterner.h - Interned identifiers ----------------*- C++-*-===//
///
/// \file
/// Interns identifier spellings so the rest of the compiler can compare
/// names as small integers (Symbol).
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_SUPPORT_STRINGINTERNER_H
#define SIGNALC_SUPPORT_STRINGINTERNER_H

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace sigc {

/// An interned identifier. Value 0 is reserved as the invalid symbol.
class Symbol {
public:
  Symbol() = default;
  explicit Symbol(uint32_t Id) : Id(Id) {}

  bool isValid() const { return Id != 0; }
  uint32_t id() const { return Id; }

  bool operator==(const Symbol &RHS) const { return Id == RHS.Id; }
  bool operator!=(const Symbol &RHS) const { return Id != RHS.Id; }
  bool operator<(const Symbol &RHS) const { return Id < RHS.Id; }

private:
  uint32_t Id = 0;
};

/// Bidirectional map between identifier text and Symbol.
class StringInterner {
public:
  StringInterner() { Spellings.emplace_back(); } // slot 0 = invalid

  /// Interns \p Text, returning the same Symbol for equal spellings.
  Symbol intern(std::string_view Text);

  /// \returns the spelling of \p Sym; empty for the invalid symbol.
  std::string_view spelling(Symbol Sym) const;

  /// \returns the Symbol for \p Text if already interned, invalid otherwise.
  Symbol lookup(std::string_view Text) const;

  unsigned size() const { return static_cast<unsigned>(Spellings.size()) - 1; }

private:
  // Deque: element addresses are stable, so the string_view keys in Index
  // (which point into the stored strings) never dangle.
  std::deque<std::string> Spellings;
  std::unordered_map<std::string_view, uint32_t> Index;
};

} // namespace sigc

namespace std {
template <> struct hash<sigc::Symbol> {
  size_t operator()(const sigc::Symbol &S) const noexcept {
    return std::hash<uint32_t>()(S.id());
  }
};
} // namespace std

#endif // SIGNALC_SUPPORT_STRINGINTERNER_H
