//===--- StringInterner.cpp -----------------------------------------------===//

#include "support/StringInterner.h"

using namespace sigc;

Symbol StringInterner::intern(std::string_view Text) {
  auto It = Index.find(Text);
  if (It != Index.end())
    return Symbol(It->second);
  uint32_t Id = static_cast<uint32_t>(Spellings.size());
  Spellings.emplace_back(Text);
  Index.emplace(std::string_view(Spellings.back()), Id);
  return Symbol(Id);
}

std::string_view StringInterner::spelling(Symbol Sym) const {
  if (!Sym.isValid() || Sym.id() >= Spellings.size())
    return {};
  return Spellings[Sym.id()];
}

Symbol StringInterner::lookup(std::string_view Text) const {
  auto It = Index.find(Text);
  if (It == Index.end())
    return Symbol();
  return Symbol(It->second);
}
