//===--- SourceManager.cpp ------------------------------------------------===//

#include "support/SourceManager.h"

#include <cassert>

using namespace sigc;

SourceLoc SourceManager::addBuffer(std::string Name, std::string Text) {
  Buffer B;
  B.Name = std::move(Name);
  B.Text = std::move(Text);
  B.Start = NextStart;
  // +1 so that a location one-past-the-end of a buffer still resolves to it.
  NextStart += static_cast<uint32_t>(B.Text.size()) + 1;
  Buffers.push_back(std::move(B));
  return SourceLoc(Buffers.back().Start);
}

const SourceManager::Buffer *SourceManager::findBuffer(SourceLoc Loc) const {
  if (!Loc.isValid())
    return nullptr;
  // Buffers are sorted by Start; binary search for the enclosing one.
  uint32_t Off = Loc.offset();
  int Lo = 0, Hi = static_cast<int>(Buffers.size()) - 1;
  while (Lo <= Hi) {
    int Mid = (Lo + Hi) / 2;
    const Buffer &B = Buffers[Mid];
    uint32_t End = B.Start + static_cast<uint32_t>(B.Text.size());
    if (Off < B.Start)
      Hi = Mid - 1;
    else if (Off > End)
      Lo = Mid + 1;
    else
      return &B;
  }
  return nullptr;
}

std::string_view SourceManager::bufferText(SourceLoc Loc) const {
  const Buffer *B = findBuffer(Loc);
  assert(B && "location does not belong to any buffer");
  return B->Text;
}

std::string_view SourceManager::bufferName(SourceLoc Loc) const {
  const Buffer *B = findBuffer(Loc);
  assert(B && "location does not belong to any buffer");
  return B->Name;
}

LineColumn SourceManager::lineColumn(SourceLoc Loc) const {
  const Buffer *B = findBuffer(Loc);
  if (!B)
    return {};
  uint32_t Rel = Loc.offset() - B->Start;
  LineColumn LC{1, 1};
  for (uint32_t I = 0; I < Rel && I < B->Text.size(); ++I) {
    if (B->Text[I] == '\n') {
      ++LC.Line;
      LC.Column = 1;
    } else {
      ++LC.Column;
    }
  }
  return LC;
}

std::string SourceManager::describe(SourceLoc Loc) const {
  const Buffer *B = findBuffer(Loc);
  if (!B)
    return "<unknown>";
  LineColumn LC = lineColumn(Loc);
  return B->Name + ":" + std::to_string(LC.Line) + ":" +
         std::to_string(LC.Column);
}
