//===--- Lexer.h - SIGNAL lexical analysis ----------------------*- C++-*-===//
///
/// \file
/// Tokenizer for the SIGNAL subset. Notable lexical points:
///   * "(|" and "|)" open/close parallel composition; a bare "|" separates
///     composed processes,
///   * "%" starts a line comment (the paper's Figure 5 style),
///   * ":=", "^=", "/=", "<=", ">=" are multi-character operators,
///   * identifiers may contain "_"; keywords are reserved and
///     case-insensitive (the paper's examples use upper-case signals and
///     lower-case keywords).
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_PARSER_LEXER_H
#define SIGNALC_PARSER_LEXER_H

#include "support/SourceLoc.h"

#include <string>
#include <string_view>
#include <vector>

namespace sigc {

/// Token kinds produced by the lexer.
enum class TokenKind {
  Eof,
  Error,
  Identifier,
  IntLiteral,
  RealLiteral,
  // Keywords.
  KwProcess,
  KwWhere,
  KwEnd,
  KwBoolean,
  KwInteger,
  KwReal,
  KwEvent,
  KwWhen,
  KwDefault,
  KwCell,
  KwInit,
  KwNot,
  KwAnd,
  KwOr,
  KwXor,
  KwMod,
  KwSynchro,
  KwTrue,
  KwFalse,
  // Punctuation and operators.
  LParen,
  RParen,
  LParenBar, ///< "(|"
  BarRParen, ///< "|)"
  Bar,       ///< "|"
  LBrace,
  RBrace,
  Comma,
  Semi,
  Question,
  Bang,
  Assign,  ///< ":="
  ClockEq, ///< "^="
  Dollar,
  Eq,
  Ne, ///< "/="
  Lt,
  Le,
  Gt,
  Ge,
  Plus,
  Minus,
  Star,
  Slash,
};

/// \returns a human-readable description of \p K for diagnostics.
const char *tokenKindName(TokenKind K);

/// One token: kind, source range, and its spelling.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceLoc Loc;
  std::string_view Text;

  bool is(TokenKind K) const { return Kind == K; }
};

/// Single-pass lexer over one buffer.
class Lexer {
public:
  /// Lexes \p Text whose first byte lives at global offset \p BufferStart.
  Lexer(std::string_view Text, SourceLoc BufferStart);

  /// \returns the next token, advancing the cursor.
  Token lex();

  /// Lexes the entire input (testing helper).
  std::vector<Token> lexAll();

private:
  void skipTrivia();
  Token makeToken(TokenKind Kind, size_t Begin);
  Token lexIdentifierOrKeyword();
  Token lexNumber();

  char peek(size_t LookAhead = 0) const;
  bool atEnd() const { return Pos >= Text.size(); }

  std::string_view Text;
  uint32_t Base;
  size_t Pos = 0;
};

} // namespace sigc

#endif // SIGNALC_PARSER_LEXER_H
