//===--- Lexer.cpp --------------------------------------------------------===//

#include "parser/Lexer.h"

#include <cctype>
#include <unordered_map>
#include <vector>

using namespace sigc;

const char *sigc::tokenKindName(TokenKind K) {
  switch (K) {
  case TokenKind::Eof:
    return "end of input";
  case TokenKind::Error:
    return "invalid token";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::RealLiteral:
    return "real literal";
  case TokenKind::KwProcess:
    return "'process'";
  case TokenKind::KwWhere:
    return "'where'";
  case TokenKind::KwEnd:
    return "'end'";
  case TokenKind::KwBoolean:
    return "'boolean'";
  case TokenKind::KwInteger:
    return "'integer'";
  case TokenKind::KwReal:
    return "'real'";
  case TokenKind::KwEvent:
    return "'event'";
  case TokenKind::KwWhen:
    return "'when'";
  case TokenKind::KwDefault:
    return "'default'";
  case TokenKind::KwCell:
    return "'cell'";
  case TokenKind::KwInit:
    return "'init'";
  case TokenKind::KwNot:
    return "'not'";
  case TokenKind::KwAnd:
    return "'and'";
  case TokenKind::KwOr:
    return "'or'";
  case TokenKind::KwXor:
    return "'xor'";
  case TokenKind::KwMod:
    return "'mod'";
  case TokenKind::KwSynchro:
    return "'synchro'";
  case TokenKind::KwTrue:
    return "'true'";
  case TokenKind::KwFalse:
    return "'false'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LParenBar:
    return "'(|'";
  case TokenKind::BarRParen:
    return "'|)'";
  case TokenKind::Bar:
    return "'|'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Semi:
    return "';'";
  case TokenKind::Question:
    return "'?'";
  case TokenKind::Bang:
    return "'!'";
  case TokenKind::Assign:
    return "':='";
  case TokenKind::ClockEq:
    return "'^='";
  case TokenKind::Dollar:
    return "'$'";
  case TokenKind::Eq:
    return "'='";
  case TokenKind::Ne:
    return "'/='";
  case TokenKind::Lt:
    return "'<'";
  case TokenKind::Le:
    return "'<='";
  case TokenKind::Gt:
    return "'>'";
  case TokenKind::Ge:
    return "'>='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  }
  return "<bad-token>";
}

Lexer::Lexer(std::string_view Text, SourceLoc BufferStart)
    : Text(Text), Base(BufferStart.offset()) {}

char Lexer::peek(size_t LookAhead) const {
  size_t I = Pos + LookAhead;
  return I < Text.size() ? Text[I] : '\0';
}

void Lexer::skipTrivia() {
  for (;;) {
    while (!atEnd() && std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    if (!atEnd() && Text[Pos] == '%') {
      while (!atEnd() && Text[Pos] != '\n')
        ++Pos;
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokenKind Kind, size_t Begin) {
  Token T;
  T.Kind = Kind;
  T.Loc = SourceLoc(Base + static_cast<uint32_t>(Begin));
  T.Text = Text.substr(Begin, Pos - Begin);
  return T;
}

Token Lexer::lexIdentifierOrKeyword() {
  size_t Begin = Pos;
  while (!atEnd() && (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
                      Text[Pos] == '_'))
    ++Pos;
  std::string Lower(Text.substr(Begin, Pos - Begin));
  for (char &C : Lower)
    C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));

  static const std::unordered_map<std::string, TokenKind> Keywords = {
      {"process", TokenKind::KwProcess}, {"where", TokenKind::KwWhere},
      {"end", TokenKind::KwEnd},         {"boolean", TokenKind::KwBoolean},
      {"integer", TokenKind::KwInteger}, {"real", TokenKind::KwReal},
      {"event", TokenKind::KwEvent},     {"when", TokenKind::KwWhen},
      {"default", TokenKind::KwDefault}, {"cell", TokenKind::KwCell},
      {"init", TokenKind::KwInit},       {"not", TokenKind::KwNot},
      {"and", TokenKind::KwAnd},         {"or", TokenKind::KwOr},
      {"xor", TokenKind::KwXor},         {"mod", TokenKind::KwMod},
      {"synchro", TokenKind::KwSynchro}, {"true", TokenKind::KwTrue},
      {"false", TokenKind::KwFalse},
  };
  auto It = Keywords.find(Lower);
  return makeToken(It != Keywords.end() ? It->second : TokenKind::Identifier,
                   Begin);
}

Token Lexer::lexNumber() {
  size_t Begin = Pos;
  while (!atEnd() && std::isdigit(static_cast<unsigned char>(Text[Pos])))
    ++Pos;
  bool IsReal = false;
  // A '.' followed by a digit continues a real literal.
  if (!atEnd() && Text[Pos] == '.' && Pos + 1 < Text.size() &&
      std::isdigit(static_cast<unsigned char>(Text[Pos + 1]))) {
    IsReal = true;
    ++Pos;
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }
  if (!atEnd() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
    size_t Save = Pos;
    ++Pos;
    if (!atEnd() && (Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    if (!atEnd() && std::isdigit(static_cast<unsigned char>(Text[Pos]))) {
      IsReal = true;
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    } else {
      Pos = Save;
    }
  }
  return makeToken(IsReal ? TokenKind::RealLiteral : TokenKind::IntLiteral,
                   Begin);
}

Token Lexer::lex() {
  skipTrivia();
  if (atEnd())
    return makeToken(TokenKind::Eof, Pos);

  char C = Text[Pos];
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifierOrKeyword();
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber();

  size_t Begin = Pos;
  auto single = [&](TokenKind K) {
    ++Pos;
    return makeToken(K, Begin);
  };
  auto pair = [&](TokenKind K) {
    Pos += 2;
    return makeToken(K, Begin);
  };

  switch (C) {
  case '(':
    return peek(1) == '|' ? pair(TokenKind::LParenBar)
                          : single(TokenKind::LParen);
  case ')':
    return single(TokenKind::RParen);
  case '|':
    return peek(1) == ')' ? pair(TokenKind::BarRParen)
                          : single(TokenKind::Bar);
  case '{':
    return single(TokenKind::LBrace);
  case '}':
    return single(TokenKind::RBrace);
  case ',':
    return single(TokenKind::Comma);
  case ';':
    return single(TokenKind::Semi);
  case '?':
    return single(TokenKind::Question);
  case '!':
    return single(TokenKind::Bang);
  case ':':
    return peek(1) == '=' ? pair(TokenKind::Assign)
                          : single(TokenKind::Error);
  case '^':
    return peek(1) == '=' ? pair(TokenKind::ClockEq)
                          : single(TokenKind::Error);
  case '$':
    return single(TokenKind::Dollar);
  case '=':
    return single(TokenKind::Eq);
  case '/':
    return peek(1) == '=' ? pair(TokenKind::Ne) : single(TokenKind::Slash);
  case '<':
    return peek(1) == '=' ? pair(TokenKind::Le) : single(TokenKind::Lt);
  case '>':
    return peek(1) == '=' ? pair(TokenKind::Ge) : single(TokenKind::Gt);
  case '+':
    return single(TokenKind::Plus);
  case '-':
    return single(TokenKind::Minus);
  case '*':
    return single(TokenKind::Star);
  default:
    return single(TokenKind::Error);
  }
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  for (;;) {
    Token T = lex();
    Tokens.push_back(T);
    if (T.is(TokenKind::Eof))
      return Tokens;
  }
}
