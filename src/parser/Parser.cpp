//===--- Parser.cpp -------------------------------------------------------===//

#include "parser/Parser.h"

#include <charconv>

using namespace sigc;

Parser::Parser(std::string_view Text, SourceLoc BufferStart, AstContext &Ctx,
               DiagnosticEngine &Diags)
    : Lex(Text, BufferStart), Ctx(Ctx), Diags(Diags) {
  Tok = Lex.lex();
}

void Parser::advance() { Tok = Lex.lex(); }

bool Parser::consumeIf(TokenKind K) {
  if (!Tok.is(K))
    return false;
  advance();
  return true;
}

bool Parser::expect(TokenKind K, const char *Context) {
  if (consumeIf(K))
    return true;
  Diags.error(Tok.Loc, std::string("expected ") + tokenKindName(K) + " " +
                           Context + ", found " + tokenKindName(Tok.Kind));
  return false;
}

Symbol Parser::internTok() { return Ctx.interner().intern(Tok.Text); }

//===----------------------------------------------------------------------===//
// Top level
//===----------------------------------------------------------------------===//

Program *Parser::parseProgram() {
  auto *Prog = Ctx.create<Program>();
  while (!Tok.is(TokenKind::Eof)) {
    ProcessDecl *D = parseProcessDecl();
    if (!D)
      return nullptr;
    Prog->Processes.push_back(D);
  }
  if (Prog->Processes.empty()) {
    Diags.error(Tok.Loc, "no process declaration found");
    return nullptr;
  }
  return Prog;
}

ProcessDecl *Parser::parseProcessDecl() {
  SourceLoc Loc = Tok.Loc;
  if (!expect(TokenKind::KwProcess, "to start a declaration"))
    return nullptr;
  if (!Tok.is(TokenKind::Identifier)) {
    Diags.error(Tok.Loc, "expected process name");
    return nullptr;
  }
  auto *D = Ctx.create<ProcessDecl>();
  D->Name = internTok();
  D->Loc = Loc;
  advance();
  if (!expect(TokenKind::Eq, "after process name"))
    return nullptr;
  if (!parseInterface(*D))
    return nullptr;

  D->Body = parseComposition();
  if (!D->Body)
    return nullptr;

  if (consumeIf(TokenKind::KwWhere)) {
    while (!Tok.is(TokenKind::KwEnd)) {
      if (Tok.is(TokenKind::Eof)) {
        Diags.error(Tok.Loc, "expected 'end' to close 'where' clause");
        return nullptr;
      }
      if (!parseDeclGroup(*D, SignalDir::Local))
        return nullptr;
    }
    advance(); // 'end'
  }
  consumeIf(TokenKind::Semi);
  return D;
}

bool Parser::parseInterface(ProcessDecl &D) {
  if (!expect(TokenKind::LParen, "to open the process interface"))
    return false;
  if (consumeIf(TokenKind::Question)) {
    while (Tok.is(TokenKind::KwBoolean) || Tok.is(TokenKind::KwInteger) ||
           Tok.is(TokenKind::KwReal) || Tok.is(TokenKind::KwEvent))
      if (!parseDeclGroup(D, SignalDir::Input))
        return false;
  }
  if (consumeIf(TokenKind::Bang)) {
    while (Tok.is(TokenKind::KwBoolean) || Tok.is(TokenKind::KwInteger) ||
           Tok.is(TokenKind::KwReal) || Tok.is(TokenKind::KwEvent))
      if (!parseDeclGroup(D, SignalDir::Output))
        return false;
  }
  return expect(TokenKind::RParen, "to close the process interface");
}

std::optional<TypeKind> Parser::parseType() {
  TypeKind T;
  switch (Tok.Kind) {
  case TokenKind::KwBoolean:
    T = TypeKind::Boolean;
    break;
  case TokenKind::KwInteger:
    T = TypeKind::Integer;
    break;
  case TokenKind::KwReal:
    T = TypeKind::Real;
    break;
  case TokenKind::KwEvent:
    T = TypeKind::Event;
    break;
  default:
    Diags.error(Tok.Loc, std::string("expected a type, found ") +
                             tokenKindName(Tok.Kind));
    return std::nullopt;
  }
  advance();
  return T;
}

bool Parser::parseDeclGroup(ProcessDecl &D, SignalDir Dir) {
  std::optional<TypeKind> T = parseType();
  if (!T)
    return false;
  for (;;) {
    if (!Tok.is(TokenKind::Identifier)) {
      Diags.error(Tok.Loc, "expected signal name in declaration");
      return false;
    }
    SignalDecl S;
    S.Name = internTok();
    S.Type = *T;
    S.Dir = Dir;
    S.Loc = Tok.Loc;
    if (D.findSignal(S.Name)) {
      Diags.error(Tok.Loc, "signal '" + std::string(Tok.Text) +
                               "' declared twice");
      return false;
    }
    D.Signals.push_back(S);
    advance();
    if (consumeIf(TokenKind::Comma))
      continue;
    return expect(TokenKind::Semi, "after signal declaration");
  }
}

//===----------------------------------------------------------------------===//
// Processes
//===----------------------------------------------------------------------===//

Process *Parser::parseComposition() {
  SourceLoc Loc = Tok.Loc;
  if (!expect(TokenKind::LParenBar, "to open a composition"))
    return nullptr;
  std::vector<Process *> Children;
  for (;;) {
    Process *P = parseProcessItem();
    if (!P)
      return nullptr;
    Children.push_back(P);
    if (consumeIf(TokenKind::Bar))
      continue;
    if (!expect(TokenKind::BarRParen, "to close a composition"))
      return nullptr;
    return Ctx.create<CompositionProc>(std::move(Children), Loc);
  }
}

Process *Parser::parseProcessItem() {
  SourceLoc Loc = Tok.Loc;

  // Nested composition.
  if (Tok.is(TokenKind::LParenBar))
    return parseComposition();

  // synchro { e1, ..., en }
  if (consumeIf(TokenKind::KwSynchro)) {
    if (!expect(TokenKind::LBrace, "after 'synchro'"))
      return nullptr;
    std::vector<Expr *> Operands;
    for (;;) {
      Expr *E = parseExpr();
      if (!E)
        return nullptr;
      Operands.push_back(E);
      if (consumeIf(TokenKind::Comma))
        continue;
      if (!expect(TokenKind::RBrace, "to close 'synchro'"))
        return nullptr;
      break;
    }
    if (Operands.size() < 2) {
      Diags.error(Loc, "'synchro' needs at least two operands");
      return nullptr;
    }
    return Ctx.create<SynchroProc>(std::move(Operands), Loc);
  }

  // "X := E" needs two tokens of lookahead; the lexer is one-token, so
  // peek by trial: an Identifier followed by ':=' is an equation, anything
  // else falls through to the clock-equality production.
  if (Tok.is(TokenKind::Identifier)) {
    Symbol Target = internTok();
    Token Save = Tok;
    advance();
    if (consumeIf(TokenKind::Assign)) {
      Expr *RHS = parseExpr();
      if (!RHS)
        return nullptr;
      return Ctx.create<EquationProc>(Target, RHS, Loc);
    }
    // Not an equation: re-interpret the identifier as the start of an
    // expression for "E1 ^= E2". Build the NameExpr directly (the current
    // token is already past it).
    Expr *LHS = Ctx.create<NameExpr>(Target, Save.Loc);
    // Continue parsing the rest of the expression after the identifier:
    // only postfix/infix continuations are possible here. For simplicity,
    // clock equality operands that are more complex than a name must be
    // parenthesized.
    if (!consumeIf(TokenKind::ClockEq)) {
      Diags.error(Tok.Loc, "expected ':=' or '^=' after signal name");
      return nullptr;
    }
    Expr *RHS = parseExpr();
    if (!RHS)
      return nullptr;
    return Ctx.create<ClockEqProc>(LHS, RHS, Loc);
  }

  // General clock equality: expr ^= expr.
  Expr *LHS = parseExpr();
  if (!LHS)
    return nullptr;
  if (!expect(TokenKind::ClockEq, "in clock constraint"))
    return nullptr;
  Expr *RHS = parseExpr();
  if (!RHS)
    return nullptr;
  return Ctx.create<ClockEqProc>(LHS, RHS, Loc);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Expr *Parser::parseExpr() { return parseDefaultExpr(); }

Expr *Parser::parseDefaultExpr() {
  Expr *LHS = parseWhenExpr();
  if (!LHS)
    return nullptr;
  while (Tok.is(TokenKind::KwDefault)) {
    SourceLoc Loc = Tok.Loc;
    advance();
    Expr *RHS = parseWhenExpr();
    if (!RHS)
      return nullptr;
    LHS = Ctx.create<DefaultExpr>(LHS, RHS, Loc);
  }
  return LHS;
}

Expr *Parser::parseWhenExpr() {
  // Unary "when C" at expression start.
  if (Tok.is(TokenKind::KwWhen)) {
    SourceLoc Loc = Tok.Loc;
    advance();
    Expr *Cond = parseOrExpr();
    if (!Cond)
      return nullptr;
    return Ctx.create<UnaryWhenExpr>(Cond, Loc);
  }

  Expr *LHS = parseOrExpr();
  if (!LHS)
    return nullptr;
  for (;;) {
    if (Tok.is(TokenKind::KwWhen)) {
      SourceLoc Loc = Tok.Loc;
      advance();
      Expr *Cond = parseOrExpr();
      if (!Cond)
        return nullptr;
      LHS = Ctx.create<WhenExpr>(LHS, Cond, Loc);
      continue;
    }
    if (Tok.is(TokenKind::KwCell)) {
      SourceLoc Loc = Tok.Loc;
      advance();
      Expr *Cond = parseOrExpr();
      if (!Cond)
        return nullptr;
      if (!expect(TokenKind::KwInit, "in 'cell' expression"))
        return nullptr;
      std::optional<Value> Init = parseConstValue();
      if (!Init)
        return nullptr;
      LHS = Ctx.create<CellExpr>(LHS, Cond, *Init, Loc);
      continue;
    }
    return LHS;
  }
}

Expr *Parser::parseOrExpr() {
  Expr *LHS = parseAndExpr();
  if (!LHS)
    return nullptr;
  while (Tok.is(TokenKind::KwOr) || Tok.is(TokenKind::KwXor)) {
    BinaryOp Op = Tok.is(TokenKind::KwOr) ? BinaryOp::Or : BinaryOp::Xor;
    SourceLoc Loc = Tok.Loc;
    advance();
    Expr *RHS = parseAndExpr();
    if (!RHS)
      return nullptr;
    LHS = Ctx.create<BinaryExpr>(Op, LHS, RHS, Loc);
  }
  return LHS;
}

Expr *Parser::parseAndExpr() {
  Expr *LHS = parseNotExpr();
  if (!LHS)
    return nullptr;
  while (Tok.is(TokenKind::KwAnd)) {
    SourceLoc Loc = Tok.Loc;
    advance();
    Expr *RHS = parseNotExpr();
    if (!RHS)
      return nullptr;
    LHS = Ctx.create<BinaryExpr>(BinaryOp::And, LHS, RHS, Loc);
  }
  return LHS;
}

Expr *Parser::parseNotExpr() {
  if (Tok.is(TokenKind::KwNot)) {
    SourceLoc Loc = Tok.Loc;
    advance();
    Expr *Operand = parseNotExpr();
    if (!Operand)
      return nullptr;
    return Ctx.create<UnaryExpr>(UnaryOp::Not, Operand, Loc);
  }
  return parseCmpExpr();
}

Expr *Parser::parseCmpExpr() {
  Expr *LHS = parseAddExpr();
  if (!LHS)
    return nullptr;
  BinaryOp Op;
  switch (Tok.Kind) {
  case TokenKind::Eq:
    Op = BinaryOp::Eq;
    break;
  case TokenKind::Ne:
    Op = BinaryOp::Ne;
    break;
  case TokenKind::Lt:
    Op = BinaryOp::Lt;
    break;
  case TokenKind::Le:
    Op = BinaryOp::Le;
    break;
  case TokenKind::Gt:
    Op = BinaryOp::Gt;
    break;
  case TokenKind::Ge:
    Op = BinaryOp::Ge;
    break;
  default:
    return LHS;
  }
  SourceLoc Loc = Tok.Loc;
  advance();
  Expr *RHS = parseAddExpr();
  if (!RHS)
    return nullptr;
  return Ctx.create<BinaryExpr>(Op, LHS, RHS, Loc);
}

Expr *Parser::parseAddExpr() {
  Expr *LHS = parseMulExpr();
  if (!LHS)
    return nullptr;
  while (Tok.is(TokenKind::Plus) || Tok.is(TokenKind::Minus)) {
    BinaryOp Op = Tok.is(TokenKind::Plus) ? BinaryOp::Add : BinaryOp::Sub;
    SourceLoc Loc = Tok.Loc;
    advance();
    Expr *RHS = parseMulExpr();
    if (!RHS)
      return nullptr;
    LHS = Ctx.create<BinaryExpr>(Op, LHS, RHS, Loc);
  }
  return LHS;
}

Expr *Parser::parseMulExpr() {
  Expr *LHS = parseUnaryExpr();
  if (!LHS)
    return nullptr;
  while (Tok.is(TokenKind::Star) || Tok.is(TokenKind::Slash) ||
         Tok.is(TokenKind::KwMod)) {
    BinaryOp Op = Tok.is(TokenKind::Star)    ? BinaryOp::Mul
                  : Tok.is(TokenKind::Slash) ? BinaryOp::Div
                                             : BinaryOp::Mod;
    SourceLoc Loc = Tok.Loc;
    advance();
    Expr *RHS = parseUnaryExpr();
    if (!RHS)
      return nullptr;
    LHS = Ctx.create<BinaryExpr>(Op, LHS, RHS, Loc);
  }
  return LHS;
}

Expr *Parser::parseUnaryExpr() {
  if (Tok.is(TokenKind::Minus)) {
    SourceLoc Loc = Tok.Loc;
    advance();
    Expr *Operand = parseUnaryExpr();
    if (!Operand)
      return nullptr;
    return Ctx.create<UnaryExpr>(UnaryOp::Neg, Operand, Loc);
  }
  return parsePostfixExpr();
}

Expr *Parser::parsePostfixExpr() {
  Expr *E = parsePrimaryExpr();
  if (!E)
    return nullptr;
  while (Tok.is(TokenKind::Dollar)) {
    SourceLoc Loc = Tok.Loc;
    advance();
    unsigned Depth = 1;
    if (Tok.is(TokenKind::IntLiteral)) {
      unsigned Parsed = 0;
      std::from_chars(Tok.Text.data(), Tok.Text.data() + Tok.Text.size(),
                      Parsed);
      Depth = Parsed;
      advance();
    }
    if (Depth == 0) {
      Diags.error(Loc, "delay depth must be at least 1");
      return nullptr;
    }
    if (!expect(TokenKind::KwInit, "in delay expression"))
      return nullptr;
    std::optional<Value> Init = parseConstValue();
    if (!Init)
      return nullptr;
    E = Ctx.create<DelayExpr>(E, Depth, *Init, Loc);
  }
  return E;
}

std::optional<Value> Parser::parseConstValue() {
  bool Negate = consumeIf(TokenKind::Minus);
  SourceLoc Loc = Tok.Loc;
  Value V;
  if (Tok.is(TokenKind::KwTrue)) {
    V = Value::makeBool(true);
  } else if (Tok.is(TokenKind::KwFalse)) {
    V = Value::makeBool(false);
  } else if (Tok.is(TokenKind::IntLiteral)) {
    int64_t I = 0;
    std::from_chars(Tok.Text.data(), Tok.Text.data() + Tok.Text.size(), I);
    V = Value::makeInt(I);
  } else if (Tok.is(TokenKind::RealLiteral)) {
    V = Value::makeReal(std::stod(std::string(Tok.Text)));
  } else {
    Diags.error(Loc, std::string("expected a constant, found ") +
                         tokenKindName(Tok.Kind));
    return std::nullopt;
  }
  advance();
  if (Negate) {
    if (V.Kind == TypeKind::Integer)
      V.Int = -V.Int;
    else if (V.Kind == TypeKind::Real)
      V.Real = -V.Real;
    else {
      Diags.error(Loc, "cannot negate a boolean constant");
      return std::nullopt;
    }
  }
  return V;
}

Expr *Parser::parsePrimaryExpr() {
  SourceLoc Loc = Tok.Loc;
  switch (Tok.Kind) {
  case TokenKind::Identifier: {
    Symbol Name = internTok();
    advance();
    return Ctx.create<NameExpr>(Name, Loc);
  }
  case TokenKind::KwTrue:
    advance();
    return Ctx.create<ConstExpr>(Value::makeBool(true), Loc);
  case TokenKind::KwFalse:
    advance();
    return Ctx.create<ConstExpr>(Value::makeBool(false), Loc);
  case TokenKind::IntLiteral: {
    int64_t I = 0;
    std::from_chars(Tok.Text.data(), Tok.Text.data() + Tok.Text.size(), I);
    advance();
    return Ctx.create<ConstExpr>(Value::makeInt(I), Loc);
  }
  case TokenKind::RealLiteral: {
    double R = std::stod(std::string(Tok.Text));
    advance();
    return Ctx.create<ConstExpr>(Value::makeReal(R), Loc);
  }
  case TokenKind::KwEvent: {
    advance();
    Expr *Operand = parsePrimaryExpr();
    if (!Operand)
      return nullptr;
    return Ctx.create<EventExpr>(Operand, Loc);
  }
  case TokenKind::KwWhen: {
    // Parenthesized sub-expressions may start a unary when again, e.g.
    // "(when C)".
    advance();
    Expr *Cond = parseOrExpr();
    if (!Cond)
      return nullptr;
    return Ctx.create<UnaryWhenExpr>(Cond, Loc);
  }
  case TokenKind::LParen: {
    advance();
    Expr *E = parseExpr();
    if (!E)
      return nullptr;
    if (!expect(TokenKind::RParen, "to close a parenthesized expression"))
      return nullptr;
    return E;
  }
  default:
    Diags.error(Loc, std::string("expected an expression, found ") +
                         tokenKindName(Tok.Kind));
    return nullptr;
  }
}

Expr *Parser::parseStandaloneExpr() {
  Expr *E = parseExpr();
  if (E && !Tok.is(TokenKind::Eof))
    Diags.error(Tok.Loc, std::string("unexpected ") + tokenKindName(Tok.Kind) +
                             " after expression");
  return E;
}

Process *Parser::parseStandaloneProcess() {
  Process *P = parseComposition();
  if (P && !Tok.is(TokenKind::Eof))
    Diags.error(Tok.Loc, std::string("unexpected ") + tokenKindName(Tok.Kind) +
                             " after process");
  return P;
}
