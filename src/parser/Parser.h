//===--- Parser.h - SIGNAL recursive-descent parser -------------*- C++-*-===//
///
/// \file
/// Parses the SIGNAL subset into the AST of ast/Ast.h.
///
/// Expression precedence, loosest first (following the SIGNAL reference
/// grammar): default < when/cell < or/xor < and < not < comparison <
/// additive < multiplicative < unary minus < "$ init" < primary.
/// "when C" at the start of an expression is the derived unary when.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_PARSER_PARSER_H
#define SIGNALC_PARSER_PARSER_H

#include "ast/Ast.h"
#include "parser/Lexer.h"
#include "support/Diagnostics.h"

#include <optional>

namespace sigc {

/// Recursive-descent parser for one buffer.
class Parser {
public:
  Parser(std::string_view Text, SourceLoc BufferStart, AstContext &Ctx,
         DiagnosticEngine &Diags);

  /// Parses a whole file of process declarations.
  /// \returns nullptr after reporting diagnostics on failure.
  Program *parseProgram();

  /// Parses a single expression (testing entry point).
  Expr *parseStandaloneExpr();

  /// Parses a single process body "(| ... |)" (testing entry point).
  Process *parseStandaloneProcess();

private:
  // Token plumbing.
  const Token &tok() const { return Tok; }
  void advance();
  bool consumeIf(TokenKind K);
  bool expect(TokenKind K, const char *Context);
  Symbol internTok();

  // Grammar productions.
  ProcessDecl *parseProcessDecl();
  bool parseInterface(ProcessDecl &D);
  bool parseDeclGroup(ProcessDecl &D, SignalDir Dir);
  std::optional<TypeKind> parseType();
  Process *parseProcessItem();
  Process *parseComposition();
  Expr *parseExpr();
  Expr *parseDefaultExpr();
  Expr *parseWhenExpr();
  Expr *parseOrExpr();
  Expr *parseAndExpr();
  Expr *parseNotExpr();
  Expr *parseCmpExpr();
  Expr *parseAddExpr();
  Expr *parseMulExpr();
  Expr *parseUnaryExpr();
  Expr *parsePostfixExpr();
  Expr *parsePrimaryExpr();
  std::optional<Value> parseConstValue();

  Lexer Lex;
  Token Tok;
  AstContext &Ctx;
  DiagnosticEngine &Diags;
};

} // namespace sigc

#endif // SIGNALC_PARSER_PARSER_H
