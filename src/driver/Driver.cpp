//===--- Driver.cpp -------------------------------------------------------===//

#include "driver/Driver.h"

#include "codegen/StepCompiler.h"
#include "native/TierController.h"
#include "sema/Sema.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

using namespace sigc;

const char *sigc::to_string(CompileStage Stage) {
  switch (Stage) {
  case CompileStage::None:
    return "none";
  case CompileStage::Parse:
    return "parse";
  case CompileStage::Select:
    return "select";
  case CompileStage::Sema:
    return "sema";
  case CompileStage::ClockCalculus:
    return "clock-calculus";
  case CompileStage::Graph:
    return "graph";
  }
  return "none";
}

const char *sigc::engineModeList() { return "vm, nested, flat"; }

bool sigc::parseEngineMode(const std::string &Name, EngineMode &Mode,
                           std::string &Diag) {
  if (Name == "vm") {
    Mode = EngineMode::Vm;
  } else if (Name == "nested") {
    Mode = EngineMode::Nested;
  } else if (Name == "flat") {
    Mode = EngineMode::Flat;
  } else {
    Diag = "unknown --mode '" + Name +
           "'; valid modes: " + engineModeList();
    return false;
  }
  return true;
}

const char *sigc::nativeModeList() { return "off, auto, force"; }

bool sigc::parseNativeMode(const std::string &Name, NativeMode &Mode,
                           std::string &Diag) {
  if (Name == "off") {
    Mode = NativeMode::Off;
  } else if (Name == "auto") {
    Mode = NativeMode::Auto;
  } else if (Name == "force") {
    Mode = NativeMode::Force;
  } else {
    Diag = "unknown --native '" + Name +
           "'; valid modes: " + nativeModeList();
    return false;
  }
  return true;
}

bool sigc::parseCliUnsigned(const std::string &Flag, const char *Text,
                            uint64_t Max, uint64_t &Out, std::string &Diag) {
  if (!Text) {
    Diag = "missing value for " + Flag;
    return false;
  }
  std::string S(Text);
  if (S.empty() || S.find_first_not_of("0123456789") != std::string::npos) {
    Diag = "invalid value '" + S + "' for " + Flag +
           ": expected an unsigned integer";
    return false;
  }
  // All-digits input can still overflow; strtoull saturates and sets
  // errno, so both the 2^64 overflow and the caller's own ceiling become
  // the same out-of-range diagnostic.
  errno = 0;
  uint64_t V = std::strtoull(S.c_str(), nullptr, 10);
  if (errno == ERANGE || V > Max) {
    Diag = "value '" + S + "' for " + Flag + " is out of range (max " +
           std::to_string(Max) + ")";
    return false;
  }
  Out = V;
  return true;
}

namespace {

/// Bounded Levenshtein distance (insert/delete/substitute, unit cost).
unsigned editDistance(const std::string &A, const std::string &B) {
  std::vector<unsigned> Row(B.size() + 1);
  for (size_t J = 0; J <= B.size(); ++J)
    Row[J] = static_cast<unsigned>(J);
  for (size_t I = 1; I <= A.size(); ++I) {
    unsigned Diag = Row[0];
    Row[0] = static_cast<unsigned>(I);
    for (size_t J = 1; J <= B.size(); ++J) {
      unsigned Sub = Diag + (A[I - 1] != B[J - 1]);
      Diag = Row[J];
      Row[J] = std::min({Row[J] + 1, Row[J - 1] + 1, Sub});
    }
  }
  return Row[B.size()];
}

} // namespace

std::string sigc::suggestNearestFlag(const std::string &Arg,
                                     const std::vector<std::string> &Known) {
  std::string Best;
  unsigned BestDist = ~0u;
  for (const std::string &K : Known) {
    unsigned D = editDistance(Arg, K);
    if (D < BestDist) {
      BestDist = D;
      Best = K;
    }
  }
  // A suggestion is only useful when the typo is plausibly the flag:
  // within a third of its length (and never for wildly short inputs).
  if (Best.empty() || BestDist > std::max<size_t>(1, Best.size() / 3))
    return std::string();
  return Best;
}

std::unique_ptr<Compilation> sigc::compileSource(std::string BufferName,
                                                 std::string Source,
                                                 const CompileOptions &Options) {
  auto C = std::make_unique<Compilation>();
  SourceLoc Start = C->SM.addBuffer(BufferName, Source);
  std::string_view Text = C->SM.bufferText(Start);

  // Parse.
  Parser P(Text, Start, C->Ctx, C->Diags);
  C->Ast = P.parseProgram();
  if (!C->Ast || C->Diags.hasErrors()) {
    C->FailedStage = CompileStage::Parse;
    return C;
  }

  // Select the process.
  if (Options.ProcessName.empty()) {
    C->Decl = C->Ast->Processes.front();
  } else {
    Symbol Name = C->Ctx.interner().lookup(Options.ProcessName);
    C->Decl = Name.isValid() ? C->Ast->findProcess(Name) : nullptr;
    if (!C->Decl) {
      std::string Declared;
      for (const ProcessDecl *D : C->Ast->Processes) {
        if (!Declared.empty())
          Declared += ", ";
        Declared += C->Ctx.interner().spelling(D->Name);
      }
      C->Diags.error("no process named '" + Options.ProcessName +
                     "' in this file; declared processes: " + Declared);
      C->FailedStage = CompileStage::Select;
      return C;
    }
  }

  // Sema + kernel lowering.
  Sema S(C->Ctx, C->Diags);
  C->Kernel = S.analyze(*C->Decl);
  if (!C->Kernel || C->Diags.hasErrors()) {
    C->FailedStage = CompileStage::Sema;
    return C;
  }

  // Clock calculus.
  C->Clocks = extractClockSystem(*C->Kernel);
  C->ForestBudget = Options.Limits;
  C->ForestBudget.start();
  C->Bdds.setBudget(&C->ForestBudget);
  C->Forest = std::make_unique<ClockForest>(C->Bdds);
  if (!C->Forest->build(C->Clocks, *C->Kernel, C->Ctx.interner(),
                        C->Diags)) {
    C->FailedStage = CompileStage::ClockCalculus;
    return C;
  }

  // Dependency graph + schedule.
  if (!C->Graph.build(*C->Kernel, C->Clocks, *C->Forest, C->Ctx.interner(),
                      C->Diags)) {
    C->FailedStage = CompileStage::Graph;
    return C;
  }

  // Step program, then the slot-resolved bytecode — the one lowered form
  // both the VM executor and the C emitter consume.
  C->Step = compileStep(*C->Kernel, C->Clocks, *C->Forest, C->Graph,
                        C->Ctx.interner());
  C->Compiled = CompiledStep::build(*C->Kernel, C->Step);
  C->Ok = true;
  return C;
}
