//===--- Driver.h - End-to-end compilation pipeline -------------*- C++-*-===//
///
/// \file
/// The public entry point of the library: source text in, compiled
/// process out. The pipeline is the paper's (Sections 2 and 3):
///
///   parse → sema/lowering → clock extraction (Table 1) → arborescent
///   resolution (Section 3.4) → conditional dependency graph (Table 2) →
///   scheduling → step program (+ optional C emission).
///
/// A Compilation owns every intermediate artifact so callers (tests,
/// examples, benchmarks, the CLI) can inspect any stage.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_DRIVER_DRIVER_H
#define SIGNALC_DRIVER_DRIVER_H

#include "ast/Ast.h"
#include "bdd/Bdd.h"
#include "clock/ClockSystem.h"
#include "codegen/StepProgram.h"
#include "forest/ClockForest.h"
#include "interp/CompiledStep.h"
#include "graph/CondDepGraph.h"
#include "parser/Parser.h"
#include "sema/Kernel.h"
#include "support/Budget.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

namespace sigc {

/// Compilation options.
struct CompileOptions {
  /// Resource limits for the clock calculus (default: unlimited).
  Budget Limits;
  /// Process to compile when the file declares several; empty = first.
  std::string ProcessName;
};

/// The pipeline stage a failed compilation stopped in. Kept as an enum so
/// the driver, the tests and the linker all spell stage names identically.
enum class CompileStage {
  None,          ///< No failure: the compilation completed.
  Parse,
  Select,        ///< Process selection (--process / ProcessName).
  Sema,
  ClockCalculus,
  Graph,
};

/// \returns the canonical lowercase name ("parse", "clock-calculus", ...).
const char *to_string(CompileStage Stage);

/// Execution engines selectable with `signalc --mode`.
enum class EngineMode { Vm, Nested, Flat };

/// The canonical valid-mode list ("vm, nested, flat") for diagnostics.
const char *engineModeList();

/// Parses a --mode spelling. On an unknown mode returns false and fills
/// \p Diag with a diagnostic naming every valid mode — the same shape as
/// the --process typo diagnostic, so a typo never sends the user to the
/// sources.
bool parseEngineMode(const std::string &Name, EngineMode &Mode,
                     std::string &Diag);

enum class NativeMode : uint8_t; // native/TierController.h

/// The canonical valid --native list ("off, auto, force") for diagnostics.
const char *nativeModeList();

/// Parses a --native spelling, with the parseEngineMode contract: an
/// unknown mode returns false and \p Diag names every valid one.
bool parseNativeMode(const std::string &Name, NativeMode &Mode,
                     std::string &Diag);

/// Parses the numeric operand of CLI flag \p Flag into \p Out. \p Text
/// may be null (flag given as the last argument): every failure — a
/// missing operand, a non-numeric spelling, or a value above \p Max —
/// returns false and fills \p Diag with a diagnostic naming the flag, so
/// `--batch abc` and `--seed 99999999999999999999` are exit-code-2
/// diagnoses instead of uncaught std::stoul exceptions.
bool parseCliUnsigned(const std::string &Flag, const char *Text, uint64_t Max,
                      uint64_t &Out, std::string &Diag);

/// \returns the element of \p Known nearest to \p Arg by edit distance,
/// or empty when nothing is plausibly close (distance > 1/3 of the
/// flag's length, so `--simulte` suggests `--simulate` but line noise
/// suggests nothing). Extends the --process/--mode typo idiom to the
/// driver's own flag table: an unknown top-level flag names its nearest
/// neighbour instead of sending the user to --help.
std::string suggestNearestFlag(const std::string &Arg,
                               const std::vector<std::string> &Known);

/// Every artifact of one compilation, stage by stage.
class Compilation {
public:
  SourceManager SM;
  DiagnosticEngine Diags{&SM};
  AstContext Ctx;

  const Program *Ast = nullptr;
  const ProcessDecl *Decl = nullptr;
  std::optional<KernelProgram> Kernel;
  ClockSystem Clocks;
  Budget ForestBudget;
  BddManager Bdds;
  std::unique_ptr<ClockForest> Forest;
  CondDepGraph Graph;
  StepProgram Step;
  /// The single lowered IR: slot-resolved bytecode built once from Step
  /// and consumed by both the VM executor and the C emitter.
  CompiledStep Compiled;

  /// True when every stage completed.
  bool Ok = false;
  /// The stage that failed; CompileStage::None when Ok.
  CompileStage FailedStage = CompileStage::None;

  /// The canonical name of the failed stage ("parse", "sema", ...).
  const char *failedStageName() const { return to_string(FailedStage); }

  /// The interner used for all names.
  StringInterner &names() { return Ctx.interner(); }
};

/// Compiles \p Source (registered under \p BufferName).
/// Always returns a Compilation; check ->Ok and ->Diags.
std::unique_ptr<Compilation> compileSource(std::string BufferName,
                                           std::string Source,
                                           const CompileOptions &Options = {});

} // namespace sigc

#endif // SIGNALC_DRIVER_DRIVER_H
