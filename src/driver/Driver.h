//===--- Driver.h - End-to-end compilation pipeline -------------*- C++-*-===//
///
/// \file
/// The public entry point of the library: source text in, compiled
/// process out. The pipeline is the paper's (Sections 2 and 3):
///
///   parse → sema/lowering → clock extraction (Table 1) → arborescent
///   resolution (Section 3.4) → conditional dependency graph (Table 2) →
///   scheduling → step program (+ optional C emission).
///
/// A Compilation owns every intermediate artifact so callers (tests,
/// examples, benchmarks, the CLI) can inspect any stage.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_DRIVER_DRIVER_H
#define SIGNALC_DRIVER_DRIVER_H

#include "ast/Ast.h"
#include "bdd/Bdd.h"
#include "clock/ClockSystem.h"
#include "codegen/StepProgram.h"
#include "forest/ClockForest.h"
#include "graph/CondDepGraph.h"
#include "parser/Parser.h"
#include "sema/Kernel.h"
#include "support/Budget.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"

#include <memory>
#include <optional>
#include <string>

namespace sigc {

/// Compilation options.
struct CompileOptions {
  /// Resource limits for the clock calculus (default: unlimited).
  Budget Limits;
  /// Process to compile when the file declares several; empty = first.
  std::string ProcessName;
};

/// Every artifact of one compilation, stage by stage.
class Compilation {
public:
  SourceManager SM;
  DiagnosticEngine Diags{&SM};
  AstContext Ctx;

  const Program *Ast = nullptr;
  const ProcessDecl *Decl = nullptr;
  std::optional<KernelProgram> Kernel;
  ClockSystem Clocks;
  Budget ForestBudget;
  BddManager Bdds;
  std::unique_ptr<ClockForest> Forest;
  CondDepGraph Graph;
  StepProgram Step;

  /// True when every stage completed.
  bool Ok = false;
  /// The stage that failed, for error reporting ("parse", "sema", ...).
  std::string FailedStage;

  /// The interner used for all names.
  StringInterner &names() { return Ctx.interner(); }
};

/// Compiles \p Source (registered under \p BufferName).
/// Always returns a Compilation; check ->Ok and ->Diags.
std::unique_ptr<Compilation> compileSource(std::string BufferName,
                                           std::string Source,
                                           const CompileOptions &Options = {});

} // namespace sigc

#endif // SIGNALC_DRIVER_DRIVER_H
