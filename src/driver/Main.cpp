//===--- Main.cpp - The signalc command-line driver -----------------------===//
///
/// \file
/// Usage:
///   signalc [options] file.sig
///   signalc --builtin NAME          compile a Figure-13 suite program
///   signalc --link P1,P2,... file.sig   separate compilation + link
///
/// Options:
///   --process NAME     pick a process when the file declares several
///   --link P1,P2,...   compile each named process separately (in
///                      parallel) and link them by clock interface
///   --dump-kernel      print the flattened kernel equations
///   --dump-clocks      print the extracted boolean equation system
///   --dump-tree        print the resolved clock forest
///   --dump-graph       print the scheduled dependency actions
///   --dump-step        print the CompiledStep bytecode (the single
///                      lowered IR both the VM and the C emitter consume)
///   --dump-interface   print the process's separate-compilation
///                      interface (every unit's, in --link mode)
///   --dump-link        print the linked-system summary (--link mode)
///   --emit-c           print generated C lowered from the bytecode; in
///                      --link mode, the composed linked system
///   --with-driver      add a main() to the generated C
///   --simulate N       run N instants with a random environment
///   --seed S           PRNG seed for --simulate
///   --batch B          run --simulate in stepN windows of B instants
///                      (vm engine; bulk environment exchange)
///   --record FILE      while simulating, record the trace (clock ticks,
///                      input values, outputs) to FILE in the binary
///                      trace format (vm engine)
///   --frame W          instants per trace frame for --record (default 64)
///   --replay FILE      re-execute the trace recorded in FILE (mmap-backed)
///                      instead of drawing from a random environment,
///                      verifying outputs against the recording
///   --replay-buffered  use buffered read(2) instead of mmap for --replay
///                      (the pipe/socket-shaped path)
///   --serve SOCK       serve trace-stream sessions over the Unix domain
///                      socket SOCK; each client session runs on its own
///                      fleet lane
///   --max-sessions N   concurrent-session capacity for --serve
///   --serve-limit K    exit after K sessions have ended (bounded serve)
///   --resume N         park up to N disconnected sessions for resume
///                      (0, the default, disables session resume)
///   --batch-budget N   global in-flight batch budget in instants; each
///                      admitted session reserves its run-ahead window
///                      against it, excess connections get a typed
///                      at-capacity reject (0 = unlimited)
///   --idle-timeout MS  tear down a session that sends no stimulus for
///                      MS milliseconds while the server waits on it
///   --write-timeout MS tear down a session whose client accepts no
///                      response bytes for MS milliseconds
///   --drain-grace MS   after SIGTERM/SIGINT, force exit if the drain
///                      has not finished within MS milliseconds
///   --sndbuf BYTES     SO_SNDBUF for accepted connections (ops knob)
///   --fleet N          run --simulate over a fleet of N instances of the
///                      process (SoA lane-block sweep; instance j draws
///                      from seed S + j)
///   --threads T        shard the fleet across T worker threads
///   --mode M           execution engine for --simulate: vm (default,
///                      the slot-resolved bytecode VM), nested or flat
///   --native M         tiered native execution: off (default), auto
///                      (cache hit runs native immediately; a miss runs
///                      the VM while a background cc compiles, then
///                      hot-swaps at a batch boundary) or force (block
///                      on the compile; fail if impossible). Applies to
///                      --simulate, --fleet and --serve.
///   --cache-dir DIR    persistent compiled-step cache directory
///                      (default: $XDG_CACHE_HOME/signalc)
///   --tier-after N     minimum interpreted instants before an auto
///                      promotion (warm-up threshold)
///   --stats            after --simulate, print per-run instruction and
///                      guard-test counters to stderr (and the per-tier
///                      instant split when --native is on)
///
//===----------------------------------------------------------------------===//

#include "codegen/CEmitter.h"
#include "driver/Driver.h"
#include "interp/FleetExecutor.h"
#include "interp/LinkedExecutor.h"
#include "interp/StepExecutor.h"
#include "interp/VmExecutor.h"
#include "io/Server.h"
#include "io/TraceEnvironment.h"
#include "link/LinkEmitter.h"
#include "link/Linker.h"
#include "native/NativeExecutor.h"
#include "native/TierController.h"
#include "programs/Programs.h"

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

using namespace sigc;

namespace {

void printUsage() {
  std::fprintf(stderr,
               "usage: signalc [options] file.sig\n"
               "       signalc --builtin NAME [options]\n"
               "       signalc --link P1,P2,... file.sig [options]\n"
               "options: --process NAME --dump-kernel --dump-clocks\n"
               "         --dump-tree --dump-tree-dot --dump-graph "
               "--dump-step\n"
               "         --dump-interface --dump-link\n"
               "         --emit-c --with-driver\n"
               "         --simulate N --seed S --batch B "
               "--fleet N --threads T\n"
               "         --mode vm|nested|flat --stats\n"
               "         --native off|auto|force --cache-dir DIR "
               "--tier-after N\n"
               "         --record FILE --frame W --replay FILE "
               "--replay-buffered\n"
               "         --serve SOCK --max-sessions N --serve-limit K\n"
               "         --resume N --batch-budget N --idle-timeout MS\n"
               "         --write-timeout MS --drain-grace MS --sndbuf "
               "BYTES\n");
}

void printStats(const std::string &Mode, unsigned Instants,
                uint64_t Executed, uint64_t GuardTests) {
  std::fprintf(stderr,
               "stats: mode=%s instants=%u executed=%llu guard_tests=%llu "
               "instrs_per_instant=%.2f\n",
               Mode.c_str(), Instants,
               static_cast<unsigned long long>(Executed),
               static_cast<unsigned long long>(GuardTests),
               static_cast<double>(Executed) / Instants);
}

const char *nativeModeName(NativeMode M) {
  switch (M) {
  case NativeMode::Off:
    return "off";
  case NativeMode::Auto:
    return "auto";
  case NativeMode::Force:
    return "force";
  }
  return "off";
}

/// The --stats tier split: which tier executed how many instants, plus
/// the cache outcome the run observed.
void printTierStats(const TierController &TC) {
  TierStats S = TC.stats();
  std::fprintf(stderr,
               "stats: tier native=%s cache=%s vm_instants=%llu "
               "native_instants=%llu hash=%s%s%s\n",
               nativeModeName(TC.mode()), S.CacheHit ? "hit" : "miss",
               static_cast<unsigned long long>(S.VmInstants),
               static_cast<unsigned long long>(S.NativeInstants),
               S.Hash.c_str(), S.Error.empty() ? "" : " error=",
               S.Error.c_str());
}

std::vector<std::string> splitCommas(const std::string &List) {
  std::vector<std::string> Out;
  std::string Cur;
  for (char C : List) {
    if (C == ',') {
      if (!Cur.empty())
        Out.push_back(Cur);
      Cur.clear();
    } else {
      Cur += C;
    }
  }
  if (!Cur.empty())
    Out.push_back(Cur);
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  // A closed pipe (a --record target or a --serve client that went away)
  // must surface as a diagnosed write failure and an exit code, never as
  // silent death by SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);

  std::string File, Builtin, ProcessName, LinkList;
  std::string RecordFile, ReplayFile, ServeSock;
  bool DumpKernel = false, DumpClocks = false, DumpTree = false;
  bool DumpTreeDot = false;
  bool DumpGraph = false, DumpStep = false, EmitC = false;
  bool DumpInterface = false, DumpLink = false;
  bool WithDriver = false, Stats = false, ReplayBuffered = false;
  unsigned Simulate = 0, Batch = 0, Fleet = 0, FleetThreads = 1;
  unsigned FrameInstants = TraceDefaultFrameInstants;
  unsigned MaxSessions = 4, ServeLimit = 0;
  unsigned ResumeParked = 0, IdleTimeoutMs = 0, WriteTimeoutMs = 0;
  unsigned DrainGraceMs = 0, SendBufBytes = 0;
  uint64_t BatchBudget = 0;
  uint64_t Seed = 1;
  EngineMode Mode = EngineMode::Vm;
  std::string ModeName = "vm";
  TierOptions Tier;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    if (Arg == "--builtin") {
      if (const char *V = next())
        Builtin = V;
    } else if (Arg == "--process") {
      if (const char *V = next())
        ProcessName = V;
    } else if (Arg == "--link") {
      if (const char *V = next())
        LinkList = V;
    } else if (Arg == "--dump-kernel") {
      DumpKernel = true;
    } else if (Arg == "--dump-clocks") {
      DumpClocks = true;
    } else if (Arg == "--dump-tree") {
      DumpTree = true;
    } else if (Arg == "--dump-tree-dot") {
      DumpTreeDot = true;
    } else if (Arg == "--dump-graph") {
      DumpGraph = true;
    } else if (Arg == "--dump-step") {
      DumpStep = true;
    } else if (Arg == "--dump-interface") {
      DumpInterface = true;
    } else if (Arg == "--dump-link") {
      DumpLink = true;
    } else if (Arg == "--emit-c") {
      EmitC = true;
    } else if (Arg.rfind("--emit-c=", 0) == 0) {
      std::fprintf(stderr,
                   "signalc: --emit-c no longer takes a control-structure "
                   "argument; the C emitter lowers the CompiledStep "
                   "bytecode (nested structure) directly\n");
      return 2;
    } else if (Arg == "--with-driver") {
      WithDriver = true;
    } else if (Arg == "--record") {
      if (const char *V = next())
        RecordFile = V;
    } else if (Arg == "--replay") {
      if (const char *V = next())
        ReplayFile = V;
    } else if (Arg == "--replay-buffered") {
      ReplayBuffered = true;
    } else if (Arg == "--serve") {
      if (const char *V = next())
        ServeSock = V;
    } else if (Arg == "--simulate" || Arg == "--batch" || Arg == "--fleet" ||
               Arg == "--threads" || Arg == "--seed" || Arg == "--frame" ||
               Arg == "--max-sessions" || Arg == "--serve-limit" ||
               Arg == "--resume" || Arg == "--batch-budget" ||
               Arg == "--idle-timeout" || Arg == "--write-timeout" ||
               Arg == "--drain-grace" || Arg == "--sndbuf") {
      // Checked numeric parse: a missing, malformed or out-of-range
      // operand is a diagnosed exit, never an uncaught std::stoul throw
      // and never a silently dropped flag.
      bool IsU64 = Arg == "--seed" || Arg == "--batch-budget";
      uint64_t V = 0;
      std::string Diag;
      if (!parseCliUnsigned(Arg, next(), IsU64 ? UINT64_MAX : UINT32_MAX, V,
                            Diag)) {
        std::fprintf(stderr, "signalc: %s\n", Diag.c_str());
        return 2;
      }
      if ((Arg == "--frame" || Arg == "--max-sessions") &&
          (V == 0 || (Arg == "--frame" && V > 65535))) {
        std::fprintf(stderr, "signalc: value '%llu' for %s is out of range\n",
                     static_cast<unsigned long long>(V), Arg.c_str());
        return 2;
      }
      if (Arg == "--seed")
        Seed = V;
      else if (Arg == "--batch-budget")
        BatchBudget = V;
      else if (Arg == "--simulate")
        Simulate = static_cast<unsigned>(V);
      else if (Arg == "--batch")
        Batch = static_cast<unsigned>(V);
      else if (Arg == "--fleet")
        Fleet = static_cast<unsigned>(V);
      else if (Arg == "--frame")
        FrameInstants = static_cast<unsigned>(V);
      else if (Arg == "--max-sessions")
        MaxSessions = static_cast<unsigned>(V);
      else if (Arg == "--serve-limit")
        ServeLimit = static_cast<unsigned>(V);
      else if (Arg == "--resume")
        ResumeParked = static_cast<unsigned>(V);
      else if (Arg == "--idle-timeout")
        IdleTimeoutMs = static_cast<unsigned>(V);
      else if (Arg == "--write-timeout")
        WriteTimeoutMs = static_cast<unsigned>(V);
      else if (Arg == "--drain-grace")
        DrainGraceMs = static_cast<unsigned>(V);
      else if (Arg == "--sndbuf")
        SendBufBytes = static_cast<unsigned>(V);
      else
        FleetThreads = static_cast<unsigned>(V);
    } else if (Arg == "--native" || Arg.rfind("--native=", 0) == 0) {
      std::string V;
      if (Arg == "--native") {
        const char *N = next();
        V = N ? N : "";
      } else {
        V = Arg.substr(std::string("--native=").size());
      }
      std::string Diag;
      if (!parseNativeMode(V, Tier.Mode, Diag)) {
        std::fprintf(stderr, "signalc: %s\n", Diag.c_str());
        return 2;
      }
    } else if (Arg == "--cache-dir" || Arg.rfind("--cache-dir=", 0) == 0) {
      if (Arg == "--cache-dir") {
        if (const char *V = next())
          Tier.CacheDir = V;
      } else {
        Tier.CacheDir = Arg.substr(std::string("--cache-dir=").size());
      }
    } else if (Arg == "--tier-after" || Arg.rfind("--tier-after=", 0) == 0) {
      const char *Text;
      std::string Val;
      if (Arg == "--tier-after") {
        Text = next();
      } else {
        Val = Arg.substr(std::string("--tier-after=").size());
        Text = Val.c_str();
      }
      uint64_t V = 0;
      std::string Diag;
      if (!parseCliUnsigned("--tier-after", Text, UINT32_MAX, V, Diag)) {
        std::fprintf(stderr, "signalc: %s\n", Diag.c_str());
        return 2;
      }
      Tier.TierAfter = static_cast<unsigned>(V);
    } else if (Arg == "--mode") {
      if (const char *V = next())
        ModeName = V;
      std::string Diag;
      if (!parseEngineMode(ModeName, Mode, Diag)) {
        std::fprintf(stderr, "signalc: %s\n", Diag.c_str());
        return 2;
      }
    } else if (Arg == "--stats") {
      Stats = true;
    } else if (Arg == "--help" || Arg == "-h") {
      printUsage();
      return 0;
    } else if (!Arg.empty() && Arg[0] != '-') {
      File = Arg;
    } else {
      // The --process/--mode typo idiom, extended to the flag table
      // itself: a near-miss names its neighbour instead of sending the
      // user to --help.
      static const std::vector<std::string> KnownFlags = {
          "--builtin", "--process", "--link", "--dump-kernel",
          "--dump-clocks", "--dump-tree", "--dump-tree-dot", "--dump-graph",
          "--dump-step", "--dump-interface", "--dump-link", "--emit-c",
          "--with-driver", "--simulate", "--seed", "--batch", "--fleet",
          "--threads", "--mode", "--stats", "--record", "--frame",
          "--replay", "--replay-buffered", "--serve", "--max-sessions",
          "--serve-limit", "--resume", "--batch-budget", "--idle-timeout",
          "--write-timeout", "--drain-grace", "--sndbuf", "--native",
          "--cache-dir", "--tier-after", "--help"};
      std::string Suggest = suggestNearestFlag(Arg, KnownFlags);
      std::string Hint =
          Suggest.empty() ? "" : "; did you mean '" + Suggest + "'?";
      std::fprintf(stderr, "signalc: unknown option '%s'%s\n", Arg.c_str(),
                   Hint.c_str());
      printUsage();
      return 2;
    }
  }

  std::string Source, BufferName;
  if (!Builtin.empty()) {
    if (Builtin == "FIG5_ALARM") {
      Source = alarmFigure5Source();
    } else {
      for (const Figure13Program &P : figure13Suite())
        if (P.Name == Builtin)
          Source = P.Source;
    }
    if (Source.empty()) {
      std::fprintf(stderr,
                   "signalc: unknown builtin '%s' (try FIG5_ALARM, "
                   "STOPWATCH, WATCH, ALARM, CHRONO, SUPERVISOR, "
                   "PACE_MAKER, ROBOT)\n",
                   Builtin.c_str());
      return 2;
    }
    BufferName = "<builtin:" + Builtin + ">";
  } else if (!File.empty()) {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "signalc: cannot open '%s'\n", File.c_str());
      return 2;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    Source = SS.str();
    BufferName = File;
  } else {
    printUsage();
    return 2;
  }

  //===--------------------------------------------------------------------===//
  // Link mode: separate compilation of N processes, then interface link.
  //===--------------------------------------------------------------------===//
  if (!LinkList.empty()) {
    // Flags that only make sense for a single compilation are not
    // silently swallowed.
    if (DumpKernel || DumpClocks || DumpTree || DumpTreeDot || DumpGraph ||
        DumpStep || !ProcessName.empty())
      std::fprintf(stderr,
                   "signalc: warning: --process and the per-stage --dump-* "
                   "flags are ignored in --link mode (use --dump-interface "
                   "/ --dump-link)\n");
    if (Mode != EngineMode::Vm)
      std::fprintf(stderr,
                   "signalc: warning: --mode is ignored in --link mode; "
                   "the linked executor always runs the slot-VM\n");
    if (Fleet)
      std::fprintf(stderr,
                   "signalc: warning: --fleet is ignored in --link mode\n");
    if (Tier.Mode != NativeMode::Off)
      std::fprintf(stderr,
                   "signalc: warning: --native is ignored in --link mode\n");
    if (!RecordFile.empty() || !ReplayFile.empty() || !ServeSock.empty())
      std::fprintf(stderr,
                   "signalc: warning: --record/--replay/--serve are ignored "
                   "in --link mode\n");
    std::vector<std::string> Names = splitCommas(LinkList);
    LinkResult R = compileAndLink(BufferName, Source, Names);
    if (!R.Sys) {
      std::fprintf(stderr, "signalc: link failed: %s\n", R.Error.c_str());
      return 1;
    }
    LinkedSystem &Sys = *R.Sys;
    std::fprintf(stderr,
                 "linked %zu process(es), %zu channel(s), %zu root(s); "
                 "compile %.2f ms, link %.2f ms\n",
                 Sys.Units.size(), Sys.Channels.size(), Sys.Roots.size(),
                 R.CompileMs, R.LinkMs);

    if (DumpInterface)
      for (const LinkUnit &U : Sys.Units)
        std::fputs(U.Iface.dump().c_str(), stdout);
    if (DumpLink) {
      std::fputs(Sys.dump().c_str(), stdout);
      std::fputs("fused schedule:\n", stdout);
      std::fputs(Sys.Fused.dump().c_str(), stdout);
    }
    if (EmitC) {
      CEmitOptions EO;
      EO.WithDriver = WithDriver;
      std::fputs(emitLinkedC(Sys, "linked_sys", EO).c_str(), stdout);
    }
    if (Simulate) {
      RandomEnvironment Env(Seed);
      LinkedExecutor Exec(Sys);
      bool Ran = Batch > 1 ? Exec.runBatched(Env, Simulate, Batch)
                           : Exec.run(Env, Simulate);
      if (!Ran) {
        std::fprintf(stderr, "signalc: linked simulation stopped: %s\n",
                     Exec.error().c_str());
        return 1;
      }
      std::printf("linked simulation (%u instants, seed %llu):\n%s",
                  Simulate, static_cast<unsigned long long>(Seed),
                  formatEvents(Env.outputs()).c_str());
      if (Stats)
        printStats("vm", Simulate, Exec.executed(), Exec.guardTests());
    }
    return 0;
  }

  CompileOptions Options;
  Options.ProcessName = ProcessName;
  auto C = compileSource(BufferName, std::move(Source), Options);

  std::string Diags = C->Diags.render();
  if (!Diags.empty())
    std::fputs(Diags.c_str(), stderr);
  if (!C->Ok) {
    std::fprintf(stderr, "signalc: compilation failed during %s\n",
                 C->failedStageName());
    return 1;
  }

  const StringInterner &Names = C->names();
  std::string ProcName(Names.spelling(C->Decl->Name));
  // Status goes to stderr so stdout carries only the requested artifacts
  // (in particular, `--emit-c > file.c` must produce compilable C).
  std::fprintf(stderr,
               "process %s: %u signals, %u clock variables, %u clock "
               "classes alive, %u free clock(s)\n",
               ProcName.c_str(), C->Kernel->numSignals(),
               C->Clocks.numVars(),
               static_cast<unsigned>(C->Forest->dfsOrder().size()),
               static_cast<unsigned>(C->Forest->freeClocks().size()));

  if (DumpKernel)
    std::printf("kernel:\n%s", C->Kernel->dump(Names).c_str());
  if (DumpClocks)
    std::printf("clock system:\n%s",
                C->Clocks.dump(*C->Kernel, Names).c_str());
  if (DumpTree)
    std::printf("clock forest:\n%s",
                C->Forest->dump(C->Clocks, *C->Kernel, Names).c_str());
  if (DumpTreeDot)
    std::fputs(C->Forest->toDot(C->Clocks, *C->Kernel, Names).c_str(),
               stdout);
  if (DumpGraph)
    std::printf("schedule:\n%s",
                C->Graph.dump(*C->Kernel, Names, *C->Forest,
                              C->Clocks)
                    .c_str());
  if (DumpStep)
    std::printf("step bytecode:\n%s", C->Compiled.dump().c_str());
  if (DumpInterface)
    std::fputs(extractInterface(*C).dump().c_str(), stdout);

  if (EmitC) {
    CEmitOptions EO;
    EO.WithDriver = WithDriver;
    std::string CSource = emitC(C->Compiled, ProcName, EO);
    std::fputs(CSource.c_str(), stdout);
  }

  if (!ServeSock.empty()) {
    // Serving front end: each client connection is a trace-stream
    // session on its own fleet lane.
    ServeOptions SO;
    SO.SocketPath = ServeSock;
    SO.MaxSessions = MaxSessions;
    if (Batch > 0)
      SO.BatchInstants = Batch;
    SO.SessionLimit = ServeLimit;
    SO.MaxParkedSessions = ResumeParked;
    SO.BatchBudgetInstants = BatchBudget;
    SO.IdleTimeoutMs = IdleTimeoutMs;
    SO.WriteTimeoutMs = WriteTimeoutMs;
    SO.DrainGraceMs = DrainGraceMs;
    SO.SendBufBytes = SendBufBytes;
    SO.Tier = Tier;
    return runTraceServer(C->Compiled, ProcName, SO);
  }

  if (!ReplayFile.empty()) {
    // Replay: the recorded trace is the environment. Outputs the
    // re-execution produces are verified against the recorded ones.
    if (Tier.Mode != NativeMode::Off)
      std::fprintf(stderr, "signalc: warning: --native is ignored for "
                           "--replay (verification runs the vm)\n");
    std::unique_ptr<TraceSource> Src;
    std::string OpenErr;
    if (ReplayBuffered) {
      int Fd = FdTraceSource::openFile(ReplayFile, OpenErr);
      if (Fd < 0) {
        std::fprintf(stderr, "signalc: %s\n", OpenErr.c_str());
        return 2;
      }
      Src = std::make_unique<FdTraceSource>(Fd, /*OwnsFd=*/true);
    } else {
      auto M = std::make_unique<MmapTraceSource>();
      if (!M->open(ReplayFile, OpenErr)) {
        std::fprintf(stderr, "signalc: %s\n", OpenErr.c_str());
        return 2;
      }
      Src = std::move(M);
    }
    TraceReader Reader(*Src);
    if (!Reader.readHeader() || !Reader.matchesStep(C->Compiled)) {
      std::fprintf(stderr, "signalc: %s: %s\n", ReplayFile.c_str(),
                   Reader.error().str().c_str());
      return 2;
    }
    TraceEnvironment Env(Reader);
    Env.setVerifyOutputs(true);
    VmExecutor Exec(C->Compiled);
    unsigned Window = Batch > 1 ? Batch : Reader.spec().FrameInstants;
    unsigned At = 0;
    for (;;) {
      unsigned N = Env.prepare(At, Window);
      if (N == 0)
        break;
      Exec.stepN(Env, At, N);
      At += N;
    }
    if (Env.failed()) {
      std::fprintf(stderr, "signalc: %s: %s\n", ReplayFile.c_str(),
                   Env.error().str().c_str());
      return 2;
    }
    if (!Env.divergence().empty()) {
      std::fprintf(stderr, "signalc: replay diverged from the trace: %s\n",
                   Env.divergence().c_str());
      return 1;
    }
    std::printf("replay (%u instants, %s): %llu output(s) match the trace\n",
                At, ReplayBuffered ? "buffered" : "mmap",
                static_cast<unsigned long long>(Env.outputCount()));
    if (Stats && At)
      printStats("vm", At, Exec.executed(), Exec.guardTests());
    return 0;
  }

  if (Simulate && !RecordFile.empty() && !Fleet) {
    // Record: a normal random simulation whose exchanged windows are
    // mirrored into a trace file. Always the batched VM — recording
    // frames flush as bulk windows complete.
    if (Mode != EngineMode::Vm)
      std::fprintf(stderr, "signalc: warning: --record always runs the "
                           "batched vm engine; --mode ignored\n");
    if (Tier.Mode != NativeMode::Off)
      std::fprintf(stderr, "signalc: warning: --native is ignored while "
                           "recording (the recorder runs the vm)\n");
    std::string OpenErr;
    int Fd = FdSink::openFile(RecordFile, OpenErr);
    if (Fd < 0) {
      std::fprintf(stderr, "signalc: cannot open '%s': %s\n",
                   RecordFile.c_str(), OpenErr.c_str());
      return 2;
    }
    FdSink Sink(Fd, /*OwnsFd=*/true);
    TraceWriter Writer(Sink,
                       TraceSpec::fromStep(C->Compiled, ProcName,
                                           FrameInstants));
    RandomEnvironment Rnd(Seed);
    RecordingEnvironment Env(Rnd, Writer);
    VmExecutor Exec(C->Compiled);
    if (Batch > 1)
      Exec.runBatched(Env, Simulate, Batch);
    else
      Exec.run(Env, Simulate);
    if (!Writer.finish(Simulate)) {
      // The sink latched the first failure with its byte position.
      std::fprintf(stderr, "signalc: write failed on '%s' %s\n",
                   RecordFile.c_str(), Sink.errorDetail().c_str());
      return 2;
    }
    std::fprintf(stderr, "recorded %u instant(s) to %s\n", Simulate,
                 RecordFile.c_str());
    std::printf("simulation (%u instants, seed %llu):\n%s", Simulate,
                static_cast<unsigned long long>(Seed),
                formatEvents(Rnd.outputs()).c_str());
    if (Stats)
      printStats("vm", Simulate, Exec.executed(), Exec.guardTests());
    return 0;
  }
  if (!RecordFile.empty())
    std::fprintf(stderr, "signalc: warning: --record needs --simulate N "
                         "(and no --fleet); nothing recorded\n");

  if (Simulate && Fleet) {
    // Fleet simulation: N instances of the compiled process, each with
    // its own deterministic environment (seed S + j), swept in SoA
    // lane blocks and sharded over --threads workers. Traces print per
    // instance in instance order; counters are fleet-wide sums.
    if (Mode != EngineMode::Vm)
      std::fprintf(stderr, "signalc: warning: --fleet always runs the "
                           "slot-VM fleet engine; --mode ignored\n");
    std::vector<std::unique_ptr<RandomEnvironment>> Owned;
    std::vector<Environment *> Envs;
    for (unsigned J = 0; J < Fleet; ++J) {
      Owned.push_back(std::make_unique<RandomEnvironment>(Seed + J));
      Envs.push_back(Owned.back().get());
    }
    FleetExecutor::Config Cfg;
    Cfg.Threads = FleetThreads;
    FleetExecutor Exec(C->Compiled, Fleet, Cfg);
    if (Tier.Mode == NativeMode::Off) {
      if (Batch > 1)
        Exec.runBatched(Envs, Simulate, Batch);
      else
        Exec.run(Envs, Simulate);
    } else {
      // Tiered fleet: poll the controller at window boundaries and swap
      // the whole sweep onto the native _step_fleet entry when ready.
      TierController TC(C->Compiled, Tier);
      if (!TC.start()) {
        std::fprintf(stderr, "signalc: --native force failed: %s\n",
                     TC.error().c_str());
        return 1;
      }
      unsigned Window = Batch > 1 ? Batch : 8;
      for (unsigned At = 0; At < Simulate;) {
        if (!Exec.nativeActive() && TC.shouldPromote(At))
          Exec.setNative(TC.module());
        unsigned N = std::min(Window, Simulate - At);
        Exec.stepN(Envs, At, N);
        if (Exec.nativeActive())
          TC.noteNativeInstants(N);
        else
          TC.noteVmInstants(N);
        At += N;
      }
      if (Stats)
        printTierStats(TC);
    }
    std::printf("fleet simulation (%u instances, %u instants, seed %llu, "
                "%u thread(s)):\n",
                Fleet, Simulate, static_cast<unsigned long long>(Seed),
                Exec.threads());
    for (unsigned J = 0; J < Fleet; ++J)
      std::printf("instance %u:\n%s", J,
                  formatEvents(Owned[J]->outputs()).c_str());
    if (Stats)
      printStats("fleet", Simulate * Fleet, Exec.executed(),
                 Exec.guardTests());
    return 0;
  }

  if (Simulate) {
    if (Batch > 1 && Mode != EngineMode::Vm)
      std::fprintf(stderr, "signalc: warning: --batch needs the vm engine; "
                           "running unbatched\n");
    if (Tier.Mode != NativeMode::Off && Mode != EngineMode::Vm)
      std::fprintf(stderr, "signalc: warning: --native needs the vm engine; "
                           "running interpreted\n");
    RandomEnvironment Env(Seed);
    uint64_t Executed = 0, GuardTests = 0;
    if (Mode == EngineMode::Vm && Tier.Mode != NativeMode::Off) {
      // Tiered scalar run: the VM carries the session until the cache
      // hit / background compile is ready, then the session hot-swaps
      // onto the native step at a batch boundary (a pure state copy —
      // the emitted C maintains the counters VM-exactly).
      TierController TC(C->Compiled, Tier);
      if (!TC.start()) {
        std::fprintf(stderr, "signalc: --native force failed: %s\n",
                     TC.error().c_str());
        return 1;
      }
      VmExecutor Vm(C->Compiled);
      std::unique_ptr<NativeExecutor> NX;
      unsigned Window = Batch > 1 ? Batch : 8;
      for (unsigned At = 0; At < Simulate;) {
        if (!NX && TC.shouldPromote(At)) {
          NX = std::make_unique<NativeExecutor>(C->Compiled, *TC.module());
          NX->importState(Vm.stateSlots(), Vm.guardTests(), Vm.executed());
        }
        unsigned N = std::min(Window, Simulate - At);
        if (NX) {
          NX->stepN(Env, At, N);
          TC.noteNativeInstants(N);
        } else {
          Vm.stepN(Env, At, N);
          TC.noteVmInstants(N);
        }
        At += N;
      }
      Executed = NX ? NX->executed() : Vm.executed();
      GuardTests = NX ? NX->guardTests() : Vm.guardTests();
      if (Stats)
        printTierStats(TC);
    } else if (Mode == EngineMode::Vm) {
      VmExecutor Exec(C->Compiled);
      if (Batch > 1)
        Exec.runBatched(Env, Simulate, Batch);
      else
        Exec.run(Env, Simulate);
      Executed = Exec.executed();
      GuardTests = Exec.guardTests();
    } else {
      StepExecutor Exec(*C->Kernel, C->Step);
      Exec.run(Env, Simulate,
               Mode == EngineMode::Flat ? ExecMode::Flat : ExecMode::Nested);
      Executed = Exec.executed();
      GuardTests = Exec.guardTests();
    }
    std::printf("simulation (%u instants, seed %llu):\n%s", Simulate,
                static_cast<unsigned long long>(Seed),
                formatEvents(Env.outputs()).c_str());
    if (Stats)
      printStats(ModeName, Simulate, Executed, GuardTests);
  }
  return 0;
}
