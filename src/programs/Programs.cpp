//===--- Programs.cpp -----------------------------------------------------===//

#include "programs/Programs.h"

using namespace sigc;

std::string sigc::alarmFigure5Source() {
  return R"(% The paper's Figure 5: PROCESS_ALARM.
% Sensors are sampled only when their value is necessary.
process ALARM =
  ( ? boolean BRAKE, STOP_OK, LIMIT_REACHED;
    ! boolean ALARM; )
  (| BRAKING_STATE := BRAKING_NEXT_STATE $ 1 init false   % memorize state
   | BRAKING_NEXT_STATE :=
       (true when BRAKE) default                           % enter braking
       (false when STOP_OK) default                        % leave braking
       BRAKING_STATE                                       % stay
   | synchro {when BRAKING_STATE, STOP_OK, LIMIT_REACHED}  % braking samples
   | synchro {when (not BRAKING_STATE), BRAKE}             % idle samples
   | ALARM := LIMIT_REACHED and (not STOP_OK)
  |)
  where
    boolean BRAKING_STATE, BRAKING_NEXT_STATE;
  end;
)";
}

namespace {

/// Accumulates declarations and equations of one generated process.
class SourceBuilder {
public:
  void input(const std::string &Type, const std::string &Name) {
    Inputs += "    " + Type + " " + Name + ";\n";
  }
  void output(const std::string &Type, const std::string &Name) {
    Outputs += "    " + Type + " " + Name + ";\n";
  }
  void local(const std::string &Type, const std::string &Name) {
    Locals += "    " + Type + " " + Name + ";\n";
  }
  void eq(const std::string &Text) {
    Body += Body.empty() ? "   " : "   | ";
    Body += Text + "\n";
  }

  std::string finish(const std::string &Name) const {
    std::string Out = "process " + Name + " =\n  ( ";
    if (!Inputs.empty())
      Out += "?\n" + Inputs;
    if (!Outputs.empty())
      Out += "  !\n" + Outputs;
    Out += "  )\n  (|\n" + Body + "  |)\n";
    if (!Locals.empty())
      Out += "  where\n" + Locals + "  end";
    Out += ";\n";
    return Out;
  }

private:
  std::string Inputs, Outputs, Locals, Body;
};

std::string num(unsigned I) { return std::to_string(I); }

/// Divider chain: stage i halves the rate of stage i-1 and accumulates.
/// Feeds CUR (the running signal name) forward; returns the final name.
std::string emitDividerChain(SourceBuilder &B, const std::string &Prefix,
                             std::string Cur, unsigned Stages) {
  for (unsigned I = 1; I <= Stages; ++I) {
    std::string C = Prefix + "C" + num(I);
    std::string T = Prefix + "T" + num(I);
    std::string Z = Prefix + "Z" + num(I);
    std::string N = Prefix + "S" + num(I);
    B.local("boolean", C);
    B.local("integer", T);
    B.local("integer", Z);
    B.local("integer", N);
    B.eq(C + " := (" + Cur + " mod 2) = 0");
    B.eq(T + " := " + Cur + " when " + C);
    B.eq(Z + " := " + N + " $ 1 init 0");
    B.eq(N + " := " + T + " + " + Z);
    Cur = N;
  }
  return Cur;
}

/// One Figure-5 alarm automaton over dedicated sensors; returns the alarm
/// output signal name.
std::string emitAlarmInstance(SourceBuilder &B, unsigned Index) {
  std::string Sfx = num(Index);
  std::string Brake = "BRAKE" + Sfx;
  std::string StopOk = "STOP_OK" + Sfx;
  std::string Limit = "LIMIT" + Sfx;
  std::string State = "STATE" + Sfx;
  std::string Next = "NEXT" + Sfx;
  std::string Alarm = "AL" + Sfx;
  B.input("boolean", Brake);
  B.input("boolean", StopOk);
  B.input("boolean", Limit);
  B.local("boolean", State);
  B.local("boolean", Next);
  B.local("boolean", Alarm);
  B.eq(State + " := " + Next + " $ 1 init false");
  B.eq(Next + " := (true when " + Brake + ") default (false when " + StopOk +
       ") default " + State);
  B.eq("synchro {when " + State + ", " + StopOk + ", " + Limit + "}");
  B.eq("synchro {when (not " + State + "), " + Brake + "}");
  B.eq(Alarm + " := " + Limit + " and (not " + StopOk + ")");
  return Alarm;
}

/// Sampling grid: two condition families over BASE's clock, crossed with
/// "when". Returns the name of the merged result.
std::string emitGrid(SourceBuilder &B, const std::string &Prefix,
                     const std::string &Base, unsigned NA, unsigned NB) {
  for (unsigned I = 1; I <= NA; ++I) {
    std::string P = Prefix + "P" + num(I);
    std::string S = Prefix + "A" + num(I);
    B.local("boolean", P);
    B.local("integer", S);
    B.eq(P + " := (" + Base + " mod " + num(I + 1) + ") = 0");
    B.eq(S + " := " + Base + " when " + P);
  }
  for (unsigned J = 1; J <= NB; ++J) {
    std::string Q = Prefix + "Q" + num(J);
    B.local("boolean", Q);
    B.eq(Q + " := (" + Base + " mod " + num(J + 2) + ") = 1");
  }
  // Cross every sampled stream with every Q condition and merge.
  std::string Merged;
  for (unsigned I = 1; I <= NA; ++I) {
    for (unsigned J = 1; J <= NB; ++J) {
      std::string M = Prefix + "M" + num(I) + "_" + num(J);
      B.local("integer", M);
      B.eq(M + " := " + Prefix + "A" + num(I) + " when " + Prefix + "Q" +
           num(J));
      if (Merged.empty()) {
        Merged = M;
        continue;
      }
      std::string G = Prefix + "G" + num(I) + "_" + num(J);
      B.local("integer", G);
      B.eq(G + " := " + Merged + " default " + M);
      Merged = G;
    }
  }
  return Merged;
}

} // namespace

std::string sigc::generateProgram(const std::string &Name,
                                  const ProgramShape &Shape) {
  SourceBuilder B;
  B.input("integer", "IN");
  B.output("integer", "OUT");

  std::string Last = "IN";
  if (Shape.DividerStages)
    Last = emitDividerChain(B, "D", "IN", Shape.DividerStages);

  std::string GridOut;
  if (Shape.GridA && Shape.GridB)
    GridOut = emitGrid(B, "G", "IN", Shape.GridA, Shape.GridB);

  std::string AlarmOut;
  for (unsigned I = 1; I <= Shape.AlarmInstances; ++I) {
    std::string A = emitAlarmInstance(B, I);
    if (AlarmOut.empty()) {
      AlarmOut = A;
      continue;
    }
    // Merge alarm streams; each automaton runs on its own free clock.
    std::string M = "ALM" + num(I);
    B.local("boolean", M);
    B.eq(M + " := " + AlarmOut + " default " + A);
    AlarmOut = M;
  }

  // Tie everything into OUT so nothing is dead.
  std::string Expr = Last;
  if (!GridOut.empty())
    Expr = Expr + " default " + GridOut;
  if (!AlarmOut.empty()) {
    B.local("integer", "ALI");
    B.eq("ALI := (1 when " + AlarmOut + ") default (0 when (not " + AlarmOut +
         "))");
    Expr = Expr + " default ALI";
  }
  B.eq("OUT := " + Expr);
  return B.finish(Name);
}

std::vector<Figure13Program> sigc::figure13Suite() {
  // Shapes tuned so the clock-variable count lands near the paper's
  // figures (see tests/programs_test.cpp for the enforced tolerances).
  std::vector<Figure13Program> Suite;

  auto add = [&](const std::string &Name, unsigned PaperVars,
                 uint64_t PaperNodes, double PaperSecs,
                 const std::string &PaperChar, const std::string &PaperHyb,
                 ProgramShape Shape) {
    Figure13Program P;
    P.Name = Name;
    P.PaperVariables = PaperVars;
    P.PaperTreeNodes = PaperNodes;
    P.PaperTreeSeconds = PaperSecs;
    P.PaperCharFunc = PaperChar;
    P.PaperHybrid = PaperHyb;
    P.Shape = Shape;
    P.Source = generateProgram(Name, Shape);
    Suite.push_back(std::move(P));
  };

  // Name, paper vars, paper T&BDD nodes/time, paper char-func, paper
  // hybrid, our generator shape.
  add("STOPWATCH", 1318, 61893, 27.07, "unable-cpu", "unable-cpu",
      {/*DividerStages=*/132, /*AlarmInstances=*/8, /*GridA=*/10,
       /*GridB=*/10});
  add("WATCH", 785, 34753, 14.67, "unable-cpu", "unable-cpu",
      {/*DividerStages=*/73, /*AlarmInstances=*/5, /*GridA=*/8,
       /*GridB=*/8});
  add("ALARM", 465, 3428, 2.19, "unable-mem", "unable-cpu",
      {/*DividerStages=*/0, /*AlarmInstances=*/12, /*GridA=*/5,
       /*GridB=*/5});
  add("CHRONO", 282, 1548, 0.92, "unable-mem", "422975 nodes / 409.09s",
      {/*DividerStages=*/35, /*AlarmInstances=*/1, /*GridA=*/3,
       /*GridB=*/3});
  add("SUPERVISOR", 202, 425, 0.45, "unable-cpu", "226472 nodes / 146.32s",
      {/*DividerStages=*/14, /*AlarmInstances=*/3, /*GridA=*/2,
       /*GridB=*/2});
  add("PACE_MAKER", 96, 50, 0.10, "53610 nodes / 160.50s", "582 / 0.36s",
      {/*DividerStages=*/16, /*AlarmInstances=*/0, /*GridA=*/0,
       /*GridB=*/0});
  add("ROBOT", 99, 36, 0.27, "unable-cpu", "415 / 0.31s",
      {/*DividerStages=*/11, /*AlarmInstances=*/1, /*GridA=*/0,
       /*GridB=*/0});
  return Suite;
}
