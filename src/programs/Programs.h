//===--- Programs.h - Figure-13 benchmark program suite ---------*- C++-*-===//
///
/// \file
/// The seven SIGNAL programs of the paper's Figure 13, rebuilt as
/// parameterized generators (the IRISA originals are not available; see
/// DESIGN.md "Substitutions"). ALARM embeds the paper's Figure-5 process
/// verbatim; the others are built from three realistic reactive motifs:
///
///   * divider chains — cascaded "sample every other occurrence" counters;
///     they produce the deep partition hierarchies the tree representation
///     is good at,
///   * alarm instances — the Figure-5 two-state mode automaton,
///   * sampling grids — two condition families over one clock crossed with
///     "when", producing the wide clock-intersection lattices that make
///     monolithic characteristic functions explode.
///
/// Generator sizes are tuned so each program's clock-variable count is
/// within a few percent of the paper's "number of variables" column.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_PROGRAMS_PROGRAMS_H
#define SIGNALC_PROGRAMS_PROGRAMS_H

#include <cstdint>
#include <string>
#include <vector>

namespace sigc {

/// The paper's Figure-5 PROCESS_ALARM, in this compiler's syntax.
std::string alarmFigure5Source();

/// Knobs of the generic generator.
struct ProgramShape {
  unsigned DividerStages = 0; ///< Length of the divider chain.
  unsigned AlarmInstances = 0;///< Figure-5 automata, merged with default.
  unsigned GridA = 0;         ///< Sampling-grid first condition family.
  unsigned GridB = 0;         ///< Sampling-grid second condition family.
};

/// Generates a complete process source with the given shape.
std::string generateProgram(const std::string &Name,
                            const ProgramShape &Shape);

/// One row of the Figure-13 reproduction, with the paper's reported
/// numbers attached for EXPERIMENTS.md.
struct Figure13Program {
  std::string Name;
  unsigned PaperVariables; ///< Paper column "number of variables".
  uint64_t PaperTreeNodes; ///< Paper column "T&BDD nodes".
  double PaperTreeSeconds; ///< Paper column "T&BDD time".
  std::string PaperCharFunc; ///< e.g. "unable-cpu" or "53610 / 160.50s".
  std::string PaperHybrid;   ///< e.g. "unable-cpu" or "582 / 0.36s".
  ProgramShape Shape;
  std::string Source;
};

/// The seven programs, largest first (paper order).
std::vector<Figure13Program> figure13Suite();

} // namespace sigc

#endif // SIGNALC_PROGRAMS_PROGRAMS_H
