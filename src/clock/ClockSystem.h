//===--- ClockSystem.h - Systems of boolean clock equations -----*- C++-*-===//
///
/// \file
/// The system of boolean equations underlying a SIGNAL process (Table 1 of
/// the paper). Clock variables come in three kinds:
///
///   SignalClock  x̂      — the clock of signal X,
///   PosLiteral   [C]    — the instants where boolean C is present and true,
///   NegLiteral   [¬C]   — the instants where boolean C is present and false.
///
/// The system contains:
///   * equalities  k = k'                       (Func, Delay, synchro, ...)
///   * equations   k = k1 <op> k2 with <op> in {∧, ∨, \}   (when, default)
///   * implicit partition constraints for every boolean signal C:
///       [C] ∨ [¬C] = ĉ   and   [C] ∧ [¬C] = 0̂.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_CLOCK_CLOCKSYSTEM_H
#define SIGNALC_CLOCK_CLOCKSYSTEM_H

#include "sema/Kernel.h"
#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace sigc {

/// Index of a clock variable within a ClockSystem.
using ClockVarId = uint32_t;
constexpr ClockVarId InvalidClockVar = 0xFFFFFFFFu;

/// What a clock variable stands for.
enum class ClockVarKind {
  SignalClock, ///< x̂ of some signal X.
  PosLiteral,  ///< [C] of some boolean signal C.
  NegLiteral,  ///< [¬C] of some boolean signal C.
};

/// Descriptor of one clock variable.
struct ClockVarInfo {
  ClockVarKind Kind = ClockVarKind::SignalClock;
  SignalId Signal = InvalidSignal; ///< The signal this variable belongs to.
};

/// The set-theoretic clock operators of the paper (Section 2.1 notation).
enum class ClockOp {
  Inter, ///< ∧ (set intersection)
  Union, ///< ∨ (set union)
  Diff,  ///< \ (set difference)
};

/// \returns "^*", "^+", "^-" style ASCII spelling of \p Op.
const char *clockOpName(ClockOp Op);

/// One oriented-able equation k = a <op> b.
struct ClockEquation {
  ClockVarId Lhs = InvalidClockVar;
  ClockOp Op = ClockOp::Inter;
  ClockVarId A = InvalidClockVar;
  ClockVarId B = InvalidClockVar;
  SourceLoc Loc;
};

/// One equality k = k'.
struct ClockEquality {
  ClockVarId A = InvalidClockVar;
  ClockVarId B = InvalidClockVar;
  SourceLoc Loc;
};

/// The boolean equation system of one kernel program.
class ClockSystem {
public:
  /// Adds the clock variable of signal \p S.
  ClockVarId addSignalClock(SignalId S);
  /// Adds the pair of condition literals of boolean signal \p S.
  void addLiterals(SignalId S);

  ClockVarId signalClock(SignalId S) const { return SignalClockVar[S]; }
  /// \returns the [C] variable of \p S, or InvalidClockVar.
  ClockVarId posLiteral(SignalId S) const {
    return S < PosLitVar.size() ? PosLitVar[S] : InvalidClockVar;
  }
  /// \returns the [¬C] variable of \p S, or InvalidClockVar.
  ClockVarId negLiteral(SignalId S) const {
    return S < NegLitVar.size() ? NegLitVar[S] : InvalidClockVar;
  }

  void addEquality(ClockVarId A, ClockVarId B, SourceLoc Loc) {
    Equalities.push_back({A, B, Loc});
  }
  void addEquation(ClockVarId Lhs, ClockOp Op, ClockVarId A, ClockVarId B,
                   SourceLoc Loc) {
    Equations.push_back({Lhs, Op, A, B, Loc});
  }

  const ClockVarInfo &varInfo(ClockVarId V) const { return Vars[V]; }
  unsigned numVars() const { return static_cast<unsigned>(Vars.size()); }
  const std::vector<ClockEquation> &equations() const { return Equations; }
  const std::vector<ClockEquality> &equalities() const { return Equalities; }

  /// Signals whose literals exist (i.e. the boolean conditions).
  const std::vector<SignalId> &conditions() const { return Conditions; }

  /// Human-readable name of a clock variable: "^X", "[C]" or "[~C]".
  std::string varName(ClockVarId V, const KernelProgram &Prog,
                      const StringInterner &Names) const;

  /// Renders the whole system (for tests and -dump-clocks).
  std::string dump(const KernelProgram &Prog,
                   const StringInterner &Names) const;

private:
  std::vector<ClockVarInfo> Vars;
  std::vector<ClockVarId> SignalClockVar;
  std::vector<ClockVarId> PosLitVar;
  std::vector<ClockVarId> NegLitVar;
  std::vector<SignalId> Conditions;
  std::vector<ClockEquation> Equations;
  std::vector<ClockEquality> Equalities;
};

/// Builds the clock system of \p Prog following Table 1:
///   Y := f(X1..Xn)   ==>  ŷ = x̂1 = ... = x̂n
///   Y := X $ 1       ==>  ŷ = x̂
///   Y := A when C    ==>  ŷ = â ∧ [C]   (ŷ = [C] when A is a constant)
///   Y := A default B ==>  ŷ = â ∨ b̂
/// plus one equality per clock constraint, plus literals for every boolean
/// signal.
ClockSystem extractClockSystem(const KernelProgram &Prog);

} // namespace sigc

#endif // SIGNALC_CLOCK_CLOCKSYSTEM_H
