//===--- UnionFind.h - Disjoint sets for clock equalities -------*- C++-*-===//
///
/// \file
/// Union-find with path compression and union by rank, used to normalize
/// the clock-equality equations ("choose one variable which will replace
/// the others when they are referenced", Section 3.3 of the paper).
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_CLOCK_UNIONFIND_H
#define SIGNALC_CLOCK_UNIONFIND_H

#include <cstdint>
#include <vector>

namespace sigc {

/// Disjoint-set structure over dense uint32_t ids.
class UnionFind {
public:
  explicit UnionFind(uint32_t Size = 0) { reset(Size); }

  void reset(uint32_t Size);

  /// Grows the universe to at least \p Size elements.
  void ensure(uint32_t Size);

  /// \returns the canonical representative of \p X.
  uint32_t find(uint32_t X);

  /// Merges the classes of \p A and \p B.
  /// \returns the representative of the merged class.
  uint32_t unite(uint32_t A, uint32_t B);

  bool same(uint32_t A, uint32_t B) { return find(A) == find(B); }

  uint32_t size() const { return static_cast<uint32_t>(Parent.size()); }

  /// \returns all class representatives, ascending.
  std::vector<uint32_t> representatives();

private:
  std::vector<uint32_t> Parent;
  std::vector<uint8_t> Rank;
};

} // namespace sigc

#endif // SIGNALC_CLOCK_UNIONFIND_H
