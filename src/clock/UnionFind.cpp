//===--- UnionFind.cpp ----------------------------------------------------===//

#include "clock/UnionFind.h"

#include <cassert>
#include <numeric>

using namespace sigc;

void UnionFind::reset(uint32_t Size) {
  Parent.resize(Size);
  std::iota(Parent.begin(), Parent.end(), 0u);
  Rank.assign(Size, 0);
}

void UnionFind::ensure(uint32_t Size) {
  uint32_t Old = size();
  if (Size <= Old)
    return;
  Parent.resize(Size);
  std::iota(Parent.begin() + Old, Parent.end(), Old);
  Rank.resize(Size, 0);
}

uint32_t UnionFind::find(uint32_t X) {
  assert(X < Parent.size() && "find() out of range");
  uint32_t Root = X;
  while (Parent[Root] != Root)
    Root = Parent[Root];
  // Path compression.
  while (Parent[X] != Root) {
    uint32_t Next = Parent[X];
    Parent[X] = Root;
    X = Next;
  }
  return Root;
}

uint32_t UnionFind::unite(uint32_t A, uint32_t B) {
  uint32_t RA = find(A), RB = find(B);
  if (RA == RB)
    return RA;
  if (Rank[RA] < Rank[RB])
    std::swap(RA, RB);
  Parent[RB] = RA;
  if (Rank[RA] == Rank[RB])
    ++Rank[RA];
  return RA;
}

std::vector<uint32_t> UnionFind::representatives() {
  std::vector<uint32_t> Result;
  for (uint32_t I = 0; I < size(); ++I)
    if (find(I) == I)
      Result.push_back(I);
  return Result;
}
