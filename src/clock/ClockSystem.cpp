//===--- ClockSystem.cpp --------------------------------------------------===//

#include "clock/ClockSystem.h"

#include <cassert>

using namespace sigc;

const char *sigc::clockOpName(ClockOp Op) {
  switch (Op) {
  case ClockOp::Inter:
    return "^*";
  case ClockOp::Union:
    return "^+";
  case ClockOp::Diff:
    return "^-";
  }
  return "<bad>";
}

ClockVarId ClockSystem::addSignalClock(SignalId S) {
  if (S < SignalClockVar.size() && SignalClockVar[S] != InvalidClockVar)
    return SignalClockVar[S];
  if (S >= SignalClockVar.size())
    SignalClockVar.resize(S + 1, InvalidClockVar);
  ClockVarId V = static_cast<ClockVarId>(Vars.size());
  Vars.push_back({ClockVarKind::SignalClock, S});
  SignalClockVar[S] = V;
  return V;
}

void ClockSystem::addLiterals(SignalId S) {
  if (S < PosLitVar.size() && PosLitVar[S] != InvalidClockVar)
    return;
  if (S >= PosLitVar.size()) {
    PosLitVar.resize(S + 1, InvalidClockVar);
    NegLitVar.resize(S + 1, InvalidClockVar);
  }
  ClockVarId Pos = static_cast<ClockVarId>(Vars.size());
  Vars.push_back({ClockVarKind::PosLiteral, S});
  ClockVarId Neg = static_cast<ClockVarId>(Vars.size());
  Vars.push_back({ClockVarKind::NegLiteral, S});
  PosLitVar[S] = Pos;
  NegLitVar[S] = Neg;
  Conditions.push_back(S);
}

std::string ClockSystem::varName(ClockVarId V, const KernelProgram &Prog,
                                 const StringInterner &Names) const {
  const ClockVarInfo &Info = Vars[V];
  std::string SigName(Names.spelling(Prog.Signals[Info.Signal].Name));
  switch (Info.Kind) {
  case ClockVarKind::SignalClock:
    return "^" + SigName;
  case ClockVarKind::PosLiteral:
    return "[" + SigName + "]";
  case ClockVarKind::NegLiteral:
    return "[~" + SigName + "]";
  }
  return "<bad>";
}

std::string ClockSystem::dump(const KernelProgram &Prog,
                              const StringInterner &Names) const {
  std::string Out;
  for (const ClockEquality &E : Equalities)
    Out += "  " + varName(E.A, Prog, Names) + " = " +
           varName(E.B, Prog, Names) + "\n";
  for (const ClockEquation &E : Equations)
    Out += "  " + varName(E.Lhs, Prog, Names) + " = " +
           varName(E.A, Prog, Names) + " " + clockOpName(E.Op) + " " +
           varName(E.B, Prog, Names) + "\n";
  for (SignalId C : Conditions) {
    std::string CN(Names.spelling(Prog.Signals[C].Name));
    Out += "  [" + CN + "] ^+ [~" + CN + "] = ^" + CN + "\n";
    Out += "  [" + CN + "] ^* [~" + CN + "] = 0\n";
  }
  return Out;
}

ClockSystem sigc::extractClockSystem(const KernelProgram &Prog) {
  ClockSystem Sys;

  // One clock variable per signal; literals for every boolean signal.
  for (SignalId S = 0; S < Prog.numSignals(); ++S) {
    Sys.addSignalClock(S);
    if (Prog.Signals[S].Type == TypeKind::Boolean)
      Sys.addLiterals(S);
  }

  for (const KernelEq &Eq : Prog.Equations) {
    ClockVarId Y = Sys.signalClock(Eq.Target);
    switch (Eq.Kind) {
    case KernelEqKind::Func:
      for (SignalId Arg : Eq.Args)
        Sys.addEquality(Y, Sys.signalClock(Arg), Eq.Loc);
      break;
    case KernelEqKind::Delay:
      Sys.addEquality(Y, Sys.signalClock(Eq.DelaySource), Eq.Loc);
      break;
    case KernelEqKind::When: {
      ClockVarId Lit = Eq.WhenPositive ? Sys.posLiteral(Eq.WhenCond)
                                       : Sys.negLiteral(Eq.WhenCond);
      assert(Lit != InvalidClockVar &&
             "when-condition must be a boolean signal with literals");
      if (Eq.WhenValue.isSignal())
        Sys.addEquation(Y, ClockOp::Inter,
                        Sys.signalClock(Eq.WhenValue.Sig), Lit, Eq.Loc);
      else
        Sys.addEquality(Y, Lit, Eq.Loc); // constant adapts: ŷ = [C]
      break;
    }
    case KernelEqKind::Default:
      Sys.addEquation(Y, ClockOp::Union,
                      Sys.signalClock(Eq.DefaultPreferred),
                      Sys.signalClock(Eq.DefaultAlternative), Eq.Loc);
      break;
    }
  }

  for (const ClockConstraint &C : Prog.Constraints)
    Sys.addEquality(Sys.signalClock(C.First), Sys.signalClock(C.Second),
                    C.Loc);

  return Sys;
}
