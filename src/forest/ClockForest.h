//===--- ClockForest.h - Arborescent canonical form of clocks ---*- C++-*-===//
///
/// \file
/// The paper's central data structure (Section 3.4): a forest of clock
/// trees in which
///
///   * every node stands for one equivalence class of clock variables
///     (equalities are solved first with union-find),
///   * an edge parent -> child means child ⊆ parent,
///   * each boolean condition C partitions its clock ĉ into the children
///     [C] and [¬C],
///   * every node carries a BDD over condition variables, *relative to the
///     root of its tree* (the root's BDD is the constant true),
///   * a defined clock k = k1 <op> k2 whose operands lie in one tree is
///     inserted under its deepest containing parent, computed by BDD
///     implication (the "canonical factorization" of [1]); equal BDDs merge
///     classes, which is what makes the representation canonical,
///   * trees are fused when a definition relates their roots.
///
/// Resolution runs the paper's three-step loop (Section 3.4 "Arborescent
/// resolution"): rewrite a root so its operands share a tree, fuse, repeat
/// until nothing changes. Equations whose left-hand side is already placed
/// are *verified* by BDD equality (the inclusion-based rewriting of the
/// PROCESS_ALARM example falls out of this: ĉ = [D] ∨ [C1] ∨ ĉ evaluates
/// to the root's BDD and is discharged). Unresolvable-but-orientable
/// equations remain as residual cross-tree definitions; unprovable or
/// cyclic ones make the program temporally incorrect.
///
/// Deviation from the paper, documented: where [1] proves the deepest
/// parent unique under their factorization scheme, we search all containing
/// branches and break ties deterministically (greater depth, then smaller
/// node id). The paper's syntactic p-depth rewriting limit is unnecessary
/// here because rewriting is semantic (on BDDs), which terminates.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_FOREST_CLOCKFOREST_H
#define SIGNALC_FOREST_CLOCKFOREST_H

#include "bdd/Bdd.h"
#include "clock/ClockSystem.h"
#include "clock/UnionFind.h"
#include "support/Diagnostics.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace sigc {

/// Index of a node in the forest; -1 is "no node".
using ForestNodeId = int;
constexpr ForestNodeId InvalidForestNode = -1;

/// How the presence of a clock node is computed at run time.
enum class ClockDefKind {
  Root,     ///< Free: the environment decides (an input clock).
  Literal,  ///< Parent present and condition value matches.
  Derived,  ///< k1 <op> k2 over previously computed clocks.
  Residual, ///< Like Derived, but cross-tree (kept as an explicit formula);
            ///< the node is the root of its own tree.
};

/// One node of the clock forest.
struct ClockNode {
  ClockVarId Rep = InvalidClockVar; ///< Canonical class representative.
  ForestNodeId Parent = InvalidForestNode;
  std::vector<ForestNodeId> Children;
  BddRef Bdd; ///< Relative to the tree root.
  bool Alive = true;

  ClockDefKind Def = ClockDefKind::Root;
  // Literal:
  SignalId CondSignal = InvalidSignal;
  bool Positive = true;
  // Derived / Residual:
  ClockOp Op = ClockOp::Inter;
  ClockVarId OpA = InvalidClockVar;
  ClockVarId OpB = InvalidClockVar;
};

/// Statistics of one resolution run (reported by the benchmarks).
struct ForestBuildStats {
  unsigned Insertions = 0;       ///< Nodes placed under a deeper parent.
  unsigned Fusions = 0;          ///< Tree-into-tree fusions.
  unsigned MergedClasses = 0;    ///< Classes unified by BDD equality.
  unsigned VerifiedEquations = 0;///< Equations discharged by rewriting.
  unsigned ResidualDefinitions = 0;
  unsigned NullClocks = 0;       ///< Classes proved empty.
  unsigned Iterations = 0;       ///< Fixpoint rounds.
  uint64_t BddNodes = 0;         ///< Manager size after the run.
};

/// The forest of clock trees of one program.
class ClockForest {
public:
  explicit ClockForest(BddManager &Mgr) : Mgr(Mgr) {}

  /// Runs the arborescent resolution on \p Sys.
  /// \returns false (with diagnostics) if the program is temporally
  /// incorrect or the BDD budget tripped.
  bool build(const ClockSystem &Sys, const KernelProgram &Prog,
             const StringInterner &Names, DiagnosticEngine &Diags);

  // --- Queries (valid after a successful build) -------------------------

  /// Canonical representative of \p V's equivalence class.
  ClockVarId rep(ClockVarId V) { return Classes.find(V); }

  /// \returns the forest node of \p V's class, or InvalidForestNode when
  /// the class is the null clock.
  ForestNodeId nodeOf(ClockVarId V);

  /// \returns true if \p V's class is the empty clock 0̂.
  bool isNull(ClockVarId V);

  const ClockNode &node(ForestNodeId N) const { return Nodes[N]; }
  unsigned numNodes() const { return static_cast<unsigned>(Nodes.size()); }

  /// Roots of all alive trees, in deterministic order.
  std::vector<ForestNodeId> roots() const;

  /// Left-to-right depth-first order over all trees; parents precede
  /// children (the order that embodies triangularity).
  std::vector<ForestNodeId> dfsOrder() const;

  /// Clock classes the environment must provide (roots with no residual
  /// definition) — the "free variables exhibited by the compilation".
  std::vector<ForestNodeId> freeClocks() const;

  /// Depth of \p N in its tree (root = 0).
  unsigned depth(ForestNodeId N) const;

  /// The BDD variable standing for the value of condition \p C.
  /// \returns the variable, or ~0u if \p C never became a condition.
  BddVar conditionVar(SignalId C) const;

  const ForestBuildStats &stats() const { return Stats; }
  BddManager &bddManager() { return Mgr; }

  /// Size of the representation itself: shared BDD nodes reachable from
  /// the alive tree nodes (the paper's "nodes" column measures the size
  /// of the representation, not allocator churn).
  uint64_t liveBddNodes() const;

  /// Renders the forest as an indented tree listing (tests, -dump-tree).
  std::string dump(const ClockSystem &Sys, const KernelProgram &Prog,
                   const StringInterner &Names);

  /// Renders the forest as a Graphviz digraph (solid edges = tree
  /// inclusion, dashed = derived/residual operand dependencies).
  std::string toDot(const ClockSystem &Sys, const KernelProgram &Prog,
                    const StringInterner &Names);

private:
  struct ResolvedOperand {
    bool Null = false;
    ForestNodeId Node = InvalidForestNode;
    ForestNodeId Root = InvalidForestNode;
    BddRef Bdd;
  };

  ForestNodeId rootOf(ForestNodeId N) const;
  ForestNodeId newNode(ClockVarId Rep);
  void markNullSubtree(ForestNodeId N);
  void setClassNull(ClockVarId Rep);
  bool classIsNull(ClockVarId Rep);
  ResolvedOperand resolveOperand(ClockVarId V);

  /// Recomputes the BDDs of \p Sub's proper descendants after \p Sub's own
  /// BDD changed from "true" (it was a root) to its new in-tree value.
  bool refreshSubtreeBdds(ForestNodeId Sub);

  /// Finds the deepest alive node of the tree rooted at \p Root whose BDD
  /// contains \p Target; also reports an exact-BDD match if one exists.
  ForestNodeId findDeepestParent(ForestNodeId Root, BddRef Target,
                                 ForestNodeId *EqualNode);

  /// Attaches the tree rooted at \p Sub into the tree of \p TargetRoot,
  /// giving Sub the relative BDD \p NewBdd. Merges classes on BDD
  /// equality. \returns false on budget exhaustion or cycle.
  bool attachSubtree(ForestNodeId Sub, ForestNodeId TargetRoot, BddRef NewBdd,
                     DiagnosticEngine &Diags, SourceLoc Loc);

  /// Merges class/subtree of \p From into node \p Into (equal BDDs).
  bool mergeInto(ForestNodeId From, ForestNodeId Into,
                 DiagnosticEngine &Diags, SourceLoc Loc);

  void appendDump(ForestNodeId N, unsigned Indent, const ClockSystem &Sys,
                  const KernelProgram &Prog, const StringInterner &Names,
                  std::string &Out);

  BddManager &Mgr;
  UnionFind Classes;
  std::unordered_map<ClockVarId, ForestNodeId> ClassNode;
  std::unordered_map<ClockVarId, bool> NullClass;
  std::unordered_map<SignalId, BddVar> CondVars;
  std::vector<ClockNode> Nodes;
  ForestBuildStats Stats;
};

} // namespace sigc

#endif // SIGNALC_FOREST_CLOCKFOREST_H
