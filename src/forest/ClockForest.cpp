//===--- ClockForest.cpp - Arborescent resolution -------------------------===//

#include "forest/ClockForest.h"

#include <algorithm>
#include <cassert>

using namespace sigc;

//===----------------------------------------------------------------------===//
// Small helpers
//===----------------------------------------------------------------------===//

ForestNodeId ClockForest::rootOf(ForestNodeId N) const {
  while (Nodes[N].Parent != InvalidForestNode)
    N = Nodes[N].Parent;
  return N;
}

unsigned ClockForest::depth(ForestNodeId N) const {
  unsigned D = 0;
  while (Nodes[N].Parent != InvalidForestNode) {
    N = Nodes[N].Parent;
    ++D;
  }
  return D;
}

ForestNodeId ClockForest::newNode(ClockVarId Rep) {
  ForestNodeId Id = static_cast<ForestNodeId>(Nodes.size());
  ClockNode N;
  N.Rep = Rep;
  N.Bdd = Mgr.top();
  Nodes.push_back(N);
  ClassNode[Rep] = Id;
  return Id;
}

bool ClockForest::classIsNull(ClockVarId Rep) {
  auto It = NullClass.find(Rep);
  return It != NullClass.end() && It->second;
}

bool ClockForest::isNull(ClockVarId V) { return classIsNull(Classes.find(V)); }

ForestNodeId ClockForest::nodeOf(ClockVarId V) {
  ClockVarId Rep = Classes.find(V);
  if (classIsNull(Rep))
    return InvalidForestNode;
  auto It = ClassNode.find(Rep);
  return It == ClassNode.end() ? InvalidForestNode : It->second;
}

void ClockForest::markNullSubtree(ForestNodeId N) {
  ClockNode &Node = Nodes[N];
  if (!Node.Alive)
    return;
  Node.Alive = false;
  NullClass[Node.Rep] = true;
  ClassNode.erase(Node.Rep);
  ++Stats.NullClocks;
  for (ForestNodeId C : Node.Children)
    markNullSubtree(C);
  Node.Children.clear();
}

void ClockForest::setClassNull(ClockVarId Rep) {
  if (classIsNull(Rep))
    return;
  auto It = ClassNode.find(Rep);
  if (It == ClassNode.end()) {
    NullClass[Rep] = true;
    ++Stats.NullClocks;
    return;
  }
  ForestNodeId N = It->second;
  // Detach from the parent, then kill the whole subtree (children are
  // included in their parent, so an empty clock empties them too).
  ForestNodeId P = Nodes[N].Parent;
  if (P != InvalidForestNode) {
    auto &Sibs = Nodes[P].Children;
    Sibs.erase(std::remove(Sibs.begin(), Sibs.end(), N), Sibs.end());
    Nodes[N].Parent = InvalidForestNode;
  }
  markNullSubtree(N);
}

ClockForest::ResolvedOperand ClockForest::resolveOperand(ClockVarId V) {
  ResolvedOperand R;
  ClockVarId Rep = Classes.find(V);
  if (classIsNull(Rep)) {
    R.Null = true;
    return R;
  }
  auto It = ClassNode.find(Rep);
  assert(It != ClassNode.end() && "class without node");
  R.Node = It->second;
  R.Root = rootOf(R.Node);
  R.Bdd = Nodes[R.Node].Bdd;
  return R;
}

BddVar ClockForest::conditionVar(SignalId C) const {
  auto It = CondVars.find(C);
  return It == CondVars.end() ? ~0u : It->second;
}

//===----------------------------------------------------------------------===//
// Tree surgery
//===----------------------------------------------------------------------===//

bool ClockForest::refreshSubtreeBdds(ForestNodeId Sub) {
  // Every proper descendant's BDD was relative to Sub (which was a root, so
  // relative-to-Sub equals the stored value); the new value is
  // Sub.Bdd ∧ old.
  BddRef Factor = Nodes[Sub].Bdd;
  std::vector<ForestNodeId> Stack(Nodes[Sub].Children.begin(),
                                  Nodes[Sub].Children.end());
  while (!Stack.empty()) {
    ForestNodeId N = Stack.back();
    Stack.pop_back();
    Nodes[N].Bdd = Mgr.apply_and(Factor, Nodes[N].Bdd);
    if (!Nodes[N].Bdd.isValid())
      return false;
    for (ForestNodeId C : Nodes[N].Children)
      Stack.push_back(C);
  }
  return true;
}

ForestNodeId ClockForest::findDeepestParent(ForestNodeId Root, BddRef Target,
                                            ForestNodeId *EqualNode) {
  *EqualNode = InvalidForestNode;
  // DFS over nodes whose BDD contains Target; among them pick the deepest
  // (ties: smaller node id — the deterministic stand-in for the paper's
  // canonical factorization).
  ForestNodeId Best = Root;
  unsigned BestDepth = 0;
  struct Item {
    ForestNodeId Node;
    unsigned Depth;
  };
  std::vector<Item> Stack{{Root, 0}};
  while (!Stack.empty()) {
    Item I = Stack.back();
    Stack.pop_back();
    const ClockNode &N = Nodes[I.Node];
    if (N.Bdd == Target) {
      // Exact BDD match: the clocks are provably equal; the caller merges
      // the classes (this includes the root, e.g. for a formula that
      // rewrites to the whole tree's clock as in the ALARM example).
      if (*EqualNode == InvalidForestNode || I.Node < *EqualNode)
        *EqualNode = I.Node;
      continue;
    }
    if (I.Depth > BestDepth || (I.Depth == BestDepth && I.Node < Best)) {
      Best = I.Node;
      BestDepth = I.Depth;
    }
    for (ForestNodeId C : N.Children)
      if (Nodes[C].Alive && Mgr.implies(Target, Nodes[C].Bdd))
        Stack.push_back({C, I.Depth + 1});
  }
  return Best;
}

bool ClockForest::mergeInto(ForestNodeId From, ForestNodeId Into,
                            DiagnosticEngine &Diags, SourceLoc Loc) {
  if (From == Into)
    return true;
  assert(Nodes[From].Bdd == Nodes[Into].Bdd &&
         "mergeInto requires equal BDDs");

  ClockVarId RepFrom = Nodes[From].Rep;
  ClockVarId RepInto = Nodes[Into].Rep;
  ClassNode.erase(RepFrom);
  ClassNode.erase(RepInto);
  ClockVarId Rep = Classes.unite(RepFrom, RepInto);
  Nodes[Into].Rep = Rep;
  ClassNode[Rep] = Into;
  ++Stats.MergedClasses;

  // Detach From from any parent.
  if (Nodes[From].Parent != InvalidForestNode) {
    auto &Sibs = Nodes[Nodes[From].Parent].Children;
    Sibs.erase(std::remove(Sibs.begin(), Sibs.end(), From), Sibs.end());
    Nodes[From].Parent = InvalidForestNode;
  }
  Nodes[From].Alive = false;

  // Re-home From's children inside Into's subtree. Their BDDs are already
  // correct relative to the common root.
  std::vector<ForestNodeId> Orphans;
  Orphans.swap(Nodes[From].Children);
  for (ForestNodeId C : Orphans) {
    Nodes[C].Parent = InvalidForestNode;
    ForestNodeId Equal = InvalidForestNode;
    ForestNodeId Deepest = findDeepestParent(Into, Nodes[C].Bdd, &Equal);
    if (Mgr.budgetExhausted())
      return false;
    if (Equal != InvalidForestNode && Equal != C) {
      if (!mergeInto(C, Equal, Diags, Loc))
        return false;
      continue;
    }
    // Insert C under Deepest and pull included siblings below C.
    Nodes[C].Parent = Deepest;
    Nodes[Deepest].Children.push_back(C);
    auto &Sibs = Nodes[Deepest].Children;
    for (size_t I = 0; I < Sibs.size();) {
      ForestNodeId S = Sibs[I];
      if (S != C && Nodes[S].Bdd != Nodes[C].Bdd &&
          Mgr.implies(Nodes[S].Bdd, Nodes[C].Bdd)) {
        Sibs.erase(Sibs.begin() + static_cast<long>(I));
        Nodes[S].Parent = C;
        Nodes[C].Children.push_back(S);
        continue;
      }
      ++I;
    }
  }
  return true;
}

bool ClockForest::attachSubtree(ForestNodeId Sub, ForestNodeId TargetRoot,
                                BddRef NewBdd, DiagnosticEngine &Diags,
                                SourceLoc Loc) {
  assert(Nodes[Sub].Parent == InvalidForestNode &&
         "attachSubtree expects a root");
  if (!NewBdd.isValid())
    return false;
  if (rootOf(TargetRoot) == Sub) {
    Diags.error(Loc, "temporally incorrect program: cyclic clock partition "
                     "structure");
    return false;
  }

  Nodes[Sub].Bdd = NewBdd;
  if (!refreshSubtreeBdds(Sub))
    return false;

  ForestNodeId Equal = InvalidForestNode;
  ForestNodeId Deepest = findDeepestParent(TargetRoot, NewBdd, &Equal);
  if (Mgr.budgetExhausted())
    return false;
  if (Equal != InvalidForestNode) {
    ++Stats.Fusions;
    return mergeInto(Sub, Equal, Diags, Loc);
  }

  Nodes[Sub].Parent = Deepest;
  Nodes[Deepest].Children.push_back(Sub);
  ++Stats.Insertions;
  if (Deepest != TargetRoot || !Nodes[Sub].Children.empty())
    ++Stats.Fusions;

  // Canonicity maintenance: siblings now included in Sub move below it.
  auto &Sibs = Nodes[Deepest].Children;
  for (size_t I = 0; I < Sibs.size();) {
    ForestNodeId S = Sibs[I];
    if (S != Sub && Nodes[S].Bdd != NewBdd &&
        Mgr.implies(Nodes[S].Bdd, NewBdd)) {
      Sibs.erase(Sibs.begin() + static_cast<long>(I));
      Nodes[S].Parent = Sub;
      Nodes[Sub].Children.push_back(S);
      continue;
    }
    ++I;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Resolution
//===----------------------------------------------------------------------===//

namespace {

/// Outcome of one attempt at orienting/verifying an equation.
enum class EqOutcome { Resolved, Deferred, Failed };

} // namespace

bool ClockForest::build(const ClockSystem &Sys, const KernelProgram &Prog,
                        const StringInterner &Names,
                        DiagnosticEngine &Diags) {
  Nodes.clear();
  ClassNode.clear();
  NullClass.clear();
  CondVars.clear();
  Stats = ForestBuildStats();

  // One BDD variable per condition: size the manager's unique table and
  // operation caches for this program before the hot loops start. The
  // inclusion tests below (Mgr.implies) are ITE-to-constant checks that
  // allocate no nodes, so their cost is pure cache-probe time.
  Mgr.presize(static_cast<unsigned>(Sys.conditions().size()));

  // Step 0: equalities via union-find ("choose one variable which will
  // replace the others", Section 3.3).
  Classes.reset(Sys.numVars());
  for (const ClockEquality &E : Sys.equalities())
    Classes.unite(E.A, E.B);

  // One root node per class.
  for (ClockVarId V = 0; V < Sys.numVars(); ++V)
    if (Classes.find(V) == V)
      newNode(V);

  // Step 1: basic partition trees — hang [C], [¬C] under ĉ.
  for (SignalId C : Sys.conditions()) {
    ClockVarId ParentRep = Classes.find(Sys.signalClock(C));
    ClockVarId PosRep = Classes.find(Sys.posLiteral(C));
    ClockVarId NegRep = Classes.find(Sys.negLiteral(C));

    BddVar Var = static_cast<BddVar>(CondVars.size());
    CondVars[C] = Var;

    if (classIsNull(ParentRep)) {
      setClassNull(PosRep);
      setClassNull(NegRep);
      continue;
    }
    if (PosRep == NegRep) {
      // [C] = [¬C] together with the partition axioms forces everything
      // to the null clock.
      setClassNull(PosRep);
      setClassNull(ParentRep);
      continue;
    }
    if (PosRep == ParentRep) {
      // C is true whenever present: [C] = ĉ and [¬C] = 0̂.
      setClassNull(NegRep);
      continue;
    }
    if (NegRep == ParentRep) {
      setClassNull(PosRep);
      continue;
    }

    ForestNodeId ParentNode = ClassNode.at(ParentRep);
    BddRef ParentBdd = Nodes[ParentNode].Bdd;
    ForestNodeId ParentRoot = rootOf(ParentNode);

    auto attachLiteral = [&](ClockVarId Rep, bool Positive) -> bool {
      if (classIsNull(Rep))
        return true; // Previously proved empty; stays empty.
      ForestNodeId LitNode = ClassNode.at(Rep);
      BddRef Lit = Positive ? Mgr.var(Var) : Mgr.nvar(Var);
      BddRef NewBdd = Mgr.apply_and(ParentBdd, Lit);
      if (Nodes[LitNode].Parent != InvalidForestNode ||
          Nodes[LitNode].Def != ClockDefKind::Root) {
        // The class already has a structural definition (e.g. it is also
        // the literal of another condition): verify equality instead of
        // attaching. Distinct conditions have distinct BDD variables, so
        // this only succeeds for a genuine re-statement.
        if (Nodes[LitNode].Bdd == NewBdd)
          return true;
        Diags.error(Prog.Signals[C].Loc,
                    "temporally incorrect program: cannot prove the "
                    "equality of two condition samplings of one clock");
        return false;
      }
      if (!attachSubtree(LitNode, ParentRoot, NewBdd, Diags,
                         Prog.Signals[C].Loc))
        return false;
      // attachSubtree may have merged LitNode away; mark the survivor.
      ForestNodeId Survivor = nodeOf(Rep);
      if (Survivor != InvalidForestNode &&
          Nodes[Survivor].Def == ClockDefKind::Root &&
          Nodes[Survivor].Parent != InvalidForestNode) {
        Nodes[Survivor].Def = ClockDefKind::Literal;
        Nodes[Survivor].CondSignal = C;
        Nodes[Survivor].Positive = Positive;
      }
      return true;
    };

    if (!attachLiteral(PosRep, true) || !attachLiteral(NegRep, false))
      return false;
  }
  if (Mgr.budgetExhausted())
    return false;

  // Step 2: fixpoint over the orientable equations (the paper's
  // three-step arborescent resolution).
  struct PendingEq {
    ClockEquation Eq;
    bool Done = false;
  };
  std::vector<PendingEq> Pending;
  Pending.reserve(Sys.equations().size());
  for (const ClockEquation &E : Sys.equations())
    Pending.push_back({E, false});

  auto eqName = [&](const ClockEquation &E) {
    return Sys.varName(E.Lhs, Prog, Names) + " = " +
           Sys.varName(E.A, Prog, Names) + " " + clockOpName(E.Op) + " " +
           Sys.varName(E.B, Prog, Names);
  };

  // Merges the class of Lhs with the class of Other (equation degenerated
  // to an equality, e.g. k = a ∨ 0̂).
  auto mergeClasses = [&](ClockVarId LhsRep, ClockVarId OtherRep,
                          SourceLoc Loc) -> EqOutcome {
    if (LhsRep == OtherRep)
      return EqOutcome::Resolved;
    if (classIsNull(LhsRep) && classIsNull(OtherRep))
      return EqOutcome::Resolved;
    if (classIsNull(OtherRep)) {
      setClassNull(LhsRep);
      return EqOutcome::Resolved;
    }
    if (classIsNull(LhsRep)) {
      setClassNull(OtherRep);
      return EqOutcome::Resolved;
    }
    ForestNodeId L = ClassNode.at(LhsRep);
    ForestNodeId O = ClassNode.at(OtherRep);
    bool LFresh =
        Nodes[L].Def == ClockDefKind::Root && Nodes[L].Parent ==
                                                  InvalidForestNode;
    bool OFresh =
        Nodes[O].Def == ClockDefKind::Root && Nodes[O].Parent ==
                                                  InvalidForestNode;
    if (rootOf(L) == rootOf(O)) {
      if (Nodes[L].Bdd == Nodes[O].Bdd)
        return mergeInto(L, O, Diags, Loc) ? EqOutcome::Resolved
                                           : EqOutcome::Failed;
      return EqOutcome::Failed;
    }
    if (LFresh && rootOf(O) != L) {
      Nodes[L].Bdd = Nodes[O].Bdd;
      if (!refreshSubtreeBdds(L))
        return EqOutcome::Failed;
      return mergeInto(L, O, Diags, Loc) ? EqOutcome::Resolved
                                         : EqOutcome::Failed;
    }
    if (OFresh && rootOf(L) != O) {
      Nodes[O].Bdd = Nodes[L].Bdd;
      if (!refreshSubtreeBdds(O))
        return EqOutcome::Failed;
      return mergeInto(O, L, Diags, Loc) ? EqOutcome::Resolved
                                         : EqOutcome::Failed;
    }
    return EqOutcome::Deferred;
  };

  auto processEq = [&](const ClockEquation &E) -> EqOutcome {
    ClockVarId LhsRep = Classes.find(E.Lhs);
    ResolvedOperand A = resolveOperand(E.A);
    ResolvedOperand B = resolveOperand(E.B);
    ClockVarId ARep = Classes.find(E.A);
    ClockVarId BRep = Classes.find(E.B);

    // Null and same-operand algebra first: they turn the equation into an
    // equality or a null assertion without touching any tree.
    if (A.Null && B.Null) {
      setClassNull(LhsRep);
      return EqOutcome::Resolved;
    }
    if (ARep == BRep && !A.Null) {
      // k = a ∧ a = a ∨ a = a; k = a \ a = 0̂.
      if (E.Op == ClockOp::Diff) {
        setClassNull(LhsRep);
        return EqOutcome::Resolved;
      }
      return mergeClasses(LhsRep, ARep, E.Loc);
    }
    if (A.Null) {
      switch (E.Op) {
      case ClockOp::Inter:
      case ClockOp::Diff: // 0̂ ∧ b = 0̂ \ b = 0̂
        setClassNull(LhsRep);
        return EqOutcome::Resolved;
      case ClockOp::Union: // 0̂ ∨ b = b
        return mergeClasses(LhsRep, BRep, E.Loc);
      }
    }
    if (B.Null) {
      switch (E.Op) {
      case ClockOp::Inter: // a ∧ 0̂ = 0̂
        setClassNull(LhsRep);
        return EqOutcome::Resolved;
      case ClockOp::Union: // a ∨ 0̂ = a
      case ClockOp::Diff:  // a \ 0̂ = a
        return mergeClasses(LhsRep, ARep, E.Loc);
      }
    }

    // Both operands are real clocks: they must share a tree before the
    // formula can be evaluated.
    if (A.Root != B.Root)
      return EqOutcome::Deferred;

    BddRef NewBdd;
    switch (E.Op) {
    case ClockOp::Inter:
      NewBdd = Mgr.apply_and(A.Bdd, B.Bdd);
      break;
    case ClockOp::Union:
      NewBdd = Mgr.apply_or(A.Bdd, B.Bdd);
      break;
    case ClockOp::Diff:
      NewBdd = Mgr.apply_diff(A.Bdd, B.Bdd);
      break;
    }
    if (!NewBdd.isValid())
      return EqOutcome::Failed;

    if (NewBdd.isFalse()) {
      setClassNull(LhsRep);
      return EqOutcome::Resolved;
    }
    if (classIsNull(LhsRep)) {
      // The left-hand side was proved empty but the formula is not.
      Diags.error(E.Loc, "temporally incorrect program: clock of '" +
                             eqName(E) + "' is empty but its definition is "
                                         "not provably empty");
      return EqOutcome::Failed;
    }

    ForestNodeId LhsNode = ClassNode.at(LhsRep);
    if (rootOf(LhsNode) == A.Root) {
      // Same tree: verify by canonicity (this is where the inclusion-based
      // rewriting of Section 3.3 is discharged).
      if (Nodes[LhsNode].Bdd == NewBdd) {
        ++Stats.VerifiedEquations;
        return EqOutcome::Resolved;
      }
      Diags.error(E.Loc, "temporally incorrect program: cannot prove clock "
                         "equation '" +
                             eqName(E) + "'");
      return EqOutcome::Failed;
    }

    bool LhsFresh = Nodes[LhsNode].Def == ClockDefKind::Root &&
                    Nodes[LhsNode].Parent == InvalidForestNode;
    if (!LhsFresh)
      return EqOutcome::Deferred; // Defined in another tree; a later fusion
                                  // may still bring the trees together.

    if (!attachSubtree(LhsNode, A.Root, NewBdd, Diags, E.Loc))
      return EqOutcome::Failed;
    ForestNodeId Survivor = nodeOf(LhsRep);
    if (Survivor != InvalidForestNode &&
        Nodes[Survivor].Def == ClockDefKind::Root &&
        Nodes[Survivor].Parent != InvalidForestNode) {
      Nodes[Survivor].Def = ClockDefKind::Derived;
      Nodes[Survivor].Op = E.Op;
      Nodes[Survivor].OpA = ARep;
      Nodes[Survivor].OpB = BRep;
    }
    return EqOutcome::Resolved;
  };

  bool Progress = true;
  while (Progress) {
    Progress = false;
    ++Stats.Iterations;
    for (PendingEq &P : Pending) {
      if (P.Done)
        continue;
      EqOutcome Out = processEq(P.Eq);
      if (Out == EqOutcome::Failed)
        return false;
      if (Out == EqOutcome::Resolved) {
        P.Done = true;
        Progress = true;
      }
      if (Mgr.budgetExhausted())
        return false;
    }
  }

  // Step 3a: orient what is left as residual cross-tree definitions where
  // the left-hand side is still free. Self-referential equations are kept
  // for step 3b, which may discharge them with inclusion reasoning once
  // the residual definitions are known.
  for (PendingEq &P : Pending) {
    if (P.Done)
      continue;
    const ClockEquation &E = P.Eq;
    ClockVarId LhsRep = Classes.find(E.Lhs);
    ClockVarId ARep = Classes.find(E.A);
    ClockVarId BRep = Classes.find(E.B);
    if (LhsRep == ARep || LhsRep == BRep)
      continue; // step 3b
    if (classIsNull(LhsRep)) {
      Diags.error(E.Loc, "temporally incorrect program: empty clock has "
                         "non-empty definition '" +
                             eqName(E) + "'");
      return false;
    }
    ForestNodeId LhsNode = ClassNode.at(LhsRep);
    if (Nodes[LhsNode].Def != ClockDefKind::Root ||
        Nodes[LhsNode].Parent != InvalidForestNode) {
      Diags.error(E.Loc, "temporally incorrect program: cannot prove clock "
                         "equation '" +
                             eqName(E) + "' (operands belong to separate "
                                         "clock hierarchies)");
      return false;
    }
    Nodes[LhsNode].Def = ClockDefKind::Residual;
    Nodes[LhsNode].Op = E.Op;
    Nodes[LhsNode].OpA = ARep;
    Nodes[LhsNode].OpB = BRep;
    ++Stats.ResidualDefinitions;
    P.Done = true;
  }

  // Step 3b: self-referential equations k = a ∨ k / k = a ∧ k assert an
  // inclusion; discharge them with the extra knowledge embodied in the
  // trees and in the residual definitions (the paper's Section 3.3
  // "extra knowledge about boolean valued signals").
  auto provesInclusion = [&](ClockVarId SubRep, ClockVarId SupRep) -> bool {
    if (classIsNull(SubRep))
      return true;
    auto SubIt = ClassNode.find(SubRep);
    auto SupIt = ClassNode.find(SupRep);
    if (SubIt == ClassNode.end() || SupIt == ClassNode.end())
      return false;
    ForestNodeId Sub = SubIt->second, Sup = SupIt->second;
    if (rootOf(Sub) == rootOf(Sup))
      return Mgr.implies(Nodes[Sub].Bdd, Nodes[Sup].Bdd);
    // sup := x ∨ y with sub ∈ {x, y}.
    const ClockNode &SupNode = Nodes[Sup];
    if ((SupNode.Def == ClockDefKind::Derived ||
         SupNode.Def == ClockDefKind::Residual) &&
        SupNode.Op == ClockOp::Union &&
        (Classes.find(SupNode.OpA) == SubRep ||
         Classes.find(SupNode.OpB) == SubRep))
      return true;
    // sub := x ∧ y (or x \ y) with sup ∈ {x} (or {x, y} for ∧).
    const ClockNode &SubNode = Nodes[Sub];
    if (SubNode.Def == ClockDefKind::Derived ||
        SubNode.Def == ClockDefKind::Residual) {
      if (SubNode.Op == ClockOp::Inter &&
          (Classes.find(SubNode.OpA) == SupRep ||
           Classes.find(SubNode.OpB) == SupRep))
        return true;
      if (SubNode.Op == ClockOp::Diff &&
          Classes.find(SubNode.OpA) == SupRep)
        return true;
    }
    return false;
  };

  for (PendingEq &P : Pending) {
    if (P.Done)
      continue;
    const ClockEquation &E = P.Eq;
    ClockVarId LhsRep = Classes.find(E.Lhs);
    ClockVarId ARep = Classes.find(E.A);
    ClockVarId BRep = Classes.find(E.B);
    ClockVarId Other = (LhsRep == ARep) ? BRep : ARep;
    bool Proved = false;
    if (E.Op == ClockOp::Union) {
      // k = other ∨ k  holds iff other ⊆ k.
      Proved = provesInclusion(Other, LhsRep);
    } else if (E.Op == ClockOp::Inter) {
      // k = other ∧ k  holds iff k ⊆ other.
      Proved = provesInclusion(LhsRep, Other);
    }
    if (!Proved) {
      Diags.error(E.Loc, "temporally incorrect program: cannot break the "
                         "cycle in '" +
                             eqName(E) + "'");
      return false;
    }
    ++Stats.VerifiedEquations;
    P.Done = true;
  }

  // Step 4: the clock-to-clock dependency graph must be acyclic (this is
  // the triangularity of the final system).
  {
    enum class Mark : uint8_t { White, Grey, Black };
    std::unordered_map<ForestNodeId, Mark> Marks;
    std::vector<std::pair<ForestNodeId, unsigned>> Stack;
    // Presence-recipe dependencies (not tree edges: reparenting may hang a
    // union below its own operands, which is fine for the inclusion order
    // but must not be read as an evaluation dependency).
    auto depsOf = [&](ForestNodeId N, std::vector<ForestNodeId> &Out) {
      Out.clear();
      const ClockNode &Node = Nodes[N];
      if (Node.Def == ClockDefKind::Literal) {
        ForestNodeId CondClock = nodeOf(Sys.signalClock(Node.CondSignal));
        if (CondClock != InvalidForestNode)
          Out.push_back(CondClock);
      }
      if (Node.Def == ClockDefKind::Derived ||
          Node.Def == ClockDefKind::Residual) {
        for (ClockVarId Op : {Node.OpA, Node.OpB}) {
          ForestNodeId ON = nodeOf(Op);
          if (ON != InvalidForestNode)
            Out.push_back(ON);
        }
      }
    };
    std::vector<ForestNodeId> Deps;
    for (ForestNodeId N = 0; N < static_cast<ForestNodeId>(Nodes.size());
         ++N) {
      if (!Nodes[N].Alive || Marks[N] == Mark::Black)
        continue;
      Stack.push_back({N, 0});
      Marks[N] = Mark::Grey;
      while (!Stack.empty()) {
        auto &[Cur, Idx] = Stack.back();
        depsOf(Cur, Deps);
        if (Idx >= Deps.size()) {
          Marks[Cur] = Mark::Black;
          Stack.pop_back();
          continue;
        }
        ForestNodeId Next = Deps[Idx++];
        if (Marks[Next] == Mark::Grey) {
          Diags.error(SourceLoc(),
                      "temporally incorrect program: cyclic clock "
                      "dependencies remain after resolution");
          return false;
        }
        if (Marks[Next] == Mark::White) {
          Marks[Next] = Mark::Grey;
          Stack.push_back({Next, 0});
        }
      }
    }
  }

  Stats.BddNodes = Mgr.numNodes();
  return !Mgr.budgetExhausted();
}

//===----------------------------------------------------------------------===//
// Queries and rendering
//===----------------------------------------------------------------------===//

uint64_t ClockForest::liveBddNodes() const {
  std::vector<BddRef> Roots;
  for (const ClockNode &Node : Nodes)
    if (Node.Alive)
      Roots.push_back(Node.Bdd);
  return Mgr.countNodesMany(Roots);
}

std::vector<ForestNodeId> ClockForest::roots() const {
  std::vector<ForestNodeId> Result;
  for (ForestNodeId N = 0; N < static_cast<ForestNodeId>(Nodes.size()); ++N)
    if (Nodes[N].Alive && Nodes[N].Parent == InvalidForestNode)
      Result.push_back(N);
  return Result;
}

std::vector<ForestNodeId> ClockForest::dfsOrder() const {
  std::vector<ForestNodeId> Result;
  for (ForestNodeId Root : roots()) {
    std::vector<ForestNodeId> Stack{Root};
    while (!Stack.empty()) {
      ForestNodeId N = Stack.back();
      Stack.pop_back();
      if (!Nodes[N].Alive)
        continue;
      Result.push_back(N);
      // Push children right-to-left so they pop left-to-right.
      for (auto It = Nodes[N].Children.rbegin();
           It != Nodes[N].Children.rend(); ++It)
        Stack.push_back(*It);
    }
  }
  return Result;
}

std::vector<ForestNodeId> ClockForest::freeClocks() const {
  std::vector<ForestNodeId> Result;
  for (ForestNodeId N : roots())
    if (Nodes[N].Def == ClockDefKind::Root)
      Result.push_back(N);
  return Result;
}

void ClockForest::appendDump(ForestNodeId N, unsigned Indent,
                             const ClockSystem &Sys, const KernelProgram &Prog,
                             const StringInterner &Names, std::string &Out) {
  const ClockNode &Node = Nodes[N];
  Out += std::string(Indent * 2, ' ');
  // List every member variable of the class, representative first.
  Out += Sys.varName(Node.Rep, Prog, Names);
  for (ClockVarId V = 0; V < Sys.numVars(); ++V)
    if (V != Node.Rep && Classes.find(V) == Node.Rep)
      Out += " = " + Sys.varName(V, Prog, Names);
  switch (Node.Def) {
  case ClockDefKind::Root:
    Out += "   [free root]";
    break;
  case ClockDefKind::Literal:
    Out += std::string("   [literal ") + (Node.Positive ? "+" : "-") +
           std::string(Names.spelling(Prog.Signals[Node.CondSignal].Name)) +
           "]";
    break;
  case ClockDefKind::Derived:
    Out += std::string("   [:= ") +
           Sys.varName(Classes.find(Node.OpA), Prog, Names) + " " +
           clockOpName(Node.Op) + " " +
           Sys.varName(Classes.find(Node.OpB), Prog, Names) + "]";
    break;
  case ClockDefKind::Residual:
    Out += std::string("   [root := ") +
           Sys.varName(Classes.find(Node.OpA), Prog, Names) + " " +
           clockOpName(Node.Op) + " " +
           Sys.varName(Classes.find(Node.OpB), Prog, Names) + "]";
    break;
  }
  Out += "\n";
  for (ForestNodeId C : Node.Children)
    if (Nodes[C].Alive)
      appendDump(C, Indent + 1, Sys, Prog, Names, Out);
}

std::string ClockForest::toDot(const ClockSystem &Sys,
                               const KernelProgram &Prog,
                               const StringInterner &Names) {
  std::string Out = "digraph clocks {\n  node [shape=box];\n";
  auto escape = [](std::string S) {
    std::string R;
    for (char C : S) {
      if (C == '"' || C == '\\')
        R += '\\';
      R += C;
    }
    return R;
  };
  for (ForestNodeId N = 0; N < static_cast<ForestNodeId>(Nodes.size());
       ++N) {
    const ClockNode &Node = Nodes[N];
    if (!Node.Alive)
      continue;
    std::string Label = Sys.varName(Node.Rep, Prog, Names);
    const char *Shape = "box";
    if (Node.Def == ClockDefKind::Root)
      Shape = "doubleoctagon"; // free or residual root
    Out += "  n" + std::to_string(N) + " [label=\"" + escape(Label) +
           "\", shape=" + Shape + "];\n";
    if (Node.Parent != InvalidForestNode)
      Out += "  n" + std::to_string(Node.Parent) + " -> n" +
             std::to_string(N) + ";\n";
    if (Node.Def == ClockDefKind::Derived ||
        Node.Def == ClockDefKind::Residual) {
      for (ClockVarId Op : {Node.OpA, Node.OpB}) {
        ForestNodeId ON = nodeOf(Op);
        if (ON != InvalidForestNode)
          Out += "  n" + std::to_string(ON) + " -> n" + std::to_string(N) +
                 " [style=dashed];\n";
      }
    }
  }
  Out += "}\n";
  return Out;
}

std::string ClockForest::dump(const ClockSystem &Sys,
                              const KernelProgram &Prog,
                              const StringInterner &Names) {
  std::string Out;
  for (ForestNodeId Root : roots())
    appendDump(Root, 0, Sys, Prog, Names, Out);
  if (Stats.NullClocks) {
    Out += "null clocks:";
    for (ClockVarId V = 0; V < Sys.numVars(); ++V)
      if (isNull(V) && Classes.find(V) == V)
        Out += " " + Sys.varName(V, Prog, Names);
    Out += "\n";
  }
  return Out;
}
