//===--- CharFunc.cpp -----------------------------------------------------===//

#include "solver/CharFunc.h"

using namespace sigc;

CharFuncResult sigc::buildCharFunc(
    BddManager &Mgr, unsigned NumVars,
    const std::vector<CharConstraint> &Constraints) {
  CharFuncResult Result;
  Result.NumVars = NumVars;

  // The characteristic function ranges over one BDD variable per clock
  // variable; size the tables for it up front.
  Mgr.presize(NumVars);

  BddRef Chi = Mgr.top();
  for (const CharConstraint &C : Constraints) {
    BddRef Term;
    switch (C.Kind) {
    case CharConstraint::Kind::Equal:
      Term = Mgr.apply_iff(Mgr.var(C.V0), Mgr.var(C.V1));
      break;
    case CharConstraint::Kind::Equation: {
      BddRef A = Mgr.var(C.V1);
      BddRef B = Mgr.var(C.V2);
      BddRef Rhs;
      switch (C.Op) {
      case ClockOp::Inter:
        Rhs = Mgr.apply_and(A, B);
        break;
      case ClockOp::Union:
        Rhs = Mgr.apply_or(A, B);
        break;
      case ClockOp::Diff:
        Rhs = Mgr.apply_diff(A, B);
        break;
      }
      Term = Mgr.apply_iff(Mgr.var(C.V0), Rhs);
      break;
    }
    case CharConstraint::Kind::Partition: {
      BddRef Parent = Mgr.var(C.V0);
      BddRef Pos = Mgr.var(C.V1);
      BddRef Neg = Mgr.var(C.V2);
      BddRef Cover = Mgr.apply_iff(Mgr.apply_or(Pos, Neg), Parent);
      BddRef Disjoint = Mgr.apply_not(Mgr.apply_and(Pos, Neg));
      Term = Mgr.apply_and(Cover, Disjoint);
      break;
    }
    case CharConstraint::Kind::ForceOff:
      Term = Mgr.apply_not(Mgr.var(C.V0));
      break;
    }
    Chi = Mgr.apply_and(Chi, Term);
    if (!Chi.isValid())
      break; // Budget exhausted; verdict read from the Budget by the caller.
  }

  Result.Chi = Chi;
  Result.PeakNodes = Mgr.numNodes();
  return Result;
}

unsigned sigc::analyzeCharFunc(BddManager &Mgr, BddRef Chi,
                               unsigned NumVars) {
  if (!Chi.isValid())
    return 0;
  unsigned Determined = 0;
  for (unsigned V = 0; V < NumVars; ++V) {
    BddRef F0 = Mgr.restrict(Chi, V, false);
    BddRef F1 = Mgr.restrict(Chi, V, true);
    if (!F0.isValid() || !F1.isValid())
      return Determined;
    // V is functionally determined by the other variables iff no
    // assignment of the others is compatible with both values of V.
    BddRef Both = Mgr.apply_and(F0, F1);
    if (!Both.isValid())
      return Determined;
    if (Both.isFalse())
      ++Determined;
  }
  return Determined;
}

std::vector<CharConstraint> sigc::systemConstraints(const ClockSystem &Sys) {
  std::vector<CharConstraint> Result;
  for (const ClockEquality &E : Sys.equalities()) {
    CharConstraint C;
    C.Kind = CharConstraint::Kind::Equal;
    C.V0 = E.A;
    C.V1 = E.B;
    Result.push_back(C);
  }
  for (const ClockEquation &E : Sys.equations()) {
    CharConstraint C;
    C.Kind = CharConstraint::Kind::Equation;
    C.Op = E.Op;
    C.V0 = E.Lhs;
    C.V1 = E.A;
    C.V2 = E.B;
    Result.push_back(C);
  }
  for (SignalId Cond : Sys.conditions()) {
    CharConstraint C;
    C.Kind = CharConstraint::Kind::Partition;
    C.V0 = Sys.signalClock(Cond);
    C.V1 = Sys.posLiteral(Cond);
    C.V2 = Sys.negLiteral(Cond);
    Result.push_back(C);
  }
  return Result;
}
