//===--- Solver.h - The three Figure-13 resolution strategies ---*- C++-*-===//
///
/// \file
/// One interface over the three representations of the boolean equation
/// system compared in the paper's experimental section (Figure 13):
///
///   TreeBdd   "Tree and BDD (T&BDD)" — the arborescent canonical form of
///             Section 3.4 (ClockForest), the paper's contribution.
///   CharFunc  "BDD characteristic function" — the whole system as a single
///             BDD over one presence variable per clock variable; complete
///             but (as the paper demonstrates) usually intractable.
///   Hybrid    "BDD charac. func. after T&BDD" — characteristic function of
///             the triangularized system, whose equivalent variables were
///             eliminated by the tree pass first.
///
/// Every run is bounded by a sigc::Budget; exceeding it yields the paper's
/// "unable-cpu" / "unable-mem" verdicts instead of results.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_SOLVER_SOLVER_H
#define SIGNALC_SOLVER_SOLVER_H

#include "clock/ClockSystem.h"
#include "forest/ClockForest.h"
#include "support/Budget.h"

#include <memory>
#include <string>

namespace sigc {

/// Which representation a solver run used.
enum class SolverKind {
  TreeBdd,
  CharFunc,
  Hybrid,
};

/// \returns the Figure-13 column name of \p K.
const char *solverKindName(SolverKind K);

/// Outcome of one resolution run; mirrors one cell group of Figure 13.
struct SolveResult {
  SolverKind Kind = SolverKind::TreeBdd;
  BudgetVerdict Verdict = BudgetVerdict::Ok;
  bool TemporallyCorrect = true;
  uint64_t BddNodes = 0; ///< The paper's "nodes" column.
  uint64_t TimeMs = 0;   ///< The paper's "time" column.
  unsigned NumVars = 0;  ///< Variables of the system presented to the run.
  unsigned FreeClocks = 0;
  unsigned DeterminedVars = 0; ///< CharFunc: variables functionally forced.
  ForestBuildStats TreeStats;  ///< TreeBdd/Hybrid only.

  bool ok() const { return Verdict == BudgetVerdict::Ok && TemporallyCorrect; }
};

/// Abstract resolution strategy.
class ClockSolver {
public:
  virtual ~ClockSolver();

  /// Solves the clock system of \p Prog under \p Limits.
  /// Diagnostics are only produced for temporal errors.
  virtual SolveResult solve(const ClockSystem &Sys, const KernelProgram &Prog,
                            const StringInterner &Names,
                            DiagnosticEngine &Diags,
                            const Budget &Limits) = 0;

  virtual SolverKind kind() const = 0;
};

/// Creates a solver for \p Kind.
std::unique_ptr<ClockSolver> makeSolver(SolverKind Kind);

} // namespace sigc

#endif // SIGNALC_SOLVER_SOLVER_H
