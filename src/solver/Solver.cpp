//===--- Solver.cpp - TreeBdd / CharFunc / Hybrid strategies --------------===//

#include "solver/Solver.h"
#include "solver/CharFunc.h"

#include <unordered_map>

using namespace sigc;

ClockSolver::~ClockSolver() = default;

const char *sigc::solverKindName(SolverKind K) {
  switch (K) {
  case SolverKind::TreeBdd:
    return "T&BDD";
  case SolverKind::CharFunc:
    return "BDD characteristic function";
  case SolverKind::Hybrid:
    return "charac. func. after T&BDD";
  }
  return "<bad>";
}

namespace {

/// The paper's approach: arborescent resolution with per-clock BDDs.
class TreeBddSolver final : public ClockSolver {
public:
  SolverKind kind() const override { return SolverKind::TreeBdd; }

  SolveResult solve(const ClockSystem &Sys, const KernelProgram &Prog,
                    const StringInterner &Names, DiagnosticEngine &Diags,
                    const Budget &Limits) override {
    SolveResult R;
    R.Kind = SolverKind::TreeBdd;
    R.NumVars = Sys.numVars();

    Budget Bud = Limits;
    Bud.start();
    BddManager Mgr(static_cast<unsigned>(Sys.conditions().size()));
    Mgr.setBudget(&Bud);
    ClockForest Forest(Mgr);

    bool Ok = Forest.build(Sys, Prog, Names, Diags);
    R.TimeMs = Bud.elapsedMs();
    R.Verdict = Bud.verdict();
    R.TemporallyCorrect = Ok || R.Verdict != BudgetVerdict::Ok;
    // Size of the representation: shared nodes of the kept per-clock BDDs
    // (falls back to total allocation when the run was cut short).
    R.BddNodes = Ok ? Forest.liveBddNodes() : Mgr.numNodes();
    R.TreeStats = Forest.stats();
    if (Ok)
      R.FreeClocks = static_cast<unsigned>(Forest.freeClocks().size());
    return R;
  }
};

/// The monolithic characteristic function baseline.
class CharFuncSolver final : public ClockSolver {
public:
  SolverKind kind() const override { return SolverKind::CharFunc; }

  SolveResult solve(const ClockSystem &Sys, const KernelProgram &Prog,
                    const StringInterner &Names, DiagnosticEngine &Diags,
                    const Budget &Limits) override {
    (void)Prog;
    (void)Names;
    (void)Diags;
    SolveResult R;
    R.Kind = SolverKind::CharFunc;
    R.NumVars = Sys.numVars();

    Budget Bud = Limits;
    Bud.start();
    BddManager Mgr(Sys.numVars());
    Mgr.setBudget(&Bud);

    std::vector<CharConstraint> Constraints = systemConstraints(Sys);
    CharFuncResult CF = buildCharFunc(Mgr, Sys.numVars(), Constraints);
    if (CF.Chi.isValid() && !Bud.exhausted())
      R.DeterminedVars = analyzeCharFunc(Mgr, CF.Chi, Sys.numVars());

    R.TimeMs = Bud.elapsedMs();
    R.Verdict = Bud.verdict();
    R.BddNodes = CF.Chi.isValid() ? Mgr.countNodes(CF.Chi) : Mgr.numNodes();
    return R;
  }
};

/// Characteristic function of the system *after* tree triangularization:
/// equivalent variables have been eliminated, so the function is built over
/// the (far fewer) clock classes.
class HybridSolver final : public ClockSolver {
public:
  SolverKind kind() const override { return SolverKind::Hybrid; }

  SolveResult solve(const ClockSystem &Sys, const KernelProgram &Prog,
                    const StringInterner &Names, DiagnosticEngine &Diags,
                    const Budget &Limits) override {
    SolveResult R;
    R.Kind = SolverKind::Hybrid;

    Budget Bud = Limits;
    Bud.start();

    // Phase 1: the tree pass, in its own manager.
    BddManager TreeMgr(static_cast<unsigned>(Sys.conditions().size()));
    TreeMgr.setBudget(&Bud);
    ClockForest Forest(TreeMgr);
    bool TreeOk = Forest.build(Sys, Prog, Names, Diags);
    R.TreeStats = Forest.stats();
    if (!TreeOk) {
      R.TimeMs = Bud.elapsedMs();
      R.Verdict = Bud.verdict();
      R.TemporallyCorrect = R.Verdict != BudgetVerdict::Ok;
      R.BddNodes = TreeMgr.numNodes();
      return R;
    }

    // Phase 2: characteristic function over the surviving clock classes.
    // Variables are dense indices over alive forest nodes.
    std::unordered_map<ForestNodeId, uint32_t> VarOf;
    std::vector<ForestNodeId> Order = Forest.dfsOrder();
    for (ForestNodeId N : Order)
      VarOf.emplace(N, static_cast<uint32_t>(VarOf.size()));

    std::vector<CharConstraint> Constraints;
    for (ForestNodeId N : Order) {
      const ClockNode &Node = Forest.node(N);
      switch (Node.Def) {
      case ClockDefKind::Root:
        break;
      case ClockDefKind::Literal: {
        // Covered by the partition constraint of its condition, emitted
        // from the positive side only to avoid duplicates.
        break;
      }
      case ClockDefKind::Derived:
      case ClockDefKind::Residual: {
        ForestNodeId A = Forest.nodeOf(Node.OpA);
        ForestNodeId B = Forest.nodeOf(Node.OpB);
        if (A == InvalidForestNode || B == InvalidForestNode) {
          // An operand is the null clock: k ⇔ op with an empty side.
          CharConstraint C;
          if (Node.Op == ClockOp::Union) {
            ForestNodeId Other = (A == InvalidForestNode) ? B : A;
            if (Other == InvalidForestNode) {
              C.Kind = CharConstraint::Kind::ForceOff;
              C.V0 = VarOf.at(N);
            } else {
              C.Kind = CharConstraint::Kind::Equal;
              C.V0 = VarOf.at(N);
              C.V1 = VarOf.at(Other);
            }
          } else if (Node.Op == ClockOp::Diff && B == InvalidForestNode &&
                     A != InvalidForestNode) {
            C.Kind = CharConstraint::Kind::Equal;
            C.V0 = VarOf.at(N);
            C.V1 = VarOf.at(A);
          } else {
            C.Kind = CharConstraint::Kind::ForceOff;
            C.V0 = VarOf.at(N);
          }
          Constraints.push_back(C);
          break;
        }
        CharConstraint C;
        C.Kind = CharConstraint::Kind::Equation;
        C.Op = Node.Op;
        C.V0 = VarOf.at(N);
        C.V1 = VarOf.at(A);
        C.V2 = VarOf.at(B);
        Constraints.push_back(C);
        break;
      }
      }
    }

    // Partition constraints per condition, on the surviving classes.
    for (SignalId Cond : Sys.conditions()) {
      ForestNodeId Parent = Forest.nodeOf(Sys.signalClock(Cond));
      ForestNodeId Pos = Forest.nodeOf(Sys.posLiteral(Cond));
      ForestNodeId Neg = Forest.nodeOf(Sys.negLiteral(Cond));
      if (Parent == InvalidForestNode)
        continue; // Whole condition proved empty.
      CharConstraint C;
      if (Pos == InvalidForestNode && Neg == InvalidForestNode)
        continue;
      if (Pos == InvalidForestNode || Neg == InvalidForestNode) {
        // One side empty: the other equals the parent clock.
        ForestNodeId Side = (Pos == InvalidForestNode) ? Neg : Pos;
        if (Side == Parent)
          continue;
        C.Kind = CharConstraint::Kind::Equal;
        C.V0 = VarOf.at(Parent);
        C.V1 = VarOf.at(Side);
        Constraints.push_back(C);
        continue;
      }
      C.Kind = CharConstraint::Kind::Partition;
      C.V0 = VarOf.at(Parent);
      C.V1 = VarOf.at(Pos);
      C.V2 = VarOf.at(Neg);
      Constraints.push_back(C);
    }

    BddManager ChiMgr;
    ChiMgr.setBudget(&Bud);
    unsigned NumVars = static_cast<unsigned>(VarOf.size());
    CharFuncResult CF = buildCharFunc(ChiMgr, NumVars, Constraints);
    if (CF.Chi.isValid() && !Bud.exhausted())
      R.DeterminedVars = analyzeCharFunc(ChiMgr, CF.Chi, NumVars);

    R.NumVars = NumVars;
    R.TimeMs = Bud.elapsedMs();
    R.Verdict = Bud.verdict();
    R.BddNodes = Forest.liveBddNodes() + (CF.Chi.isValid()
                                              ? ChiMgr.countNodes(CF.Chi)
                                              : ChiMgr.numNodes());
    R.FreeClocks = static_cast<unsigned>(Forest.freeClocks().size());
    return R;
  }
};

} // namespace

std::unique_ptr<ClockSolver> sigc::makeSolver(SolverKind Kind) {
  switch (Kind) {
  case SolverKind::TreeBdd:
    return std::make_unique<TreeBddSolver>();
  case SolverKind::CharFunc:
    return std::make_unique<CharFuncSolver>();
  case SolverKind::Hybrid:
    return std::make_unique<HybridSolver>();
  }
  return nullptr;
}
