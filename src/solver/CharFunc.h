//===--- CharFunc.h - Characteristic-function construction ------*- C++-*-===//
///
/// \file
/// Builds the characteristic function χ ⊆ {0,1}^n of a system of boolean
/// clock equations: one BDD presence variable per clock variable, χ the
/// conjunction of
///   * h_a ⇔ h_b                for every equality,
///   * h_k ⇔ h_a <op> h_b       for every equation,
///   * (h_[C] ∨ h_[¬C] ⇔ h_ĉ) ∧ ¬(h_[C] ∧ h_[¬C])  for every condition.
///
/// This is the "very common representation in hardware verification" the
/// paper benchmarks against. Construction is budget-bounded; the returned
/// χ is invalid when the budget tripped.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_SOLVER_CHARFUNC_H
#define SIGNALC_SOLVER_CHARFUNC_H

#include "bdd/Bdd.h"
#include "clock/ClockSystem.h"

#include <vector>

namespace sigc {

/// An abstract constraint feeding the characteristic function. Variables
/// are dense indices chosen by the caller.
struct CharConstraint {
  enum class Kind {
    Equal,     ///< v0 ⇔ v1
    Equation,  ///< v0 ⇔ v1 <op> v2
    Partition, ///< (v1 ∨ v2 ⇔ v0) ∧ ¬(v1 ∧ v2)   [v0=ĉ, v1=[C], v2=[¬C]]
    ForceOff,  ///< ¬v0 (a clock proved empty)
  };
  Kind Kind = Kind::Equal;
  ClockOp Op = ClockOp::Inter;
  uint32_t V0 = 0, V1 = 0, V2 = 0;
};

/// Result of a characteristic-function build.
struct CharFuncResult {
  BddRef Chi;             ///< Invalid when the budget tripped.
  uint64_t PeakNodes = 0; ///< Manager size after construction.
  unsigned NumVars = 0;
  unsigned DeterminedVars = 0; ///< Filled by analyzeCharFunc().
};

/// Conjoins all \p Constraints over \p NumVars variables into χ.
CharFuncResult buildCharFunc(BddManager &Mgr, unsigned NumVars,
                             const std::vector<CharConstraint> &Constraints);

/// Runs the complete resolution step on χ: counts the variables whose value
/// is functionally determined by the others (the explicit definitions the
/// compiler is after). Polynomial in |χ| — the paper's point is that |χ|
/// itself is the problem. \returns the count, or 0 if χ is invalid.
unsigned analyzeCharFunc(BddManager &Mgr, BddRef Chi, unsigned NumVars);

/// Translates a ClockSystem into constraints with variable ids equal to
/// the system's ClockVarIds.
std::vector<CharConstraint> systemConstraints(const ClockSystem &Sys);

} // namespace sigc

#endif // SIGNALC_SOLVER_CHARFUNC_H
