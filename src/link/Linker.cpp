//===--- Linker.cpp -------------------------------------------------------===//

#include "link/Linker.h"

#include "link/JointClockSpace.h"
#include "link/StepFusion.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <thread>
#include <unordered_map>

using namespace sigc;

namespace {

double msSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

/// Root of \p N's tree.
ForestNodeId treeRootOf(const ClockForest &Forest, ForestNodeId N) {
  while (Forest.node(N).Parent != InvalidForestNode)
    N = Forest.node(N).Parent;
  return N;
}

LinkResult fail(std::string Error) {
  LinkResult R;
  R.Error = std::move(Error);
  return R;
}

/// Proves clock(A) ⊆ clock(B) inside one producer: both exports must live
/// in one tree and the relative BDDs must satisfy the implication. This
/// is the whole point of the canonical forest: an interface obligation is
/// one (non-allocating) implies() call, never a re-resolution.
bool producerProves(Compilation &P, SignalId A, SignalId B,
                    bool &SameTree) {
  ClockForest &F = *P.Forest;
  ForestNodeId NA = F.nodeOf(P.Clocks.signalClock(A));
  ForestNodeId NB = F.nodeOf(P.Clocks.signalClock(B));
  if (NA == InvalidForestNode || NB == InvalidForestNode) {
    SameTree = false;
    return false;
  }
  SameTree = treeRootOf(F, NA) == treeRootOf(F, NB);
  if (!SameTree)
    return false;
  return F.bddManager().implies(F.node(NA).Bdd, F.node(NB).Bdd);
}

} // namespace

const LinkChannel *LinkedSystem::channelInto(unsigned Unit,
                                             SignalId Sig) const {
  for (const LinkChannel &Ch : Channels)
    if (Ch.Consumer == Unit && Ch.ConsumerSig == Sig)
      return &Ch;
  return nullptr;
}

std::string LinkedSystem::dump() const {
  std::string Out = "linked system: " + std::to_string(Units.size()) +
                    " process(es), " + std::to_string(Channels.size()) +
                    " channel(s)\n";
  Out += "  order:";
  for (unsigned U : Order)
    Out += " " + Units[U].Name;
  Out += "\n";
  for (const LinkChannel &Ch : Channels) {
    Out += "  channel " + Ch.Name + ": " + Units[Ch.Producer].Name + " -> " +
           Units[Ch.Consumer].Name;
    Out += Ch.ConsumerClockInput >= 0 ? "  [binds consumer clock]"
                                      : "  [dynamically checked]";
    Out += "\n";
  }
  Out += "  roots (" + std::to_string(Roots.size()) + "):";
  for (const LinkedRoot &R : Roots)
    Out += " " + Units[R.Unit].Name + ":" + R.Name;
  Out += "\n";
  Out += endochronous()
             ? "  endochronous: yes (single unbound root paces the system)\n"
             : "  endochronous: no (" + std::to_string(Roots.size()) +
                   " unbound roots)\n";
  Out += "  external inputs:";
  for (const LinkedExternal &E : ExternalInputs)
    Out += " " + E.Name;
  Out += "\n  external outputs:";
  for (const LinkedExternal &E : ExternalOutputs)
    Out += " " + E.Name;
  Out += "\n";
  return Out;
}

LinkResult sigc::linkCompiled(std::vector<LinkUnit> Units,
                              const LinkOptions &Options) {
  auto T0 = std::chrono::steady_clock::now();
  if (Units.empty())
    return fail("nothing to link: no processes given");

  for (LinkUnit &U : Units) {
    if (!U.Comp || !U.Comp->Ok)
      return fail("process '" + U.Name + "' did not compile; cannot link:\n" +
                  (U.Comp ? U.Comp->Diags.render() : std::string()));
    U.Iface = extractInterface(*U.Comp);
    if (U.Name.empty())
      U.Name = U.Iface.ProcessName;
  }
  for (size_t I = 0; I < Units.size(); ++I)
    for (size_t J = I + 1; J < Units.size(); ++J)
      if (Units[I].Name == Units[J].Name)
        return fail("duplicate process name '" + Units[I].Name +
                    "' in the link");

  auto Sys = std::make_unique<LinkedSystem>();
  Sys->Units = std::move(Units);

  // --- Channel matching: import name -> unique exporter ------------------
  std::unordered_map<std::string, std::pair<unsigned, const InterfaceSignal *>>
      Exports;
  for (unsigned U = 0; U < Sys->Units.size(); ++U)
    for (const InterfaceSignal &E : Sys->Units[U].Iface.Exports) {
      auto [It, Inserted] = Exports.emplace(E.Name, std::make_pair(U, &E));
      if (!Inserted)
        return fail("signal '" + E.Name + "' is exported by both '" +
                    Sys->Units[It->second.first].Name + "' and '" +
                    Sys->Units[U].Name +
                    "'; linked exports must be unique");
    }

  for (unsigned U = 0; U < Sys->Units.size(); ++U) {
    for (const InterfaceSignal &Imp : Sys->Units[U].Iface.Imports) {
      auto It = Exports.find(Imp.Name);
      if (It == Exports.end()) {
        Sys->ExternalInputs.push_back(
            {U, Imp.Sig, Imp.Name, Imp.Type});
        continue;
      }
      unsigned P = It->second.first;
      const InterfaceSignal &Exp = *It->second.second;
      if (P == U)
        return fail("process '" + Sys->Units[U].Name +
                    "' both imports and exports '" + Imp.Name + "'");
      if (Exp.Type != Imp.Type)
        return fail("channel '" + Imp.Name + "': exporter '" +
                    Sys->Units[P].Name + "' has type " + typeName(Exp.Type) +
                    " but importer '" + Sys->Units[U].Name + "' expects " +
                    typeName(Imp.Type));
      LinkChannel Ch;
      Ch.Producer = P;
      Ch.Consumer = U;
      Ch.ProducerSig = Exp.Sig;
      Ch.ConsumerSig = Imp.Sig;
      Ch.Name = Imp.Name;
      Sys->Channels.push_back(Ch);
    }
  }

  // Exports nobody consumed stay visible outside the linked system.
  for (unsigned U = 0; U < Sys->Units.size(); ++U)
    for (const InterfaceSignal &E : Sys->Units[U].Iface.Exports) {
      bool Consumed = false;
      for (const LinkChannel &Ch : Sys->Channels)
        Consumed |= Ch.Producer == U && Ch.ProducerSig == E.Sig;
      if (!Consumed)
        Sys->ExternalOutputs.push_back({U, E.Sig, E.Name, E.Type});
    }

  // --- Clock-interface compatibility -------------------------------------
  // For each channel, find how the consumer computes the import's clock.
  // A free-root class simply adopts the producer's presence (its tick
  // input is bound); any other class is consumer-derived and is checked
  // dynamically by the executor.
  for (LinkChannel &Ch : Sys->Channels) {
    Compilation &Cons = *Sys->Units[Ch.Consumer].Comp;
    int Slot = Cons.Step.SignalClockSlot[Ch.ConsumerSig];
    if (Slot < 0)
      return fail("channel '" + Ch.Name + "': importer '" +
                  Sys->Units[Ch.Consumer].Name +
                  "' proved the signal's clock null; the connection is "
                  "dead");
    Ch.ConsumerClockInput = -1;
    for (size_t CI = 0; CI < Cons.Step.ClockInputs.size(); ++CI)
      if (Cons.Step.ClockInputs[CI].Slot == Slot)
        Ch.ConsumerClockInput = static_cast<int>(CI);

    // Resolve the descriptor indices once, here, so every executor (and
    // any other runtime wiring) addresses the channel by array index.
    Compilation &Prod = *Sys->Units[Ch.Producer].Comp;
    for (size_t OI = 0; OI < Prod.Step.Outputs.size(); ++OI)
      if (Prod.Step.Outputs[OI].Sig == Ch.ProducerSig)
        Ch.ProducerOutput = static_cast<int>(OI);
    for (size_t II = 0; II < Cons.Step.Inputs.size(); ++II)
      if (Cons.Step.Inputs[II].Sig == Ch.ConsumerSig)
        Ch.ConsumerInput = static_cast<int>(II);
    if (Ch.ProducerOutput < 0)
      return fail("channel '" + Ch.Name + "': producer '" +
                  Sys->Units[Ch.Producer].Name +
                  "' has no output descriptor for the export");
    if (Ch.ConsumerInput < 0)
      return fail("channel '" + Ch.Name + "': consumer '" +
                  Sys->Units[Ch.Consumer].Name +
                  "' has no input descriptor for the import");
  }

  // --- Scheduling priority: Kahn over the unit-level channel dataflow ----
  // A feedback cycle between units is NOT an error any more: fusion
  // schedules at instruction granularity, where only a true same-instant
  // dependency cycle (diagnosed there, with the channel path) is fatal.
  // The Kahn order is kept as the round priority, so acyclic systems fuse
  // to plain concatenation in topological order.
  std::vector<unsigned> Prio;
  {
    std::vector<unsigned> InDeg(Sys->Units.size(), 0);
    std::vector<std::vector<unsigned>> Succ(Sys->Units.size());
    for (const LinkChannel &Ch : Sys->Channels) {
      // Count each producer->consumer pair once.
      if (std::find(Succ[Ch.Producer].begin(), Succ[Ch.Producer].end(),
                    Ch.Consumer) == Succ[Ch.Producer].end()) {
        Succ[Ch.Producer].push_back(Ch.Consumer);
        ++InDeg[Ch.Consumer];
      }
    }
    std::vector<unsigned> Ready;
    for (unsigned U = 0; U < Sys->Units.size(); ++U)
      if (InDeg[U] == 0)
        Ready.push_back(U);
    while (!Ready.empty()) {
      // Smallest index first: a deterministic order.
      auto It = std::min_element(Ready.begin(), Ready.end());
      unsigned U = *It;
      Ready.erase(It);
      Prio.push_back(U);
      for (unsigned V : Succ[U])
        if (--InDeg[V] == 0)
          Ready.push_back(V);
    }
  }

  // The joint BDD clock space is built lazily: only links with an
  // obligation spanning two producers pay for it.
  std::unique_ptr<JointClockSpace> Joint;
  auto jointSpace = [&]() -> JointClockSpace & {
    if (!Joint)
      Joint = std::make_unique<JointClockSpace>(*Sys, Options.Limits);
    return *Joint;
  };

  // Consumer-imposed relations between imported clocks must be *proved*
  // on the exporting side: group the channels of one consumer by forest
  // node (same node = the consumer demands synchrony), then discharge
  // each demand with implies() on the producer's relative BDDs — or, when
  // the demand spans two producers, with implies() in the joint space.
  for (unsigned U = 0; U < Sys->Units.size(); ++U) {
    Compilation &Cons = *Sys->Units[U].Comp;
    std::map<ForestNodeId, std::vector<LinkChannel *>> ByNode;
    for (LinkChannel &Ch : Sys->Channels)
      if (Ch.Consumer == U)
        ByNode[Cons.Forest->nodeOf(Cons.Clocks.signalClock(Ch.ConsumerSig))]
            .push_back(&Ch);

    for (auto &[Node, Chans] : ByNode) {
      for (size_t K = 1; K < Chans.size(); ++K) {
        LinkChannel &A = *Chans[0];
        LinkChannel &B = *Chans[K];
        if (A.Producer != B.Producer) {
          if (!jointSpace().proveEqual(A.Producer, A.ProducerSig, B.Producer,
                                       B.ProducerSig))
            return fail("imports '" + A.Name + "' and '" + B.Name +
                        "' of '" + Sys->Units[U].Name +
                        "' must be synchronous, but the joint clock space "
                        "across producers '" + Sys->Units[A.Producer].Name +
                        "' and '" + Sys->Units[B.Producer].Name +
                        "' cannot prove their clocks equal" +
                        (jointSpace().exhausted()
                             ? std::string(" (") +
                                   budgetVerdictName(jointSpace().verdict()) +
                                   ": the joint-space budget tripped)"
                             : ""));
          continue;
        }
        Compilation &Prod = *Sys->Units[A.Producer].Comp;
        bool SameTree = false;
        bool Fwd = producerProves(Prod, A.ProducerSig, B.ProducerSig,
                                  SameTree);
        bool Bwd = SameTree && producerProves(Prod, B.ProducerSig,
                                              A.ProducerSig, SameTree);
        if (!Fwd || !Bwd)
          return fail("imports '" + A.Name + "' and '" + B.Name + "' of '" +
                      Sys->Units[U].Name +
                      "' must be synchronous, but producer '" +
                      Sys->Units[A.Producer].Name +
                      "' cannot prove their clocks equal" +
                      (SameTree ? " (the relative BDDs differ)"
                                : " (the exports live in different clock "
                                  "trees)"));
      }
    }

    // Proper inclusions between distinct import classes of one tree.
    std::vector<std::pair<ForestNodeId, LinkChannel *>> Reps;
    for (auto &[Node, Chans] : ByNode)
      Reps.emplace_back(Node, Chans[0]);
    ClockForest &CF = *Cons.Forest;
    for (size_t I = 0; I < Reps.size(); ++I)
      for (size_t J = 0; J < Reps.size(); ++J) {
        if (I == J)
          continue;
        ForestNodeId NI = Reps[I].first, NJ = Reps[J].first;
        if (treeRootOf(CF, NI) != treeRootOf(CF, NJ))
          continue; // Unrelated trees: no obligation.
        if (!CF.bddManager().implies(CF.node(NI).Bdd, CF.node(NJ).Bdd))
          continue; // The consumer does not demand NI ⊆ NJ.
        LinkChannel &A = *Reps[I].second;
        LinkChannel &B = *Reps[J].second;
        if (A.Producer != B.Producer) {
          if (!jointSpace().proveIncluded(A.Producer, A.ProducerSig,
                                          B.Producer, B.ProducerSig))
            return fail("import '" + A.Name + "' of '" + Sys->Units[U].Name +
                        "' must be contained in the clock of import '" +
                        B.Name + "', but the joint clock space across "
                        "producers '" + Sys->Units[A.Producer].Name +
                        "' and '" + Sys->Units[B.Producer].Name +
                        "' cannot prove the inclusion" +
                        (jointSpace().exhausted()
                             ? std::string(" (") +
                                   budgetVerdictName(jointSpace().verdict()) +
                                   ": the joint-space budget tripped)"
                             : ""));
          continue;
        }
        Compilation &Prod = *Sys->Units[A.Producer].Comp;
        bool SameTree = false;
        if (!producerProves(Prod, A.ProducerSig, B.ProducerSig, SameTree))
          return fail("import '" + A.Name + "' of '" + Sys->Units[U].Name +
                      "' must be contained in the clock of import '" +
                      B.Name + "', but producer '" +
                      Sys->Units[A.Producer].Name +
                      "' cannot prove the inclusion" +
                      (SameTree ? " (implies() refuted it)"
                                : " (the exports live in different clock "
                                  "trees)"));
      }
  }

  // --- No re-resolution: the forests are exactly as compiled -------------
  for (const LinkUnit &U : Sys->Units) {
    uint64_t Now = U.Comp->Forest->dfsOrder().size();
    Sys->ForestNodesAtLink.push_back(Now);
    if (Now != U.Iface.ForestNodes)
      return fail("internal error: linking changed the forest of '" +
                  U.Name + "' (" + std::to_string(U.Iface.ForestNodes) +
                  " nodes at interface extraction, " + std::to_string(Now) +
                  " at link)");
  }

  // --- System roots: free clocks no channel binds ------------------------
  for (unsigned U = 0; U < Sys->Units.size(); ++U) {
    const StepProgram &Step = Sys->Units[U].Comp->Step;
    for (size_t CI = 0; CI < Step.ClockInputs.size(); ++CI) {
      bool Bound = false;
      for (const LinkChannel &Ch : Sys->Channels)
        Bound |= Ch.Consumer == U &&
                 Ch.ConsumerClockInput == static_cast<int>(CI);
      if (!Bound)
        Sys->Roots.push_back({U, static_cast<int>(CI),
                              Step.ClockInputs[CI].Name});
    }
  }

  // --- Fusion: one CompiledStep for the whole system ---------------------
  FusionResult Fusion = fuseLinkedSteps(*Sys, Prio);
  if (!Fusion.Ok)
    return fail(std::move(Fusion.Error));
  Sys->Fused = std::move(Fusion.Fused);
  Sys->DynChecks = std::move(Fusion.DynChecks);
  Sys->Order = std::move(Fusion.Order);

  LinkResult R;
  R.Sys = std::move(Sys);
  R.LinkMs = msSince(T0);
  return R;
}

namespace {

/// Compiles every (buffer, source, process) triple, one thread each when
/// parallel. Compilations are fully independent: each owns its arena,
/// interner, BDD manager and diagnostics.
std::vector<LinkUnit> compileUnits(
    const std::vector<std::tuple<std::string, std::string, std::string>>
        &Jobs,
    const LinkOptions &Options) {
  std::vector<LinkUnit> Units(Jobs.size());
  auto compileOne = [&](size_t I) {
    const auto &[Buffer, Source, Process] = Jobs[I];
    CompileOptions CO;
    CO.Limits = Options.Limits;
    CO.ProcessName = Process;
    Units[I].Name = Process;
    Units[I].Comp = compileSource(Buffer, Source, CO);
  };
  if (Options.ParallelCompile && Jobs.size() > 1) {
    std::vector<std::thread> Workers;
    Workers.reserve(Jobs.size());
    for (size_t I = 0; I < Jobs.size(); ++I)
      Workers.emplace_back(compileOne, I);
    for (std::thread &W : Workers)
      W.join();
  } else {
    for (size_t I = 0; I < Jobs.size(); ++I)
      compileOne(I);
  }
  return Units;
}

LinkResult linkAfterCompile(std::vector<LinkUnit> Units, double CompileMs,
                            const LinkOptions &Options) {
  LinkResult R = linkCompiled(std::move(Units), Options);
  R.CompileMs = CompileMs;
  return R;
}

} // namespace

LinkResult sigc::compileAndLink(const std::string &BufferName,
                                const std::string &Source,
                                const std::vector<std::string> &ProcessNames,
                                const LinkOptions &Options) {
  if (ProcessNames.empty())
    return fail("--link needs at least one process name");
  auto T0 = std::chrono::steady_clock::now();
  std::vector<std::tuple<std::string, std::string, std::string>> Jobs;
  for (const std::string &P : ProcessNames)
    Jobs.emplace_back(BufferName, Source, P);
  std::vector<LinkUnit> Units = compileUnits(Jobs, Options);
  return linkAfterCompile(std::move(Units), msSince(T0), Options);
}

LinkResult sigc::compileAndLinkSources(const std::vector<LinkInput> &Inputs,
                                       const LinkOptions &Options) {
  auto T0 = std::chrono::steady_clock::now();
  std::vector<std::tuple<std::string, std::string, std::string>> Jobs;
  for (const LinkInput &In : Inputs)
    Jobs.emplace_back(In.Name.empty() ? "<link>" : In.Name, In.Source,
                      std::string());
  std::vector<LinkUnit> Units = compileUnits(Jobs, Options);
  for (size_t I = 0; I < Units.size(); ++I)
    Units[I].Name = std::string(); // Taken from the compiled process.
  return linkAfterCompile(std::move(Units), msSince(T0), Options);
}
