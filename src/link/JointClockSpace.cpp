//===--- JointClockSpace.cpp ----------------------------------------------===//

#include "link/JointClockSpace.h"

using namespace sigc;

namespace {

/// Root of \p N's tree.
ForestNodeId rootOfTree(const ClockForest &Forest, ForestNodeId N) {
  while (Forest.node(N).Parent != InvalidForestNode)
    N = Forest.node(N).Parent;
  return N;
}

} // namespace

JointClockSpace::JointClockSpace(LinkedSystem &S, const Budget &Limits)
    : Sys(S), Bud(Limits),
      Joint([&S] {
        unsigned Vars = 0;
        for (const LinkUnit &U : S.Units)
          Vars += U.Comp->Bdds.numVars() + 1;
        return Vars;
      }()) {
  Bud.start();
  Joint.setBudget(&Bud);
  // The joint space aggregates every unit's conditions, so it is the one
  // manager that grows with the number of link units: garbage-collect it
  // under node-budget pressure (memoized translations hold external
  // references; sweeps reclaim only unreferenced intermediates).
  Joint.enableGC();

  CondSignalOf.resize(Sys.Units.size());
  DfsPos.resize(Sys.Units.size());
  for (unsigned U = 0; U < Sys.Units.size(); ++U) {
    ClockForest &F = *Sys.Units[U].Comp->Forest;
    for (unsigned N = 0; N < F.numNodes(); ++N) {
      const ClockNode &Node = F.node(static_cast<ForestNodeId>(N));
      if (!Node.Alive || Node.Def != ClockDefKind::Literal)
        continue;
      BddVar V = F.conditionVar(Node.CondSignal);
      if (V != ~0u)
        CondSignalOf[U][V] = Node.CondSignal;
    }
    std::vector<ForestNodeId> Dfs = F.dfsOrder();
    for (size_t I = 0; I < Dfs.size(); ++I)
      DfsPos[U][Dfs[I]] = static_cast<int>(I);
  }
}

BddVar JointClockSpace::namedVar(const std::string &Key) {
  auto It = NamedVars.find(Key);
  if (It != NamedVars.end())
    return It->second;
  BddVar V = NextVar++;
  NamedVars.emplace(Key, V);
  return V;
}

std::pair<unsigned, SignalId>
JointClockSpace::canonicalSignal(unsigned U, SignalId S) const {
  // Follow channel imports to the producing export. The channel relation
  // on signals has no cycles (an export is computed, never imported, by
  // its unit), but guard the walk anyway.
  for (size_t Hops = 0; Hops <= Sys.Channels.size(); ++Hops) {
    const LinkChannel *Into = Sys.channelInto(U, S);
    if (!Into)
      break;
    U = Into->Producer;
    S = Into->ProducerSig;
  }
  return {U, S};
}

BddVar JointClockSpace::jointCondVar(unsigned U, BddVar V) {
  auto It = CondSignalOf[U].find(V);
  if (It == CondSignalOf[U].end())
    return namedVar("unk:" + std::to_string(U) + ":" + std::to_string(V));
  auto [CU, CS] = canonicalSignal(U, It->second);
  Compilation &C = *Sys.Units[CU].Comp;
  std::string Name(C.names().spelling(C.Kernel->Signals[CS].Name));
  // An unmatched import is paced by the environment: same name, same
  // external value stream, same joint variable — across all importers.
  for (const LinkedExternal &E : Sys.ExternalInputs)
    if (E.Unit == CU && E.Sig == CS)
      return namedVar("ext:" + Name);
  return namedVar("sig:" + std::to_string(CU) + ":" + Name);
}

BddRef JointClockSpace::remember(
    std::map<std::pair<unsigned, unsigned>, BddRef> &Memo,
    std::pair<unsigned, unsigned> Key, BddRef R) {
  Joint.addRef(R); // Keep memoized functions alive across sweeps.
  Memo.emplace(Key, R);
  return R;
}

BddRef JointClockSpace::translate(unsigned U, BddRef F) {
  if (!F.isValid() || F.isTerminal())
    return F;
  std::pair<unsigned, unsigned> Key{U, F.index()};
  auto It = XlatMemo.find(Key);
  if (It != XlatMemo.end())
    return It->second;

  const BddManager &Mu = Sys.Units[U].Comp->Bdds;
  // Protect each finished subresult before the next joint-manager call:
  // a GC-enabled manager may sweep at any public-op entry.
  BddRef Hi = translate(U, Mu.nodeHigh(F));
  Joint.addRef(Hi);
  BddRef Lo = translate(U, Mu.nodeLow(F));
  Joint.addRef(Lo);
  BddRef V = Joint.var(jointCondVar(U, Mu.nodeVar(F)));
  Joint.addRef(V);
  BddRef R = Joint.ite(V, Hi, Lo);
  Joint.decRef(V);
  Joint.decRef(Lo);
  Joint.decRef(Hi);
  return remember(XlatMemo, Key, R);
}

BddRef JointClockSpace::rootFn(unsigned U, ForestNodeId Root) {
  std::pair<unsigned, unsigned> Key{U, static_cast<unsigned>(Root)};
  auto It = RootMemo.find(Key);
  if (It != RootMemo.end())
    return It->second;

  const StepProgram &Step = Sys.Units[U].Comp->Step;
  int Slot = -1;
  auto Pos = DfsPos[U].find(Root);
  if (Pos != DfsPos[U].end())
    Slot = Pos->second;
  int CI = -1;
  for (size_t I = 0; I < Step.ClockInputs.size(); ++I)
    if (Step.ClockInputs[I].Slot == Slot)
      CI = static_cast<int>(I);

  BddRef R;
  if (CI < 0) {
    // Derived/residual root: its pacing is a formula over other trees we
    // do not re-derive here — a fresh variable is conservative.
    R = Joint.var(namedVar("res:" + std::to_string(U) + ":" +
                           std::to_string(Root)));
  } else {
    const LinkChannel *Binding = nullptr;
    for (const LinkChannel &Ch : Sys.Channels)
      if (Ch.Consumer == U && Ch.ConsumerClockInput == CI && !Binding)
        Binding = &Ch;
    if (!Binding) {
      // Unbound free root: the environment paces it by *name* (the
      // executor interns ticks per name), so name equality is clock
      // equality across units.
      R = Joint.var(namedVar("root:" + Step.ClockInputs[CI].Name));
    } else if (InProgress.count(Key)) {
      R = Joint.var(namedVar("cyc:" + std::to_string(U) + ":" +
                             std::to_string(Root)));
    } else {
      InProgress.insert(Key);
      Compilation &Prod = *Sys.Units[Binding->Producer].Comp;
      ForestNodeId PN =
          Prod.Forest->nodeOf(Prod.Clocks.signalClock(Binding->ProducerSig));
      R = PN == InvalidForestNode
              ? Joint.bottom()
              : presence(Binding->Producer, PN);
      InProgress.erase(Key);
    }
  }
  return remember(RootMemo, Key, R);
}

BddRef JointClockSpace::presence(unsigned U, ForestNodeId N) {
  if (N == InvalidForestNode)
    return Joint.bottom();
  std::pair<unsigned, unsigned> Key{U, static_cast<unsigned>(N)};
  auto It = PresMemo.find(Key);
  if (It != PresMemo.end())
    return It->second;

  ClockForest &F = *Sys.Units[U].Comp->Forest;
  BddRef RF = rootFn(U, rootOfTree(F, N));     // Memoized: externally ref'd.
  BddRef T = translate(U, F.node(N).Bdd);      // Likewise.
  BddRef R = Joint.apply_and(RF, T);
  return remember(PresMemo, Key, R);
}

bool JointClockSpace::proveEqual(unsigned UA, SignalId SigA, unsigned UB,
                                 SignalId SigB) {
  Compilation &CA = *Sys.Units[UA].Comp;
  Compilation &CB = *Sys.Units[UB].Comp;
  ForestNodeId NA = CA.Forest->nodeOf(CA.Clocks.signalClock(SigA));
  ForestNodeId NB = CB.Forest->nodeOf(CB.Clocks.signalClock(SigB));
  if (NA == InvalidForestNode || NB == InvalidForestNode)
    return false;
  BddRef FA = presence(UA, NA);
  BddRef FB = presence(UB, NB);
  if (!FA.isValid() || !FB.isValid())
    return false;
  return Joint.implies(FA, FB) && Joint.implies(FB, FA) && !Bud.exhausted();
}

bool JointClockSpace::proveIncluded(unsigned UA, SignalId SigA, unsigned UB,
                                    SignalId SigB) {
  Compilation &CA = *Sys.Units[UA].Comp;
  Compilation &CB = *Sys.Units[UB].Comp;
  ForestNodeId NA = CA.Forest->nodeOf(CA.Clocks.signalClock(SigA));
  ForestNodeId NB = CB.Forest->nodeOf(CB.Clocks.signalClock(SigB));
  if (NA == InvalidForestNode || NB == InvalidForestNode)
    return false;
  BddRef FA = presence(UA, NA);
  BddRef FB = presence(UB, NB);
  if (!FA.isValid() || !FB.isValid())
    return false;
  return Joint.implies(FA, FB) && !Bud.exhausted();
}
