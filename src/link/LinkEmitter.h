//===--- LinkEmitter.h - C emission for linked systems ----------*- C++-*-===//
///
/// \file
/// Renders a LinkedSystem as one self-contained C source file: each unit's
/// step function is emitted unchanged by CEmitter (one `<proc>_step` per
/// process), followed by a generated system driver —
///
///   <sys>_state_t      every unit's state struct,
///   <sys>_in_t         the system's external ticks and input values
///                      (channel-bound ticks and values do not appear),
///   <sys>_out_t        the external outputs,
///   <sys>_step()       calls the units in link order and wires the
///                      channels between their in/out structs,
///   <sys>_step_batch() runs N instants per-unit-batched in fixed-size
///                      chunks (each unit runs a whole window before
///                      the next unit starts — the link order is
///                      feedback-free), mirroring LinkedExecutor::stepN.
///
/// External fields are deduplicated by name, mirroring the interpreter's
/// name-keyed environment: two units importing the same unmatched signal
/// read the same field. linkedCInterface() exposes the exact field list
/// so harness generators (the differential oracle) stay in lockstep with
/// the emitted struct layout.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_LINK_LINKEMITTER_H
#define SIGNALC_LINK_LINKEMITTER_H

#include "codegen/CEmitter.h"
#include "link/Linker.h"

#include <string>
#include <vector>

namespace sigc {

/// The external C interface of a linked system: one entry per struct
/// field, with the environment name it corresponds to.
struct LinkedCInterface {
  struct TickField {
    std::string Field;     ///< "tick_<sanitized>" member of <sys>_in_t.
    std::string ClockName; ///< Environment clock name ("^X", ...).
  };
  struct ValueField {
    std::string Field;      ///< Member of <sys>_in_t / <sys>_out_t.
    std::string SignalName; ///< Environment signal name.
    TypeKind Type = TypeKind::Unknown;
  };
  std::vector<TickField> Ticks;
  std::vector<ValueField> Inputs;
  std::vector<ValueField> Outputs;
};

/// Computes the deduplicated external field lists of \p Sys.
LinkedCInterface linkedCInterface(const LinkedSystem &Sys);

/// C symbol prefix of unit \p U ("<sanitized name>", suffixed on clashes).
std::string linkedUnitSymbol(const LinkedSystem &Sys, unsigned U);

/// Emits the complete linked C translation unit. \p SysName names the
/// system-level symbols. Options.Nested selects each unit's control
/// structure; Options.WithDriver appends a deterministic main().
std::string emitLinkedC(const LinkedSystem &Sys, const std::string &SysName,
                        const CEmitOptions &Options);

} // namespace sigc

#endif // SIGNALC_LINK_LINKEMITTER_H
