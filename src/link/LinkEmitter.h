//===--- LinkEmitter.h - C emission for linked systems ----------*- C++-*-===//
///
/// \file
/// Renders a LinkedSystem as one self-contained C source file by
/// emitting the *fused* CompiledStep (see link/StepFusion.h) through
/// the ordinary single-process CEmitter: the linker has already
/// interleaved every unit's bytecode along the cross-process dependence
/// order and turned channels into slot copies, so the linked system
/// compiles to exactly the code shape a monolithic compilation of the
/// composed program would get —
///
///   <sys>_state_t       the fused delay state (plus counters),
///   <sys>_in_t          the system's external ticks and input values
///                       (channel-bound ticks and values do not appear),
///   <sys>_out_t         the external outputs,
///   <sys>_step()        one fused reaction,
///   <sys>_step_batch()  N instants over input/output arrays,
///   <sys>_step_fleet()  the lane-blocked many-instance entry point.
///
/// External fields are deduplicated by name, mirroring the
/// interpreter's name-keyed environment: two units importing the same
/// unmatched signal read the same field. linkedCInterface() exposes the
/// exact field list so harness generators (the differential oracle)
/// stay in lockstep with the emitted struct layout.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_LINK_LINKEMITTER_H
#define SIGNALC_LINK_LINKEMITTER_H

#include "codegen/CEmitter.h"
#include "link/Linker.h"

#include <string>
#include <vector>

namespace sigc {

/// The external C interface of a linked system: one entry per struct
/// field, with the environment name it corresponds to.
struct LinkedCInterface {
  struct TickField {
    std::string Field;     ///< "tick_<sanitized>" member of <sys>_in_t.
    std::string ClockName; ///< Environment clock name ("^X", ...).
  };
  struct ValueField {
    std::string Field;      ///< Member of <sys>_in_t / <sys>_out_t.
    std::string SignalName; ///< Environment signal name.
    TypeKind Type = TypeKind::Unknown;
  };
  std::vector<TickField> Ticks;
  std::vector<ValueField> Inputs;
  std::vector<ValueField> Outputs;
};

/// Computes the deduplicated external field lists of \p Sys.
LinkedCInterface linkedCInterface(const LinkedSystem &Sys);

/// Emits the complete linked C translation unit from the fused step.
/// \p SysName names the system-level symbols. Options.WithDriver
/// appends a deterministic main().
std::string emitLinkedC(const LinkedSystem &Sys, const std::string &SysName,
                        const CEmitOptions &Options);

} // namespace sigc

#endif // SIGNALC_LINK_LINKEMITTER_H
