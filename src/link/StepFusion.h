//===--- StepFusion.h - Cross-unit CompiledStep fusion ----------*- C++-*-===//
///
/// \file
/// Fuses the units of a link into ONE CompiledStep: every unit's bytecode
/// is rebased into a shared slot space (clock, value, scratch, state and
/// constant pools concatenated/deduplicated) and interleaved along the
/// cross-process dependence order at *instruction* granularity. Channels
/// disappear into the bytecode:
///
///   * a consumer's ReadClockInput whose clock a channel binds becomes a
///     CopyClock from the producer's export clock slot,
///   * a consumer's ReadSignal of an imported signal becomes a CopyValue
///     from the producer's export value slot,
///   * a producer's WriteOutput of a channel-consumed export is dropped
///     (only external outputs reach the environment),
///   * dynamic channels (consumer derives the clock itself) get a
///     typed-zero prelude on the producer's export slot, so a mismatch
///     instant reads a type-correct zero rather than stale garbage, plus
///     a DynCheck record the executor verifies after each instant.
///
/// Scheduling works on per-unit instruction queues: intra-unit order is
/// preserved wholesale, and the only cross-unit edges are the rewired
/// copies (consumer copy after the producer's last write of the source
/// slot). Units take turns emitting their maximal ready prefix, so a
/// feedback pair legally interleaves whenever the instruction-level
/// graph is acyclic — a true cycle is diagnosed with the channel path
/// around it. SkipIfAbsent guards are re-synthesized over the interleaved
/// stream from each instruction's original guard path, preserving the
/// proper nesting the VM, the C emitter and the fleet executor's mask
/// stack all rely on.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_LINK_STEPFUSION_H
#define SIGNALC_LINK_STEPFUSION_H

#include "link/Linker.h"

namespace sigc {

/// Outcome of fusing a linked system's units.
struct FusionResult {
  bool Ok = false;
  std::string Error; ///< Cycle diagnostic (names the channel path).
  CompiledStep Fused;
  std::vector<LinkedSystem::DynCheck> DynChecks;
  /// Units ordered by first fused instruction (equals the unit-level
  /// topological order whenever one exists).
  std::vector<unsigned> Order;
};

/// Fuses \p Sys's units. \p Prio is the preferred unit order for the
/// scheduling rounds (a Kahn-derived order; cyclic systems may pass any
/// permutation). Requires Units, Channels (descriptor indices resolved)
/// and External{Inputs,Outputs} to be final.
FusionResult fuseLinkedSteps(const LinkedSystem &Sys,
                             const std::vector<unsigned> &Prio);

} // namespace sigc

#endif // SIGNALC_LINK_STEPFUSION_H
