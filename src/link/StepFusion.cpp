//===--- StepFusion.cpp ---------------------------------------------------===//

#include "link/StepFusion.h"

#include <algorithm>
#include <climits>
#include <map>
#include <set>

using namespace sigc;

namespace {

/// Type-correct zero for a dynamic channel's prelude: a default Value
/// would trip asReal()'s non-numeric assertion if a mismatch instant
/// reads the slot before the producer writes it.
Value typedZeroValue(TypeKind K) {
  switch (K) {
  case TypeKind::Boolean:
    return Value::makeBool(false);
  case TypeKind::Event:
    return Value::makeEvent();
  case TypeKind::Real:
    return Value::makeReal(0.0);
  case TypeKind::Integer:
  case TypeKind::Unknown:
    break;
  }
  return Value::makeInt(0);
}

bool writesClock(VmOp Op) {
  switch (Op) {
  case VmOp::ReadClockInput:
  case VmOp::EvalClockLiteral:
  case VmOp::EvalClockAnd:
  case VmOp::EvalClockOr:
  case VmOp::EvalClockDiff:
  case VmOp::CopyClock:
  case VmOp::SetClockFalse:
    return true;
  default:
    return false;
  }
}

bool writesValue(VmOp Op) {
  switch (Op) {
  case VmOp::ReadSignal:
  case VmOp::UnarySlot:
  case VmOp::BinarySS:
  case VmOp::BinarySC:
  case VmOp::BinaryCS:
  case VmOp::CopyValue:
  case VmOp::LoadConst:
  case VmOp::Select:
  case VmOp::LoadDelay:
    return true;
  default:
    return false;
  }
}

/// One rebased instruction awaiting scheduling.
struct FInstr {
  VmInstr In;                  ///< Operands already in fused slot space.
  std::vector<int32_t> Guards; ///< Guard path (fused clock slots), outer
                               ///< block first.
  int CrossUnit = -1;    ///< Producer unit this instruction copies from.
  int CrossIdx = -1;     ///< Index of the producer's writing instruction.
  int CrossChannel = -1; ///< Channel behind the copy (cycle diagnosis).
  bool CrossIsClock = false;
  int32_t CrossSlot = -1;
};

} // namespace

FusionResult sigc::fuseLinkedSteps(const LinkedSystem &Sys,
                                   const std::vector<unsigned> &Prio) {
  FusionResult R;
  CompiledStep &F = R.Fused;
  const size_t NU = Sys.Units.size();

  // --- Slot rebasing -----------------------------------------------------
  // Clock/value/state spaces concatenate per unit. Scratch slots live
  // past ALL value slots (the VM sizes its value array as values then
  // temps), so a unit's scratch slot v maps to TotalValues + TempBase +
  // (v - unit's NumValueSlots).
  std::vector<int32_t> ClockBase(NU, 0), ValueBase(NU, 0), TempBase(NU, 0),
      StateBase(NU, 0);
  uint32_t TotalClocks = 0, TotalValues = 0, TotalTemps = 0, TotalStates = 0;
  for (size_t U = 0; U < NU; ++U) {
    const CompiledStep &CS = Sys.Units[U].Comp->Compiled;
    ClockBase[U] = static_cast<int32_t>(TotalClocks);
    TotalClocks += CS.NumClockSlots;
    ValueBase[U] = static_cast<int32_t>(TotalValues);
    TotalValues += CS.NumValueSlots;
    TempBase[U] = static_cast<int32_t>(TotalTemps);
    TotalTemps += CS.NumTempSlots;
    StateBase[U] = static_cast<int32_t>(TotalStates);
    TotalStates += static_cast<uint32_t>(CS.StateInit.size());
  }
  auto mapClock = [&](size_t U, int32_t C) { return ClockBase[U] + C; };
  auto mapValue = [&](size_t U, int32_t V) {
    const CompiledStep &CS = Sys.Units[U].Comp->Compiled;
    return V < static_cast<int32_t>(CS.NumValueSlots)
               ? ValueBase[U] + V
               : static_cast<int32_t>(TotalValues) + TempBase[U] +
                     (V - static_cast<int32_t>(CS.NumValueSlots));
  };
  auto mapState = [&](size_t U, int32_t S) { return StateBase[U] + S; };

  F.NumClockSlots = TotalClocks;
  F.NumValueSlots = TotalValues;
  F.NumTempSlots = TotalTemps;
  for (size_t U = 0; U < NU; ++U) {
    const CompiledStep &CS = Sys.Units[U].Comp->Compiled;
    F.StateInit.insert(F.StateInit.end(), CS.StateInit.begin(),
                       CS.StateInit.end());
    F.ValueSlotType.insert(F.ValueSlotType.end(), CS.ValueSlotType.begin(),
                           CS.ValueSlotType.end());
  }

  auto addConst = [&](const Value &V) -> int32_t {
    for (size_t I = 0; I < F.Consts.size(); ++I)
      if (F.Consts[I].Kind == V.Kind && F.Consts[I] == V)
        return static_cast<int32_t>(I);
    F.Consts.push_back(V);
    return static_cast<int32_t>(F.Consts.size()) - 1;
  };

  // --- Channel lookup tables ---------------------------------------------
  // First channel wins when several bind the same consumer clock input
  // (synchronous imports proved equal at link time).
  std::vector<std::map<int, int>> BoundCI(NU), BoundIn(NU);
  std::vector<std::set<int>> ConsumedOut(NU);
  for (size_t C = 0; C < Sys.Channels.size(); ++C) {
    const LinkChannel &Ch = Sys.Channels[C];
    if (Ch.ConsumerClockInput >= 0)
      BoundCI[Ch.Consumer].emplace(Ch.ConsumerClockInput,
                                   static_cast<int>(C));
    BoundIn[Ch.Consumer].emplace(Ch.ConsumerInput, static_cast<int>(C));
    ConsumedOut[Ch.Producer].insert(Ch.ProducerOutput);
  }

  // --- Fused descriptor tables -------------------------------------------
  // Unbound clock inputs and unbound inputs dedup by name (the executor
  // and the C interface both pace same-named roots/inputs from one
  // environment stream); outputs are one per external output, in
  // ExternalOutputs order. The names line up with linkedCInterface.
  std::map<std::string, int> ClockDescByName, InDescByName;
  std::vector<std::map<int, int>> CIMap(NU), InMap(NU), OutMap(NU);
  for (size_t U = 0; U < NU; ++U) {
    const CompiledStep &CS = Sys.Units[U].Comp->Compiled;
    for (size_t CI = 0; CI < CS.ClockInputs.size(); ++CI) {
      if (BoundCI[U].count(static_cast<int>(CI)))
        continue;
      const StepProgram::ClockInputDesc &D = CS.ClockInputs[CI];
      auto [It, Inserted] =
          ClockDescByName.emplace(D.Name, static_cast<int>(F.ClockInputs.size()));
      if (Inserted)
        F.ClockInputs.push_back(
            {D.Slot >= 0 ? mapClock(U, D.Slot) : -1, D.Name});
      CIMap[U][static_cast<int>(CI)] = It->second;
    }
    for (size_t II = 0; II < CS.Inputs.size(); ++II) {
      if (BoundIn[U].count(static_cast<int>(II)))
        continue;
      const StepProgram::SignalIODesc &D = CS.Inputs[II];
      auto [It, Inserted] =
          InDescByName.emplace(D.Name, static_cast<int>(F.Inputs.size()));
      if (Inserted) {
        StepProgram::SignalIODesc ND = D;
        ND.ValueSlot = D.ValueSlot >= 0 ? mapValue(U, D.ValueSlot) : -1;
        ND.ClockSlot = D.ClockSlot >= 0 ? mapClock(U, D.ClockSlot) : -1;
        F.Inputs.push_back(ND);
      }
      InMap[U][static_cast<int>(II)] = It->second;
    }
  }
  for (const LinkedExternal &E : Sys.ExternalOutputs) {
    const CompiledStep &CS = Sys.Units[E.Unit].Comp->Compiled;
    for (size_t OI = 0; OI < CS.Outputs.size(); ++OI)
      if (CS.Outputs[OI].Sig == E.Sig) {
        StepProgram::SignalIODesc ND = CS.Outputs[OI];
        ND.ValueSlot = ND.ValueSlot >= 0 ? mapValue(E.Unit, ND.ValueSlot) : -1;
        ND.ClockSlot = ND.ClockSlot >= 0 ? mapClock(E.Unit, ND.ClockSlot) : -1;
        OutMap[E.Unit][static_cast<int>(OI)] =
            static_cast<int>(F.Outputs.size());
        F.Outputs.push_back(ND);
      }
  }

  // --- Pass 1: rebase + rewire each unit's bytecode ----------------------
  std::vector<std::vector<FInstr>> Lists(NU);

  // Typed-zero preludes for dynamic channels (one per producer slot).
  std::vector<std::set<int32_t>> Preluded(NU);
  for (const LinkChannel &Ch : Sys.Channels) {
    if (Ch.ConsumerClockInput >= 0)
      continue;
    const CompiledStep &PCS = Sys.Units[Ch.Producer].Comp->Compiled;
    const StepProgram::SignalIODesc &OD = PCS.Outputs[Ch.ProducerOutput];
    if (OD.ValueSlot < 0)
      continue;
    int32_t Slot = mapValue(Ch.Producer, OD.ValueSlot);
    if (!Preluded[Ch.Producer].insert(Slot).second)
      continue;
    FInstr P;
    P.In.Op = VmOp::LoadConst;
    P.In.Weight = 0;
    P.In.Target = Slot;
    P.In.Aux = addConst(typedZeroValue(OD.Type));
    Lists[Ch.Producer].push_back(P);
  }

  for (size_t U = 0; U < NU; ++U) {
    const CompiledStep &CS = Sys.Units[U].Comp->Compiled;
    std::vector<std::pair<int32_t, int32_t>> GuardStack; // (slot, end idx)
    for (size_t I = 0; I < CS.Code.size(); ++I) {
      while (!GuardStack.empty() &&
             GuardStack.back().second <= static_cast<int32_t>(I))
        GuardStack.pop_back();
      const VmInstr &In = CS.Code[I];
      if (In.Op == VmOp::SkipIfAbsent) {
        // Blocks are properly nested by construction; remember the guard
        // path instead of the jump (guards re-synthesize after
        // interleaving).
        GuardStack.emplace_back(mapClock(U, In.A), In.Aux);
        continue;
      }
      FInstr FI;
      FI.In = In;
      FI.Guards.reserve(GuardStack.size());
      for (const auto &G : GuardStack)
        FI.Guards.push_back(G.first);
      switch (In.Op) {
      case VmOp::ReadClockInput: {
        FI.In.Target = mapClock(U, In.Target);
        auto B = BoundCI[U].find(In.Aux);
        if (B != BoundCI[U].end()) {
          const LinkChannel &Ch = Sys.Channels[B->second];
          const CompiledStep &PCS = Sys.Units[Ch.Producer].Comp->Compiled;
          int32_t Src =
              mapClock(Ch.Producer, PCS.Outputs[Ch.ProducerOutput].ClockSlot);
          FI.In.Op = VmOp::CopyClock;
          FI.In.A = Src;
          FI.In.Aux = -1;
          FI.CrossUnit = static_cast<int>(Ch.Producer);
          FI.CrossChannel = B->second;
          FI.CrossIsClock = true;
          FI.CrossSlot = Src;
        } else {
          FI.In.Aux = CIMap[U].at(In.Aux);
        }
        break;
      }
      case VmOp::ReadSignal: {
        FI.In.Target = mapValue(U, In.Target);
        auto B = BoundIn[U].find(In.Aux);
        if (B != BoundIn[U].end()) {
          const LinkChannel &Ch = Sys.Channels[B->second];
          const CompiledStep &PCS = Sys.Units[Ch.Producer].Comp->Compiled;
          int32_t Src =
              mapValue(Ch.Producer, PCS.Outputs[Ch.ProducerOutput].ValueSlot);
          FI.In.Op = VmOp::CopyValue;
          FI.In.A = Src;
          FI.In.Aux = -1;
          FI.CrossUnit = static_cast<int>(Ch.Producer);
          FI.CrossChannel = B->second;
          FI.CrossIsClock = false;
          FI.CrossSlot = Src;
        } else {
          FI.In.Aux = InMap[U].at(In.Aux);
        }
        break;
      }
      case VmOp::WriteOutput:
        if (ConsumedOut[U].count(In.Aux))
          continue; // Channel-internal: consumers copy the slot directly.
        FI.In.A = mapValue(U, In.A);
        FI.In.Aux = OutMap[U].at(In.Aux);
        break;
      case VmOp::EvalClockLiteral:
        FI.In.Target = mapClock(U, In.Target);
        FI.In.A = mapValue(U, In.A);
        break;
      case VmOp::EvalClockAnd:
      case VmOp::EvalClockOr:
      case VmOp::EvalClockDiff:
        FI.In.Target = mapClock(U, In.Target);
        FI.In.A = mapClock(U, In.A);
        FI.In.B = mapClock(U, In.B);
        break;
      case VmOp::CopyClock:
        FI.In.Target = mapClock(U, In.Target);
        FI.In.A = mapClock(U, In.A);
        break;
      case VmOp::SetClockFalse:
        FI.In.Target = mapClock(U, In.Target);
        break;
      case VmOp::UnarySlot:
        FI.In.Target = mapValue(U, In.Target);
        FI.In.A = mapValue(U, In.A);
        break;
      case VmOp::BinarySS:
        FI.In.Target = mapValue(U, In.Target);
        FI.In.A = mapValue(U, In.A);
        FI.In.B = mapValue(U, In.B);
        break;
      case VmOp::BinarySC:
        FI.In.Target = mapValue(U, In.Target);
        FI.In.A = mapValue(U, In.A);
        FI.In.B = addConst(CS.Consts[In.B]);
        break;
      case VmOp::BinaryCS:
        FI.In.Target = mapValue(U, In.Target);
        FI.In.A = addConst(CS.Consts[In.A]);
        FI.In.B = mapValue(U, In.B);
        break;
      case VmOp::CopyValue:
        FI.In.Target = mapValue(U, In.Target);
        FI.In.A = mapValue(U, In.A);
        break;
      case VmOp::LoadConst:
        FI.In.Target = mapValue(U, In.Target);
        FI.In.Aux = addConst(CS.Consts[In.Aux]);
        break;
      case VmOp::Select:
        FI.In.Target = mapValue(U, In.Target);
        FI.In.A = mapValue(U, In.A);
        FI.In.B = mapValue(U, In.B);
        FI.In.Aux = mapClock(U, In.Aux);
        break;
      case VmOp::LoadDelay:
        FI.In.Target = mapValue(U, In.Target);
        FI.In.A = mapState(U, In.A);
        break;
      case VmOp::StoreDelay:
        FI.In.Target = mapState(U, In.Target);
        FI.In.A = mapValue(U, In.A);
        break;
      case VmOp::SkipIfAbsent:
        break; // Handled above.
      }
      Lists[U].push_back(std::move(FI));
    }
  }

  // --- Pass 2: cross-unit dependence edges -------------------------------
  // Each rewired copy waits for the producer's LAST write of the source
  // slot (the defining equation; the typed-zero prelude is earlier and
  // ordered before it by a write-after-write edge).
  std::vector<std::map<int32_t, int>> LastClockW(NU), LastValueW(NU);
  for (size_t U = 0; U < NU; ++U)
    for (size_t I = 0; I < Lists[U].size(); ++I) {
      const VmInstr &In = Lists[U][I].In;
      if (writesClock(In.Op))
        LastClockW[U][In.Target] = static_cast<int>(I);
      else if (writesValue(In.Op))
        LastValueW[U][In.Target] = static_cast<int>(I);
    }
  for (size_t U = 0; U < NU; ++U)
    for (FInstr &FI : Lists[U]) {
      if (FI.CrossUnit < 0)
        continue;
      auto &M = FI.CrossIsClock ? LastClockW[FI.CrossUnit]
                                : LastValueW[FI.CrossUnit];
      auto It = M.find(FI.CrossSlot);
      if (It != M.end())
        FI.CrossIdx = It->second;
      else
        FI.CrossUnit = -1; // Nothing ever writes the slot: no constraint.
    }

  // --- Pass 3: intra-unit dependence edges -------------------------------
  // A unit's bytecode order is NOT preserved wholesale: under feedback
  // the consumer half of a unit may have to wait for another process
  // while its producer half runs ahead (the compiler is free to order a
  // unit's clock classes either way, so the import-consuming block can
  // precede the export-defining one). What must be preserved is the
  // dependence order: read-after-write, write-after-read and write-
  // after-write on every clock/value/state slot, with an instruction's
  // guard path counting as reads of the guard clock slots.
  std::vector<std::vector<std::vector<int>>> Succs(NU);
  std::vector<std::vector<int>> PredsLeft(NU);
  for (size_t U = 0; U < NU; ++U) {
    const std::vector<FInstr> &L = Lists[U];
    Succs[U].resize(L.size());
    PredsLeft[U].assign(L.size(), 0);
    enum { SKClock, SKValue, SKState };
    struct SlotUse {
      int LastWrite = -1;
      std::vector<int> ReadersSince;
    };
    std::map<std::pair<int, int32_t>, SlotUse> Use;
    std::set<std::pair<int, int>> Edges; // (from, to), deduped
    auto addEdge = [&](int From, int To) {
      if (From >= 0 && From != To && Edges.emplace(From, To).second) {
        Succs[U][From].push_back(To);
        ++PredsLeft[U][To];
      }
    };
    auto read = [&](int I, int K, int32_t S) {
      SlotUse &SU = Use[{K, S}];
      addEdge(SU.LastWrite, I);
      SU.ReadersSince.push_back(I);
    };
    auto write = [&](int I, int K, int32_t S) {
      SlotUse &SU = Use[{K, S}];
      addEdge(SU.LastWrite, I);
      for (int R : SU.ReadersSince)
        addEdge(R, I);
      SU.LastWrite = I;
      SU.ReadersSince.clear();
    };
    for (size_t IS = 0; IS < L.size(); ++IS) {
      int I = static_cast<int>(IS);
      const VmInstr &In = L[IS].In;
      for (int32_t G : L[IS].Guards)
        read(I, SKClock, G);
      switch (In.Op) {
      case VmOp::CopyClock:
        if (L[IS].CrossUnit < 0) // Rewired copies read another unit.
          read(I, SKClock, In.A);
        break;
      case VmOp::EvalClockLiteral:
        read(I, SKValue, In.A);
        break;
      case VmOp::EvalClockAnd:
      case VmOp::EvalClockOr:
      case VmOp::EvalClockDiff:
        read(I, SKClock, In.A);
        read(I, SKClock, In.B);
        break;
      case VmOp::UnarySlot:
      case VmOp::BinarySC:
        read(I, SKValue, In.A);
        break;
      case VmOp::CopyValue:
        if (L[IS].CrossUnit < 0)
          read(I, SKValue, In.A);
        break;
      case VmOp::BinarySS:
        read(I, SKValue, In.A);
        read(I, SKValue, In.B);
        break;
      case VmOp::BinaryCS:
        read(I, SKValue, In.B);
        break;
      case VmOp::Select:
        read(I, SKValue, In.A);
        read(I, SKValue, In.B);
        read(I, SKClock, In.Aux);
        break;
      case VmOp::LoadDelay:
        read(I, SKState, In.A);
        break;
      case VmOp::StoreDelay:
        read(I, SKValue, In.A);
        write(I, SKState, In.Target);
        break;
      case VmOp::WriteOutput:
        read(I, SKValue, In.A);
        break;
      default:
        break;
      }
      if (writesClock(In.Op))
        write(I, SKClock, In.Target);
      else if (writesValue(In.Op))
        write(I, SKValue, In.Target);
    }
  }

  // --- Schedule: rounds over the dependence order ------------------------
  // Each round sweeps every unit, emitting its ready instructions in
  // index order (re-sweeping while anything lands). When nothing is
  // cross-blocked the lowest unscheduled index is always ready, so an
  // acyclic system with Prio a topological order degenerates to plain
  // concatenation of whole units; feedback systems interleave the
  // independent halves across rounds.
  std::vector<unsigned> Rounds = Prio;
  {
    // A cyclic unit graph yields a partial Kahn order: append the rest.
    std::vector<char> InPrio(NU, 0);
    for (unsigned U : Rounds)
      if (U < NU)
        InPrio[U] = 1;
    for (unsigned U = 0; U < NU; ++U)
      if (!InPrio[U])
        Rounds.push_back(U);
  }
  std::vector<std::vector<char>> Emitted(NU);
  std::vector<size_t> Cursor(NU, 0); // First unscheduled index.
  for (size_t U = 0; U < NU; ++U)
    Emitted[U].assign(Lists[U].size(), 0);
  std::vector<const FInstr *> Sched;
  std::vector<int> FirstAt(NU, -1);
  size_t Total = 0;
  for (const auto &L : Lists)
    Total += L.size();
  Sched.reserve(Total);
  while (Sched.size() < Total) {
    bool Progress = false;
    for (unsigned U : Rounds) {
      bool Landed = true;
      while (Landed) {
        Landed = false;
        for (size_t I = Cursor[U]; I < Lists[U].size(); ++I) {
          if (Emitted[U][I] || PredsLeft[U][I] > 0)
            continue;
          const FInstr &FI = Lists[U][I];
          if (FI.CrossUnit >= 0 && !Emitted[FI.CrossUnit][FI.CrossIdx])
            continue;
          if (FirstAt[U] < 0)
            FirstAt[U] = static_cast<int>(Sched.size());
          Sched.push_back(&FI);
          Emitted[U][I] = 1;
          for (int S : Succs[U][I])
            --PredsLeft[U][S];
          while (Cursor[U] < Lists[U].size() && Emitted[U][Cursor[U]])
            ++Cursor[U];
          Landed = Progress = true;
        }
      }
    }
    if (Progress)
      continue;

    // A true instruction-level cycle. In every stalled unit the lowest
    // unscheduled instruction has its intra-unit predecessors scheduled
    // (they sit at lower indices), so it must be waiting on the producer
    // of some channel; walking those wait edges must reach a repeat —
    // print that cycle in dataflow direction.
    std::vector<int> WaitOn(NU, -1), WaitCh(NU, -1);
    int Start = -1;
    for (size_t U = 0; U < NU; ++U)
      if (Cursor[U] < Lists[U].size()) {
        const FInstr &FI = Lists[U][Cursor[U]];
        WaitOn[U] = FI.CrossUnit;
        WaitCh[U] = FI.CrossChannel;
        if (Start < 0)
          Start = static_cast<int>(U);
      }
    int Cur = Start;
    for (size_t K = 0; K < NU; ++K)
      Cur = WaitOn[Cur];
    std::vector<int> Cycle;
    int C0 = Cur;
    do {
      Cycle.push_back(Cur);
      Cur = WaitOn[Cur];
    } while (Cur != C0);
    // WaitOn[u] -[WaitCh[u]]-> u carries the data, so the flow path walks
    // the wait cycle backwards.
    std::string Path = Sys.Units[Cycle.front()].Name;
    for (size_t K = Cycle.size(); K-- > 0;)
      Path += " -[" + Sys.Channels[WaitCh[Cycle[K]]].Name + "]-> " +
              Sys.Units[Cycle[K]].Name;
    R.Error = "channel dataflow between processes is cyclic at instruction "
              "granularity (" +
              Path +
              "): every signal on the cycle needs another's same-instant "
              "value — break the cycle with a delay ($)";
    return R;
  }

  // --- Emit: SkipIfAbsent re-synthesis over the interleaved stream -------
  std::vector<std::pair<int32_t, size_t>> Open; // (guard slot, skip index)
  auto closeTo = [&](size_t Depth) {
    while (Open.size() > Depth) {
      F.Code[Open.back().second].Aux = static_cast<int32_t>(F.Code.size());
      Open.pop_back();
    }
  };
  for (const FInstr *FIp : Sched) {
    const FInstr &FI = *FIp;
    size_t Common = 0;
    while (Common < Open.size() && Common < FI.Guards.size() &&
           Open[Common].first == FI.Guards[Common])
      ++Common;
    closeTo(Common);
    for (size_t G = Common; G < FI.Guards.size(); ++G) {
      VmInstr S;
      S.Op = VmOp::SkipIfAbsent;
      S.Weight = 0;
      S.A = FI.Guards[G];
      Open.emplace_back(FI.Guards[G], F.Code.size());
      F.Code.push_back(S);
    }
    F.Code.push_back(FI.In);
  }
  closeTo(0);

  // --- Flush order: first appearance of each WriteOutput -----------------
  std::vector<char> Seen(F.Outputs.size(), 0);
  for (const VmInstr &In : F.Code)
    if (In.Op == VmOp::WriteOutput && !Seen[In.Aux]) {
      Seen[In.Aux] = 1;
      F.OutputFlushOrder.push_back(In.Aux);
    }
  for (size_t I = 0; I < F.Outputs.size(); ++I)
    if (!Seen[I])
      F.OutputFlushOrder.push_back(static_cast<int32_t>(I));

  // --- Dynamic checks ----------------------------------------------------
  for (size_t C = 0; C < Sys.Channels.size(); ++C) {
    const LinkChannel &Ch = Sys.Channels[C];
    if (Ch.ConsumerClockInput >= 0)
      continue;
    const CompiledStep &CCS = Sys.Units[Ch.Consumer].Comp->Compiled;
    const CompiledStep &PCS = Sys.Units[Ch.Producer].Comp->Compiled;
    int CSlot = CCS.SignalClockSlot[Ch.ConsumerSig];
    int PSlot = PCS.Outputs[Ch.ProducerOutput].ClockSlot;
    LinkedSystem::DynCheck D;
    D.Channel = static_cast<unsigned>(C);
    D.ConsumerSlot = CSlot >= 0 ? mapClock(Ch.Consumer, CSlot) : -1;
    D.ProducerSlot = PSlot >= 0 ? mapClock(Ch.Producer, PSlot) : -1;
    R.DynChecks.push_back(D);
  }

  // --- Unit order by first fused instruction -----------------------------
  for (unsigned U = 0; U < NU; ++U)
    R.Order.push_back(U);
  std::stable_sort(R.Order.begin(), R.Order.end(),
                   [&](unsigned A, unsigned B) {
                     int FA = FirstAt[A] < 0 ? INT_MAX : FirstAt[A];
                     int FB = FirstAt[B] < 0 ? INT_MAX : FirstAt[B];
                     return FA < FB;
                   });

  R.Ok = true;
  return R;
}
