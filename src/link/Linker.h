//===--- Linker.h - Clock-interface linking of compiled processes -*-C++-*-===//
///
/// \file
/// Separate compilation for multi-process SIGNAL systems. Each process is
/// compiled in isolation (optionally in parallel — compilations share no
/// state); the linker then composes the results *without re-resolving any
/// process's clock hierarchy*:
///
///   1. interface extraction (ProcessInterface) per unit,
///   2. channel matching — an imported signal connects to the export of
///      the same name; types must agree,
///   3. clock-interface compatibility — when a consumer constrains two
///      imported clocks (same class, or one contained in the other), the
///      exporting side must *prove* the corresponding relation. With a
///      single producer the proof runs on that producer's own forest, via
///      BDD implies() on the exporters' relative BDDs — the paper's
///      point: the forest is canonical, so interface obligations reduce
///      to implication tests, not to re-resolution. When the obligation
///      spans *two* producers, their forests are translated into a joint
///      BDD clock space (JointClockSpace.h) keyed by shared condition
///      signals, environment roots, and channel bindings, and the same
///      implies() discharges it there,
///   4. instruction-granularity fusion (StepFusion.h) — the units'
///      CompiledStep bytecode is interleaved along the cross-process
///      dependence order into ONE fused CompiledStep for the whole
///      system. Instant-level feedback between processes is legal
///      whenever the instruction-level dependence graph is acyclic; a
///      true cycle is diagnosed with the channel path around it,
///   5. the linked system's own interface: unbound free clocks become the
///      system's roots, unmatched imports/exports its external signals.
///
/// The linked system executes by running the fused CompiledStep on the
/// ordinary slot VM — LinkedExecutor in src/interp/ is a thin shim over
/// VmExecutor that adds the dynamic clock checks for consumer-derived
/// import clocks, and emitLinkedC in LinkEmitter.h emits the fused
/// bytecode through the single CEmitter lowering (so batch and fleet
/// entry points come for free).
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_LINK_LINKER_H
#define SIGNALC_LINK_LINKER_H

#include "interp/CompiledStep.h"
#include "link/ProcessInterface.h"

#include <memory>
#include <string>
#include <vector>

namespace sigc {

/// One separately compiled process entering the link.
struct LinkUnit {
  std::string Name;                  ///< Process name (unique per link).
  std::unique_ptr<Compilation> Comp; ///< A successful compilation.
  ProcessInterface Iface;            ///< Extracted by the linker.
};

/// One producer-to-consumer signal connection.
struct LinkChannel {
  unsigned Producer = 0; ///< Unit index of the exporter.
  unsigned Consumer = 0; ///< Unit index of the importer.
  SignalId ProducerSig = InvalidSignal;
  SignalId ConsumerSig = InvalidSignal;
  std::string Name;
  /// Index into the consumer Step's ClockInputs bound by this channel:
  /// the consumer's clock class of the import is a free root, so its tick
  /// is simply the producer's presence. -1 when the consumer *derives*
  /// the import's clock itself; the executor then checks, each instant,
  /// that both sides agree (a dynamic clock-constraint check).
  int ConsumerClockInput = -1;
  /// Index into the producer Step's Outputs descriptor table, resolved at
  /// link time so executors wire channels by array index, never by name.
  int ProducerOutput = -1;
  /// Index into the consumer Step's Inputs descriptor table (same).
  int ConsumerInput = -1;
};

/// An external (unmatched) input or output of the linked system.
struct LinkedExternal {
  unsigned Unit = 0;
  SignalId Sig = InvalidSignal;
  std::string Name;
  TypeKind Type = TypeKind::Unknown;
};

/// A free clock of some unit that no channel binds: the environment still
/// paces it in the linked system.
struct LinkedRoot {
  unsigned Unit = 0;
  int ClockInput = 0; ///< Index into the unit Step's ClockInputs.
  std::string Name;   ///< The clock input's name ("^X", ...).
};

/// The composed system: N untouched compilations plus the wiring, plus
/// the fused CompiledStep the whole system executes as.
struct LinkedSystem {
  std::vector<LinkUnit> Units;
  std::vector<LinkChannel> Channels;
  /// Unit indices in a channel-dataflow-respecting execution order (for
  /// feedback systems, by first fused instruction).
  std::vector<unsigned> Order;

  std::vector<LinkedExternal> ExternalInputs;
  std::vector<LinkedExternal> ExternalOutputs;
  std::vector<LinkedRoot> Roots;

  /// The whole system as one CompiledStep: every unit's bytecode rebased
  /// into a shared slot space and interleaved along the cross-process
  /// dependence order, channels rewired to plain CopyClock/CopyValue.
  CompiledStep Fused;

  /// A channel whose consumer *derives* the import's clock itself
  /// (LinkChannel::ConsumerClockInput == -1): each instant, both sides'
  /// presence bits must agree. Slots index into Fused's clock space.
  struct DynCheck {
    unsigned Channel = 0; ///< Index into Channels.
    int ConsumerSlot = 0; ///< Fused clock slot of the consumer's clock.
    int ProducerSlot = 0; ///< Fused clock slot of the producer's clock.
  };
  std::vector<DynCheck> DynChecks;

  /// Endochrony of the *system*: a single unbound root paces everything.
  bool endochronous() const { return Roots.size() == 1; }

  /// Alive forest nodes per unit, re-counted at link time; equal to each
  /// unit's Iface.ForestNodes by construction (linking never re-resolves).
  std::vector<uint64_t> ForestNodesAtLink;

  /// \returns the channel feeding \p Sig of unit \p Unit, or nullptr.
  const LinkChannel *channelInto(unsigned Unit, SignalId Sig) const;

  /// Renders a summary (tests, --dump-link).
  std::string dump() const;
};

/// One process entering compileAndLinkSources: a buffer name plus source.
struct LinkInput {
  std::string Name; ///< Buffer label; also --process selector when set.
  std::string Source;
};

/// Linking options.
struct LinkOptions {
  /// Compile the units on worker threads (they share no state).
  bool ParallelCompile = true;
  /// Per-unit resource limits for the clock calculus.
  Budget Limits;
};

/// Outcome of a link: a system, or a diagnostic.
struct LinkResult {
  std::unique_ptr<LinkedSystem> Sys; ///< Null on failure.
  std::string Error;                 ///< Diagnostic text on failure.
  double CompileMs = 0;              ///< Wall time of the compile phase.
  double LinkMs = 0;                 ///< Wall time of the link phase.
};

/// Compiles the named processes of one source file separately and links
/// them (the CLI's `--link P1,P2,...` mode).
LinkResult compileAndLink(const std::string &BufferName,
                          const std::string &Source,
                          const std::vector<std::string> &ProcessNames,
                          const LinkOptions &Options = {});

/// Compiles N independent sources separately and links them. Each input
/// compiles its first declared process.
LinkResult compileAndLinkSources(const std::vector<LinkInput> &Inputs,
                                 const LinkOptions &Options = {});

/// Links already-compiled units (each must be Ok). Extracts interfaces,
/// matches channels, verifies clock compatibility (joint BDD space for
/// cross-producer obligations, bounded by \p Options.Limits), and fuses
/// the units' bytecode into LinkedSystem::Fused.
LinkResult linkCompiled(std::vector<LinkUnit> Units,
                        const LinkOptions &Options = {});

} // namespace sigc

#endif // SIGNALC_LINK_LINKER_H
