//===--- ProcessInterface.cpp ---------------------------------------------===//

#include "link/ProcessInterface.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

using namespace sigc;

namespace {

/// Root of \p N's tree (ClockForest keeps rootOf private).
ForestNodeId treeRootOf(const ClockForest &Forest, ForestNodeId N) {
  while (Forest.node(N).Parent != InvalidForestNode)
    N = Forest.node(N).Parent;
  return N;
}

} // namespace

ProcessInterface sigc::extractInterface(Compilation &C) {
  ProcessInterface I;
  I.ProcessName = std::string(C.names().spelling(C.Kernel->Name));
  ClockForest &Forest = *C.Forest;
  I.ForestNodes = Forest.dfsOrder().size();

  // The interface signals and the forest nodes they live on.
  std::unordered_set<ForestNodeId> Wanted;
  auto noteSignal = [&](SignalId S) {
    ForestNodeId N = Forest.nodeOf(C.Clocks.signalClock(S));
    if (N != InvalidForestNode) {
      Wanted.insert(N);
      Wanted.insert(treeRootOf(Forest, N)); // Roots carry master-clock status.
    }
  };
  for (SignalId S : C.Kernel->inputs())
    noteSignal(S);
  for (SignalId S : C.Kernel->outputs())
    noteSignal(S);

  // Restricted forest shape: keep the DFS order (parents first) and wire
  // each kept node to its nearest kept ancestor.
  std::unordered_map<ForestNodeId, int> IndexOf;
  for (ForestNodeId N : Forest.dfsOrder()) {
    if (!Wanted.count(N))
      continue;
    InterfaceClock IC;
    IC.Node = N;
    IC.Name = C.Clocks.varName(Forest.node(N).Rep, *C.Kernel, C.names());
    IC.TreeRoot = Forest.node(N).Parent == InvalidForestNode;
    IC.FreeRoot = IC.TreeRoot && Forest.node(N).Def == ClockDefKind::Root;
    for (ForestNodeId A = Forest.node(N).Parent; A != InvalidForestNode;
         A = Forest.node(A).Parent) {
      auto It = IndexOf.find(A);
      if (It != IndexOf.end()) {
        IC.Parent = It->second;
        break;
      }
    }
    IndexOf.emplace(N, static_cast<int>(I.Clocks.size()));
    I.Clocks.push_back(IC);
  }

  auto fillSignals = [&](const std::vector<SignalId> &Ids,
                         std::vector<InterfaceSignal> &Out) {
    for (SignalId S : Ids) {
      InterfaceSignal IS;
      IS.Name = std::string(C.names().spelling(C.Kernel->Signals[S].Name));
      IS.Type = C.Kernel->Signals[S].Type;
      IS.Sig = S;
      ForestNodeId N = Forest.nodeOf(C.Clocks.signalClock(S));
      if (N != InvalidForestNode)
        IS.Clock = IndexOf.at(N);
      Out.push_back(IS);
    }
  };
  fillSignals(C.Kernel->inputs(), I.Imports);
  fillSignals(C.Kernel->outputs(), I.Exports);

  // Endochrony verdict over the *full* forest: one root = one master
  // clock = the process paces itself from its inputs' values alone.
  std::vector<ForestNodeId> Roots = Forest.roots();
  I.RootCount = static_cast<unsigned>(Roots.size());
  I.FreeRootCount = static_cast<unsigned>(Forest.freeClocks().size());
  I.Endochronous = I.RootCount == 1;
  if (!I.Endochronous) {
    I.ExochronyReason = std::to_string(I.RootCount) +
                        " independent clock roots remain unresolved:";
    for (ForestNodeId R : Roots) {
      I.ExochronyReason +=
          " " + C.Clocks.varName(Forest.node(R).Rep, *C.Kernel, C.names());
      I.ExochronyReason +=
          Forest.node(R).Def == ClockDefKind::Root ? " (free)" : " (residual)";
    }
    I.ExochronyReason += "; the environment must decide their relative rates";
  }
  return I;
}

std::string ProcessInterface::dump() const {
  std::string Out = "interface of process " + ProcessName + "\n";
  Out += "  forest: " + std::to_string(ForestNodes) + " nodes, " +
         std::to_string(RootCount) + " root(s), " +
         std::to_string(FreeRootCount) + " free\n";
  if (Endochronous)
    Out += "  endochronous: yes (single master clock)\n";
  else
    Out += "  endochronous: no — " + ExochronyReason + "\n";

  Out += "  clocks:\n";
  // Depth within the restricted forest, for indentation.
  std::vector<unsigned> Depth(Clocks.size(), 0);
  for (size_t K = 0; K < Clocks.size(); ++K) {
    if (Clocks[K].Parent >= 0)
      Depth[K] = Depth[Clocks[K].Parent] + 1;
    Out += "    c" + std::to_string(K) + ": " +
           std::string(Depth[K] * 2, ' ') + Clocks[K].Name;
    if (Clocks[K].FreeRoot)
      Out += "  [free root]";
    else if (Clocks[K].TreeRoot)
      Out += "  [residual root]";
    if (Clocks[K].Parent >= 0)
      Out += "  < c" + std::to_string(Clocks[K].Parent);
    Out += "\n";
  }

  auto section = [&](const char *Title,
                     const std::vector<InterfaceSignal> &Sigs) {
    Out += std::string("  ") + Title + ":\n";
    size_t Width = 0;
    for (const InterfaceSignal &S : Sigs)
      Width = std::max(Width, S.Name.size());
    for (const InterfaceSignal &S : Sigs) {
      Out += "    " + S.Name + std::string(Width - S.Name.size(), ' ') +
             " : " + typeName(S.Type) + " @ ";
      Out += S.Clock < 0 ? std::string("null") : "c" + std::to_string(S.Clock);
      Out += "\n";
    }
    if (Sigs.empty())
      Out += "    (none)\n";
  };
  section("imports", Imports);
  section("exports", Exports);
  return Out;
}
