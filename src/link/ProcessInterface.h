//===--- ProcessInterface.h - Clock interface of a compilation --*- C++-*-===//
///
/// \file
/// The separate-compilation interface of one compiled SIGNAL process.
/// The paper's arborescent clock calculus makes this possible: after
/// hierarchization, a process's temporal behaviour towards the outside
/// world is captured by
///
///   * its imported (input) and exported (output) signals,
///   * the shape of the clock forest *restricted to those signals* — the
///     nearest-ancestor relation between their clock classes,
///   * the forest's roots: a process with a single root has a master
///     clock that determines every other clock (it is *endochronous*) and
///     can be driven by value streams alone; several roots mean the
///     environment must decide their relative rates (*exochronous*).
///
/// A ProcessInterface is extracted once after compilation and is all the
/// linker needs: linking matches interfaces instead of re-running the
/// global clock resolution on the composed system.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_LINK_PROCESSINTERFACE_H
#define SIGNALC_LINK_PROCESSINTERFACE_H

#include "driver/Driver.h"

#include <string>
#include <vector>

namespace sigc {

/// One clock class of the restricted forest.
struct InterfaceClock {
  /// Canonical clock name of the class representative ("^X", "[C]", ...).
  std::string Name;
  /// Index of the nearest ancestor clock that is itself part of the
  /// interface; -1 for a root of the restricted forest.
  int Parent = -1;
  /// The node in the owning compilation's forest (valid while the
  /// Compilation lives; the linker uses it for BDD compatibility checks).
  ForestNodeId Node = InvalidForestNode;
  /// True when the node is the root of its tree in the full forest.
  bool TreeRoot = false;
  /// True for a tree root the environment drives (ClockDefKind::Root):
  /// a free clock the step program reads as a tick input.
  bool FreeRoot = false;
};

/// One imported or exported signal.
struct InterfaceSignal {
  std::string Name;
  TypeKind Type = TypeKind::Unknown;
  SignalId Sig = InvalidSignal;
  /// Index into ProcessInterface::Clocks; -1 when the signal's clock was
  /// proved null (the signal never occurs).
  int Clock = -1;
};

/// The complete linking interface of one compiled process.
struct ProcessInterface {
  std::string ProcessName;
  std::vector<InterfaceSignal> Imports; ///< Declared inputs.
  std::vector<InterfaceSignal> Exports; ///< Declared outputs.
  /// Interface clock classes in forest DFS order: parents precede
  /// children, so Parent indices always point backwards.
  std::vector<InterfaceClock> Clocks;

  /// Roots of the full forest (not just the restricted shape).
  unsigned RootCount = 0;
  /// Roots the environment must tick (ClockDefKind::Root).
  unsigned FreeRootCount = 0;
  /// Single-root forests are endochronous: one master clock determines
  /// the presence of everything else.
  bool Endochronous = false;
  /// When exochronous: which roots remain unresolved, so the reader knows
  /// *why* the process needs environment pacing (empty when endochronous).
  std::string ExochronyReason;

  /// Alive forest nodes at extraction time. The linker re-reads the count
  /// at link time and asserts equality: linking must never re-resolve a
  /// process's internals.
  uint64_t ForestNodes = 0;

  /// Renders the interface as readable text (tests, --dump-interface).
  std::string dump() const;
};

/// Extracts the interface of a successfully compiled process.
/// (Non-const \p C: forest queries use path compression internally.)
ProcessInterface extractInterface(Compilation &C);

} // namespace sigc

#endif // SIGNALC_LINK_PROCESSINTERFACE_H
