//===--- JointClockSpace.h - Cross-producer clock obligations ---*- C++-*-===//
///
/// \file
/// A joint BDD clock space spanning every unit of a link. Each unit's
/// forest carries BDDs over its *own* condition variables, relative to
/// its *own* tree roots — enough for obligations a single producer can
/// discharge, but meaningless across producers. The joint space gives
/// all units one shared vocabulary:
///
///   * a condition variable is keyed by its *canonical* signal — channel
///     imports resolve to the producing export, unmatched imports of the
///     same name resolve to one shared external input — so the same
///     boolean value is the same variable in every unit,
///   * a free root bound by a channel is the producer's presence
///     function, recursively; an unbound free root is a variable keyed
///     by the clock-input *name* (the executor paces same-named roots
///     from one environment tick, so name equality is clock equality),
///   * residual/derived roots and recursive bindings fall back to fresh
///     variables — conservative: the space never claims more than it
///     can justify.
///
/// The absolute presence function of any exported signal is then
/// root-function ∧ translated-relative-BDD, and an obligation spanning
/// two producers is one implies() call in the joint manager — the same
/// reduction the paper gets inside one process from the canonical
/// forest. The joint manager is garbage-collected (mark-and-sweep under
/// Budget pressure) because it aggregates every unit's conditions;
/// memoized translations hold external references so sweeps only
/// reclaim true intermediates.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_LINK_JOINTCLOCKSPACE_H
#define SIGNALC_LINK_JOINTCLOCKSPACE_H

#include "link/Linker.h"

#include <map>
#include <set>
#include <string>

namespace sigc {

class JointClockSpace {
public:
  /// \p Sys must have Units, Channels and channel descriptor indices
  /// resolved. \p Limits bounds the joint manager (node budget drives
  /// the mark-and-sweep).
  JointClockSpace(LinkedSystem &Sys, const Budget &Limits);

  /// Proves clock(SigA of unit UA) == clock(SigB of unit UB) in the
  /// joint space. Conservative: false on any doubt or budget trip.
  bool proveEqual(unsigned UA, SignalId SigA, unsigned UB, SignalId SigB);

  /// Proves clock(SigA of UA) ⊆ clock(SigB of UB).
  bool proveIncluded(unsigned UA, SignalId SigA, unsigned UB, SignalId SigB);

  bool exhausted() const { return Bud.exhausted(); }
  BudgetVerdict verdict() const { return Bud.verdict(); }

  /// Joint-manager statistics (bench_link, GC tests).
  uint64_t liveNodes() const { return Joint.numLiveNodes(); }
  uint64_t gcRuns() const { return Joint.gcRuns(); }
  uint64_t gcReclaimed() const { return Joint.gcReclaimed(); }

private:
  /// Absolute presence function of forest node \p N of unit \p U.
  BddRef presence(unsigned U, ForestNodeId N);

  /// Presence of the *root* of unit \p U's tree rooted at \p Root.
  BddRef rootFn(unsigned U, ForestNodeId Root);

  /// Structurally rebuilds unit-relative BDD \p F over joint variables.
  BddRef translate(unsigned U, BddRef F);

  /// Joint variable for unit \p U's condition variable \p V.
  BddVar jointCondVar(unsigned U, BddVar V);

  /// Joint variable under a canonical string key (shared across units).
  BddVar namedVar(const std::string &Key);

  /// Canonicalizes (unit, signal) across channels: a channel import
  /// becomes the producing (unit, export).
  std::pair<unsigned, SignalId> canonicalSignal(unsigned U, SignalId S) const;

  /// Memoizes \p R under \p Key with an external reference so a sweep
  /// keeps it alive.
  BddRef remember(std::map<std::pair<unsigned, unsigned>, BddRef> &Memo,
                  std::pair<unsigned, unsigned> Key, BddRef R);

  LinkedSystem &Sys;
  Budget Bud;
  BddManager Joint;
  unsigned NextVar = 0;

  std::map<std::string, BddVar> NamedVars;
  /// Per-unit reverse map: unit condition var -> condition signal.
  std::vector<std::map<BddVar, SignalId>> CondSignalOf;
  /// Per-unit map: forest node -> DFS position (== clock slot).
  std::vector<std::map<ForestNodeId, int>> DfsPos;

  std::map<std::pair<unsigned, unsigned>, BddRef> XlatMemo; ///< (U, bits).
  std::map<std::pair<unsigned, unsigned>, BddRef> RootMemo; ///< (U, node).
  std::map<std::pair<unsigned, unsigned>, BddRef> PresMemo; ///< (U, node).
  std::set<std::pair<unsigned, unsigned>> InProgress;
};

} // namespace sigc

#endif // SIGNALC_LINK_JOINTCLOCKSPACE_H
