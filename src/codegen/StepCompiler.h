//===--- StepCompiler.h - Schedule to step-program lowering -----*- C++-*-===//
///
/// \file
/// Turns a scheduled conditional dependency graph into a StepProgram:
/// assigns clock/value/state slots, emits one instruction per action, and
/// builds the nested block structure along the clock tree (the if-then-else
/// nesting of Section 3.4 "Code optimization").
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_CODEGEN_STEPCOMPILER_H
#define SIGNALC_CODEGEN_STEPCOMPILER_H

#include "codegen/StepProgram.h"
#include "graph/CondDepGraph.h"

namespace sigc {

/// Compiles \p Graph's schedule for \p Prog into a step program.
/// Requires a successfully built forest and graph.
StepProgram compileStep(const KernelProgram &Prog, const ClockSystem &Sys,
                        ClockForest &Forest, const CondDepGraph &Graph,
                        const StringInterner &Names);

} // namespace sigc

#endif // SIGNALC_CODEGEN_STEPCOMPILER_H
