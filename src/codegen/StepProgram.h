//===--- StepProgram.h - Single-loop step intermediate form -----*- C++-*-===//
///
/// \file
/// The compiled form of one SIGNAL process: a "single-loop" reactive step
/// (Section 2.6 / Section 4 of the paper). One execution of the step is one
/// reaction (one instant). The step consists of guarded instructions over
///
///   * clock slots  — booleans holding this instant's presence per clock,
///   * value slots  — the current value of each signal,
///   * state slots  — the memories of the "$" delays, surviving instants.
///
/// The same instruction list carries two control structures:
///   * flat:   every instruction tests its own guard (code b of Figure 9),
///   * nested: instructions are grouped into blocks that follow the clock
///     tree, so an absent clock skips its whole subtree (code a of
///     Figure 9 — the optimization the clock hierarchy enables).
/// Both execute identically; the nested one does strictly less guard work.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_CODEGEN_STEPPROGRAM_H
#define SIGNALC_CODEGEN_STEPPROGRAM_H

#include "ast/Value.h"
#include "clock/ClockSystem.h"
#include "sema/Kernel.h"

#include <string>
#include <vector>

namespace sigc {

/// Opcode of one step instruction.
enum class StepOp {
  ReadClockInput,   ///< clock[Target] := environment tick
  EvalClockLiteral, ///< clock[Target] := value[A] == Positive
  EvalClockOp,      ///< clock[Target] := clock[A] <COp> clock[B]
  ReadSignal,       ///< value[Target] := environment input
  EvalFunc,         ///< value[Target] := f(args of equation EqIndex)
  EvalWhen,         ///< value[Target] := value[A] (or the constant)
  EvalDefault,      ///< value[Target] := clock[PresA] ? value[A] : value[B]
  LoadDelay,        ///< value[Target] := state[A]
  StoreDelay,       ///< state[Target] := value[A]
  WriteOutput,      ///< environment output := value[A]
};

const char *stepOpName(StepOp Op);

/// One guarded instruction.
struct StepInstr {
  StepOp Op = StepOp::EvalFunc;
  /// Clock slot that must be present for the instruction to run; -1 runs
  /// always. In nested mode the enclosing block guarantees the guard.
  int Guard = -1;
  int Target = -1;
  int A = -1;
  int B = -1;
  int PresA = -1;         ///< EvalDefault: presence slot of the preferred arm.
  bool Positive = true;   ///< EvalClockLiteral polarity.
  ClockOp COp = ClockOp::Inter;
  int EqIndex = -1;       ///< Kernel equation driving EvalFunc/EvalWhen.
  SignalId Sig = InvalidSignal;
  /// Pre-resolved descriptor index: into ClockInputs for ReadClockInput,
  /// Inputs for ReadSignal, Outputs for WriteOutput; -1 otherwise. Lets
  /// executors reach the environment binding in O(1) instead of scanning
  /// the descriptor tables per instruction per instant.
  int Desc = -1;
};

/// One nested block: a guard plus an ordered mix of instructions and
/// sub-blocks.
struct StepBlock {
  int GuardSlot = -1; ///< -1 for the root block.
  struct Item {
    bool IsBlock = false;
    int Index = 0; ///< Into StepProgram::Instrs or StepProgram::Blocks.
  };
  std::vector<Item> Items;
};

/// A compiled reactive step.
struct StepProgram {
  unsigned NumClockSlots = 0;
  unsigned NumValueSlots = 0;
  std::vector<Value> StateInit; ///< One entry per delay state slot.

  std::vector<StepInstr> Instrs; ///< In schedule order (the flat program).
  std::vector<StepBlock> Blocks; ///< Nested structure over the same instrs.
  int RootBlock = -1;

  /// Environment-facing descriptors.
  struct ClockInputDesc {
    int Slot = -1;
    std::string Name; ///< Derived from the class representative.
  };
  struct SignalIODesc {
    SignalId Sig = InvalidSignal;
    int ValueSlot = -1;
    int ClockSlot = -1;
    TypeKind Type = TypeKind::Unknown;
    std::string Name;
  };
  std::vector<ClockInputDesc> ClockInputs;
  std::vector<SignalIODesc> Inputs;  ///< Input signals (and free locals).
  std::vector<SignalIODesc> Outputs;

  /// Per-signal value slot (-1 when the signal's clock is empty).
  std::vector<int> SignalValueSlot;
  /// Per-signal clock slot (-1 when empty).
  std::vector<int> SignalClockSlot;
  /// Declared type of each value slot, index-aligned with the slot space.
  /// Lowerings that materialize slots as typed storage (the C emitter's
  /// locals) read this instead of re-scanning the kernel signal table.
  std::vector<TypeKind> ValueSlotType;

  /// Renders the flat instruction listing (tests, -dump-step).
  std::string dump() const;
  /// Renders the nested block structure.
  std::string dumpNested() const;

private:
  void dumpBlock(int BlockIdx, unsigned Indent, std::string &Out) const;
};

} // namespace sigc

#endif // SIGNALC_CODEGEN_STEPPROGRAM_H
