//===--- CEmitter.cpp -----------------------------------------------------===//

#include "codegen/CEmitter.h"

#include <cassert>

using namespace sigc;

std::string sigc::sanitizeIdent(const std::string &Name) {
  std::string Out;
  for (char C : Name) {
    if ((C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
        (C >= '0' && C <= '9') || C == '_') {
      Out += C;
      continue;
    }
    switch (C) {
    case '^':
      Out += "ck_";
      break;
    case '[':
      Out += "on_";
      break;
    case '~':
      Out += "not_";
      break;
    case ']':
      break;
    default:
      Out += '_';
      break;
    }
  }
  if (Out.empty() || (Out[0] >= '0' && Out[0] <= '9'))
    Out = "x" + Out;
  return Out;
}

namespace {

const char *cTypeOf(TypeKind T) {
  switch (T) {
  case TypeKind::Boolean:
  case TypeKind::Event:
    return "int";
  case TypeKind::Integer:
    return "long";
  case TypeKind::Real:
    return "double";
  case TypeKind::Unknown:
    return "int";
  }
  return "int";
}

std::string cLiteral(const Value &V) {
  switch (V.Kind) {
  case TypeKind::Boolean:
  case TypeKind::Event:
    return V.Bool ? "1" : "0";
  case TypeKind::Integer:
    return std::to_string(V.Int) + "L";
  case TypeKind::Real: {
    std::string S = std::to_string(V.Real);
    return S;
  }
  case TypeKind::Unknown:
    return "0";
  }
  return "0";
}

/// Renders one step program as C.
class Emitter {
public:
  Emitter(const KernelProgram &Prog, const StepProgram &Step,
          const StringInterner &Names, std::string ProcName,
          const CEmitOptions &Options)
      : Prog(Prog), Step(Step), Names(Names), Proc(std::move(ProcName)),
        Options(Options) {}

  std::string run();

private:
  std::string valueVar(int Slot) const { return "v" + std::to_string(Slot); }
  std::string clockVar(int Slot) const { return "c" + std::to_string(Slot); }
  std::string stateVar(int Slot) const {
    return "st->s" + std::to_string(Slot);
  }

  TypeKind slotType(int ValueSlot) const {
    for (SignalId S = 0; S < Prog.numSignals(); ++S)
      if (Step.SignalValueSlot[S] == ValueSlot)
        return Prog.Signals[S].Type;
    return TypeKind::Unknown;
  }

  std::string funcExpr(const KernelEq &Eq, int Node) const;
  std::string instrStmt(const StepInstr &In) const;
  void emitFlatBody(std::string &Out) const;
  void emitNestedBlock(int BlockIdx, unsigned Indent, std::string &Out) const;
  void emitDriver(std::string &Out) const;

  const KernelProgram &Prog;
  const StepProgram &Step;
  const StringInterner &Names;
  std::string Proc;
  CEmitOptions Options;
};

std::string Emitter::funcExpr(const KernelEq &Eq, int Node) const {
  const FuncNode &N = Eq.Nodes[Node];
  switch (N.Kind) {
  case FuncNode::Kind::Arg:
    return valueVar(Step.SignalValueSlot[Eq.Args[N.ArgIndex]]);
  case FuncNode::Kind::Const:
    return cLiteral(N.Const);
  case FuncNode::Kind::Unary: {
    std::string Inner = funcExpr(Eq, N.Lhs);
    return N.UOp == UnaryOp::Not ? "(!" + Inner + ")" : "(-" + Inner + ")";
  }
  case FuncNode::Kind::Binary: {
    std::string L = funcExpr(Eq, N.Lhs);
    std::string R = funcExpr(Eq, N.Rhs);
    switch (N.BOp) {
    case BinaryOp::Add:
      return "(" + L + " + " + R + ")";
    case BinaryOp::Sub:
      return "(" + L + " - " + R + ")";
    case BinaryOp::Mul:
      return "(" + L + " * " + R + ")";
    case BinaryOp::Div:
      // Match the interpreter: division by zero yields zero.
      return "((" + R + ") == 0 ? 0 : (" + L + ") / (" + R + "))";
    case BinaryOp::Mod:
      return "((" + R + ") == 0 ? 0 : (((" + L + ") % (" + R + ")) + (" + R +
             ")) % (" + R + "))";
    case BinaryOp::And:
      return "(" + L + " && " + R + ")";
    case BinaryOp::Or:
      return "(" + L + " || " + R + ")";
    case BinaryOp::Xor:
      return "(!!" + L + " != !!" + R + ")";
    case BinaryOp::Eq:
      return "(" + L + " == " + R + ")";
    case BinaryOp::Ne:
      return "(" + L + " != " + R + ")";
    case BinaryOp::Lt:
      return "(" + L + " < " + R + ")";
    case BinaryOp::Le:
      return "(" + L + " <= " + R + ")";
    case BinaryOp::Gt:
      return "(" + L + " > " + R + ")";
    case BinaryOp::Ge:
      return "(" + L + " >= " + R + ")";
    }
    return "0";
  }
  }
  return "0";
}

std::string Emitter::instrStmt(const StepInstr &In) const {
  switch (In.Op) {
  case StepOp::ReadClockInput: {
    for (const auto &CI : Step.ClockInputs)
      if (CI.Slot == In.Target)
        return clockVar(In.Target) + " = in->tick_" +
               sanitizeIdent(CI.Name) + ";";
    return clockVar(In.Target) + " = 0;";
  }
  case StepOp::EvalClockLiteral:
    return clockVar(In.Target) + " = " + (In.Positive ? "" : "!") +
           valueVar(In.A) + ";";
  case StepOp::EvalClockOp: {
    std::string A = In.A >= 0 ? clockVar(In.A) : std::string("0");
    std::string B = In.B >= 0 ? clockVar(In.B) : std::string("0");
    switch (In.COp) {
    case ClockOp::Inter:
      return clockVar(In.Target) + " = " + A + " && " + B + ";";
    case ClockOp::Union:
      return clockVar(In.Target) + " = " + A + " || " + B + ";";
    case ClockOp::Diff:
      return clockVar(In.Target) + " = " + A + " && !" + B + ";";
    }
    return "";
  }
  case StepOp::ReadSignal: {
    std::string Name;
    for (const auto &SI : Step.Inputs)
      if (SI.ValueSlot == In.Target)
        Name = SI.Name;
    return valueVar(In.Target) + " = in->" + sanitizeIdent(Name) + ";";
  }
  case StepOp::EvalFunc: {
    const KernelEq &Eq = Prog.Equations[In.EqIndex];
    return valueVar(In.Target) + " = " +
           funcExpr(Eq, static_cast<int>(Eq.Nodes.size()) - 1) + ";";
  }
  case StepOp::EvalWhen: {
    const KernelEq &Eq = Prog.Equations[In.EqIndex];
    if (Eq.WhenValue.isSignal())
      return valueVar(In.Target) + " = " + valueVar(In.A) + ";";
    return valueVar(In.Target) + " = " + cLiteral(Eq.WhenValue.Const) + ";";
  }
  case StepOp::EvalDefault: {
    if (In.A < 0)
      return valueVar(In.Target) + " = " + valueVar(In.B) + ";";
    if (In.B < 0)
      return valueVar(In.Target) + " = " + valueVar(In.A) + ";";
    return valueVar(In.Target) + " = " + clockVar(In.PresA) + " ? " +
           valueVar(In.A) + " : " + valueVar(In.B) + ";";
  }
  case StepOp::LoadDelay:
    return valueVar(In.Target) + " = " + stateVar(In.A) + ";";
  case StepOp::StoreDelay:
    return stateVar(In.Target) + " = " + valueVar(In.A) + ";";
  case StepOp::WriteOutput: {
    std::string Name;
    for (const auto &SO : Step.Outputs)
      if (SO.Sig == In.Sig)
        Name = SO.Name;
    std::string Id = sanitizeIdent(Name);
    return "out->" + Id + "_present = 1; out->" + Id + " = " +
           valueVar(In.A) + ";";
  }
  }
  return "";
}

void Emitter::emitFlatBody(std::string &Out) const {
  for (const StepInstr &In : Step.Instrs) {
    if (In.Guard >= 0)
      Out += "  if (" + clockVar(In.Guard) + ") { " + instrStmt(In) + " }\n";
    else
      Out += "  " + instrStmt(In) + "\n";
  }
}

void Emitter::emitNestedBlock(int BlockIdx, unsigned Indent,
                              std::string &Out) const {
  const StepBlock &B = Step.Blocks[BlockIdx];
  std::string Pad(Indent, ' ');
  if (B.GuardSlot >= 0)
    Out += Pad + "if (" + clockVar(B.GuardSlot) + ") {\n";
  unsigned Inner = B.GuardSlot >= 0 ? Indent + 2 : Indent;
  std::string InnerPad(Inner, ' ');
  for (const StepBlock::Item &It : B.Items) {
    if (It.IsBlock)
      emitNestedBlock(It.Index, Inner, Out);
    else
      Out += InnerPad + instrStmt(Step.Instrs[It.Index]) + "\n";
  }
  if (B.GuardSlot >= 0)
    Out += Pad + "}\n";
}

std::string Emitter::run() {
  std::string Out;
  Out += "/* Generated by signalc from process " + Proc + ".\n";
  Out += " * Control structure: " +
         std::string(Options.Nested ? "nested (clock-tree if nesting)"
                                    : "flat (one guard per statement)") +
         ".\n */\n";
  Out += "#include <string.h>\n";
  if (Options.WithDriver)
    Out += "#include <stdio.h>\n";
  Out += "\n";

  // State struct.
  Out += "typedef struct {\n";
  for (unsigned I = 0; I < Step.StateInit.size(); ++I)
    Out += "  " + std::string(cTypeOf(Step.StateInit[I].Kind)) + " s" +
           std::to_string(I) + ";\n";
  if (Step.StateInit.empty())
    Out += "  int unused;\n";
  Out += "} " + Proc + "_state_t;\n\n";

  // Input struct.
  Out += "typedef struct {\n";
  for (const auto &CI : Step.ClockInputs)
    Out += "  int tick_" + sanitizeIdent(CI.Name) + ";\n";
  for (const auto &SI : Step.Inputs)
    Out += "  " + std::string(cTypeOf(SI.Type)) + " " +
           sanitizeIdent(SI.Name) + ";\n";
  if (Step.ClockInputs.empty() && Step.Inputs.empty())
    Out += "  int unused;\n";
  Out += "} " + Proc + "_in_t;\n\n";

  // Output struct.
  Out += "typedef struct {\n";
  for (const auto &SO : Step.Outputs) {
    std::string Id = sanitizeIdent(SO.Name);
    Out += "  int " + Id + "_present;\n";
    Out += "  " + std::string(cTypeOf(SO.Type)) + " " + Id + ";\n";
  }
  if (Step.Outputs.empty())
    Out += "  int unused;\n";
  Out += "} " + Proc + "_out_t;\n\n";

  // Init.
  Out += "void " + Proc + "_init(" + Proc + "_state_t *st) {\n";
  for (unsigned I = 0; I < Step.StateInit.size(); ++I)
    Out += "  st->s" + std::to_string(I) + " = " +
           cLiteral(Step.StateInit[I]) + ";\n";
  if (Step.StateInit.empty())
    Out += "  st->unused = 0;\n";
  Out += "}\n\n";

  // Step.
  Out += "void " + Proc + "_step(" + Proc + "_state_t *st, const " + Proc +
         "_in_t *in, " + Proc + "_out_t *out) {\n";
  Out += "  memset(out, 0, sizeof *out);\n";
  for (unsigned I = 0; I < Step.NumClockSlots; ++I)
    Out += "  int c" + std::to_string(I) + " = 0;\n";
  for (unsigned I = 0; I < Step.NumValueSlots; ++I) {
    TypeKind T = slotType(static_cast<int>(I));
    Out += "  " + std::string(cTypeOf(T)) + " v" + std::to_string(I) +
           " = 0;\n";
  }
  Out += "\n";
  if (Options.Nested)
    emitNestedBlock(Step.RootBlock, 2, Out);
  else
    emitFlatBody(Out);
  // Silence unused-variable warnings for slots only written.
  Out += "\n";
  for (unsigned I = 0; I < Step.NumClockSlots; ++I)
    Out += "  (void)c" + std::to_string(I) + ";";
  Out += "\n";
  for (unsigned I = 0; I < Step.NumValueSlots; ++I)
    Out += "  (void)v" + std::to_string(I) + ";";
  Out += "\n}\n";

  if (Options.WithDriver)
    emitDriver(Out);
  return Out;
}

void Emitter::emitDriver(std::string &Out) const {
  Out += "\n/* Deterministic pseudo-random driver. */\n";
  Out += "static unsigned long rng_state = 0x12345678UL;\n";
  Out += "static unsigned long rng(void) {\n";
  Out += "  rng_state = rng_state * 6364136223846793005UL + "
         "1442695040888963407UL;\n";
  Out += "  return rng_state >> 33;\n}\n\n";
  Out += "int main(void) {\n";
  Out += "  " + Proc + "_state_t st;\n";
  Out += "  " + Proc + "_in_t in;\n";
  Out += "  " + Proc + "_out_t out;\n";
  Out += "  " + Proc + "_init(&st);\n";
  Out += "  for (unsigned i = 0; i < " + std::to_string(Options.DriverSteps) +
         "; ++i) {\n";
  for (const auto &CI : Step.ClockInputs)
    Out += "    in.tick_" + sanitizeIdent(CI.Name) + " = 1;\n";
  for (const auto &SI : Step.Inputs) {
    std::string Id = sanitizeIdent(SI.Name);
    if (SI.Type == TypeKind::Boolean || SI.Type == TypeKind::Event)
      Out += "    in." + Id + " = (int)(rng() & 1);\n";
    else if (SI.Type == TypeKind::Integer)
      Out += "    in." + Id + " = (long)(rng() % 100);\n";
    else
      Out += "    in." + Id + " = (double)(rng() % 1000) / 10.0;\n";
  }
  Out += "    " + Proc + "_step(&st, &in, &out);\n";
  for (const auto &SO : Step.Outputs) {
    std::string Id = sanitizeIdent(SO.Name);
    const char *Fmt = (SO.Type == TypeKind::Real) ? "%f" : "%ld";
    if (SO.Type == TypeKind::Boolean || SO.Type == TypeKind::Event)
      Fmt = "%d";
    Out += "    if (out." + Id + "_present) printf(\"%u " + Id + "=" + Fmt +
           "\\n\", i, out." + Id + ");\n";
  }
  Out += "  }\n  return 0;\n}\n";
}

} // namespace

std::string sigc::emitC(const KernelProgram &Prog, const StepProgram &Step,
                        const StringInterner &Names,
                        const std::string &ProcName,
                        const CEmitOptions &Options) {
  Emitter E(Prog, Step, Names, ProcName, Options);
  return E.run();
}
