//===--- CEmitter.cpp -----------------------------------------------------===//

#include "codegen/CEmitter.h"

#include <cassert>
#include <cinttypes>
#include <cmath>
#include <cstdio>

using namespace sigc;

std::string sigc::sanitizeIdent(const std::string &Name) {
  std::string Out;
  for (char C : Name) {
    if ((C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
        (C >= '0' && C <= '9') || C == '_') {
      Out += C;
      continue;
    }
    switch (C) {
    case '^':
      Out += "ck_";
      break;
    case '[':
      Out += "on_";
      break;
    case '~':
      Out += "not_";
      break;
    case ']':
      break;
    default:
      Out += '_';
      break;
    }
  }
  if (Out.empty() || (Out[0] >= '0' && Out[0] <= '9'))
    Out = "x" + Out;
  return Out;
}

namespace {

/// C storage class of a slot: the three distinct C types a Value can
/// materialize as. Boolean and Event share `int`.
enum class CClass { Int, Long, Double };

CClass classOf(TypeKind K) {
  switch (K) {
  case TypeKind::Integer:
    return CClass::Long;
  case TypeKind::Real:
    return CClass::Double;
  case TypeKind::Boolean:
  case TypeKind::Event:
  case TypeKind::Unknown:
    return CClass::Int;
  }
  return CClass::Int;
}

const char *cTypeOf(CClass C) {
  switch (C) {
  case CClass::Int:
    return "int";
  case CClass::Long:
    return "long";
  case CClass::Double:
    return "double";
  }
  return "int";
}

const char *cTypeOf(TypeKind T) { return cTypeOf(classOf(T)); }

unsigned classBit(CClass C) { return 1u << static_cast<unsigned>(C); }

std::string intLit(int64_t I) {
  // INT64_MIN has no literal spelling: -9223372036854775808 parses as
  // unary minus applied to an out-of-range constant.
  if (I == INT64_MIN)
    return "(-9223372036854775807L - 1L)";
  std::string S = std::to_string(I) + "L";
  return I < 0 ? "(" + S + ")" : S;
}

std::string realLit(double D) {
  // Build-time folds can produce non-finite constants (1e308 + 1e308);
  // %.17g would print them as the identifiers inf/nan, which are not C.
  if (D != D)
    return "(0.0 / 0.0)";
  if (D == HUGE_VAL)
    return "(1.0 / 0.0)";
  if (D == -HUGE_VAL)
    return "(-1.0 / 0.0)";
  char Buf[64];
  std::snprintf(Buf, sizeof Buf, "%.17g", D);
  std::string S = Buf;
  // Force a floating literal when %.17g printed an integer form.
  if (S.find_first_of(".eE") == std::string::npos)
    S += ".0";
  return D < 0 ? "(" + S + ")" : S;
}

std::string cLiteral(const Value &V) {
  switch (V.Kind) {
  case TypeKind::Boolean:
  case TypeKind::Event:
    return V.Bool ? "1" : "0";
  case TypeKind::Integer:
    return intLit(V.Int);
  case TypeKind::Real:
    return realLit(V.Real);
  case TypeKind::Unknown:
    return "0";
  }
  return "0";
}

/// The statically computed Value kinds of one instruction: the kind it
/// writes and the kinds of its value operands at that program point.
/// These mirror the dynamic kinds VmExecutor's Values take, which is
/// what makes the emitted C bit-compatible with the VM (wrapping integer
/// arithmetic vs double arithmetic is decided by operand kinds).
struct InstrKinds {
  TypeKind Res = TypeKind::Unknown;
  TypeKind A = TypeKind::Unknown;
  TypeKind B = TypeKind::Unknown;
};

/// One expression operand: a slot (with its kind) or an inlined constant.
struct Operand {
  bool IsConst = false;
  int32_t Slot = -1;
  TypeKind Kind = TypeKind::Unknown;
  Value Const;
};

/// Renders one CompiledStep as C.
class Emitter {
public:
  Emitter(const CompiledStep &CS, std::string ProcName,
          const CEmitOptions &Options)
      : CS(CS), Proc(std::move(ProcName)), Options(Options) {}

  std::string run();

private:
  unsigned numSlots() const { return CS.NumValueSlots + CS.NumTempSlots; }

  TypeKind declaredType(int32_t Slot) const {
    if (Slot >= 0 && static_cast<size_t>(Slot) < CS.ValueSlotType.size())
      return CS.ValueSlotType[Slot];
    return TypeKind::Integer; // scratch slots default before first write
  }

  /// Pass 1: simulate the kind flow of the whole stream, recording the
  /// per-instruction kinds and which C classes each slot materializes as.
  void annotate();

  /// Result kind of an operator per evalBinaryValue/evalUnaryValue.
  static TypeKind binaryResultKind(BinaryOp Op, TypeKind L, TypeKind R);

  std::string clockVar(int32_t Slot) const {
    if (FleetMode)
      return "ck[" + std::to_string(Slot) + "][l]";
    return "c" + std::to_string(Slot);
  }
  std::string valueVar(int32_t Slot, TypeKind K) const;

  /// Struct references of the current entry point: the scalar step takes
  /// single st/in/out pointers; the fleet sweep indexes lane l of block
  /// i0 into the instance arrays ([instance][instant] layout).
  std::string stRef() const { return FleetMode ? "st[i0 + l]." : "st->"; }
  std::string inRef() const {
    return FleetMode ? "in[(size_t)(i0 + l) * n_instants + i]." : "in->";
  }
  std::string outRef() const {
    return FleetMode ? "out[(size_t)(i0 + l) * n_instants + i]." : "out->";
  }

  Operand operandA(const VmInstr &In, const InstrKinds &IK) const;
  Operand operandB(const VmInstr &In, const InstrKinds &IK) const;
  std::string text(const Operand &O) const;
  std::string binaryExpr(BinaryOp Op, const Operand &L,
                         const Operand &R) const;
  std::string instrStmt(size_t PC) const;

  void emitBody(std::string &Out) const;
  void emitFleet(std::string &Out);
  void emitFleetBody(std::string &Out) const;
  void emitDriver(std::string &Out) const;

  /// Deepest SkipIfAbsent nesting: one predicate-mask array per level in
  /// the fleet sweep.
  unsigned maxGuardDepth() const;

  const CompiledStep &CS;
  std::string Proc;
  CEmitOptions Options;
  bool FleetMode = false; ///< Emitting the lane-swept fleet entry point.

  std::vector<InstrKinds> Kinds;     ///< Per instruction, from annotate().
  std::vector<unsigned> SlotClasses; ///< Bitmask of CClass per slot.
};

TypeKind Emitter::binaryResultKind(BinaryOp Op, TypeKind L, TypeKind R) {
  bool BothInt = L == TypeKind::Integer && R == TypeKind::Integer;
  switch (Op) {
  case BinaryOp::Add:
  case BinaryOp::Sub:
  case BinaryOp::Mul:
  case BinaryOp::Div:
    return BothInt ? TypeKind::Integer : TypeKind::Real;
  case BinaryOp::Mod:
    return TypeKind::Integer;
  case BinaryOp::And:
  case BinaryOp::Or:
  case BinaryOp::Xor:
  case BinaryOp::Eq:
  case BinaryOp::Ne:
  case BinaryOp::Lt:
  case BinaryOp::Le:
  case BinaryOp::Gt:
  case BinaryOp::Ge:
    return TypeKind::Boolean;
  }
  return TypeKind::Unknown;
}

void Emitter::annotate() {
  Kinds.assign(CS.Code.size(), InstrKinds());
  SlotClasses.assign(numSlots(), 0u);

  // The kind each slot currently holds, evolving down the linear stream.
  // Guards only skip code; they never change which instruction defines a
  // slot's kind, so the linear walk sees the same kinds any execution
  // does (a read whose defining write was skipped is never executed —
  // the schedule guarantees it).
  std::vector<TypeKind> Cur(numSlots(), TypeKind::Unknown);
  auto kindAt = [&](int32_t Slot) {
    TypeKind K = Cur[Slot];
    return K == TypeKind::Unknown ? declaredType(Slot) : K;
  };
  auto touch = [&](int32_t Slot, TypeKind K) {
    SlotClasses[Slot] |= classBit(classOf(K));
  };
  auto write = [&](int32_t Slot, TypeKind K) {
    Cur[Slot] = K;
    touch(Slot, K);
  };
  auto read = [&](int32_t Slot) {
    TypeKind K = kindAt(Slot);
    touch(Slot, K);
    return K;
  };

  for (size_t PC = 0; PC < CS.Code.size(); ++PC) {
    const VmInstr &In = CS.Code[PC];
    InstrKinds &IK = Kinds[PC];
    switch (In.Op) {
    case VmOp::SkipIfAbsent:
    case VmOp::ReadClockInput:
    case VmOp::EvalClockAnd:
    case VmOp::EvalClockOr:
    case VmOp::EvalClockDiff:
    case VmOp::CopyClock:
    case VmOp::SetClockFalse:
      break;
    case VmOp::EvalClockLiteral:
      IK.A = read(In.A);
      break;
    case VmOp::ReadSignal:
      IK.Res = CS.Inputs[In.Aux].Type;
      write(In.Target, IK.Res);
      break;
    case VmOp::UnarySlot:
      IK.A = read(In.A);
      IK.Res = static_cast<UnaryOp>(In.Aux) == UnaryOp::Not
                   ? TypeKind::Boolean
                   : (IK.A == TypeKind::Integer ? TypeKind::Integer
                                                : TypeKind::Real);
      write(In.Target, IK.Res);
      break;
    case VmOp::BinarySS:
      IK.A = read(In.A);
      IK.B = read(In.B);
      IK.Res = binaryResultKind(static_cast<BinaryOp>(In.Aux), IK.A, IK.B);
      write(In.Target, IK.Res);
      break;
    case VmOp::BinarySC:
      IK.A = read(In.A);
      IK.B = CS.Consts[In.B].Kind;
      IK.Res = binaryResultKind(static_cast<BinaryOp>(In.Aux), IK.A, IK.B);
      write(In.Target, IK.Res);
      break;
    case VmOp::BinaryCS:
      IK.A = CS.Consts[In.A].Kind;
      IK.B = read(In.B);
      IK.Res = binaryResultKind(static_cast<BinaryOp>(In.Aux), IK.A, IK.B);
      write(In.Target, IK.Res);
      break;
    case VmOp::CopyValue:
      IK.A = read(In.A);
      IK.Res = IK.A;
      write(In.Target, IK.Res);
      break;
    case VmOp::LoadConst:
      IK.Res = CS.Consts[In.Aux].Kind;
      write(In.Target, IK.Res);
      break;
    case VmOp::Select:
      IK.A = read(In.A);
      IK.B = read(In.B);
      // Sema rejects defaults whose arms mix integer and real, so the
      // arms share a storage class here; the VM's dynamic kind and this
      // static one can only differ within the int class (an event arm
      // against a boolean arm), where the representation is identical.
      IK.Res = classOf(IK.A) == classOf(IK.B) ? IK.A : TypeKind::Real;
      write(In.Target, IK.Res);
      break;
    case VmOp::LoadDelay:
      IK.Res = CS.StateInit[In.A].Kind;
      write(In.Target, IK.Res);
      break;
    case VmOp::StoreDelay:
      IK.A = read(In.A);
      break;
    case VmOp::WriteOutput:
      IK.A = read(In.A);
      break;
    }
  }
}

std::string Emitter::valueVar(int32_t Slot, TypeKind K) const {
  std::string Name = "v" + std::to_string(Slot);
  // One C variable per (slot, storage class): scratch slots are reused
  // across expression trees of different types, so a multi-class slot
  // splits into suffixed locals; the common single-class slot keeps the
  // bare name. In the fleet sweep each variable is a lane array.
  unsigned Mask = SlotClasses[Slot];
  if ((Mask & (Mask - 1)) != 0) {
    switch (classOf(K)) {
    case CClass::Int:
      Name += "_i";
      break;
    case CClass::Long:
      Name += "_l";
      break;
    case CClass::Double:
      Name += "_d";
      break;
    }
  }
  return FleetMode ? Name + "[l]" : Name;
}

Operand Emitter::operandA(const VmInstr &In, const InstrKinds &IK) const {
  Operand O;
  if (In.Op == VmOp::BinaryCS) {
    O.IsConst = true;
    O.Const = CS.Consts[In.A];
    O.Kind = O.Const.Kind;
  } else {
    O.Slot = In.A;
    O.Kind = IK.A;
  }
  return O;
}

Operand Emitter::operandB(const VmInstr &In, const InstrKinds &IK) const {
  Operand O;
  if (In.Op == VmOp::BinarySC) {
    O.IsConst = true;
    O.Const = CS.Consts[In.B];
    O.Kind = O.Const.Kind;
  } else {
    O.Slot = In.B;
    O.Kind = IK.B;
  }
  return O;
}

std::string Emitter::text(const Operand &O) const {
  return O.IsConst ? cLiteral(O.Const) : valueVar(O.Slot, O.Kind);
}

std::string Emitter::binaryExpr(BinaryOp Op, const Operand &L,
                                const Operand &R) const {
  std::string X = text(L), Y = text(R);
  bool BothInt = L.Kind == TypeKind::Integer && R.Kind == TypeKind::Integer;
  auto wrap = [&](const char *COp) {
    // The VM's two's-complement wrapping semantics (Kernel.h wrapAdd &
    // co): compute in unsigned, convert back.
    return "(long)((unsigned long)" + X + " " + COp + " (unsigned long)" +
           Y + ")";
  };
  auto dbl = [&](const std::string &E) { return "(double)" + E; };
  switch (Op) {
  case BinaryOp::Add:
    return BothInt ? wrap("+") : "(" + dbl(X) + " + " + dbl(Y) + ")";
  case BinaryOp::Sub:
    return BothInt ? wrap("-") : "(" + dbl(X) + " - " + dbl(Y) + ")";
  case BinaryOp::Mul:
    return BothInt ? wrap("*") : "(" + dbl(X) + " * " + dbl(Y) + ")";
  case BinaryOp::Div:
    if (BothInt) {
      // Division by zero yields zero; by minus one, wrapping negation
      // (INT64_MIN / -1 overflows). Constant divisors fold the guards.
      std::string NegX = "(long)(0UL - (unsigned long)" + X + ")";
      if (R.IsConst) {
        if (R.Const.Int == 0)
          return "0L";
        if (R.Const.Int == -1)
          return NegX;
        return "(" + X + " / " + Y + ")";
      }
      return "(" + Y + " == 0 ? 0L : " + Y + " == -1 ? " + NegX + " : " + X +
             " / " + Y + ")";
    }
    if (R.IsConst)
      return R.Const.asReal() == 0.0
                 ? "0.0"
                 : "(" + dbl(X) + " / " + dbl(Y) + ")";
    return "(" + dbl(Y) + " == 0.0 ? 0.0 : " + dbl(X) + " / " + dbl(Y) + ")";
  case BinaryOp::Mod:
    // Euclidean-style remainder with the VM's zero/minus-one escapes.
    if (R.IsConst) {
      if (R.Const.Int == 0 || R.Const.Int == -1)
        return "0L";
      return "(((" + X + " % " + Y + ") + " + Y + ") % " + Y + ")";
    }
    return "((" + Y + " == 0 || " + Y + " == -1) ? 0L : ((" + X + " % " + Y +
           ") + " + Y + ") % " + Y + ")";
  case BinaryOp::And:
    return "(" + X + " && " + Y + ")";
  case BinaryOp::Or:
    return "(" + X + " || " + Y + ")";
  case BinaryOp::Xor:
    return "((" + X + " != 0) != (" + Y + " != 0))";
  case BinaryOp::Eq:
  case BinaryOp::Ne: {
    const char *COp = Op == BinaryOp::Eq ? "==" : "!=";
    bool NumL = L.Kind == TypeKind::Integer || L.Kind == TypeKind::Real;
    bool NumR = R.Kind == TypeKind::Integer || R.Kind == TypeKind::Real;
    // Cross-kind non-numeric pairs (a boolean against an event — sema
    // accepts any boolish pair) compare unequal in Value::operator==
    // no matter the payloads; both backends must agree on that.
    if (!NumL && !NumR && L.Kind != R.Kind)
      return Op == BinaryOp::Eq ? "0" : "1";
    if (BothInt || (!NumL && !NumR)) {
      // X = X is a legal program; identity casts keep the comparison
      // semantics while silencing -Wtautological-compare (the VM does
      // not fold it either — the two backends stay instruction-equal).
      if (!L.IsConst && !R.IsConst && L.Slot == R.Slot) {
        const char *CT = BothInt ? "long" : "int";
        return "((" + std::string(CT) + ")(" + X + ") " + COp + " (" + CT +
               ")(" + Y + "))";
      }
      return "(" + X + " " + COp + " " + Y + ")";
    }
    if (NumL && NumR) // mixed numeric: Value::operator== widens to double
      return "(" + dbl(X) + " " + COp + " " + dbl(Y) + ")";
    return Op == BinaryOp::Eq ? "0" : "1"; // cross-kind: never equal
  }
  case BinaryOp::Lt:
  case BinaryOp::Le:
  case BinaryOp::Gt:
  case BinaryOp::Ge: {
    // Orderings go through asReal() in the VM, ints included.
    const char *COp = Op == BinaryOp::Lt   ? "<"
                      : Op == BinaryOp::Le ? "<="
                      : Op == BinaryOp::Gt ? ">"
                                           : ">=";
    return "(" + dbl(X) + " " + COp + " " + dbl(Y) + ")";
  }
  }
  return "0";
}

std::string Emitter::instrStmt(size_t PC) const {
  const VmInstr &In = CS.Code[PC];
  const InstrKinds &IK = Kinds[PC];
  switch (In.Op) {
  case VmOp::SkipIfAbsent:
    assert(false && "structured control handled by emitBody");
    return "";
  case VmOp::ReadClockInput:
    return clockVar(In.Target) + " = " + inRef() + "tick_" +
           sanitizeIdent(CS.ClockInputs[In.Aux].Name) + ";";
  case VmOp::EvalClockLiteral:
    return clockVar(In.Target) + " = " + (In.Aux != 0 ? "" : "!") +
           valueVar(In.A, IK.A) + ";";
  case VmOp::EvalClockAnd:
    return clockVar(In.Target) + " = " + clockVar(In.A) + " && " +
           clockVar(In.B) + ";";
  case VmOp::EvalClockOr:
    return clockVar(In.Target) + " = " + clockVar(In.A) + " || " +
           clockVar(In.B) + ";";
  case VmOp::EvalClockDiff:
    return clockVar(In.Target) + " = " + clockVar(In.A) + " && !" +
           clockVar(In.B) + ";";
  case VmOp::CopyClock:
    return clockVar(In.Target) + " = " + clockVar(In.A) + ";";
  case VmOp::SetClockFalse:
    return clockVar(In.Target) + " = 0;";
  case VmOp::ReadSignal:
    return valueVar(In.Target, IK.Res) + " = " + inRef() +
           sanitizeIdent(CS.Inputs[In.Aux].Name) + ";";
  case VmOp::UnarySlot: {
    std::string A = valueVar(In.A, IK.A);
    std::string E;
    if (static_cast<UnaryOp>(In.Aux) == UnaryOp::Not)
      E = "!" + A;
    else if (IK.A == TypeKind::Integer)
      E = "(long)(0UL - (unsigned long)" + A + ")";
    else
      E = "-" + A;
    return valueVar(In.Target, IK.Res) + " = " + E + ";";
  }
  case VmOp::BinarySS:
  case VmOp::BinarySC:
  case VmOp::BinaryCS:
    return valueVar(In.Target, IK.Res) + " = " +
           binaryExpr(static_cast<BinaryOp>(In.Aux), operandA(In, IK),
                      operandB(In, IK)) +
           ";";
  case VmOp::CopyValue:
    return valueVar(In.Target, IK.Res) + " = " + valueVar(In.A, IK.A) + ";";
  case VmOp::LoadConst:
    return valueVar(In.Target, IK.Res) + " = " + cLiteral(CS.Consts[In.Aux]) +
           ";";
  case VmOp::Select:
    return valueVar(In.Target, IK.Res) + " = " + clockVar(In.Aux) + " ? " +
           valueVar(In.A, IK.A) + " : " + valueVar(In.B, IK.B) + ";";
  case VmOp::LoadDelay:
    return valueVar(In.Target, IK.Res) + " = " + stRef() + "s" +
           std::to_string(In.A) + ";";
  case VmOp::StoreDelay:
    return stRef() + "s" + std::to_string(In.Target) + " = " +
           valueVar(In.A, IK.A) + ";";
  case VmOp::WriteOutput: {
    std::string Id = sanitizeIdent(CS.Outputs[In.Aux].Name);
    return outRef() + Id + "_present = 1; " + outRef() + Id + " = " +
           valueVar(In.A, IK.A) + ";";
  }
  }
  return "";
}

void Emitter::emitBody(std::string &Out) const {
  // The skip offsets are properly nested (each SkipIfAbsent jumps past
  // its own block's lowering), so the stream reconstructs as structured
  // if-nesting: open an `if` at every skip, close it when the PC reaches
  // the recorded offset. Executed-instruction weights accumulate per
  // straight-line region and flush as one counter update at each control
  // boundary — the C step's counters land exactly on the VM's.
  std::vector<int32_t> CloseAt;
  unsigned Indent = 2;
  int64_t PendingExec = 0;
  auto pad = [&]() { return std::string(Indent, ' '); };
  auto flushExec = [&]() {
    if (PendingExec > 0)
      Out += pad() + "st->executed += " + std::to_string(PendingExec) +
             "ULL;\n";
    PendingExec = 0;
  };

  const int32_t End = static_cast<int32_t>(CS.Code.size());
  for (int32_t PC = 0; PC <= End; ++PC) {
    while (!CloseAt.empty() && CloseAt.back() == PC) {
      flushExec();
      CloseAt.pop_back();
      Indent -= 2;
      Out += pad() + "}\n";
    }
    if (PC == End)
      break;
    const VmInstr &In = CS.Code[PC];
    if (In.Op == VmOp::SkipIfAbsent) {
      flushExec();
      Out += pad() + "st->guard_tests += 1ULL;\n";
      Out += pad() + "if (" + clockVar(In.A) + ") {\n";
      CloseAt.push_back(In.Aux);
      Indent += 2;
      continue;
    }
    PendingExec += In.Weight;
    Out += pad() + instrStmt(static_cast<size_t>(PC)) + "\n";
  }
  flushExec();
}

unsigned Emitter::maxGuardDepth() const {
  std::vector<int32_t> Close;
  unsigned Max = 0;
  for (int32_t PC = 0; PC < static_cast<int32_t>(CS.Code.size()); ++PC) {
    while (!Close.empty() && Close.back() == PC)
      Close.pop_back();
    if (CS.Code[PC].Op == VmOp::SkipIfAbsent) {
      Close.push_back(CS.Code[PC].Aux);
      Max = std::max(Max, static_cast<unsigned>(Close.size()));
    }
  }
  return Max;
}

void Emitter::emitFleetBody(std::string &Out) const {
  // Predication instead of branching: the scalar step's if-nesting
  // becomes one 0/1 mask array per nesting level. A guard at depth d
  // charges one guard test to every lane whose depth-d mask is set (those
  // are exactly the lanes that reach the guard in a scalar run) and
  // computes the depth-(d+1) mask; straight-line regions collect into a
  // single lane loop predicated on the region's mask, with the region's
  // instruction weight folded into one executed-counter update.
  const std::string Pad(6, ' ');
  std::vector<int32_t> CloseAt; // Depth == CloseAt.size().
  std::vector<std::string> Region;
  int64_t PendingExec = 0;

  auto mask = [&](unsigned Depth) { return "m" + std::to_string(Depth); };
  auto flushRegion = [&]() {
    if (Region.empty() && PendingExec == 0)
      return;
    unsigned Depth = static_cast<unsigned>(CloseAt.size());
    Out += Pad + "for (l = 0; l < nb; ++l) ";
    if (Depth)
      Out += "if (" + mask(Depth) + "[l]) ";
    Out += "{\n";
    for (const std::string &Stmt : Region)
      Out += Pad + "  " + Stmt + "\n";
    if (PendingExec > 0)
      Out += Pad + "  st[i0 + l].executed += " + std::to_string(PendingExec) +
             "ULL;\n";
    Out += Pad + "}\n";
    Region.clear();
    PendingExec = 0;
  };

  const int32_t End = static_cast<int32_t>(CS.Code.size());
  for (int32_t PC = 0; PC <= End; ++PC) {
    while (!CloseAt.empty() && CloseAt.back() == PC) {
      flushRegion();
      CloseAt.pop_back();
    }
    if (PC == End)
      break;
    const VmInstr &In = CS.Code[PC];
    if (In.Op == VmOp::SkipIfAbsent) {
      flushRegion();
      unsigned Depth = static_cast<unsigned>(CloseAt.size());
      std::string Guard = clockVar(In.A);
      Out += Pad + "for (l = 0; l < nb; ++l) {\n";
      if (Depth == 0) {
        Out += Pad + "  st[i0 + l].guard_tests += 1ULL;\n";
        Out += Pad + "  " + mask(1) + "[l] = " + Guard + " != 0;\n";
      } else {
        Out += Pad + "  st[i0 + l].guard_tests += (unsigned long long)" +
               mask(Depth) + "[l];\n";
        Out += Pad + "  " + mask(Depth + 1) + "[l] = " + mask(Depth) +
               "[l] && " + Guard + ";\n";
      }
      Out += Pad + "}\n";
      CloseAt.push_back(In.Aux);
      continue;
    }
    PendingExec += In.Weight;
    Region.push_back(instrStmt(static_cast<size_t>(PC)));
  }
  flushRegion();
}

void Emitter::emitFleet(std::string &Out) {
  FleetMode = true;

  // Fleet entry point: n_instances independent sessions of this process,
  // n_instants reactions each, in one call. st is one state struct per
  // instance; in/out are [instance][instant] arrays. The bytecode is
  // swept instruction by instruction across lane blocks of
  // SIGC_FLEET_BLOCK instances (override at compile time), so dispatch
  // cost is paid once per block and the lane loops vectorize.
  Out += "#ifndef SIGC_FLEET_BLOCK\n";
  Out += "#define SIGC_FLEET_BLOCK 64\n";
  Out += "#endif\n\n";
  Out += "void " + Proc + "_step_fleet(" + Proc + "_state_t *st, const " +
         Proc + "_in_t *in, " + Proc + "_out_t *out, unsigned n_instances, "
         "unsigned n_instants) {\n";
  Out += "  unsigned i0, i, l, nb;\n";
  unsigned Depth = maxGuardDepth();
  for (unsigned D = 1; D <= Depth; ++D)
    Out += "  int m" + std::to_string(D) + "[SIGC_FLEET_BLOCK];\n";
  if (CS.NumClockSlots)
    Out += "  int ck[" + std::to_string(CS.NumClockSlots) +
           "][SIGC_FLEET_BLOCK];\n";
  // Lane arrays for the value slots; like the VM's slot file they are
  // zeroed once and persist across instants (any executed read follows a
  // same-instant executed write — the schedule guarantees it).
  std::vector<std::string> SlotArrays;
  for (unsigned S = 0; S < numSlots(); ++S) {
    unsigned Mask = SlotClasses[S];
    if (!Mask)
      continue;
    for (CClass C : {CClass::Int, CClass::Long, CClass::Double}) {
      if (!(Mask & classBit(C)))
        continue;
      TypeKind K = C == CClass::Int      ? TypeKind::Boolean
                   : C == CClass::Long   ? TypeKind::Integer
                                         : TypeKind::Real;
      // valueVar appends the lane index in fleet mode; strip it for the
      // declaration.
      std::string Name = valueVar(static_cast<int32_t>(S), K);
      Name.resize(Name.size() - 3);
      SlotArrays.push_back(Name);
      Out += "  " + std::string(cTypeOf(C)) + " " + Name +
             "[SIGC_FLEET_BLOCK] = {0};\n";
    }
  }
  if (CS.Code.empty()) {
    Out += "  (void)l;\n";
    Out += "  (void)nb;\n";
  }
  Out += "  if (n_instances == 0 || n_instants == 0)\n";
  Out += "    return;\n";
  Out += "  memset(out, 0, sizeof(*out) * (size_t)n_instances * "
         "n_instants);\n";
  Out += "  for (i0 = 0; i0 < n_instances; i0 += SIGC_FLEET_BLOCK) {\n";
  Out += "    nb = n_instances - i0;\n";
  Out += "    if (nb > SIGC_FLEET_BLOCK)\n";
  Out += "      nb = SIGC_FLEET_BLOCK;\n";
  Out += "    for (i = 0; i < n_instants; ++i) {\n";
  if (CS.NumClockSlots)
    Out += "      memset(ck, 0, sizeof ck);\n";
  emitFleetBody(Out);
  Out += "    }\n";
  Out += "  }\n";
  // Silence unused-variable warnings for slot arrays only written.
  for (const std::string &V : SlotArrays)
    Out += "  (void)" + V + ";";
  if (!SlotArrays.empty())
    Out += "\n";
  Out += "}\n";

  FleetMode = false;
}

std::string Emitter::run() {
  annotate();

  std::string Out;
  Out += "/* Generated by signalc from process " + Proc + ".\n";
  Out += " * Lowered from CompiledStep bytecode: structured ifs from skip\n";
  Out += " * offsets, typed slot locals, build-time constant folds"
         " inlined.\n */\n";
  Out += "#include <string.h>\n";
  if (Options.WithDriver)
    Out += "#include <stdio.h>\n";
  Out += "\n";

  // State struct: delay memories plus the VM-pinned counters.
  Out += "typedef struct {\n";
  for (unsigned I = 0; I < CS.StateInit.size(); ++I)
    Out += "  " + std::string(cTypeOf(CS.StateInit[I].Kind)) + " s" +
           std::to_string(I) + ";\n";
  Out += "  unsigned long long guard_tests;\n";
  Out += "  unsigned long long executed;\n";
  Out += "} " + Proc + "_state_t;\n\n";

  // Input struct.
  Out += "typedef struct {\n";
  for (const auto &CI : CS.ClockInputs)
    Out += "  int tick_" + sanitizeIdent(CI.Name) + ";\n";
  for (const auto &SI : CS.Inputs)
    Out += "  " + std::string(cTypeOf(SI.Type)) + " " +
           sanitizeIdent(SI.Name) + ";\n";
  if (CS.ClockInputs.empty() && CS.Inputs.empty())
    Out += "  int unused;\n";
  Out += "} " + Proc + "_in_t;\n\n";

  // Output struct.
  Out += "typedef struct {\n";
  for (const auto &SO : CS.Outputs) {
    std::string Id = sanitizeIdent(SO.Name);
    Out += "  int " + Id + "_present;\n";
    Out += "  " + std::string(cTypeOf(SO.Type)) + " " + Id + ";\n";
  }
  if (CS.Outputs.empty())
    Out += "  int unused;\n";
  Out += "} " + Proc + "_out_t;\n\n";

  // Init.
  Out += "void " + Proc + "_init(" + Proc + "_state_t *st) {\n";
  for (unsigned I = 0; I < CS.StateInit.size(); ++I)
    Out += "  st->s" + std::to_string(I) + " = " +
           cLiteral(CS.StateInit[I]) + ";\n";
  Out += "  st->guard_tests = 0ULL;\n";
  Out += "  st->executed = 0ULL;\n";
  Out += "}\n\n";

  // Step: one reaction.
  Out += "void " + Proc + "_step(" + Proc + "_state_t *st, const " + Proc +
         "_in_t *in, " + Proc + "_out_t *out) {\n";
  Out += "  memset(out, 0, sizeof *out);\n";
  for (unsigned I = 0; I < CS.NumClockSlots; ++I)
    Out += "  int c" + std::to_string(I) + " = 0;\n";
  // Slot locals: one variable per (slot, storage class) the bytecode
  // materializes; untouched slots need no local at all.
  std::vector<std::string> SlotVars;
  for (unsigned S = 0; S < numSlots(); ++S) {
    unsigned Mask = SlotClasses[S];
    if (!Mask)
      continue;
    for (CClass C : {CClass::Int, CClass::Long, CClass::Double}) {
      if (!(Mask & classBit(C)))
        continue;
      TypeKind K = C == CClass::Int      ? TypeKind::Boolean
                   : C == CClass::Long   ? TypeKind::Integer
                                         : TypeKind::Real;
      std::string Name = valueVar(static_cast<int32_t>(S), K);
      SlotVars.push_back(Name);
      Out += "  " + std::string(cTypeOf(C)) + " " + Name + " = 0;\n";
    }
  }
  Out += "\n";
  emitBody(Out);
  // Silence unused-variable warnings for slots only written.
  Out += "\n";
  for (unsigned I = 0; I < CS.NumClockSlots; ++I)
    Out += "  (void)c" + std::to_string(I) + ";";
  Out += "\n";
  for (const std::string &V : SlotVars)
    Out += "  (void)" + V + ";";
  Out += "\n}\n\n";

  // Batched entry point: N reactions, one call — the C mirror of
  // VmExecutor::stepN (one crossing of the caller boundary per batch).
  Out += "void " + Proc + "_step_batch(" + Proc + "_state_t *st, const " +
         Proc + "_in_t *in, " + Proc + "_out_t *out, unsigned n) {\n";
  Out += "  unsigned i;\n";
  Out += "  for (i = 0; i < n; ++i)\n";
  Out += "    " + Proc + "_step(st, &in[i], &out[i]);\n";
  Out += "}\n\n";

  emitFleet(Out);

  if (Options.WithDriver)
    emitDriver(Out);
  return Out;
}

void Emitter::emitDriver(std::string &Out) const {
  Out += "\n/* Deterministic pseudo-random driver. */\n";
  Out += "static unsigned long rng_state = 0x12345678UL;\n";
  Out += "static unsigned long rng(void) {\n";
  Out += "  rng_state = rng_state * 6364136223846793005UL + "
         "1442695040888963407UL;\n";
  Out += "  return rng_state >> 33;\n}\n\n";
  Out += "int main(void) {\n";
  Out += "  " + Proc + "_state_t st;\n";
  Out += "  " + Proc + "_in_t in;\n";
  Out += "  " + Proc + "_out_t out;\n";
  Out += "  unsigned i;\n";
  Out += "  " + Proc + "_init(&st);\n";
  Out += "  for (i = 0; i < " + std::to_string(Options.DriverSteps) +
         "; ++i) {\n";
  for (const auto &CI : CS.ClockInputs)
    Out += "    in.tick_" + sanitizeIdent(CI.Name) + " = 1;\n";
  for (const auto &SI : CS.Inputs) {
    std::string Id = sanitizeIdent(SI.Name);
    if (SI.Type == TypeKind::Boolean || SI.Type == TypeKind::Event)
      Out += "    in." + Id + " = (int)(rng() & 1);\n";
    else if (SI.Type == TypeKind::Integer)
      Out += "    in." + Id + " = (long)(rng() % 100);\n";
    else
      Out += "    in." + Id + " = (double)(rng() % 1000) / 10.0;\n";
  }
  Out += "    " + Proc + "_step(&st, &in, &out);\n";
  for (const auto &SO : CS.Outputs) {
    std::string Id = sanitizeIdent(SO.Name);
    const char *Fmt = (SO.Type == TypeKind::Real) ? "%f" : "%ld";
    if (SO.Type == TypeKind::Boolean || SO.Type == TypeKind::Event)
      Fmt = "%d";
    Out += "    if (out." + Id + "_present) printf(\"%u " + Id + "=" + Fmt +
           "\\n\", i, out." + Id + ");\n";
  }
  Out += "  }\n  return 0;\n}\n";
}

} // namespace

std::string sigc::emitC(const CompiledStep &Step, const std::string &ProcName,
                        const CEmitOptions &Options) {
  Emitter E(Step, ProcName, Options);
  return E.run();
}
