//===--- CEmitter.h - Sequential C code generation --------------*- C++-*-===//
///
/// \file
/// Renders a StepProgram as a self-contained C source file implementing
/// the single-loop code generation scheme of Section 2.6. Two control
/// structures are supported:
///
///   * nested — the if-then-else nesting along the clock tree that the
///     paper's hierarchy enables (code a of Figure 9),
///   * flat — one guard test per statement (code b of Figure 9),
///
/// so a reader can diff exactly what the clock inclusion tree buys.
///
/// Contract of the generated code: the caller fills the input struct with
/// the free-clock ticks and the value of every input signal it may need
/// this instant; the step reads an input value only when the corresponding
/// clock is present, and sets <name>_present flags on outputs.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_CODEGEN_CEMITTER_H
#define SIGNALC_CODEGEN_CEMITTER_H

#include "codegen/StepProgram.h"
#include "support/StringInterner.h"

#include <string>

namespace sigc {

/// Options for C emission.
struct CEmitOptions {
  bool Nested = true;     ///< Clock-tree if-nesting vs. flat guards.
  bool WithDriver = false;///< Also emit a main() exercising the step with a
                          ///< deterministic pseudo-random environment.
  unsigned DriverSteps = 32;
};

/// Emits C for \p Step. \p ProcName names the generated symbols.
std::string emitC(const KernelProgram &Prog, const StepProgram &Step,
                  const StringInterner &Names, const std::string &ProcName,
                  const CEmitOptions &Options);

/// Makes an arbitrary string a valid C identifier fragment.
std::string sanitizeIdent(const std::string &Name);

} // namespace sigc

#endif // SIGNALC_CODEGEN_CEMITTER_H
