//===--- CEmitter.h - Sequential C code generation --------------*- C++-*-===//
///
/// \file
/// Renders a CompiledStep — the slot-resolved bytecode that is this
/// compiler's single lowered IR — as a self-contained C source file
/// implementing the single-loop code generation scheme of Section 2.6.
/// The emitter walks the same instruction stream the VM executes, so the
/// two backends cannot drift:
///
///   * every `SkipIfAbsent` becomes a structured `if` over the guard's
///     clock local (the skip offsets are properly nested by
///     construction, so the stream reconstructs as pure if-nesting —
///     code a of Figure 9),
///   * scratch expression slots become typed C locals; value slots take
///     the static type the bytecode computes for them (integer
///     arithmetic is emitted with the VM's two's-complement wrapping
///     semantics, comparisons with its widen-to-double semantics),
///   * constants the build-time folds produced are inlined as literals,
///     and constant divisors fold their zero/minus-one guards away,
///   * descriptor indices are pre-resolved, so struct field references
///     are computed at emission time with no run-time table scans.
///
/// The generated state struct carries `guard_tests`/`executed` counters
/// maintained exactly as the VM maintains its own (one guard test per
/// `if`, instruction weights summed per straight-line region), so a C
/// run is pinned number-for-number against a VM run of the same trace.
///
/// Contract of the generated code: the caller fills the input struct with
/// the free-clock ticks and the value of every input signal it may need
/// this instant; the step reads an input value only when the corresponding
/// clock is present, and sets <name>_present flags on outputs. A
/// `<proc>_step_batch` entry point runs N instants over input/output
/// arrays in one call — the C mirror of `VmExecutor::stepN`.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_CODEGEN_CEMITTER_H
#define SIGNALC_CODEGEN_CEMITTER_H

#include "interp/CompiledStep.h"

#include <string>

namespace sigc {

/// Options for C emission.
struct CEmitOptions {
  bool WithDriver = false;///< Also emit a main() exercising the step with a
                          ///< deterministic pseudo-random environment.
  unsigned DriverSteps = 32;
};

/// Emits C for \p Step. \p ProcName names the generated symbols.
std::string emitC(const CompiledStep &Step, const std::string &ProcName,
                  const CEmitOptions &Options);

/// Makes an arbitrary string a valid C identifier fragment.
std::string sanitizeIdent(const std::string &Name);

} // namespace sigc

#endif // SIGNALC_CODEGEN_CEMITTER_H
