//===--- StepProgram.cpp --------------------------------------------------===//

#include "codegen/StepProgram.h"

using namespace sigc;

const char *sigc::stepOpName(StepOp Op) {
  switch (Op) {
  case StepOp::ReadClockInput:
    return "read-clock";
  case StepOp::EvalClockLiteral:
    return "clock-literal";
  case StepOp::EvalClockOp:
    return "clock-op";
  case StepOp::ReadSignal:
    return "read-signal";
  case StepOp::EvalFunc:
    return "eval-func";
  case StepOp::EvalWhen:
    return "eval-when";
  case StepOp::EvalDefault:
    return "eval-default";
  case StepOp::LoadDelay:
    return "load-delay";
  case StepOp::StoreDelay:
    return "store-delay";
  case StepOp::WriteOutput:
    return "write-output";
  }
  return "<bad>";
}

std::string StepProgram::dump() const {
  std::string Out;
  for (unsigned I = 0; I < Instrs.size(); ++I) {
    const StepInstr &In = Instrs[I];
    Out += "  [" + std::to_string(I) + "] ";
    if (In.Guard >= 0)
      Out += "if c" + std::to_string(In.Guard) + ": ";
    Out += stepOpName(In.Op);
    Out += " t=" + std::to_string(In.Target);
    if (In.A >= 0)
      Out += " a=" + std::to_string(In.A);
    if (In.B >= 0)
      Out += " b=" + std::to_string(In.B);
    if (In.EqIndex >= 0)
      Out += " eq=" + std::to_string(In.EqIndex);
    Out += "\n";
  }
  return Out;
}

void StepProgram::dumpBlock(int BlockIdx, unsigned Indent,
                            std::string &Out) const {
  const StepBlock &B = Blocks[BlockIdx];
  std::string Pad(Indent * 2, ' ');
  if (B.GuardSlot >= 0)
    Out += Pad + "if c" + std::to_string(B.GuardSlot) + " {\n";
  for (const StepBlock::Item &It : B.Items) {
    if (It.IsBlock) {
      dumpBlock(It.Index, Indent + (B.GuardSlot >= 0 ? 1 : 0), Out);
      continue;
    }
    const StepInstr &In = Instrs[It.Index];
    Out += Pad + (B.GuardSlot >= 0 ? "  " : "") + stepOpName(In.Op) + " t=" +
           std::to_string(In.Target) + "\n";
  }
  if (B.GuardSlot >= 0)
    Out += Pad + "}\n";
}

std::string StepProgram::dumpNested() const {
  std::string Out;
  if (RootBlock >= 0)
    dumpBlock(RootBlock, 0, Out);
  return Out;
}
