//===--- StepCompiler.cpp -------------------------------------------------===//

#include "codegen/StepCompiler.h"

#include <cassert>
#include <unordered_map>

using namespace sigc;

namespace {

/// Builds the nested block structure over the emitted instructions: blocks
/// follow the clock tree, instructions live in the block of their guard,
/// and a block is (re)opened lazily when the schedule reaches an
/// instruction guarded by it.
class NestedBuilder {
public:
  NestedBuilder(StepProgram &Prog, ClockForest &Forest,
                const std::unordered_map<ForestNodeId, int> &SlotOfNode)
      : Prog(Prog), Forest(Forest), SlotOfNode(SlotOfNode),
        SlotComputed(SlotOfNode.size(), false) {
    Prog.Blocks.emplace_back(); // Root block, guard -1.
    Prog.RootBlock = 0;
    Stack.push_back({InvalidForestNode, 0});
  }

  /// Appends instruction \p InstrIdx guarded by tree node \p GuardNode
  /// (InvalidForestNode = unguarded).
  void append(int InstrIdx, ForestNodeId GuardNode) {
    openPathTo(GuardNode);
    Prog.Blocks[Stack.back().Block].Items.push_back({false, InstrIdx});
  }

  /// Records that the slot of clock \p Node is computed from here on and
  /// may be used as a block guard.
  void markComputed(ForestNodeId Node) {
    SlotComputed[SlotOfNode.at(Node)] = true;
  }

private:
  struct Frame {
    ForestNodeId Node;
    int Block;
  };

  void openPathTo(ForestNodeId Target) {
    // Path of tree nodes from the root to Target. A block's guard test
    // reads the guard's clock slot at block-entry time, so only
    // already-computed ancestors can participate in the nesting:
    // reparenting (a derived clock inserted under a deeper parent whose
    // presence the schedule computes later) would otherwise read a slot
    // that is still zero and wrongly skip the subtree. Dropping an
    // uncomputed ancestor is sound — the instruction's own guard implies
    // every ancestor by clock inclusion; the ancestor test is only the
    // Figure-9 sharing optimization.
    std::vector<ForestNodeId> Path;
    if (Target != InvalidForestNode) {
      Path.push_back(Target);
      for (ForestNodeId N = Forest.node(Target).Parent;
           N != InvalidForestNode; N = Forest.node(N).Parent)
        if (SlotComputed[SlotOfNode.at(N)])
          Path.push_back(N);
    }
    // Stack[0] is the unguarded root; align the rest with Path reversed.
    size_t Keep = 1;
    for (size_t I = 0; I < Path.size(); ++I) {
      size_t StackIdx = 1 + I;
      ForestNodeId Want = Path[Path.size() - 1 - I];
      if (StackIdx < Stack.size() && Stack[StackIdx].Node == Want)
        Keep = StackIdx + 1;
      else
        break;
    }
    Stack.resize(Keep);
    // Open the missing blocks down to Target.
    for (size_t I = Keep - 1; I < Path.size(); ++I) {
      ForestNodeId Want = Path[Path.size() - 1 - I];
      int BlockIdx = static_cast<int>(Prog.Blocks.size());
      StepBlock B;
      B.GuardSlot = SlotOfNode.at(Want);
      Prog.Blocks.push_back(B);
      Prog.Blocks[Stack.back().Block].Items.push_back({true, BlockIdx});
      Stack.push_back({Want, BlockIdx});
    }
  }

  StepProgram &Prog;
  ClockForest &Forest;
  const std::unordered_map<ForestNodeId, int> &SlotOfNode;
  std::vector<bool> SlotComputed;
  std::vector<Frame> Stack;
};

std::string clockName(ForestNodeId N, ClockForest &Forest,
                      const ClockSystem &Sys, const KernelProgram &Prog,
                      const StringInterner &Names) {
  return Sys.varName(Forest.node(N).Rep, Prog, Names);
}

} // namespace

StepProgram sigc::compileStep(const KernelProgram &Prog,
                              const ClockSystem &Sys, ClockForest &Forest,
                              const CondDepGraph &Graph,
                              const StringInterner &Names) {
  StepProgram SP;

  // --- Slot assignment ----------------------------------------------------
  std::unordered_map<ForestNodeId, int> SlotOfNode;
  for (ForestNodeId N : Forest.dfsOrder())
    SlotOfNode.emplace(N, static_cast<int>(SlotOfNode.size()));
  SP.NumClockSlots = static_cast<unsigned>(SlotOfNode.size());

  SP.SignalValueSlot.assign(Prog.numSignals(), -1);
  SP.SignalClockSlot.assign(Prog.numSignals(), -1);
  for (SignalId S = 0; S < Prog.numSignals(); ++S) {
    ForestNodeId N = Forest.nodeOf(Sys.signalClock(S));
    if (N == InvalidForestNode)
      continue;
    SP.SignalClockSlot[S] = SlotOfNode.at(N);
    SP.SignalValueSlot[S] = static_cast<int>(SP.NumValueSlots++);
    SP.ValueSlotType.push_back(Prog.Signals[S].Type);
  }

  // State slots, one per delay equation with a live target.
  std::unordered_map<int, int> StateSlotOfEq;
  for (unsigned EqI = 0; EqI < Prog.Equations.size(); ++EqI) {
    const KernelEq &Eq = Prog.Equations[EqI];
    if (Eq.Kind != KernelEqKind::Delay ||
        SP.SignalValueSlot[Eq.Target] < 0)
      continue;
    StateSlotOfEq[static_cast<int>(EqI)] =
        static_cast<int>(SP.StateInit.size());
    SP.StateInit.push_back(Eq.DelayInit);
  }

  NestedBuilder Nest(SP, Forest, SlotOfNode);

  auto sigName = [&](SignalId S) {
    return std::string(Names.spelling(Prog.Signals[S].Name));
  };

  // --- Instruction emission, one per scheduled action ---------------------
  for (int ActIdx : Graph.schedule()) {
    const Action &A = Graph.actions()[ActIdx];
    StepInstr In;
    ForestNodeId GuardNode = InvalidForestNode;

    switch (A.Kind) {
    case ActionKind::ClockInput: {
      In.Op = StepOp::ReadClockInput;
      In.Target = SlotOfNode.at(A.Clock);
      In.Desc = static_cast<int>(SP.ClockInputs.size());
      SP.ClockInputs.push_back(
          {In.Target, clockName(A.Clock, Forest, Sys, Prog, Names)});
      break;
    }
    case ActionKind::ClockEval: {
      const ClockNode &Node = Forest.node(A.Clock);
      In.Target = SlotOfNode.at(A.Clock);
      if (Node.Def == ClockDefKind::Literal) {
        // [C] = present(ĉ) ∧ (C == polarity): guarded by the condition's
        // clock (an ancestor in the tree), so the slot stays false when C
        // is absent.
        In.Op = StepOp::EvalClockLiteral;
        In.A = SP.SignalValueSlot[Node.CondSignal];
        In.Positive = Node.Positive;
        ForestNodeId CondClock =
            Forest.nodeOf(Sys.signalClock(Node.CondSignal));
        In.Guard = SlotOfNode.at(CondClock);
        GuardNode = CondClock;
      } else {
        // Derived/residual presence is a cheap boolean over already
        // computed slots; it runs unguarded because its operands may sit
        // below it in the tree (reparenting).
        In.Op = StepOp::EvalClockOp;
        In.COp = Node.Op;
        ForestNodeId NA = Forest.nodeOf(Node.OpA);
        ForestNodeId NB = Forest.nodeOf(Node.OpB);
        In.A = NA == InvalidForestNode ? -1 : SlotOfNode.at(NA);
        In.B = NB == InvalidForestNode ? -1 : SlotOfNode.at(NB);
      }
      break;
    }
    case ActionKind::SignalInput: {
      In.Op = StepOp::ReadSignal;
      In.Target = SP.SignalValueSlot[A.Sig];
      In.Sig = A.Sig;
      In.Guard = SP.SignalClockSlot[A.Sig];
      GuardNode = A.Clock;
      In.Desc = static_cast<int>(SP.Inputs.size());
      SP.Inputs.push_back({A.Sig, In.Target, In.Guard,
                           Prog.Signals[A.Sig].Type, sigName(A.Sig)});
      break;
    }
    case ActionKind::SignalEval: {
      const KernelEq &Eq = Prog.Equations[A.EqIndex];
      In.Target = SP.SignalValueSlot[A.Sig];
      In.EqIndex = A.EqIndex;
      In.Sig = A.Sig;
      In.Guard = SP.SignalClockSlot[A.Sig];
      GuardNode = A.Clock;
      switch (Eq.Kind) {
      case KernelEqKind::Func:
        In.Op = StepOp::EvalFunc;
        break;
      case KernelEqKind::When:
        In.Op = StepOp::EvalWhen;
        if (Eq.WhenValue.isSignal())
          In.A = SP.SignalValueSlot[Eq.WhenValue.Sig];
        break;
      case KernelEqKind::Default:
        In.Op = StepOp::EvalDefault;
        In.A = SP.SignalValueSlot[Eq.DefaultPreferred];
        In.B = SP.SignalValueSlot[Eq.DefaultAlternative];
        In.PresA = SP.SignalClockSlot[Eq.DefaultPreferred];
        break;
      case KernelEqKind::Delay:
        assert(false && "delay scheduled as SignalEval");
        break;
      }
      break;
    }
    case ActionKind::LoadDelay: {
      In.Op = StepOp::LoadDelay;
      In.Target = SP.SignalValueSlot[A.Sig];
      In.A = StateSlotOfEq.at(A.EqIndex);
      In.Sig = A.Sig;
      In.Guard = SP.SignalClockSlot[A.Sig];
      GuardNode = A.Clock;
      break;
    }
    case ActionKind::StoreDelay: {
      const KernelEq &Eq = Prog.Equations[A.EqIndex];
      In.Op = StepOp::StoreDelay;
      In.Target = StateSlotOfEq.at(A.EqIndex);
      In.A = SP.SignalValueSlot[Eq.DelaySource];
      In.Sig = A.Sig;
      In.Guard = SP.SignalClockSlot[A.Sig];
      GuardNode = A.Clock;
      break;
    }
    case ActionKind::WriteOutput: {
      In.Op = StepOp::WriteOutput;
      In.A = SP.SignalValueSlot[A.Sig];
      In.Target = In.A;
      In.Sig = A.Sig;
      In.Guard = SP.SignalClockSlot[A.Sig];
      GuardNode = A.Clock;
      In.Desc = static_cast<int>(SP.Outputs.size());
      SP.Outputs.push_back({A.Sig, In.A, In.Guard, Prog.Signals[A.Sig].Type,
                            sigName(A.Sig)});
      break;
    }
    }

    int InstrIdx = static_cast<int>(SP.Instrs.size());
    SP.Instrs.push_back(In);
    Nest.append(InstrIdx, GuardNode);
    // From here on the action's clock slot holds its final value (a
    // literal skipped by an absent condition clock correctly stays 0),
    // so later instructions may nest under it.
    if (A.Kind == ActionKind::ClockInput || A.Kind == ActionKind::ClockEval)
      Nest.markComputed(A.Clock);
  }

  return SP;
}
