//===--- NativeCache.cpp --------------------------------------------------===//

#include "native/NativeCache.h"

#include "native/CcRunner.h"
#include "native/StepHash.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include <sys/stat.h>
#include <unistd.h>

using namespace sigc;

namespace {

bool fileExists(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0;
}

/// mkdir -p: creates every missing component, tolerating races with
/// other processes creating the same directories.
void makeDirs(const std::string &Path) {
  std::string Cur;
  for (size_t I = 0; I <= Path.size(); ++I) {
    if (I == Path.size() || Path[I] == '/') {
      if (!Cur.empty())
        ::mkdir(Cur.c_str(), 0755);
      if (I < Path.size())
        Cur += '/';
      continue;
    }
    Cur += Path[I];
  }
}

/// Distinguishes concurrent publishers within one process.
std::atomic<unsigned> TmpCounter{0};

} // namespace

std::string NativeCache::defaultDir() {
  if (const char *X = std::getenv("XDG_CACHE_HOME"); X && *X)
    return std::string(X) + "/signalc";
  if (const char *H = std::getenv("HOME"); H && *H)
    return std::string(H) + "/.cache/signalc";
  return "/tmp/signalc-cache";
}

NativeCache::NativeCache(const std::string &D)
    : Dir(D.empty() ? defaultDir() : D) {
  makeDirs(Dir);
}

std::unique_ptr<NativeModule>
NativeCache::tryLoad(const std::string &Hash, std::string &Error) const {
  std::string Path = soPath(Hash);
  if (!fileExists(Path))
    return nullptr;
  auto Mod = std::make_unique<NativeModule>();
  if (Mod->load(Path, Hash, Error))
    return Mod;
  // Corrupt, truncated, or stale: discard so the recompile republishes a
  // valid artifact instead of hitting the same bad file forever.
  std::remove(Path.c_str());
  return nullptr;
}

std::unique_ptr<NativeModule>
NativeCache::compileAndPublish(const CompiledStep &CS, const std::string &Hash,
                               std::string &Error) const {
  std::string Source = NativeModule::buildSource(CS, Hash);
  std::string Tmp = Dir + "/tmp." + std::to_string(::getpid()) + "." +
                    std::to_string(TmpCounter.fetch_add(1)) + ".so";
  if (!compileSharedObject(Source, Tmp, Error))
    return nullptr;
  std::string Final = soPath(Hash);
  if (::rename(Tmp.c_str(), Final.c_str()) != 0) {
    std::remove(Tmp.c_str());
    Error = "cannot publish artifact into " + Dir;
    return nullptr;
  }
  auto Mod = std::make_unique<NativeModule>();
  if (!Mod->load(Final, Hash, Error))
    return nullptr;
  return Mod;
}
