//===--- CcRunner.h - Host C compiler invocation ----------------*- C++-*-===//
///
/// \file
/// Spawns the host C compiler to turn generated C into a shared object.
/// The compiler is probed once ($CC, then cc/gcc/clang on PATH). Every
/// spawn increments a process-wide counter — the warm-cache acceptance
/// criterion ("a cache hit spawns no compiler") and `--stats` read it.
/// A failed compile never leaves a partial artifact: output goes to the
/// requested path only on success, and the temporary source/log files are
/// always removed.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_NATIVE_CCRUNNER_H
#define SIGNALC_NATIVE_CCRUNNER_H

#include <cstdint>
#include <string>

namespace sigc {

/// The probed host C compiler command ("" when none is on PATH).
const std::string &hostCCompiler();

/// True when a host C compiler is available for the native tier.
bool nativeCompileAvailable();

/// Number of compiler processes this process has spawned so far.
uint64_t ccSpawnCount();

/// Compiles \p CSource into shared object \p OutSo with nativeCcFlags().
/// On failure returns false with \p Error holding the compiler log, and
/// guarantees \p OutSo does not exist.
bool compileSharedObject(const std::string &CSource, const std::string &OutSo,
                         std::string &Error);

} // namespace sigc

#endif // SIGNALC_NATIVE_CCRUNNER_H
