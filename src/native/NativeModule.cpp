//===--- NativeModule.cpp -------------------------------------------------===//

#include "native/NativeModule.h"

#include "codegen/CEmitter.h"
#include "native/StepHash.h"

#include <dlfcn.h>

#include <type_traits>

using namespace sigc;

namespace {

/// The fixed internal process name every native unit is emitted under;
/// keeps the cache independent of the user-visible process name.
const char *UnitName = "sigc_unit";

/// Which NativeValue field carries a value of type \p T — mirrors the
/// emitter's C storage classes (Integer -> long, Real -> double,
/// Boolean/Event/Unknown -> int).
const char *fieldOf(TypeKind T) {
  switch (T) {
  case TypeKind::Integer:
    return "i";
  case TypeKind::Real:
    return "d";
  default:
    return "b";
  }
}

} // namespace

std::string NativeModule::buildSource(const CompiledStep &CS,
                                      const std::string &Hash) {
  CEmitOptions EO;
  EO.WithDriver = false;
  std::string Out = emitC(CS, UnitName, EO);

  const std::string NClk = std::to_string(CS.ClockInputs.size());
  const std::string NIn = std::to_string(CS.Inputs.size());
  const std::string NOut = std::to_string(CS.Outputs.size());
  const std::string NState = std::to_string(CS.StateInit.size());

  Out += "\n/* ---- signalc native tier shim (ABI v" +
         std::to_string(NativeFormatVersion) + ") ---- */\n";
  Out += "typedef struct { double d; long i; int b; } sigc_native_value_t;\n\n";
  Out += "int sigc_native_abi_tag(void) { return " +
         std::to_string(NativeFormatVersion) + "; }\n";
  Out += "const char *sigc_native_hash(void) { return \"" + Hash + "\"; }\n";
  Out += "const char *sigc_native_flags(void) { return \"" +
         std::string(nativeCcFlags()) + "\"; }\n";
  Out += "unsigned long sigc_native_state_bytes(void) { return (unsigned "
         "long)sizeof(sigc_unit_state_t); }\n";
  Out += "unsigned sigc_native_num_state(void) { return " + NState + "u; }\n";
  Out += "void sigc_native_init(void *stv) { "
         "sigc_unit_init((sigc_unit_state_t *)stv); }\n\n";

  // State accessors: slot <-> NativeValue field by the initializer kind,
  // the same rule that typed the struct fields.
  Out += "void sigc_native_get_state(const void *stv, sigc_native_value_t "
         "*out) {\n"
         "  const sigc_unit_state_t *st = (const sigc_unit_state_t *)stv;\n";
  for (size_t I = 0; I < CS.StateInit.size(); ++I)
    Out += "  out[" + std::to_string(I) + "]." +
           fieldOf(CS.StateInit[I].Kind) + " = st->s" + std::to_string(I) +
           ";\n";
  if (CS.StateInit.empty())
    Out += "  (void)st; (void)out;\n";
  Out += "}\n\n";
  Out += "void sigc_native_set_state(void *stv, const sigc_native_value_t "
         "*in) {\n"
         "  sigc_unit_state_t *st = (sigc_unit_state_t *)stv;\n";
  for (size_t I = 0; I < CS.StateInit.size(); ++I) {
    const char *CTy = CS.StateInit[I].Kind == TypeKind::Integer ? "long"
                      : CS.StateInit[I].Kind == TypeKind::Real ? "double"
                                                               : "int";
    Out += "  st->s" + std::to_string(I) + " = (" + CTy + ")in[" +
           std::to_string(I) + "]." + fieldOf(CS.StateInit[I].Kind) + ";\n";
  }
  if (CS.StateInit.empty())
    Out += "  (void)st; (void)in;\n";
  Out += "}\n\n";
  Out += "void sigc_native_get_counters(const void *stv, unsigned long long "
         "*g, unsigned long long *e) {\n"
         "  const sigc_unit_state_t *st = (const sigc_unit_state_t *)stv;\n"
         "  *g = st->guard_tests;\n  *e = st->executed;\n}\n\n";
  Out += "void sigc_native_set_counters(void *stv, unsigned long long g, "
         "unsigned long long e) {\n"
         "  sigc_unit_state_t *st = (sigc_unit_state_t *)stv;\n"
         "  st->guard_tests = g;\n  st->executed = e;\n}\n\n";

  // Scalar batch entry: columnar strided stimulus (the VmExecutor batch
  // buffer layout), row-major flush-ordered outputs. The emitted step
  // memsets its out struct, so absent outputs read as present=0/value=0.
  Out += "void sigc_native_run(void *stv, const unsigned char *ticks, "
         "unsigned long tick_stride, const sigc_native_value_t *ins, "
         "unsigned long in_stride, unsigned char *outp, sigc_native_value_t "
         "*outv, unsigned count) {\n"
         "  sigc_unit_state_t *st = (sigc_unit_state_t *)stv;\n"
         "  sigc_unit_in_t in_s;\n"
         "  sigc_unit_out_t out_s;\n"
         "  unsigned i;\n"
         "  memset(&in_s, 0, sizeof in_s);\n"
         "  (void)ticks; (void)tick_stride; (void)ins; (void)in_stride;\n"
         "  (void)outp; (void)outv;\n"
         "  for (i = 0; i < count; ++i) {\n";
  for (size_t D = 0; D < CS.ClockInputs.size(); ++D)
    Out += "    in_s.tick_" + sanitizeIdent(CS.ClockInputs[D].Name) +
           " = ticks[" + std::to_string(D) + "ul * tick_stride + i];\n";
  for (size_t D = 0; D < CS.Inputs.size(); ++D) {
    const auto &SI = CS.Inputs[D];
    Out += "    in_s." + sanitizeIdent(SI.Name) + " = ins[" +
           std::to_string(D) + "ul * in_stride + i]." + fieldOf(SI.Type) +
           ";\n";
  }
  Out += "    sigc_unit_step(st, &in_s, &out_s);\n";
  for (size_t Pos = 0; Pos < CS.OutputFlushOrder.size(); ++Pos) {
    const auto &SO = CS.Outputs[CS.OutputFlushOrder[Pos]];
    std::string Id = sanitizeIdent(SO.Name);
    std::string At = "i * " + NOut + "u + " + std::to_string(Pos) + "u";
    Out += "    outp[" + At + "] = (unsigned char)out_s." + Id +
           "_present;\n";
    Out += "    outv[" + At + "]." + fieldOf(SO.Type) + " = out_s." + Id +
           ";\n";
  }
  Out += "  }\n}\n\n";

  // Fleet entry: dense instance-major stimulus/output rows; the emitted
  // AoS state/in/out arrays live in host-provided scratch. Regions are
  // 16-byte aligned within the (malloc-aligned) scratch block.
  Out += "unsigned long sigc_native_fleet_bytes(unsigned n_instances, "
         "unsigned n_instants) {\n"
         "  unsigned long cells = (unsigned long)n_instances * n_instants;\n"
         "  unsigned long b = 0;\n"
         "  b += ((unsigned long)n_instances * sizeof(sigc_unit_state_t) + "
         "15ul) & ~15ul;\n"
         "  b += (cells * sizeof(sigc_unit_in_t) + 15ul) & ~15ul;\n"
         "  b += (cells * sizeof(sigc_unit_out_t) + 15ul) & ~15ul;\n"
         "  return b;\n}\n\n";
  Out += "void sigc_native_run_fleet(unsigned char *scratch, "
         "sigc_native_value_t *states, unsigned long long *guards, "
         "unsigned long long *execs, const unsigned char *ticks, "
         "const sigc_native_value_t *ins, unsigned char *outp, "
         "sigc_native_value_t *outv, unsigned n_instances, "
         "unsigned n_instants) {\n"
         "  unsigned long cells = (unsigned long)n_instances * n_instants;\n"
         "  sigc_unit_state_t *st = (sigc_unit_state_t *)scratch;\n"
         "  sigc_unit_in_t *in = (sigc_unit_in_t *)(scratch + (((unsigned "
         "long)n_instances * sizeof(sigc_unit_state_t) + 15ul) & ~15ul));\n"
         "  sigc_unit_out_t *out = (sigc_unit_out_t *)((unsigned char *)in + "
         "((cells * sizeof(sigc_unit_in_t) + 15ul) & ~15ul));\n"
         "  unsigned k, t;\n"
         "  unsigned long r;\n"
         "  (void)states; (void)ticks; (void)ins; (void)outv; (void)r;\n"
         "  for (k = 0; k < n_instances; ++k) {\n"
         "    sigc_native_set_state(&st[k], &states[(unsigned long)k * " +
         NState + "ul]);\n"
         "    st[k].guard_tests = guards[k];\n"
         "    st[k].executed = execs[k];\n"
         "  }\n"
         "  memset(out, 0, cells * sizeof(sigc_unit_out_t));\n"
         "  for (k = 0; k < n_instances; ++k)\n"
         "    for (t = 0; t < n_instants; ++t) {\n"
         "      r = (unsigned long)k * n_instants + t;\n";
  for (size_t D = 0; D < CS.ClockInputs.size(); ++D)
    Out += "      in[r].tick_" + sanitizeIdent(CS.ClockInputs[D].Name) +
           " = ticks[r * " + NClk + "ul + " + std::to_string(D) + "ul];\n";
  for (size_t D = 0; D < CS.Inputs.size(); ++D) {
    const auto &SI = CS.Inputs[D];
    Out += "      in[r]." + sanitizeIdent(SI.Name) + " = ins[r * " + NIn +
           "ul + " + std::to_string(D) + "ul]." + fieldOf(SI.Type) + ";\n";
  }
  if (CS.ClockInputs.empty() && CS.Inputs.empty())
    Out += "      in[r].unused = 0;\n";
  Out += "    }\n"
         "  sigc_unit_step_fleet(st, in, out, n_instances, n_instants);\n"
         "  for (k = 0; k < n_instances; ++k)\n"
         "    for (t = 0; t < n_instants; ++t) {\n"
         "      r = (unsigned long)k * n_instants + t;\n";
  for (size_t Pos = 0; Pos < CS.OutputFlushOrder.size(); ++Pos) {
    const auto &SO = CS.Outputs[CS.OutputFlushOrder[Pos]];
    std::string Id = sanitizeIdent(SO.Name);
    std::string At = "r * " + NOut + "ul + " + std::to_string(Pos) + "ul";
    Out += "      outp[" + At + "] = (unsigned char)out[r]." + Id +
           "_present;\n";
    Out += "      outv[" + At + "]." + fieldOf(SO.Type) + " = out[r]." + Id +
           ";\n";
  }
  if (CS.Outputs.empty())
    Out += "      (void)outp;\n";
  Out += "    }\n"
         "  for (k = 0; k < n_instances; ++k) {\n"
         "    sigc_native_get_state(&st[k], &states[(unsigned long)k * " +
         NState + "ul]);\n"
         "    guards[k] = st[k].guard_tests;\n"
         "    execs[k] = st[k].executed;\n"
         "  }\n"
         "}\n";
  return Out;
}

NativeModule::~NativeModule() { close(); }

void NativeModule::close() {
  if (Handle) {
    dlclose(Handle);
    Handle = nullptr;
  }
}

bool NativeModule::load(const std::string &SoPath,
                        const std::string &ExpectHash, std::string &Error) {
  close();
  Handle = dlopen(SoPath.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!Handle) {
    const char *E = dlerror();
    Error = "dlopen failed: " + std::string(E ? E : "unknown error");
    return false;
  }
  Path = SoPath;

  auto Resolve = [&](const char *Name, auto &Fn) {
    Fn = reinterpret_cast<std::remove_reference_t<decltype(Fn)>>(
        dlsym(Handle, Name));
    if (!Fn && Error.empty())
      Error = std::string("missing symbol ") + Name;
  };
  Error.clear();
  Resolve("sigc_native_abi_tag", AbiTagFn);
  Resolve("sigc_native_hash", HashFn);
  Resolve("sigc_native_flags", FlagsFn);
  Resolve("sigc_native_state_bytes", StateBytesFn);
  Resolve("sigc_native_num_state", NumStateFn);
  Resolve("sigc_native_init", InitFn);
  Resolve("sigc_native_get_state", GetStateFn);
  Resolve("sigc_native_set_state", SetStateFn);
  Resolve("sigc_native_get_counters", GetCountersFn);
  Resolve("sigc_native_set_counters", SetCountersFn);
  Resolve("sigc_native_run", RunFn);
  Resolve("sigc_native_fleet_bytes", FleetBytesFn);
  Resolve("sigc_native_run_fleet", RunFleetFn);
  if (!Error.empty()) {
    close();
    return false;
  }

  if (AbiTagFn() != NativeFormatVersion) {
    Error = "ABI tag mismatch: artifact v" + std::to_string(AbiTagFn()) +
            ", runtime v" + std::to_string(NativeFormatVersion);
    close();
    return false;
  }
  if (std::string(FlagsFn()) != nativeCcFlags()) {
    Error = "compiler-flag mismatch: artifact built with \"" +
            std::string(FlagsFn()) + "\"";
    close();
    return false;
  }
  if (ExpectHash != HashFn()) {
    Error = "stale artifact: embedded hash " + std::string(HashFn()) +
            " != expected " + ExpectHash;
    close();
    return false;
  }
  return true;
}
