//===--- NativeExecutor.cpp -----------------------------------------------===//

#include "native/NativeExecutor.h"

#include <algorithm>
#include <cassert>

using namespace sigc;

NativeExecutor::NativeExecutor(const CompiledStep &CS, const NativeModule &M)
    : CS(CS), M(M) {
  State.resize(M.stateBytes());
  assert(M.numStateSlots() == CS.StateInit.size() &&
         "artifact does not match the compiled step");
  reset();
}

void NativeExecutor::reset() { M.init(State.data()); }

void NativeExecutor::bind(Environment &Env) {
  Bind = resolveBindings(Env, CS.ClockInputs, CS.Inputs, CS.Outputs);
  BoundIdentity = Env.identity();
  FlushIds.assign(CS.OutputFlushOrder.size(), InvalidEnvId);
  for (size_t Pos = 0; Pos < CS.OutputFlushOrder.size(); ++Pos)
    FlushIds[Pos] = Bind.Outputs[CS.OutputFlushOrder[Pos]];
}

void NativeExecutor::reserveBatch(unsigned MaxCount) {
  if (MaxCount <= BatchCap)
    return;
  BatchCap = MaxCount;
  TickBuf.assign(CS.ClockInputs.size() * static_cast<size_t>(BatchCap), 0);
  InVals.assign(BatchCap, Value());
  InBuf.assign(CS.Inputs.size() * static_cast<size_t>(BatchCap),
               NativeValue{});
  OutPresent.assign(static_cast<size_t>(BatchCap) * CS.Outputs.size(), 0);
  OutNative.assign(static_cast<size_t>(BatchCap) * CS.Outputs.size(),
                   NativeValue{});
  OutVals.assign(static_cast<size_t>(BatchCap) * CS.Outputs.size(), Value());
}

void NativeExecutor::stepN(Environment &Env, unsigned Start, unsigned Count) {
  if (Count == 0)
    return;
  if (Env.identity() != BoundIdentity)
    bind(Env);
  reserveBatch(Count);

  const unsigned NumOut = static_cast<unsigned>(CS.Outputs.size());

  for (size_t D = 0; D < CS.ClockInputs.size(); ++D)
    Env.clockTicks(Bind.Clocks[D], Start, Count, &TickBuf[D * BatchCap]);
  for (size_t D = 0; D < CS.Inputs.size(); ++D) {
    Env.inputValues(Bind.Inputs[D], Start, Count, InVals.data());
    NativeValue *Col = &InBuf[D * BatchCap];
    for (unsigned I = 0; I < Count; ++I)
      Col[I] = toNative(InVals[I]);
  }

  M.run(State.data(), TickBuf.data(), BatchCap, InBuf.data(), BatchCap,
        OutPresent.data(), OutNative.data(), Count);

  // Reconstruct tagged outputs by declared type, then flush exactly as
  // the VM does.
  for (unsigned I = 0; I < Count; ++I)
    for (unsigned Pos = 0; Pos < NumOut; ++Pos) {
      size_t At = static_cast<size_t>(I) * NumOut + Pos;
      if (OutPresent[At])
        OutVals[At] = fromNative(
            OutNative[At], CS.Outputs[CS.OutputFlushOrder[Pos]].Type);
    }
  Env.exchangeOutputs(Start, Count, NumOut, FlushIds.data(),
                      OutPresent.data(), OutVals.data());
}

void NativeExecutor::runBatched(Environment &Env, unsigned Count,
                                unsigned BatchSize) {
  if (BatchSize == 0)
    BatchSize = 1;
  for (unsigned Start = 0; Start < Count; Start += BatchSize)
    stepN(Env, Start, std::min(BatchSize, Count - Start));
}

void NativeExecutor::importState(const std::vector<Value> &Slots,
                                 uint64_t Guards, uint64_t Executed) {
  assert(Slots.size() == CS.StateInit.size() &&
         "state snapshot does not match the compiled step");
  std::vector<NativeValue> N(Slots.size());
  for (size_t I = 0; I < Slots.size(); ++I)
    N[I] = toNative(Slots[I]);
  M.setState(State.data(), N.data());
  M.setCounters(State.data(), Guards, Executed);
}

std::vector<Value> NativeExecutor::exportState() const {
  std::vector<NativeValue> N(CS.StateInit.size());
  M.getState(State.data(), N.data());
  std::vector<Value> Out(N.size());
  for (size_t I = 0; I < N.size(); ++I)
    Out[I] = fromNative(N[I], CS.StateInit[I].Kind);
  return Out;
}

uint64_t NativeExecutor::guardTests() const {
  unsigned long long G = 0, E = 0;
  M.getCounters(State.data(), &G, &E);
  return G;
}

uint64_t NativeExecutor::executed() const {
  unsigned long long G = 0, E = 0;
  M.getCounters(State.data(), &G, &E);
  return E;
}
