//===--- NativeExecutor.h - Run a dlopen'ed native step ---------*- C++-*-===//
///
/// \file
/// Drives a loaded NativeModule against an Environment with exactly the
/// VmExecutor batch contract: bulk tick/input prefetch per descriptor,
/// one `sigc_native_run` call per batch, outputs reconstructed from the
/// declared descriptor types and flushed through exchangeOutputs() in
/// the same order an unbatched VM run records them. Traces and the
/// guard/executed counters (maintained inside the native state struct,
/// VM-exactly, by the PR 5 emitter) are byte-identical to the VM's —
/// which is what lets the tier controller hot-swap a session onto this
/// executor at any batch boundary: importState() takes the VM's delay
/// slots and counters, exportState() hands them back.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_NATIVE_NATIVEEXECUTOR_H
#define SIGNALC_NATIVE_NATIVEEXECUTOR_H

#include "interp/Environment.h"
#include "native/NativeModule.h"

#include <cstdint>
#include <vector>

namespace sigc {

/// Converts \p V to the boundary POD (all storage classes filled; the
/// consumer picks by declared type).
inline NativeValue toNative(const Value &V) {
  NativeValue N;
  N.D = V.Real;
  N.I = static_cast<long>(V.Int);
  N.B = V.Bool ? 1 : 0;
  return N;
}

/// Reconstructs a tagged Value of declared type \p T from the boundary
/// POD — the same declared-type rule the oracle's C round-trip uses.
inline Value fromNative(const NativeValue &N, TypeKind T) {
  switch (T) {
  case TypeKind::Integer:
    return Value::makeInt(N.I);
  case TypeKind::Real:
    return Value::makeReal(N.D);
  case TypeKind::Event:
    return Value::makeEvent();
  default:
    return Value::makeBool(N.B != 0);
  }
}

class NativeExecutor {
public:
  /// \p M must stay loaded for the executor's lifetime.
  NativeExecutor(const CompiledStep &CS, const NativeModule &M);

  /// Re-initializes the native state struct (counters included).
  void reset();

  /// Resolves the environment binding now (otherwise lazily on first
  /// step with a new environment).
  void bind(Environment &Env);

  /// Runs \p Count instants starting at \p Start.
  void stepN(Environment &Env, unsigned Start, unsigned Count);

  /// Runs \p Count instants from 0 in windows of \p BatchSize.
  void runBatched(Environment &Env, unsigned Count, unsigned BatchSize);

  //===--- Hot-swap state exchange ----------------------------------------===//

  /// Imports VM state at a batch boundary: delay slots (tagged, in slot
  /// order) plus the guard/executed counters.
  void importState(const std::vector<Value> &Slots, uint64_t Guards,
                   uint64_t Executed);
  /// The delay slots as tagged Values (kinds from StateInit, like the
  /// VM's own state vector).
  std::vector<Value> exportState() const;

  uint64_t guardTests() const;
  uint64_t executed() const;

private:
  void reserveBatch(unsigned MaxCount);

  const CompiledStep &CS;
  const NativeModule &M;
  std::vector<unsigned char> State; ///< The opaque native state struct.
  uint64_t BoundIdentity = 0;
  StepBindings Bind;
  std::vector<EnvOutputId> FlushIds; ///< Flush position -> bound env id.

  unsigned BatchCap = 0;
  std::vector<unsigned char> TickBuf; ///< [clock desc][instant].
  std::vector<Value> InVals;          ///< Prefetch scratch, one desc.
  std::vector<NativeValue> InBuf;     ///< [input desc][instant].
  std::vector<unsigned char> OutPresent; ///< [instant][flush position].
  std::vector<NativeValue> OutNative;    ///< [instant][flush position].
  std::vector<Value> OutVals;            ///< Same, reconstructed.
};

} // namespace sigc

#endif // SIGNALC_NATIVE_NATIVEEXECUTOR_H
