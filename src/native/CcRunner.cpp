//===--- CcRunner.cpp -----------------------------------------------------===//

#include "native/CcRunner.h"

#include "native/StepHash.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace sigc;

namespace {

std::atomic<uint64_t> SpawnCount{0};

std::string readWholeFile(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

} // namespace

const std::string &sigc::hostCCompiler() {
  static const std::string CC = [] {
    if (const char *Env = std::getenv("CC"); Env && *Env) {
      std::string Probe = std::string("command -v ") + Env +
                          " >/dev/null 2>&1";
      if (std::system(Probe.c_str()) == 0)
        return std::string(Env);
    }
    for (const char *Cand : {"cc", "gcc", "clang"}) {
      std::string Probe =
          std::string("command -v ") + Cand + " >/dev/null 2>&1";
      if (std::system(Probe.c_str()) == 0)
        return std::string(Cand);
    }
    return std::string();
  }();
  return CC;
}

bool sigc::nativeCompileAvailable() { return !hostCCompiler().empty(); }

uint64_t sigc::ccSpawnCount() { return SpawnCount.load(); }

bool sigc::compileSharedObject(const std::string &CSource,
                               const std::string &OutSo, std::string &Error) {
  const std::string &CC = hostCCompiler();
  if (CC.empty()) {
    Error = "no host C compiler on PATH";
    return false;
  }

  std::string CPath = OutSo + ".c", LogPath = OutSo + ".log";
  {
    std::ofstream Out(CPath);
    Out << CSource;
    if (!Out) {
      Error = "cannot write " + CPath;
      std::remove(CPath.c_str());
      return false;
    }
  }

  std::string Cmd = CC + " " + nativeCcFlags() + " -o " + OutSo + " " +
                    CPath + " > " + LogPath + " 2>&1";
  ++SpawnCount;
  bool Ok = std::system(Cmd.c_str()) == 0;
  if (!Ok) {
    Error = "host C compilation failed:\n" + readWholeFile(LogPath);
    // No partial artifact: some compilers leave a truncated output on
    // failure; make sure nothing publishable remains.
    std::remove(OutSo.c_str());
  }
  std::remove(CPath.c_str());
  std::remove(LogPath.c_str());
  return Ok;
}
