//===--- TierController.cpp -----------------------------------------------===//

#include "native/TierController.h"

#include "native/CcRunner.h"
#include "native/StepHash.h"

using namespace sigc;

TierController::TierController(const CompiledStep &CS, const TierOptions &O)
    : CS(CS), Opts(O), Hash(hashCompiledStep(CS)), Cache(O.CacheDir) {}

TierController::~TierController() {
  if (Worker.joinable())
    Worker.join();
}

std::string TierController::error() const {
  std::lock_guard<std::mutex> L(ErrMutex);
  return Err;
}

bool TierController::start() {
  if (Opts.Mode == NativeMode::Off)
    return true;

  // Cache lookup first: a hit needs no compiler at all.
  std::string E;
  if (auto M = Cache.tryLoad(Hash, E)) {
    Mod = std::move(M);
    Hit = true;
    Ready.store(true, std::memory_order_release);
    return true;
  }
  if (!E.empty()) {
    // Invalid artifact was discarded; remember why, then recompile.
    std::lock_guard<std::mutex> L(ErrMutex);
    Err = E;
  }

  if (Opts.Mode == NativeMode::Force) {
    if (auto M = Cache.compileAndPublish(CS, Hash, E)) {
      Mod = std::move(M);
      Ready.store(true, std::memory_order_release);
      return true;
    }
    std::lock_guard<std::mutex> L(ErrMutex);
    Err = E;
    return false;
  }

  // Auto miss: compile off-thread; the VM carries the session meanwhile.
  if (!nativeCompileAvailable()) {
    std::lock_guard<std::mutex> L(ErrMutex);
    Err = "no host C compiler on PATH";
    return true;
  }
  Worker = std::thread([this] { backgroundCompile(); });
  return true;
}

void TierController::backgroundCompile() {
  std::string E;
  auto M = Cache.compileAndPublish(CS, Hash, E);
  if (!M) {
    // Maybe a concurrent process published while our cc failed.
    M = Cache.tryLoad(Hash, E);
  }
  if (M) {
    Mod = std::move(M);
    Ready.store(true, std::memory_order_release);
  } else {
    std::lock_guard<std::mutex> L(ErrMutex);
    Err = E;
  }
}

TierStats TierController::stats() const {
  TierStats S;
  S.VmInstants = VmInstants;
  S.NativeInstants = NativeInstants;
  S.CacheHit = Hit;
  S.NativeLoaded = nativeReady();
  S.Hash = Hash;
  S.Error = error();
  return S;
}
