//===--- StepHash.h - CompiledStep content hashing --------------*- C++-*-===//
///
/// \file
/// Content-hashes a CompiledStep for the persistent native-code cache.
/// The hash covers everything that determines the generated machine code
/// and its host-facing ABI: the bytecode stream, slot counts and types,
/// the constant pool, the delay-state initializers, every environment
/// descriptor (names and types — the interface), the output flush order,
/// the native shim format version, and the host compiler flags. Two
/// CompiledSteps hash equal exactly when a cached shared object compiled
/// for one is a correct artifact for the other; the process name is
/// deliberately excluded (the native unit is emitted under a fixed
/// internal name, so renaming a process keeps its cache entry).
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_NATIVE_STEPHASH_H
#define SIGNALC_NATIVE_STEPHASH_H

#include "interp/CompiledStep.h"

#include <string>

namespace sigc {

/// Bumped whenever the generated shim ABI or the hashed serialization
/// changes; stale cache entries from older binaries then miss instead of
/// loading with a wrong shape.
constexpr int NativeFormatVersion = 1;

/// The flags every cached artifact is compiled with (part of the hash, so
/// changing them invalidates the cache).
const char *nativeCcFlags();

/// \returns the 16-hex-digit content hash of \p CS (FNV-1a 64 over the
/// canonical serialization described above).
std::string hashCompiledStep(const CompiledStep &CS);

} // namespace sigc

#endif // SIGNALC_NATIVE_STEPHASH_H
