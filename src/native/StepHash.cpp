//===--- StepHash.cpp -----------------------------------------------------===//

#include "native/StepHash.h"

#include <cstdio>
#include <cstring>

using namespace sigc;

// -O1, not -O2: the emitted step is one very large straight-line
// function, and gcc's -O2 passes go superlinear on it (minutes for the
// Figure-13 builtins where -O1 stays under a minute and small programs
// compile in about a second). -O1 is also what the differential oracle
// compiles the emitted C with, so the tier inherits proven flags.
const char *sigc::nativeCcFlags() { return "-std=c99 -O1 -fPIC -shared"; }

namespace {

/// FNV-1a 64 accumulator with typed feeders. Every field is fed through a
/// fixed-width little-endian encoding so the hash is stable across hosts
/// with the same artifact ABI.
struct Fnv {
  uint64_t H = 0xcbf29ce484222325ull;

  void bytes(const void *P, size_t N) {
    const unsigned char *B = static_cast<const unsigned char *>(P);
    for (size_t I = 0; I < N; ++I) {
      H ^= B[I];
      H *= 0x100000001b3ull;
    }
  }
  void u64(uint64_t V) {
    unsigned char B[8];
    for (int I = 0; I < 8; ++I)
      B[I] = static_cast<unsigned char>(V >> (8 * I));
    bytes(B, 8);
  }
  void i64(int64_t V) { u64(static_cast<uint64_t>(V)); }
  void f64(double V) {
    // Bit pattern, not value: -0.0 and 0.0 emit different literals.
    uint64_t Bits;
    std::memcpy(&Bits, &V, 8);
    u64(Bits);
  }
  void str(const std::string &S) {
    u64(S.size());
    bytes(S.data(), S.size());
  }
  void value(const Value &V) {
    u64(static_cast<uint64_t>(V.Kind));
    u64(V.Bool ? 1 : 0);
    i64(V.Int);
    f64(V.Real);
  }
};

} // namespace

std::string sigc::hashCompiledStep(const CompiledStep &CS) {
  Fnv F;
  F.u64(static_cast<uint64_t>(NativeFormatVersion));
  F.str(nativeCcFlags());

  F.u64(CS.NumClockSlots);
  F.u64(CS.NumValueSlots);
  F.u64(CS.NumTempSlots);

  F.u64(CS.StateInit.size());
  for (const Value &V : CS.StateInit)
    F.value(V);

  F.u64(CS.Code.size());
  for (const VmInstr &In : CS.Code) {
    F.u64(static_cast<uint64_t>(In.Op));
    F.i64(In.Weight);
    F.i64(In.Target);
    F.i64(In.A);
    F.i64(In.B);
    F.i64(In.Aux);
  }

  F.u64(CS.Consts.size());
  for (const Value &V : CS.Consts)
    F.value(V);

  F.u64(CS.ClockInputs.size());
  for (const auto &CI : CS.ClockInputs) {
    F.i64(CI.Slot);
    F.str(CI.Name);
  }
  auto FeedIO = [&F](const std::vector<StepProgram::SignalIODesc> &IOs) {
    F.u64(IOs.size());
    for (const auto &SI : IOs) {
      F.i64(SI.ValueSlot);
      F.i64(SI.ClockSlot);
      F.u64(static_cast<uint64_t>(SI.Type));
      F.str(SI.Name);
    }
  };
  FeedIO(CS.Inputs);
  FeedIO(CS.Outputs);

  F.u64(CS.SignalClockSlot.size());
  for (int S : CS.SignalClockSlot)
    F.i64(S);
  F.u64(CS.ValueSlotType.size());
  for (TypeKind T : CS.ValueSlotType)
    F.u64(static_cast<uint64_t>(T));
  F.u64(CS.OutputFlushOrder.size());
  for (int32_t O : CS.OutputFlushOrder)
    F.i64(O);

  char Buf[17];
  std::snprintf(Buf, sizeof Buf, "%016llx",
                static_cast<unsigned long long>(F.H));
  return Buf;
}
