//===--- NativeCache.h - Persistent compiled-step cache ---------*- C++-*-===//
///
/// \file
/// The on-disk cache of compiled native artifacts, keyed by
/// hashCompiledStep(). Layout: one `<hash>.so` per entry in a flat
/// directory (default `$XDG_CACHE_HOME/signalc`, falling back to
/// `$HOME/.cache/signalc`, then `/tmp/signalc-cache`).
///
/// Publication is crash- and race-safe: artifacts are compiled to a
/// process-unique `tmp.*` name in the cache directory and moved into
/// place with rename(2), so readers only ever observe absent or complete
/// files. Two processes compiling the same hash both succeed — the loser
/// atomically replaces the winner's identical artifact (or vice versa)
/// and both load the published path. A failed compile removes its
/// temporary and publishes nothing.
///
/// Loading validates the artifact (dlopen, symbol table, ABI tag, flag
/// string, embedded hash); anything invalid — truncated, stale, or built
/// by an incompatible runtime — is deleted and reported as a miss so the
/// caller recompiles.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_NATIVE_NATIVECACHE_H
#define SIGNALC_NATIVE_NATIVECACHE_H

#include "native/NativeModule.h"

#include <memory>
#include <string>

namespace sigc {

class NativeCache {
public:
  /// The default cache directory for this user (see file comment).
  static std::string defaultDir();

  /// Binds the cache to \p Dir (empty selects defaultDir()) and creates
  /// the directory if needed.
  explicit NativeCache(const std::string &Dir = std::string());

  const std::string &dir() const { return Dir; }
  std::string soPath(const std::string &Hash) const {
    return Dir + "/" + Hash + ".so";
  }

  /// Loads and validates the cached artifact for \p Hash. Returns null
  /// on a miss; an artifact that exists but fails validation is deleted
  /// (with the reason in \p Error) and also reads as a miss.
  std::unique_ptr<NativeModule> tryLoad(const std::string &Hash,
                                        std::string &Error) const;

  /// Compiles \p CS, publishes the artifact under \p Hash via atomic
  /// rename, and loads it. Null with \p Error set on failure.
  std::unique_ptr<NativeModule> compileAndPublish(const CompiledStep &CS,
                                                  const std::string &Hash,
                                                  std::string &Error) const;

private:
  std::string Dir;
};

} // namespace sigc

#endif // SIGNALC_NATIVE_NATIVECACHE_H
