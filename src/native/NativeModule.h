//===--- NativeModule.h - dlopen'ed native step artifact --------*- C++-*-===//
///
/// \file
/// The native tier's unit of deployment: one shared object holding the
/// PR 5 emitted C for a CompiledStep (under the fixed internal name
/// `sigc_unit`, so the cache is process-name independent) plus a
/// generated *shim* — a small C layer exposing a stable, struct-free
/// ABI the host can drive without knowing the emitted struct layouts:
///
///   * `sigc_native_abi_tag` / `sigc_native_hash` / `sigc_native_flags`
///     validate an artifact before use (ABI mismatch, stale content, or
///     flag drift each read as a cache miss and trigger recompilation),
///   * `sigc_native_run` marshals columnar, strided tick/input buffers
///     (exactly the VmExecutor batch layout) through `sigc_unit_step`
///     and writes presence/value output rows in flush order,
///   * `sigc_native_run_fleet` unpacks dense instance-major lane buffers
///     into the emitted AoS arrays inside host-provided scratch and runs
///     `sigc_unit_step_fleet`,
///   * state accessors move delay slots and the guard/executed counters
///     across the VM<->native boundary, which is what makes hot swap at
///     a batch boundary a plain state copy.
///
/// Values cross the boundary as `NativeValue`, a POD mirroring the three
/// C storage classes of the emitter's type mapping (double/long/int);
/// the host reconstructs tagged `Value`s from the declared descriptor
/// types, the same rule the differential oracle's C round-trip leg uses.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_NATIVE_NATIVEMODULE_H
#define SIGNALC_NATIVE_NATIVEMODULE_H

#include "interp/CompiledStep.h"

#include <string>

namespace sigc {

/// POD value crossing the host/native boundary. Mirrors the emitter's
/// C storage classes; which field is live is determined by the declared
/// descriptor or slot type on the host side.
struct NativeValue {
  double D;
  long I;
  int B;
};

/// Loaded native artifact: dlopen handle plus resolved entry points.
class NativeModule {
public:
  NativeModule() = default;
  NativeModule(const NativeModule &) = delete;
  NativeModule &operator=(const NativeModule &) = delete;
  ~NativeModule();

  /// Generates the full native compile unit for \p CS: the emitted C
  /// under the fixed internal name, then the shim. \p Hash is embedded
  /// for staleness detection.
  static std::string buildSource(const CompiledStep &CS,
                                 const std::string &Hash);

  /// Loads and validates \p Path: dlopen must succeed, every symbol must
  /// resolve, the ABI tag must equal NativeFormatVersion, the embedded
  /// flags must equal nativeCcFlags(), and the embedded hash must equal
  /// \p ExpectHash. Any failure returns false with \p Error set and the
  /// module unloaded — the caller treats the artifact as corrupt.
  bool load(const std::string &Path, const std::string &ExpectHash,
            std::string &Error);

  bool loaded() const { return Handle != nullptr; }
  const std::string &path() const { return Path; }

  //===--- Resolved entry points ------------------------------------------===//

  unsigned long stateBytes() const { return StateBytesFn(); }
  unsigned numStateSlots() const { return NumStateFn(); }
  void init(void *State) const { InitFn(State); }
  void getState(const void *State, NativeValue *Out) const {
    GetStateFn(State, Out);
  }
  void setState(void *State, const NativeValue *In) const {
    SetStateFn(State, In);
  }
  void getCounters(const void *State, unsigned long long *Guards,
                   unsigned long long *Executed) const {
    GetCountersFn(State, Guards, Executed);
  }
  void setCounters(void *State, unsigned long long Guards,
                   unsigned long long Executed) const {
    SetCountersFn(State, Guards, Executed);
  }

  /// Runs \p Count instants: Ticks[d * TickStride + i] and
  /// Ins[d * InStride + i] are columnar over descriptors, OutPresent and
  /// OutVals are row-major [i * NumOutputs + flush position].
  void run(void *State, const unsigned char *Ticks, unsigned long TickStride,
           const NativeValue *Ins, unsigned long InStride,
           unsigned char *OutPresent, NativeValue *OutVals,
           unsigned Count) const {
    RunFn(State, Ticks, TickStride, Ins, InStride, OutPresent, OutVals, Count);
  }

  /// Scratch bytes sigc_native_run_fleet needs for the emitted AoS
  /// state/input/output arrays.
  unsigned long fleetScratchBytes(unsigned NInstances,
                                  unsigned NInstants) const {
    return FleetBytesFn(NInstances, NInstants);
  }

  /// Runs a lane block through the emitted `_step_fleet`. States is
  /// [instance * numStateSlots + slot] (in/out), Guards/Executed are per
  /// instance (in/out), Ticks/Ins/OutPresent/OutVals are dense
  /// instance-major: [((instance * NInstants) + t) * NumDescs + d].
  void runFleet(unsigned char *Scratch, NativeValue *States,
                unsigned long long *Guards, unsigned long long *Executed,
                const unsigned char *Ticks, const NativeValue *Ins,
                unsigned char *OutPresent, NativeValue *OutVals,
                unsigned NInstances, unsigned NInstants) const {
    RunFleetFn(Scratch, States, Guards, Executed, Ticks, Ins, OutPresent,
               OutVals, NInstances, NInstants);
  }

private:
  void close();

  void *Handle = nullptr;
  std::string Path;

  int (*AbiTagFn)() = nullptr;
  const char *(*HashFn)() = nullptr;
  const char *(*FlagsFn)() = nullptr;
  unsigned long (*StateBytesFn)() = nullptr;
  unsigned (*NumStateFn)() = nullptr;
  void (*InitFn)(void *) = nullptr;
  void (*GetStateFn)(const void *, NativeValue *) = nullptr;
  void (*SetStateFn)(void *, const NativeValue *) = nullptr;
  void (*GetCountersFn)(const void *, unsigned long long *,
                        unsigned long long *) = nullptr;
  void (*SetCountersFn)(void *, unsigned long long,
                        unsigned long long) = nullptr;
  void (*RunFn)(void *, const unsigned char *, unsigned long,
                const NativeValue *, unsigned long, unsigned char *,
                NativeValue *, unsigned) = nullptr;
  unsigned long (*FleetBytesFn)(unsigned, unsigned) = nullptr;
  void (*RunFleetFn)(unsigned char *, NativeValue *, unsigned long long *,
                     unsigned long long *, const unsigned char *,
                     const NativeValue *, unsigned char *, NativeValue *,
                     unsigned, unsigned) = nullptr;
};

} // namespace sigc

#endif // SIGNALC_NATIVE_NATIVEMODULE_H
