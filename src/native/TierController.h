//===--- TierController.h - VM -> native tier promotion ---------*- C++-*-===//
///
/// \file
/// Decides and performs the tier handoff for one CompiledStep. On
/// start():
///
///   * the step is content-hashed and looked up in the NativeCache — a
///     hit loads immediately (no compiler spawn) and the session runs
///     native from instant 0;
///   * on a miss in Auto mode, execution stays on the VM while a
///     background thread emits the C, runs the host cc, publishes the
///     artifact, and loads it; the session polls shouldPromote() at
///     batch boundaries and swaps when the module is ready and the
///     warm-up threshold (--tier-after) has passed;
///   * Force mode compiles synchronously before the first instant and
///     fails hard if it cannot go native; Off never leaves the VM.
///
/// The controller also aggregates the per-tier instant counters that
/// --stats reports. It is safe to poll from the execution thread while
/// the worker compiles: the loaded module is published through an
/// acquire/release flag.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_NATIVE_TIERCONTROLLER_H
#define SIGNALC_NATIVE_TIERCONTROLLER_H

#include "native/NativeCache.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace sigc {

/// --native operating mode.
enum class NativeMode : uint8_t {
  Off,   ///< Interpret forever.
  Auto,  ///< Cache hit runs native; miss compiles in the background.
  Force, ///< Block on compile before instant 0; error if impossible.
};

struct TierOptions {
  NativeMode Mode = NativeMode::Off;
  std::string CacheDir; ///< Empty selects NativeCache::defaultDir().
  unsigned TierAfter = 0; ///< Min VM instants before promotion (Auto).
};

/// What --stats prints about the tier split.
struct TierStats {
  uint64_t VmInstants = 0;
  uint64_t NativeInstants = 0;
  bool CacheHit = false;
  bool NativeLoaded = false;
  std::string Hash;
  std::string Error; ///< Last compile/load failure (Auto keeps going).
};

class TierController {
public:
  TierController(const CompiledStep &CS, const TierOptions &Opts);
  ~TierController();

  /// Kicks off the tier decision (see file comment). \returns false only
  /// in Force mode when native execution is impossible; Error has why.
  bool start();

  NativeMode mode() const { return Opts.Mode; }
  const std::string &hash() const { return Hash; }

  /// True once a validated module is loaded (cache hit or compile done).
  bool nativeReady() const { return Ready.load(std::memory_order_acquire); }
  /// Valid exactly when nativeReady().
  const NativeModule *module() const {
    return nativeReady() ? Mod.get() : nullptr;
  }

  /// Promotion gate for Auto mode: module ready and the warm-up
  /// threshold reached after \p VmInstantsSoFar interpreted instants.
  bool shouldPromote(uint64_t VmInstantsSoFar) const {
    return Opts.Mode != NativeMode::Off && nativeReady() &&
           VmInstantsSoFar >= Opts.TierAfter;
  }

  bool cacheHit() const { return Hit; }
  std::string error() const;

  void noteVmInstants(uint64_t N) { VmInstants += N; }
  void noteNativeInstants(uint64_t N) { NativeInstants += N; }
  TierStats stats() const;

private:
  void backgroundCompile();

  const CompiledStep &CS;
  TierOptions Opts;
  std::string Hash;
  NativeCache Cache;

  std::unique_ptr<NativeModule> Mod;
  std::atomic<bool> Ready{false};
  bool Hit = false;
  std::thread Worker;
  mutable std::mutex ErrMutex;
  std::string Err;

  uint64_t VmInstants = 0;
  uint64_t NativeInstants = 0;
};

} // namespace sigc

#endif // SIGNALC_NATIVE_TIERCONTROLLER_H
