//===--- FleetExecutor.h - One program, many instances ----------*- C++-*-===//
///
/// \file
/// Executes a fleet of independent instances of one CompiledStep — the
/// production shape the ROADMAP names: millions of sessions (one per
/// device or user) of the *same* compiled program. Where VmExecutor
/// batches over *time* (stepN windows), FleetExecutor batches over
/// *instances*, and the two compose: each window of instants is swept
/// across the whole fleet.
///
/// Layout and loop structure:
///
///   * fleet state is structure-of-arrays — `state.slot[instance]`, not
///     `instance.slot[]` — so the per-instruction sweep walks contiguous
///     lanes,
///   * the inner loop sweeps each bytecode instruction across a
///     lane-block of K instances: opcode dispatch happens once per
///     instruction per block instead of once per instruction per
///     instance, and the per-lane bodies are branch-predictable (clock
///     ops are fully branchless over the lane mask),
///   * control flow is predicated, not branched: a SkipIfAbsent narrows
///     a per-lane active mask (saved on a preallocated mask stack)
///     instead of moving the PC, so lanes whose clock is absent ride
///     through the block without executing — with the scalar fast path
///     preserved: when every lane is inactive the PC skips the whole
///     subtree exactly as the scalar VM does,
///   * instance ranges are sharded across a std::thread pool in
///     lane-block-aligned contiguous chunks. Shards share nothing
///     mutable: each owns its scratch slots, batch buffers and counter
///     accumulators, and each instance owns its Environment, so the
///     result is deterministic for any thread count.
///
/// Guard economics are preserved exactly per instance: a lane bumps the
/// guard counter only when it reaches the guard (its enclosing blocks
/// are active), and executes an instruction only when its own mask bit
/// is set. The fleet's guardTests()/executed() totals therefore equal
/// the *sum* of per-instance scalar VmExecutor runs — pinned by the
/// differential oracle.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_INTERP_FLEETEXECUTOR_H
#define SIGNALC_INTERP_FLEETEXECUTOR_H

#include "interp/CompiledStep.h"
#include "interp/Environment.h"
#include "native/NativeModule.h"

#include <cstdint>
#include <vector>

namespace sigc {

/// Interprets a CompiledStep across a fleet of instances.
class FleetExecutor {
public:
  struct Config {
    /// Lanes swept per instruction: the instance-block size K. One
    /// dispatch per instruction serves K instances.
    unsigned LaneBlock = 64;
    /// Worker threads instance ranges are sharded across. 1 executes
    /// inline on the calling thread (and is the allocation-free path:
    /// spawning std::threads allocates).
    unsigned Threads = 1;
  };

  FleetExecutor(const CompiledStep &CS, unsigned Instances, Config Cfg);
  FleetExecutor(const CompiledStep &CS, unsigned Instances)
      : FleetExecutor(CS, Instances, Config()) {}

  unsigned instances() const { return NumInstances; }
  unsigned laneBlock() const { return K; }
  unsigned threads() const { return Cfg.Threads; }

  /// Re-initializes every instance's delay state.
  void reset();

  /// Re-initializes the delay state of instances [First, First+Num) only
  /// — a lane range being handed to a new session keeps the rest of the
  /// fleet untouched.
  void resetLanes(unsigned First, unsigned Num);

  /// Resolves the environment bindings of every instance now (otherwise
  /// done lazily when a step sees an unbound environment).
  /// \p Envs has one environment per instance; instance i only ever
  /// touches Envs[i], so per-instance environments make the threaded
  /// sweep share no mutable state.
  void bind(const std::vector<Environment *> &Envs);

  /// (Re)binds one instance to \p Env — sessions come and go
  /// independently, and rebinding a joining session's lanes must not
  /// touch the rest of the fleet.
  void bindInstance(unsigned Inst, Environment &Env);

  /// Runs \p Count reactions starting at instant \p Start for every
  /// instance: per lane-block, ticks and inputs are prefetched for the
  /// whole window, every instant sweeps the bytecode across the block's
  /// lanes, and outputs flush once per instance in exactly the order a
  /// scalar unbatched run records them.
  void stepN(const std::vector<Environment *> &Envs, unsigned Start,
             unsigned Count);

  /// Runs \p Count reactions starting at instant \p Start for instances
  /// [First, First+Num) only, leaving every other lane untouched. \p Envs
  /// is indexed by absolute instance id (entries outside the range are
  /// not read). Unlike stepN, different lane ranges may sit at different
  /// instants — the serving front end's shape, where each session is a
  /// lane range advancing at its own pace. Single-threaded: sessions are
  /// small slices; the thread pool belongs to whole-fleet sweeps.
  void stepLanes(const std::vector<Environment *> &Envs, unsigned First,
                 unsigned Num, unsigned Start, unsigned Count);

  /// Runs \p Count reactions starting at instant 0 in one window.
  void run(const std::vector<Environment *> &Envs, unsigned Count);

  /// Runs \p Count reactions starting at instant 0, windowed by
  /// \p Window instants (bounds the batch-buffer footprint).
  void runBatched(const std::vector<Environment *> &Envs, unsigned Count,
                  unsigned Window);

  /// Preallocates every shard's batch buffers for windows of up to
  /// \p MaxCount instants; stepN grows them on demand otherwise (a
  /// one-time allocation, after which single-threaded sweeps are
  /// allocation-free).
  void reserveWindow(unsigned MaxCount);

  /// Guard tests summed over every instance; equals the sum of scalar
  /// per-instance VmExecutor counts on the same traces.
  uint64_t guardTests() const { return GuardTests; }
  /// Instructions executed summed over every instance.
  uint64_t executed() const { return Executed; }
  void resetCounters() {
    GuardTests = 0;
    Executed = 0;
  }

  /// Delay state \p Slot of instance \p Instance (tests).
  const Value &state(unsigned Slot, unsigned Instance) const {
    return StateSoA[static_cast<size_t>(Slot) * NumInstances + Instance];
  }

  /// Delay-state slots per instance — the size of a lane checkpoint.
  unsigned stateSlots() const {
    return NumInstances ? static_cast<unsigned>(StateSoA.size() /
                                                NumInstances)
                        : 0;
  }

  /// Copies instance \p Inst's delay state into \p Out (resized to
  /// stateSlots()). Values are plain structs, so a saved vector is a
  /// complete, relocatable checkpoint of the lane: taken at a frame
  /// boundary it captures everything the next reaction depends on
  /// beyond the stimulus itself — the serve front end's session-resume
  /// snapshot.
  void saveLaneState(unsigned Inst, std::vector<Value> &Out) const;

  /// Restores a checkpoint taken by saveLaneState onto instance \p Inst
  /// (any instance of any executor compiled from the same step).
  void restoreLaneState(unsigned Inst, const std::vector<Value> &In);

  /// Routes subsequent window sweeps through \p M's `sigc_native_run_fleet`
  /// (nullptr returns to the interpreter). The swap is a pure dispatch
  /// change at a window boundary: StateSoA stays the canonical per-lane
  /// state — packed into the module before each window and unpacked after
  /// — so checkpoints, resetLanes and mixed interpreted/native windows
  /// keep working unchanged, and counters keep their scalar-sum meaning.
  /// \p M must be a validated module for this same CompiledStep and must
  /// outlive its use here.
  void setNative(const NativeModule *M);
  bool nativeActive() const { return Native != nullptr; }

private:
  /// Per-shard workspace: everything one worker thread touches while
  /// sweeping its instance range. Shards are constructed up front and
  /// reused; nothing here is shared.
  struct Shard {
    unsigned FirstInstance = 0;
    unsigned EndInstance = 0;
    std::vector<char> ClockSoA;  ///< [clock slot][lane], current block.
    std::vector<Value> ValueSoA; ///< [value slot][lane], current block.
    std::vector<unsigned char> Active;    ///< [lane] predicate mask.
    std::vector<unsigned char> MaskStack; ///< [depth][lane] saved masks.
    std::vector<int32_t> CloseAt;         ///< [depth] region close PCs.
    std::vector<unsigned char> TickBuf;   ///< [clock desc][lane][instant].
    std::vector<Value> InBuf;             ///< [input desc][lane][instant].
    std::vector<unsigned char> OutPresent; ///< [lane][instant][flush pos].
    std::vector<Value> OutVals;            ///< [lane][instant][flush pos].
    uint64_t GuardTests = 0;
    uint64_t Executed = 0;
    // Native-tier marshalling scratch (grown on first native window).
    std::vector<unsigned char> NScratch;  ///< Emitted AoS arrays.
    std::vector<NativeValue> NStates;     ///< [lane][state slot].
    std::vector<unsigned long long> NGuards; ///< Per-lane counter in/out.
    std::vector<unsigned long long> NExecs;  ///< Per-lane counter in/out.
    std::vector<unsigned char> NTicks;    ///< Dense [lane][instant][clock].
    std::vector<NativeValue> NIns;        ///< Dense [lane][instant][input].
    std::vector<unsigned char> NOutP;     ///< Dense [lane][instant][pos].
    std::vector<NativeValue> NOutV;       ///< Dense [lane][instant][pos].
  };

  /// Sweeps one lane-block (\p I0 ..< \p I0+NB) through one window.
  void execBlock(Shard &S, const std::vector<Environment *> &Envs,
                 unsigned I0, unsigned NB, unsigned Start, unsigned Count);
  /// Same window, but through the native module's fleet entry point.
  void execBlockNative(Shard &S, const std::vector<Environment *> &Envs,
                       unsigned I0, unsigned NB, unsigned Start,
                       unsigned Count);
  /// Runs one shard's instance range through one window.
  void execShard(Shard &S, const std::vector<Environment *> &Envs,
                 unsigned Start, unsigned Count);
  void ensureShardCapacity(Shard &S);

  const CompiledStep &CS;
  unsigned NumInstances;
  unsigned K;       ///< Lane-block size (Cfg.LaneBlock).
  Config Cfg;
  unsigned MaxDepth; ///< Deepest SkipIfAbsent nesting in CS.Code.

  std::vector<Value> StateSoA; ///< [state slot][instance], whole fleet.
  std::vector<StepBindings> Bind;     ///< Per instance.
  std::vector<uint64_t> BoundIds;     ///< identity() per bound env.
  std::vector<EnvOutputId> FlushIds;  ///< [instance][flush position].
  std::vector<int32_t> FlushPos;      ///< Output desc -> flush position.
  std::vector<Shard> Shards;
  Shard LaneShard; ///< Scratch workspace for stepLanes (no instance range).
  unsigned WindowCap = 0; ///< Capacity of the shard batch buffers.
  const NativeModule *Native = nullptr; ///< Non-null: sweep via _step_fleet.

  uint64_t GuardTests = 0;
  uint64_t Executed = 0;
};

} // namespace sigc

#endif // SIGNALC_INTERP_FLEETEXECUTOR_H
