//===--- KernelInterp.h - Reference fixpoint interpreter --------*- C++-*-===//
///
/// \file
/// A reference interpreter of kernel programs that is deliberately
/// *independent of the scheduler and code generator*: each instant it
/// solves presence and values by chaotic fixpoint iteration over the
/// equations instead of following a precomputed order. Differential tests
/// run it against the StepExecutor on random traces — any divergence
/// means the dependency graph, the schedule or the emitted step is wrong.
///
/// Clock presence still comes from the resolved forest (free roots are
/// environment ticks, exactly as in generated code), because presence is
/// the clock calculus' *output*; what this interpreter does not reuse is
/// the instruction order.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_INTERP_KERNELINTERP_H
#define SIGNALC_INTERP_KERNELINTERP_H

#include "clock/ClockSystem.h"
#include "forest/ClockForest.h"
#include "interp/Environment.h"
#include "sema/Kernel.h"

#include <vector>

namespace sigc {

/// Fixpoint interpreter for one kernel program.
class KernelInterp {
public:
  KernelInterp(const KernelProgram &Prog, const ClockSystem &Sys,
               ClockForest &Forest, const StringInterner &Names);

  /// Re-initializes delay memories.
  void reset();

  /// Runs one instant. \returns false if the fixpoint got stuck (a
  /// causality problem the graph phase should have rejected).
  bool step(Environment &Env, unsigned Instant);

  /// Runs \p Count instants; \returns false on the first stuck instant.
  bool run(Environment &Env, unsigned Count);

  /// Post-step inspection for tests.
  bool signalPresent(SignalId S) const { return Present[S]; }
  const Value &signalValue(SignalId S) const { return Values[S]; }

private:
  /// Resolves environment ids for the roots, free signals and outputs.
  /// Called lazily whenever the environment instance changes; the hot
  /// fixpoint loop then queries by id only (no per-instant name builds).
  void bind(Environment &Env);

  const KernelProgram &Prog;
  const ClockSystem &Sys;
  ClockForest &Forest;
  const StringInterner &Names;

  std::vector<ForestNodeId> NodeOrder;     ///< All alive forest nodes.
  std::vector<int> SignalNode;             ///< Signal -> forest node (-1 null).
  std::vector<Value> DelayState;           ///< Per delay equation.
  std::vector<int> DelayEqIndex;           ///< Delay equations, in order.
  std::vector<int> DelayEqOfSignal;        ///< Signal -> delay index (-1).

  uint64_t BoundIdentity = 0;              ///< identity() of the bound env.
  std::vector<EnvClockId> RootClock;       ///< Forest node -> env clock id.
  std::vector<EnvInputId> InputId;         ///< Free signal -> env input id.
  std::vector<EnvOutputId> OutputId;       ///< Output signal -> env id.

  // Per-instant scratch.
  std::vector<char> ClockKnown, ClockOn;   ///< Indexed by forest node id.
  std::vector<char> ValueKnown;            ///< Indexed by signal.
  std::vector<char> Present;
  std::vector<Value> Values;
};

} // namespace sigc

#endif // SIGNALC_INTERP_KERNELINTERP_H
